package jvm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func testCfg() Config {
	c := DefaultConfig()
	c.HeapBytes = 8 << 20
	c.NewGenBytes = 2 << 20
	c.TLABBytes = 4 << 10
	return c
}

func newHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := NewHeap(mem.NewAddrSpace(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func rec() *trace.Recorder { return trace.NewRecorder("test", false) }

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NewGenBytes = c.HeapBytes },
		func(c *Config) { c.SurvivorFrac = 0 },
		func(c *Config) { c.SurvivorFrac = 0.6 },
		func(c *Config) { c.TLABBytes = 16 },
		func(c *Config) { c.MajorOccupancy = 0 },
		func(c *Config) { c.MajorOccupancy = 1.5 },
	}
	for i, mut := range bad {
		c := testCfg()
		mut(&c)
		if _, err := NewHeap(mem.NewAddrSpace(), c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAllocBasics(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 100, 2)
	if id == NilObject {
		t.Fatal("nil object returned")
	}
	if h.Size(id) != 104 { // padded to 8
		t.Fatalf("size = %d", h.Size(id))
	}
	if !h.IsYoung(id) || !h.IsLive(id) {
		t.Fatal("fresh object not live+young")
	}
	if h.NumRefs(id) != 2 {
		t.Fatalf("refs = %d", h.NumRefs(id))
	}
	// Allocation must record the zeroing write.
	op := r.Finish()
	if len(op.Items) == 0 || op.Items[len(op.Items)-1].Kind != trace.KindWrite {
		t.Fatal("allocation did not record an initializing write")
	}
}

func TestMinSize(t *testing.T) {
	h := newHeap(t)
	id := h.Alloc(rec(), 1, 1, 0)
	if h.Size(id) != HeaderBytes {
		t.Fatalf("min size = %d, want %d", h.Size(id), HeaderBytes)
	}
}

func TestTLABsArePerThread(t *testing.T) {
	h := newHeap(t)
	r := rec()
	a := h.Alloc(r, 1, 64, 0)
	b := h.Alloc(r, 2, 64, 0)
	c := h.Alloc(r, 1, 64, 0)
	// Same-thread objects are adjacent; cross-thread objects are in
	// different TLABs.
	if h.Addr(c) != h.Addr(a)+64 {
		t.Fatalf("same-thread allocs not contiguous: %x then %x", h.Addr(a), h.Addr(c))
	}
	if h.Addr(b) >= h.Addr(a) && h.Addr(b) < h.Addr(a)+h.Config().TLABBytes {
		t.Fatal("threads sharing a TLAB")
	}
}

func TestLargeObjectGoesOld(t *testing.T) {
	h := newHeap(t)
	id := h.Alloc(rec(), 1, uint32(h.Config().LargeObject), 0)
	if h.IsYoung(id) {
		t.Fatal("large object allocated young")
	}
	if h.OldUsed() == 0 {
		t.Fatal("old gen unused after large alloc")
	}
}

func TestMinorGCCollectsGarbage(t *testing.T) {
	h := newHeap(t)
	r := rec()
	keep := h.Alloc(r, 1, 256, 0)
	h.AddRoot(keep)
	var dead ObjectID
	for i := 0; i < 100; i++ {
		dead = h.Alloc(r, 1, 256, 0) // unrooted garbage
	}
	h.ClearStack(1) // pop the frame holding the garbage
	gc := h.MinorGC(r)
	if !h.IsLive(keep) {
		t.Fatal("rooted object collected")
	}
	if h.IsLive(dead) {
		t.Fatal("garbage survived")
	}
	if gc.LiveBytes == 0 || gc.LiveBytes > 10<<10 {
		t.Fatalf("LiveBytes = %d", gc.LiveBytes)
	}
	if h.Stats.MinorGCs != 1 {
		t.Fatalf("MinorGCs = %d", h.Stats.MinorGCs)
	}
	if h.EdenUsed() != 0 {
		t.Fatal("eden not reset")
	}
}

func TestGCPauseRecordedIntoOp(t *testing.T) {
	h := newHeap(t)
	r := rec()
	h.MinorGC(r)
	op := r.Finish()
	found := false
	for _, it := range op.Items {
		if it.Kind == trace.KindGCPause && it.GC != nil && len(it.GC.Items) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no GC pause item recorded")
	}
}

func TestCopyMovesAndIDsStable(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 128, 0)
	h.AddRoot(id)
	before := h.Addr(id)
	h.MinorGC(r)
	after := h.Addr(id)
	if before == after {
		t.Fatal("survivor did not move")
	}
	if !h.IsYoung(id) {
		t.Fatal("first-copy survivor should still be young")
	}
}

func TestPromotionAfterAge(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 128, 0)
	h.AddRoot(id)
	for i := 0; i < int(h.Config().PromoteAge); i++ {
		h.MinorGC(r)
	}
	if h.IsYoung(id) {
		t.Fatal("object not promoted after aging")
	}
	if h.Stats.PromotedBytes == 0 {
		t.Fatal("no promoted bytes counted")
	}
}

func TestReachabilityThroughChain(t *testing.T) {
	h := newHeap(t)
	r := rec()
	root := h.Alloc(r, 1, 64, 1)
	mid := h.Alloc(r, 1, 64, 1)
	leaf := h.Alloc(r, 1, 64, 0)
	h.SetRef(r, root, 0, mid)
	h.SetRef(r, mid, 0, leaf)
	h.AddRoot(root)
	h.MinorGC(r)
	if !h.IsLive(root) || !h.IsLive(mid) || !h.IsLive(leaf) {
		t.Fatal("chain broken by GC")
	}
	if h.GetRef(r, root, 0) != mid || h.GetRef(r, mid, 0) != leaf {
		t.Fatal("refs corrupted by GC")
	}
}

func TestRememberedSetKeepsYoungAlive(t *testing.T) {
	h := newHeap(t)
	r := rec()
	old := h.Alloc(r, 1, 128, 1)
	h.AddRoot(old)
	for i := 0; i < int(h.Config().PromoteAge); i++ {
		h.MinorGC(r)
	}
	if h.IsYoung(old) {
		t.Fatal("setup: old not promoted")
	}
	young := h.Alloc(r, 1, 64, 0)
	h.SetRef(r, old, 0, young) // old -> young, only via remset
	h.RemoveRoot(old)
	h.AddRoot(old) // still rooted
	h.MinorGC(r)
	if !h.IsLive(young) {
		t.Fatal("remembered set failed: young object reachable only from old was collected")
	}
}

func TestEdenExhaustionTriggersGC(t *testing.T) {
	h := newHeap(t)
	r := rec()
	keep := h.Alloc(r, 1, 1024, 0)
	h.AddRoot(keep)
	edenBytes := h.Config().NewGenBytes - 2*uint64(float64(h.Config().NewGenBytes)*h.Config().SurvivorFrac)
	n := int(edenBytes/1024) * 3
	for i := 0; i < n; i++ {
		h.Alloc(r, 1, 1024, 0)
	}
	if h.Stats.MinorGCs < 2 {
		t.Fatalf("MinorGCs = %d, want >= 2 after overallocating eden 3x", h.Stats.MinorGCs)
	}
	if !h.IsLive(keep) {
		t.Fatal("rooted object lost across automatic GCs")
	}
}

func TestMajorGCCompactsAndReclaims(t *testing.T) {
	h := newHeap(t)
	r := rec()
	// Build old-gen garbage: root objects, promote them, then unroot half.
	var ids []ObjectID
	for i := 0; i < 64; i++ {
		id := h.Alloc(r, 1, 2048, 0)
		h.AddRoot(id)
		ids = append(ids, id)
	}
	for i := 0; i < int(h.Config().PromoteAge); i++ {
		h.MinorGC(r)
	}
	usedBefore := h.OldUsed()
	for i := 0; i < 32; i++ {
		h.RemoveRoot(ids[i])
	}
	h.ClearStack(1)
	h.MajorGC(r)
	if h.OldUsed() >= usedBefore {
		t.Fatalf("major GC did not reclaim: %d -> %d", usedBefore, h.OldUsed())
	}
	for i := 0; i < 32; i++ {
		if h.IsLive(ids[i]) {
			t.Fatal("unrooted old object survived major GC")
		}
	}
	for i := 32; i < 64; i++ {
		if !h.IsLive(ids[i]) || h.IsYoung(ids[i]) {
			t.Fatal("rooted old object lost or demoted")
		}
	}
	if h.Stats.MajorGCs != 1 {
		t.Fatalf("MajorGCs = %d", h.Stats.MajorGCs)
	}
}

func TestMajorGCPromotesAllYoung(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 64, 0)
	h.AddRoot(id)
	h.MajorGC(r)
	if h.IsYoung(id) {
		t.Fatal("young survivor of full GC not promoted")
	}
	if h.EdenUsed() != 0 {
		t.Fatal("eden not empty after full GC")
	}
}

func TestPermanentObjectsNeverMove(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.AllocPermanent(r, 64, 0)
	before := h.Addr(id)
	h.MinorGC(r)
	h.MajorGC(r)
	if h.Addr(id) != before {
		t.Fatal("permanent object moved")
	}
	if !h.IsLive(id) {
		t.Fatal("permanent object collected")
	}
}

func TestMonitorOnOwnLine(t *testing.T) {
	h := newHeap(t)
	r := rec()
	m1 := h.NewMonitor(r)
	m2 := h.NewMonitor(r)
	if mem.Line(m1.Addr) == mem.Line(m2.Addr) {
		t.Fatal("monitors share a cache line")
	}
	if m1.ID == m2.ID {
		t.Fatal("monitor IDs collide")
	}
	r2 := rec()
	m1.Lock(r2)
	m1.Unlock(r2)
	op := r2.Finish()
	kinds := []trace.Kind{trace.KindLockAcq, trace.KindWrite, trace.KindWrite, trace.KindLockRel}
	if len(op.Items) != len(kinds) {
		t.Fatalf("items = %d", len(op.Items))
	}
	for i, k := range kinds {
		if op.Items[i].Kind != k {
			t.Fatalf("item %d kind = %v, want %v", i, op.Items[i].Kind, k)
		}
	}
}

func TestGCEmitsCopyTraffic(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 4096, 0)
	h.AddRoot(id)
	gc := h.MinorGC(r)
	var readBytes, writeBytes uint64
	for _, it := range gc.Items {
		switch it.Kind {
		case trace.KindRead:
			readBytes += uint64(it.N)
		case trace.KindWrite:
			writeBytes += uint64(it.N)
		}
	}
	if readBytes < 4096 || writeBytes < 4096 {
		t.Fatalf("GC copy traffic too small: r=%d w=%d", readBytes, writeBytes)
	}
	if gc.CopiedObjs != 1 {
		t.Fatalf("CopiedObjs = %d", gc.CopiedObjs)
	}
}

func TestLiveBytesTracksLiveSet(t *testing.T) {
	h := newHeap(t)
	r := rec()
	var roots []ObjectID
	for i := 0; i < 32; i++ {
		id := h.Alloc(r, 1, 1024, 0)
		h.AddRoot(id)
		roots = append(roots, id)
	}
	h.ClearStack(1)
	gc1 := h.MinorGC(r)
	for _, id := range roots {
		h.RemoveRoot(id)
	}
	gc2 := h.MinorGC(r)
	if gc2.LiveBytes >= gc1.LiveBytes {
		t.Fatalf("LiveBytes did not shrink: %d -> %d", gc1.LiveBytes, gc2.LiveBytes)
	}
}

// TestRandomGraphGCConsistency is a property test: after arbitrary
// interleavings of allocation, linking, rooting, and collections, exactly
// the root-reachable objects are live, and their link structure is intact.
func TestRandomGraphGCConsistency(t *testing.T) {
	h := newHeap(t)
	r := rec()
	rng := simrand.New(1234)

	var nodes []graphNode
	rooted := map[int]bool{}

	for step := 0; step < 3000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // allocate
			n := graphNode{id: h.Alloc(r, rng.Intn(4), uint32(32+rng.Intn(256)), 2), refs: []int{-1, -1}}
			nodes = append(nodes, n)
			if rng.Bool(0.3) || len(nodes) == 1 {
				h.AddRoot(n.id)
				rooted[len(nodes)-1] = true
			}
		case 4, 5, 6: // link (only between model-reachable nodes)
			if len(nodes) < 2 {
				continue
			}
			reach := reachable(nodes, rooted)
			if len(reach) < 2 {
				continue
			}
			from := reach[rng.Intn(len(reach))]
			to := reach[rng.Intn(len(reach))]
			slot := rng.Intn(2)
			nodes[from].refs[slot] = to
			h.SetRef(r, nodes[from].id, slot, nodes[to].id)
		case 7: // unroot (keep at least one root)
			if len(rooted) > 1 {
				for idx := range rooted {
					h.RemoveRoot(nodes[idx].id)
					delete(rooted, idx)
					break
				}
			}
		case 8:
			for tid := 0; tid < 4; tid++ {
				h.ClearStack(tid)
			}
			h.MinorGC(r)
		case 9:
			if rng.Bool(0.2) {
				for tid := 0; tid < 4; tid++ {
					h.ClearStack(tid)
				}
				h.MajorGC(r)
			}
		}
	}
	for tid := 0; tid < 4; tid++ {
		h.ClearStack(tid)
	}
	h.MinorGC(r)

	reach := map[int]bool{}
	for _, idx := range reachable(nodes, rooted) {
		reach[idx] = true
	}
	for idx, n := range nodes {
		if reach[idx] && !h.IsLive(n.id) {
			t.Fatalf("reachable node %d not live", idx)
		}
	}
	// Link structure of reachable nodes must match the model.
	for idx := range reach {
		for slot, tgt := range nodes[idx].refs {
			got := h.GetRef(r, nodes[idx].id, slot)
			if tgt == -1 {
				if got != NilObject {
					t.Fatalf("node %d slot %d: want nil, got %d", idx, slot, got)
				}
			} else if got != nodes[tgt].id {
				t.Fatalf("node %d slot %d: want %d, got %d", idx, slot, nodes[tgt].id, got)
			}
		}
	}
}

// graphNode is the model-side mirror of a heap object in the property test.
type graphNode struct {
	id   ObjectID
	refs []int // indices into the model node slice, -1 = nil
}

func reachable(nodes []graphNode, rooted map[int]bool) []int {
	seen := map[int]bool{}
	var stack []int
	for idx := range rooted {
		stack = append(stack, idx)
		seen[idx] = true
	}
	var out []int
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, idx)
		for _, tgt := range nodes[idx].refs {
			if tgt >= 0 && !seen[tgt] {
				seen[tgt] = true
				stack = append(stack, tgt)
			}
		}
	}
	return out
}

func TestSurvivorOverflowPromotesEarly(t *testing.T) {
	// Live young data larger than a survivor space must promote on the
	// first copy even below the age threshold.
	cfg := testCfg() // newgen 2MB, survivors 200KB each
	h := MustNewHeap(mem.NewAddrSpace(), cfg)
	r := rec()
	var ids []ObjectID
	for i := 0; i < 40; i++ { // ~640KB live, 3x the survivor space
		id := h.Alloc(r, 1, 16<<10, 0)
		h.AddRoot(id)
		ids = append(ids, id)
	}
	h.ClearStack(1)
	h.MinorGC(r)
	promoted := 0
	for _, id := range ids {
		if !h.IsYoung(id) {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("survivor overflow promoted nothing")
	}
	for _, id := range ids {
		if !h.IsLive(id) {
			t.Fatal("live object lost in overflow")
		}
	}
}

func TestRemsetPrunedAfterTargetPromotes(t *testing.T) {
	h := newHeap(t)
	r := rec()
	parent := h.Alloc(r, 1, 64, 1)
	h.AddRoot(parent)
	for i := 0; i < int(h.Config().PromoteAge); i++ {
		h.MinorGC(r) // promote parent
	}
	child := h.Alloc(r, 1, 64, 0)
	h.SetRef(r, parent, 0, child)
	if len(h.remset) == 0 {
		t.Fatal("old->young ref did not enter the remembered set")
	}
	for i := 0; i < int(h.Config().PromoteAge); i++ {
		h.MinorGC(r) // child promotes too
	}
	if h.IsYoung(child) {
		t.Fatal("setup: child still young")
	}
	if len(h.remset) != 0 {
		t.Fatalf("remset not pruned after promotion: %d entries", len(h.remset))
	}
}

func TestMonitorAddressStableAcrossGC(t *testing.T) {
	h := newHeap(t)
	r := rec()
	m := h.NewMonitor(r)
	before := m.Addr
	h.MinorGC(r)
	h.MajorGC(r)
	if m.Addr != before {
		t.Fatal("monitor lock word moved (permanent objects must not)")
	}
}

func TestClearStackIsPerThread(t *testing.T) {
	h := newHeap(t)
	r := rec()
	a := h.Alloc(r, 1, 64, 0) // thread 1's frame
	b := h.Alloc(r, 2, 64, 0) // thread 2's frame
	h.ClearStack(1)
	h.MinorGC(r)
	if h.IsLive(a) {
		t.Fatal("thread 1's popped temporary survived")
	}
	if !h.IsLive(b) {
		t.Fatal("thread 2's pinned temporary was collected")
	}
}

func TestLargeObjectTriggersMajorWhenOldFull(t *testing.T) {
	cfg := testCfg() // heap 8MB, newgen 2MB -> old 6MB
	h := MustNewHeap(mem.NewAddrSpace(), cfg)
	r := rec()
	// Fill old gen with large garbage (unrooted), then allocate once more:
	// the heap must major-collect instead of panicking.
	for i := 0; i < 120; i++ { // 12 MB of large garbage into a 6 MB old gen
		h.Alloc(r, 1, 100<<10, 0)
		h.ClearStack(1)
	}
	if h.Stats.MajorGCs == 0 {
		t.Fatal("old-gen pressure never triggered a major collection")
	}
}

func TestGCStatsProgression(t *testing.T) {
	h := newHeap(t)
	r := rec()
	id := h.Alloc(r, 1, 1<<10, 0)
	h.AddRoot(id)
	h.MinorGC(r)
	if h.Stats.AllocatedObjs == 0 || h.Stats.AllocatedBytes == 0 {
		t.Fatal("allocation stats empty")
	}
	if h.Stats.CopiedBytes == 0 {
		t.Fatal("no copied bytes after GC of live data")
	}
	if h.Stats.GCInstructions == 0 {
		t.Fatal("collector charged no instructions")
	}
}

func TestWriteBarrierOnlyForOldToYoung(t *testing.T) {
	h := newHeap(t)
	r := rec()
	a := h.Alloc(r, 1, 64, 1)
	b := h.Alloc(r, 1, 64, 0)
	h.SetRef(r, a, 0, b) // young -> young: no remset entry
	if len(h.remset) != 0 {
		t.Fatalf("young->young ref entered remset")
	}
}
