package jvm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func BenchmarkAllocSmall(b *testing.B) {
	cfg := DefaultConfig()
	cfg.HeapBytes = 256 << 20
	cfg.NewGenBytes = 64 << 20
	h := MustNewHeap(mem.NewAddrSpace(), cfg)
	rec := trace.NewRecorder("bench", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Alloc(rec, 0, 64, 0)
		if i%1024 == 0 {
			h.ClearStack(0)
			rec = trace.NewRecorder("bench", false) // keep the trace bounded
		}
	}
}

func BenchmarkMinorGC(b *testing.B) {
	cfg := DefaultConfig()
	cfg.HeapBytes = 64 << 20
	cfg.NewGenBytes = 16 << 20
	h := MustNewHeap(mem.NewAddrSpace(), cfg)
	rec := trace.NewRecorder("bench", false)
	// A 2 MB live set to copy each collection.
	var roots []ObjectID
	for i := 0; i < 2048; i++ {
		id := h.Alloc(rec, 0, 1024, 0)
		h.AddRoot(id)
		roots = append(roots, id)
	}
	h.ClearStack(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MinorGC(nil)
	}
	_ = roots
}
