package jvm

import (
	"testing"

	"repro/internal/obs/attr"
)

func TestAllocSiteStamping(t *testing.T) {
	h := newHeap(t)
	r := rec()

	plain := h.Alloc(r, 0, 64, 0)
	h.SetAllocSite(0, "test.site")
	labeled := h.Alloc(r, 0, 64, 0)
	h.SetAllocSite(0, "")
	unlabeled := h.Alloc(r, 0, 64, 0)
	h.SetAllocSite(1, "other.site")
	other := h.Alloc(r, 1, 64, 0)
	mine := h.Alloc(r, 0, 64, 0) // thread 0 stays unlabeled

	for _, c := range []struct {
		id   ObjectID
		want string
	}{{plain, ""}, {labeled, "test.site"}, {unlabeled, ""}, {other, "other.site"}, {mine, ""}} {
		if got := h.AllocSiteOf(c.id); got != c.want {
			t.Errorf("AllocSiteOf = %q, want %q", got, c.want)
		}
	}
}

func TestSiteResolverCoversLabeledObjects(t *testing.T) {
	h := newHeap(t)
	r := rec()
	h.SetAllocSite(0, "test.site")
	id := h.Alloc(r, 0, 200, 0)
	h.SetAllocSite(0, "")
	bare := h.Alloc(r, 0, 200, 0)
	h.AddRoot(id)
	h.AddRoot(bare)

	res := h.SiteResolver()
	addr := uint64(h.Addr(id))
	if label, ok := res(addr); !ok || label != "test.site" {
		t.Fatalf("resolver(%#x) = %q/%v, want test.site", addr, label, ok)
	}
	if label, ok := res(addr + 150); !ok || label != "test.site" {
		t.Fatalf("resolver inside object = %q/%v, want test.site", label, ok)
	}
	if _, ok := res(uint64(h.Addr(bare))); ok {
		t.Fatal("resolver labeled an unlabeled object")
	}
	if _, ok := res(addr + 10<<20); ok {
		t.Fatal("resolver labeled an address outside every object")
	}
}

// TestGCEpochClosesAgainstPreGCLayout is the attribution/GC contract: events
// recorded at an object's pre-GC address must resolve to its site even
// though the collection then moves the object.
func TestGCEpochClosesAgainstPreGCLayout(t *testing.T) {
	h := newHeap(t)
	c := attr.NewCollector(attr.Options{Exact: true})
	h.SetAttr(c)
	r := rec()

	h.SetAllocSite(0, "test.site")
	id := h.Alloc(r, 0, 256, 0)
	h.SetAllocSite(0, "")
	h.AddRoot(id)
	h.ClearStack(0)

	pre := uint64(h.Addr(id))
	c.RecordGetS(pre&^63, 0, false)
	c.RecordGetM(pre&^63, 1, true)

	h.MinorGC(nil)

	if uint64(h.Addr(id)) == pre {
		t.Fatal("test needs the collection to move the object")
	}
	if c.EpochCount() != 1 {
		t.Fatalf("MinorGC closed %d epochs, want 1", c.EpochCount())
	}
	rep := c.BuildReport(10)
	var got attr.Counts
	for _, o := range rep.HotObjects {
		if o.Label == "test.site" {
			got = o.Counts
		}
	}
	want := attr.Counts{GetS: 1, GetM: 1, C2C: 1}
	if got != want {
		t.Errorf("pre-GC events rolled up %+v, want %+v", got, want)
	}
	if len(rep.EpochMix) != 1 || rep.EpochMix[0].Trigger != "minor" {
		t.Errorf("epoch summary = %+v, want one minor epoch", rep.EpochMix)
	}
}

func TestMajorGCClosesEpoch(t *testing.T) {
	h := newHeap(t)
	c := attr.NewCollector(attr.Options{Exact: true})
	h.SetAttr(c)
	r := rec()
	id := h.Alloc(r, 0, 128, 0)
	h.AddRoot(id)
	h.ClearStack(0)
	h.MajorGC(nil)
	if c.EpochCount() != 1 {
		t.Fatalf("MajorGC closed %d epochs, want 1", c.EpochCount())
	}
}

func TestSiteInterningSurvivesGC(t *testing.T) {
	h := newHeap(t)
	r := rec()
	h.SetAllocSite(0, "test.site")
	id := h.Alloc(r, 0, 128, 0)
	h.SetAllocSite(0, "")
	h.AddRoot(id)
	h.ClearStack(0)
	h.MinorGC(nil)
	h.MinorGC(nil) // promote
	if got := h.AllocSiteOf(id); got != "test.site" {
		t.Errorf("site after GC copies = %q, want test.site", got)
	}
	// The resolver over the post-GC layout must find the new address.
	if label, ok := h.SiteResolver()(uint64(h.Addr(id))); !ok || label != "test.site" {
		t.Errorf("post-GC resolver = %q/%v, want test.site", label, ok)
	}
}
