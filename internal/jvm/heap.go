// Package jvm simulates the memory behavior of a Java virtual machine of
// the HotSpot 1.3.1 generation the paper ran: a generational heap (eden, two
// survivor semi-spaces, an old generation), per-thread TLAB bump allocation,
// a write barrier with a remembered set, and a single-threaded stop-the-world
// collector — a copying collector for the new generation and a mark-compact
// collector for the old generation.
//
// The heap holds a *real* object graph: workloads allocate objects, link
// them with SetRef, and read them back; the collector traces actual
// reachability and copies actual live objects, emitting its own memory
// references into the operation trace. That realism is what makes the
// paper's GC observations reproducible here: Figure 10's collapse of
// cache-to-cache transfers during collection, Figure 11's live-memory
// scaling (and its dip once old-generation compaction begins), and
// Figure 9's modest GC share of total time.
//
// Contract: workload code may only retain ObjectIDs that are reachable from
// registered roots. IDs of unreachable objects are recycled by the collector.
package jvm

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/obs/attr"
	"repro/internal/trace"
)

// ObjectID names a heap object. IDs are stable across copying collections
// (only addresses move); IDs of collected objects are recycled.
type ObjectID uint32

// NilObject is the null reference.
const NilObject ObjectID = 0

// HeaderBytes is the object header size; it is also the minimum object size.
const HeaderBytes = 16

// Config sizes the simulated heap. All sizes in bytes. The defaults model
// the paper's tuning (1424 MB heap, 400 MB new generation) scaled down ~20×
// so that simulations run at workstation speed; the scaling preserves the
// ratios that drive GC behavior.
type Config struct {
	HeapBytes      uint64  // total heap
	NewGenBytes    uint64  // eden + two survivors
	SurvivorFrac   float64 // fraction of new gen per survivor space (default 0.1)
	TLABBytes      uint64  // per-thread allocation buffer
	LargeObject    uint64  // objects >= this allocate directly in old gen
	PromoteAge     uint8   // survived copies before promotion to old gen
	MajorOccupancy float64 // old-gen occupancy fraction that triggers a major GC

	// GCComp is the code component the collector's instructions belong to.
	GCComp mem.ComponentID
	// MinorBaseInstr/MajorBaseInstr are fixed per-collection path lengths;
	// PerObjInstr and PerByteInstr scale with copied work.
	MinorBaseInstr uint32
	MajorBaseInstr uint32
	PerObjInstr    uint32
	PerByteInstr   float64
}

// DefaultConfig returns the scaled-down default heap configuration.
func DefaultConfig() Config {
	return Config{
		HeapBytes:      72 << 20,
		NewGenBytes:    20 << 20,
		SurvivorFrac:   0.10,
		TLABBytes:      16 << 10,
		LargeObject:    32 << 10,
		PromoteAge:     2,
		MajorOccupancy: 0.80,
		MinorBaseInstr: 30_000,
		MajorBaseInstr: 150_000,
		PerObjInstr:    24,
		PerByteInstr:   0.3,
	}
}

func (c Config) validate() error {
	if c.NewGenBytes >= c.HeapBytes {
		return fmt.Errorf("jvm: new gen (%d) must be smaller than heap (%d)", c.NewGenBytes, c.HeapBytes)
	}
	if c.SurvivorFrac <= 0 || c.SurvivorFrac >= 0.5 {
		return fmt.Errorf("jvm: survivor fraction %v out of (0, 0.5)", c.SurvivorFrac)
	}
	if c.TLABBytes < 1024 {
		return fmt.Errorf("jvm: TLAB %d too small", c.TLABBytes)
	}
	if c.MajorOccupancy <= 0 || c.MajorOccupancy > 1 {
		return fmt.Errorf("jvm: major occupancy %v out of (0, 1]", c.MajorOccupancy)
	}
	return nil
}

type object struct {
	addr  mem.Addr
	size  uint32
	refs  []ObjectID
	age   uint8
	young bool
	live  bool // slot in use (false = recycled)
	mark  bool // scratch for GC
	// site is the interned allocation-site label (0 = unlabeled). It moves
	// with the object across copying collections, which is what lets the
	// attribution layer keep address ranges mapped to sites as the heap
	// reshapes itself.
	site uint16
}

// Stats reports collector activity.
type Stats struct {
	MinorGCs        uint64
	MajorGCs        uint64
	AllocatedBytes  uint64
	AllocatedObjs   uint64
	PromotedBytes   uint64
	CopiedBytes     uint64
	LiveAfterLastGC uint64 // heap bytes in use immediately after the last GC
	GCInstructions  uint64
}

// Heap is one simulated JVM heap. Not safe for concurrent use; the
// simulator is single-threaded per run.
type Heap struct {
	cfg Config

	eden mem.Region
	surv [2]mem.Region
	old  mem.Region
	perm mem.Region // permanent region: monitors, statics; never collected

	from int // index of the from-survivor (live objects reside here)

	edenNext mem.Addr
	survNext mem.Addr // allocation cursor in to-survivor during GC
	oldNext  mem.Addr
	permNext mem.Addr

	objects []object
	freeIDs []ObjectID
	roots   map[ObjectID]struct{}
	remset  map[ObjectID]struct{} // old objects that may hold young refs
	// stackRoots model each thread's stack/registers: every allocation is
	// reachable from its allocating thread's frame until the thread
	// finishes the operation (ClearStack). Without them, a collection
	// triggered mid-construction would reap an object that has been
	// allocated but not yet linked into the graph.
	stackRoots map[int][]ObjectID
	tlabs      map[int]*tlab
	oldUsed    uint64 // bytes bump-allocated in old gen since last compaction

	monitorSeq uint64

	// Allocation-site attribution: sites interns labels (index 0 =
	// unlabeled), curSite tracks each thread's current site, and attrc,
	// when non-nil, is the attribution collector whose epochs close at
	// every GC boundary (addresses are about to be reassigned).
	sites   []string
	siteIDs map[string]uint16
	curSite map[int]uint16
	attrc   *attr.Collector

	Stats Stats
}

type tlab struct {
	cur, end mem.Addr
}

// NewHeap carves the heap's regions out of the machine's address space.
func NewHeap(space *mem.AddrSpace, cfg Config) (*Heap, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	survBytes := uint64(float64(cfg.NewGenBytes) * cfg.SurvivorFrac)
	edenBytes := cfg.NewGenBytes - 2*survBytes
	h := &Heap{
		cfg:        cfg,
		eden:       space.Reserve("heap:eden", edenBytes),
		old:        space.Reserve("heap:old", cfg.HeapBytes-cfg.NewGenBytes),
		perm:       space.Reserve("heap:perm", 4<<20),
		roots:      make(map[ObjectID]struct{}),
		remset:     make(map[ObjectID]struct{}),
		stackRoots: make(map[int][]ObjectID),
		tlabs:      make(map[int]*tlab),
		objects:    make([]object, 1), // slot 0 = NilObject
		sites:      []string{""},
		siteIDs:    make(map[string]uint16),
		curSite:    make(map[int]uint16),
	}
	h.surv[0] = space.Reserve("heap:surv0", survBytes)
	h.surv[1] = space.Reserve("heap:surv1", survBytes)
	h.edenNext = h.eden.Base
	h.oldNext = h.old.Base
	h.permNext = h.perm.Base
	return h, nil
}

// MustNewHeap is NewHeap for static configurations; it panics on error.
func MustNewHeap(space *mem.AddrSpace, cfg Config) *Heap {
	h, err := NewHeap(space, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the heap's configuration.
func (h *Heap) Config() Config { return h.cfg }

// Addr returns the current address of an object. Addresses are only valid
// until the next collection.
func (h *Heap) Addr(id ObjectID) mem.Addr { return h.objects[id].addr }

// Size returns the object's size in bytes.
func (h *Heap) Size(id ObjectID) uint32 { return h.objects[id].size }

// NumRefs returns the number of reference slots in the object.
func (h *Heap) NumRefs(id ObjectID) int { return len(h.objects[id].refs) }

// IsLive reports whether the ID currently names an object (for tests).
func (h *Heap) IsLive(id ObjectID) bool {
	return id != NilObject && int(id) < len(h.objects) && h.objects[id].live
}

// IsYoung reports whether the object is in the new generation (for tests).
func (h *Heap) IsYoung(id ObjectID) bool { return h.objects[id].young }

// EdenUsed returns bytes currently bump-allocated in eden (including
// unparceled TLAB space).
func (h *Heap) EdenUsed() uint64 { return uint64(h.edenNext - h.eden.Base) }

// OldUsed returns bytes in use in the old generation (including garbage not
// yet compacted away — this is the "heap size" a JVM would report, and what
// Figure 11 plots).
func (h *Heap) OldUsed() uint64 { return h.oldUsed }

// AddRoot registers a GC root.
func (h *Heap) AddRoot(id ObjectID) {
	if id != NilObject {
		h.roots[id] = struct{}{}
	}
}

// RemoveRoot unregisters a GC root.
func (h *Heap) RemoveRoot(id ObjectID) { delete(h.roots, id) }

func (h *Heap) newID() ObjectID {
	if n := len(h.freeIDs); n > 0 {
		id := h.freeIDs[n-1]
		h.freeIDs = h.freeIDs[:n-1]
		return id
	}
	h.objects = append(h.objects, object{})
	return ObjectID(len(h.objects) - 1)
}

func pad(size uint32) uint32 {
	if size < HeaderBytes {
		size = HeaderBytes
	}
	return (size + 7) &^ 7
}

// Alloc allocates an object of the given size with nRefs reference slots,
// on behalf of thread tid, recording the initializing writes (Java zeroes
// new objects). It may trigger a stop-the-world collection, which is
// recorded into rec. The new object is unreachable until rooted or linked;
// allocate-then-link promptly.
func (h *Heap) Alloc(rec *trace.Recorder, tid int, size uint32, nRefs int) ObjectID {
	size = pad(size)
	var addr mem.Addr
	if uint64(size) >= h.cfg.LargeObject {
		addr = h.allocOld(rec, uint64(size))
	} else {
		addr = h.allocTLAB(rec, tid, uint64(size))
	}
	id := h.newID()
	h.objects[id] = object{addr: addr, size: size, young: h.inYoung(addr), live: true, site: h.curSite[tid]}
	if nRefs > 0 {
		h.objects[id].refs = make([]ObjectID, nRefs)
	}
	h.Stats.AllocatedBytes += uint64(size)
	h.Stats.AllocatedObjs++
	h.stackRoots[tid] = append(h.stackRoots[tid], id)
	rec.Write(addr, size) // zeroing + header init
	return id
}

// SetAllocSite sets thread tid's current allocation-site label: objects the
// thread allocates from here on carry it (until the next SetAllocSite), and
// the attribution layer rolls line events up to these labels. An empty
// label reverts the thread to unlabeled. Labels are interned; stamping an
// object costs one uint16 copy, so workloads annotate their allocation
// clusters unconditionally.
func (h *Heap) SetAllocSite(tid int, site string) {
	if site == "" {
		delete(h.curSite, tid)
		return
	}
	id, ok := h.siteIDs[site]
	if !ok {
		if len(h.sites) > 0xFFFF {
			// Site table full: further labels fold into the last slot
			// rather than panicking mid-run.
			id = uint16(len(h.sites) - 1)
		} else {
			id = uint16(len(h.sites))
			h.sites = append(h.sites, site)
			h.siteIDs[site] = id
		}
	}
	h.curSite[tid] = id
}

// AllocSiteOf returns the object's allocation-site label ("" if unlabeled).
func (h *Heap) AllocSiteOf(id ObjectID) string { return h.sites[h.objects[id].site] }

// SetAttr attaches the attribution collector: every collection boundary
// closes an attribution epoch against the pre-GC address layout, so line
// events always resolve to the object that owned the address when the
// events happened.
func (h *Heap) SetAttr(c *attr.Collector) { h.attrc = c }

// closeAttrEpoch resolves the current epoch's line events against the
// current (pre-move) heap layout. Called at the top of every collection.
func (h *Heap) closeAttrEpoch(trigger string) {
	if h.attrc != nil {
		h.attrc.CloseEpoch(h.SiteResolver(), trigger)
	}
}

// SiteResolver returns a resolver over the current addresses of all
// site-labeled live objects (unlabeled objects defer to the collector's
// region fallback). The snapshot is sorted once; lookups binary-search.
// Addresses are only valid until the next collection — which is exactly
// the window the attribution epochs cover.
func (h *Heap) SiteResolver() attr.Resolver {
	type span struct {
		base, end mem.Addr
		site      uint16
	}
	spans := make([]span, 0, 256)
	for i := 1; i < len(h.objects); i++ {
		o := &h.objects[i]
		if o.live && o.site != 0 {
			spans = append(spans, span{o.addr, o.addr + mem.Addr(o.size), o.site})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	sites := h.sites
	return func(a uint64) (string, bool) {
		// Objects never overlap, so the candidate is the last span starting
		// at or before a. A line address can precede its object's base
		// (objects need not be line-aligned); attribute the line to the
		// object covering its first byte.
		i := sort.Search(len(spans), func(i int) bool { return spans[i].base > a })
		if i == 0 {
			return "", false
		}
		s := &spans[i-1]
		if a < s.end {
			return sites[s.site], true
		}
		return "", false
	}
}

// ClearStack pops thread tid's stack roots: objects it allocated are no
// longer pinned by its frame. Workloads call this at the end of each
// operation; anything not linked into the rooted graph becomes garbage.
func (h *Heap) ClearStack(tid int) {
	if s := h.stackRoots[tid]; len(s) > 0 {
		h.stackRoots[tid] = s[:0]
	}
}

// AllocPermanent allocates a never-collected, never-moved object (class
// metadata, monitors, JVM statics). Permanent objects are implicit roots.
func (h *Heap) AllocPermanent(rec *trace.Recorder, size uint32, nRefs int) ObjectID {
	size = pad(size)
	if uint64(h.permNext-h.perm.Base)+uint64(size) > h.perm.Size {
		panic("jvm: permanent region exhausted")
	}
	addr := h.permNext
	h.permNext += mem.Addr(size)
	id := h.newID()
	h.objects[id] = object{addr: addr, size: size, live: true}
	if nRefs > 0 {
		h.objects[id].refs = make([]ObjectID, nRefs)
	}
	h.AddRoot(id)
	rec.Write(addr, size)
	return id
}

func (h *Heap) inYoung(a mem.Addr) bool {
	return h.eden.Contains(a) || h.surv[0].Contains(a) || h.surv[1].Contains(a)
}

func (h *Heap) allocTLAB(rec *trace.Recorder, tid int, size uint64) mem.Addr {
	t := h.tlabs[tid]
	if t == nil {
		t = &tlab{}
		h.tlabs[tid] = t
	}
	if t.cur+mem.Addr(size) > t.end {
		// Need a fresh TLAB from eden.
		want := h.cfg.TLABBytes
		if size > want {
			want = size
		}
		if uint64(h.edenNext-h.eden.Base)+want > h.eden.Size {
			h.MinorGC(rec)
			// After a minor GC eden is empty; if the request still cannot
			// fit, the configuration is broken.
			if want > h.eden.Size {
				panic("jvm: allocation larger than eden")
			}
		}
		t.cur = h.edenNext
		t.end = h.edenNext + mem.Addr(want)
		h.edenNext += mem.Addr(want)
	}
	a := t.cur
	t.cur += mem.Addr(size)
	return a
}

func (h *Heap) allocOld(rec *trace.Recorder, size uint64) mem.Addr {
	if h.oldUsed+size > h.old.Size {
		h.MajorGC(rec)
		if h.oldUsed+size > h.old.Size {
			panic("jvm: old generation exhausted even after major GC")
		}
	}
	a := h.oldNext
	h.oldNext += mem.Addr(size)
	h.oldUsed += size
	return a
}

// SetRef stores a reference into the object's slot, recording the store and
// maintaining the generational write barrier (remembered set).
func (h *Heap) SetRef(rec *trace.Recorder, from ObjectID, slot int, to ObjectID) {
	o := &h.objects[from]
	o.refs[slot] = to
	rec.Write(o.addr+HeaderBytes+mem.Addr(slot)*8, 8)
	if to != NilObject && !o.young && h.objects[to].young {
		h.remset[from] = struct{}{}
	}
}

// GetRef loads a reference from the object's slot, recording the load.
func (h *Heap) GetRef(rec *trace.Recorder, from ObjectID, slot int) ObjectID {
	o := &h.objects[from]
	rec.Read(o.addr+HeaderBytes+mem.Addr(slot)*8, 8)
	return o.refs[slot]
}

// fieldAddr returns the address of the field-th 8-byte scalar slot, clamped
// into the object so an out-of-range index cannot touch a neighbor.
func (h *Heap) fieldAddr(id ObjectID, field int) mem.Addr {
	o := &h.objects[id]
	off := mem.Addr(HeaderBytes + field*8)
	if off+8 > mem.Addr(o.size) {
		off = mem.Addr(o.size) - 8
	}
	return o.addr + off
}

// ReadField records a load of one non-reference field (8 bytes) at the
// given field index.
func (h *Heap) ReadField(rec *trace.Recorder, id ObjectID, field int) {
	rec.Read(h.fieldAddr(id, field), 8)
}

// WriteField records a store of one non-reference field (8 bytes).
func (h *Heap) WriteField(rec *trace.Recorder, id ObjectID, field int) {
	rec.Write(h.fieldAddr(id, field), 8)
}

// ReadObject records a scan of the whole object (e.g. a field-by-field copy
// or a toString-style traversal).
func (h *Heap) ReadObject(rec *trace.Recorder, id ObjectID) {
	o := &h.objects[id]
	rec.Read(o.addr, o.size)
}
