package jvm

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// sortedIDs returns a map key set in ascending order. The collector must
// visit roots in a deterministic order: heap layout after a copying
// collection depends on visit order, and the whole simulation must replay
// exactly from a seed.
func sortedIDs(m map[ObjectID]struct{}) []ObjectID {
	out := make([]ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedTIDs returns stack-root thread IDs in ascending order.
func sortedTIDs(m map[int][]ObjectID) []int {
	out := make([]int, 0, len(m))
	for tid := range m {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// MinorGC runs a stop-the-world copying collection of the new generation on
// the single collector thread, recording the collector's memory behavior
// and appending a GC pause to rec. It returns the recorded collection.
//
// The collector is deliberately single-threaded, like HotSpot 1.3.1's: the
// playback engine runs the returned trace on one processor while every
// other processor idles, which is what produces the paper's Figure 10
// (cache-to-cache transfers collapse during collection) and the GC-idle
// component of Figure 5.
func (h *Heap) MinorGC(rec *trace.Recorder) *trace.GC {
	// The copying collector is about to reassign addresses: close the
	// attribution epoch against the still-valid pre-GC layout.
	h.closeAttrEpoch("minor")
	gcRec := trace.NewRecorder("minor-gc", false)
	gcRec.Instr(h.cfg.GCComp, h.cfg.MinorBaseInstr)

	to := 1 - h.from
	toNext := h.surv[to].Base
	toEnd := h.surv[to].End()

	// Root scan: registered roots plus remembered-set entries (old objects
	// that may hold young references). Scanning a remset entry reads its
	// reference slots.
	var work []ObjectID
	pushYoung := func(id ObjectID) {
		if id == NilObject {
			return
		}
		o := &h.objects[id]
		if o.live && o.young && !o.mark {
			o.mark = true
			work = append(work, id)
		}
	}
	for _, id := range sortedIDs(h.roots) {
		pushYoung(id)
	}
	for _, tid := range sortedTIDs(h.stackRoots) {
		for _, id := range h.stackRoots[tid] {
			pushYoung(id)
		}
	}
	for _, id := range sortedIDs(h.remset) {
		o := &h.objects[id]
		if !o.live {
			continue
		}
		gcRec.Read(o.addr+HeaderBytes, uint32(8*len(o.refs)))
		gcRec.Instr(h.cfg.GCComp, uint32(4+2*len(o.refs)))
		for _, ref := range o.refs {
			pushYoung(ref)
		}
	}

	// Copy phase: breadth-first over live young objects.
	var copiedBytes, copiedObjs uint64
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		o := &h.objects[id]

		// Read the object where it lies, then copy it to its new home.
		gcRec.Read(o.addr, o.size)
		o.age++
		var newAddr mem.Addr
		if o.age >= h.cfg.PromoteAge || toNext+mem.Addr(o.size) > toEnd {
			newAddr = h.promote(uint64(o.size))
		} else {
			newAddr = toNext
			toNext += mem.Addr(o.size)
		}
		gcRec.Write(newAddr, o.size)
		gcRec.Instr(h.cfg.GCComp, h.cfg.PerObjInstr+uint32(h.cfg.PerByteInstr*float64(o.size)))
		o.addr = newAddr
		o.young = h.inYoung(newAddr)
		copiedBytes += uint64(o.size)
		copiedObjs++

		for _, ref := range o.refs {
			pushYoung(ref)
		}
	}

	// Sweep: free unmarked young objects, rebuild the remembered set from
	// survivors of this collection (a promoted object may still point at a
	// young survivor).
	var survivorBytes uint64
	h.remset = make(map[ObjectID]struct{})
	for i := 1; i < len(h.objects); i++ {
		o := &h.objects[i]
		if !o.live {
			continue
		}
		if o.mark {
			o.mark = false
			if o.young {
				survivorBytes += uint64(o.size)
			} else {
				h.addToRemsetIfOldWithYoungRef(ObjectID(i))
			}
			continue
		}
		if o.young {
			h.free(ObjectID(i))
		} else {
			// Untouched old object: its refs did not change, but targets
			// may have been promoted; recompute membership.
			h.addToRemsetIfOldWithYoungRef(ObjectID(i))
		}
	}

	// Reset eden and swap survivors.
	h.edenNext = h.eden.Base
	h.tlabs = make(map[int]*tlab)
	h.from = to

	h.Stats.MinorGCs++
	h.Stats.CopiedBytes += copiedBytes
	h.Stats.LiveAfterLastGC = survivorBytes + h.oldUsed
	gc := &trace.GC{
		Items:      gcRec.Finish().Items,
		LiveBytes:  h.Stats.LiveAfterLastGC,
		CopiedObjs: copiedObjs,
	}
	h.countGCInstr(gc)
	if rec != nil {
		rec.GCPause(gc)
	}

	// Promotion may have pushed the old generation past its trigger.
	if float64(h.oldUsed) > h.cfg.MajorOccupancy*float64(h.old.Size) {
		h.MajorGC(rec)
	}
	return gc
}

// promote bump-allocates promotion space in the old generation. Unlike
// allocOld it must not recurse into a collection: mid-copy, the heap is in
// no state to collect. Exhaustion here is a sizing bug.
func (h *Heap) promote(size uint64) mem.Addr {
	if h.oldUsed+size > h.old.Size {
		panic("jvm: old generation exhausted during promotion; heap misconfigured")
	}
	a := h.oldNext
	h.oldNext += mem.Addr(size)
	h.oldUsed += size
	h.Stats.PromotedBytes += size
	return a
}

func (h *Heap) addToRemsetIfOldWithYoungRef(id ObjectID) {
	o := &h.objects[id]
	for _, ref := range o.refs {
		if ref != NilObject && h.objects[ref].live && h.objects[ref].young {
			h.remset[id] = struct{}{}
			return
		}
	}
}

func (h *Heap) free(id ObjectID) {
	h.objects[id] = object{}
	h.freeIDs = append(h.freeIDs, id)
}

// MajorGC runs a stop-the-world full collection: mark everything reachable,
// promote all live young objects, and slide-compact the old generation.
// This is the slower collection whose onset past ~30 warehouses causes the
// paper's Figure 11 dip and the "dramatic performance degradation" of §4.6.
func (h *Heap) MajorGC(rec *trace.Recorder) *trace.GC {
	// As in MinorGC: attribute accrued line events before compaction
	// invalidates every object address.
	h.closeAttrEpoch("major")
	gcRec := trace.NewRecorder("major-gc", false)
	gcRec.Instr(h.cfg.GCComp, h.cfg.MajorBaseInstr)

	// Mark phase: trace the full object graph from the roots. Marking
	// reads each object's header and reference slots.
	var work []ObjectID
	push := func(id ObjectID) {
		if id == NilObject {
			return
		}
		o := &h.objects[id]
		if o.live && !o.mark {
			o.mark = true
			work = append(work, id)
		}
	}
	for _, id := range sortedIDs(h.roots) {
		push(id)
	}
	for _, tid := range sortedTIDs(h.stackRoots) {
		for _, id := range h.stackRoots[tid] {
			push(id)
		}
	}
	var markedObjs uint64
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		o := &h.objects[id]
		gcRec.Read(o.addr, HeaderBytes+uint32(8*len(o.refs)))
		gcRec.Instr(h.cfg.GCComp, h.cfg.PerObjInstr/2+uint32(2*len(o.refs)))
		markedObjs++
		for _, ref := range o.refs {
			push(ref)
		}
	}

	// Collect live objects destined for the old generation: current old
	// residents (in address order, for sliding) then promoted young.
	type liveObj struct {
		id   ObjectID
		addr mem.Addr
	}
	var oldLive, youngLive []liveObj
	for i := 1; i < len(h.objects); i++ {
		o := &h.objects[i]
		if !o.live {
			continue
		}
		if h.perm.Contains(o.addr) {
			o.mark = false // permanent objects are implicit roots; never moved
			continue
		}
		if !o.mark {
			h.free(ObjectID(i))
			continue
		}
		o.mark = false
		if o.young {
			youngLive = append(youngLive, liveObj{ObjectID(i), o.addr})
		} else {
			oldLive = append(oldLive, liveObj{ObjectID(i), o.addr})
		}
	}
	sort.Slice(oldLive, func(i, j int) bool { return oldLive[i].addr < oldLive[j].addr })

	// Compact: slide old residents down, then append promoted young.
	next := h.old.Base
	var movedBytes, relocated uint64
	place := func(id ObjectID, alwaysCopy bool) {
		o := &h.objects[id]
		if alwaysCopy || o.addr != next {
			gcRec.Read(o.addr, o.size)
			gcRec.Write(next, o.size)
			gcRec.Instr(h.cfg.GCComp, h.cfg.PerObjInstr+uint32(h.cfg.PerByteInstr*float64(o.size)))
			movedBytes += uint64(o.size)
			relocated++
		}
		o.addr = next
		o.young = false
		o.age = h.cfg.PromoteAge
		next += mem.Addr(o.size)
	}
	for _, lo := range oldLive {
		place(lo.id, false)
	}
	for _, lo := range youngLive {
		place(lo.id, true)
	}

	h.oldNext = next
	h.oldUsed = uint64(next - h.old.Base)
	h.edenNext = h.eden.Base
	h.tlabs = make(map[int]*tlab)
	h.remset = make(map[ObjectID]struct{}) // no young objects remain

	h.Stats.MajorGCs++
	h.Stats.CopiedBytes += movedBytes
	h.Stats.LiveAfterLastGC = h.oldUsed
	gc := &trace.GC{
		Items:      gcRec.Finish().Items,
		Major:      true,
		LiveBytes:  h.Stats.LiveAfterLastGC,
		CopiedObjs: relocated,
	}
	h.countGCInstr(gc)
	if rec != nil {
		rec.GCPause(gc)
	}
	_ = markedObjs
	return gc
}

func (h *Heap) countGCInstr(gc *trace.GC) {
	for i := range gc.Items {
		if gc.Items[i].Kind == trace.KindInstr {
			h.Stats.GCInstructions += uint64(gc.Items[i].N)
		}
	}
}
