package jvm

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// Monitor is a Java-style lock. Its lock word lives on a real (permanent)
// heap cache line, so contended monitors bounce between caches exactly the
// way the paper observed: a handful of hot lock lines produce a large share
// of all cache-to-cache transfers (Figure 14 — one line was 20% of SPECjbb's
// communication).
//
// The functional layer records acquire/release points plus the CAS traffic
// on the lock word; the timing layer (internal/osmodel) resolves contention
// and blocks threads.
type Monitor struct {
	ID   uint64
	Addr mem.Addr
	// Spin marks a monitor whose waiters spin instead of sleeping —
	// HotSpot's behavior for briefly-held hot locks (thin/adaptive
	// locking). Spinners burn busy cycles but resume almost instantly.
	Spin bool
}

// monitorBytes spaces each monitor onto its own cache line so two hot locks
// never false-share (matching how JVMs pad contended locks).
const monitorBytes = mem.LineBytes

// NewMonitor allocates a monitor in the permanent region.
func (h *Heap) NewMonitor(rec *trace.Recorder) *Monitor {
	obj := h.AllocPermanent(rec, monitorBytes, 0)
	h.monitorSeq++
	return &Monitor{ID: h.monitorSeq, Addr: h.Addr(obj)}
}

// NewSpinMonitor allocates a monitor whose waiters spin (for briefly-held
// hot locks).
func (h *Heap) NewSpinMonitor(rec *trace.Recorder) *Monitor {
	m := h.NewMonitor(rec)
	m.Spin = true
	return m
}

// Lock records an acquisition of the monitor: the blocking point, then the
// CAS store on the lock word once the lock is granted.
func (m *Monitor) Lock(rec *trace.Recorder) {
	if m.Spin {
		rec.LockAcquireSpin(m.ID, m.Addr)
	} else {
		rec.LockAcquire(m.ID, m.Addr)
	}
	rec.Write(m.Addr, 8)
}

// Unlock records a release: the store clearing the lock word, then the
// release point that lets a waiter in.
func (m *Monitor) Unlock(rec *trace.Recorder) {
	rec.Write(m.Addr, 8)
	rec.LockRelease(m.ID, m.Addr)
}
