package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs/attr"
)

// AttrSummary renders a memory-attribution report as fixed-width text: the
// sampling header, the sharing-pattern mix, and the hot-line / hot-object
// tables. It is the human-readable companion to the -attr JSON artifact.
func AttrSummary(w io.Writer, r *attr.Report) {
	if r == nil {
		return
	}
	mode := "exact (every line tracked)"
	if !r.Exact {
		mode = fmt.Sprintf("sampled 1/%d (scale counts by %d)", r.ScaleFactor, r.ScaleFactor)
	}
	fmt.Fprintf(w, "Memory attribution — %d lines tracked, %s\n", r.LinesTracked, mode)
	fmt.Fprintf(w, "%d events in %d epochs", r.Events, r.Epochs)
	if r.Resamples > 0 {
		fmt.Fprintf(w, ", %d resamples", r.Resamples)
	}
	if r.TruncatedEpochs > 0 {
		fmt.Fprintf(w, ", %d epoch summaries dropped", r.TruncatedEpochs)
	}
	fmt.Fprintln(w)
	t := r.Totals
	fmt.Fprintf(w, "totals: %d GetS, %d GetM, %d upgrades, %d C2C, %d writebacks, %d invalidations\n",
		t.GetS, t.GetM, t.Upgrades, t.C2C, t.Writebacks, t.Invals)

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s | %10s | %12s | %10s | %6s\n", "pattern", "lines", "events", "c2c", "c2c%")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	var c2cTotal uint64
	for _, ps := range r.PatternMix {
		c2cTotal += ps.C2C
	}
	for _, name := range attr.PatternNames() {
		ps, ok := r.PatternMix[name]
		if !ok {
			continue
		}
		pct := 0.0
		if c2cTotal > 0 {
			pct = 100 * float64(ps.C2C) / float64(c2cTotal)
		}
		fmt.Fprintf(w, "%-18s | %10d | %12d | %10d | %5.1f%%\n", name, ps.Lines, ps.Events, ps.C2C, pct)
	}

	if len(r.HotLines) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "hot lines (top %d by events):\n", len(r.HotLines))
		fmt.Fprintf(w, "%-14s | %-18s | %-24s | %2s/%2s | %8s | %8s | %8s | %8s\n",
			"addr", "pattern", "label", "rd", "wr", "gets", "getm", "c2c", "inval")
		fmt.Fprintln(w, strings.Repeat("-", 112))
		for _, h := range r.HotLines {
			fmt.Fprintf(w, "%#14x | %-18s | %-24s | %2d/%2d | %8d | %8d | %8d | %8d\n",
				h.Addr, h.Pattern, trunc(h.Label, 24), h.Readers, h.Writers, h.GetS, h.GetM, h.C2C, h.Invals)
		}
	}

	if len(r.HotObjects) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "hot objects/sites (top %d by events):\n", len(r.HotObjects))
		fmt.Fprintf(w, "%-28s | %8s | %8s | %8s | %8s | %8s | %8s\n",
			"label", "lines", "gets", "getm", "upgrades", "c2c", "inval")
		fmt.Fprintln(w, strings.Repeat("-", 92))
		for _, h := range r.HotObjects {
			fmt.Fprintf(w, "%-28s | %8d | %8d | %8d | %8d | %8d | %8d\n",
				trunc(h.Label, 28), h.Lines, h.GetS, h.GetM, h.Upgrades, h.C2C, h.Invals)
		}
	}
}
