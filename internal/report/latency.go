package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

// latMS converts simulated cycles to milliseconds for latency tables.
func latMS(cy uint64) float64 { return float64(cy) / (obs.CyclesPerMicrosecond * 1e3) }

// LatencySummary renders a request-latency/SLO report as fixed-width text:
// per-class quantiles, the phase decomposition of where each class's time
// went, the per-interval p99 time series, and the SLO verdicts. It is the
// human-readable companion to the -latency JSON artifact.
func LatencySummary(w io.Writer, r *reqtrace.Report) {
	if r == nil || len(r.Classes) == 0 {
		fmt.Fprintln(w, "Request latency — no completed requests recorded")
		return
	}

	var total uint64
	for _, c := range r.Classes {
		total += c.Latency.Count
	}
	fmt.Fprintf(w, "Request latency — %d requests in %d classes, %.1f ms intervals\n",
		total, len(r.Classes), latMS(r.IntervalCycles))
	if gc := r.GCPause; gc.Count > 0 {
		fmt.Fprintf(w, "jvm gc pauses: %d, p50 %.2f ms, p99 %.2f ms, max %.2f ms (charged to in-flight requests)\n",
			gc.Count, latMS(gc.P50), latMS(gc.P99), latMS(gc.Max))
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s | %8s | %8s | %8s | %8s | %8s | %8s | %8s\n",
		"class", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	fmt.Fprintln(w, strings.Repeat("-", 102))
	for _, c := range r.Classes {
		name := c.Class
		if c.Error {
			name += " (err)"
		}
		fmt.Fprintf(w, "%-18s | %8d | %8.2f | %8.2f | %8.2f | %8.2f | %8.2f | %8.2f\n",
			trunc(name, 18), c.Latency.Count, c.Latency.Mean/(obs.CyclesPerMicrosecond*1e3),
			latMS(c.Latency.P50), latMS(c.Latency.P95), latMS(c.Latency.P99),
			latMS(c.Latency.P999), latMS(c.Latency.Max))
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "phase share of class latency (% of attributed cycles; gc overlaps the rest):")
	fmt.Fprintf(w, "%-18s | %5s | %5s | %5s | %5s | %5s | %5s | %5s | %5s | %5s\n",
		"class", "cpu", "mem", "lock", "net", "dbq", "dbsvc", "gc", "think", "sched")
	fmt.Fprintln(w, strings.Repeat("-", 100))
	for _, c := range r.Classes {
		p := c.Phases
		parts := []uint64{p.CPU, p.MemStall, p.LockWait, p.Net, p.DBQueue, p.DBService, p.GCPause, p.Think, p.Sched}
		var sum uint64
		for _, v := range parts {
			sum += v
		}
		if sum == 0 {
			continue
		}
		fmt.Fprintf(w, "%-18s", trunc(c.Class, 18))
		for _, v := range parts {
			fmt.Fprintf(w, " | %4.1f%%", 100*float64(v)/float64(sum))
		}
		fmt.Fprintln(w)
	}

	// The time series as a p99 matrix, intervals down and the busiest
	// business classes across — degradation windows read as a vertical band.
	if len(r.Intervals) > 1 {
		cols := latencyColumns(r, 6)
		if len(cols) > 0 {
			fmt.Fprintln(w)
			fmt.Fprintln(w, "p99 per interval (ms):")
			fmt.Fprintf(w, "%9s", "start ms")
			for _, c := range cols {
				fmt.Fprintf(w, " | %12s", trunc(c, 12))
			}
			fmt.Fprintln(w)
			fmt.Fprintln(w, strings.Repeat("-", 9+15*len(cols)))
			for _, iv := range r.Intervals {
				fmt.Fprintf(w, "%9.1f", latMS(iv.StartCycle-r.OriginCycle))
				byClass := make(map[string]reqtrace.IntervalClass, len(iv.Classes))
				for _, ic := range iv.Classes {
					byClass[ic.Class] = ic
				}
				for _, c := range cols {
					if ic, ok := byClass[c]; ok && ic.Count > 0 {
						fmt.Fprintf(w, " | %12.2f", latMS(ic.P99))
					} else {
						fmt.Fprintf(w, " | %12s", "-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}

	if len(r.SLO) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "SLO objectives (burn = bad fraction / error budget; <=1 holds):")
		fmt.Fprintf(w, "%-26s | %10s | %8s | %11s | %10s | %s\n",
			"objective", "requests", "bad", "budget burn", "violations", "verdict")
		fmt.Fprintln(w, strings.Repeat("-", 92))
		for _, s := range r.SLO {
			verdict := "met"
			if !s.Met {
				verdict = fmt.Sprintf("VIOLATED (worst interval %d at %.1fx)", s.WorstInterval, s.WorstBurn)
			} else if s.Violations > 0 {
				verdict = fmt.Sprintf("met overall (worst interval %d at %.1fx)", s.WorstInterval, s.WorstBurn)
			}
			fmt.Fprintf(w, "%-26s | %10d | %8d | %10.2fx | %10d | %s\n",
				trunc(s.Objective.Spec, 26), s.Requests, s.Bad, s.BudgetBurn, s.Violations, verdict)
		}
	}
}

// latencyColumns picks the top-n busiest non-error classes for the interval
// matrix, returned in name order so the table layout is deterministic.
func latencyColumns(r *reqtrace.Report, n int) []string {
	type cc struct {
		name  string
		count uint64
	}
	var all []cc
	for _, c := range r.Classes {
		if c.Error || c.Latency.Count == 0 {
			continue
		}
		all = append(all, cc{c.Class, c.Latency.Count})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	if len(all) > n {
		all = all[:n]
	}
	names := make([]string, len(all))
	for i, c := range all {
		names[i] = c.name
	}
	sort.Strings(names)
	return names
}
