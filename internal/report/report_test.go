package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func sample() core.Figure {
	return core.Figure{
		ID:     "Fig X",
		Title:  "Sample",
		XLabel: "Processors",
		YLabel: "Speedup",
		Series: []core.Series{
			{Label: "A", X: []float64{1, 2, 4}, Y: []float64{1, 1.9, 3.5}, Err: []float64{0, 0.1, 0.2}},
			{Label: "B", X: []float64{1, 2, 4}, Y: []float64{1, 1.5, 2.0}, Err: []float64{0, 0, 0}},
		},
		Notes: []string{"hello"},
	}
}

func TestTableContainsDataAndNotes(t *testing.T) {
	var b strings.Builder
	Table(&b, sample())
	out := b.String()
	for _, want := range []string{"Fig X", "Sample", "A", "B", "1.90", "± 0.1", "3.50", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPlotDrawsAllSeries(t *testing.T) {
	var b strings.Builder
	Plot(&b, sample(), 40, 10)
	out := b.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("plot missing series glyphs:\n%s", out)
	}
	if !strings.Contains(out, "o=A") || !strings.Contains(out, "x=B") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
}

func TestPlotLogAxes(t *testing.T) {
	f := core.Figure{
		ID: "L", LogX: true, LogY: true,
		Series: []core.Series{{Label: "c", X: []float64{64, 1024, 16384}, Y: []float64{10, 1, 0.1}, Err: []float64{0, 0, 0}}},
	}
	var b strings.Builder
	Plot(&b, f, 40, 10)
	if !strings.Contains(b.String(), "o") {
		t.Fatal("log plot drew nothing")
	}
}

func TestPlotEmptyFigureSafe(t *testing.T) {
	var b strings.Builder
	Plot(&b, core.Figure{ID: "E"}, 40, 10) // must not panic
}

func TestRenderCombined(t *testing.T) {
	var b strings.Builder
	Render(&b, sample())
	if !strings.Contains(b.String(), "Fig X") {
		t.Fatal("render produced nothing")
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.01234: "0.012",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestMarkdownTable(t *testing.T) {
	var b strings.Builder
	Markdown(&b, sample())
	out := b.String()
	for _, want := range []string{"### Fig X — Sample", "| Processors |", "|---|", "| 1.90 ± 0.100 |", "- hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPlotSinglePoint(t *testing.T) {
	var b strings.Builder
	f := core.Figure{
		ID:     "Fig 1pt",
		Series: []core.Series{{Label: "A", X: []float64{8}, Y: []float64{2.5}}},
	}
	Plot(&b, f, 40, 10) // degenerate ranges must not divide by zero
	out := b.String()
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

// gridGlyphs counts series glyphs on the plot grid itself, excluding the
// header and the legend (whose "o=A" would inflate the count).
func gridGlyphs(out string, g byte) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  |") {
			n += strings.Count(line, string(g))
		}
	}
	return n
}

func TestPlotAllEqualY(t *testing.T) {
	var b strings.Builder
	f := core.Figure{
		ID:     "Fig flat",
		Series: []core.Series{{Label: "A", X: []float64{1, 2, 4, 8}, Y: []float64{3, 3, 3, 3}}},
	}
	Plot(&b, f, 40, 10)
	if gridGlyphs(b.String(), 'o') != 4 {
		t.Fatalf("flat series lost points:\n%s", b.String())
	}
}

func TestPlotNaNInfGuards(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	f := core.Figure{
		ID: "Fig bad",
		Series: []core.Series{
			{Label: "A", X: []float64{1, 2, 3, 4}, Y: []float64{nan, 5, inf, 7}},
			{Label: "B", X: []float64{nan, inf, 3}, Y: []float64{1, 2, -inf}},
		},
	}
	var b strings.Builder
	Plot(&b, f, 40, 10) // must not panic or poison the bounds
	out := b.String()
	// Only the finite points of A survive; the bounds come from them alone.
	if !strings.Contains(out, "top=7") || !strings.Contains(out, "bottom=5") {
		t.Fatalf("NaN/Inf leaked into plot bounds:\n%s", out)
	}
	// A figure with no plottable points at all renders nothing and survives.
	var b2 strings.Builder
	Plot(&b2, core.Figure{
		ID:     "Fig none",
		Series: []core.Series{{Label: "A", X: []float64{1}, Y: []float64{nan}}},
	}, 40, 10)
}

func TestPlotLogAxisSkipsNonPositive(t *testing.T) {
	f := core.Figure{
		ID:   "Fig log",
		LogX: true, LogY: true,
		Series: []core.Series{{Label: "A", X: []float64{0, 10, 100}, Y: []float64{5, 0, 50}}},
	}
	var b strings.Builder
	Plot(&b, f, 40, 10)
	// (0,5) and (10,0) are unplottable on log axes; only (100,50) remains.
	if gridGlyphs(b.String(), 'o') != 1 {
		t.Fatalf("log axis should keep exactly the one positive point:\n%s", b.String())
	}
}

func TestFormatNumNonFinite(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
}
