package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func sample() core.Figure {
	return core.Figure{
		ID:     "Fig X",
		Title:  "Sample",
		XLabel: "Processors",
		YLabel: "Speedup",
		Series: []core.Series{
			{Label: "A", X: []float64{1, 2, 4}, Y: []float64{1, 1.9, 3.5}, Err: []float64{0, 0.1, 0.2}},
			{Label: "B", X: []float64{1, 2, 4}, Y: []float64{1, 1.5, 2.0}, Err: []float64{0, 0, 0}},
		},
		Notes: []string{"hello"},
	}
}

func TestTableContainsDataAndNotes(t *testing.T) {
	var b strings.Builder
	Table(&b, sample())
	out := b.String()
	for _, want := range []string{"Fig X", "Sample", "A", "B", "1.90", "± 0.1", "3.50", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPlotDrawsAllSeries(t *testing.T) {
	var b strings.Builder
	Plot(&b, sample(), 40, 10)
	out := b.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("plot missing series glyphs:\n%s", out)
	}
	if !strings.Contains(out, "o=A") || !strings.Contains(out, "x=B") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
}

func TestPlotLogAxes(t *testing.T) {
	f := core.Figure{
		ID: "L", LogX: true, LogY: true,
		Series: []core.Series{{Label: "c", X: []float64{64, 1024, 16384}, Y: []float64{10, 1, 0.1}, Err: []float64{0, 0, 0}}},
	}
	var b strings.Builder
	Plot(&b, f, 40, 10)
	if !strings.Contains(b.String(), "o") {
		t.Fatal("log plot drew nothing")
	}
}

func TestPlotEmptyFigureSafe(t *testing.T) {
	var b strings.Builder
	Plot(&b, core.Figure{ID: "E"}, 40, 10) // must not panic
}

func TestRenderCombined(t *testing.T) {
	var b strings.Builder
	Render(&b, sample())
	if !strings.Contains(b.String(), "Fig X") {
		t.Fatal("render produced nothing")
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.01234: "0.012",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestMarkdownTable(t *testing.T) {
	var b strings.Builder
	Markdown(&b, sample())
	out := b.String()
	for _, want := range []string{"### Fig X — Sample", "| Processors |", "|---|", "| 1.90 ± 0.100 |", "- hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
