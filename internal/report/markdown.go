package report

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Markdown renders the figure as a GitHub-flavored markdown table — the
// format EXPERIMENTS.md records results in.
func Markdown(w io.Writer, f core.Figure) {
	fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title)

	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	header := "| " + f.XLabel + " |"
	sep := "|---|"
	for _, s := range f.Series {
		header += " " + s.Label + " |"
		sep += "---|"
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, sep)
	for _, x := range xs {
		row := "| " + formatNum(x) + " |"
		for _, s := range f.Series {
			row += " " + cell(s, x) + " |"
		}
		fmt.Fprintln(w, row)
	}
	if len(f.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range f.Notes {
			fmt.Fprintf(w, "- %s\n", n)
		}
	}
	fmt.Fprintln(w)
}
