// Package report renders reproduced figures (internal/core.Figure) as
// fixed-width text: a data table per figure plus a rough ASCII plot for
// quick visual comparison against the paper. The tables are the ground
// truth recorded in EXPERIMENTS.md; the plots are a convenience.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// Table renders the figure's series as an aligned table: one row per X
// value, one column per series (mean ± stddev when error bars exist).
func Table(w io.Writer, f core.Figure) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "x = %s; y = %s\n", f.XLabel, f.YLabel)

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	header := fmt.Sprintf("%12s", trunc(f.XLabel, 12))
	for _, s := range f.Series {
		header += fmt.Sprintf(" | %18s", trunc(s.Label, 18))
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, x := range xs {
		row := fmt.Sprintf("%12s", formatNum(x))
		for _, s := range f.Series {
			row += fmt.Sprintf(" | %18s", cell(s, x))
		}
		fmt.Fprintln(w, row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func cell(s core.Series, x float64) string {
	for i, sx := range s.X {
		if sx == x {
			if i < len(s.Err) && s.Err[i] > 0 {
				return fmt.Sprintf("%s ± %s", formatNum(s.Y[i]), formatNum(s.Err[i]))
			}
			return formatNum(s.Y[i])
		}
	}
	return ""
}

func formatNum(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "Inf"
		}
		return "-Inf"
	}
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e7:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Plot renders a crude ASCII chart of the figure (height rows by width
// columns), one glyph per series. Log axes follow the figure's flags.
func Plot(w io.Writer, f core.Figure, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	glyphs := "ox+*#@%&"

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if f.LogX && v > 0 {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if f.LogY && v > 0 {
			return math.Log10(v)
		}
		return v
	}
	// plottable skips points that cannot land on the grid: NaN or infinite
	// coordinates (a NaN would otherwise poison the min/max bounds), and
	// non-positive values on a log axis.
	plottable := func(s core.Series, i int) bool {
		if math.IsNaN(s.X[i]) || math.IsInf(s.X[i], 0) ||
			math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
			return false
		}
		if f.LogX && s.X[i] <= 0 {
			return false
		}
		if f.LogY && s.Y[i] <= 0 {
			return false
		}
		return true
	}
	for _, s := range f.Series {
		for i := range s.X {
			if !plottable(s, i) {
				continue
			}
			minX, maxX = math.Min(minX, tx(s.X[i])), math.Max(maxX, tx(s.X[i]))
			minY, maxY = math.Min(minY, ty(s.Y[i])), math.Max(maxY, ty(s.Y[i]))
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		maxX = minX + 1
	}
	if math.IsInf(minY, 1) {
		return
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if !plottable(s, i) {
				continue
			}
			cx := int((tx(s.X[i]) - minX) / (maxX - minX) * float64(width-1))
			cy := int((ty(s.Y[i]) - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = g
			}
		}
	}

	fmt.Fprintf(w, "%s (top=%s, bottom=%s)\n", f.ID, formatNum(maxY), formatNum(minY))
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
	legend := "   "
	for si, s := range f.Series {
		legend += fmt.Sprintf(" %c=%s", glyphs[si%len(glyphs)], s.Label)
	}
	fmt.Fprintln(w, legend)
}

// Render writes the table and plot for a figure.
func Render(w io.Writer, f core.Figure) {
	Table(w, f)
	fmt.Fprintln(w)
	Plot(w, f, 64, 16)
	fmt.Fprintln(w)
}
