// Package osmodel is the timing layer of the simulator: a Solaris-like
// thread scheduler over P simulated processors that plays recorded
// operation traces (internal/trace) through per-processor cores
// (internal/cpu) and a coherent memory hierarchy (internal/memsys).
//
// It reproduces the measurement views the paper took on real hardware:
//
//   - psrset: workload threads are restricted to a processor set; OS
//     daemon threads run on every processor (which is why Figure 8 shows
//     cache-to-cache transfers even with the application bound to one CPU).
//   - mpstat: every processor cycle is attributed to user, system, I/O
//     wait, idle, or GC idle (Figure 5).
//   - cpustat: CPI decomposition comes from the cores, bus counters from
//     the coherence layer (Figures 6, 7, 8).
//
// Scheduling is deterministic: FIFO ready queue, fixed quantum, stable
// tie-breaking — so a whole experiment replays exactly from a seed.
package osmodel

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/ifetch"
	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/trace"
)

// OpSource supplies a thread's operations. NextOp is called lazily, at the
// simulated time the thread is about to run the operation, so functional
// recording order tracks simulated time order. Returning nil ends the
// thread.
type OpSource interface {
	NextOp(tid int, now uint64) *trace.Op
}

// Config parameterizes the engine.
type Config struct {
	CPUs int
	// PSet is the processor set the measured workload is bound to
	// (psrset). Accounting in Results covers only these CPUs.
	PSet []int
	// Quantum is the scheduling time slice in cycles.
	Quantum uint64
	// Slice caps how many cycles one engine dispatch executes before
	// control returns to the global loop. It is an engine granule, not a
	// scheduling policy: small slices keep engine order close to simulated
	// time order so that critical sections on different processors that
	// overlap in simulated time actually contend. A sliced thread resumes
	// at the front of the ready queue with its remaining quantum.
	Slice uint64
	// SpinCycles is the adaptive-mutex spin time charged busy on
	// contended spin locks before blocking.
	SpinCycles uint64
	// HandoffCycles is the delay from release to resumption for spinning
	// waiters (the lock word changes hands; the spinner notices at once).
	HandoffCycles uint64
	// MonitorHandoff is the delay for blocked (sleeping) waiters: a full
	// wakeup and dispatch through the scheduler, as for Java monitors and
	// pool semaphores. It is an order of magnitude more than a spin
	// handoff, which is why convoys on hot monitors flatten throughput.
	MonitorHandoff uint64

	// Core is the per-processor timing configuration.
	Core cpu.Config
	// GCThreads is the collector's parallelism. The JVMs of the paper's
	// era collected with ONE thread while every other processor idled
	// (§4.1); setting this above 1 models the parallel collectors that
	// followed, for the GC ablation. Collector work is split across up to
	// GCThreads processors of the processor set.
	GCThreads int
}

// DefaultConfig returns engine defaults for an n-processor machine with
// the workload bound to all n processors.
func DefaultConfig(n int) Config {
	pset := make([]int, n)
	for i := range pset {
		pset[i] = i
	}
	return Config{
		CPUs:           n,
		PSet:           pset,
		Quantum:        400_000,
		Slice:          1_500,
		SpinCycles:     3_000,
		HandoffCycles:  300,
		MonitorHandoff: 2_000,
		Core:           cpu.DefaultConfig(),
		GCThreads:      1,
	}
}

// Modes is the per-mode cycle accounting of one or more processors
// (the mpstat view).
type Modes struct {
	User, System, IOWait, Idle, GCIdle uint64
}

// Busy returns user+system cycles.
func (m *Modes) Busy() uint64 { return m.User + m.System }

// Total returns all accounted cycles.
func (m *Modes) Total() uint64 { return m.User + m.System + m.IOWait + m.Idle + m.GCIdle }

// Add accumulates another accounting.
func (m *Modes) Add(o *Modes) {
	m.User += o.User
	m.System += o.System
	m.IOWait += o.IOWait
	m.Idle += o.Idle
	m.GCIdle += o.GCIdle
}

type threadState uint8

const (
	stReady threadState = iota
	stRunning
	stBlockedLock
	stBlockedIO
	stSleeping
	stDone
)

type thread struct {
	id      int
	name    string
	source  OpSource
	mask    uint64 // allowed CPUs bitmask
	state   threadState
	op      *trace.Op
	opStart uint64 // dispatch time of the current op (for response times)
	idx     int
	mode    bool // true = kernel mode (set by instruction segments)
	// lockBlockedAt is the time the thread blocked on a monitor (for wait
	// accounting at grant time).
	lockBlockedAt uint64
	// lastCPU implements soft affinity (Solaris keeps threads where their
	// cache state is); -1 before first dispatch. A stolen thread keeps its
	// home for a few dispatches (hysteresis) so transient steals do not
	// permanently scramble the thread-to-processor partition.
	lastCPU  int
	stealRun int
	// quantumLeft is the unexpired part of the thread's time slice across
	// engine slices.
	quantumLeft uint64
	// bound marks a thread requeued by engine slicing mid-quantum: it is
	// logically still running on lastCPU and no other processor may take
	// it. Genuinely ready threads (woken, or past their quantum) are
	// unbound and may migrate immediately.
	bound bool
	// readyAt is the simulated time the thread became ready. Processors
	// run at skewed local clocks; one whose clock is behind must not
	// dispatch a thread that is not ready yet in its own past.
	readyAt uint64
	// locksHeld defers quantum preemption while the thread is inside a
	// critical section (preemption control), preventing artificial lock
	// convoys.
	locksHeld int
	// span is the open latency span of the current operation (nil when the
	// operation is untracked or no collector is attached).
	span *reqtrace.Span
	// extFrom is the time the thread blocked on a co-simulated peer, for
	// charging the external round trip to the span at wake.
	extFrom uint64
}

type lockState struct {
	held    bool
	spin    bool
	owner   *thread
	waiters []*thread
}

type semState struct {
	available int
	waiters   []*thread
}

// idleSentinel marks a processor that is not in an idle stretch.
const idleSentinel = ^uint64(0)

type event struct {
	time uint64
	seq  uint64
	th   *thread
}

// eventHeap is a binary min-heap ordered by (time, seq). It is typed —
// not container/heap — so pushes and pops move event values directly
// instead of boxing them through interface{} (one heap allocation per
// wakeup otherwise, millions per run). Pop order is a total order (seq is
// unique), so it is independent of the internal array layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hh.less(i, p) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	n := len(hh) - 1
	hh[0], hh[n] = hh[n], hh[0]
	ev := hh[n]
	*h = hh[:n]
	hh = hh[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && hh.less(r, l) {
			m = r
		}
		if !hh.less(m, i) {
			break
		}
		hh[i], hh[m] = hh[m], hh[i]
		i = m
	}
	return ev
}

// Engine is the machine: processors, scheduler, locks, and accounting.
type Engine struct {
	cfg    Config
	hier   *memsys.Hierarchy
	layout *ifetch.CodeLayout
	net    *netsim.Network

	cores  []*cpu.Core
	freeAt []uint64
	// idleFrom marks processors in a speculative idle stretch: the idle
	// gap is charged lazily when the processor next dispatches, so a
	// wakeup can pull the processor back to the wake time with accounting
	// intact. idleSentinel means "not idle". idleIO captures whether the
	// stretch counts as I/O wait (outstanding I/O when it began).
	idleFrom []uint64
	idleIO   []bool
	acct     []Modes
	inPSet   []bool

	threads  []*thread
	readyQ   []*thread
	events   eventHeap
	eventSeq uint64

	// Per-run scratch state reused across stop-the-world collections.
	gcWorkers   []int
	gcWorkerEnd []uint64

	locks map[uint64]*lockState
	sems  map[uint64]*semState

	ioBlocked int

	// OnExternalCall fires when a thread calls a co-simulated peer
	// (netsim.Network.AddExternalPeer): the cluster coordinator delivers
	// the request to the other machine and later wakes the thread with
	// WakeExternal. The thread blocks indefinitely otherwise.
	OnExternalCall func(tid int, peer uint8, reqBytes, respBytes uint32, t uint64)
	// OnOpComplete fires when any operation finishes playback, with its
	// completion time — the cluster coordinator uses it to send replies.
	OnOpComplete func(op *trace.Op, tid int, t uint64)

	// Measurement counters (cleared by ResetStats).
	businessOps                uint64
	opsByTag                   map[string]uint64
	latByTag                   map[string]*stats.Histogram
	gcWall                     uint64
	gcCount                    uint64
	gcPauses                   stats.Histogram
	lockWaitCycles             uint64
	lockBlocks                 uint64
	lockAcquires               uint64
	waitMon, waitSpin, waitSem uint64

	// Observability (nil when disabled — the zero-overhead default).
	tracer *obs.Tracer
	prof   *obs.Profiler
	rt     *reqtrace.Collector

	// Fault injection (nil when disabled): gc-storm windows amplify
	// stop-the-world pauses.
	faults *fault.Injector

	// Watchdog (0 = disabled): see watchdog.go.
	watchdogCycles uint64
	lastDispatch   uint64
	wdReport       *WatchdogReport
}

// threadTrackBase offsets thread IDs away from CPU IDs on the trace
// timeline, so processor tracks (GC, bus) and thread tracks (locks, ops,
// network) never collide.
const threadTrackBase = 100

// AttachObs wires an observer through the machine: the engine and its bus
// get the tracer, every core gets the profiler with component names
// resolved from the code layout, and thread/CPU tracks are labeled. Call
// it once, before Run.
func (e *Engine) AttachObs(o *obs.Observer) {
	if o == nil {
		return
	}
	e.tracer = o.Tracer
	e.prof = o.Profiler
	e.hier.Bus().Tracer = o.Tracer
	// Only processor-set cores feed the profiler: Results aggregates the
	// Figure 6/7 CPI decomposition over the processor set, and the profile
	// must total to exactly the same cycles.
	for _, p := range e.cfg.PSet {
		e.cores[p].Prof = o.Profiler
	}
	for _, comp := range e.layout.Components() {
		o.Profiler.NameComponent(int(comp.ID), comp.Name)
	}
	if o.Tracer != nil {
		for i := 0; i < e.cfg.CPUs; i++ {
			o.Tracer.NameThread(o.Tracer.Pid, i, fmt.Sprintf("cpu%d", i))
		}
		for _, th := range e.threads {
			o.Tracer.NameThread(o.Tracer.Pid, threadTrackBase+th.id,
				fmt.Sprintf("%s#%d", th.name, th.id))
		}
	}
}

// GCPauses returns the distribution of stop-the-world pause lengths in
// cycles since the last ResetStats (the jvm.gc.pause_cycles metric).
func (e *Engine) GCPauses() *stats.Histogram { return &e.gcPauses }

// SetReqTrace attaches a request-latency collector: every tracked operation
// gets a span decomposed into phase segments as the engine plays it. nil
// (the default) keeps the zero-overhead path; an attached collector is
// passive — it never changes scheduling, timing, or RNG draws. Call it
// before Run.
func (e *Engine) SetReqTrace(rt *reqtrace.Collector) { e.rt = rt }

// ReqTrace returns the attached latency collector, or nil.
func (e *Engine) ReqTrace() *reqtrace.Collector { return e.rt }

// NewEngine builds a machine. The hierarchy must have cfg.CPUs slots; the
// layout provides code components; net resolves NetCall items (may be nil
// for single-machine workloads).
func NewEngine(cfg Config, hier *memsys.Hierarchy, layout *ifetch.CodeLayout, net *netsim.Network, rng *simrand.Rand) *Engine {
	if hier.Config().CPUs != cfg.CPUs {
		panic(fmt.Sprintf("osmodel: hierarchy has %d CPUs, engine %d", hier.Config().CPUs, cfg.CPUs))
	}
	if len(cfg.PSet) == 0 || len(cfg.PSet) > cfg.CPUs {
		panic("osmodel: invalid processor set")
	}
	e := &Engine{
		cfg:      cfg,
		hier:     hier,
		layout:   layout,
		net:      net,
		freeAt:   make([]uint64, cfg.CPUs),
		idleFrom: make([]uint64, cfg.CPUs),
		idleIO:   make([]bool, cfg.CPUs),
		acct:     make([]Modes, cfg.CPUs),
		inPSet:   make([]bool, cfg.CPUs),
		locks:    make(map[uint64]*lockState),
		sems:     make(map[uint64]*semState),
		opsByTag: make(map[string]uint64),
		latByTag: make(map[string]*stats.Histogram),
	}
	for _, c := range cfg.PSet {
		if c < 0 || c >= cfg.CPUs {
			panic("osmodel: processor set member out of range")
		}
		e.inPSet[c] = true
	}
	for i := 0; i < cfg.CPUs; i++ {
		gen := ifetch.NewGen(layout, rng.Derive(uint64(i)))
		e.cores = append(e.cores, cpu.NewCore(cfg.Core, i, hier, gen))
		e.idleFrom[i] = idleSentinel
	}
	return e
}

// AddThread registers a workload thread restricted to the processor set.
// It returns the thread ID.
func (e *Engine) AddThread(name string, src OpSource) int {
	var mask uint64
	for _, c := range e.cfg.PSet {
		mask |= 1 << uint(c)
	}
	return e.addThread(name, src, mask)
}

// AddPinnedThread registers a thread pinned to one CPU (OS daemons run one
// per processor, outside the processor set).
func (e *Engine) AddPinnedThread(name string, src OpSource, cpuID int) int {
	if cpuID < 0 || cpuID >= e.cfg.CPUs {
		panic("osmodel: pin target out of range")
	}
	return e.addThread(name, src, 1<<uint(cpuID))
}

func (e *Engine) addThread(name string, src OpSource, mask uint64) int {
	th := &thread{id: len(e.threads), name: name, source: src, mask: mask, state: stReady, lastCPU: -1}
	e.threads = append(e.threads, th)
	e.readyQ = append(e.readyQ, th)
	return th.id
}

func (e *Engine) wakeAt(th *thread, t uint64) {
	e.eventSeq++
	e.events.push(event{time: t, seq: e.eventSeq, th: th})
	// If an eligible processor is sitting in an idle stretch that covers
	// t, pull it back so the thread is dispatched at its wake time —
	// preferring its cache-warm home processor.
	pull := -1
	if th.lastCPU >= 0 && th.mask&(1<<uint(th.lastCPU)) != 0 &&
		e.idleFrom[th.lastCPU] != idleSentinel && e.idleFrom[th.lastCPU] <= t {
		pull = th.lastCPU
	} else {
		for i := 0; i < e.cfg.CPUs; i++ {
			if th.mask&(1<<uint(i)) != 0 && e.idleFrom[i] != idleSentinel && e.idleFrom[i] <= t {
				pull = i
				break
			}
		}
	}
	if pull >= 0 && e.freeAt[pull] > t {
		e.freeAt[pull] = t
	}
}

func (e *Engine) drainEvents(now uint64) {
	for len(e.events) > 0 && e.events[0].time <= now {
		ev := e.events.pop()
		th := ev.th
		if th.state == stBlockedIO {
			e.ioBlocked--
		}
		th.state = stReady
		th.bound = false
		th.readyAt = ev.time
		e.readyQ = append(e.readyQ, th)
	}
}

func (e *Engine) nextEventTime() (uint64, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].time, true
}

// pickThread removes and returns the best ready thread for cpuID: first a
// thread that last ran here (soft affinity — its cache state is warm) or
// has never run, then any unbound eligible thread (a bound thread is still
// mid-quantum on its own processor and is never stolen).
func (e *Engine) pickThread(cpuID int, now uint64) *thread {
	bit := uint64(1) << uint(cpuID)
	steal := -1
	pick := -1
	for i, th := range e.readyQ {
		if th.mask&bit == 0 || th.readyAt > now {
			continue
		}
		if th.lastCPU == cpuID || th.lastCPU == -1 {
			pick = i
			break
		}
		if steal == -1 && !th.bound {
			steal = i
		}
	}
	if pick == -1 && steal >= 0 {
		pick = steal
	}
	if pick == -1 {
		return nil
	}
	th := e.readyQ[pick]
	e.readyQ = append(e.readyQ[:pick], e.readyQ[pick+1:]...)
	if th.lastCPU == cpuID || th.lastCPU == -1 {
		th.stealRun = 0
		th.lastCPU = cpuID
	} else {
		th.stealRun++
		if th.stealRun >= 4 {
			// Persistent imbalance: adopt the new home. Transient steals
			// keep the old home so the thread-to-processor partition does
			// not scramble (cache-affinity hysteresis).
			th.stealRun = 0
			th.lastCPU = cpuID
		}
	}
	// This processor has moved on: another thread it sliced mid-quantum
	// and has now left waiting for a while is genuinely preempted, not
	// "still running", and becomes fair game for idle processors. Without
	// this, a busy home CPU strands a pile of bound threads for whole
	// quanta while the rest of the machine idles. The grace period keeps
	// briefly-parked threads home (cache affinity).
	grace := e.cfg.Quantum / 4
	for _, other := range e.readyQ {
		if other.bound && other.lastCPU == cpuID && now > other.readyAt+grace {
			other.bound = false
		}
	}
	return th
}

// flushIdle charges the pending idle stretch of a processor up to `to`,
// attributed as it was when the stretch began.
func (e *Engine) flushIdle(cpuID int, to uint64) {
	if e.idleFrom[cpuID] == idleSentinel {
		return
	}
	e.chargeIdleAs(cpuID, e.idleFrom[cpuID], to, e.idleIO[cpuID])
	e.idleFrom[cpuID] = idleSentinel
}

func (e *Engine) chargeIdleAs(cpuID int, from, to uint64, io bool) {
	if to <= from {
		return
	}
	if io {
		e.acct[cpuID].IOWait += to - from
	} else {
		e.acct[cpuID].Idle += to - from
	}
}

func (e *Engine) chargeBusy(cpuID int, kernel bool, cycles uint64) {
	if kernel {
		e.acct[cpuID].System += cycles
	} else {
		e.acct[cpuID].User += cycles
	}
}

// Run advances the simulation until every processor reaches the horizon (in
// cycles) or no runnable work remains.
func (e *Engine) Run(horizon uint64) {
	for {
		// Pick the earliest-free CPU.
		c := 0
		for i := 1; i < e.cfg.CPUs; i++ {
			if e.freeAt[i] < e.freeAt[c] {
				c = i
			}
		}
		t := e.freeAt[c]
		if t >= horizon {
			for i := 0; i < e.cfg.CPUs; i++ {
				if e.idleFrom[i] != idleSentinel && horizon > e.idleFrom[i] {
					e.chargeIdleAs(i, e.idleFrom[i], horizon, e.idleIO[i])
					e.idleFrom[i] = horizon
				}
			}
			return
		}
		e.drainEvents(t)
		th := e.pickThread(c, t)
		if th == nil {
			if e.watchdogCycles > 0 && e.checkWatchdog(t) {
				return
			}
			// Nothing eligible now: advance to the next moment anything
			// can change — an event, another CPU finishing its run, or a
			// foreign ready thread becoming stealable.
			next := horizon
			if et, ok := e.nextEventTime(); ok && et < next {
				next = et
			}
			for i := 0; i < e.cfg.CPUs; i++ {
				if e.freeAt[i] > t && e.freeAt[i] < next {
					next = e.freeAt[i]
				}
			}
			if next <= t {
				next = t + 1
			}
			if e.idleFrom[c] == idleSentinel {
				e.idleFrom[c] = t
				e.idleIO[c] = e.ioBlocked > 0
			}
			e.freeAt[c] = next
			continue
		}
		e.flushIdle(c, t)
		e.lastDispatch = t
		e.runThread(th, c, t)
	}
}

// runThread executes th on CPU c from time t until its engine slice ends,
// it blocks, or it completes, updating freeAt[c].
func (e *Engine) runThread(th *thread, c int, start uint64) {
	core := e.cores[c]
	t := start
	th.state = stRunning
	if th.quantumLeft == 0 {
		th.quantumLeft = e.cfg.Quantum
	}
	slice := e.cfg.Slice
	if slice == 0 || slice > th.quantumLeft {
		slice = th.quantumLeft
	}
	deadline := start + slice

	// requeue returns the thread to the ready queue: to the front with its
	// remaining quantum after an engine slice, to the back with a fresh
	// quantum when the quantum expired (and no lock is held — preemption
	// control defers preemption inside critical sections).
	requeue := func() {
		th.state = stReady
		th.readyAt = t
		elapsed := t - start
		if elapsed >= th.quantumLeft && th.locksHeld == 0 {
			// Quantum expired: a real preemption point; any processor may
			// pick the thread up.
			th.quantumLeft = 0
			th.bound = false
			e.readyQ = append(e.readyQ, th)
			return
		}
		if elapsed >= th.quantumLeft {
			th.quantumLeft = 0
		} else {
			th.quantumLeft -= elapsed
		}
		// Engine-slice boundary: still logically running here. Front-insert
		// by shifting in place: the queue is short and this avoids a fresh
		// backing array per slice (the dominant allocation site of a run).
		th.bound = true
		e.readyQ = append(e.readyQ, nil)
		copy(e.readyQ[1:], e.readyQ)
		e.readyQ[0] = th
	}

	for {
		if t >= deadline {
			requeue()
			break
		}
		if th.op == nil {
			op := th.source.NextOp(th.id, t)
			if op == nil {
				th.state = stDone
				break
			}
			th.op = op
			th.opStart = t
			th.idx = 0
			if e.rt != nil {
				th.span = e.rt.Begin(op, t)
			}
		}
		if th.idx >= len(th.op.Items) {
			if len(th.op.Items) == 0 {
				// A zero-item operation must still consume time, or a
				// source that keeps returning them would wedge the engine.
				t++
			}
			if th.op.Business {
				e.businessOps++
				e.opsByTag[th.op.Tag]++
				h := e.latByTag[th.op.Tag]
				if h == nil {
					h = &stats.Histogram{}
					e.latByTag[th.op.Tag] = h
				}
				if t > th.opStart {
					h.Add(t - th.opStart)
				}
				if e.tracer.Enabled(obs.CompWorkload) {
					e.tracer.Span(obs.CompWorkload, th.op.Tag, threadTrackBase+th.id,
						th.opStart, t)
				}
			}
			if e.OnOpComplete != nil {
				e.OnOpComplete(th.op, th.id, t)
			}
			if th.span != nil {
				e.rt.End(th.span, t)
				th.span = nil
			}
			th.op = nil
			continue
		}
		it := &th.op.Items[th.idx]
		switch it.Kind {
		case trace.KindInstr:
			kernel := e.layout.Component(it.Comp).Kernel
			th.mode = kernel
			var base0 uint64
			if th.span != nil {
				base0 = core.Counters.BaseCycles
			}
			cy := core.ExecInstr(it.Comp, uint64(it.N), t)
			if th.span != nil {
				// Split the segment the way the core accounted it: retired
				// work is CPU, fetch stalls are memory time.
				base := core.Counters.BaseCycles - base0
				if base > cy {
					base = cy
				}
				th.span.AddSplit(base, cy-base)
			}
			e.chargeBusy(c, kernel, cy)
			t += cy
			th.idx++

		case trace.KindRead:
			cy := core.Load(it.Addr, uint64(it.N), t)
			th.span.Add(reqtrace.PhaseMemStall, cy)
			e.chargeBusy(c, th.mode, cy)
			t += cy
			th.idx++

		case trace.KindWrite:
			cy := core.Store(it.Addr, uint64(it.N), t)
			th.span.Add(reqtrace.PhaseMemStall, cy)
			e.chargeBusy(c, th.mode, cy)
			t += cy
			th.idx++

		case trace.KindLockAcq:
			ls := e.lock(it.ID)
			e.lockAcquires++
			if !ls.held {
				ls.held = true
				ls.owner = th
				th.locksHeld++
				th.idx++
				continue
			}
			if ls.owner == th {
				panic("osmodel: recursive lock acquisition: " + th.name)
			}
			// Contended. Adaptive (spin) locks burn busy cycles first —
			// kernel time for kernel locks — then block.
			if it.Aux == 1 {
				ls.spin = true
				e.chargeBusy(c, th.mode, e.cfg.SpinCycles)
				th.span.Add(reqtrace.PhaseLockWait, e.cfg.SpinCycles)
				t += e.cfg.SpinCycles
			}
			e.lockBlocks++
			ls.waiters = append(ls.waiters, th)
			th.state = stBlockedLock
			th.lockBlockedAt = t
			th.quantumLeft = 0
			core.DrainStoreBuffer()
			e.freeAt[c] = t
			return

		case trace.KindLockRel:
			ls := e.lock(it.ID)
			if !ls.held || ls.owner != th {
				panic("osmodel: release of lock not held: " + th.name)
			}
			th.locksHeld--
			if len(ls.waiters) > 0 {
				next := ls.waiters[0]
				ls.waiters = ls.waiters[1:]
				ls.owner = next
				next.locksHeld++
				// Direct handoff: the waiter resumes past its acquire item.
				next.idx++
				handoff := e.cfg.MonitorHandoff
				if ls.spin {
					handoff = e.cfg.HandoffCycles
				}
				grant := t + handoff
				// Per-CPU clocks may skew by up to a quantum; a release
				// observed "before" the block is a zero wait.
				if grant > next.lockBlockedAt {
					e.lockWaitCycles += grant - next.lockBlockedAt
					next.span.Add(reqtrace.PhaseLockWait, grant-next.lockBlockedAt)
					if ls.spin {
						e.waitSpin += grant - next.lockBlockedAt
					} else {
						e.waitMon += grant - next.lockBlockedAt
					}
					if e.tracer.Enabled(obs.CompOS) {
						kind := "monitor"
						if ls.spin {
							kind = "spin"
						}
						e.tracer.Span(obs.CompOS, "lock.wait", threadTrackBase+next.id,
							next.lockBlockedAt, grant,
							obs.Arg{Key: "kind", Val: kind}, obs.Arg{Key: "lock", Val: it.ID})
					}
				}
				e.wakeAt(next, grant)
			} else {
				ls.held = false
				ls.owner = nil
			}
			th.idx++

		case trace.KindSemAcq:
			ss, ok := e.sems[it.ID]
			if !ok {
				ss = &semState{available: int(it.Aux)}
				e.sems[it.ID] = ss
			}
			e.lockAcquires++
			if ss.available > 0 {
				ss.available--
				th.idx++
				continue
			}
			// Pool exhausted: wait for a unit.
			e.lockBlocks++
			ss.waiters = append(ss.waiters, th)
			th.state = stBlockedLock
			th.lockBlockedAt = t
			th.quantumLeft = 0
			core.DrainStoreBuffer()
			e.freeAt[c] = t
			return

		case trace.KindSemRel:
			ss := e.sems[it.ID]
			if ss == nil {
				panic("osmodel: release of unknown semaphore")
			}
			if len(ss.waiters) > 0 {
				next := ss.waiters[0]
				ss.waiters = ss.waiters[1:]
				next.idx++ // the unit passes directly to the waiter
				grant := t + e.cfg.MonitorHandoff
				if grant > next.lockBlockedAt {
					e.lockWaitCycles += grant - next.lockBlockedAt
					next.span.Add(reqtrace.PhaseLockWait, grant-next.lockBlockedAt)
					e.waitSem += grant - next.lockBlockedAt
					if e.tracer.Enabled(obs.CompOS) {
						e.tracer.Span(obs.CompOS, "lock.wait", threadTrackBase+next.id,
							next.lockBlockedAt, grant,
							obs.Arg{Key: "kind", Val: "sem"}, obs.Arg{Key: "lock", Val: it.ID})
					}
				}
				e.wakeAt(next, grant)
			} else {
				ss.available++
			}
			th.idx++

		case trace.KindNetCall:
			if e.net == nil {
				panic("osmodel: NetCall with no network configured")
			}
			th.idx++
			th.state = stBlockedIO
			th.quantumLeft = 0
			e.ioBlocked++
			if e.net.External(it.Peer) {
				// Co-simulated peer: the coordinator wakes us. The whole
				// round trip lands in the span's net phase at wake time;
				// the remote breakdown belongs to the peer machine's own
				// collector.
				th.extFrom = t
				if e.OnExternalCall == nil {
					panic("osmodel: external peer with no coordinator attached")
				}
				e.OnExternalCall(th.id, it.Peer, uint32(it.ID), it.Aux, t)
			} else {
				done, det := e.net.RoundTripDetail(it.Peer, t, uint32(it.ID), it.Aux)
				if th.span != nil {
					rtt := done - t
					remote := det.Queue + det.Service
					if remote > rtt {
						remote = rtt
					}
					th.span.Add(reqtrace.PhaseNet, rtt-remote)
					th.span.Add(reqtrace.PhaseDBQueue, det.Queue)
					th.span.Add(reqtrace.PhaseDBService, det.Service)
				}
				if e.tracer.Enabled(obs.CompNet) {
					e.tracer.Span(obs.CompNet, "net.call", threadTrackBase+th.id, t, done,
						obs.Arg{Key: "peer", Val: uint64(it.Peer)},
						obs.Arg{Key: "req_bytes", Val: it.ID},
						obs.Arg{Key: "resp_bytes", Val: uint64(it.Aux)})
				}
				e.wakeAt(th, done)
			}
			core.DrainStoreBuffer()
			e.freeAt[c] = t
			return

		case trace.KindThink:
			th.idx++
			th.state = stSleeping
			th.quantumLeft = 0
			th.span.Add(reqtrace.PhaseThink, uint64(it.N))
			e.wakeAt(th, t+uint64(it.N))
			e.freeAt[c] = t
			return

		case trace.KindGCPause:
			th.idx++
			t = e.stopTheWorld(c, t, it.GC)
			// After the world restarts the thread gets a fresh slice.
			start = t
			th.quantumLeft = e.cfg.Quantum
			deadline = t + slice

		default:
			panic("osmodel: unknown trace item kind")
		}
	}
	e.freeAt[c] = t
}

// stopTheWorld quiesces all processors, runs the collector's recorded work
// (on one processor, or split across GCThreads processors of the set), and
// charges GC idle to every non-collecting processor. It returns the time
// the world restarts.
func (e *Engine) stopTheWorld(c int, t uint64, gc *trace.GC) uint64 {
	// All processors must reach a safepoint: the collector starts when the
	// busiest processor finishes its current run.
	stwStart := t
	for i := 0; i < e.cfg.CPUs; i++ {
		if e.freeAt[i] > stwStart {
			stwStart = e.freeAt[i]
		}
	}
	// The triggering processor is parked at the trigger time; quiescence
	// waiting is charged uniformly below.
	e.freeAt[c] = t

	// Choose the collector processors: the triggering CPU plus the first
	// GCThreads-1 others of the processor set. The selection reuses the
	// engine's scratch slice across collections.
	workers := append(e.gcWorkers[:0], c)
	for _, p := range e.cfg.PSet {
		if len(workers) >= e.cfg.GCThreads || e.cfg.GCThreads <= 1 {
			break
		}
		if p != c {
			workers = append(workers, p)
		}
	}
	e.gcWorkers = workers

	// Split the collector's work round-robin by item and play each share
	// on its processor. Collector cycles are user-mode JVM time. The world
	// restarts when the slowest worker finishes (natural imbalance stands
	// in for synchronization overhead).
	var prevPhase string
	if e.prof != nil {
		prevPhase = e.prof.PushSubPhase("gc")
	}
	stwEnd := stwStart
	if cap(e.gcWorkerEnd) < len(workers) {
		e.gcWorkerEnd = make([]uint64, len(workers))
	}
	workerEnd := e.gcWorkerEnd[:len(workers)]
	for wi, wc := range workers {
		core := e.cores[wc]
		gt := stwStart
		for i := wi; i < len(gc.Items); i += len(workers) {
			it := &gc.Items[i]
			switch it.Kind {
			case trace.KindInstr:
				cy := core.ExecInstr(it.Comp, uint64(it.N), gt)
				e.chargeBusy(wc, false, cy)
				gt += cy
			case trace.KindRead:
				cy := core.Load(it.Addr, uint64(it.N), gt)
				e.chargeBusy(wc, false, cy)
				gt += cy
			case trace.KindWrite:
				cy := core.Store(it.Addr, uint64(it.N), gt)
				e.chargeBusy(wc, false, cy)
				gt += cy
			default:
				panic("osmodel: collector trace may contain only instructions and data references")
			}
		}
		workerEnd[wi] = gt
		if gt > stwEnd {
			stwEnd = gt
		}
	}

	// A gc-storm fault amplifies the pause: the same collection holds the
	// world stopped GCFactor times longer (heap pressure and fragmentation
	// forcing extra passes). The extension is pure stall — the collectors
	// idle through it — so non-storm runs are byte-identical.
	if f := e.faults.GCFactor(stwStart); f > 1 && stwEnd > stwStart {
		extended := stwStart + uint64(float64(stwEnd-stwStart)*f)
		for wi, wc := range workers {
			e.acct[wc].GCIdle += extended - workerEnd[wi]
			workerEnd[wi] = extended
		}
		stwEnd = extended
	}

	isWorker := func(i int) bool {
		for _, w := range workers {
			if w == i {
				return true
			}
		}
		return false
	}
	// Every non-collecting processor idles from the end of its own work
	// (or the trigger time) to the restart; collectors idle only for their
	// share of the imbalance (ignored — it is small).
	for i := 0; i < e.cfg.CPUs; i++ {
		if isWorker(i) {
			continue
		}
		from := e.freeAt[i]
		if e.idleFrom[i] != idleSentinel {
			// The processor was idling; everything before the trigger is
			// ordinary idle, the rest is GC idle.
			mark := t
			if e.idleFrom[i] > mark {
				mark = e.idleFrom[i]
			}
			e.flushIdle(i, mark)
			from = mark
		}
		if from < t {
			from = t
		}
		if stwEnd > from {
			e.acct[i].GCIdle += stwEnd - from
		}
		e.freeAt[i] = stwEnd
	}
	e.flushIdle(c, t)
	e.freeAt[c] = stwEnd
	e.gcWall += stwEnd - stwStart
	e.gcCount++
	e.gcPauses.Add(stwEnd - stwStart)
	if e.rt != nil {
		// The pause freezes the whole machine: nothing dispatches before
		// stwEnd, so every request in flight absorbs the full pause. That is
		// the jvm.gc.pause charge — overlap, not a disjoint slice, since a
		// request blocked on a remote tier is stalled by the pause and the
		// wire at once.
		pause := stwEnd - stwStart
		e.rt.RecordGCPause(pause)
		for _, oth := range e.threads {
			oth.span.Add(reqtrace.PhaseGC, pause)
		}
	}
	if e.prof != nil {
		e.prof.SetPhase(prevPhase)
	}
	if e.tracer.Enabled(obs.CompJVM) {
		name := "gc.minor"
		if gc.Major {
			name = "gc.major"
		}
		e.tracer.Span(obs.CompJVM, name, c, stwStart, stwEnd,
			obs.Arg{Key: "live_bytes", Val: gc.LiveBytes},
			obs.Arg{Key: "copied_objs", Val: gc.CopiedObjs},
			obs.Arg{Key: "freed_bytes", Val: gc.FreedBytes},
			obs.Arg{Key: "workers", Val: uint64(len(workers))})
	}
	return stwEnd
}

func (e *Engine) lock(id uint64) *lockState {
	ls, ok := e.locks[id]
	if !ok {
		ls = &lockState{}
		e.locks[id] = ls
	}
	return ls
}

// WakeExternal unblocks a thread that is waiting on a co-simulated peer
// (see OnExternalCall). The wake time is clamped to be non-regressive.
func (e *Engine) WakeExternal(tid int, at uint64) {
	th := e.threads[tid]
	if th.state != stBlockedIO {
		panic("osmodel: WakeExternal on a thread that is not waiting externally")
	}
	if th.span != nil && at > th.extFrom {
		th.span.Add(reqtrace.PhaseNet, at-th.extFrom)
	}
	e.wakeAt(th, at)
}

// Now returns the latest point any processor has reached.
func (e *Engine) Now() uint64 {
	var m uint64
	for _, f := range e.freeAt {
		if f > m {
			m = f
		}
	}
	return m
}

// ResetStats zeroes all measurement state (mode accounting, CPI counters,
// cache/bus statistics, operation counts, GC wall time) while leaving the
// machine warm — caches, locks, threads, and schedules are untouched. Call
// it at the warm-up/measurement boundary.
func (e *Engine) ResetStats() {
	for i := range e.acct {
		e.acct[i] = Modes{}
	}
	for _, c := range e.cores {
		c.ResetCounters()
	}
	e.hier.ResetStats()
	e.businessOps = 0
	e.opsByTag = make(map[string]uint64)
	e.latByTag = make(map[string]*stats.Histogram)
	e.gcWall = 0
	e.gcCount = 0
	e.gcPauses = stats.Histogram{}
	e.lockWaitCycles = 0
	e.lockBlocks = 0
	e.lockAcquires = 0
	e.waitMon, e.waitSpin, e.waitSem = 0, 0, 0
	// Latency spans reset with everything else: completed spans are dropped
	// and the time series re-anchors at the boundary. In-flight spans stay
	// open and complete into the fresh window, exactly like opsByTag counts
	// boundary-spanning operations at completion time.
	e.rt.Reset(e.Now())
}

// Results summarizes the measurement window (since the last ResetStats).
type Results struct {
	BusinessOps uint64
	OpsByTag    map[string]uint64
	// LatencyByTag holds per-operation-type response-time histograms in
	// cycles (ECperf's specification bounds the 90th percentile; the paper
	// relaxed it, §2.2 — these histograms let either policy be checked).
	LatencyByTag map[string]*stats.Histogram
	// PSet accounting, summed over the processor set.
	Modes Modes
	// CPU aggregates CPI decomposition over the processor set's cores.
	CPU            cpu.Counters
	GCWall         uint64
	GCCount        uint64
	LockWaitCycles uint64
	// LockBlocks / LockAcquires count contended vs total monitor
	// acquisitions.
	LockBlocks   uint64
	LockAcquires uint64
	// Wait cycles by lock class: Java-style monitors, kernel spin locks,
	// pool semaphores.
	WaitMonitor, WaitSpin, WaitSem uint64
}

// Results snapshots the measurement counters.
func (e *Engine) Results() Results {
	r := Results{
		BusinessOps:    e.businessOps,
		OpsByTag:       make(map[string]uint64, len(e.opsByTag)),
		LatencyByTag:   e.latByTag,
		GCWall:         e.gcWall,
		GCCount:        e.gcCount,
		LockWaitCycles: e.lockWaitCycles,
		LockBlocks:     e.lockBlocks,
		LockAcquires:   e.lockAcquires,
		WaitMonitor:    e.waitMon,
		WaitSpin:       e.waitSpin,
		WaitSem:        e.waitSem,
	}
	for k, v := range e.opsByTag {
		r.OpsByTag[k] = v
	}
	for i := 0; i < e.cfg.CPUs; i++ {
		if !e.inPSet[i] {
			continue
		}
		r.Modes.Add(&e.acct[i])
		r.CPU.Add(&e.cores[i].Counters)
	}
	return r
}

// Hierarchy returns the machine's memory system.
func (e *Engine) Hierarchy() *memsys.Hierarchy { return e.hier }

// DebugThreads returns one line per thread (state, home CPU, flags) — a
// scheduler-health diagnostic.
func (e *Engine) DebugThreads() []string {
	names := []string{"ready", "running", "blk-lock", "blk-io", "sleeping", "done"}
	var out []string
	for _, th := range e.threads {
		inQ := 0
		for _, q := range e.readyQ {
			if q == th {
				inQ++
			}
		}
		out = append(out, fmt.Sprintf("%s#%d state=%s home=%d bound=%v readyAt=%d qleft=%d inQ=%d locksHeld=%d",
			th.name, th.id, names[th.state], th.lastCPU, th.bound, th.readyAt, th.quantumLeft, inQ, th.locksHeld))
	}
	return out
}

// ThreadsDone reports whether every thread has finished.
func (e *Engine) ThreadsDone() bool {
	for _, th := range e.threads {
		if th.state != stDone {
			return false
		}
	}
	return true
}
