package osmodel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// rig bundles a small machine for engine tests.
type rig struct {
	eng    *Engine
	layout *ifetch.CodeLayout
	space  *mem.AddrSpace
	user   *ifetch.Component
	kern   *ifetch.Component
	data   mem.Region
}

func newRig(t *testing.T, cpus int, net *netsim.Network) *rig {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
	kern := layout.Add("kernel", 64<<10, true, ifetch.DefaultProfile())
	mcfg := memsys.DefaultConfig(cpus)
	mcfg.L1I = cache.Config{Name: "L1I", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64}
	mcfg.L1D = cache.Config{Name: "L1D", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64}
	mcfg.L2 = cache.Config{Name: "L2", SizeBytes: 128 << 10, Assoc: 4, BlockBytes: 64}
	cfg := DefaultConfig(cpus)
	cfg.Quantum = 100_000
	eng := NewEngine(cfg, memsys.New(mcfg), layout, net, simrand.New(11))
	return &rig{
		eng:    eng,
		layout: layout,
		space:  space,
		user:   user,
		kern:   kern,
		data:   space.Reserve("testdata", 1<<20),
	}
}

func op(tag string, business bool, build func(*trace.Recorder)) *trace.Op {
	rec := trace.NewRecorder(tag, business)
	build(rec)
	return rec.Finish()
}

func TestSingleThreadAccounting(t *testing.T) {
	r := newRig(t, 1, nil)
	src := &ScriptSource{Ops: []*trace.Op{
		op("work", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 10_000)
			rec.Read(r.data.Base, 64)
		}),
	}}
	r.eng.AddThread("worker", src)
	r.eng.Run(10_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 1 || res.OpsByTag["work"] != 1 {
		t.Fatalf("ops = %+v", res)
	}
	if res.Modes.User < 10_000 {
		t.Fatalf("user cycles = %d", res.Modes.User)
	}
	if res.Modes.System != 0 {
		t.Fatalf("system cycles = %d for pure user work", res.Modes.System)
	}
	if res.CPU.Instructions != 10_000 {
		t.Fatalf("instructions = %d", res.CPU.Instructions)
	}
	if !r.eng.ThreadsDone() {
		t.Fatal("thread not done")
	}
}

func TestKernelModeAccounting(t *testing.T) {
	r := newRig(t, 1, nil)
	src := &ScriptSource{Ops: []*trace.Op{
		op("sys", false, func(rec *trace.Recorder) {
			rec.Instr(r.kern.ID, 5_000)
			rec.Read(r.data.Base, 8) // data ref inherits kernel mode
			rec.Instr(r.user.ID, 5_000)
		}),
	}}
	r.eng.AddThread("w", src)
	r.eng.Run(10_000_000)
	res := r.eng.Results()
	if res.Modes.System < 5_000 {
		t.Fatalf("system = %d", res.Modes.System)
	}
	if res.Modes.User < 5_000 {
		t.Fatalf("user = %d", res.Modes.User)
	}
}

func TestTwoThreadsShareOneCPU(t *testing.T) {
	r := newRig(t, 1, nil)
	mk := func() *ScriptSource {
		var ops []*trace.Op
		for i := 0; i < 5; i++ {
			ops = append(ops, op("chunk", true, func(rec *trace.Recorder) {
				rec.Instr(r.user.ID, 200_000) // two quanta each
			}))
		}
		return &ScriptSource{Ops: ops}
	}
	r.eng.AddThread("a", mk())
	r.eng.AddThread("b", mk())
	r.eng.Run(50_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 10 {
		t.Fatalf("ops = %d, want 10 (both threads must progress)", res.BusinessOps)
	}
}

func TestMutualExclusionAndLockWait(t *testing.T) {
	r := newRig(t, 2, nil)
	lockAddr := r.data.Base
	mk := func() *ScriptSource {
		var ops []*trace.Op
		for i := 0; i < 20; i++ {
			ops = append(ops, op("critical", true, func(rec *trace.Recorder) {
				rec.LockAcquire(42, lockAddr)
				rec.Write(lockAddr, 8)
				rec.Instr(r.user.ID, 50_000) // long critical section
				rec.Write(lockAddr, 8)
				rec.LockRelease(42, lockAddr)
			}))
		}
		return &ScriptSource{Ops: ops}
	}
	r.eng.AddThread("a", mk())
	r.eng.AddThread("b", mk())
	r.eng.Run(100_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 40 {
		t.Fatalf("ops = %d, want 40", res.BusinessOps)
	}
	if res.LockWaitCycles == 0 {
		t.Fatal("no lock contention recorded for serialized critical sections")
	}
	// With one big lock, the second CPU is mostly idle.
	if res.Modes.Idle == 0 {
		t.Fatal("no idle time despite full serialization on 2 CPUs")
	}
}

func TestSpinLockChargesBusyTime(t *testing.T) {
	r := newRig(t, 2, nil)
	lockAddr := r.data.Base
	mk := func() *ScriptSource {
		var ops []*trace.Op
		for i := 0; i < 20; i++ {
			ops = append(ops, op("k", true, func(rec *trace.Recorder) {
				rec.LockAcquireSpin(43, lockAddr)
				rec.Instr(r.kern.ID, 30_000)
				rec.LockRelease(43, lockAddr)
			}))
		}
		return &ScriptSource{Ops: ops}
	}
	r.eng.AddThread("a", mk())
	r.eng.AddThread("b", mk())
	r.eng.Run(100_000_000)
	res := r.eng.Results()
	// System time must exceed the raw kernel path (spin cycles add in).
	if res.Modes.System <= 40*30_000 {
		t.Fatalf("system = %d, expected spin overhead above %d", res.Modes.System, 40*30_000)
	}
}

func TestNetCallBlocksAndChargesIOWait(t *testing.T) {
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddPeer(2, db.NewServer(db.Config{Workers: 1, BaseServiceCycles: 500_000}, simrand.New(4)))
	r := newRig(t, 1, net)
	src := &ScriptSource{Ops: []*trace.Op{
		op("call", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 1_000)
			rec.NetCall(2, 256, 1024)
			rec.Instr(r.user.ID, 1_000)
		}),
	}}
	r.eng.AddThread("w", src)
	r.eng.Run(50_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 1 {
		t.Fatalf("op did not complete: %+v", res)
	}
	if res.Modes.IOWait < 500_000 {
		t.Fatalf("iowait = %d, want >= peer service time", res.Modes.IOWait)
	}
}

func TestThinkSleeps(t *testing.T) {
	r := newRig(t, 1, nil)
	src := &ScriptSource{Ops: []*trace.Op{
		op("nap", true, func(rec *trace.Recorder) {
			rec.Think(1_000_000)
			rec.Instr(r.user.ID, 100)
		}),
	}}
	r.eng.AddThread("w", src)
	r.eng.Run(10_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 1 {
		t.Fatal("op incomplete")
	}
	if res.Modes.Idle < 900_000 {
		t.Fatalf("idle = %d, want ~1M from think time", res.Modes.Idle)
	}
}

func TestGCPauseStopsTheWorld(t *testing.T) {
	r := newRig(t, 4, nil)
	gcRec := trace.NewRecorder("gc", false)
	gcRec.Instr(r.user.ID, 500_000)
	gc := &trace.GC{Items: gcRec.Finish().Items, LiveBytes: 1 << 20}

	trigger := &ScriptSource{Ops: []*trace.Op{
		op("alloc", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 10_000)
			rec.GCPause(gc)
			rec.Instr(r.user.ID, 10_000)
		}),
	}}
	r.eng.AddThread("mutator", trigger)
	// Three other busy threads on the other CPUs.
	for i := 0; i < 3; i++ {
		var ops []*trace.Op
		for j := 0; j < 50; j++ {
			ops = append(ops, op("bg", true, func(rec *trace.Recorder) {
				rec.Instr(r.user.ID, 50_000)
			}))
		}
		r.eng.AddThread("bg", &ScriptSource{Ops: ops})
	}
	r.eng.Run(20_000_000)
	res := r.eng.Results()
	if res.GCCount != 1 {
		t.Fatalf("GC count = %d", res.GCCount)
	}
	if res.GCWall < 500_000 {
		t.Fatalf("GC wall = %d", res.GCWall)
	}
	if res.Modes.GCIdle < 3*400_000 {
		t.Fatalf("GC idle = %d, want roughly 3 CPUs * pause", res.Modes.GCIdle)
	}
}

func TestPinnedThreadsAndPSetAccounting(t *testing.T) {
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
	kern := layout.Add("kernel", 64<<10, true, ifetch.DefaultProfile())
	_ = kern
	mcfg := memsys.DefaultConfig(4)
	cfg := DefaultConfig(4)
	cfg.PSet = []int{0, 1} // workload restricted to half the machine
	eng := NewEngine(cfg, memsys.New(mcfg), layout, nil, simrand.New(5))

	var ops []*trace.Op
	for j := 0; j < 10; j++ {
		ops = append(ops, op("w", true, func(rec *trace.Recorder) {
			rec.Instr(user.ID, 100_000)
		}))
	}
	eng.AddThread("worker", &ScriptSource{Ops: ops})
	// A pinned thread outside the pset; its cycles must not appear in
	// Results.
	var bg []*trace.Op
	for j := 0; j < 10; j++ {
		bg = append(bg, op("bg", false, func(rec *trace.Recorder) {
			rec.Instr(user.ID, 100_000)
		}))
	}
	eng.AddPinnedThread("outsider", &ScriptSource{Ops: bg}, 3)
	eng.Run(20_000_000)
	res := eng.Results()
	if res.BusinessOps != 10 {
		t.Fatalf("ops = %d", res.BusinessOps)
	}
	// PSet has 2 CPUs; worker used ~1M cycles; outsider used ~1M on CPU 3
	// which is outside the set. User cycles must reflect only the worker.
	if res.CPU.Instructions != 10*100_000 {
		t.Fatalf("pset instructions = %d, outsider leaked into accounting", res.CPU.Instructions)
	}
}

func TestOSDaemonsGenerateC2CAtOneProcessor(t *testing.T) {
	// The Figure 8 anomaly: cache-to-cache transfers with the workload on
	// one CPU, because OS daemons run everywhere.
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
	kern := layout.Add("kernel", 64<<10, true, ifetch.DefaultProfile())
	mcfg := memsys.DefaultConfig(4)
	cfg := DefaultConfig(4)
	cfg.PSet = []int{0}
	rng := simrand.New(6)
	eng := NewEngine(cfg, memsys.New(mcfg), layout, nil, rng)
	AddOSDaemons(eng, space, kern, rng)

	var ops []*trace.Op
	for j := 0; j < 20; j++ {
		ops = append(ops, op("w", true, func(rec *trace.Recorder) {
			rec.Instr(user.ID, 200_000)
		}))
	}
	eng.AddThread("worker", &ScriptSource{Ops: ops})
	eng.Run(60_000_000)
	if c2c := eng.Hierarchy().Bus().Stats.C2CTransfers; c2c == 0 {
		t.Fatal("no cache-to-cache transfers from background OS activity")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		net := netsim.NewNetwork(netsim.DefaultLink())
		net.AddPeer(2, db.NewServer(db.DefaultDatabaseConfig(), simrand.New(77)))
		r := newRig(t, 2, net)
		lock := r.data.Base
		for i := 0; i < 3; i++ {
			var ops []*trace.Op
			for j := 0; j < 10; j++ {
				ops = append(ops, op("w", true, func(rec *trace.Recorder) {
					rec.Instr(r.user.ID, 10_000)
					rec.LockAcquire(7, lock)
					rec.Write(lock, 8)
					rec.Instr(r.user.ID, 5_000)
					rec.Write(lock, 8)
					rec.LockRelease(7, lock)
					rec.NetCall(2, 128, 512)
					rec.Read(r.data.Base+4096, 256)
				}))
			}
			r.eng.AddThread("w", &ScriptSource{Ops: ops})
		}
		r.eng.Run(100_000_000)
		return r.eng.Results()
	}
	a, b := run(), run()
	if a.BusinessOps != b.BusinessOps || a.Modes != b.Modes ||
		a.CPU != b.CPU || a.LockWaitCycles != b.LockWaitCycles {
		t.Fatalf("engine not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestResetStatsClearsMeasurement(t *testing.T) {
	r := newRig(t, 1, nil)
	var ops []*trace.Op
	for j := 0; j < 10; j++ {
		ops = append(ops, op("w", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 100_000)
		}))
	}
	r.eng.AddThread("w", &ScriptSource{Ops: ops})
	r.eng.Run(500_000)
	r.eng.ResetStats()
	res := r.eng.Results()
	if res.BusinessOps != 0 || res.Modes.Total() != 0 || res.CPU.Instructions != 0 {
		t.Fatalf("reset incomplete: %+v", res)
	}
	r.eng.Run(20_000_000)
	if r.eng.Results().BusinessOps == 0 {
		t.Fatal("engine dead after reset")
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	r := newRig(t, 1, nil)
	src := &ScriptSource{Ops: []*trace.Op{
		op("bad", false, func(rec *trace.Recorder) {
			rec.LockAcquire(9, r.data.Base)
			rec.LockAcquire(9, r.data.Base)
		}),
	}}
	r.eng.AddThread("w", src)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on recursive acquisition")
		}
	}()
	r.eng.Run(1_000_000)
}

func TestModesAddAndTotal(t *testing.T) {
	a := Modes{User: 1, System: 2, IOWait: 3, Idle: 4, GCIdle: 5}
	b := a
	a.Add(&b)
	if a.Total() != 30 || a.Busy() != 6 {
		t.Fatalf("modes math wrong: %+v", a)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddPeer(2, db.NewServer(db.Config{Workers: 8, BaseServiceCycles: 200_000}, simrand.New(4)))
	r := newRig(t, 4, net)
	// Four threads, a 2-unit pool held across a long remote call: at most
	// two calls can overlap, so the run takes at least two serial rounds.
	for i := 0; i < 4; i++ {
		src := &ScriptSource{Ops: []*trace.Op{
			op("pooled", true, func(rec *trace.Recorder) {
				rec.SemAcquire(77, 2)
				rec.NetCall(2, 64, 64)
				rec.SemRelease(77)
			}),
		}}
		r.eng.AddThread("w", src)
	}
	r.eng.Run(100_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 4 {
		t.Fatalf("ops = %d", res.BusinessOps)
	}
	if res.LockBlocks < 2 {
		t.Fatalf("semaphore never blocked: %d", res.LockBlocks)
	}
}

func TestSemaphoreReleaseUnblocksWaiter(t *testing.T) {
	r := newRig(t, 2, nil)
	mk := func() *ScriptSource {
		var ops []*trace.Op
		for i := 0; i < 10; i++ {
			ops = append(ops, op("pooled", true, func(rec *trace.Recorder) {
				rec.SemAcquire(88, 1)
				rec.Instr(r.user.ID, 20_000)
				rec.SemRelease(88)
			}))
		}
		return &ScriptSource{Ops: ops}
	}
	r.eng.AddThread("a", mk())
	r.eng.AddThread("b", mk())
	r.eng.Run(100_000_000)
	if got := r.eng.Results().BusinessOps; got != 20 {
		t.Fatalf("ops = %d, want 20 (waiters must be granted units)", got)
	}
}

func TestParallelGCShortensPause(t *testing.T) {
	run := func(gcThreads int) (uint64, uint64) {
		space := mem.NewAddrSpace()
		layout := ifetch.NewCodeLayout(space)
		user := layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
		cfg := DefaultConfig(4)
		cfg.GCThreads = gcThreads
		eng := NewEngine(cfg, memsys.New(memsys.DefaultConfig(4)), layout, nil, simrand.New(5))

		gcRec := trace.NewRecorder("gc", false)
		for i := 0; i < 64; i++ {
			// Interleave copy reads/writes like a real collector trace so
			// the items do not coalesce into one segment.
			gcRec.Instr(user.ID, 20_000)
			gcRec.Read(uint64(0x100000+i*4096), 256)
			gcRec.Write(uint64(0x200000+i*4096), 256)
		}
		gc := &trace.GC{Items: gcRec.Finish().Items}
		src := &ScriptSource{Ops: []*trace.Op{
			op("alloc", true, func(rec *trace.Recorder) {
				rec.Instr(user.ID, 1_000)
				rec.GCPause(gc)
			}),
		}}
		eng.AddThread("mutator", src)
		eng.Run(50_000_000)
		res := eng.Results()
		return res.GCWall, res.Modes.GCIdle
	}
	serialWall, _ := run(1)
	parWall, _ := run(4)
	if parWall >= serialWall/2 {
		t.Fatalf("4-way parallel GC wall %d not well under serial %d", parWall, serialWall)
	}
}

func TestParallelGCAccountingSums(t *testing.T) {
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
	cfg := DefaultConfig(4)
	cfg.GCThreads = 2
	eng := NewEngine(cfg, memsys.New(memsys.DefaultConfig(4)), layout, nil, simrand.New(6))
	gcRec := trace.NewRecorder("gc", false)
	for i := 0; i < 16; i++ {
		gcRec.Instr(user.ID, 10_000)
	}
	gc := &trace.GC{Items: gcRec.Finish().Items}
	for i := 0; i < 4; i++ {
		var ops []*trace.Op
		for j := 0; j < 20; j++ {
			ops = append(ops, op("w", true, func(rec *trace.Recorder) {
				rec.Instr(user.ID, 30_000)
			}))
		}
		if i == 0 {
			ops = append(ops[:10], append([]*trace.Op{
				op("alloc", true, func(rec *trace.Recorder) { rec.GCPause(gc) }),
			}, ops[10:]...)...)
		}
		eng.AddThread("w", &ScriptSource{Ops: ops})
	}
	const horizon = 10_000_000
	eng.Run(horizon)
	res := eng.Results()
	// Accounting must cover roughly CPUs * horizon (threads finish early,
	// trailing idle is charged at the horizon).
	total := float64(res.Modes.Total())
	want := float64(4 * horizon)
	if total < 0.97*want || total > 1.03*want {
		t.Fatalf("mode accounting covers %.0f of %.0f cycles", total, want)
	}
}

func TestEmptyOpsCannotWedgeEngine(t *testing.T) {
	r := newRig(t, 1, nil)
	n := 0
	src := FuncSource(func(tid int, now uint64) *trace.Op {
		n++
		return trace.NewRecorder("empty", true).Finish() // zero items
	})
	r.eng.AddThread("w", src)
	r.eng.Run(100_000) // must return, not loop forever
	if n == 0 {
		t.Fatal("source never called")
	}
}

func TestBoundThreadsAreNeverStolen(t *testing.T) {
	// One long-running thread sliced mid-quantum must stay on its CPU even
	// while another CPU idles.
	r := newRig(t, 2, nil)
	var ops []*trace.Op
	for i := 0; i < 40; i++ {
		ops = append(ops, op("w", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 50_000)
		}))
	}
	r.eng.AddThread("solo", &ScriptSource{Ops: ops})
	r.eng.Run(5_000_000)
	res := r.eng.Results()
	// CPU 1 must have been idle the whole time: if the bound thread were
	// stolen back and forth, both CPUs would show busy time.
	if res.Modes.Busy() > 3_000_000 {
		t.Fatalf("busy cycles %d suggest the single thread ran on both CPUs concurrently", res.Modes.Busy())
	}
	if res.BusinessOps != 40 {
		t.Fatalf("ops = %d", res.BusinessOps)
	}
}

func TestSemaphoreFIFOGrants(t *testing.T) {
	// Three threads contend for a 1-unit pool; grants must be FIFO, so all
	// three finish (no starvation).
	r := newRig(t, 3, nil)
	for i := 0; i < 3; i++ {
		var ops []*trace.Op
		for j := 0; j < 5; j++ {
			ops = append(ops, op("pooled", true, func(rec *trace.Recorder) {
				rec.SemAcquire(99, 1)
				rec.Instr(r.user.ID, 30_000)
				rec.SemRelease(99)
			}))
		}
		r.eng.AddThread("w", &ScriptSource{Ops: ops})
	}
	r.eng.Run(50_000_000)
	if got := r.eng.Results().BusinessOps; got != 15 {
		t.Fatalf("ops = %d, want 15", got)
	}
}

func TestWakeupPullbackUsesIdleHomeCPU(t *testing.T) {
	// A thread that sleeps wakes on its home CPU when that CPU is idle.
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddPeer(2, db.NewServer(db.Config{Workers: 1, BaseServiceCycles: 100_000}, simrand.New(4)))
	r := newRig(t, 2, net)
	var ops []*trace.Op
	for j := 0; j < 20; j++ {
		ops = append(ops, op("call", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 5_000)
			rec.NetCall(2, 64, 64)
		}))
	}
	r.eng.AddThread("w", &ScriptSource{Ops: ops})
	r.eng.Run(50_000_000)
	res := r.eng.Results()
	if res.BusinessOps != 20 {
		t.Fatalf("ops = %d", res.BusinessOps)
	}
	// All busy time should sit on one CPU (home), the other fully idle:
	// with pull-back the sleeper keeps returning home.
	perCPU := 0
	for c := 0; c < 2; c++ {
		if r.eng.Hierarchy().L1I(c).Stats.Fetches > 0 {
			perCPU++
		}
	}
	if perCPU != 1 {
		t.Fatalf("thread's fetches touched %d CPUs' caches, want 1 (affinity)", perCPU)
	}
}

func TestLatencyHistogramRecorded(t *testing.T) {
	r := newRig(t, 1, nil)
	var ops []*trace.Op
	for j := 0; j < 5; j++ {
		ops = append(ops, op("tagged", true, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 10_000)
		}))
	}
	r.eng.AddThread("w", &ScriptSource{Ops: ops})
	r.eng.Run(10_000_000)
	res := r.eng.Results()
	h := res.LatencyByTag["tagged"]
	if h == nil || h.Count() != 5 {
		t.Fatalf("latency histogram missing or wrong count: %+v", h)
	}
	if h.Mean() < 10_000 {
		t.Fatalf("mean latency %v below pure execution time", h.Mean())
	}
}

// TestAccountingConservation is the engine's core bookkeeping invariant:
// across a randomized mix of compute, memory, locks, I/O, sleeps, and GC,
// every processor cycle of the horizon lands in exactly one accounting
// bucket (busy, I/O wait, idle, or GC idle).
func TestAccountingConservation(t *testing.T) {
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddPeer(2, db.NewServer(db.Config{Workers: 2, BaseServiceCycles: 80_000}, simrand.New(4)))
	r := newRig(t, 4, net)

	gcRec := trace.NewRecorder("gc", false)
	for i := 0; i < 8; i++ {
		gcRec.Instr(r.user.ID, 5_000)
		gcRec.Read(uint64(0x300000+i*4096), 128)
	}
	gc := &trace.GC{Items: gcRec.Finish().Items}

	for tid := 0; tid < 6; tid++ {
		rng := simrand.New(uint64(tid) + 55)
		r.eng.AddThread("w", FuncSource(func(id int, now uint64) *trace.Op {
			rec := trace.NewRecorder("op", true)
			rec.Instr(r.user.ID, uint32(1_000+rng.Intn(20_000)))
			switch rng.Intn(6) {
			case 0:
				rec.LockAcquire(7, r.data.Base)
				rec.Instr(r.user.ID, 3_000)
				rec.LockRelease(7, r.data.Base)
			case 1:
				rec.NetCall(2, 128, 256)
			case 2:
				rec.Think(uint32(rng.Intn(50_000)))
			case 3:
				rec.SemAcquire(9, 2)
				rec.Instr(r.kern.ID, 2_000)
				rec.SemRelease(9)
			case 4:
				if rng.Bool(0.1) {
					rec.GCPause(gc)
				}
			default:
				rec.Read(r.data.Base+uint64(rng.Intn(1<<14))*64, 64)
				rec.Write(r.data.Base+uint64(rng.Intn(1<<14))*64, 64)
			}
			return rec.Finish()
		}))
	}
	const horizon = 20_000_000
	r.eng.Run(horizon)
	res := r.eng.Results()
	total := float64(res.Modes.Total())
	want := float64(4 * horizon)
	// Runs can overshoot the horizon by at most one engine slice per CPU.
	if total < 0.98*want || total > 1.02*want {
		t.Fatalf("accounting covers %.0f cycles of %.0f (%.1f%%)", total, want, 100*total/want)
	}
	if res.BusinessOps == 0 {
		t.Fatal("randomized workload made no progress")
	}
}
