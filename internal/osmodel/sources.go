package osmodel

import (
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// DaemonConfig parameterizes the background OS activity that runs on every
// processor of the machine, inside or outside the workload's processor set.
// The paper observes (§4.3) that snoop copybacks occur even with the
// benchmark bound to a single processor, because "the operating system runs
// on all 16 processors"; these daemons are that activity.
type DaemonConfig struct {
	// Comp is the kernel code component the daemons execute.
	Comp *ifetch.Component
	// SharedLines are kernel data lines every daemon reads/updates (run
	// queues, callout tables, vm statistics) — the cross-processor
	// communication source.
	SharedLines []mem.Addr
	// MeanIntervalCycles is the mean sleep between daemon bouts.
	MeanIntervalCycles uint64
	// BoutInstr is the kernel path length per bout.
	BoutInstr uint32
}

// DefaultDaemonConfig returns a light background load (~1% of one CPU per
// daemon) touching the given kernel lines.
func DefaultDaemonConfig(comp *ifetch.Component, lines []mem.Addr) DaemonConfig {
	return DaemonConfig{
		Comp:               comp,
		SharedLines:        lines,
		MeanIntervalCycles: 400_000,
		BoutInstr:          4_000,
	}
}

// Daemon is an OpSource producing periodic kernel bouts. Create one per
// processor and pin it there with AddPinnedThread.
type Daemon struct {
	cfg DaemonConfig
	rng *simrand.Rand
}

// NewDaemon returns a daemon with its own RNG stream.
func NewDaemon(cfg DaemonConfig, rng *simrand.Rand) *Daemon {
	if !cfg.Comp.Kernel {
		panic("osmodel: daemons must run kernel components")
	}
	return &Daemon{cfg: cfg, rng: rng}
}

// NextOp emits one sleep-then-work bout.
func (d *Daemon) NextOp(tid int, now uint64) *trace.Op {
	rec := trace.NewRecorder("os-daemon", false)
	rec.Think(uint32(d.rng.Exp(float64(d.cfg.MeanIntervalCycles))))
	rec.Instr(d.cfg.Comp.ID, d.cfg.BoutInstr)
	for i, a := range d.cfg.SharedLines {
		if (i+tid)%4 == 0 {
			rec.Write(a, 8)
		} else {
			rec.Read(a, 8)
		}
	}
	rec.Instr(d.cfg.Comp.ID, d.cfg.BoutInstr/4)
	return rec.Finish()
}

// AddOSDaemons registers one pinned daemon per processor of the machine,
// all touching the same shared kernel lines. It reserves the kernel data
// region from space. Returns the shared lines for inspection.
func AddOSDaemons(e *Engine, space *mem.AddrSpace, comp *ifetch.Component, rng *simrand.Rand) []mem.Addr {
	region := space.Reserve("kernel:daemon-shared", 8*mem.LineBytes)
	var lines []mem.Addr
	for i := 0; i < 8; i++ {
		lines = append(lines, region.Base+uint64(i)*mem.LineBytes)
	}
	cfg := DefaultDaemonConfig(comp, lines)
	for c := 0; c < e.cfg.CPUs; c++ {
		d := NewDaemon(cfg, rng.Derive(uint64(c)+1000))
		e.AddPinnedThread("osdaemon", d, c)
	}
	return lines
}

// FuncSource adapts a function to OpSource.
type FuncSource func(tid int, now uint64) *trace.Op

// NextOp calls the function.
func (f FuncSource) NextOp(tid int, now uint64) *trace.Op { return f(tid, now) }

// ScriptSource plays a fixed list of operations, then ends the thread.
type ScriptSource struct {
	Ops []*trace.Op
	i   int
}

// NextOp returns the next scripted op.
func (s *ScriptSource) NextOp(tid int, now uint64) *trace.Op {
	if s.i >= len(s.Ops) {
		return nil
	}
	op := s.Ops[s.i]
	s.i++
	return op
}
