package osmodel

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// TestWatchdogDeadlock drives the classic AB/BA deadlock and checks the
// watchdog converts the would-be hang into a diagnostic report.
func TestWatchdogDeadlock(t *testing.T) {
	r := newRig(t, 2, nil)
	addrA, addrB := r.data.Base, r.data.Base+64

	// Each thread takes its first lock, spins long enough for the other to
	// do the same, then blocks forever on the other's lock.
	mk := func(first, second uint64, firstAddr, secondAddr mem.Addr) *ScriptSource {
		return &ScriptSource{Ops: []*trace.Op{
			op("deadlock", false, func(rec *trace.Recorder) {
				rec.LockAcquire(first, firstAddr)
				rec.Instr(r.user.ID, 500_000)
				rec.LockAcquire(second, secondAddr)
				rec.LockRelease(second, secondAddr)
				rec.LockRelease(first, firstAddr)
			}),
		}}
	}
	r.eng.AddThread("ab", mk(1, 2, addrA, addrB))
	r.eng.AddThread("ba", mk(2, 1, addrB, addrA))
	r.eng.SetWatchdog(50_000_000)
	r.eng.Run(1_000_000_000)

	rep := r.eng.WatchdogTripped()
	if rep == nil {
		t.Fatal("deadlocked run finished without tripping the watchdog")
	}
	if rep.Reason != "deadlock" {
		t.Fatalf("reason = %q, want deadlock", rep.Reason)
	}
	if rep.Cycle >= 1_000_000_000 {
		t.Fatalf("watchdog fired at the horizon (%d): it spun instead of detecting", rep.Cycle)
	}
	dump := rep.String()
	if !strings.Contains(dump, "blk-lock") {
		t.Fatalf("report does not show blocked threads:\n%s", dump)
	}
	if !strings.Contains(dump, "waiters=") {
		t.Fatalf("report does not show the lock table:\n%s", dump)
	}

	// The report persists across further Run slices.
	r.eng.Run(2_000_000_000)
	if r.eng.WatchdogTripped() != rep {
		t.Fatal("report did not persist across slices")
	}
}

// TestWatchdogDisarmedRunsToHorizon checks default behavior is unchanged:
// with no watchdog armed, a run with an eternally blocked thread still
// advances to the horizon instead of returning early.
func TestWatchdogDisarmedRunsToHorizon(t *testing.T) {
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddExternalPeer(3)
	r := newRig(t, 1, net)
	r.eng.OnExternalCall = func(tid int, peer uint8, reqBytes, respBytes uint32, now uint64) {
		// Lost wakeup: the coordinator never answers.
	}
	r.eng.AddThread("caller", &ScriptSource{Ops: []*trace.Op{
		op("call", false, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 1000)
			rec.NetCall(3, 100, 100)
		}),
	}})
	for h := uint64(5_000_000); h <= 50_000_000; h += 5_000_000 {
		r.eng.Run(h)
	}
	if r.eng.WatchdogTripped() != nil {
		t.Fatal("disarmed watchdog tripped")
	}
	if got := r.eng.Now(); got < 50_000_000 {
		t.Fatalf("engine stopped early at %d without a watchdog", got)
	}
}

// TestWatchdogStallDetection models a lost external wakeup: a thread waits
// on a co-simulated peer whose reply never comes. That is not a provable
// deadlock (a wake could still arrive), so the threshold path must fire
// once enough idle slices accumulate.
func TestWatchdogStallDetection(t *testing.T) {
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddExternalPeer(3)
	r := newRig(t, 1, net)
	r.eng.OnExternalCall = func(tid int, peer uint8, reqBytes, respBytes uint32, now uint64) {}
	r.eng.AddThread("caller", &ScriptSource{Ops: []*trace.Op{
		op("call", false, func(rec *trace.Recorder) {
			rec.Instr(r.user.ID, 1000)
			rec.NetCall(3, 100, 100)
			rec.Instr(r.user.ID, 1000)
		}),
	}})
	r.eng.SetWatchdog(10_000_000)
	for h := uint64(5_000_000); h <= 100_000_000; h += 5_000_000 {
		r.eng.Run(h)
	}

	rep := r.eng.WatchdogTripped()
	if rep == nil {
		t.Fatal("stalled run never tripped the watchdog")
	}
	if rep.Reason != "stall" {
		t.Fatalf("reason = %q, want stall", rep.Reason)
	}
	if !strings.Contains(rep.String(), "blk-io") {
		t.Fatalf("report does not show the externally blocked thread:\n%s", rep)
	}
}

// TestWatchdogQuietOnHealthyRun checks a normal contended run never trips.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	r := newRig(t, 2, nil)
	for i := 0; i < 3; i++ {
		ops := make([]*trace.Op, 50)
		for j := range ops {
			ops[j] = op("work", true, func(rec *trace.Recorder) {
				rec.LockAcquire(9, r.data.Base+128)
				rec.Instr(r.user.ID, 5_000)
				rec.LockRelease(9, r.data.Base+128)
				rec.Think(20_000)
			})
		}
		r.eng.AddThread("w", &ScriptSource{Ops: ops})
	}
	r.eng.SetWatchdog(10_000_000)
	r.eng.Run(500_000_000)
	if rep := r.eng.WatchdogTripped(); rep != nil {
		t.Fatalf("healthy run tripped the watchdog:\n%s", rep)
	}
	if !r.eng.ThreadsDone() {
		t.Fatal("threads did not finish")
	}
}
