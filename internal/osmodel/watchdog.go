package osmodel

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Simulated-time watchdog. A fault-injection run deliberately pushes the
// scheduler into corners — every worker blocked on a crashed backend, lock
// convoys under storm pressure — where a modeling bug turns into a silent
// hang: the engine idles cycle by cycle to the horizon with nothing
// runnable. The watchdog turns that hang into a diagnosis. It fires on two
// conditions, checked only when a processor finds nothing to dispatch:
//
//   - Provable deadlock: no thread is ready, no wake event is pending, and
//     no thread is waiting on external I/O (which the cluster coordinator
//     could still complete) — yet threads remain blocked on locks. Lock
//     grants only come from running threads, so no progress is possible,
//     ever.
//   - Stall (livelock or lost wakeup): no thread has been dispatched for
//     more than the configured number of cycles even though the run is not
//     finished.
//
// On either, Run stores a WatchdogReport — thread states, the lock table,
// pending events — and returns instead of spinning to the horizon. Callers
// check WatchdogTripped after Run.

// WatchdogReport is the state snapshot taken when the watchdog fires.
type WatchdogReport struct {
	// Reason is "deadlock" or "stall".
	Reason string
	// Cycle is the simulated time the watchdog fired.
	Cycle uint64
	// LastDispatch is the last simulated time any thread was dispatched.
	LastDispatch uint64
	// Threads and Locks are the DebugThreads / DebugLocks dumps.
	Threads []string
	Locks   []string
	// PendingEvents is the number of queued wake events.
	PendingEvents int
}

// String renders the report as a multi-line diagnostic.
func (r *WatchdogReport) String() string {
	s := fmt.Sprintf("osmodel watchdog: %s at cycle %d (last dispatch %d, %d pending events)\nthreads:\n",
		r.Reason, r.Cycle, r.LastDispatch, r.PendingEvents)
	for _, t := range r.Threads {
		s += "  " + t + "\n"
	}
	s += "locks:\n"
	if len(r.Locks) == 0 {
		s += "  (none held or waited on)\n"
	}
	for _, l := range r.Locks {
		s += "  " + l + "\n"
	}
	return s
}

// SetWatchdog arms the watchdog: if no thread is dispatched for `cycles`
// simulated cycles while work remains, Run snapshots a diagnostic report
// and returns. 0 disarms. Provable deadlocks are reported immediately
// regardless of the threshold (but only while armed).
func (e *Engine) SetWatchdog(cycles uint64) { e.watchdogCycles = cycles }

// WatchdogTripped returns the diagnostic report if the watchdog fired, or
// nil. It stays set across Run slices so a driver can check once at the end.
func (e *Engine) WatchdogTripped() *WatchdogReport { return e.wdReport }

// SetFaults attaches a fault injector; gc-storm windows in its schedule
// then amplify stop-the-world pauses. nil detaches.
func (e *Engine) SetFaults(inj *fault.Injector) { e.faults = inj }

// checkWatchdog runs in the scheduler's idle branch (nothing dispatchable
// at time t). It reports true when Run should abort.
func (e *Engine) checkWatchdog(t uint64) bool {
	if e.wdReport != nil {
		return true // already tripped in an earlier slice
	}
	reason := ""
	if e.provableDeadlock() {
		reason = "deadlock"
	} else if t > e.lastDispatch && t-e.lastDispatch > e.watchdogCycles && !e.ThreadsDone() {
		reason = "stall"
	}
	if reason == "" {
		return false
	}
	e.wdReport = &WatchdogReport{
		Reason:        reason,
		Cycle:         t,
		LastDispatch:  e.lastDispatch,
		Threads:       e.DebugThreads(),
		Locks:         e.DebugLocks(),
		PendingEvents: len(e.events),
	}
	e.tracer.Instant(obs.CompFault, "watchdog."+reason, 0, t,
		obs.Arg{Key: "last_dispatch", Val: e.lastDispatch})
	return true
}

// provableDeadlock reports whether no future progress is possible: nothing
// ready, no wake event queued, no thread that the cluster coordinator
// could still wake externally — but blocked threads remain.
func (e *Engine) provableDeadlock() bool {
	if len(e.readyQ) > 0 || len(e.events) > 0 {
		return false
	}
	blocked := false
	for _, th := range e.threads {
		switch th.state {
		case stBlockedIO:
			// An external wake may still arrive.
			return false
		case stBlockedLock:
			blocked = true
		case stDone:
		default:
			// Ready/running/sleeping threads reach the queue or event heap,
			// both empty — inconsistent with those states, so be
			// conservative and do not claim a deadlock.
			return false
		}
	}
	return blocked
}

// DebugLocks returns one line per lock or semaphore with an owner or
// waiters — the companion to DebugThreads for deadlock diagnosis.
func (e *Engine) DebugLocks() []string {
	var out []string
	ids := make([]uint64, 0, len(e.locks))
	for id := range e.locks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ls := e.locks[id]
		if !ls.held && len(ls.waiters) == 0 {
			continue
		}
		owner := "-"
		if ls.owner != nil {
			owner = fmt.Sprintf("%s#%d", ls.owner.name, ls.owner.id)
		}
		var waiters []string
		for _, w := range ls.waiters {
			waiters = append(waiters, fmt.Sprintf("%s#%d", w.name, w.id))
		}
		out = append(out, fmt.Sprintf("lock %#x held=%v spin=%v owner=%s waiters=%v",
			id, ls.held, ls.spin, owner, waiters))
	}
	ids = ids[:0]
	for id := range e.sems {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ss := e.sems[id]
		if len(ss.waiters) == 0 {
			continue
		}
		var waiters []string
		for _, w := range ss.waiters {
			waiters = append(waiters, fmt.Sprintf("%s#%d", w.name, w.id))
		}
		out = append(out, fmt.Sprintf("sem %#x available=%d waiters=%v", id, ss.available, waiters))
	}
	return out
}
