package osmodel

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// BenchmarkEngineThroughput measures raw playback speed: simulated cycles
// per wall-clock second on a 16-CPU machine with 16 compute-bound threads.
func BenchmarkEngineThroughput(b *testing.B) {
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 128<<10, false, ifetch.DefaultProfile())
	data := space.Reserve("data", 4<<20)
	eng := NewEngine(DefaultConfig(16), memsys.New(memsys.DefaultConfig(16)), layout, nil, simrand.New(1))
	for t := 0; t < 16; t++ {
		rng := simrand.New(uint64(t + 100))
		eng.AddThread("w", FuncSource(func(tid int, now uint64) *trace.Op {
			rec := trace.NewRecorder("op", true)
			rec.Instr(user.ID, 5_000)
			for i := 0; i < 20; i++ {
				rec.Read(data.Base+uint64(rng.Intn(1<<16))*64, 8)
			}
			return rec.Finish()
		}))
	}
	b.ResetTimer()
	horizon := uint64(0)
	for i := 0; i < b.N; i++ {
		horizon += 100_000
		eng.Run(horizon)
	}
	b.ReportMetric(float64(horizon), "simulated-cycles")
}
