// Package ifetch models instruction fetch without interpreting instructions.
//
// The paper's Figure 12 shows that the two workloads differ mainly in
// *instruction footprint*: ECperf executes a commercial application server,
// servlet engine, EJB runtime, and kernel network stack (a large, flat code
// working set that overwhelms intermediate-size caches), while SPECjbb runs
// a compact all-in-one benchmark. What a miss-rate-versus-cache-size curve
// needs from an instruction stream is exactly its footprint and locality —
// not opcode semantics — so each code component here is a synthetic binary:
// a code region divided into popularity tiers (hot/warm/cold), fetched in
// sequential basic-block runs.
//
// A Gen holds per-processor fetch state; instruction segments expand into
// 64-byte fetch-block addresses that the memory hierarchy consumes.
package ifetch

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simrand"
)

// InstrPerBlock is how many instructions one 64-byte fetch block holds
// (4-byte fixed-width instructions, as on SPARC).
const InstrPerBlock = 16

// BlockBytes is the fetch-block granularity.
const BlockBytes = 64

// Tier assigns a fraction of a component's fetches to a fraction of its
// code. Tiers let a component model a hot inner loop plus a long cold tail.
type Tier struct {
	CodeFrac  float64 // fraction of the component's code region
	FetchFrac float64 // fraction of the component's fetches
}

// Profile shapes a component's fetch behavior.
type Profile struct {
	// Tiers partition the code region; CodeFrac and FetchFrac must each sum
	// to 1 (±1e-6). Nil means a single uniform tier.
	Tiers []Tier
	// RunBlocks is the mean sequential run length in fetch blocks before
	// the stream jumps to a new location (branch). Defaults to 4.
	RunBlocks int
}

// DefaultProfile is a generic code profile: 10% of the code takes 90% of
// the fetches.
func DefaultProfile() Profile {
	return Profile{
		Tiers: []Tier{
			{CodeFrac: 0.10, FetchFrac: 0.90},
			{CodeFrac: 0.90, FetchFrac: 0.10},
		},
		RunBlocks: 4,
	}
}

func (p Profile) validate() error {
	if p.RunBlocks < 0 {
		return fmt.Errorf("ifetch: negative RunBlocks %d", p.RunBlocks)
	}
	if len(p.Tiers) == 0 {
		return nil
	}
	var code, fetch float64
	for _, t := range p.Tiers {
		if t.CodeFrac < 0 || t.FetchFrac < 0 {
			return fmt.Errorf("ifetch: negative tier fraction %+v", t)
		}
		code += t.CodeFrac
		fetch += t.FetchFrac
	}
	if code < 1-1e-6 || code > 1+1e-6 || fetch < 1-1e-6 || fetch > 1+1e-6 {
		return fmt.Errorf("ifetch: tier fractions sum to (%v code, %v fetch), want 1", code, fetch)
	}
	return nil
}

// Component is one synthetic binary: a named code region with a fetch
// profile and an execution mode.
type Component struct {
	ID      mem.ComponentID
	Name    string
	Region  mem.Region
	Kernel  bool // fetches execute in system (kernel) mode
	profile Profile

	// tier boundaries precomputed in blocks
	tierStart []uint64 // first block index of each tier
	tierLen   []uint64 // blocks in each tier
	fetchCDF  []float64
}

// Blocks returns the component's code size in fetch blocks.
func (c *Component) Blocks() uint64 { return c.Region.Size / BlockBytes }

// CodeLayout registers the components of one machine and carves their code
// regions out of its address space.
type CodeLayout struct {
	space *mem.AddrSpace
	comps []*Component
}

// NewCodeLayout returns a layout carving regions from space.
func NewCodeLayout(space *mem.AddrSpace) *CodeLayout {
	return &CodeLayout{space: space}
}

// Add registers a component with the given code size (rounded up to a whole
// number of fetch blocks, minimum one). It panics on an invalid profile —
// profiles are static experiment configuration.
func (l *CodeLayout) Add(name string, codeBytes uint64, kernel bool, p Profile) *Component {
	if err := p.validate(); err != nil {
		panic(err)
	}
	if len(l.comps) >= 255 {
		panic("ifetch: too many components")
	}
	if codeBytes < BlockBytes {
		codeBytes = BlockBytes
	}
	codeBytes = (codeBytes + BlockBytes - 1) &^ (BlockBytes - 1)
	if p.RunBlocks == 0 {
		p.RunBlocks = 4
	}
	if len(p.Tiers) == 0 {
		p.Tiers = []Tier{{CodeFrac: 1, FetchFrac: 1}}
	}
	c := &Component{
		ID:      mem.ComponentID(len(l.comps)),
		Name:    name,
		Region:  l.space.Reserve("code:"+name, codeBytes),
		Kernel:  kernel,
		profile: p,
	}
	// Precompute tier geometry in blocks. The last tier absorbs rounding.
	total := c.Blocks()
	var start uint64
	cum := 0.0
	for i, t := range p.Tiers {
		var n uint64
		if i == len(p.Tiers)-1 {
			n = total - start
		} else {
			n = uint64(t.CodeFrac * float64(total))
			if n == 0 {
				n = 1
			}
			if start+n > total {
				n = total - start
			}
		}
		c.tierStart = append(c.tierStart, start)
		c.tierLen = append(c.tierLen, n)
		cum += t.FetchFrac
		c.fetchCDF = append(c.fetchCDF, cum)
		start += n
	}
	l.comps = append(l.comps, c)
	return c
}

// Component returns the component with the given ID.
func (l *CodeLayout) Component(id mem.ComponentID) *Component {
	return l.comps[id]
}

// Components returns all registered components.
func (l *CodeLayout) Components() []*Component { return l.comps }

// TotalCodeBytes returns the summed code footprint of all components.
func (l *CodeLayout) TotalCodeBytes() uint64 {
	var n uint64
	for _, c := range l.comps {
		n += c.Region.Size
	}
	return n
}

// genComp is a Gen's per-component fetch cursor, packed with the
// component's region base and size so the sequential-run fast path of
// NextBlock touches exactly one small struct instead of chasing the
// component pointer and three parallel slices.
type genComp struct {
	base   mem.Addr
	blocks uint64 // code size in fetch blocks
	cur    uint64 // current block index
	left   int64  // remaining sequential run length
}

// Gen generates one processor's fetch-block address stream across all
// components of a layout. Each processor (or sweep driver) owns one Gen so
// that locality is per-processor, as in hardware.
type Gen struct {
	layout *CodeLayout
	rng    *simrand.Rand
	comps  []genComp
}

// NewGen returns a generator over the layout with its own RNG stream.
func NewGen(layout *CodeLayout, rng *simrand.Rand) *Gen {
	g := &Gen{layout: layout, rng: rng, comps: make([]genComp, len(layout.comps))}
	for i, c := range layout.comps {
		g.comps[i] = genComp{base: c.Region.Base, blocks: c.Blocks()}
	}
	return g
}

// jump picks a new block for the component: choose a tier by fetch weight,
// then a uniform block within the tier, and draw a new sequential run.
func (g *Gen) jump(c *Component) {
	u := g.rng.Float64()
	ti := len(c.fetchCDF) - 1
	for i, cdf := range c.fetchCDF {
		if u < cdf {
			ti = i
			break
		}
	}
	blk := c.tierStart[ti]
	if c.tierLen[ti] > 1 {
		blk += uint64(g.rng.Int63n(int64(c.tierLen[ti])))
	}
	// Geometric-ish run length around the profile mean, at least 1.
	run := 1 + g.rng.Intn(2*c.profile.RunBlocks)
	gc := &g.comps[c.ID]
	gc.cur = blk
	gc.left = int64(run)
}

// NextBlock returns the next fetch-block address for the component.
func (g *Gen) NextBlock(id mem.ComponentID) mem.Addr {
	gc := &g.comps[id]
	if gc.left <= 0 || gc.cur >= gc.blocks {
		g.jump(g.layout.comps[id])
	}
	addr := gc.base + gc.cur*BlockBytes
	gc.cur++
	gc.left--
	return addr
}

// NextRun returns the next fetch blocks as one sequential run: the first
// block's address and the block count (1..max). The run covers exactly the
// blocks that max consecutive NextBlock calls would have produced up to the
// next branch or region end, with the same generator state afterwards, so a
// fetch loop can pay one call per run instead of one per 64-byte block.
func (g *Gen) NextRun(id mem.ComponentID, max uint64) (mem.Addr, uint64) {
	gc := &g.comps[id]
	if gc.left <= 0 || gc.cur >= gc.blocks {
		g.jump(g.layout.comps[id])
	}
	n := uint64(gc.left)
	if rem := gc.blocks - gc.cur; n > rem {
		n = rem
	}
	if n > max {
		n = max
	}
	addr := gc.base + gc.cur*BlockBytes
	gc.cur += n
	gc.left -= int64(n)
	return addr, n
}

// BlocksFor returns how many fetch blocks a segment of n instructions
// occupies (rounding up; zero instructions fetch nothing).
func BlocksFor(n uint64) uint64 {
	return (n + InstrPerBlock - 1) / InstrPerBlock
}

// Segment invokes fn with a fetch-block address for each block of an
// n-instruction segment of the component.
func (g *Gen) Segment(id mem.ComponentID, n uint64, fn func(mem.Addr)) {
	for i := uint64(0); i < BlocksFor(n); i++ {
		fn(g.NextBlock(id))
	}
}
