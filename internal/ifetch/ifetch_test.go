package ifetch

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/simrand"
)

func layoutWith(t *testing.T, size uint64, p Profile) (*CodeLayout, *Component) {
	t.Helper()
	l := NewCodeLayout(mem.NewAddrSpace())
	c := l.Add("test", size, false, p)
	return l, c
}

func TestAddRoundsUpAndAssignsIDs(t *testing.T) {
	l := NewCodeLayout(mem.NewAddrSpace())
	a := l.Add("a", 1, false, Profile{})
	b := l.Add("b", 130, true, Profile{})
	if a.Region.Size != BlockBytes {
		t.Fatalf("a size = %d", a.Region.Size)
	}
	if b.Region.Size != 192 {
		t.Fatalf("b size = %d", b.Region.Size)
	}
	if a.ID != 0 || b.ID != 1 {
		t.Fatal("IDs not sequential")
	}
	if !b.Kernel || a.Kernel {
		t.Fatal("kernel flags wrong")
	}
	if l.Component(1) != b || len(l.Components()) != 2 {
		t.Fatal("lookup wrong")
	}
	if l.TotalCodeBytes() != 64+192 {
		t.Fatalf("TotalCodeBytes = %d", l.TotalCodeBytes())
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewCodeLayout(mem.NewAddrSpace())
	l.Add("bad", 1024, false, Profile{Tiers: []Tier{{CodeFrac: 0.5, FetchFrac: 0.5}}})
}

func TestAddressesStayInRegion(t *testing.T) {
	l, c := layoutWith(t, 256<<10, DefaultProfile())
	g := NewGen(l, simrand.New(1))
	for i := 0; i < 100000; i++ {
		a := g.NextBlock(c.ID)
		if !c.Region.Contains(a) {
			t.Fatalf("fetch address %x outside region [%x,%x)", a, c.Region.Base, c.Region.End())
		}
		if a%BlockBytes != 0 {
			t.Fatalf("fetch address %x not block aligned", a)
		}
	}
}

func TestHotTierGetsMostFetches(t *testing.T) {
	l, c := layoutWith(t, 1<<20, Profile{
		Tiers:     []Tier{{CodeFrac: 0.10, FetchFrac: 0.90}, {CodeFrac: 0.90, FetchFrac: 0.10}},
		RunBlocks: 4,
	})
	g := NewGen(l, simrand.New(2))
	hotEnd := c.Region.Base + c.tierLen[0]*BlockBytes
	hot := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if g.NextBlock(c.ID) < hotEnd {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fetch fraction %v, want ~0.90", frac)
	}
}

func TestSequentialRuns(t *testing.T) {
	l, c := layoutWith(t, 1<<20, Profile{RunBlocks: 8})
	g := NewGen(l, simrand.New(3))
	prev := g.NextBlock(c.ID)
	sequential := 0
	const n = 50000
	for i := 0; i < n; i++ {
		a := g.NextBlock(c.ID)
		if a == prev+BlockBytes {
			sequential++
		}
		prev = a
	}
	// Mean run ~8 blocks => ~7/8 of steps are sequential.
	frac := float64(sequential) / n
	if frac < 0.7 {
		t.Fatalf("sequential fraction %v too low for RunBlocks=8", frac)
	}
}

func TestBlocksFor(t *testing.T) {
	cases := []struct{ n, want uint64 }{{0, 0}, {1, 1}, {16, 1}, {17, 2}, {160, 10}}
	for _, c := range cases {
		if got := BlocksFor(c.n); got != c.want {
			t.Errorf("BlocksFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSegmentCallCount(t *testing.T) {
	l, c := layoutWith(t, 64<<10, DefaultProfile())
	g := NewGen(l, simrand.New(4))
	count := 0
	g.Segment(c.ID, 1000, func(mem.Addr) { count++ })
	if count != 63 { // ceil(1000/16)
		t.Fatalf("segment blocks = %d, want 63", count)
	}
}

func TestDeterministicStream(t *testing.T) {
	mk := func() []mem.Addr {
		l := NewCodeLayout(mem.NewAddrSpace())
		c := l.Add("x", 512<<10, false, DefaultProfile())
		g := NewGen(l, simrand.New(9))
		var out []mem.Addr
		for i := 0; i < 1000; i++ {
			out = append(out, g.NextBlock(c.ID))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

// TestFootprintDrivesMissCurve is the core behavioral check behind
// Figure 12: a component with a large, flat code footprint must miss far
// more in an intermediate cache than a compact hot-loop component, and both
// must approach zero once the cache covers the whole footprint.
func TestFootprintDrivesMissCurve(t *testing.T) {
	missRate := func(codeBytes uint64, p Profile, cacheBytes int) float64 {
		l := NewCodeLayout(mem.NewAddrSpace())
		c := l.Add("x", codeBytes, false, p)
		g := NewGen(l, simrand.New(5))
		cc := cache.New(cache.Config{Name: "I", SizeBytes: cacheBytes, Assoc: 4, BlockBytes: 64})
		// Warm up (long enough to touch the cold tail), then measure.
		for i := 0; i < 600000; i++ {
			cc.Access(g.NextBlock(c.ID), mem.IFetch)
		}
		cc.ResetStats()
		for i := 0; i < 200000; i++ {
			cc.Access(g.NextBlock(c.ID), mem.IFetch)
		}
		return cc.Stats.MissRatio()
	}
	bigFlat := Profile{
		Tiers:     []Tier{{CodeFrac: 0.3, FetchFrac: 0.5}, {CodeFrac: 0.7, FetchFrac: 0.5}},
		RunBlocks: 4,
	}
	smallHot := Profile{
		Tiers:     []Tier{{CodeFrac: 0.2, FetchFrac: 0.95}, {CodeFrac: 0.8, FetchFrac: 0.05}},
		RunBlocks: 4,
	}
	big := missRate(2<<20, bigFlat, 256<<10)      // 2 MB code, 256 KB cache
	small := missRate(192<<10, smallHot, 256<<10) // 192 KB code, 256 KB cache
	if big < 4*small {
		t.Fatalf("large footprint miss %v not ≫ small footprint miss %v", big, small)
	}
	fits := missRate(2<<20, bigFlat, 8<<20) // whole footprint fits
	if fits > 0.002 {
		t.Fatalf("fitting cache still misses: %v", fits)
	}
}
