// Package db models the remote tiers of the ECperf deployment as queueing
// servers: the database machine (a second E6000 whose small database fit
// entirely in its buffer pool — §3.2 of the paper) and the supplier
// emulator (a Netra running servlets).
//
// The paper's measurements come exclusively from the application-server
// machine, so the remote tiers only need to be *timing* models: a request
// arrives, possibly queues for one of the machine's workers, is serviced
// for a cost drawn from the query class, and the response leaves. No remote
// memory references enter the measured hierarchy, exactly as the paper
// filtered them out of its Simics traces.
package db

import (
	"repro/internal/fault"
	"repro/internal/simrand"
)

// Config parameterizes a remote tier.
type Config struct {
	// Workers is the machine's service parallelism (CPU count).
	Workers int
	// BaseServiceCycles is the mean per-request service cost.
	BaseServiceCycles uint64
	// PerByteCycles adds cost proportional to request+response size.
	PerByteCycles float64
	// Jitter is the coefficient of variation of service time (exponential
	// component); 0 means deterministic service.
	Jitter float64
}

// DefaultDatabaseConfig models the ECperf database: fully cached working
// set, fast point queries, moderate parallelism. "ECperf does not overly
// stress the database" (§2.2) — the database must keep up, not dominate.
func DefaultDatabaseConfig() Config {
	return Config{Workers: 16, BaseServiceCycles: 60_000, PerByteCycles: 2, Jitter: 0.3}
}

// DefaultSupplierConfig models the supplier emulator: a slower single
// machine parsing XML documents.
func DefaultSupplierConfig() Config {
	return Config{Workers: 4, BaseServiceCycles: 150_000, PerByteCycles: 4, Jitter: 0.3}
}

// Server is a deterministic queueing model of one remote machine. It
// implements netsim.Responder.
type Server struct {
	cfg     Config
	free    []uint64 // per-worker next-free time
	rng     *simrand.Rand
	served  uint64
	busy    uint64 // total busy cycles, for utilization reporting
	lastEnd uint64
	faults  *fault.Injector
	peer    uint8
}

// NewServer builds a server; it panics on a non-positive worker count.
func NewServer(cfg Config, rng *simrand.Rand) *Server {
	if cfg.Workers <= 0 {
		panic("db: server needs at least one worker")
	}
	return &Server{cfg: cfg, free: make([]uint64, cfg.Workers), rng: rng}
}

// Respond queues the request on the earliest-free worker and returns the
// completion time.
func (s *Server) Respond(arrive uint64, reqBytes, respBytes uint32) uint64 {
	done, _, _ := s.RespondDetail(arrive, reqBytes, respBytes)
	return done
}

// RespondDetail is Respond plus the visit decomposition: cycles queued for
// a worker and cycles in service. Respond delegates here (one code path,
// one RNG draw), satisfying netsim.DetailedResponder.
func (s *Server) RespondDetail(arrive uint64, reqBytes, respBytes uint32) (done, queue, service uint64) {
	// Earliest-free worker.
	w := 0
	for i := 1; i < len(s.free); i++ {
		if s.free[i] < s.free[w] {
			w = i
		}
	}
	start := arrive
	if s.free[w] > start {
		start = s.free[w]
	}
	service = s.cfg.BaseServiceCycles +
		uint64(s.cfg.PerByteCycles*float64(reqBytes+respBytes))
	if s.cfg.Jitter > 0 {
		service = uint64(float64(service) * (1 - s.cfg.Jitter + s.rng.Exp(s.cfg.Jitter)))
	}
	// Fault windows inflate service time: a lock storm multiplies it for the
	// window's span, and a node crash leaves a cold-cache recovery ramp that
	// decays back to 1 after the machine comes back.
	if f := s.faults.ServiceFactor(s.peer, arrive); f > 1 {
		service = uint64(float64(service) * f)
	}
	done = start + service
	s.free[w] = done
	s.served++
	s.busy += service
	if done > s.lastEnd {
		s.lastEnd = done
	}
	return done, start - arrive, service
}

// SetFaults attaches a fault injector; db-lock-storm windows aimed at
// `peer` (this server's network id) then multiply service times, and
// node-crash windows leave a cold-cache recovery ramp. nil detaches.
func (s *Server) SetFaults(inj *fault.Injector, peer uint8) {
	s.faults = inj
	s.peer = peer
}

// Served returns the number of requests handled.
func (s *Server) Served() uint64 { return s.served }

// Utilization returns mean busy fraction across workers up to the last
// completion, or 0 before any request.
func (s *Server) Utilization() float64 {
	if s.lastEnd == 0 {
		return 0
	}
	return float64(s.busy) / (float64(s.lastEnd) * float64(len(s.free)))
}
