package db

import (
	"testing"

	"repro/internal/simrand"
)

func deterministic() Config {
	return Config{Workers: 2, BaseServiceCycles: 1000, PerByteCycles: 0, Jitter: 0}
}

func TestSingleRequest(t *testing.T) {
	s := NewServer(deterministic(), simrand.New(1))
	if done := s.Respond(100, 10, 10); done != 1100 {
		t.Fatalf("done = %d, want 1100", done)
	}
	if s.Served() != 1 {
		t.Fatalf("served = %d", s.Served())
	}
}

func TestQueueingWhenSaturated(t *testing.T) {
	s := NewServer(deterministic(), simrand.New(1))
	// Three simultaneous arrivals on two workers: the third queues.
	d1 := s.Respond(0, 0, 0)
	d2 := s.Respond(0, 0, 0)
	d3 := s.Respond(0, 0, 0)
	if d1 != 1000 || d2 != 1000 {
		t.Fatalf("first two = %d, %d", d1, d2)
	}
	if d3 != 2000 {
		t.Fatalf("queued request done = %d, want 2000", d3)
	}
}

func TestIdleWorkersServeImmediately(t *testing.T) {
	s := NewServer(deterministic(), simrand.New(1))
	s.Respond(0, 0, 0)
	if done := s.Respond(5000, 0, 0); done != 6000 {
		t.Fatalf("late arrival done = %d, want 6000", done)
	}
}

func TestPerByteCost(t *testing.T) {
	cfg := deterministic()
	cfg.PerByteCycles = 2
	s := NewServer(cfg, simrand.New(1))
	if done := s.Respond(0, 100, 50); done != 1000+300 {
		t.Fatalf("done = %d", done)
	}
}

func TestJitterVariesService(t *testing.T) {
	cfg := deterministic()
	cfg.Jitter = 0.5
	s := NewServer(cfg, simrand.New(2))
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		seen[s.Respond(uint64(i)*100_000, 0, 0)-uint64(i)*100_000] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jittered service produced only %d distinct times", len(seen))
	}
}

func TestUtilization(t *testing.T) {
	s := NewServer(deterministic(), simrand.New(1))
	if s.Utilization() != 0 {
		t.Fatal("idle server utilization nonzero")
	}
	s.Respond(0, 0, 0) // one worker busy 0..1000, the other idle
	if u := s.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewServer(Config{Workers: 0}, simrand.New(1))
}

func TestDefaultsSane(t *testing.T) {
	dbc, sup := DefaultDatabaseConfig(), DefaultSupplierConfig()
	if dbc.Workers <= 0 || sup.Workers <= 0 {
		t.Fatal("default workers not positive")
	}
	if sup.BaseServiceCycles <= dbc.BaseServiceCycles {
		t.Fatal("supplier (XML parsing on a Netra) should be slower than the cached database")
	}
}
