package stats

// Replicate runs fn once per seed and summarizes each named metric across
// runs. fn returns a map from metric name to value for one run. This is the
// multi-seed variability harness used by every figure driver: the paper
// reports "means and standard deviations (shown as error bars) for all
// measured and most simulated results" following Alameldeen & Wood.
func Replicate(seeds []uint64, fn func(seed uint64) map[string]float64) map[string]*Summary {
	out := make(map[string]*Summary)
	for _, seed := range seeds {
		metrics := fn(seed)
		for name, v := range metrics {
			s, ok := out[name]
			if !ok {
				s = &Summary{}
				out[name] = s
			}
			s.Add(v)
		}
	}
	return out
}

// Seeds returns n deterministic seeds derived from a base seed, for use with
// Replicate.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := base
	for i := range out {
		// SplitMix64 step: distinct, well-mixed seeds from a base.
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = z
	}
	return out
}
