package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSet is an ordered collection of named uint64 counters. Modules
// expose their event counts through one of these so reports can enumerate
// them uniformly.
type CounterSet struct {
	names  []string
	values map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{values: make(map[string]uint64)}
}

// Inc adds delta to the named counter, registering it on first use.
func (c *CounterSet) Inc(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns the named counter's value (0 if never incremented).
func (c *CounterSet) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in registration order.
func (c *CounterSet) Names() []string { return c.names }

// Merge adds every counter from other into this set.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.names {
		c.Inc(n, other.values[n])
	}
}

// String renders the counters one per line in registration order — the
// same order Names() reports, so the two views of a set always agree. Use
// SortedString for an alphabetical rendering.
func (c *CounterSet) String() string {
	return c.render(c.names)
}

// SortedString renders the counters one per line, sorted by name.
func (c *CounterSet) SortedString() string {
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	return c.render(names)
}

func (c *CounterSet) render(names []string) string {
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.values[n])
	}
	return b.String()
}

// Ratio returns a/(a+b) given two counter names, or 0 when both are zero.
// Typical use: miss ratio, cache-to-cache ratio.
func (c *CounterSet) Ratio(a, b string) float64 {
	av, bv := c.values[a], c.values[b]
	if av+bv == 0 {
		return 0
	}
	return float64(av) / float64(av+bv)
}

// Per1000 returns 1000*num/den given two counter names, or 0 when den is 0.
// Typical use: misses per 1000 instructions.
func (c *CounterSet) Per1000(num, den string) float64 {
	if c.values[den] == 0 {
		return 0
	}
	return 1000 * float64(c.values[num]) / float64(c.values[den])
}
