package stats

import "math"

// Welch's t-test for unequal variances, used the way the paper uses
// significance: "the difference in throughput ... is small, but
// statistically significant for ECperf up to 6 processors" (§4.5). With
// the simulator's few seeds per configuration, degrees of freedom are
// small; the critical values table below is two-sided at α = 0.05.

// TTest computes Welch's t statistic and approximate degrees of freedom
// for two summarized samples. It returns (0, 0) when either sample has
// fewer than two observations or both variances are zero.
func TTest(a, b *Summary) (t float64, df float64) {
	if a.N() < 2 || b.N() < 2 {
		return 0, 0
	}
	va := a.StdDev() * a.StdDev() / float64(a.N())
	vb := b.StdDev() * b.StdDev() / float64(b.N())
	if va+vb == 0 {
		return 0, 0
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	// Welch–Satterthwaite degrees of freedom.
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.N()-1) + vb*vb/float64(b.N()-1)
	df = num / den
	return t, df
}

// tCrit05 holds two-sided 5% critical values of Student's t for small
// degrees of freedom (1..30); larger df use the normal approximation.
var tCrit05 = []float64{
	0,                                                             // df 0 (unused)
	12.706,                                                        // 1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
}

// SignificantlyDifferent reports whether the two samples' means differ at
// the 5% level under Welch's t-test.
func SignificantlyDifferent(a, b *Summary) bool {
	t, df := TTest(a, b)
	if df <= 0 {
		return false
	}
	idx := int(math.Floor(df))
	var crit float64
	switch {
	case idx < 1:
		crit = tCrit05[1]
	case idx < len(tCrit05):
		crit = tCrit05[idx]
	default:
		crit = 1.960
	}
	return math.Abs(t) > crit
}
