package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.StdDev() != 0 {
		t.Fatalf("single-sample summary wrong: %v ± %v", s.Mean(), s.StdDev())
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // sum-of-squares would overflow; out of scope
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	q := h.Quantile(0.5)
	if q < 256 || q > 2048 {
		t.Fatalf("median bucket bound %d implausible", q)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(0, 1)
	ts.Add(99, 1)
	ts.Add(100, 5)
	ts.Add(350, 2)
	bins := ts.Bins()
	want := []float64{2, 5, 0, 2}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
		}
	}
	if ts.MaxBin() != 5 {
		t.Fatalf("MaxBin = %v", ts.MaxBin())
	}
	rate := ts.Rate()
	if rate[1] != 0.05 {
		t.Fatalf("rate[1] = %v", rate[1])
	}
}

func TestTimeSeriesPanicsOnZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeSeries(0)
}

func TestShareDistTopShare(t *testing.T) {
	d := NewShareDist()
	d.Add(1, 80)
	d.Add(2, 15)
	d.Add(3, 5)
	if got := d.TopShare(1); math.Abs(got-0.80) > 1e-12 {
		t.Fatalf("TopShare(1) = %v", got)
	}
	if got := d.TopShare(2); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("TopShare(2) = %v", got)
	}
	if got := d.TopShare(10); got != 1 {
		t.Fatalf("TopShare beyond keys = %v", got)
	}
}

func TestShareDistTouch(t *testing.T) {
	d := NewShareDist()
	d.Add(1, 10)
	d.Touch(2)
	d.Touch(1) // must not reset
	if d.Keys() != 2 {
		t.Fatalf("Keys = %d", d.Keys())
	}
	if d.Total() != 10 {
		t.Fatalf("Total = %d", d.Total())
	}
	if d.TopShare(1) != 1 {
		t.Fatalf("TopShare(1) = %v", d.TopShare(1))
	}
}

func TestShareDistCDFMonotone(t *testing.T) {
	d := NewShareDist()
	for k := uint64(0); k < 500; k++ {
		d.Add(k, k*k+1)
	}
	pts := d.CDF(20)
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	prevShare, prevFrac := 0.0, 0.0
	for _, p := range pts {
		if p.EventShare < prevShare || p.KeyFrac < prevFrac {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
		prevShare, prevFrac = p.EventShare, p.KeyFrac
	}
	last := pts[len(pts)-1]
	if math.Abs(last.EventShare-1) > 1e-12 || math.Abs(last.KeyFrac-1) > 1e-12 {
		t.Fatalf("CDF does not end at (1,1): %+v", last)
	}
}

func TestShareDistTopFractionShare(t *testing.T) {
	d := NewShareDist()
	d.Add(0, 1000) // one very hot key
	for k := uint64(1); k < 1000; k++ {
		d.Add(k, 1)
	}
	// Hottest 0.1% of 1000 keys = 1 key = 1000/1999 of events.
	got := d.TopFractionShare(0.001)
	want := 1000.0 / 1999.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TopFractionShare = %v, want %v", got, want)
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("a", 3)
	c.Inc("b", 1)
	c.Inc("a", 2)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zzz") != 0 {
		t.Fatal("counter values wrong")
	}
	if got := c.Ratio("a", "b"); math.Abs(got-5.0/6.0) > 1e-12 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := c.Per1000("b", "a"); got != 200 {
		t.Fatalf("Per1000 = %v", got)
	}
	other := NewCounterSet()
	other.Inc("a", 1)
	other.Inc("c", 7)
	c.Merge(other)
	if c.Get("a") != 6 || c.Get("c") != 7 {
		t.Fatal("merge wrong")
	}
	if len(c.Names()) != 3 {
		t.Fatalf("Names = %v", c.Names())
	}
}

func TestCounterSetRatioZero(t *testing.T) {
	c := NewCounterSet()
	if c.Ratio("x", "y") != 0 || c.Per1000("x", "y") != 0 {
		t.Fatal("zero-division guards failed")
	}
}

func TestReplicate(t *testing.T) {
	seeds := Seeds(1, 5)
	if len(seeds) != 5 {
		t.Fatalf("Seeds returned %d", len(seeds))
	}
	for i, s := range seeds {
		for j := i + 1; j < len(seeds); j++ {
			if s == seeds[j] {
				t.Fatal("duplicate seeds")
			}
		}
	}
	res := Replicate(seeds, func(seed uint64) map[string]float64 {
		return map[string]float64{"x": float64(seed % 10), "y": 2}
	})
	if res["y"].Mean() != 2 || res["y"].StdDev() != 0 {
		t.Fatalf("metric y = %v", res["y"])
	}
	if res["x"].N() != 5 {
		t.Fatalf("metric x has %d samples", res["x"].N())
	}
}

func TestReplicateDeterministic(t *testing.T) {
	run := func() float64 {
		res := Replicate(Seeds(42, 3), func(seed uint64) map[string]float64 {
			return map[string]float64{"v": float64(seed >> 32)}
		})
		return res["v"].Mean()
	}
	if run() != run() {
		t.Fatal("Replicate not deterministic")
	}
}

func TestTTestClearDifference(t *testing.T) {
	var a, b Summary
	for _, v := range []float64{10.0, 10.1, 9.9, 10.05} {
		a.Add(v)
	}
	for _, v := range []float64{12.0, 12.1, 11.9, 12.05} {
		b.Add(v)
	}
	tt, df := TTest(&a, &b)
	if math.Abs(tt) < 10 {
		t.Fatalf("t = %v for clearly separated samples", tt)
	}
	if df <= 0 {
		t.Fatalf("df = %v", df)
	}
	if !SignificantlyDifferent(&a, &b) {
		t.Fatal("clear difference not significant")
	}
}

func TestTTestNoDifference(t *testing.T) {
	var a, b Summary
	for _, v := range []float64{10.0, 10.4, 9.6, 10.2} {
		a.Add(v)
		b.Add(v + 0.01)
	}
	if SignificantlyDifferent(&a, &b) {
		t.Fatal("near-identical samples flagged significant")
	}
}

func TestTTestDegenerate(t *testing.T) {
	var a, b Summary
	a.Add(1)
	b.Add(2)
	if tt, df := TTest(&a, &b); tt != 0 || df != 0 {
		t.Fatal("single-sample t-test should be undefined")
	}
	if SignificantlyDifferent(&a, &b) {
		t.Fatal("single samples cannot be significant")
	}
	// Zero-variance pairs.
	var c, d Summary
	c.Add(5)
	c.Add(5)
	d.Add(5)
	d.Add(5)
	if SignificantlyDifferent(&c, &d) {
		t.Fatal("identical constants flagged significant")
	}
}
