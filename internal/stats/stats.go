// Package stats is the measurement toolkit of the simulator: scalar
// summaries with error bars, log-scale histograms, interval time series
// (Figure 10), and per-key share distributions (Figures 14/15).
//
// Every result the simulator reports follows the variability methodology of
// Alameldeen & Wood (HPCA 2003), which the paper adopts: each configuration
// is run under several seeds and reported as mean ± standard deviation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports their moments.
// The zero value is ready to use.
type Summary struct {
	n        int
	sum      float64
	sumsq    float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumsq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := (s.sumsq - float64(s.n)*mean*mean) / float64(s.n-1)
	if variance < 0 { // numerical noise
		return 0
	}
	return math.Sqrt(variance)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary as "mean ± stddev".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.StdDev())
}

// Histogram is a power-of-two bucketed histogram for positive values, used
// for latency and size distributions.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.buckets[log2Bucket(v)]++
	h.count++
	h.sum += v
}

func log2Bucket(v uint64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) at
// bucket resolution.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return 1 << uint(i+1)
		}
	}
	return 1 << 63
}

// Sub returns the bucket-wise difference h - base: the distribution of
// samples added after base was captured. Counts saturate at zero so a
// reset between the two captures degrades gracefully instead of
// underflowing. Receiver and argument are unmodified.
func (h *Histogram) Sub(base *Histogram) Histogram {
	var d Histogram
	if base == nil {
		return *h
	}
	for i := range h.buckets {
		if h.buckets[i] > base.buckets[i] {
			d.buckets[i] = h.buckets[i] - base.buckets[i]
			d.count += d.buckets[i]
		}
	}
	if h.sum > base.sum {
		d.sum = h.sum - base.sum
	}
	return d
}

// TimeSeries bins a counter into fixed-width intervals of simulated time.
// Figure 10 (cache-to-cache transfers per second over time, 100 ms bins) is
// rendered from one of these.
type TimeSeries struct {
	Interval uint64 // bin width in simulated time units
	bins     []float64
}

// NewTimeSeries returns a series with the given bin width (> 0).
func NewTimeSeries(interval uint64) *TimeSeries {
	if interval == 0 {
		panic("stats: TimeSeries interval must be positive")
	}
	return &TimeSeries{Interval: interval}
}

// Add accumulates weight w at simulated time t.
func (ts *TimeSeries) Add(t uint64, w float64) {
	bin := int(t / ts.Interval)
	for len(ts.bins) <= bin {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[bin] += w
}

// Bins returns the accumulated weights per interval, in time order.
func (ts *TimeSeries) Bins() []float64 { return ts.bins }

// Rate returns per-bin values divided by the bin width, i.e. events per time
// unit, suitable for "per second" plots.
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.bins))
	for i, v := range ts.bins {
		out[i] = v / float64(ts.Interval)
	}
	return out
}

// MaxBin returns the largest bin value, or 0 for an empty series.
func (ts *TimeSeries) MaxBin() float64 {
	m := 0.0
	for _, v := range ts.bins {
		if v > m {
			m = v
		}
	}
	return m
}

// ShareDist holds per-key event counts and answers cumulative-share
// questions: "what fraction of all events came from the hottest k keys?"
// Figures 14/15 (distribution of cache-to-cache transfers over cache lines)
// are rendered from one of these keyed by line address.
type ShareDist struct {
	counts map[uint64]uint64
	total  uint64
}

// NewShareDist returns an empty distribution.
func NewShareDist() *ShareDist {
	return &ShareDist{counts: make(map[uint64]uint64)}
}

// Add records w events for key k.
func (d *ShareDist) Add(k uint64, w uint64) {
	d.counts[k] += w
	d.total += w
}

// Touch registers a key with zero weight, so it counts toward Keys() —
// used for "lines touched but never transferred".
func (d *ShareDist) Touch(k uint64) {
	if _, ok := d.counts[k]; !ok {
		d.counts[k] = 0
	}
}

// Keys returns the number of distinct keys (including zero-weight ones).
func (d *ShareDist) Keys() int { return len(d.counts) }

// Total returns the total event weight.
func (d *ShareDist) Total() uint64 { return d.total }

// SortedCounts returns the per-key weights sorted descending.
func (d *ShareDist) SortedCounts() []uint64 {
	out := make([]uint64, 0, len(d.counts))
	for _, c := range d.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// TopShare returns the fraction of all events contributed by the hottest k
// keys. TopShare(1) answers "how much of the communication is one lock?".
func (d *ShareDist) TopShare(k int) float64 {
	if d.total == 0 || k <= 0 {
		return 0
	}
	counts := d.SortedCounts()
	if k > len(counts) {
		k = len(counts)
	}
	var sum uint64
	for _, c := range counts[:k] {
		sum += c
	}
	return float64(sum) / float64(d.total)
}

// TopFractionShare returns the fraction of events contributed by the hottest
// `frac` fraction of keys (e.g. 0.001 for "the most active 0.1% of lines").
// At least one key is always included.
func (d *ShareDist) TopFractionShare(frac float64) float64 {
	k := int(math.Ceil(frac * float64(len(d.counts))))
	if k < 1 {
		k = 1
	}
	return d.TopShare(k)
}

// CDFPoint is one point on a cumulative-share curve.
type CDFPoint struct {
	Keys       int     // hottest-k keys included
	KeyFrac    float64 // k as a fraction of all keys
	EventShare float64 // cumulative fraction of events
}

// CDF returns the cumulative share curve sampled at up to `points` positions
// spaced evenly in key rank (plus the final point). Curves for Figures 14/15.
func (d *ShareDist) CDF(points int) []CDFPoint {
	counts := d.SortedCounts()
	if len(counts) == 0 || d.total == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	step := len(counts) / points
	if step < 1 {
		step = 1
	}
	out := make([]CDFPoint, 0, points+1)
	var cum uint64
	next := step
	for i, c := range counts {
		cum += c
		if i+1 == next || i+1 == len(counts) {
			out = append(out, CDFPoint{
				Keys:       i + 1,
				KeyFrac:    float64(i+1) / float64(len(counts)),
				EventShare: float64(cum) / float64(d.total),
			})
			next += step
		}
	}
	return out
}

// ShareAtKeys interpolates the cumulative event share at exactly k hottest
// keys; convenience for reading fixed points off the Figure 15 curve.
func (d *ShareDist) ShareAtKeys(k int) float64 { return d.TopShare(k) }
