package stats

import (
	"strings"
	"testing"
)

// TestCounterSetStringOrder is the regression test for the String/Names
// ordering inconsistency: String used to sort alphabetically while Names
// returned registration order. Both must now report registration order,
// with SortedString providing the alphabetical view.
func TestCounterSetStringOrder(t *testing.T) {
	c := NewCounterSet()
	c.Inc("zeta", 1)
	c.Inc("alpha", 2)
	c.Inc("mid", 3)

	lineOrder := func(s string) []string {
		var names []string
		for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
			names = append(names, strings.Fields(line)[0])
		}
		return names
	}

	got := lineOrder(c.String())
	want := c.Names()
	if len(got) != len(want) {
		t.Fatalf("String has %d lines, Names has %d entries", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("String order %v disagrees with Names %v", got, want)
		}
	}

	sorted := lineOrder(c.SortedString())
	wantSorted := []string{"alpha", "mid", "zeta"}
	for i := range wantSorted {
		if sorted[i] != wantSorted[i] {
			t.Fatalf("SortedString order %v, want %v", sorted, wantSorted)
		}
	}
}

func TestHistogramSub(t *testing.T) {
	var base, later Histogram
	for _, v := range []uint64{1, 10, 100} {
		base.Add(v)
		later.Add(v)
	}
	for _, v := range []uint64{1000, 1000, 2000} {
		later.Add(v)
	}
	d := later.Sub(&base)
	if d.Count() != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count())
	}
	if m := d.Mean(); m < 1000 || m > 2000 {
		t.Fatalf("delta mean = %v, want within [1000,2000]", m)
	}
	// Saturation: subtracting a larger histogram yields zero, not wrap.
	z := base.Sub(&later)
	if z.Count() != 0 {
		t.Fatalf("saturating delta count = %d, want 0", z.Count())
	}
}
