// Package netsim models the 100-Mbit Ethernet connecting ECperf's tiers and
// the kernel network stack the application server runs for every tier
// crossing.
//
// The paper attributes ECperf's large and growing system time (Figure 5,
// ~30% at 15 processors) to the operating system's networking code: each
// BBop makes several synchronous round trips to the database and supplier
// tiers, and the kernel path is long, touches shared kernel data, and
// serializes on kernel locks. NetStack reproduces exactly that: every call
// records kernel-mode instruction segments, references to hot shared kernel
// lines, and an adaptive (spin-then-block) kernel lock — then a blocking
// round trip over a latency/bandwidth link to a queueing peer.
package netsim

import (
	"repro/internal/fault"
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Responder models a remote machine: given a request arriving at `arrive`,
// it returns when the response leaves the peer. Implementations queue
// internally (see internal/db).
type Responder interface {
	Respond(arrive uint64, reqBytes, respBytes uint32) (done uint64)
}

// DetailedResponder is a Responder that can also report how the visit
// decomposed into queueing (waiting for a peer worker) and service. The
// split is pure bookkeeping: RespondDetail must return the same done time
// and consume the same randomness as Respond, so attaching a latency
// collector never perturbs the simulation.
type DetailedResponder interface {
	Responder
	RespondDetail(arrive uint64, reqBytes, respBytes uint32) (done, queue, service uint64)
}

// RTDetail is the remote decomposition of one round trip.
type RTDetail struct {
	Queue   uint64 // cycles the request waited for a peer worker
	Service uint64 // peer service time
}

// Link is a full-duplex network link.
type Link struct {
	LatencyCycles uint64  // one-way propagation + interrupt cost
	BytesPerCycle float64 // bandwidth
}

// DefaultLink models 100-Mbit Ethernet against a 250 MHz clock:
// 12.5 MB/s = 0.05 B/cycle, with ~50 µs one-way software+wire latency.
func DefaultLink() Link {
	return Link{LatencyCycles: 12_500, BytesPerCycle: 0.05}
}

// TransferCycles returns the cycles to move n bytes one way.
func (l Link) TransferCycles(n uint32) uint64 {
	if l.BytesPerCycle <= 0 {
		return l.LatencyCycles
	}
	return l.LatencyCycles + uint64(float64(n)/l.BytesPerCycle)
}

// Network is one machine's view of the world: a link and the peers on it.
type Network struct {
	link      Link
	peers     map[uint8]Responder
	externals map[uint8]bool
	faults    *fault.Injector
}

// NewNetwork returns a network over the given link.
func NewNetwork(link Link) *Network {
	return &Network{
		link:      link,
		peers:     make(map[uint8]Responder),
		externals: make(map[uint8]bool),
	}
}

// AddPeer registers machine `id` as a timing model (internal/db).
func (n *Network) AddPeer(id uint8, r Responder) { n.peers[id] = r }

// AddExternalPeer registers machine `id` as a co-simulated machine: calls
// to it do not resolve locally; the cluster coordinator delivers the
// request to the other machine's engine and wakes the caller when the real
// reply comes back (internal/cluster).
func (n *Network) AddExternalPeer(id uint8) { n.externals[id] = true }

// External reports whether the peer is co-simulated.
func (n *Network) External(id uint8) bool { return n.externals[id] }

// Link returns the network's link parameters.
func (n *Network) Link() Link { return n.link }

// SetFaults attaches a fault injector; latency-spike windows in its
// schedule then stretch round-trip transfer times. nil detaches.
func (n *Network) SetFaults(inj *fault.Injector) { n.faults = inj }

// RoundTrip computes when a synchronous call issued at `now` completes:
// request transfer, peer service (with queueing), response transfer.
// Unknown peers answer after a bare round trip, so a miswired experiment
// fails loudly in results rather than silently hanging.
func (n *Network) RoundTrip(peer uint8, now uint64, reqBytes, respBytes uint32) uint64 {
	done, _ := n.RoundTripDetail(peer, now, reqBytes, respBytes)
	return done
}

// RoundTripDetail is RoundTrip plus the remote queue/service decomposition
// (zero for peers that cannot report one). RoundTrip delegates here, so
// both entry points share one code path and are cycle- and RNG-identical.
func (n *Network) RoundTripDetail(peer uint8, now uint64, reqBytes, respBytes uint32) (uint64, RTDetail) {
	reqXfer := n.link.TransferCycles(reqBytes)
	respXfer := n.link.TransferCycles(respBytes)
	// A latency-spike fault stretches the wire time both ways. The factor is
	// sampled at issue time: a window opening mid-flight catches the next
	// call, which is plenty at 50 µs one-way latency.
	if f := n.faults.LinkFactor(peer, now); f > 1 {
		reqXfer = uint64(float64(reqXfer) * f)
		respXfer = uint64(float64(respXfer) * f)
	}
	arrive := now + reqXfer
	var done uint64
	var det RTDetail
	if r, ok := n.peers[peer]; ok {
		if dr, ok := r.(DetailedResponder); ok {
			done, det.Queue, det.Service = dr.RespondDetail(arrive, reqBytes, respBytes)
		} else {
			done = r.Respond(arrive, reqBytes, respBytes)
		}
	} else {
		done = arrive
	}
	return done + respXfer, det
}

// StackConfig parameterizes the kernel network path on the measured
// machine.
type StackConfig struct {
	// SendInstr/RecvInstr are the base kernel path lengths per message
	// (syscall, socket, TCP/IP, driver). PerByteInstr adds copy cost.
	SendInstr    uint32
	RecvInstr    uint32
	PerByteInstr float64
	// HotLines is the number of shared kernel data lines (protocol state,
	// socket tables) touched on every call — the source of kernel-mode
	// sharing misses.
	HotLines int
	// BufferBytes is the per-call packet buffer footprint.
	BufferBytes uint32
}

// DefaultStackConfig returns a Solaris-flavored kernel path.
func DefaultStackConfig() StackConfig {
	return StackConfig{
		SendInstr:    3_000,
		RecvInstr:    3_500,
		PerByteInstr: 0.25,
		HotLines:     6,
		BufferBytes:  2048,
	}
}

// kernelLockBase namespaces kernel lock IDs away from JVM monitor IDs.
const kernelLockBase = 1 << 48

// NetStack is the measured machine's kernel network stack.
type NetStack struct {
	cfg      StackConfig
	comp     *ifetch.Component // kernel code component
	network  *Network
	lockID   uint64
	lockAddr mem.Addr
	hot      []mem.Addr
	bufBase  mem.Addr
	bufSize  uint64
	bufNext  uint64
	rng      *simrand.Rand
	calls    uint64
}

// NewNetStack carves kernel data out of the machine's address space. comp
// must be a kernel component registered in the machine's code layout.
func NewNetStack(space *mem.AddrSpace, comp *ifetch.Component, network *Network, cfg StackConfig, rng *simrand.Rand) *NetStack {
	if !comp.Kernel {
		panic("netsim: network stack component must be a kernel component")
	}
	lockRegion := space.Reserve("kernel:netlock", mem.LineBytes)
	hotRegion := space.Reserve("kernel:netdata", uint64(cfg.HotLines)*mem.LineBytes)
	bufRegion := space.Reserve("kernel:netbuf", 96<<10) // recycled mbuf pool
	ns := &NetStack{
		cfg:      cfg,
		comp:     comp,
		network:  network,
		lockID:   kernelLockBase + 1,
		lockAddr: lockRegion.Base,
		bufBase:  bufRegion.Base,
		bufSize:  bufRegion.Size,
		rng:      rng,
	}
	for i := 0; i < cfg.HotLines; i++ {
		ns.hot = append(ns.hot, hotRegion.Base+uint64(i)*mem.LineBytes)
	}
	return ns
}

// Calls returns how many round trips have been recorded.
func (ns *NetStack) Calls() uint64 { return ns.calls }

// kernelSection records one kernel network path. Protocol state is updated
// under the adaptive kernel lock (a short hold: header processing only);
// the payload copy through a rotating packet buffer happens outside the
// lock, as in any real stack — holding a global lock across data copies
// would convoy the whole machine.
func (ns *NetStack) kernelSection(rec *trace.Recorder, instr uint32, bytes uint32) {
	rec.LockAcquireSpin(ns.lockID, ns.lockAddr)
	rec.Write(ns.lockAddr, 8)
	// Shared protocol state (read-mostly, some updates): header handling.
	for i, a := range ns.hot {
		if i%3 == 0 {
			rec.Write(a, 8)
		} else {
			rec.Read(a, 8)
		}
	}
	rec.Instr(ns.comp.ID, instr/2)
	rec.Write(ns.lockAddr, 8)
	rec.LockRelease(ns.lockID, ns.lockAddr)

	// Payload copy, unlocked.
	if bytes > 0 {
		if ns.bufNext+uint64(bytes) > ns.bufSize {
			ns.bufNext = 0
		}
		rec.Write(ns.bufBase+ns.bufNext, bytes)
		ns.bufNext += uint64(bytes)
	}
	rec.Instr(ns.comp.ID, instr/2+uint32(ns.cfg.PerByteInstr*float64(bytes)))
}

// Call records a full synchronous round trip to peer: kernel send path,
// blocking wait for the response, kernel receive path.
func (ns *NetStack) Call(rec *trace.Recorder, peer uint8, reqBytes, respBytes uint32) {
	ns.calls++
	ns.kernelSection(rec, ns.cfg.SendInstr, minu32(reqBytes, ns.cfg.BufferBytes))
	rec.NetCall(peer, reqBytes, respBytes)
	ns.kernelSection(rec, ns.cfg.RecvInstr, minu32(respBytes, ns.cfg.BufferBytes))
}

// ReceiveRequest records the kernel receive path for an inbound client
// request (no blocking: the request has already arrived when the worker
// picks it up).
func (ns *NetStack) ReceiveRequest(rec *trace.Recorder, bytes uint32) {
	ns.kernelSection(rec, ns.cfg.RecvInstr, minu32(bytes, ns.cfg.BufferBytes))
}

// SendResponse records the kernel send path for an outbound response to a
// client (fire-and-forget from the worker's point of view).
func (ns *NetStack) SendResponse(rec *trace.Recorder, bytes uint32) {
	ns.kernelSection(rec, ns.cfg.SendInstr, minu32(bytes, ns.cfg.BufferBytes))
}

// Network returns the network this stack sends on.
func (ns *NetStack) Network() *Network { return ns.network }

func minu32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
