package netsim

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

type fixedResponder struct{ service uint64 }

func (f fixedResponder) Respond(arrive uint64, req, resp uint32) uint64 {
	return arrive + f.service
}

func TestTransferCycles(t *testing.T) {
	l := Link{LatencyCycles: 100, BytesPerCycle: 0.5}
	if got := l.TransferCycles(50); got != 200 {
		t.Fatalf("TransferCycles = %d, want 200", got)
	}
	degenerate := Link{LatencyCycles: 100}
	if degenerate.TransferCycles(50) != 100 {
		t.Fatal("zero-bandwidth guard failed")
	}
}

func TestRoundTrip(t *testing.T) {
	n := NewNetwork(Link{LatencyCycles: 100, BytesPerCycle: 1})
	n.AddPeer(2, fixedResponder{service: 1000})
	// 100+req(10) + 1000 + 100+resp(20) = 1230
	if got := n.RoundTrip(2, 0, 10, 20); got != 1230 {
		t.Fatalf("RoundTrip = %d, want 1230", got)
	}
}

func TestRoundTripUnknownPeer(t *testing.T) {
	n := NewNetwork(Link{LatencyCycles: 100, BytesPerCycle: 1})
	if got := n.RoundTrip(9, 0, 10, 10); got != 220 {
		t.Fatalf("unknown-peer RoundTrip = %d", got)
	}
}

func buildStack(t *testing.T) *NetStack {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	kern := layout.Add("kernel-net", 256<<10, true, ifetch.DefaultProfile())
	n := NewNetwork(DefaultLink())
	n.AddPeer(1, fixedResponder{service: 500})
	return NewNetStack(space, kern, n, DefaultStackConfig(), simrand.New(3))
}

func TestCallRecordsKernelPath(t *testing.T) {
	ns := buildStack(t)
	rec := trace.NewRecorder("bbop", true)
	ns.Call(rec, 1, 512, 4096)
	op := rec.Finish()

	var locks, unlocks, netcalls int
	var kernelInstr uint64
	spin := false
	for _, it := range op.Items {
		switch it.Kind {
		case trace.KindLockAcq:
			locks++
			if it.Aux == 1 {
				spin = true
			}
		case trace.KindLockRel:
			unlocks++
		case trace.KindNetCall:
			netcalls++
			if it.Peer != 1 || it.ID != 512 || it.Aux != 4096 {
				t.Fatalf("netcall fields wrong: %+v", it)
			}
		case trace.KindInstr:
			kernelInstr += uint64(it.N)
		}
	}
	if locks != 2 || unlocks != 2 {
		t.Fatalf("kernel lock sections: %d acq, %d rel", locks, unlocks)
	}
	if !spin {
		t.Fatal("kernel lock not marked as spin lock")
	}
	if netcalls != 1 {
		t.Fatalf("netcalls = %d", netcalls)
	}
	cfg := DefaultStackConfig()
	if kernelInstr < uint64(cfg.SendInstr+cfg.RecvInstr) {
		t.Fatalf("kernel instructions %d below base path", kernelInstr)
	}
	if ns.Calls() != 1 {
		t.Fatalf("Calls = %d", ns.Calls())
	}
}

func TestHotLinesAreStable(t *testing.T) {
	ns := buildStack(t)
	collect := func() map[uint64]bool {
		rec := trace.NewRecorder("x", false)
		ns.Call(rec, 1, 100, 100)
		op := rec.Finish()
		lines := map[uint64]bool{}
		for _, it := range op.Items {
			if it.Kind == trace.KindRead {
				lines[mem.Line(it.Addr)] = true
			}
		}
		return lines
	}
	a, b := collect(), collect()
	for l := range a {
		if !b[l] {
			t.Fatal("hot kernel lines differ between calls; sharing traffic would vanish")
		}
	}
	if len(a) == 0 {
		t.Fatal("no hot-line reads recorded")
	}
}

func TestNonKernelComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	user := layout.Add("app", 64<<10, false, ifetch.Profile{})
	NewNetStack(space, user, NewNetwork(DefaultLink()), DefaultStackConfig(), simrand.New(1))
}
