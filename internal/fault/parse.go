package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// scheduleJSON is the on-disk schedule shape:
//
//	{
//	  "events": [
//	    {"kind": "partition",     "at": 20000000, "duration": 2500000, "peer": 1},
//	    {"kind": "packet-loss",   "at": 30000000, "duration": 2500000, "peer": 1, "magnitude": 0.4},
//	    {"kind": "latency-spike", "at": 40000000, "duration": 2500000, "magnitude": 8},
//	    {"kind": "db-lock-storm", "at": 50000000, "duration": 2500000, "magnitude": 6},
//	    {"kind": "node-crash",    "at": 60000000, "duration": 2500000, "peer": 1},
//	    {"kind": "gc-storm",      "at": 70000000, "duration": 2500000, "magnitude": 5}
//	  ]
//	}
//
// "at" and "duration" are simulated cycles (250 MHz clock) and may be JSON
// numbers or decimal strings (cycle counts routinely exceed 2^53, where
// JSON numbers lose precision). "peer" is the netsim peer index (ECperf:
// 1 = database, 2 = supplier; omitted or 0 = all peers).
type scheduleJSON struct {
	Events []eventJSON `json:"events"`
}

type eventJSON struct {
	Kind      string      `json:"kind"`
	At        json.Number `json:"at"`
	Duration  json.Number `json:"duration"`
	Peer      *uint8      `json:"peer,omitempty"`
	Magnitude float64     `json:"magnitude,omitempty"`
}

// ParseSchedule parses and validates a JSON fault schedule. It returns an
// error — never panics — on malformed syntax, unknown kinds, bad
// timestamps, out-of-range magnitudes, or overlapping windows, so a typo'd
// schedule fails a run loudly at startup instead of corrupting it quietly.
func ParseSchedule(data []byte) (*Schedule, error) {
	var raw scheduleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("fault schedule: %w", err)
	}
	s := &Schedule{}
	for i, ev := range raw.Events {
		kind, ok := KindFromString(ev.Kind)
		if !ok {
			return nil, fmt.Errorf("fault schedule: event %d: unknown kind %q", i, ev.Kind)
		}
		at, err := parseCycles(ev.At)
		if err != nil {
			return nil, fmt.Errorf("fault schedule: event %d (%s): bad \"at\": %w", i, ev.Kind, err)
		}
		dur, err := parseCycles(ev.Duration)
		if err != nil {
			return nil, fmt.Errorf("fault schedule: event %d (%s): bad \"duration\": %w", i, ev.Kind, err)
		}
		e := Event{Kind: kind, At: at, Duration: dur, Magnitude: ev.Magnitude}
		if ev.Peer != nil {
			e.Peer = *ev.Peer
		}
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("fault schedule: %w", err)
	}
	return s, nil
}

// parseCycles reads a cycle count from a JSON number or decimal string.
func parseCycles(n json.Number) (uint64, error) {
	s := string(n)
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a non-negative cycle count", s)
	}
	return v, nil
}

// LoadSchedule reads and parses a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSchedule(data)
}

// MarshalJSON writes the schedule in the same shape ParseSchedule reads, so
// schedules round-trip through checkpoints and manifests.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	raw := scheduleJSON{Events: []eventJSON{}}
	for _, e := range s.Events {
		ev := eventJSON{
			Kind:      e.Kind.String(),
			At:        json.Number(strconv.FormatUint(e.At, 10)),
			Duration:  json.Number(strconv.FormatUint(e.Duration, 10)),
			Magnitude: e.Magnitude,
		}
		if e.Peer != 0 {
			p := e.Peer
			ev.Peer = &p
		}
		raw.Events = append(raw.Events, ev)
	}
	return json.Marshal(raw)
}

// UnmarshalJSON parses the ParseSchedule shape, with validation.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	parsed, err := ParseSchedule(data)
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}
