package fault

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/simrand"
)

func TestParseScheduleValid(t *testing.T) {
	data := []byte(`{"events": [
		{"kind": "partition", "at": 2000, "duration": 500, "peer": 1},
		{"kind": "packet-loss", "at": "3000", "duration": "500", "peer": 1, "magnitude": 0.25},
		{"kind": "latency-spike", "at": 1000, "duration": 400, "magnitude": 4},
		{"kind": "db-lock-storm", "at": 5000, "duration": 800, "magnitude": 6},
		{"kind": "node-crash", "at": 7000, "duration": 600, "peer": 2},
		{"kind": "gc-storm", "at": 9000, "duration": 300, "magnitude": 3}
	]}`)
	s, err := ParseSchedule(data)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(s.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(s.Events))
	}
	// Validate sorts by start cycle.
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("events not sorted: %v before %v", s.Events[i-1], s.Events[i])
		}
	}
	if s.Events[0].Kind != LatencySpike {
		t.Fatalf("first event should be the latency spike, got %v", s.Events[0])
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"syntax", `{"events": [`, "fault schedule"},
		{"unknown kind", `{"events":[{"kind":"meteor","at":1,"duration":1}]}`, "unknown kind"},
		{"zero duration", `{"events":[{"kind":"partition","at":1,"duration":0}]}`, "zero-length"},
		{"missing duration", `{"events":[{"kind":"partition","at":1}]}`, "duration"},
		{"negative at", `{"events":[{"kind":"partition","at":-5,"duration":1}]}`, "cycle count"},
		{"float at", `{"events":[{"kind":"partition","at":1.5,"duration":1}]}`, "cycle count"},
		{"overflow window", `{"events":[{"kind":"partition","at":18446744073709551615,"duration":2}]}`, "overflows"},
		{"loss prob high", `{"events":[{"kind":"packet-loss","at":1,"duration":1,"magnitude":1.5}]}`, "outside"},
		{"loss prob zero", `{"events":[{"kind":"packet-loss","at":1,"duration":1}]}`, "outside"},
		{"spike factor low", `{"events":[{"kind":"latency-spike","at":1,"duration":1,"magnitude":0.5}]}`, "exceed 1"},
		{"partition magnitude", `{"events":[{"kind":"partition","at":1,"duration":1,"magnitude":2}]}`, "no magnitude"},
		{"overlap same kind peer", `{"events":[
			{"kind":"partition","at":10,"duration":100,"peer":1},
			{"kind":"partition","at":50,"duration":100,"peer":1}]}`, "overlapping"},
		{"overlap all-peers wildcard", `{"events":[
			{"kind":"packet-loss","at":10,"duration":100,"magnitude":0.5},
			{"kind":"packet-loss","at":50,"duration":100,"peer":2,"magnitude":0.5}]}`, "overlapping"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSchedule([]byte(c.in))
			if err == nil {
				t.Fatalf("ParseSchedule accepted %s", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseScheduleAllowsDisjointAndCrossKindOverlap(t *testing.T) {
	_, err := ParseSchedule([]byte(`{"events":[
		{"kind":"partition","at":10,"duration":40,"peer":1},
		{"kind":"partition","at":50,"duration":40,"peer":1},
		{"kind":"gc-storm","at":20,"duration":100,"magnitude":2},
		{"kind":"packet-loss","at":30,"duration":40,"peer":2,"magnitude":0.1}]}`))
	if err != nil {
		t.Fatalf("disjoint/cross-kind windows should validate: %v", err)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	orig := Demo(1_000_000, 10_000_000)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Events) != len(orig.Events) {
		t.Fatalf("round trip lost events: %d != %d", len(back.Events), len(orig.Events))
	}
	for i := range back.Events {
		if back.Events[i] != orig.Events[i] {
			t.Fatalf("event %d changed: %v != %v", i, back.Events[i], orig.Events[i])
		}
	}
}

func TestInjectorWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LatencySpike, At: 100, Duration: 100, Magnitude: 8},
		{Kind: DBLockStorm, At: 300, Duration: 100, Magnitude: 6},
		{Kind: GCStorm, At: 500, Duration: 100, Magnitude: 5},
		{Kind: NodeCrash, At: 700, Duration: 100, Peer: 1},
		{Kind: Partition, At: 900, Duration: 100, Peer: 2},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s, simrand.New(1))

	if f := inj.LinkFactor(1, 150); f != 8 {
		t.Fatalf("LinkFactor inside spike = %g, want 8", f)
	}
	if f := inj.LinkFactor(1, 250); f != 1 {
		t.Fatalf("LinkFactor outside spike = %g, want 1", f)
	}
	if f := inj.ServiceFactor(1, 350); f != 6 {
		t.Fatalf("ServiceFactor in storm = %g, want 6", f)
	}
	if f := inj.GCFactor(550); f != 5 {
		t.Fatalf("GCFactor in storm = %g, want 5", f)
	}
	if f := inj.GCFactor(650); f != 1 {
		t.Fatalf("GCFactor outside storm = %g, want 1", f)
	}

	if out := inj.CallOutcome(1, 750); out != FastFail {
		t.Fatalf("call to crashed peer = %v, want fastfail", out)
	}
	if out := inj.CallOutcome(2, 750); out != OK {
		t.Fatalf("crash targets peer 1 only, got %v for peer 2", out)
	}
	if out := inj.CallOutcome(2, 950); out != Lost {
		t.Fatalf("call into partition = %v, want lost", out)
	}
	// Post-crash recovery ramp: factor decays from the default toward 1.
	early := inj.ServiceFactor(1, 801)
	late := inj.ServiceFactor(1, 845)
	if early <= late || late <= 1 {
		t.Fatalf("recovery ramp should decay: early %g, late %g", early, late)
	}
	if f := inj.ServiceFactor(1, 860); f != 1 {
		t.Fatalf("ramp over at +dur/2, got %g", f)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: PacketLoss, At: 0, Duration: 1 << 40, Peer: 1, Magnitude: 0.5},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewInjector(s, simrand.New(42))
	b := NewInjector(s, simrand.New(42))
	for i := uint64(0); i < 1000; i++ {
		oa, ob := a.CallOutcome(1, i*100), b.CallOutcome(1, i*100)
		if oa != ob {
			t.Fatalf("draw %d diverged: %v != %v", i, oa, ob)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v != %+v", a.Stats, b.Stats)
	}
	if a.Stats.DroppedLoss == 0 || a.Stats.DroppedLoss == 1000 {
		t.Fatalf("loss draws degenerate: %d/1000 dropped", a.Stats.DroppedLoss)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if out := inj.CallOutcome(1, 10); out != OK {
		t.Fatalf("nil injector outcome = %v", out)
	}
	if f := inj.LinkFactor(1, 10); f != 1 {
		t.Fatalf("nil injector link factor = %g", f)
	}
	if f := inj.ServiceFactor(1, 10); f != 1 {
		t.Fatalf("nil injector service factor = %g", f)
	}
	if f := inj.GCFactor(10); f != 1 {
		t.Fatalf("nil injector gc factor = %g", f)
	}
	if down, _ := inj.PeerDown(1, 10); down {
		t.Fatal("nil injector reports a peer down")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	pol := DefaultPolicy()
	pol.BreakerFailures = 3
	pol.BreakerCooldownCycles = 1000
	b := NewBreaker(&pol)

	for i := 0; i < 3; i++ {
		if !b.Allow(uint64(i)) {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(uint64(i), false)
	}
	if b.State(3) != BreakerOpen {
		t.Fatalf("breaker should open after 3 failures, state %v", b.State(3))
	}
	if b.Allow(10) {
		t.Fatal("open breaker admitted a call")
	}
	if got := b.Stats.Opens; got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// Cooldown elapses at openedAt+1000: half-open admits exactly one probe.
	if !b.Allow(1005) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(1006) {
		t.Fatal("half-open breaker admitted a second concurrent call")
	}
	b.Record(1005, false) // probe fails: re-open
	if b.State(1100) != BreakerOpen {
		t.Fatalf("failed probe should re-open, state %v", b.State(1100))
	}

	if !b.Allow(2200) { // second cooldown elapsed
		t.Fatal("breaker refused second probe")
	}
	b.Record(2200, true)
	if b.State(2300) != BreakerClosed {
		t.Fatalf("successful probe should close, state %v", b.State(2300))
	}
	if !b.Allow(2301) {
		t.Fatal("closed breaker refused a call after recovery")
	}
}

func TestBackoffCapAndJitter(t *testing.T) {
	pol := DefaultPolicy()
	pol.BackoffBaseCycles = 100
	pol.BackoffCapCycles = 1000
	pol.JitterFrac = 0

	if d := pol.Backoff(1, nil); d != 100 {
		t.Fatalf("backoff(1) = %d, want 100", d)
	}
	if d := pol.Backoff(2, nil); d != 200 {
		t.Fatalf("backoff(2) = %d, want 200", d)
	}
	if d := pol.Backoff(10, nil); d != 1000 {
		t.Fatalf("backoff(10) = %d, want cap 1000", d)
	}

	pol.JitterFrac = 0.5
	rng := simrand.New(7)
	seen := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		d := pol.Backoff(2, rng)
		if d < 100 || d > 300 {
			t.Fatalf("jittered backoff %d outside [100, 300]", d)
		}
		seen[d] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}

	// Same seed, same sequence.
	r1, r2 := simrand.New(9), simrand.New(9)
	for i := 1; i <= 8; i++ {
		if a, b := pol.Backoff(i, r1), pol.Backoff(i, r2); a != b {
			t.Fatalf("backoff not deterministic: %d != %d", a, b)
		}
	}
}

func TestShedderProportionalControl(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShedWindowCycles = 1000
	pol.ShedFailRate = 0.5
	s := NewShedder(&pol)
	rng := simrand.New(3)

	// Healthy window: everything admitted afterwards.
	for i := uint64(0); i < 20; i++ {
		s.Observe(i*10, true)
	}
	for i := uint64(0); i < 50; i++ {
		if !s.Admit(1100+i, rng) {
			t.Fatal("shedder rejected during healthy operation")
		}
	}

	// A window of pure failures: the next window sheds everything
	// (rate 1.0 -> shed probability 1).
	for i := uint64(0); i < 20; i++ {
		s.Observe(2000+i*10, false)
	}
	shed := 0
	for i := uint64(0); i < 50; i++ {
		if !s.Admit(3100+i, rng) {
			shed++
		}
	}
	if shed != 50 {
		t.Fatalf("total failure should shed all: %d/50", shed)
	}

	// With no further observations the estimate decays window over window
	// until admission resumes.
	if !s.Admit(3100+10*pol.ShedWindowCycles, rng) {
		t.Fatal("overload estimate never decayed")
	}
	if s.Shed == 0 {
		t.Fatal("shed counter not incremented")
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := DefaultPolicy()
	bad.MaxAttempts = 0
	if bad.Validate() == nil {
		t.Fatal("zero attempts accepted")
	}
	bad = DefaultPolicy()
	bad.TimeoutCycles = 0
	if bad.Validate() == nil {
		t.Fatal("zero timeout accepted")
	}
	bad = DefaultPolicy()
	bad.ShedFailRate = 1
	if bad.Validate() == nil {
		t.Fatal("shed rate 1 accepted")
	}
}

func TestDemoScheduleCoversEveryKind(t *testing.T) {
	s := Demo(12_000_000, 50_000_000)
	seen := map[Kind]bool{}
	for _, e := range s.Events {
		seen[e.Kind] = true
	}
	for k := Kind(0); k < numKinds; k++ {
		if !seen[k] {
			t.Fatalf("demo schedule missing kind %v", k)
		}
	}
	if h := s.Horizon(); h > 12_000_000+50_000_000 {
		t.Fatalf("demo schedule overruns the window: horizon %d", h)
	}
}
