package fault

import (
	"fmt"

	"repro/internal/simrand"
)

// Policy parameterizes the application server's resilience behavior on
// calls to remote tiers. All times are simulated cycles (250 MHz clock).
type Policy struct {
	// TimeoutCycles is the per-request timeout: how long a caller waits for
	// a response before declaring the attempt lost.
	TimeoutCycles uint32
	// FastFailCycles is the cost of a refused connection (crashed peer):
	// the kernel answers almost immediately.
	FastFailCycles uint32
	// MaxAttempts bounds tries per logical call (first attempt + retries).
	MaxAttempts int
	// BackoffBaseCycles is the delay before the first retry; each further
	// retry doubles it, capped at BackoffCapCycles.
	BackoffBaseCycles uint32
	BackoffCapCycles  uint32
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// nominal value, decorrelating retry storms across workers.
	JitterFrac float64

	// BreakerFailures consecutive failures open the per-backend circuit
	// breaker; while open, calls fail locally without touching the network.
	// After BreakerCooldownCycles the breaker goes half-open and admits one
	// probe: success closes it, failure re-opens it.
	BreakerFailures       int
	BreakerCooldownCycles uint64

	// Admission control: requests are shed at the door when the failure
	// rate observed over the previous ShedWindowCycles exceeds
	// ShedFailRate. The shed probability rises linearly from 0 at the
	// threshold to 1 at a 100% failure rate, so shedding is proportional
	// to overload rather than all-or-nothing.
	ShedWindowCycles uint64
	ShedFailRate     float64
}

// DefaultPolicy returns resilience defaults tuned to the simulated ECperf
// deployment: the timeout clears a healthy database round trip (~100k
// cycles) by a wide margin, and the breaker trips after roughly one
// worker's worth of consecutive timeouts.
func DefaultPolicy() Policy {
	return Policy{
		TimeoutCycles:         400_000,
		FastFailCycles:        4_000,
		MaxAttempts:           3,
		BackoffBaseCycles:     50_000,
		BackoffCapCycles:      800_000,
		JitterFrac:            0.5,
		BreakerFailures:       5,
		BreakerCooldownCycles: 2_000_000,
		ShedWindowCycles:      1_000_000,
		ShedFailRate:          0.5,
	}
}

// Validate rejects configurations that would wedge or divide by zero.
func (p Policy) Validate() error {
	if p.TimeoutCycles == 0 {
		return fmt.Errorf("fault: policy timeout must be positive")
	}
	if p.MaxAttempts <= 0 {
		return fmt.Errorf("fault: policy needs at least one attempt")
	}
	if p.BreakerFailures <= 0 {
		return fmt.Errorf("fault: breaker threshold must be positive")
	}
	if p.ShedFailRate <= 0 || p.ShedFailRate >= 1 {
		return fmt.Errorf("fault: shed failure rate %g outside (0, 1)", p.ShedFailRate)
	}
	if p.ShedWindowCycles == 0 {
		return fmt.Errorf("fault: shed window must be positive")
	}
	return nil
}

// Backoff returns the delay before retry number n (1 = first retry):
// capped exponential with ±JitterFrac uniform jitter drawn from rng.
func (p Policy) Backoff(n int, rng *simrand.Rand) uint32 {
	d := uint64(p.BackoffBaseCycles)
	for i := 1; i < n; i++ {
		d *= 2
		if d >= uint64(p.BackoffCapCycles) {
			break
		}
	}
	if cap := uint64(p.BackoffCapCycles); cap > 0 && d > cap {
		d = cap
	}
	if p.JitterFrac > 0 && rng != nil {
		lo := float64(d) * (1 - p.JitterFrac)
		span := float64(d) * 2 * p.JitterFrac
		d = uint64(lo + span*rng.Float64())
	}
	if d == 0 {
		d = 1
	}
	if d > 1<<31 {
		d = 1 << 31 // fits the trace item's uint32 delay field
	}
	return uint32(d)
}

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed: normal operation, calls flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is admitted to test the backend.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	Opens   uint64 // closed/half-open -> open transitions
	Rejects uint64 // calls refused while open
	Probes  uint64 // half-open probe calls admitted
}

// Breaker is a per-backend circuit breaker on the simulated clock. It is
// driven by the caller: Allow before each attempt sequence, Record after.
type Breaker struct {
	pol      *Policy
	state    BreakerState
	fails    int    // consecutive failures while closed
	openedAt uint64 // cycle the breaker last opened
	probing  bool   // a half-open probe is in flight

	Stats BreakerStats
}

// NewBreaker returns a closed breaker governed by pol.
func NewBreaker(pol *Policy) *Breaker { return &Breaker{pol: pol} }

// State returns the breaker's position at cycle t (it resolves the
// open -> half-open transition lazily).
func (b *Breaker) State(t uint64) BreakerState {
	if b.state == BreakerOpen && t >= b.openedAt+b.pol.BreakerCooldownCycles {
		b.state = BreakerHalfOpen
		b.probing = false
	}
	return b.state
}

// Allow reports whether a call may proceed at cycle t. In half-open state
// only the first caller gets through (the probe); the rest are rejected
// until the probe's Record arrives.
func (b *Breaker) Allow(t uint64) bool {
	switch b.State(t) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			b.Stats.Rejects++
			return false
		}
		b.probing = true
		b.Stats.Probes++
		return true
	default:
		b.Stats.Rejects++
		return false
	}
}

// Record reports the outcome of an admitted call that started at cycle t.
func (b *Breaker) Record(t uint64, ok bool) {
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.fails = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = t
			b.Stats.Opens++
		}
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.pol.BreakerFailures {
			b.state = BreakerOpen
			b.openedAt = t
			b.fails = 0
			b.Stats.Opens++
		}
	}
}

// Shedder is the admission controller: it watches the failure rate of
// completed calls over fixed windows of the simulated clock and sheds
// incoming requests in proportion to how far the previous window's rate
// exceeded the policy threshold.
type Shedder struct {
	pol      *Policy
	winStart uint64
	ok, fail uint64
	prevRate float64 // failure rate of the last completed window

	// Shed counts requests rejected at the door.
	Shed uint64
}

// NewShedder returns an idle admission controller.
func NewShedder(pol *Policy) *Shedder { return &Shedder{pol: pol} }

// roll advances the observation window to cover cycle t.
func (s *Shedder) roll(t uint64) {
	for t >= s.winStart+s.pol.ShedWindowCycles {
		if n := s.ok + s.fail; n > 0 {
			s.prevRate = float64(s.fail) / float64(n)
		} else {
			// An empty window carries the previous estimate forward at half
			// strength: overload evidence decays instead of latching.
			s.prevRate /= 2
		}
		s.ok, s.fail = 0, 0
		s.winStart += s.pol.ShedWindowCycles
		if s.winStart+s.pol.ShedWindowCycles < s.winStart {
			break // clock overflow guard
		}
	}
}

// Observe records one completed call outcome at cycle t.
func (s *Shedder) Observe(t uint64, ok bool) {
	s.roll(t)
	if ok {
		s.ok++
	} else {
		s.fail++
	}
}

// FailRate returns the failure-rate estimate governing admission at t.
func (s *Shedder) FailRate(t uint64) float64 {
	s.roll(t)
	return s.prevRate
}

// Admit decides whether to accept a request arriving at cycle t, drawing
// the shed lottery from rng when partially overloaded.
func (s *Shedder) Admit(t uint64, rng *simrand.Rand) bool {
	rate := s.FailRate(t)
	th := s.pol.ShedFailRate
	if rate <= th {
		return true
	}
	p := (rate - th) / (1 - th)
	if p < 1 && !rng.Bool(p) {
		return true
	}
	s.Shed++
	return false
}
