package fault

import "fmt"

// This file holds the adaptive overload-control laws the open-system
// cluster uses to survive offered load beyond capacity. Like the Breaker
// and Shedder, each controller is a small deterministic state machine on
// the simulated clock, driven entirely by its caller — no goroutines, no
// wall time — so overloaded runs replay bit-identically from their seed.
//
// Four mechanisms, four failure modes they kill:
//
//   - CoDel (queue-delay admission): unbounded queueing delay. The
//     controller watches how long requests *waited* rather than how many
//     are queued, and starts dropping at the head — at an escalating
//     rate — when the standing delay exceeds the target for a full
//     interval. Head drops propagate the congestion signal to the newest
//     requests' clients, which still have time to care.
//   - AIMD concurrency limit: backend collapse. The per-backend limit
//     grows additively while the backend is fast and halves (bounded
//     below) when it is slow, converging on the highest concurrency the
//     backend sustains — TCP congestion control applied to RPC.
//   - Retry budget: retry storms. Retries spend from a token bucket that
//     refills as a fraction of primary traffic; when failures dominate,
//     the bucket drains and retries stop amplifying the overload.
//   - Brownout: wasted optional work. A stepped degradation level driven
//     by queue delay; each level sheds one more optional work class, so
//     the revenue-critical class keeps its latency long after the
//     decorative ones are gone.

// CoDelConfig parameterizes the queue-delay admission controller.
type CoDelConfig struct {
	// TargetCycles is the acceptable standing queue delay (CoDel's
	// "target", 5 ms in the paper).
	TargetCycles uint64
	// IntervalCycles is how long the delay must stay above target before
	// dropping starts (CoDel's "interval", 100 ms in the paper).
	IntervalCycles uint64
}

// DefaultCoDelConfig scales the classic 5 ms / 100 ms to the 250 MHz
// simulated clock.
func DefaultCoDelConfig() CoDelConfig {
	return CoDelConfig{TargetCycles: 1_250_000, IntervalCycles: 25_000_000}
}

// Validate rejects degenerate configurations.
func (c CoDelConfig) Validate() error {
	if c.TargetCycles == 0 || c.IntervalCycles == 0 {
		return fmt.Errorf("fault: codel target and interval must be positive")
	}
	return nil
}

// CoDelStats counts controller decisions.
type CoDelStats struct {
	Admits uint64 // dequeues allowed through
	Drops  uint64 // head drops
}

// CoDel is the controlled-delay admission controller, consulted at every
// dequeue with the dequeued request's queue delay. The control law follows
// Nichols & Jacobson: sojourn above target for one full interval enters the
// dropping state; successive drops accelerate as interval/sqrt(n); a
// sojourn below target exits immediately.
type CoDel struct {
	cfg CoDelConfig

	firstAbove uint64 // cycle the delay first exceeded target (0 = below)
	dropping   bool
	dropNext   uint64 // next scheduled drop while in dropping state
	dropCount  int

	Stats CoDelStats
}

// NewCoDel returns an idle controller; cfg must validate.
func NewCoDel(cfg CoDelConfig) *CoDel { return &CoDel{cfg: cfg} }

// controlLaw returns the time of drop n after t.
func (c *CoDel) controlLaw(t uint64, n int) uint64 {
	return t + uint64(float64(c.cfg.IntervalCycles)/sqrtf(n))
}

// OnDequeue decides the fate of a request dequeued at cycle now after
// waiting qdelay cycles: false admits it, true drops it. Callers drop the
// request and immediately try the next one.
func (c *CoDel) OnDequeue(now, qdelay uint64) (drop bool) {
	if qdelay < c.cfg.TargetCycles {
		// Standing delay resolved: leave dropping state, reset tracking.
		c.firstAbove = 0
		c.dropping = false
		c.Stats.Admits++
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.cfg.IntervalCycles
	}
	if c.dropping {
		if now >= c.dropNext {
			c.dropCount++
			c.dropNext = c.controlLaw(c.dropNext, c.dropCount)
			c.Stats.Drops++
			return true
		}
		c.Stats.Admits++
		return false
	}
	if now >= c.firstAbove {
		// Delay stood above target for a full interval: start dropping.
		c.dropping = true
		c.dropCount = 1
		c.dropNext = c.controlLaw(now, c.dropCount)
		c.Stats.Drops++
		return true
	}
	c.Stats.Admits++
	return false
}

// Dropping reports whether the controller is in its dropping state.
func (c *CoDel) Dropping() bool { return c.dropping }

// sqrtf is an integer-friendly Newton sqrt for the control law (avoids
// importing math for one call; exact enough for drop pacing).
func sqrtf(n int) float64 {
	x := float64(n)
	if x <= 0 {
		return 1
	}
	g := x
	for i := 0; i < 20; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// AIMDConfig parameterizes the adaptive concurrency limiter.
type AIMDConfig struct {
	// MinLimit/MaxLimit bound the concurrency limit.
	MinLimit, MaxLimit float64
	// Increase is the additive limit growth per fast completion.
	Increase float64
	// DecreaseFactor multiplies the limit on a congestion signal (0, 1).
	DecreaseFactor float64
	// LatencyThresholdCycles is the round-trip time above which a
	// completion counts as a congestion signal, as do failures.
	LatencyThresholdCycles uint64
	// CooldownCycles rate-limits multiplicative decreases so one slow
	// burst does not collapse the limit to the floor.
	CooldownCycles uint64
}

// DefaultAIMDConfig suits a backend with ~0.5 ms fast-path responses: the
// congestion threshold is 1.2 ms — comfortably above a healthy round trip
// but below the 1.6 ms call timeout, so the limiter reacts to slowness
// before callers start abandoning — decreases halve, and at most one
// decrease fires per 10 ms.
func DefaultAIMDConfig() AIMDConfig {
	return AIMDConfig{
		MinLimit:               2,
		MaxLimit:               256,
		Increase:               0.05,
		DecreaseFactor:         0.5,
		LatencyThresholdCycles: 300_000,
		CooldownCycles:         2_500_000,
	}
}

// Validate rejects configurations that cannot converge.
func (c AIMDConfig) Validate() error {
	if c.MinLimit < 1 || c.MaxLimit < c.MinLimit {
		return fmt.Errorf("fault: aimd limits must satisfy 1 <= min <= max")
	}
	if c.Increase <= 0 {
		return fmt.Errorf("fault: aimd increase must be positive")
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		return fmt.Errorf("fault: aimd decrease factor %g outside (0, 1)", c.DecreaseFactor)
	}
	if c.LatencyThresholdCycles == 0 {
		return fmt.Errorf("fault: aimd latency threshold must be positive")
	}
	return nil
}

// AIMDStats counts limiter activity.
type AIMDStats struct {
	Increases uint64 // additive steps (fast completions)
	Decreases uint64 // multiplicative cuts
	Rejected  uint64 // acquisitions refused at the limit (caller-reported)
}

// AIMD is the adaptive concurrency control law. It owns only the limit;
// the caller tracks its own in-flight population against Limit() (in a
// discrete-event simulation, in-flight bookkeeping needs the caller's event
// clock) and reports completions through Outcome.
type AIMD struct {
	cfg          AIMDConfig
	limit        float64
	lastDecrease uint64

	Stats AIMDStats
}

// NewAIMD starts the limiter at the midpoint of its range; cfg must
// validate.
func NewAIMD(cfg AIMDConfig) *AIMD {
	return &AIMD{cfg: cfg, limit: (cfg.MinLimit + cfg.MaxLimit) / 2}
}

// Limit returns the current concurrency limit (floor it for admission).
func (l *AIMD) Limit() float64 { return l.limit }

// Reject records an admission refused at the limit.
func (l *AIMD) Reject() { l.Stats.Rejected++ }

// Outcome feeds one completed call: ok is the logical result, rtt its
// round-trip cycles, now the completion cycle. Slow or failed calls cut the
// limit (at most once per cooldown); fast successes grow it.
func (l *AIMD) Outcome(now, rtt uint64, ok bool) {
	if !ok || rtt > l.cfg.LatencyThresholdCycles {
		if now >= l.lastDecrease+l.cfg.CooldownCycles {
			l.limit *= l.cfg.DecreaseFactor
			if l.limit < l.cfg.MinLimit {
				l.limit = l.cfg.MinLimit
			}
			l.lastDecrease = now
			l.Stats.Decreases++
		}
		return
	}
	l.limit += l.cfg.Increase
	if l.limit > l.cfg.MaxLimit {
		l.limit = l.cfg.MaxLimit
	}
	l.Stats.Increases++
}

// RetryBudgetConfig parameterizes the retry token bucket.
type RetryBudgetConfig struct {
	// Ratio is the tokens earned per primary request — the steady-state
	// retry fraction the budget permits (0.1 = 10% retry amplification).
	Ratio float64
	// Burst is the bucket capacity in tokens.
	Burst float64
}

// DefaultRetryBudgetConfig allows 10% steady-state retries with a burst of
// 20 — enough to ride out a blip, nothing like a storm.
func DefaultRetryBudgetConfig() RetryBudgetConfig {
	return RetryBudgetConfig{Ratio: 0.1, Burst: 20}
}

// Validate rejects empty budgets.
func (c RetryBudgetConfig) Validate() error {
	if c.Ratio <= 0 || c.Ratio > 1 {
		return fmt.Errorf("fault: retry budget ratio %g outside (0, 1]", c.Ratio)
	}
	if c.Burst < 1 {
		return fmt.Errorf("fault: retry budget burst must be at least 1")
	}
	return nil
}

// RetryBudgetStats counts budget activity.
type RetryBudgetStats struct {
	Spent  uint64 // retries admitted
	Denied uint64 // retries refused (bucket empty)
}

// RetryBudget is the token bucket that bounds retry amplification. Earn is
// called once per primary (first-attempt) request; Allow gates each retry.
type RetryBudget struct {
	cfg    RetryBudgetConfig
	tokens float64

	Stats RetryBudgetStats
}

// NewRetryBudget returns a full bucket; cfg must validate.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	return &RetryBudget{cfg: cfg, tokens: cfg.Burst}
}

// Earn credits the budget for one primary request.
func (b *RetryBudget) Earn() {
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Burst {
		b.tokens = b.cfg.Burst
	}
}

// Allow spends one token for a retry, reporting whether one was available.
func (b *RetryBudget) Allow() bool {
	if b.tokens >= 1 {
		b.tokens--
		b.Stats.Spent++
		return true
	}
	b.Stats.Denied++
	return false
}

// Tokens returns the current bucket level.
func (b *RetryBudget) Tokens() float64 { return b.tokens }

// BrownoutConfig parameterizes stepped degradation.
type BrownoutConfig struct {
	// MaxLevel is the deepest degradation level (work classes carry a
	// Priority; level L sheds every class with 0 < Priority <= L).
	MaxLevel int
	// EngageDelayCycles is the queue delay that steps the level up;
	// DisengageDelayCycles (< Engage) steps it down.
	EngageDelayCycles, DisengageDelayCycles uint64
	// HoldCycles is the minimum dwell between level changes, damping
	// oscillation.
	HoldCycles uint64
}

// DefaultBrownoutConfig engages at 18 ms of queue delay, disengages below
// 4 ms, and moves at most once per 25 ms. The engage threshold sits above
// the worst delay a default bounded queue can hold under any admitted mix,
// so steady overload (which the queue cap and CoDel absorb by shedding
// uniformly) does not brown the service — only genuine capacity loss (a
// crashed node draining with cold caches, a seized shard) pushes delay
// high enough to start shedding optional work. Setting the threshold
// below the cap's worst all-critical-mix delay instead causes lock-in:
// degradation shifts the queue toward expensive critical requests, whose
// own standing delay then holds the controller engaged forever.
func DefaultBrownoutConfig() BrownoutConfig {
	return BrownoutConfig{
		MaxLevel:             2,
		EngageDelayCycles:    4_500_000,
		DisengageDelayCycles: 1_000_000,
		HoldCycles:           6_250_000,
	}
}

// Validate rejects inverted thresholds.
func (c BrownoutConfig) Validate() error {
	if c.MaxLevel < 1 {
		return fmt.Errorf("fault: brownout needs at least one level")
	}
	if c.DisengageDelayCycles >= c.EngageDelayCycles {
		return fmt.Errorf("fault: brownout disengage threshold must be below engage threshold")
	}
	return nil
}

// BrownoutStats counts degradation activity.
type BrownoutStats struct {
	Engagements uint64 // level increases
	Releases    uint64 // level decreases
	Shed        uint64 // optional requests dropped (caller-reported)
}

// Brownout is the stepped degradation controller. Observe feeds it queue
// delays (typically at every dequeue); DropClass answers admission-time
// questions about optional work.
type Brownout struct {
	cfg        BrownoutConfig
	level      int
	lastChange uint64

	Stats BrownoutStats
}

// NewBrownout returns an un-degraded controller; cfg must validate.
func NewBrownout(cfg BrownoutConfig) *Brownout { return &Brownout{cfg: cfg} }

// Level returns the current degradation level (0 = full service).
func (b *Brownout) Level() int { return b.level }

// Observe feeds one queue-delay measurement at cycle now and moves the
// level at most one step, respecting the hold time.
func (b *Brownout) Observe(now, qdelay uint64) {
	if now < b.lastChange+b.cfg.HoldCycles {
		return
	}
	switch {
	case qdelay >= b.cfg.EngageDelayCycles && b.level < b.cfg.MaxLevel:
		b.level++
		b.lastChange = now
		b.Stats.Engagements++
	case qdelay <= b.cfg.DisengageDelayCycles && b.level > 0:
		b.level--
		b.lastChange = now
		b.Stats.Releases++
	}
}

// DropClass reports whether a request of the given priority should be shed
// at the current level. Priority 0 is never shed; the stats are updated by
// the caller only when it actually sheds (it may have no such request).
func (b *Brownout) DropClass(priority int) bool {
	return priority > 0 && priority <= b.level
}
