// Package fault is the simulator's deterministic fault-injection subsystem.
// A Schedule places fault windows on the simulated-cycle timeline; an
// Injector, seeded from the run's simrand stream, answers the questions the
// rest of the stack asks while a run plays:
//
//   - internal/netsim asks for a link latency factor (latency spikes);
//   - internal/db asks for a service-time factor (lock storms, and the
//     cold-cache ramp after a crashed node restarts);
//   - internal/osmodel asks for a stop-the-world amplification factor
//     (GC pause storms);
//   - the application server's resilient call path (internal/appserver)
//     asks for the outcome of one call attempt (ok, refused by a crashed
//     node, or lost to a partition / packet loss);
//   - internal/cluster asks whether the co-simulated peer is reachable.
//
// Everything is a pure function of (schedule, seed, query order), and the
// simulator is single-threaded per run, so a faulted experiment replays
// bit-identically from its seed — faults are a reproducible workload
// dimension, not noise.
//
// The package also provides the matching resilience primitives (Policy,
// Breaker, Shedder — see resilience.go): they live here rather than in the
// application server so the timing layer and tests can reason about
// degraded-mode behavior without importing workload code.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/simrand"
)

// Kind discriminates fault types.
type Kind uint8

const (
	// NodeCrash takes a peer machine down for the window: connections are
	// refused immediately (fast failure), and for half the window's length
	// after restart the recovering node serves slowly (cold buffer pool) —
	// the service factor decays linearly from Magnitude back to 1.
	NodeCrash Kind = iota
	// Partition black-holes traffic to a peer: requests are silently lost
	// and the caller burns its full timeout discovering it.
	Partition
	// PacketLoss drops each request to a peer independently with
	// probability Magnitude (0, 1]; a dropped request costs the caller a
	// timeout.
	PacketLoss
	// LatencySpike multiplies link transfer time to a peer by Magnitude
	// (> 1) for the window.
	LatencySpike
	// DBLockStorm multiplies remote-tier service time by Magnitude (> 1)
	// for the window — the queueing-model equivalent of a lock convoy in
	// the database.
	DBLockStorm
	// GCStorm multiplies stop-the-world pause lengths by Magnitude (> 1)
	// for the window, modeling a degraded collector (fragmented heap,
	// promotion storm).
	GCStorm
	numKinds
)

var kindNames = [numKinds]string{
	NodeCrash:    "node-crash",
	Partition:    "partition",
	PacketLoss:   "packet-loss",
	LatencySpike: "latency-spike",
	DBLockStorm:  "db-lock-storm",
	GCStorm:      "gc-storm",
}

// String returns the kind's schedule-file name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString resolves a schedule-file kind name.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one fault window on the simulated-cycle timeline.
type Event struct {
	Kind Kind
	// At is the window's start cycle; Duration its length (cycles, > 0).
	At, Duration uint64
	// Peer targets one peer machine for network faults (NodeCrash,
	// Partition, PacketLoss, LatencySpike); 0 targets every peer. Ignored
	// by machine-wide kinds (DBLockStorm, GCStorm).
	Peer uint8
	// Magnitude is the kind-specific intensity: loss probability for
	// PacketLoss; a multiplier (> 1) for LatencySpike, DBLockStorm, GCStorm;
	// the post-restart service multiplier for NodeCrash (0 picks a default).
	Magnitude float64
}

// End returns the first cycle after the window.
func (e Event) End() uint64 { return e.At + e.Duration }

// covers reports whether the window is active at cycle t.
func (e Event) covers(t uint64) bool { return t >= e.At && t < e.End() }

// appliesTo reports whether the event targets peer (0 = all peers).
func (e Event) appliesTo(peer uint8) bool { return e.Peer == 0 || e.Peer == peer }

func (e Event) String() string {
	s := fmt.Sprintf("%s @%d +%d", e.Kind, e.At, e.Duration)
	if e.Peer != 0 {
		s += fmt.Sprintf(" peer=%d", e.Peer)
	}
	if e.Magnitude != 0 {
		s += fmt.Sprintf(" x%.2f", e.Magnitude)
	}
	return s
}

// crashRampDefault is the post-restart service multiplier when a NodeCrash
// event leaves Magnitude zero.
const crashRampDefault = 4.0

// Schedule is a validated set of fault windows, sorted by start cycle.
type Schedule struct {
	Events []Event
}

// Validate checks every event and the schedule's overlap rules, and sorts
// the events by start cycle (stable on ties). Two windows of the same kind
// aimed at the same peer must not overlap — an overlapping pair almost
// always means a typo in cycle arithmetic, and erroring beats silently
// compounding magnitudes.
func (s *Schedule) Validate() error {
	for i := range s.Events {
		if err := s.Events[i].validate(); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, s.Events[i].Kind, err)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	for i := range s.Events {
		for j := i + 1; j < len(s.Events); j++ {
			a, b := s.Events[i], s.Events[j]
			if b.At >= a.End() {
				break // sorted: no later event can overlap a
			}
			samePeer := a.Peer == b.Peer || a.Peer == 0 || b.Peer == 0
			if a.Kind == b.Kind && samePeer {
				return fmt.Errorf("overlapping %s windows: [%s] and [%s]", a.Kind, a, b)
			}
		}
	}
	return nil
}

func (e *Event) validate() error {
	if int(e.Kind) >= int(numKinds) {
		return fmt.Errorf("unknown kind %d", e.Kind)
	}
	if e.Duration == 0 {
		return fmt.Errorf("zero-length window")
	}
	if e.At+e.Duration < e.At {
		return fmt.Errorf("window end overflows uint64 (at=%d duration=%d)", e.At, e.Duration)
	}
	switch e.Kind {
	case PacketLoss:
		if e.Magnitude <= 0 || e.Magnitude > 1 {
			return fmt.Errorf("loss probability %g outside (0, 1]", e.Magnitude)
		}
	case LatencySpike, DBLockStorm, GCStorm:
		if e.Magnitude <= 1 {
			return fmt.Errorf("multiplier %g must exceed 1", e.Magnitude)
		}
	case NodeCrash:
		if e.Magnitude < 0 || (e.Magnitude > 0 && e.Magnitude < 1) {
			return fmt.Errorf("restart-ramp multiplier %g must be 0 (default) or >= 1", e.Magnitude)
		}
	case Partition:
		if e.Magnitude != 0 {
			return fmt.Errorf("partition takes no magnitude (got %g)", e.Magnitude)
		}
	}
	return nil
}

// Horizon returns the last cycle any window (including crash-restart ramps)
// is still in effect, or 0 for an empty schedule.
func (s *Schedule) Horizon() uint64 {
	var h uint64
	for _, e := range s.Events {
		end := e.End()
		if e.Kind == NodeCrash {
			end += e.Duration / 2 // restart ramp
		}
		if end > h {
			h = end
		}
	}
	return h
}

// Demo returns the documented demonstration schedule used by
// `ecperfsim -faults demo`: one window of every fault kind spread across
// [start, start+span), sized so the windows are well separated and recovery
// between them is visible.
func Demo(start, span uint64) *Schedule {
	w := span / 20 // window length: 5% of the span each
	s := &Schedule{Events: []Event{
		{Kind: LatencySpike, At: start + 2*w, Duration: w, Magnitude: 8},
		{Kind: PacketLoss, At: start + 5*w, Duration: w, Peer: 1, Magnitude: 0.4},
		{Kind: Partition, At: start + 8*w, Duration: w, Peer: 1},
		{Kind: DBLockStorm, At: start + 11*w, Duration: w, Magnitude: 6},
		{Kind: NodeCrash, At: start + 14*w, Duration: w, Peer: 1},
		{Kind: GCStorm, At: start + 17*w, Duration: w, Magnitude: 5},
	}}
	if err := s.Validate(); err != nil {
		panic("fault: demo schedule invalid: " + err.Error())
	}
	return s
}

// Outcome is the injector's verdict on one call attempt.
type Outcome uint8

const (
	// OK: the attempt goes through; the caller performs the real round trip.
	OK Outcome = iota
	// FastFail: the peer refused the connection (crashed node); the caller
	// learns immediately.
	FastFail
	// Lost: the request vanished (partition or packet loss); the caller
	// burns its full timeout before concluding failure.
	Lost
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case FastFail:
		return "fastfail"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// InjectStats counts injector decisions, by fault kind where it matters.
type InjectStats struct {
	// Refused counts FastFail outcomes (crashed peer), Dropped counts Lost
	// outcomes split by cause.
	Refused          uint64
	DroppedPartition uint64
	DroppedLoss      uint64
	// LatencyScaled / ServiceScaled / GCScaled count queries answered with
	// a factor above 1.
	LatencyScaled uint64
	ServiceScaled uint64
	GCScaled      uint64
}

// Injector answers fault queries against a schedule. A nil *Injector is
// valid and injects nothing, so instrumented components pay one nil check
// when fault injection is off.
//
// The injector is not safe for concurrent use; one run owns one injector,
// like a Tracer.
type Injector struct {
	sched *Schedule
	rng   *simrand.Rand

	// Stats counts decisions; read it after a run for reporting.
	Stats InjectStats

	tracer *obs.Tracer
	tid    int
}

// NewInjector builds an injector over a validated schedule. rng must be a
// dedicated stream derived from the run seed (the injector's draws then
// never perturb any other consumer's sequence).
func NewInjector(s *Schedule, rng *simrand.Rand) *Injector {
	if s == nil {
		s = &Schedule{}
	}
	return &Injector{sched: s, rng: rng, tid: -1}
}

// Schedule returns the injector's schedule.
func (inj *Injector) Schedule() *Schedule {
	if inj == nil {
		return nil
	}
	return inj.sched
}

// AttachTracer emits every scheduled window as a span on the given trace
// track (obs.CompFault) so degraded intervals are visible alongside the GC,
// lock, and network events the stack already records.
func (inj *Injector) AttachTracer(t *obs.Tracer, tid int) {
	if inj == nil || !t.Enabled(obs.CompFault) {
		return
	}
	inj.tracer = t
	inj.tid = tid
	for _, e := range inj.sched.Events {
		args := []obs.Arg{{Key: "kind", Val: e.Kind.String()}}
		if e.Peer != 0 {
			args = append(args, obs.Arg{Key: "peer", Val: uint64(e.Peer)})
		}
		if e.Magnitude != 0 {
			args = append(args, obs.Arg{Key: "magnitude", Val: e.Magnitude})
		}
		t.Span(obs.CompFault, "fault."+e.Kind.String(), tid, e.At, e.End(), args...)
	}
}

// active returns the first window of kind k covering (peer, t).
func (inj *Injector) active(k Kind, peer uint8, t uint64) (Event, bool) {
	if inj == nil {
		return Event{}, false
	}
	for _, e := range inj.sched.Events {
		if e.At > t {
			break
		}
		if e.Kind == k && e.covers(t) && e.appliesTo(peer) {
			return e, true
		}
	}
	return Event{}, false
}

// PeerDown reports whether peer is unreachable at t and why: (true, true)
// for a crashed node (fast failure), (true, false) for a partition
// (requests are silently lost). Packet loss is probabilistic and only
// surfaces through CallOutcome.
func (inj *Injector) PeerDown(peer uint8, t uint64) (down, crashed bool) {
	if _, ok := inj.active(NodeCrash, peer, t); ok {
		return true, true
	}
	if _, ok := inj.active(Partition, peer, t); ok {
		return true, false
	}
	return false, false
}

// CallOutcome decides the fate of one call attempt to peer at cycle t. The
// packet-loss draw consumes the injector's rng only inside a loss window,
// so runs with disjoint schedules stay comparable draw-for-draw.
func (inj *Injector) CallOutcome(peer uint8, t uint64) Outcome {
	if inj == nil {
		return OK
	}
	if down, crashed := inj.PeerDown(peer, t); down {
		if crashed {
			inj.Stats.Refused++
			return FastFail
		}
		inj.Stats.DroppedPartition++
		return Lost
	}
	if e, ok := inj.active(PacketLoss, peer, t); ok && inj.rng.Bool(e.Magnitude) {
		inj.Stats.DroppedLoss++
		return Lost
	}
	return OK
}

// LinkFactor returns the latency multiplier for traffic to peer at t
// (1 when no spike window is active).
func (inj *Injector) LinkFactor(peer uint8, t uint64) float64 {
	if e, ok := inj.active(LatencySpike, peer, t); ok {
		inj.Stats.LatencyScaled++
		return e.Magnitude
	}
	return 1
}

// ServiceFactor returns the remote-tier service-time multiplier at t: the
// lock-storm multiplier inside a DBLockStorm window, and the linearly
// decaying cold-cache ramp for half a window after a crashed peer restarts.
func (inj *Injector) ServiceFactor(peer uint8, t uint64) float64 {
	if e, ok := inj.active(DBLockStorm, peer, t); ok {
		inj.Stats.ServiceScaled++
		return e.Magnitude
	}
	if inj == nil {
		return 1
	}
	for _, e := range inj.sched.Events {
		if e.Kind != NodeCrash || !e.appliesTo(peer) {
			continue
		}
		ramp := e.Duration / 2
		if t < e.End() || t >= e.End()+ramp || ramp == 0 {
			continue
		}
		peak := e.Magnitude
		if peak == 0 {
			peak = crashRampDefault
		}
		frac := float64(t-e.End()) / float64(ramp)
		inj.Stats.ServiceScaled++
		return peak - (peak-1)*frac
	}
	return 1
}

// GCFactor returns the stop-the-world pause multiplier at t (1 outside
// GCStorm windows).
func (inj *Injector) GCFactor(t uint64) float64 {
	if e, ok := inj.active(GCStorm, 0, t); ok {
		inj.Stats.GCScaled++
		return e.Magnitude
	}
	return 1
}

// Instant records a fault-component instant event (retries, sheds, breaker
// transitions) if a tracer is attached.
func (inj *Injector) Instant(name string, t uint64, args ...obs.Arg) {
	if inj != nil && inj.tracer != nil {
		inj.tracer.Instant(obs.CompFault, name, inj.tid, t, args...)
	}
}
