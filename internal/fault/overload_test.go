package fault

import "testing"

func TestOverloadConfigValidation(t *testing.T) {
	if err := DefaultCoDelConfig().Validate(); err != nil {
		t.Errorf("default codel config invalid: %v", err)
	}
	if err := DefaultAIMDConfig().Validate(); err != nil {
		t.Errorf("default aimd config invalid: %v", err)
	}
	if err := DefaultRetryBudgetConfig().Validate(); err != nil {
		t.Errorf("default retry budget config invalid: %v", err)
	}
	if err := DefaultBrownoutConfig().Validate(); err != nil {
		t.Errorf("default brownout config invalid: %v", err)
	}
	bad := []error{
		CoDelConfig{TargetCycles: 0, IntervalCycles: 1}.Validate(),
		AIMDConfig{MinLimit: 0, MaxLimit: 10, Increase: 1, DecreaseFactor: 0.5, LatencyThresholdCycles: 1}.Validate(),
		AIMDConfig{MinLimit: 2, MaxLimit: 10, Increase: 1, DecreaseFactor: 1.5, LatencyThresholdCycles: 1}.Validate(),
		RetryBudgetConfig{Ratio: 0, Burst: 10}.Validate(),
		BrownoutConfig{MaxLevel: 1, EngageDelayCycles: 100, DisengageDelayCycles: 200}.Validate(),
	}
	for i, err := range bad {
		if err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

// TestCoDelBelowTargetNeverDrops: short queue delays pass untouched.
func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	cfg := DefaultCoDelConfig()
	c := NewCoDel(cfg)
	for now := uint64(0); now < 100*cfg.IntervalCycles; now += cfg.IntervalCycles / 10 {
		if c.OnDequeue(now, cfg.TargetCycles/2) {
			t.Fatalf("dropped at %d with delay below target", now)
		}
	}
	if c.Stats.Drops != 0 {
		t.Errorf("drops = %d, want 0", c.Stats.Drops)
	}
}

// TestCoDelStandingDelayDrops: a standing delay above target for a full
// interval enters the dropping state, and drops accelerate; recovery (a
// sojourn below target) exits immediately.
func TestCoDelStandingDelayDrops(t *testing.T) {
	cfg := DefaultCoDelConfig()
	c := NewCoDel(cfg)
	step := cfg.IntervalCycles / 50
	now := uint64(0)
	// Phase 1: delay persistently 4x target.
	var firstDrop uint64
	for i := 0; i < 1000; i++ {
		now += step
		if c.OnDequeue(now, 4*cfg.TargetCycles) && firstDrop == 0 {
			firstDrop = now
		}
	}
	if firstDrop == 0 {
		t.Fatal("standing delay never triggered a drop")
	}
	if firstDrop < cfg.IntervalCycles {
		t.Errorf("first drop at %d, before a full interval %d elapsed", firstDrop, cfg.IntervalCycles)
	}
	if !c.Dropping() {
		t.Error("controller not in dropping state under standing delay")
	}
	earlyDrops := c.Stats.Drops
	// Drops accelerate: the second half of an equally long overload window
	// must shed at least as many as the first.
	for i := 0; i < 1000; i++ {
		now += step
		c.OnDequeue(now, 4*cfg.TargetCycles)
	}
	lateDrops := c.Stats.Drops - earlyDrops
	if lateDrops < earlyDrops {
		t.Errorf("drops decelerated: %d then %d", earlyDrops, lateDrops)
	}
	// Phase 2: one below-target sojourn resets everything.
	if c.OnDequeue(now+step, cfg.TargetCycles/4) {
		t.Error("dropped a below-target request")
	}
	if c.Dropping() {
		t.Error("controller still dropping after delay recovered")
	}
}

// TestAIMDConverges: fast successes grow the limit to the cap; slow
// responses collapse it multiplicatively but never below the floor, and the
// cooldown bounds the collapse rate.
func TestAIMDConverges(t *testing.T) {
	cfg := DefaultAIMDConfig()
	l := NewAIMD(cfg)
	start := l.Limit()
	now := uint64(0)
	for i := 0; i < 100000; i++ {
		now += 1000
		l.Outcome(now, cfg.LatencyThresholdCycles/2, true)
	}
	if l.Limit() != cfg.MaxLimit {
		t.Errorf("limit %.1f after sustained fast traffic, want cap %.1f", l.Limit(), cfg.MaxLimit)
	}
	if l.Limit() <= start {
		t.Errorf("limit never grew from %.1f", start)
	}
	// One slow burst inside a single cooldown window: exactly one decrease.
	before := l.Limit()
	for i := 0; i < 10; i++ {
		l.Outcome(now+uint64(i), 10*cfg.LatencyThresholdCycles, true)
	}
	if got, want := l.Limit(), before*cfg.DecreaseFactor; got != want {
		t.Errorf("limit %.2f after one congested burst, want single cut to %.2f", got, want)
	}
	if l.Stats.Decreases != 1 {
		t.Errorf("decreases = %d within one cooldown, want 1", l.Stats.Decreases)
	}
	// Sustained congestion across cooldowns: floor holds.
	for i := 0; i < 100; i++ {
		now += cfg.CooldownCycles + 1
		l.Outcome(now, 10*cfg.LatencyThresholdCycles, false)
	}
	if l.Limit() != cfg.MinLimit {
		t.Errorf("limit %.2f under sustained congestion, want floor %.2f", l.Limit(), cfg.MinLimit)
	}
}

// TestRetryBudgetStopsStorms: with no primary traffic earning tokens, only
// the initial burst of retries is admitted; steady primary traffic sustains
// the configured retry ratio.
func TestRetryBudgetStopsStorms(t *testing.T) {
	cfg := RetryBudgetConfig{Ratio: 0.1, Burst: 20}
	b := NewRetryBudget(cfg)
	admitted := 0
	for i := 0; i < 1000; i++ {
		if b.Allow() {
			admitted++
		}
	}
	if admitted != int(cfg.Burst) {
		t.Errorf("storm admitted %d retries, want exactly the burst %d", admitted, int(cfg.Burst))
	}
	if b.Stats.Denied != 1000-uint64(admitted) {
		t.Errorf("denied = %d, want %d", b.Stats.Denied, 1000-admitted)
	}
	// Steady state: 10 primaries earn one retry.
	b2 := NewRetryBudget(cfg)
	for i := 0; i < int(cfg.Burst); i++ { // drain the initial burst
		b2.Allow()
	}
	earned := 0
	for i := 0; i < 1000; i++ {
		b2.Earn()
		if b2.Allow() {
			earned++
		}
	}
	if earned < 95 || earned > 105 {
		t.Errorf("steady-state retries %d per 1000 primaries, want ~%d", earned, int(cfg.Ratio*1000))
	}
}

// TestBrownoutSteps: queue pressure walks the level up one step per hold
// period, relief walks it back down, and priority-0 work is never shed.
func TestBrownoutSteps(t *testing.T) {
	cfg := DefaultBrownoutConfig()
	b := NewBrownout(cfg)
	if b.DropClass(2) || b.DropClass(0) {
		t.Fatal("un-degraded controller sheds work")
	}
	now := cfg.HoldCycles
	b.Observe(now, cfg.EngageDelayCycles)
	if b.Level() != 1 {
		t.Fatalf("level %d after first engage, want 1", b.Level())
	}
	// Within the hold period nothing moves.
	b.Observe(now+1, cfg.EngageDelayCycles*10)
	if b.Level() != 1 {
		t.Fatalf("level moved within hold period")
	}
	now += cfg.HoldCycles
	b.Observe(now, cfg.EngageDelayCycles)
	if b.Level() != cfg.MaxLevel {
		t.Fatalf("level %d, want max %d", b.Level(), cfg.MaxLevel)
	}
	// At max level: optional classes shed, critical class survives.
	if !b.DropClass(1) || !b.DropClass(2) {
		t.Error("optional classes not shed at max level")
	}
	if b.DropClass(0) {
		t.Error("priority-0 class shed")
	}
	// Ceiling holds.
	now += cfg.HoldCycles
	b.Observe(now, cfg.EngageDelayCycles)
	if b.Level() != cfg.MaxLevel {
		t.Errorf("level %d exceeded max", b.Level())
	}
	// Relief walks back down.
	for i := 0; i < 2; i++ {
		now += cfg.HoldCycles
		b.Observe(now, cfg.DisengageDelayCycles)
	}
	if b.Level() != 0 {
		t.Errorf("level %d after sustained relief, want 0", b.Level())
	}
	if b.Stats.Engagements != 2 || b.Stats.Releases != 2 {
		t.Errorf("engagements/releases = %d/%d, want 2/2", b.Stats.Engagements, b.Stats.Releases)
	}
}

// TestBreakerHalfOpenProbeFailure is the regression test for the half-open
// probe-failure path: a failed probe must re-open the breaker and restart
// the FULL cooldown from the probe's completion — not resume the old one,
// and not land half-open or closed.
func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	pol := DefaultPolicy()
	b := NewBreaker(&pol)
	// Trip the breaker at t=0.
	for i := 0; i < pol.BreakerFailures; i++ {
		if !b.Allow(0) {
			t.Fatal("closed breaker rejected a call")
		}
		b.Record(0, false)
	}
	if b.State(0) != BreakerOpen {
		t.Fatalf("state %v after %d failures, want open", b.State(0), pol.BreakerFailures)
	}
	// Cooldown elapses; the probe is admitted at t1 and fails at t2.
	t1 := pol.BreakerCooldownCycles
	if !b.Allow(t1) {
		t.Fatal("half-open breaker rejected the probe")
	}
	t2 := t1 + 100_000
	b.Record(t2, false)

	if got := b.State(t2); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	// A fresh full cooldown must run from t2: just before t2+cooldown the
	// breaker still rejects; at t2+cooldown it admits exactly one new probe.
	if b.Allow(t2 + pol.BreakerCooldownCycles - 1) {
		t.Error("breaker admitted a call before the restarted cooldown elapsed")
	}
	// In particular the OLD cooldown (from the original open at t=0) must
	// not apply: t1+cooldown has long passed, yet the breaker stays open.
	if got := b.State(t1 + pol.BreakerCooldownCycles); got != BreakerOpen {
		t.Errorf("state %v at old-cooldown expiry, want open (cooldown must restart)", got)
	}
	t3 := t2 + pol.BreakerCooldownCycles
	if !b.Allow(t3) {
		t.Fatal("breaker rejected the probe after the restarted cooldown")
	}
	// Only one probe at a time.
	if b.Allow(t3) {
		t.Error("second concurrent probe admitted in half-open state")
	}
	// This probe succeeds: breaker closes and stays closed.
	b.Record(t3+100_000, true)
	if got := b.State(t3 + 200_000); got != BreakerClosed {
		t.Errorf("state %v after successful probe, want closed", got)
	}
	if b.Stats.Opens != 2 {
		t.Errorf("opens = %d, want 2 (initial trip + failed probe)", b.Stats.Opens)
	}
}
