package fault

import (
	"encoding/json"
	"testing"
)

// FuzzParseSchedule asserts the schedule parser's contract: arbitrary input
// must either yield a schedule that validates and round-trips, or an error —
// never a panic and never a silently-invalid schedule.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		// Well-formed.
		`{"events":[{"kind":"partition","at":20000000,"duration":2500000,"peer":1}]}`,
		`{"events":[{"kind":"packet-loss","at":"30000000","duration":"2500000","peer":1,"magnitude":0.4}]}`,
		`{"events":[{"kind":"latency-spike","at":1,"duration":1,"magnitude":8},{"kind":"gc-storm","at":1,"duration":1,"magnitude":5}]}`,
		`{"events":[]}`,
		`{}`,
		// Malformed timestamps.
		`{"events":[{"kind":"node-crash","at":-1,"duration":5}]}`,
		`{"events":[{"kind":"node-crash","at":1.5,"duration":5}]}`,
		`{"events":[{"kind":"node-crash","at":"1e9","duration":5}]}`,
		`{"events":[{"kind":"node-crash","at":18446744073709551615,"duration":2}]}`,
		`{"events":[{"kind":"node-crash","at":1}]}`,
		// Overlapping windows.
		`{"events":[{"kind":"partition","at":10,"duration":100},{"kind":"partition","at":50,"duration":100,"peer":3}]}`,
		// Unknown kinds.
		`{"events":[{"kind":"meteor","at":1,"duration":1}]}`,
		`{"events":[{"kind":"","at":1,"duration":1}]}`,
		// Broken syntax and wrong shapes.
		`{"events":`,
		`[]`,
		`{"events": 7}`,
		`{"events":[{"kind":7,"at":1,"duration":1}]}`,
		`{"events":[{"kind":"gc-storm","at":{},"duration":1}]}`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSchedule(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error %v returned alongside a schedule", err)
			}
			return
		}
		// Accepted schedules must be internally valid...
		if verr := s.Validate(); verr != nil {
			t.Fatalf("parser accepted a schedule Validate rejects: %v", verr)
		}
		// ...and survive a marshal/parse round trip unchanged.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted schedule does not marshal: %v", err)
		}
		back, err := ParseSchedule(out)
		if err != nil {
			t.Fatalf("marshalled schedule does not re-parse: %v\n%s", err, out)
		}
		if len(back.Events) != len(s.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(back.Events), len(s.Events))
		}
		for i := range back.Events {
			if back.Events[i] != s.Events[i] {
				t.Fatalf("round trip changed event %d: %+v != %+v", i, back.Events[i], s.Events[i])
			}
		}
	})
}
