// Package dbserver models the ECperf database machine as a real simulated
// system rather than a queueing abstraction — the paper simulated all four
// machines of the deployment in Simics and filtered the application
// server's references (§3.3); this workload is what runs on the database
// machine when the reproduction does the same (internal/cluster).
//
// The model is a buffer-pool-resident DBMS, per the paper's observation
// that "ECperf uses a small database, which fit entirely in the buffer
// pool" (§3.2): worker threads take requests from a network queue, walk a
// B-tree index and read the row pages — all real heap memory on this
// machine — apply updates with log appends, and send the reply back over
// the wire.
package dbserver

import (
	"sort"

	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/netsim"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config sizes the database.
type Config struct {
	// Tables and RowsPerTable size the buffer-pool-resident data.
	Tables       int
	RowsPerTable int
	RowBytes     uint32
	// IndexBytes is each table's B-tree index size; IndexDepth the lines
	// read per key lookup.
	IndexBytes uint32
	IndexDepth int
	// ParseInstr is the per-query SQL parse/plan cost; PerRowInstr the
	// per-row execution cost; RowsPerQuery how many rows a query touches.
	ParseInstr   uint32
	PerRowInstr  uint32
	RowsPerQuery int
	// UpdateFrac is the fraction of requests that write (and log).
	UpdateFrac float64
	LogBytes   uint32
	// PollCycles is the worker's idle-poll interval when no request is
	// queued.
	PollCycles uint32
}

// DefaultConfig returns an ECperf-scale cached database.
func DefaultConfig() Config {
	return Config{
		Tables:       8,
		RowsPerTable: 2000,
		RowBytes:     192,
		IndexBytes:   64 << 10,
		IndexDepth:   4,
		ParseInstr:   6_000,
		PerRowInstr:  1_200,
		RowsPerQuery: 3,
		UpdateFrac:   0.35,
		LogBytes:     256,
		PollCycles:   4_000,
	}
}

// Components are the DBMS's code components.
type Components struct {
	SQL *ifetch.Component // parser, planner, executor
}

// Request is one query delivered from the application server.
type Request struct {
	// SourceThread is the requester's thread ID on the other machine.
	SourceThread int
	ReqBytes     uint32
	RespBytes    uint32
	// DeliverAt is when the request reaches this machine (issue + wire).
	DeliverAt uint64
}

// table is the Go-side index of one table's in-heap storage.
type table struct {
	index jvm.ObjectID // B-tree node storage (large, old-gen)
	rows  []jvm.ObjectID
}

// Server is the database machine's workload.
type Server struct {
	cfg    Config
	comps  Components
	heap   *jvm.Heap
	ns     *netsim.NetStack
	rng    *simrand.Rand
	tables []*table

	// queue is the pending-request list, kept ordered by delivery time.
	// Enqueue order is engine order, which within a lockstep window is NOT
	// time order (processors simulate slices independently), so Enqueue
	// inserts in place — otherwise an undue head would block due requests
	// behind it.
	queue []Request
	// inflight maps a worker's recorded op to the request it answers, so
	// the coordinator can route the reply on op completion.
	inflight map[*trace.Op]Request

	Served uint64
	// PickupDelay records how long delivered requests waited for a worker
	// (a co-simulation health diagnostic); NextOps and LastNow track the
	// workers' dispatch cadence.
	PickupDelay stats.Histogram
	NextOps     uint64
	LastNow     uint64
}

// New builds the buffer-pool-resident tables.
func New(cfg Config, heap *jvm.Heap, comps Components, ns *netsim.NetStack, rng *simrand.Rand) *Server {
	rec := trace.NewRecorder("db-build", false)
	s := &Server{
		cfg: cfg, comps: comps, heap: heap, ns: ns, rng: rng,
		inflight: make(map[*trace.Op]Request),
	}
	for t := 0; t < cfg.Tables; t++ {
		tb := &table{index: heap.Alloc(rec, t, cfg.IndexBytes, 0)}
		heap.AddRoot(tb.index)
		for r := 0; r < cfg.RowsPerTable; r++ {
			row := heap.Alloc(rec, t, cfg.RowBytes, 0)
			heap.AddRoot(row)
			tb.rows = append(tb.rows, row)
		}
		heap.ClearStack(t)
		s.tables = append(s.tables, tb)
	}
	heap.MinorGC(nil)
	heap.MinorGC(nil)
	return s
}

// Enqueue delivers a request (called by the cluster coordinator),
// keeping the queue ordered by delivery time.
func (s *Server) Enqueue(r Request) {
	i := sort.Search(len(s.queue), func(i int) bool {
		return s.queue[i].DeliverAt > r.DeliverAt
	})
	s.queue = append(s.queue, Request{})
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = r
}

// QueueDepth returns the number of waiting requests.
func (s *Server) QueueDepth() int { return len(s.queue) }

// InService returns the number of requests claimed by worker threads but
// not yet answered. QueueDepth() + InService() is every request the server
// has accepted and not replied to — the ground truth a coordinator's
// in-flight accounting must match.
func (s *Server) InService() int { return len(s.inflight) }

// TakeRequest claims the request answered by a completed op, if any.
func (s *Server) TakeRequest(op *trace.Op) (Request, bool) {
	r, ok := s.inflight[op]
	if ok {
		delete(s.inflight, op)
	}
	return r, ok
}

// workerSource is one DBMS worker thread.
type workerSource struct {
	s   *Server
	rng *simrand.Rand
	// rec is the worker's reusable recorder. The coordinator always takes
	// a completed query out of the inflight map (OnOpComplete runs before
	// the worker's next NextOp), so reusing the op is safe even though the
	// map is keyed by its pointer.
	rec *trace.Recorder
}

// WorkerSource returns the OpSource for worker i.
func (s *Server) WorkerSource(i int) osmodel.OpSource {
	return &workerSource{s: s, rng: s.rng.Derive(uint64(i)), rec: trace.NewRecorder("", false)}
}

// NextOp processes the next delivered request, or polls when none is due.
func (w *workerSource) NextOp(tid int, now uint64) *trace.Op {
	s, cfg := w.s, w.s.cfg
	s.NextOps++
	if now > s.LastNow {
		s.LastNow = now
	}
	if len(s.queue) == 0 || s.queue[0].DeliverAt > now {
		// Idle poll: a short sleep, as a blocked accept loop would.
		rec := w.rec
		rec.Reset("db-poll", false)
		rec.Think(cfg.PollCycles)
		return rec.Handoff()
	}
	req := s.queue[0]
	s.queue = s.queue[1:]
	if now > req.DeliverAt {
		s.PickupDelay.Add(now - req.DeliverAt)
	}

	rec := w.rec
	rec.Reset("query", true)
	s.ns.ReceiveRequest(rec, req.ReqBytes)
	rec.Instr(s.comps.SQL.ID, cfg.ParseInstr)

	tb := s.tables[w.rng.Intn(len(s.tables))]
	update := w.rng.Bool(cfg.UpdateFrac)
	for r := 0; r < cfg.RowsPerQuery; r++ {
		// Index walk, then the row itself.
		base := s.heap.Addr(tb.index)
		lines := int64(cfg.IndexBytes / 64)
		for d := 0; d < cfg.IndexDepth; d++ {
			rec.Read(base+uint64(w.rng.Int63n(lines))*64, 8)
		}
		row := tb.rows[w.rng.Intn(len(tb.rows))]
		s.heap.ReadObject(rec, row)
		if update {
			s.heap.WriteField(rec, row, 1)
		}
		rec.Instr(s.comps.SQL.ID, cfg.PerRowInstr)
	}
	if update {
		// Log append (sequential writes, short-lived buffer).
		s.heap.Alloc(rec, tid, cfg.LogBytes, 0)
		rec.Instr(s.comps.SQL.ID, cfg.PerRowInstr/2)
	}
	s.ns.SendResponse(rec, req.RespBytes)
	s.heap.ClearStack(tid)

	op := rec.Handoff()
	s.inflight[op] = req
	s.Served++
	return op
}
