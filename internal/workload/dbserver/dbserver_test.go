package dbserver

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func build(t *testing.T) *Server {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	comps := Components{SQL: layout.Add("dbms", 256<<10, false, ifetch.DefaultProfile())}
	kern := layout.Add("kernel-net", 256<<10, true, ifetch.DefaultProfile())
	rng := simrand.New(9)
	net := netsim.NewNetwork(netsim.DefaultLink())
	ns := netsim.NewNetStack(space, kern, net, netsim.DefaultStackConfig(), rng.Derive(1))
	hcfg := jvm.DefaultConfig()
	hcfg.HeapBytes = 32 << 20
	hcfg.NewGenBytes = 6 << 20
	heap := jvm.MustNewHeap(space, hcfg)
	return New(DefaultConfig(), heap, comps, ns, rng.Derive(2))
}

func TestPollWhenEmpty(t *testing.T) {
	s := build(t)
	src := s.WorkerSource(0)
	op := src.NextOp(0, 1000)
	if op.Business {
		t.Fatal("poll op counted as business")
	}
	if len(op.Items) != 1 || op.Items[0].Kind != trace.KindThink {
		t.Fatalf("poll op items: %+v", op.Items)
	}
}

func TestProcessDeliveredRequest(t *testing.T) {
	s := build(t)
	s.Enqueue(Request{SourceThread: 7, ReqBytes: 300, RespBytes: 1400, DeliverAt: 500})
	src := s.WorkerSource(0)

	// Before delivery: poll.
	if op := src.NextOp(0, 100); op.Business {
		t.Fatal("undelivered request processed early")
	}
	// After delivery: a query op.
	op := src.NextOp(0, 1000)
	if !op.Business || op.Tag != "query" {
		t.Fatalf("expected query op, got %q business=%v", op.Tag, op.Business)
	}
	if op.Instructions() < uint64(DefaultConfig().ParseInstr) {
		t.Fatalf("query too cheap: %d instructions", op.Instructions())
	}
	// The inflight map routes the reply.
	req, ok := s.TakeRequest(op)
	if !ok || req.SourceThread != 7 {
		t.Fatalf("TakeRequest = %+v, %v", req, ok)
	}
	if _, again := s.TakeRequest(op); again {
		t.Fatal("TakeRequest not one-shot")
	}
	if s.Served != 1 {
		t.Fatalf("served = %d", s.Served)
	}
}

func TestEnqueueKeepsDeliveryOrder(t *testing.T) {
	s := build(t)
	// Engine order within a lockstep window is not time order.
	s.Enqueue(Request{SourceThread: 1, DeliverAt: 9_000})
	s.Enqueue(Request{SourceThread: 2, DeliverAt: 3_000})
	s.Enqueue(Request{SourceThread: 3, DeliverAt: 6_000})
	src := s.WorkerSource(0)
	var order []int
	for i := 0; i < 3; i++ {
		op := src.NextOp(0, 10_000)
		req, ok := s.TakeRequest(op)
		if !ok {
			t.Fatal("request not claimed")
		}
		order = append(order, req.SourceThread)
	}
	if order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("service order = %v, want delivery order [2 3 1]", order)
	}
}

func TestHeadOfLineDoesNotBlockPolling(t *testing.T) {
	s := build(t)
	s.Enqueue(Request{SourceThread: 1, DeliverAt: 50_000})
	src := s.WorkerSource(0)
	// The only queued request is in the future: the worker must poll, not
	// process it early.
	op := src.NextOp(0, 10_000)
	if op.Business {
		t.Fatal("future request processed early")
	}
	if s.QueueDepth() != 1 {
		t.Fatal("future request dropped")
	}
}

func TestBufferPoolResident(t *testing.T) {
	s := build(t)
	// The tables must be real heap objects that survive collection.
	s.heap.MinorGC(nil)
	s.heap.MajorGC(nil)
	for _, tb := range s.tables {
		if !s.heap.IsLive(tb.index) {
			t.Fatal("index collected")
		}
		for _, row := range tb.rows[:10] {
			if !s.heap.IsLive(row) {
				t.Fatal("row collected")
			}
		}
	}
}
