package volano

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func build(t *testing.T) (*Workload, *ifetch.CodeLayout) {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	comps := Components{App: layout.Add("volano", 128<<10, false, ifetch.DefaultProfile())}
	kern := layout.Add("kernel-net", 256<<10, true, ifetch.DefaultProfile())
	rng := simrand.New(7)
	net := netsim.NewNetwork(netsim.DefaultLink())
	ns := netsim.NewNetStack(space, kern, net, netsim.DefaultStackConfig(), rng.Derive(1))
	hcfg := jvm.DefaultConfig()
	hcfg.HeapBytes = 16 << 20
	hcfg.NewGenBytes = 4 << 20
	heap := jvm.MustNewHeap(space, hcfg)
	return New(DefaultConfig(), heap, comps, ns, rng.Derive(2)), layout
}

func TestConnectionsCount(t *testing.T) {
	w, _ := build(t)
	if w.Connections() != 4*20 {
		t.Fatalf("connections = %d", w.Connections())
	}
}

func TestMessageFanOut(t *testing.T) {
	w, layout := build(t)
	src := w.Source(0, -1)
	op := src.NextOp(0, 0)
	if !op.Business {
		t.Fatal("message not a business op")
	}
	// Count kernel lock sections: one per kernel path (1 receive +
	// UsersPerRoom-1 sends).
	kernelSections := 0
	var kernInstr, userInstr uint64
	for _, it := range op.Items {
		switch it.Kind {
		case trace.KindLockAcq:
			kernelSections++
		case trace.KindInstr:
			if layout.Component(it.Comp).Kernel {
				kernInstr += uint64(it.N)
			} else {
				userInstr += uint64(it.N)
			}
		}
	}
	if kernelSections != 20 { // 1 recv + 19 sends
		t.Fatalf("kernel sections = %d, want 20", kernelSections)
	}
	if kernInstr < 3*userInstr {
		t.Fatalf("kernel instructions (%d) do not dominate user (%d): not VolanoMark-like",
			kernInstr, userInstr)
	}
	if w.Messages != 19 {
		t.Fatalf("delivered messages = %d", w.Messages)
	}
}

func TestBoundedSource(t *testing.T) {
	w, _ := build(t)
	src := w.Source(3, 4)
	n := 0
	for src.NextOp(3, 0) != nil {
		n++
	}
	if n != 4 {
		t.Fatalf("bounded source yielded %d", n)
	}
}

func TestRoomSharedAcrossConnections(t *testing.T) {
	w, _ := build(t)
	// Two connections in the same room read the same member-list lines.
	a := w.Source(0, -1)
	b := w.Source(1, -1)
	lines := func(op *trace.Op) map[uint64]bool {
		out := map[uint64]bool{}
		for _, it := range op.Items {
			if it.Kind == trace.KindRead {
				out[mem.Line(it.Addr)] = true
			}
		}
		return out
	}
	la, lb := lines(a.NextOp(0, 0)), lines(b.NextOp(1, 0))
	shared := 0
	for l := range la {
		if lb[l] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("same-room connections share no read lines")
	}
	// Different rooms do not share the member list.
	c := w.Source(25, -1) // room 1
	lc := lines(c.NextOp(25, 0))
	roomShared := 0
	for l := range la {
		if lc[l] {
			roomShared++
		}
	}
	if roomShared > shared {
		t.Fatal("cross-room sharing exceeds in-room sharing")
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() uint64 {
		w, _ := build(t)
		src := w.Source(0, -1)
		var n uint64
		for i := 0; i < 50; i++ {
			n += src.NextOp(0, uint64(i)).Instructions()
		}
		return n
	}
	if mk() != mk() {
		t.Fatal("volano stream not deterministic")
	}
}
