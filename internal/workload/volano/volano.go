// Package volano models a VolanoMark-like chat server, the related-work
// comparison point of the paper's §6:
//
//	"VolanoMark behaves quite differently than ECperf or SPECjbb because
//	 of the high number of threads it creates. In VolanoMark, the server
//	 creates a new thread for each client connection. The application
//	 server that we have used, in contrast, shares threads between client
//	 connections. As a result, the middle tier of the ECperf benchmark
//	 spends much less time in the kernel than VolanoMark. SPECjbb also has
//	 a much lower kernel component than VolanoMark."
//
// The model is VolanoMark's loopback chat benchmark: rooms of connected
// users; every message a user sends is broadcast by the server to every
// other user in the room, each delivery a separate kernel send. One server
// thread per connection, exactly the design the paper contrasts with
// thread pooling. Nearly all of the per-message work is kernel networking,
// which is what makes its kernel component dwarf the middleware
// benchmarks'.
package volano

import (
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/netsim"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Config sizes the chat benchmark.
type Config struct {
	// Rooms and UsersPerRoom shape the fan-out (VolanoMark's default room
	// size is 20: one inbound message causes 19 outbound deliveries).
	Rooms        int
	UsersPerRoom int
	// MessageBytes is the chat message size.
	MessageBytes uint32
	// ProcInstr is the user-mode work per message (parsing, room lookup,
	// history append) — deliberately small; this benchmark is all kernel.
	ProcInstr uint32
	// ThinkCycles is the client pacing between a connection's messages.
	ThinkCycles uint32
	// HistoryBytes is the per-message allocation (message object + history
	// entry).
	HistoryBytes uint32
}

// DefaultConfig returns the VolanoMark-flavored setup.
func DefaultConfig() Config {
	return Config{
		Rooms:        4,
		UsersPerRoom: 20,
		MessageBytes: 256,
		ProcInstr:    9_000,
		ThinkCycles:  400_000,
		HistoryBytes: 512,
	}
}

// Components are the code components the chat server executes.
type Components struct {
	App *ifetch.Component // the chat server + JVM
}

// Workload is one simulated chat server.
type Workload struct {
	cfg   Config
	comps Components
	heap  *jvm.Heap
	ns    *netsim.NetStack
	rng   *simrand.Rand

	// rooms[i] is the member list object for room i (read on every
	// broadcast — shared across all of the room's connection threads).
	rooms []jvm.ObjectID
	// Messages counts delivered messages (the VolanoMark score unit).
	Messages uint64
}

// New builds the rooms. Construction traffic is discarded, as for the
// other workloads.
func New(cfg Config, heap *jvm.Heap, comps Components, ns *netsim.NetStack, rng *simrand.Rand) *Workload {
	rec := trace.NewRecorder("volano-build", false)
	w := &Workload{cfg: cfg, comps: comps, heap: heap, ns: ns, rng: rng}
	for i := 0; i < cfg.Rooms; i++ {
		room := heap.AllocPermanent(rec, uint32(8*cfg.UsersPerRoom+jvm.HeaderBytes), 0)
		w.rooms = append(w.rooms, room)
	}
	return w
}

// Connections returns the total connection (= server thread) count.
func (w *Workload) Connections() int { return w.cfg.Rooms * w.cfg.UsersPerRoom }

// connSource drives one connection's server thread.
type connSource struct {
	w         *Workload
	room      int
	rng       *simrand.Rand
	remaining int
	// rec is the connection's reusable recorder: the engine consumes each
	// op fully before asking for the next.
	rec *trace.Recorder
}

// Source returns the OpSource for connection i (thread-per-connection:
// every connection gets its own). maxOps bounds the message count (<0
// unlimited).
func (w *Workload) Source(i int, maxOps int) osmodel.OpSource {
	return &connSource{
		w:         w,
		room:      i / w.cfg.UsersPerRoom,
		rng:       w.rng.Derive(uint64(i)),
		remaining: maxOps,
		rec:       trace.NewRecorder("", false),
	}
}

// NextOp records one inbound chat message and its room-wide broadcast.
func (s *connSource) NextOp(tid int, now uint64) *trace.Op {
	if s.remaining == 0 {
		return nil
	}
	if s.remaining > 0 {
		s.remaining--
	}
	w, cfg := s.w, s.w.cfg
	rec := s.rec
	rec.Reset("message", true)

	// Client pacing, then the inbound message arrives.
	rec.Think(cfg.ThinkCycles + uint32(s.rng.Intn(int(cfg.ThinkCycles/2)+1)))
	w.ns.ReceiveRequest(rec, cfg.MessageBytes)

	// Minimal user-mode work: parse, look up the room, append to history.
	rec.Instr(w.comps.App.ID, cfg.ProcInstr)
	w.heap.ReadObject(rec, w.rooms[s.room])
	w.heap.SetAllocSite(tid, "volano.history")
	w.heap.Alloc(rec, tid, cfg.HistoryBytes, 0)
	w.heap.SetAllocSite(tid, "")

	// Broadcast: one kernel send per other member of the room. This
	// fan-out is the whole story — ~95% of the path is kernel code.
	for m := 1; m < cfg.UsersPerRoom; m++ {
		w.ns.SendResponse(rec, cfg.MessageBytes)
	}
	w.Messages += uint64(cfg.UsersPerRoom - 1)

	w.heap.ClearStack(tid)
	return rec.Handoff()
}
