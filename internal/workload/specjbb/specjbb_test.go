package specjbb

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func build(t *testing.T, warehouses int) (*Workload, *jvm.Heap) {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	comps := Components{
		App: layout.Add("jbb-app", 192<<10, false, ifetch.DefaultProfile()),
		JVM: layout.Add("jvm", 128<<10, false, ifetch.DefaultProfile()),
	}
	hcfg := jvm.DefaultConfig()
	hcfg.HeapBytes = 96 << 20
	hcfg.NewGenBytes = 12 << 20
	heap := jvm.MustNewHeap(space, hcfg)
	w := New(DefaultConfig(warehouses), heap, comps, simrand.New(42))
	return w, heap
}

func TestBuildPromotesTrees(t *testing.T) {
	_, heap := build(t, 2)
	if heap.Stats.MinorGCs < 2 {
		t.Fatalf("MinorGCs = %d", heap.Stats.MinorGCs)
	}
	if heap.OldUsed() == 0 {
		t.Fatal("warehouse trees not promoted to old gen")
	}
}

// TestLiveMemoryScalesLinearly is the SPECjbb half of Figure 11: live heap
// after GC grows linearly with warehouse count.
func TestLiveMemoryScalesLinearly(t *testing.T) {
	liveAt := func(whs int) uint64 {
		w, heap := build(t, whs)
		// Run some transactions so order rings populate.
		src := w.Source(0, -1)
		for i := 0; i < 300; i++ {
			src.NextOp(0, uint64(i)*50_000)
		}
		gc := heap.MinorGC(nil)
		return gc.LiveBytes
	}
	l1, l4, l8 := liveAt(1), liveAt(4), liveAt(8)
	if l4 < 3*l1 || l4 > 6*l1 {
		t.Fatalf("live(4)=%d not ~4x live(1)=%d", l4, l1)
	}
	if l8 < int64Min(7*l1, 2*l4-l1) {
		t.Fatalf("live(8)=%d not linear vs live(1)=%d, live(4)=%d", l8, l1, l4)
	}
}

func int64Min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestTransactionMix(t *testing.T) {
	w, _ := build(t, 1)
	src := w.Source(0, -1)
	for i := 0; i < 4000; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		if op == nil {
			t.Fatal("unbounded source ended")
		}
		if !op.Business {
			t.Fatal("transaction not marked business")
		}
	}
	total := uint64(0)
	for _, n := range w.Txns {
		total += n
	}
	if total != 4000 {
		t.Fatalf("txn count = %d", total)
	}
	no := float64(w.Txns["neworder"]) / 4000
	pay := float64(w.Txns["payment"]) / 4000
	if no < 0.38 || no > 0.49 || pay < 0.38 || pay > 0.49 {
		t.Fatalf("mix off: neworder=%v payment=%v", no, pay)
	}
	for _, tag := range []string{"orderstatus", "delivery", "stocklevel"} {
		if w.Txns[tag] == 0 {
			t.Fatalf("no %s transactions in 4000", tag)
		}
	}
}

func TestMaxOpsBoundsSource(t *testing.T) {
	w, _ := build(t, 1)
	src := w.Source(0, 5)
	n := 0
	for src.NextOp(0, 0) != nil {
		n++
	}
	if n != 5 {
		t.Fatalf("bounded source yielded %d ops", n)
	}
}

func TestOpsCarryWork(t *testing.T) {
	w, _ := build(t, 1)
	src := w.Source(0, -1)
	var instr uint64
	var reads, writes, locks int
	for i := 0; i < 200; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		instr += op.Instructions()
		for _, it := range op.Items {
			switch it.Kind {
			case trace.KindRead:
				reads++
			case trace.KindWrite:
				writes++
			case trace.KindLockAcq:
				locks++
			}
		}
	}
	if instr < 200*3000 {
		t.Fatalf("instructions too low: %d", instr)
	}
	if reads < 500 || writes < 500 {
		t.Fatalf("data refs too low: r=%d w=%d", reads, writes)
	}
	if locks == 0 {
		t.Fatal("no lock acquisitions recorded")
	}
}

func TestNoNetworkCalls(t *testing.T) {
	// SPECjbb runs all three tiers in one JVM: no kernel networking at all
	// (that is why its system time is ~zero in Figure 5).
	w, _ := build(t, 1)
	src := w.Source(0, -1)
	for i := 0; i < 500; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		for _, it := range op.Items {
			if it.Kind == trace.KindNetCall {
				t.Fatal("SPECjbb op contains a network call")
			}
		}
	}
}

func TestGCTriggersDuringRun(t *testing.T) {
	w, heap := build(t, 2)
	src := w.Source(0, -1)
	before := heap.Stats.MinorGCs
	sawPause := false
	for i := 0; i < 30000 && !sawPause; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		for _, it := range op.Items {
			if it.Kind == trace.KindGCPause {
				sawPause = true
			}
		}
	}
	if !sawPause || heap.Stats.MinorGCs == before {
		t.Fatal("sustained allocation never triggered a recorded GC")
	}
}

func TestLiveMemoryStabilizes(t *testing.T) {
	// Order rings cap the emulated database: live memory must plateau, not
	// grow without bound, at fixed warehouse count.
	w, heap := build(t, 2)
	srcs := []struct {
		s interface{ NextOp(int, uint64) *trace.Op }
	}{
		{w.Source(0, -1)}, {w.Source(1, -1)},
	}
	measure := func(rounds int) uint64 {
		for i := 0; i < rounds; i++ {
			for j, s := range srcs {
				s.s.NextOp(j, uint64(i)*20_000)
			}
		}
		return heap.MinorGC(nil).LiveBytes
	}
	early := measure(1500)
	late := measure(1500)
	if late > early+early/4 {
		t.Fatalf("live memory still growing at fixed scale: %d -> %d", early, late)
	}
}

func TestDeterministicOps(t *testing.T) {
	mk := func() []string {
		w, _ := build(t, 1)
		src := w.Source(0, -1)
		var tags []string
		for i := 0; i < 100; i++ {
			tags = append(tags, src.NextOp(0, uint64(i)).Tag)
		}
		return tags
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op streams diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestDeliveryDrainsRings(t *testing.T) {
	w, _ := build(t, 1)
	src := w.Source(0, -1).(*threadSource)
	// Fill rings with orders.
	for i := 0; i < 600; i++ {
		src.NextOp(0, uint64(i)*10_000)
	}
	total := 0
	for _, d := range src.wh.districts {
		total += d.count
	}
	if total == 0 {
		t.Fatal("no orders in rings after 600 transactions")
	}
	// Rings stay bounded by capacity.
	for _, d := range src.wh.districts {
		if d.count > w.cfg.OrdersPerDistrict {
			t.Fatalf("ring overflow: %d > %d", d.count, w.cfg.OrdersPerDistrict)
		}
	}
}

func TestLockBalance(t *testing.T) {
	w, _ := build(t, 2)
	src := w.Source(0, -1)
	var acq, rel int
	for i := 0; i < 500; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		for _, it := range op.Items {
			switch it.Kind {
			case trace.KindLockAcq:
				acq++
			case trace.KindLockRel:
				rel++
			}
		}
	}
	if acq == 0 || acq != rel {
		t.Fatalf("unbalanced locks: %d acquires, %d releases", acq, rel)
	}
}

func TestCompanyStatsSharedAcrossWarehouses(t *testing.T) {
	// Both threads must touch the same company lines — the cross-warehouse
	// communication the paper attributes SPECjbb's hot lines to.
	w, _ := build(t, 2)
	collect := func(whID int) map[uint64]bool {
		src := w.Source(whID, -1)
		lines := map[uint64]bool{}
		for i := 0; i < 100; i++ {
			op := src.NextOp(whID, uint64(i)*10_000)
			for _, it := range op.Items {
				if it.Kind == trace.KindWrite && it.N == 8 {
					lines[it.Addr&^63] = true
				}
			}
		}
		return lines
	}
	a, b := collect(0), collect(1)
	shared := 0
	for l := range a {
		if b[l] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("warehouse threads share no written lines")
	}
}
