// Package specjbb models the SPECjbb2000 benchmark: a wholesale company
// with a configurable number of warehouses, each owned by one worker
// thread, with the "database" emulated as trees of Java objects in the
// measured heap (§2.1 of the paper).
//
// That in-heap emulated database is the root of every behavioral difference
// the paper found between SPECjbb and ECperf:
//
//   - live heap memory grows linearly with warehouses (Figure 11),
//   - the data-cache miss rate rises with warehouse count (Figure 13),
//   - shared 1 MB L2s hurt instead of help (Figure 16),
//   - while cross-thread communication stays concentrated in a few hot
//     lock lines (Figure 14), because each thread updates only its own
//     warehouse's trees.
//
// The transaction mix follows TPC-C's flavor (SPECjbb was "inspired by"
// TPC-C): NewOrder and Payment dominate, with OrderStatus, Delivery, and
// StockLevel filling the remainder.
package specjbb

import (
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Config sizes the workload. Byte sizes are scaled-down versions of the
// real benchmark (the paper's ~13 MB/warehouse becomes ~0.8 MB/warehouse by
// default) preserving the linear-growth property that matters.
type Config struct {
	Warehouses int

	Districts         int // districts per warehouse
	Customers         int // customers per warehouse
	Items             int // stock items per warehouse
	OrdersPerDistrict int // order ring capacity per district

	CustomerBytes  uint32
	ItemBytes      uint32
	OrderBytes     uint32
	OrderLineBytes uint32
	HistoryBytes   uint32

	OrderLinesMin, OrderLinesMax int

	// GarbagePerTxn is extra short-lived allocation per transaction
	// (strings, iterators, BigDecimal temporaries).
	GarbagePerTxn uint32

	// IndexBytes sizes each warehouse's B-tree index nodes; IndexDepth is
	// the number of index lines touched per key lookup. SPECjbb stores its
	// emulated database in trees of Java objects (§2.1); these walks are
	// the tree traversals.
	IndexBytes uint32
	IndexDepth int

	// Path lengths per transaction type, in instructions of the benchmark
	// component.
	NewOrderInstr    uint32
	PaymentInstr     uint32
	OrderStatusInstr uint32
	DeliveryInstr    uint32
	StockLevelInstr  uint32
	PerLineInstr     uint32 // extra per order line processed

	// ZipfSkew shapes customer/item popularity.
	ZipfSkew float64
}

// DefaultConfig returns the scaled benchmark configuration.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:        warehouses,
		Districts:         10,
		Customers:         400,
		Items:             800,
		OrdersPerDistrict: 12,
		CustomerBytes:     160,
		ItemBytes:         224,
		OrderBytes:        96,
		OrderLineBytes:    64,
		HistoryBytes:      96,
		OrderLinesMin:     5,
		OrderLinesMax:     15,
		GarbagePerTxn:     384,
		IndexBytes:        64 << 10,
		IndexDepth:        8,
		NewOrderInstr:     26_000,
		PaymentInstr:      17_000,
		OrderStatusInstr:  14_000,
		DeliveryInstr:     20_000,
		StockLevelInstr:   23_000,
		PerLineInstr:      300,
		ZipfSkew:          0.35,
	}
}

// Components are the code components SPECjbb executes.
type Components struct {
	App *ifetch.Component // the benchmark + JVM interpreter/JIT code
	JVM *ifetch.Component // allocation/runtime slow paths
}

// warehouse is the Go-side index of one warehouse's object trees. All
// objects live in the simulated heap; this struct holds their IDs.
type warehouse struct {
	obj       jvm.ObjectID
	mon       *jvm.Monitor
	index     jvm.ObjectID // B-tree index node storage
	districts []*district
	customers []jvm.ObjectID
	items     []jvm.ObjectID
}

type district struct {
	obj       jvm.ObjectID
	orderRing jvm.ObjectID // ref-array object, capacity OrdersPerDistrict
	head      int          // next slot to overwrite
	count     int
}

// order bookkeeping is entirely in-heap: an order object references its
// customer and a line-array object referencing line objects.

// Workload is one SPECjbb instance bound to a heap.
type Workload struct {
	cfg   Config
	comps Components
	heap  *jvm.Heap

	companyMon *jvm.Monitor
	companyObj jvm.ObjectID
	statsObj   jvm.ObjectID // read-mostly company statistics block
	edenMon    *jvm.Monitor // JVM allocation slow-path lock
	warehouses []*warehouse

	rng *simrand.Rand

	// Txns counts completed transactions by type.
	Txns map[string]uint64
}

// New builds the company and its warehouse object trees in the heap. The
// construction's memory traffic is recorded into a throwaway recorder (the
// paper measures steady state, not ramp-up); the heap state it leaves
// behind is what matters. After building, the trees are aged into the old
// generation with two forced minor collections, as they would be minutes
// into a real run.
func New(cfg Config, heap *jvm.Heap, comps Components, rng *simrand.Rand) *Workload {
	w := &Workload{
		cfg:   cfg,
		comps: comps,
		heap:  heap,
		rng:   rng,
		Txns:  make(map[string]uint64),
	}
	rec := trace.NewRecorder("jbb-build", false)
	w.companyMon = heap.NewMonitor(rec)
	w.companyObj = heap.AllocPermanent(rec, 640, 0)
	w.statsObj = heap.AllocPermanent(rec, 12*64, 0)
	w.edenMon = heap.NewMonitor(rec)
	for i := 0; i < cfg.Warehouses; i++ {
		w.warehouses = append(w.warehouses, w.buildWarehouse(rec, i))
	}
	// Construction frames are done; unpin, then promote the long-lived
	// trees as they would be minutes into a real run.
	for i := 0; i < cfg.Warehouses; i++ {
		heap.ClearStack(i)
	}
	heap.MinorGC(nil)
	heap.MinorGC(nil)
	return w
}

func (w *Workload) buildWarehouse(rec *trace.Recorder, idx int) *warehouse {
	h := w.heap
	wh := &warehouse{mon: h.NewMonitor(rec)}
	h.SetAllocSite(idx, "jbb.warehouse")
	wh.obj = h.Alloc(rec, idx, 128, 3)
	h.AddRoot(wh.obj)
	h.SetAllocSite(idx, "jbb.index")
	wh.index = h.Alloc(rec, idx, w.cfg.IndexBytes, 0) // large: lands in old gen
	h.AddRoot(wh.index)

	h.SetAllocSite(idx, "jbb.customer")
	custArr := h.Alloc(rec, idx, uint32(8*w.cfg.Customers+jvm.HeaderBytes), w.cfg.Customers)
	h.SetRef(rec, wh.obj, 0, custArr)
	for c := 0; c < w.cfg.Customers; c++ {
		cust := h.Alloc(rec, idx, w.cfg.CustomerBytes, 0)
		h.SetRef(rec, custArr, c, cust)
		wh.customers = append(wh.customers, cust)
	}

	h.SetAllocSite(idx, "jbb.item")
	itemArr := h.Alloc(rec, idx, uint32(8*w.cfg.Items+jvm.HeaderBytes), w.cfg.Items)
	h.SetRef(rec, wh.obj, 1, itemArr)
	for s := 0; s < w.cfg.Items; s++ {
		item := h.Alloc(rec, idx, w.cfg.ItemBytes, 0)
		h.SetRef(rec, itemArr, s, item)
		wh.items = append(wh.items, item)
	}

	h.SetAllocSite(idx, "jbb.district")
	distArr := h.Alloc(rec, idx, uint32(8*w.cfg.Districts+jvm.HeaderBytes), w.cfg.Districts)
	h.SetRef(rec, wh.obj, 2, distArr)
	for d := 0; d < w.cfg.Districts; d++ {
		dobj := h.Alloc(rec, idx, 128, 1)
		ring := h.Alloc(rec, idx, uint32(8*w.cfg.OrdersPerDistrict+jvm.HeaderBytes), w.cfg.OrdersPerDistrict)
		h.SetRef(rec, dobj, 0, ring)
		h.SetRef(rec, distArr, d, dobj)
		wh.districts = append(wh.districts, &district{obj: dobj, orderRing: ring})
	}
	h.SetAllocSite(idx, "")
	return wh
}

// Heap returns the workload's heap (for memory-scaling measurements).
func (w *Workload) Heap() *jvm.Heap { return w.heap }

// threadSource generates transactions for one warehouse's thread.
type threadSource struct {
	w         *Workload
	wh        *warehouse
	whID      int
	rng       *simrand.Rand
	custZipf  *simrand.Zipf
	itemZipf  *simrand.Zipf
	remaining int // <0 = unlimited
	// rec is the thread's reusable recorder: the engine consumes each op
	// fully before asking for the next, so one recorder (and one Items
	// backing array) serves every transaction of the thread.
	rec *trace.Recorder
}

// Source returns the OpSource for warehouse whID's worker thread. maxOps
// bounds the transaction count (<0 for unlimited, the usual case — the
// engine's horizon ends the run).
func (w *Workload) Source(whID int, maxOps int) osmodel.OpSource {
	rng := w.rng.Derive(uint64(whID))
	return &threadSource{
		w:         w,
		wh:        w.warehouses[whID],
		whID:      whID,
		rng:       rng,
		custZipf:  simrand.NewZipf(rng, w.cfg.Customers, w.cfg.ZipfSkew),
		itemZipf:  simrand.NewZipf(rng, w.cfg.Items, w.cfg.ZipfSkew),
		remaining: maxOps,
		rec:       trace.NewRecorder("", false),
	}
}

// NextOp records one transaction drawn from the SPECjbb mix.
func (s *threadSource) NextOp(tid int, now uint64) *trace.Op {
	if s.remaining == 0 {
		return nil
	}
	if s.remaining > 0 {
		s.remaining--
	}
	u := s.rng.Float64()
	var op *trace.Op
	switch {
	case u < 0.435:
		op = s.newOrder(tid)
	case u < 0.865:
		op = s.payment(tid)
	case u < 0.910:
		op = s.orderStatus(tid)
	case u < 0.955:
		op = s.delivery(tid)
	default:
		op = s.stockLevel(tid)
	}
	// The operation's frame is gone: unpin its temporaries.
	s.w.heap.ClearStack(tid)
	return op
}

// companyTouch is the brief global critical section every transaction
// crosses (company-wide counters) — SPECjbb's hottest shared line.
func (s *threadSource) companyTouch(rec *trace.Recorder) {
	w := s.w
	w.companyMon.Lock(rec)
	// Company-wide counters and sequence numbers: several shared lines
	// updated under one monitor — SPECjbb's hottest communication. Field
	// indices are spaced so the three counters live on distinct lines.
	for f := 0; f < 64; f += 8 {
		w.heap.ReadField(rec, w.companyObj, f)
		w.heap.WriteField(rec, w.companyObj, f)
	}
	rec.Instr(w.comps.App.ID, 1000)
	w.companyMon.Unlock(rec)
	// Company-wide read-mostly statistics outside the lock: occasionally
	// updated, so a write by anyone invalidates every reader's copy and
	// the whole set re-fetches cache-to-cache.
	statsBase := w.heap.Addr(w.statsObj)
	for i := 0; i < 12; i++ {
		rec.Read(statsBase+uint64(i)*64, 8)
	}
	if s.rng.Bool(0.15) {
		rec.Write(statsBase+uint64(s.rng.Intn(12))*64, 8)
	}
}

// indexWalk records one B-tree key lookup: IndexDepth reads spread over
// the warehouse's index nodes.
func (s *threadSource) indexWalk(rec *trace.Recorder) {
	h := s.w.heap
	base := h.Addr(s.wh.index)
	lines := int64(s.w.cfg.IndexBytes / 64)
	for d := 0; d < s.w.cfg.IndexDepth; d++ {
		rec.Read(base+uint64(s.rng.Int63n(lines))*64, 8)
	}
	rec.Instr(s.w.comps.App.ID, uint32(40*s.w.cfg.IndexDepth))
}

// garbage allocates the transaction's short-lived temporaries. Roughly one
// in eight transactions takes the JVM's allocation slow path (TLAB refill)
// under the shared eden lock.
func (s *threadSource) garbage(rec *trace.Recorder, tid int) {
	w := s.w
	n := w.cfg.GarbagePerTxn
	if s.rng.Intn(3) == 0 {
		// TLAB refill: the eden top pointer is one global line bumped
		// under the allocator lock — classic JVM-internal contention.
		w.edenMon.Lock(rec)
		w.heap.ReadField(rec, w.companyObj, 70)
		w.heap.WriteField(rec, w.companyObj, 70)
		rec.Instr(w.comps.JVM.ID, 800)
		w.edenMon.Unlock(rec)
	}
	w.heap.SetAllocSite(tid, "jbb.garbage")
	for n > 0 {
		sz := uint32(64 + s.rng.Intn(192))
		if sz > n {
			sz = n
		}
		w.heap.Alloc(rec, tid, sz, 0)
		n -= sz
	}
	w.heap.SetAllocSite(tid, "")
	rec.Instr(w.comps.JVM.ID, w.cfg.GarbagePerTxn/8)
}

func (s *threadSource) newOrder(tid int) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("neworder", true)
	rec.Instr(w.comps.App.ID, w.cfg.NewOrderInstr/2)
	s.companyTouch(rec)

	s.wh.mon.Lock(rec)
	d := s.wh.districts[s.rng.Intn(len(s.wh.districts))]
	h.ReadField(rec, d.obj, 1)
	h.WriteField(rec, d.obj, 1) // next order id

	s.indexWalk(rec)
	cust := s.wh.customers[s.custZipf.Next()]
	h.ReadObject(rec, cust)

	nlines := w.cfg.OrderLinesMin + s.rng.Intn(w.cfg.OrderLinesMax-w.cfg.OrderLinesMin+1)
	h.SetAllocSite(tid, "jbb.orderline")
	lineArr := h.Alloc(rec, tid, uint32(8*nlines+jvm.HeaderBytes), nlines)
	for i := 0; i < nlines; i++ {
		s.indexWalk(rec)
		item := s.wh.items[s.itemZipf.Next()]
		h.ReadObject(rec, item)
		h.WriteField(rec, item, 2) // stock quantity
		line := h.Alloc(rec, tid, w.cfg.OrderLineBytes, 1)
		h.SetRef(rec, line, 0, item)
		h.SetRef(rec, lineArr, i, line)
		rec.Instr(w.comps.App.ID, w.cfg.PerLineInstr)
	}
	h.SetAllocSite(tid, "jbb.order")
	order := h.Alloc(rec, tid, w.cfg.OrderBytes, 2)
	h.SetRef(rec, order, 0, cust)
	h.SetRef(rec, order, 1, lineArr)

	// Ring-buffer the order into the district; the displaced order becomes
	// garbage (the emulated database's steady state).
	h.SetRef(rec, d.orderRing, d.head, order)
	d.head = (d.head + 1) % w.cfg.OrdersPerDistrict
	if d.count < w.cfg.OrdersPerDistrict {
		d.count++
	}
	s.wh.mon.Unlock(rec)

	rec.Instr(w.comps.App.ID, w.cfg.NewOrderInstr/2)
	s.garbage(rec, tid)
	w.Txns["neworder"]++
	return rec.Handoff()
}

func (s *threadSource) payment(tid int) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("payment", true)
	rec.Instr(w.comps.App.ID, w.cfg.PaymentInstr/2)
	s.companyTouch(rec)

	s.wh.mon.Lock(rec)
	h.ReadField(rec, s.wh.obj, 3)
	h.WriteField(rec, s.wh.obj, 3) // warehouse YTD
	d := s.wh.districts[s.rng.Intn(len(s.wh.districts))]
	h.ReadField(rec, d.obj, 2)
	h.WriteField(rec, d.obj, 2)
	s.indexWalk(rec)
	cust := s.wh.customers[s.custZipf.Next()]
	h.ReadObject(rec, cust)
	h.WriteField(rec, cust, 1) // balance
	h.SetAllocSite(tid, "jbb.history")
	h.Alloc(rec, tid, w.cfg.HistoryBytes, 1) // history record (short-lived)
	h.SetAllocSite(tid, "")
	s.wh.mon.Unlock(rec)

	rec.Instr(w.comps.App.ID, w.cfg.PaymentInstr/2)
	s.garbage(rec, tid)
	w.Txns["payment"]++
	return rec.Handoff()
}

func (s *threadSource) orderStatus(tid int) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("orderstatus", true)
	rec.Instr(w.comps.App.ID, w.cfg.OrderStatusInstr)

	s.indexWalk(rec)
	cust := s.wh.customers[s.custZipf.Next()]
	h.ReadObject(rec, cust)
	d := s.wh.districts[s.rng.Intn(len(s.wh.districts))]
	if d.count > 0 {
		slot := (d.head - 1 + w.cfg.OrdersPerDistrict) % w.cfg.OrdersPerDistrict
		order := h.GetRef(rec, d.orderRing, slot)
		if order != jvm.NilObject {
			h.ReadObject(rec, order)
			lineArr := h.GetRef(rec, order, 1)
			if lineArr != jvm.NilObject {
				for i := 0; i < h.NumRefs(lineArr); i++ {
					if line := h.GetRef(rec, lineArr, i); line != jvm.NilObject {
						h.ReadObject(rec, line)
					}
				}
			}
		}
	}
	s.garbage(rec, tid)
	w.Txns["orderstatus"]++
	return rec.Handoff()
}

func (s *threadSource) delivery(tid int) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("delivery", true)
	rec.Instr(w.comps.App.ID, w.cfg.DeliveryInstr)

	s.wh.mon.Lock(rec)
	for _, d := range s.wh.districts {
		if d.count == 0 {
			continue
		}
		oldest := (d.head - d.count + w.cfg.OrdersPerDistrict) % w.cfg.OrdersPerDistrict
		order := h.GetRef(rec, d.orderRing, oldest)
		if order != jvm.NilObject {
			cust := h.GetRef(rec, order, 0)
			if cust != jvm.NilObject {
				h.WriteField(rec, cust, 1) // balance update
			}
			h.SetRef(rec, d.orderRing, oldest, jvm.NilObject) // order becomes garbage
		}
		d.count--
	}
	s.wh.mon.Unlock(rec)
	s.garbage(rec, tid)
	w.Txns["delivery"]++
	return rec.Handoff()
}

func (s *threadSource) stockLevel(tid int) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("stocklevel", true)
	rec.Instr(w.comps.App.ID, w.cfg.StockLevelInstr)

	s.indexWalk(rec)
	s.indexWalk(rec)
	d := s.wh.districts[s.rng.Intn(len(s.wh.districts))]
	// Scan the district's recent orders and their items' stock levels.
	scan := d.count
	if scan > 10 {
		scan = 10
	}
	for k := 0; k < scan; k++ {
		slot := (d.head - 1 - k + 2*w.cfg.OrdersPerDistrict) % w.cfg.OrdersPerDistrict
		order := h.GetRef(rec, d.orderRing, slot)
		if order == jvm.NilObject {
			continue
		}
		lineArr := h.GetRef(rec, order, 1)
		if lineArr == jvm.NilObject {
			continue
		}
		for i := 0; i < h.NumRefs(lineArr); i++ {
			line := h.GetRef(rec, lineArr, i)
			if line == jvm.NilObject {
				continue
			}
			if item := h.GetRef(rec, line, 0); item != jvm.NilObject {
				h.ReadField(rec, item, 2)
			}
		}
	}
	s.garbage(rec, tid)
	w.Txns["stocklevel"]++
	return rec.Handoff()
}
