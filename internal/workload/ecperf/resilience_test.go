package ecperf

import (
	"strings"
	"testing"

	"repro/internal/appserver"
	"repro/internal/fault"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// resilient arms the workload with a resilient caller over the given fault
// schedule (nil = policy machinery only, no injected faults).
func resilient(t *testing.T, w *Workload, s *fault.Schedule) *appserver.Caller {
	t.Helper()
	var inj *fault.Injector
	if s != nil {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		inj = fault.NewInjector(s, simrand.New(7))
	}
	c, err := appserver.NewCaller(fault.DefaultPolicy(), inj, simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	w.EnableResilience(c)
	return c
}

// TestFailedOpsDemotedAndRetagged drives BBops through a database partition
// and checks that operations whose remote calls exhausted their retries are
// demoted from the business count and re-tagged "<tag>.fail".
func TestFailedOpsDemotedAndRetagged(t *testing.T) {
	w, _ := build(t, 10)
	c := resilient(t, w, &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Partition, At: 5_000_000, Duration: 60_000_000, Peer: PeerDatabase},
	}})
	src := w.Source(0, -1)
	now := uint64(0)
	var failTagged, failBusiness int
	for i := 0; i < 800; i++ {
		op := src.NextOp(0, now)
		if strings.HasSuffix(op.Tag, ".fail") {
			failTagged++
			if op.Business {
				failBusiness++
			}
		}
		now += 150_000
	}
	if w.FailedOps == 0 {
		t.Fatal("a 60M-cycle partition produced no failed operations")
	}
	if failTagged != int(w.FailedOps) {
		t.Fatalf("%d .fail-tagged ops vs FailedOps=%d", failTagged, w.FailedOps)
	}
	if failBusiness != 0 {
		t.Fatalf("%d failed ops still counted as business", failBusiness)
	}
	if c.Stats.Timeouts == 0 || c.Stats.Retries == 0 {
		t.Fatalf("partition produced no timeouts/retries: %+v", c.Stats)
	}
}

// TestBreakerAndSheddingUnderSustainedFault checks the protective layers
// engage during a long outage: the breaker opens (rejecting calls without
// touching the network) and admission control starts shedding requests at
// the door, recorded as cheap non-business "shed" ops.
func TestBreakerAndSheddingUnderSustainedFault(t *testing.T) {
	w, _ := build(t, 10)
	c := resilient(t, w, &fault.Schedule{Events: []fault.Event{
		{Kind: fault.NodeCrash, At: 1_000_000, Duration: 200_000_000, Peer: PeerDatabase},
	}})
	src := w.Source(0, -1)
	now := uint64(0)
	for i := 0; i < 1200; i++ {
		op := src.NextOp(0, now)
		if op.Tag == "shed" && op.Business {
			t.Fatal("shed op counted as business")
		}
		now += 150_000
	}
	if bs := c.BreakerStats(); bs.Opens == 0 || bs.Rejects == 0 {
		t.Fatalf("breaker never engaged during a 200M-cycle crash: %+v", bs)
	}
	if w.ShedOps == 0 {
		t.Fatal("admission control never shed during sustained failure")
	}
	if w.BBops["shed"] != w.ShedOps {
		t.Fatalf("shed accounting mismatch: BBops=%d ShedOps=%d", w.BBops["shed"], w.ShedOps)
	}
	// Recovery: after the window the breaker's half-open probe must let
	// traffic through again.
	if c.Stats.Successes == 0 {
		t.Fatal("no call ever succeeded (before or after the crash window)")
	}
}

// TestFaultedWorkloadDeterministic checks the same seed and schedule
// reproduce an identical faulted run: same tags, same counters.
func TestFaultedWorkloadDeterministic(t *testing.T) {
	run := func() ([]string, uint64, uint64, appserver.CallStats) {
		w, _ := build(t, 10)
		c := resilient(t, w, &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Partition, At: 3_000_000, Duration: 30_000_000, Peer: PeerDatabase},
			{Kind: fault.NodeCrash, At: 50_000_000, Duration: 20_000_000, Peer: PeerSupplier},
		}})
		src := w.Source(0, -1)
		var tags []string
		now := uint64(0)
		for i := 0; i < 600; i++ {
			tags = append(tags, src.NextOp(0, now).Tag)
			now += 150_000
		}
		return tags, w.FailedOps, w.ShedOps, c.Stats
	}
	aTags, aFail, aShed, aStats := run()
	bTags, bFail, bShed, bStats := run()
	if aFail != bFail || aShed != bShed || aStats != bStats {
		t.Fatalf("faulted run not deterministic: %d/%d/%+v vs %d/%d/%+v",
			aFail, aShed, aStats, bFail, bShed, bStats)
	}
	for i := range aTags {
		if aTags[i] != bTags[i] {
			t.Fatalf("op streams diverge at %d: %s vs %s", i, aTags[i], bTags[i])
		}
	}
}

// TestResilienceWithoutFaultsIsQuiet checks an armed caller with no
// schedule neither fails nor sheds anything: every call succeeds on the
// first attempt.
func TestResilienceWithoutFaultsIsQuiet(t *testing.T) {
	w, _ := build(t, 10)
	c := resilient(t, w, nil)
	src := w.Source(0, -1)
	for i := 0; i < 400; i++ {
		op := src.NextOp(0, uint64(i)*150_000)
		if !op.Business {
			t.Fatalf("non-business op %q without any faults", op.Tag)
		}
	}
	if w.FailedOps != 0 || w.ShedOps != 0 {
		t.Fatalf("quiet run failed %d / shed %d ops", w.FailedOps, w.ShedOps)
	}
	if c.Stats.Retries != 0 || c.Stats.Timeouts != 0 || c.Stats.FastFails != 0 {
		t.Fatalf("quiet run recorded fault activity: %+v", c.Stats)
	}
	if c.Stats.Successes != c.Stats.Calls {
		t.Fatalf("not every call succeeded: %+v", c.Stats)
	}
}

// TestFailedOpsRecordThinkDelays checks the failure path's cost is visible
// in the trace: a failed op carries Think items (timeout + backoff) that the
// playback engine will charge as real simulated latency.
func TestFailedOpsRecordThinkDelays(t *testing.T) {
	w, _ := build(t, 10)
	resilient(t, w, &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Partition, At: 1_000_000, Duration: 80_000_000, Peer: PeerDatabase},
	}})
	src := w.Source(0, -1)
	now := uint64(0)
	for i := 0; i < 600; i++ {
		op := src.NextOp(0, now)
		if strings.HasSuffix(op.Tag, ".fail") {
			var think uint64
			for _, it := range op.Items {
				if it.Kind == trace.KindThink {
					think += uint64(it.N)
				}
			}
			pol := fault.DefaultPolicy()
			if think < uint64(pol.TimeoutCycles) {
				t.Fatalf("failed op records only %d think cycles (< one timeout %d)",
					think, pol.TimeoutCycles)
			}
			return
		}
		now += 150_000
	}
	t.Fatal("no failed op observed in 600 BBops under an 80M-cycle partition")
}
