// Package ecperf models the ECperf benchmark (later SPECjAppServer2001) as
// deployed in the paper: a commercial application server in the middle
// tier — the measured machine — with the database, the supplier emulator,
// and the driver on separate machines reached over 100-Mbit Ethernet
// (Figure 3).
//
// Only the application server's memory behavior enters the measured
// hierarchy; the remote tiers are queueing/timing models (internal/db),
// exactly mirroring how the paper filtered the app server's processors out
// of its Simics traces.
//
// The four ECperf domains are represented by their middle-tier behavior:
//
//   - Customer domain: OLTP-like order entry/change/status BBops against
//     entity beans hydrated from the database through the connection pool
//     and kept in the server's object-level cache.
//   - Manufacturing domain: the Just-In-Time work-order cycle; in-flight
//     work orders are live middle-tier state whose population grows with
//     the injection rate until the server's concurrency bounds it — the
//     knee in Figure 11's flat ECperf curve.
//   - Supplier domain: purchase orders exchanged with the supplier
//     emulator as XML documents (allocation-heavy parse/format).
//   - Corporate domain: read-mostly reference data with very hot keys.
package ecperf

import (
	"repro/internal/appserver"
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/netsim"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Peer machine indices on the simulated Ethernet.
const (
	PeerDatabase uint8 = 1
	PeerSupplier uint8 = 2
)

// Entity-key domains (high bits of cache keys).
const (
	domCustomer uint64 = iota + 1
	domItem
	domOrder
	domCorporate
)

// Config sizes the workload.
type Config struct {
	// OIR is the Orders Injection Rate, ECperf's scale factor.
	OIR int
	// Workers is the app server's execution-queue thread pool size.
	Workers int
	// Connections is the database connection pool size.
	Connections int

	// CacheEntries / CacheTTLCycles size the object-level cache.
	CacheEntries   int
	CacheTTLCycles uint64

	// Entity key-space sizes (middle-tier view; the database itself is
	// remote and scales with OIR without affecting this machine).
	Customers int
	Items     int
	Orders    int
	Corporate int

	BeanBytes    uint32
	SessionBytes uint32 // per-request presentation garbage
	XMLBytes     uint32 // purchase-order document size

	// MetaBytes sizes the server's runtime metadata (session tables, JNDI
	// registry, class/bean metadata); MetaReads is how many metadata lines
	// each request phase walks. This is the bulk of a commercial app
	// server's data working set.
	MetaBytes uint32
	MetaReads int

	// WorkOrderBytes and the in-flight shape drive Figure 11's knee.
	WorkOrderBytes uint32
	InflightPerOIR int
	InflightCap    int

	// Path lengths (instructions) by component.
	ServletInstr   uint32
	BeanInstr      uint32
	PerEntityInstr uint32
	XMLInstr       uint32
	CommitInstr    uint32

	// DB message sizes.
	QueryReqBytes, QueryRespBytes   uint32
	UpdateReqBytes, UpdateRespBytes uint32

	ZipfSkew float64
}

// DefaultConfig returns the tuned configuration for the given injection
// rate and processor count (the paper tuned pools per processor count,
// §3.2).
func DefaultConfig(oir, processors int) Config {
	return Config{
		OIR:            oir,
		Workers:        10*processors + 8,
		Connections:    6*processors + 4,
		CacheEntries:   8192,
		CacheTTLCycles: 1_500_000,
		Customers:      1500,
		Items:          1000,
		Orders:         2000,
		Corporate:      200,
		BeanBytes:      288,
		SessionBytes:   1024,
		XMLBytes:       2048,
		MetaBytes:      256 << 10,
		MetaReads:      110,
		WorkOrderBytes: 2048,
		InflightPerOIR: 40,
		InflightCap:    240,
		ServletInstr:   9_000,
		BeanInstr:      10_000,
		PerEntityInstr: 6_000,
		XMLInstr:       9_000,
		CommitInstr:    2_500,
		QueryReqBytes:  300, QueryRespBytes: 1400,
		UpdateReqBytes: 700, UpdateRespBytes: 200,
		ZipfSkew: 1.0,
	}
}

// Components are the middle tier's code components. The large aggregate
// footprint (servlet container + EJB runtime + server infrastructure) is
// what gives ECperf its Figure 12 instruction-miss signature.
type Components struct {
	Servlet *ifetch.Component
	EJB     *ifetch.Component
	Server  *ifetch.Component
	JVM     *ifetch.Component
}

// Workload is one middle-tier instance.
type Workload struct {
	cfg   Config
	comps Components
	heap  *jvm.Heap
	ns    *netsim.NetStack

	cache *appserver.ObjectCache
	pool  *appserver.ConnPool
	disp  *appserver.Dispatcher
	meta  jvm.ObjectID // server runtime metadata (large, permanent)

	// In-flight manufacturing work orders, rooted while open.
	inflight     []jvm.ObjectID
	inflightHead int
	inflightMax  int

	rng *simrand.Rand

	// caller, when non-nil, is the resilient remote-call path: remote
	// round trips go through timeouts/retries/breakers, and requests may
	// be shed at the door (EnableResilience).
	caller *appserver.Caller

	// BBops counts completed operations by type; failed operations count
	// under "<tag>.fail" and are excluded from throughput.
	BBops map[string]uint64
	// FailedOps counts operations that took their error path (a remote
	// call exhausted its retries); ShedOps counts requests rejected by
	// admission control before any work.
	FailedOps uint64
	ShedOps   uint64
	// DBCalls counts database round trips (path-length diagnostics).
	DBCalls uint64
}

// New wires the middle tier together. Construction traffic is discarded;
// the heap state remains.
func New(cfg Config, heap *jvm.Heap, comps Components, ns *netsim.NetStack, rng *simrand.Rand) *Workload {
	rec := trace.NewRecorder("ecperf-build", false)
	max := cfg.OIR * cfg.InflightPerOIR
	if max > cfg.InflightCap {
		max = cfg.InflightCap
	}
	if max < 1 {
		max = 1
	}
	w := &Workload{
		cfg:         cfg,
		comps:       comps,
		heap:        heap,
		ns:          ns,
		cache:       appserver.NewObjectCache(heap, rec, appserver.CacheConfig{Entries: cfg.CacheEntries, TTLCycles: cfg.CacheTTLCycles}),
		pool:        appserver.NewConnPool(heap, rec, cfg.Connections),
		disp:        appserver.NewDispatcher(heap, rec),
		inflightMax: max,
		rng:         rng,
		BBops:       make(map[string]uint64),
	}
	w.meta = heap.AllocPermanent(rec, cfg.MetaBytes, 0)
	heap.MinorGC(nil)
	return w
}

// EnableResilience routes every remote call through the given resilient
// caller. Call it before creating worker sources.
func (w *Workload) EnableResilience(c *appserver.Caller) { w.caller = c }

// Caller returns the resilient call path, or nil when disabled.
func (w *Workload) Caller() *appserver.Caller { return w.caller }

// Heap returns the middle tier's heap.
func (w *Workload) Heap() *jvm.Heap { return w.heap }

// Cache returns the object-level cache (for hit-rate diagnostics).
func (w *Workload) Cache() *appserver.ObjectCache { return w.cache }

// workerSource drives one thread-pool worker in a closed loop at
// saturation (the paper relaxed response-time limits and drove maximum
// throughput, §2.2).
type workerSource struct {
	w         *Workload
	rng       *simrand.Rand
	custZipf  *simrand.Zipf
	itemZipf  *simrand.Zipf
	ordZipf   *simrand.Zipf
	corpZipf  *simrand.Zipf
	remaining int

	// Per-operation resilience state: tnow is the record-time clock (the
	// dispatch time plus delays recorded so far, so breaker and fault
	// windows see call times close to playback times); failed is set when
	// any remote call in the operation exhausted its retries.
	tnow   uint64
	failed bool

	// rec is the worker's reusable recorder: the engine consumes each op
	// fully before asking for the next, so one recorder (and one Items
	// backing array) serves every BBop of the thread.
	rec *trace.Recorder
}

// Source returns the OpSource for worker i. maxOps bounds the operation
// count (<0 for unlimited).
func (w *Workload) Source(i int, maxOps int) osmodel.OpSource {
	rng := w.rng.Derive(uint64(i))
	return &workerSource{
		w:         w,
		rng:       rng,
		custZipf:  simrand.NewZipf(rng, w.cfg.Customers, w.cfg.ZipfSkew),
		itemZipf:  simrand.NewZipf(rng, w.cfg.Items, w.cfg.ZipfSkew),
		ordZipf:   simrand.NewZipf(rng, w.cfg.Orders, w.cfg.ZipfSkew),
		corpZipf:  simrand.NewZipf(rng, w.cfg.Corporate, 1.1),
		remaining: maxOps,
		rec:       trace.NewRecorder("", false),
	}
}

// NextOp records one BBop from the ECperf mix.
func (s *workerSource) NextOp(tid int, now uint64) *trace.Op {
	if s.remaining == 0 {
		return nil
	}
	if s.remaining > 0 {
		s.remaining--
	}
	s.tnow = now
	s.failed = false
	// Admission control sheds at the door: the request is answered with a
	// cheap rejection before any business logic or remote call runs.
	if !s.w.caller.Admit(now) {
		return s.shedOp(now)
	}
	u := s.rng.Float64()
	var op *trace.Op
	switch {
	case u < 0.30:
		op = s.newOrder(tid, now)
	case u < 0.45:
		op = s.changeOrder(tid, now)
	case u < 0.60:
		op = s.orderStatus(tid, now)
	case u < 0.70:
		op = s.customerStatus(tid, now)
	case u < 0.90:
		op = s.workOrder(tid, now)
	default:
		op = s.purchase(tid, now)
	}
	// The request's frame is gone: unpin its temporaries.
	s.w.heap.ClearStack(tid)
	return op
}

// shedOp records the cheap-rejection path of a shed request: kernel
// receive, a short error response, no business logic. Not a business op.
func (s *workerSource) shedOp(now uint64) *trace.Op {
	w := s.w
	rec := s.rec
	rec.Reset("shed", false)
	w.ns.ReceiveRequest(rec, 512)
	rec.Instr(w.comps.Server.ID, w.cfg.ServletInstr/6)
	w.ns.SendResponse(rec, 256)
	w.ShedOps++
	w.BBops["shed"]++
	return rec.Handoff()
}

// call routes one remote round trip through the resilient caller when
// resilience is enabled (plain network call otherwise). On failure it
// marks the operation failed and reports false.
func (s *workerSource) call(rec *trace.Recorder, peer uint8, reqBytes, respBytes uint32) bool {
	w := s.w
	if w.caller == nil {
		w.ns.Call(rec, peer, reqBytes, respBytes)
		return true
	}
	ok, delay := w.caller.Call(rec, w.ns, peer, reqBytes, respBytes, s.tnow)
	s.tnow += delay
	if !ok {
		s.failed = true
	}
	return ok
}

// read guards an object read against the nil object a failed entity load
// returns.
func (s *workerSource) read(rec *trace.Recorder, obj jvm.ObjectID) {
	if obj != jvm.NilObject {
		s.w.heap.ReadObject(rec, obj)
	}
}

// finish closes an operation: a failed one is demoted from the throughput
// count and re-tagged "<tag>.fail" so its (shorter) latency reports
// separately.
func (s *workerSource) finish(rec *trace.Recorder, tag string) *trace.Op {
	w := s.w
	if s.failed {
		rec.SetBusiness(false)
		rec.SetTag(tag + ".fail")
		w.FailedOps++
		w.BBops[tag+".fail"]++
	} else {
		w.BBops[tag]++
	}
	return rec.Handoff()
}

// entity resolves one entity bean: object-cache hit, or a database load
// through the connection pool. The hit path is dramatically shorter —
// §4.4's constructive interference.
func (s *workerSource) entity(rec *trace.Recorder, tid int, dom uint64, key int, now uint64) jvm.ObjectID {
	w := s.w
	k := dom<<32 | uint64(key)
	if obj, ok := w.cache.Get(rec, k, now); ok {
		rec.Instr(w.comps.EJB.ID, w.cfg.PerEntityInstr/8)
		s.metaWalk(rec, 4) // descriptor + interceptor lookups
		return obj
	}
	s.metaWalk(rec, 16) // ORM mapping metadata for the load path
	conn := w.pool.Acquire(rec)
	ok := s.call(rec, PeerDatabase, w.cfg.QueryReqBytes, w.cfg.QueryRespBytes)
	w.pool.Release(rec, conn)
	w.DBCalls++
	if !ok {
		// Load failed: nothing to hydrate or cache; the operation takes
		// its error path with a nil entity.
		return jvm.NilObject
	}
	w.heap.SetAllocSite(tid, "ec.bean")
	obj := w.heap.Alloc(rec, tid, w.cfg.BeanBytes, 0)
	w.heap.SetAllocSite(tid, "")
	rec.Instr(w.comps.EJB.ID, w.cfg.PerEntityInstr) // ORM hydration
	w.cache.Put(rec, k, obj, now)
	return obj
}

// commit writes a transaction back to the database.
func (s *workerSource) commit(rec *trace.Recorder, tid int) {
	w := s.w
	conn := w.pool.Acquire(rec)
	ok := s.call(rec, PeerDatabase, w.cfg.UpdateReqBytes, w.cfg.UpdateRespBytes)
	w.pool.Release(rec, conn)
	w.DBCalls++
	if ok {
		rec.Instr(w.comps.Server.ID, w.cfg.CommitInstr)
	}
}

// metaWalk records n reads over the server's runtime metadata with a
// skewed (hot-table) distribution: hash buckets, descriptors, interceptor
// chains. These walks are what give the middle tier its L1-data miss rate.
func (s *workerSource) metaWalk(rec *trace.Recorder, n int) {
	h := s.w.heap
	base := h.Addr(s.w.meta)
	lines := int64(s.w.cfg.MetaBytes / 64)
	for i := 0; i < n; i++ {
		off := s.rng.Int63n(lines)
		if s.rng.Bool(0.62) {
			off %= lines / 12 // hot slice of the tables
		}
		rec.Read(base+uint64(off)*64, 8)
	}
}

// begin records the common request front half: kernel receive, dispatch,
// servlet presentation layer with its session garbage.
func (s *workerSource) begin(rec *trace.Recorder, tid int) {
	w := s.w
	w.ns.ReceiveRequest(rec, 512)
	w.disp.Dispatch(rec)
	rec.Instr(w.comps.Server.ID, w.cfg.ServletInstr/3)
	s.metaWalk(rec, w.cfg.MetaReads)
	rec.Instr(w.comps.Servlet.ID, w.cfg.ServletInstr)
	s.metaWalk(rec, w.cfg.MetaReads/2)
	// Session/request temporaries.
	w.heap.SetAllocSite(tid, "ec.session")
	n := w.cfg.SessionBytes
	for n > 0 {
		sz := uint32(96 + s.rng.Intn(160))
		if sz > n {
			sz = n
		}
		w.heap.Alloc(rec, tid, sz, 0)
		n -= sz
	}
	w.heap.SetAllocSite(tid, "")
	rec.Instr(w.comps.JVM.ID, w.cfg.SessionBytes/8)
}

// end records the response half.
func (s *workerSource) end(rec *trace.Recorder) {
	w := s.w
	rec.Instr(w.comps.Servlet.ID, w.cfg.ServletInstr/2)
	s.metaWalk(rec, w.cfg.MetaReads/2)
	w.ns.SendResponse(rec, 1024)
}

func (s *workerSource) newOrder(tid int, now uint64) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("neworder", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr)

	cust := s.entity(rec, tid, domCustomer, s.custZipf.Next(), now)
	s.read(rec, cust)
	nitems := 2 + s.rng.Intn(4)
	for i := 0; i < nitems; i++ {
		item := s.entity(rec, tid, domItem, s.itemZipf.Next(), now)
		s.read(rec, item)
		rec.Instr(w.comps.EJB.ID, w.cfg.PerEntityInstr/4)
	}
	if !s.failed {
		// The new order bean: written through to the database; the local
		// copy enters the cache.
		h.SetAllocSite(tid, "ec.order")
		order := h.Alloc(rec, tid, w.cfg.BeanBytes, 0)
		h.SetAllocSite(tid, "")
		h.WriteField(rec, order, 1)
		w.cache.Put(rec, domOrder<<32|uint64(s.ordZipf.Next()), order, now)
		s.commit(rec, tid)
	}

	s.end(rec)
	return s.finish(rec, "neworder")
}

func (s *workerSource) changeOrder(tid int, now uint64) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("changeorder", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr)
	order := s.entity(rec, tid, domOrder, s.ordZipf.Next(), now)
	s.read(rec, order)
	if order != jvm.NilObject {
		h.WriteField(rec, order, 2)
	}
	cust := s.entity(rec, tid, domCustomer, s.custZipf.Next(), now)
	s.read(rec, cust)
	if !s.failed {
		s.commit(rec, tid)
	}
	s.end(rec)
	return s.finish(rec, "changeorder")
}

func (s *workerSource) orderStatus(tid int, now uint64) *trace.Op {
	w := s.w
	rec := s.rec
	rec.Reset("orderstatus", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr/2)
	order := s.entity(rec, tid, domOrder, s.ordZipf.Next(), now)
	s.read(rec, order)
	corp := s.entity(rec, tid, domCorporate, s.corpZipf.Next(), now)
	s.read(rec, corp)
	s.end(rec)
	return s.finish(rec, "orderstatus")
}

func (s *workerSource) customerStatus(tid int, now uint64) *trace.Op {
	w := s.w
	rec := s.rec
	rec.Reset("custstatus", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr/2)
	cust := s.entity(rec, tid, domCustomer, s.custZipf.Next(), now)
	s.read(rec, cust)
	norders := 1 + s.rng.Intn(3)
	for i := 0; i < norders; i++ {
		order := s.entity(rec, tid, domOrder, s.ordZipf.Next(), now)
		s.read(rec, order)
	}
	s.end(rec)
	return s.finish(rec, "custstatus")
}

// workOrder runs one step of the Just-In-Time manufacturing cycle: create
// a work order (live in the middle tier while open), consume parts, and
// complete the oldest open work order.
func (s *workerSource) workOrder(tid int, now uint64) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("workorder", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr)

	h.SetAllocSite(tid, "ec.workorder")
	wo := h.Alloc(rec, tid, w.cfg.WorkOrderBytes, 0)
	h.SetAllocSite(tid, "")
	h.AddRoot(wo)
	// Bill of materials.
	for i := 0; i < 3; i++ {
		item := s.entity(rec, tid, domItem, s.itemZipf.Next(), now)
		s.read(rec, item)
	}
	s.commit(rec, tid)

	if s.failed {
		// The work order never entered the schedule: roll it back rather
		// than leaving a phantom in the in-flight ring.
		h.RemoveRoot(wo)
		s.end(rec)
		return s.finish(rec, "workorder")
	}

	// Ring of open work orders: completing the oldest when full keeps the
	// in-flight population at inflightMax — the Figure 11 plateau.
	if len(w.inflight) < w.inflightMax {
		w.inflight = append(w.inflight, wo)
	} else {
		old := w.inflight[w.inflightHead]
		h.WriteField(rec, old, 1) // mark completed
		h.RemoveRoot(old)         // becomes garbage
		w.inflight[w.inflightHead] = wo
		w.inflightHead = (w.inflightHead + 1) % w.inflightMax
		s.commit(rec, tid)
	}

	s.end(rec)
	return s.finish(rec, "workorder")
}

// purchase sends a purchase order to the supplier emulator as an XML
// document and processes the XML response.
func (s *workerSource) purchase(tid int, now uint64) *trace.Op {
	w, h := s.w, s.w.heap
	rec := s.rec
	rec.Reset("purchase", true)
	s.begin(rec, tid)
	rec.Instr(w.comps.EJB.ID, w.cfg.BeanInstr/2)

	for i := 0; i < 2; i++ {
		item := s.entity(rec, tid, domItem, s.itemZipf.Next(), now)
		s.read(rec, item)
	}
	// Format the XML document (allocation-heavy), send it, parse the reply.
	h.SetAllocSite(tid, "ec.xml")
	doc := h.Alloc(rec, tid, w.cfg.XMLBytes, 0)
	h.SetAllocSite(tid, "")
	h.ReadObject(rec, doc)
	rec.Instr(w.comps.Servlet.ID, w.cfg.XMLInstr)
	if s.call(rec, PeerSupplier, w.cfg.XMLBytes, w.cfg.XMLBytes/2) {
		h.SetAllocSite(tid, "ec.xml")
		reply := h.Alloc(rec, tid, w.cfg.XMLBytes/2, 0)
		h.SetAllocSite(tid, "")
		h.ReadObject(rec, reply)
		rec.Instr(w.comps.Servlet.ID, w.cfg.XMLInstr/2)
		s.commit(rec, tid)
	}

	s.end(rec)
	return s.finish(rec, "purchase")
}
