package ecperf

import (
	"testing"

	"repro/internal/db"
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func build(t *testing.T, oir int) (*Workload, *jvm.Heap) {
	t.Helper()
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	comps := Components{
		Servlet: layout.Add("servlet", 256<<10, false, ifetch.DefaultProfile()),
		EJB:     layout.Add("ejb", 320<<10, false, ifetch.DefaultProfile()),
		Server:  layout.Add("appserver", 448<<10, false, ifetch.DefaultProfile()),
		JVM:     layout.Add("jvm", 192<<10, false, ifetch.DefaultProfile()),
	}
	kern := layout.Add("kernel-net", 320<<10, true, ifetch.DefaultProfile())
	rng := simrand.New(99)
	net := netsim.NewNetwork(netsim.DefaultLink())
	net.AddPeer(PeerDatabase, db.NewServer(db.DefaultDatabaseConfig(), rng.Derive(1)))
	net.AddPeer(PeerSupplier, db.NewServer(db.DefaultSupplierConfig(), rng.Derive(2)))
	ns := netsim.NewNetStack(space, kern, net, netsim.DefaultStackConfig(), rng.Derive(3))

	hcfg := jvm.DefaultConfig()
	hcfg.HeapBytes = 64 << 20
	hcfg.NewGenBytes = 10 << 20
	heap := jvm.MustNewHeap(space, hcfg)
	w := New(DefaultConfig(oir, 4), heap, comps, ns, rng.Derive(4))
	return w, heap
}

func TestMixCoversAllDomains(t *testing.T) {
	w, _ := build(t, 10)
	src := w.Source(0, -1)
	for i := 0; i < 3000; i++ {
		op := src.NextOp(0, uint64(i)*100_000)
		if op == nil || !op.Business {
			t.Fatal("source ended or op not business")
		}
	}
	for _, tag := range []string{"neworder", "changeorder", "orderstatus", "custstatus", "workorder", "purchase"} {
		if w.BBops[tag] == 0 {
			t.Fatalf("no %s BBops in 3000", tag)
		}
	}
}

func TestBBopsUseNetworkAndKernel(t *testing.T) {
	w, _ := build(t, 10)
	src := w.Source(0, -1)
	var netcalls, kernelLocks int
	for i := 0; i < 200; i++ {
		op := src.NextOp(0, uint64(i)*100_000)
		for _, it := range op.Items {
			switch it.Kind {
			case trace.KindNetCall:
				netcalls++
			case trace.KindLockAcq:
				if it.Aux == 1 {
					kernelLocks++
				}
			}
		}
	}
	if netcalls == 0 {
		t.Fatal("ECperf BBops never crossed tiers")
	}
	if kernelLocks == 0 {
		t.Fatal("no kernel lock sections recorded")
	}
}

// TestCacheHitRateRisesWithRate reproduces §4.4's mechanism end to end:
// the same worker issuing BBops at a higher rate sees a hotter entity
// cache, so the mean instruction count per BBop falls.
func TestCacheHitRateRisesWithRate(t *testing.T) {
	instrPerOp := func(gap uint64) float64 {
		w, _ := build(t, 10)
		src := w.Source(0, -1)
		// Warm.
		now := uint64(0)
		for i := 0; i < 400; i++ {
			src.NextOp(0, now)
			now += gap
		}
		var instr uint64
		for i := 0; i < 600; i++ {
			op := src.NextOp(0, now)
			instr += op.Instructions()
			now += gap
		}
		return float64(instr) / 600
	}
	slow := instrPerOp(20_000_000) // far beyond TTL: every entity reloads
	fast := instrPerOp(50_000)     // well inside TTL
	if fast >= slow*0.9 {
		t.Fatalf("path length did not shrink with rate: slow=%v fast=%v", slow, fast)
	}
}

// TestLiveMemoryPlateausWithOIR is ECperf's half of Figure 11: the middle
// tier's live memory rises with the injection rate only up to a knee, then
// stays flat (the database lives on another machine).
func TestLiveMemoryPlateausWithOIR(t *testing.T) {
	liveAt := func(oir int) uint64 {
		w, heap := build(t, oir)
		src := w.Source(0, -1)
		now := uint64(0)
		for i := 0; i < 3000; i++ {
			src.NextOp(0, now)
			now += 100_000
		}
		return heap.MinorGC(nil).LiveBytes
	}
	l1, l6, l40 := liveAt(1), liveAt(6), liveAt(40)
	if l6 <= l1 {
		t.Fatalf("live memory flat below the knee: l1=%d l6=%d", l1, l6)
	}
	// Past the knee: growth must be small (within 15%).
	if l40 > l6+l6/7 {
		t.Fatalf("live memory still growing past knee: l6=%d l40=%d", l6, l40)
	}
}

func TestWorkOrdersBounded(t *testing.T) {
	w, heap := build(t, 40)
	src := w.Source(0, -1)
	for i := 0; i < 3000; i++ {
		src.NextOp(0, uint64(i)*50_000)
	}
	if len(w.inflight) > w.inflightMax {
		t.Fatalf("inflight %d exceeds max %d", len(w.inflight), w.inflightMax)
	}
	// Completed work orders must actually die.
	heap.MinorGC(nil)
	heap.MajorGC(nil)
	live := heap.Stats.LiveAfterLastGC
	if live > 24<<20 {
		t.Fatalf("live bytes %d suggest work orders leak", live)
	}
}

func TestDBCallsCounted(t *testing.T) {
	w, _ := build(t, 10)
	src := w.Source(0, -1)
	for i := 0; i < 100; i++ {
		src.NextOp(0, 0) // time frozen: cache entries never expire within TTL
	}
	if w.DBCalls == 0 {
		t.Fatal("no database calls recorded")
	}
}

func TestDeterministicStream(t *testing.T) {
	mk := func() []string {
		w, _ := build(t, 10)
		src := w.Source(3, -1)
		var tags []string
		for i := 0; i < 100; i++ {
			tags = append(tags, src.NextOp(0, uint64(i)*10_000).Tag)
		}
		return tags
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestBoundedSource(t *testing.T) {
	w, _ := build(t, 5)
	src := w.Source(0, 7)
	n := 0
	for src.NextOp(0, 0) != nil {
		n++
	}
	if n != 7 {
		t.Fatalf("bounded source yielded %d", n)
	}
}

func TestTunedPoolsScaleWithProcessors(t *testing.T) {
	small := DefaultConfig(10, 1)
	big := DefaultConfig(10, 15)
	if big.Workers <= small.Workers || big.Connections <= small.Connections {
		t.Fatal("pool tuning does not scale with processors")
	}
}

func TestEntityCacheSharedAcrossWorkers(t *testing.T) {
	// A bean loaded by one worker must be a cache hit for another: the
	// §4.4 constructive-interference mechanism is cross-thread.
	w, _ := build(t, 10)
	a := w.Source(0, -1)
	b := w.Source(1, -1)
	for i := 0; i < 300; i++ {
		a.NextOp(0, uint64(i)*50_000)
	}
	hitsBefore := w.Cache().Hits
	for i := 0; i < 300; i++ {
		b.NextOp(1, uint64(300+i)*50_000)
	}
	if w.Cache().Hits <= hitsBefore {
		t.Fatal("second worker never hit entities loaded by the first")
	}
}

func TestPurchaseTalksToSupplier(t *testing.T) {
	w, _ := build(t, 10)
	src := w.Source(0, -1)
	supplierCalls := 0
	for i := 0; i < 400; i++ {
		op := src.NextOp(0, uint64(i)*10_000)
		for _, it := range op.Items {
			if it.Kind == trace.KindNetCall && it.Peer == PeerSupplier {
				supplierCalls++
			}
		}
	}
	if supplierCalls == 0 {
		t.Fatal("no supplier-emulator round trips in 400 BBops")
	}
	if w.BBops["purchase"] == 0 {
		t.Fatal("mix produced no purchase BBops")
	}
}

func TestSessionGarbageDies(t *testing.T) {
	w, heap := build(t, 10)
	src := w.Source(0, -1)
	for i := 0; i < 1500; i++ {
		src.NextOp(0, uint64(i)*50_000)
	}
	gc := heap.MinorGC(nil)
	// Live memory must be bounded by cache beans + work orders + slack —
	// far less than the cumulative session/XML allocation.
	if gc.LiveBytes > 16<<20 {
		t.Fatalf("live bytes %d: session garbage appears to leak", gc.LiveBytes)
	}
	if heap.Stats.AllocatedBytes < 4*gc.LiveBytes {
		t.Fatalf("allocation (%d) not ≫ live (%d): workload barely allocates",
			heap.Stats.AllocatedBytes, gc.LiveBytes)
	}
}

func TestConnectionsAcquireBalanced(t *testing.T) {
	w, _ := build(t, 10)
	src := w.Source(0, -1)
	var acq, rel int
	for i := 0; i < 200; i++ {
		op := src.NextOp(0, uint64(i)*1_000_000) // slow rate: mostly misses
		for _, it := range op.Items {
			switch it.Kind {
			case trace.KindSemAcq:
				acq++
			case trace.KindSemRel:
				rel++
			}
		}
	}
	if acq == 0 {
		t.Fatal("no connection acquisitions")
	}
	if acq != rel {
		t.Fatalf("unbalanced pool: %d acquires, %d releases", acq, rel)
	}
}
