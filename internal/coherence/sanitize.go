package coherence

import (
	"fmt"
	"os"

	"repro/internal/cache"
)

// Protocol invariant sanitizer. With Sanitize on, the bus re-checks the
// MOSI/MSI/MESI single-writer invariants over every node's copy of a block
// at the end of each transaction on that block, and panics with a full
// state dump on the first violation. The check is O(nodes) per transaction
// — far too slow for performance runs, exactly right for CI: the
// environment variable COHERENCE_SANITIZE=1 turns it on for every bus in
// the process, so the existing protocol and workload tests double as an
// invariant sweep without touching their code.

// sanitizeEnv caches the COHERENCE_SANITIZE environment switch.
var sanitizeEnv = os.Getenv("COHERENCE_SANITIZE") == "1"

// EnableSanitizer turns on per-transaction invariant checking.
func (b *Bus) EnableSanitizer() { b.Sanitize = true }

// sanitize validates the cross-cache invariants for block ba:
//
//   - at most one cache holds the block Modified or Exclusive, and then no
//     other cache holds any copy (single-writer / sole-clean-copy);
//   - at most one cache holds it Owned, and any other copies are Shared;
//   - dirty bits match states: M and O are dirty, S and E are clean;
//   - Exclusive and Owned appear only under the protocols that have them.
func (b *Bus) sanitize(ba uint64) {
	type copyInfo struct {
		node  int
		state cache.State
		dirty bool
	}
	var copies []copyInfo
	exclusive, owned := 0, 0
	var probed uint64
	probedOwner := -1
	for _, node := range b.nodes {
		l := node.l2.Probe(ba)
		if l == nil {
			continue
		}
		probed |= 1 << uint(node.id)
		if l.State == Modified || l.State == Owned || l.State == Exclusive {
			probedOwner = node.id
		}
		copies = append(copies, copyInfo{node.id, l.State, l.Dirty})
		switch l.State {
		case Modified:
			exclusive++
			if !l.Dirty {
				b.sanitizeFail(ba, copies, "Modified copy with clean dirty bit")
			}
		case Exclusive:
			exclusive++
			if b.Protocol != MESI {
				b.sanitizeFail(ba, copies, fmt.Sprintf("Exclusive state under %v", b.Protocol))
			}
			if l.Dirty {
				b.sanitizeFail(ba, copies, "Exclusive copy with dirty bit set")
			}
		case Owned:
			owned++
			if b.Protocol != MOSI {
				b.sanitizeFail(ba, copies, fmt.Sprintf("Owned state under %v", b.Protocol))
			}
			if !l.Dirty {
				b.sanitizeFail(ba, copies, "Owned copy with clean dirty bit")
			}
		case Shared:
			if l.Dirty {
				b.sanitizeFail(ba, copies, "Shared copy with dirty bit set")
			}
		default:
			b.sanitizeFail(ba, copies, fmt.Sprintf("unknown state %v", l.State))
		}
	}
	if exclusive > 1 {
		b.sanitizeFail(ba, copies, "more than one Modified/Exclusive copy")
	}
	if exclusive == 1 && len(copies) > 1 {
		b.sanitizeFail(ba, copies, "Modified/Exclusive copy coexists with other copies")
	}
	if owned > 1 {
		b.sanitizeFail(ba, copies, "more than one Owned copy")
	}
	// Cross-check the duplicate-tag snoop filter against the brute-force
	// probe sweep just performed: every transaction under the sanitizer
	// verifies the two snoop mechanisms agree.
	b.checkFilter(ba, probed, probedOwner, copies)
}

func (b *Bus) sanitizeFail(ba uint64, copies any, why string) {
	panic(fmt.Sprintf("coherence: %v invariant violated for block %#x: %s; copies (node, state, dirty): %+v",
		b.Protocol, ba, why, copies))
}
