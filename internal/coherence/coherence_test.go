package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/simrand"
)

func cfg() cache.Config {
	return cache.Config{Name: "L2", SizeBytes: 8 << 10, Assoc: 4, BlockBytes: 64}
}

func twoNodes() (*Bus, *Node, *Node) {
	b := NewBus()
	return b, b.AddNode(cache.New(cfg()), nil), b.AddNode(cache.New(cfg()), nil)
}

func TestColdReadFromMemory(t *testing.T) {
	_, a, _ := twoNodes()
	if src := a.Read(0x1000, 0); src != SrcMemory {
		t.Fatalf("cold read src = %v", src)
	}
	if a.HasBlock(0x1000) != Shared {
		t.Fatalf("state = %s", StateName(a.HasBlock(0x1000)))
	}
}

func TestReadHitLocal(t *testing.T) {
	b, a, _ := twoNodes()
	a.Read(0x1000, 0)
	if src := a.Read(0x1008, 0); src != SrcLocal {
		t.Fatalf("warm read src = %v", src)
	}
	if b.Stats.L2Hits != 1 {
		t.Fatalf("L2Hits = %d", b.Stats.L2Hits)
	}
}

func TestDirtyReadIsC2C(t *testing.T) {
	b, a, c := twoNodes()
	a.Write(0x1000, 0)
	if a.HasBlock(0x1000) != Modified {
		t.Fatal("writer not Modified")
	}
	if src := c.Read(0x1000, 5); src != SrcCache {
		t.Fatalf("read of remote-dirty src = %v", src)
	}
	if a.HasBlock(0x1000) != Owned || c.HasBlock(0x1000) != Shared {
		t.Fatalf("states after c2c: a=%s c=%s",
			StateName(a.HasBlock(0x1000)), StateName(c.HasBlock(0x1000)))
	}
	if b.Stats.C2CTransfers != 1 {
		t.Fatalf("C2C = %d", b.Stats.C2CTransfers)
	}
}

func TestOwnedSuppliesRepeatedly(t *testing.T) {
	b := NewBus()
	a := b.AddNode(cache.New(cfg()), nil)
	c := b.AddNode(cache.New(cfg()), nil)
	d := b.AddNode(cache.New(cfg()), nil)
	a.Write(0x1000, 0)
	c.Read(0x1000, 0)
	if src := d.Read(0x1000, 0); src != SrcCache {
		t.Fatalf("Owned copy did not supply: %v", src)
	}
	if b.Stats.C2CTransfers != 2 {
		t.Fatalf("C2C = %d", b.Stats.C2CTransfers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	b, a, c := twoNodes()
	a.Read(0x1000, 0)
	c.Read(0x1000, 0)
	if src := c.Write(0x1000, 0); src != SrcUpgrade {
		t.Fatalf("S->M should be upgrade, got %v", src)
	}
	if a.HasBlock(0x1000) != cache.StateInvalid {
		t.Fatal("sharer not invalidated by upgrade")
	}
	if b.Stats.Upgrades != 1 || b.Stats.Invalidations != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestWriteMissOfRemoteDirtyIsC2C(t *testing.T) {
	b, a, c := twoNodes()
	a.Write(0x1000, 0)
	if src := c.Write(0x1000, 0); src != SrcCache {
		t.Fatalf("write miss of remote-dirty src = %v", src)
	}
	if a.HasBlock(0x1000) != cache.StateInvalid || c.HasBlock(0x1000) != Modified {
		t.Fatal("ownership did not migrate")
	}
	if b.Stats.C2CTransfers != 1 || b.Stats.GetM != 2 { // cold write + migrating write
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestMigratoryPingPong(t *testing.T) {
	b, a, c := twoNodes()
	a.Write(0x40, 0)
	for i := 0; i < 10; i++ {
		c.Write(0x40, 0)
		a.Write(0x40, 0)
	}
	if b.Stats.C2CTransfers != 20 {
		t.Fatalf("ping-pong C2C = %d, want 20", b.Stats.C2CTransfers)
	}
	if b.Stats.C2CRatio() < 0.9 {
		t.Fatalf("C2C ratio = %v", b.Stats.C2CRatio())
	}
}

func TestOwnerUpgradeNeedsNoData(t *testing.T) {
	b, a, c := twoNodes()
	a.Write(0x1000, 0)
	c.Read(0x1000, 0) // a: O, c: S
	if src := a.Write(0x1000, 0); src != SrcUpgrade {
		t.Fatalf("O->M should be upgrade, got %v", src)
	}
	if c.HasBlock(0x1000) != cache.StateInvalid {
		t.Fatal("S copy survived owner's upgrade")
	}
	_ = b
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	b := NewBus()
	small := cache.Config{Name: "L2", SizeBytes: 128, Assoc: 1, BlockBytes: 64} // 2 sets
	a := b.AddNode(cache.New(small), nil)
	a.Write(0x000, 0)
	a.Write(0x080, 0) // same set, evicts dirty 0x000
	if b.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", b.Stats.Writebacks)
	}
	// Re-read the evicted line: must come from memory, not a stale cache.
	if src := a.Read(0x000, 0); src != SrcMemory {
		t.Fatalf("re-read src = %v", src)
	}
}

func TestOnInvalidateHook(t *testing.T) {
	b := NewBus()
	var invalidated []uint64
	a := b.AddNode(cache.New(cfg()), nil)
	c := b.AddNode(cache.New(cfg()), func(ba uint64) { invalidated = append(invalidated, ba) })
	c.Read(0x1000, 0)
	a.Write(0x1000, 0)
	if len(invalidated) != 1 || invalidated[0] != 0x1000 {
		t.Fatalf("invalidation hook calls = %v", invalidated)
	}
}

func TestProfileRecordsTouchAndC2C(t *testing.T) {
	b, a, c := twoNodes()
	b.EnableProfile()
	a.Read(0x2000, 0)  // touched, no c2c
	a.Write(0x1000, 0) // touched
	c.Read(0x1000, 1)  // c2c on line 0x1000
	p := b.Profile()
	if p.Keys() != 2 {
		t.Fatalf("touched lines = %d, want 2", p.Keys())
	}
	if p.Total() != 1 {
		t.Fatalf("c2c total = %d, want 1", p.Total())
	}
	if p.TopShare(1) != 1 {
		t.Fatalf("hottest line share = %v", p.TopShare(1))
	}
}

func TestTimelineBinsC2C(t *testing.T) {
	b, a, c := twoNodes()
	b.EnableTimeline(100)
	a.Write(0x40, 0)
	c.Read(0x40, 50)   // bin 0
	c.Write(0x40, 250) // upgrade at c (c has S, a has O)... may or may not be c2c
	a.Write(0x40, 260) // a lost its copy; GetM from c's M copy: c2c in bin 2
	bins := b.Timeline().Bins()
	if len(bins) < 3 || bins[0] != 1 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[2] == 0 {
		t.Fatalf("expected c2c in bin 2: %v", bins)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	b, a, _ := twoNodes()
	b.EnableProfile()
	a.Write(0x1000, 0)
	b.ResetStats()
	if b.Stats.GetM != 0 || b.Profile().Keys() != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if a.HasBlock(0x1000) != Modified {
		t.Fatal("ResetStats disturbed cache contents")
	}
}

// checkInvariants asserts the MOSI single-writer/no-stale invariants across
// all nodes for every block seen.
func checkInvariants(t *testing.T, b *Bus, blocks []uint64) {
	t.Helper()
	for _, ba := range blocks {
		var m, o, s int
		for _, n := range b.Nodes() {
			switch n.HasBlock(ba) {
			case Modified:
				m++
			case Owned:
				o++
			case Shared:
				s++
			}
		}
		if m > 1 || o > 1 {
			t.Fatalf("block %x: %d M copies, %d O copies", ba, m, o)
		}
		if m == 1 && (o > 0 || s > 0) {
			t.Fatalf("block %x: M coexists with %d O, %d S", ba, o, s)
		}
	}
}

func TestRandomizedMOSIInvariants(t *testing.T) {
	r := simrand.New(77)
	b := NewBus()
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, b.AddNode(cache.New(cfg()), nil))
	}
	var blocks []uint64
	for i := 0; i < 32; i++ {
		blocks = append(blocks, uint64(i)*64)
	}
	for step := 0; step < 20000; step++ {
		n := nodes[r.Intn(len(nodes))]
		ba := blocks[r.Intn(len(blocks))]
		if r.Bool(0.4) {
			n.Write(ba, uint64(step))
		} else {
			n.Read(ba, uint64(step))
		}
		if step%500 == 0 {
			checkInvariants(t, b, blocks)
		}
	}
	checkInvariants(t, b, blocks)
	if b.Stats.C2CTransfers == 0 || b.Stats.MemTransfers == 0 {
		t.Fatalf("randomized run exercised too little: %+v", b.Stats)
	}
}

func TestC2CRatioZeroWhenQuiet(t *testing.T) {
	var s Stats
	if s.C2CRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestSourceStrings(t *testing.T) {
	if SrcLocal.String() != "local" || SrcCache.String() != "c2c" ||
		SrcMemory.String() != "memory" || SrcUpgrade.String() != "upgrade" {
		t.Fatal("source names wrong")
	}
	if StateName(Modified) != "M" || StateName(Owned) != "O" ||
		StateName(Shared) != "S" || StateName(cache.StateInvalid) != "I" {
		t.Fatal("state names wrong")
	}
}

func TestMSIReadOfDirtyWritesBack(t *testing.T) {
	b, a, c := twoNodes()
	b.Protocol = MSI
	a.Write(0x1000, 0)
	if src := c.Read(0x1000, 0); src != SrcCache {
		t.Fatalf("dirty supply src = %v", src)
	}
	// Under MSI the owner downgrades to Shared with a writeback, not Owned.
	if a.HasBlock(0x1000) != Shared {
		t.Fatalf("MSI owner state = %s, want S", StateName(a.HasBlock(0x1000)))
	}
	if b.Stats.Writebacks == 0 {
		t.Fatal("MSI read of dirty line did not write back")
	}
	// A third read is served by memory (nobody owns it anymore).
	d := b.AddNode(cache.New(cfg()), nil)
	if src := d.Read(0x1000, 0); src != SrcMemory {
		t.Fatalf("MSI re-read src = %v, want memory", src)
	}
}

func TestMESIExclusiveSilentUpgrade(t *testing.T) {
	b, a, _ := twoNodes()
	b.Protocol = MESI
	if src := a.Read(0x1000, 0); src != SrcMemory {
		t.Fatalf("cold read src = %v", src)
	}
	if a.HasBlock(0x1000) != Exclusive {
		t.Fatalf("sole clean copy state = %s, want E", StateName(a.HasBlock(0x1000)))
	}
	upgradesBefore := b.Stats.Upgrades
	getmBefore := b.Stats.GetM
	if src := a.Write(0x1000, 0); src != SrcLocal {
		t.Fatalf("E write src = %v, want local (silent)", src)
	}
	if b.Stats.Upgrades != upgradesBefore || b.Stats.GetM != getmBefore {
		t.Fatal("MESI E->M used the bus")
	}
	if a.HasBlock(0x1000) != Modified {
		t.Fatal("E write did not reach M")
	}
}

func TestMESISecondReaderDowngradesExclusive(t *testing.T) {
	b, a, c := twoNodes()
	b.Protocol = MESI
	a.Read(0x1000, 0) // E
	if src := c.Read(0x1000, 0); src != SrcMemory {
		t.Fatalf("clean sharing src = %v (E6000 buses serve clean data from memory)", src)
	}
	if a.HasBlock(0x1000) != Shared || c.HasBlock(0x1000) != Shared {
		t.Fatalf("states after clean share: a=%s c=%s",
			StateName(a.HasBlock(0x1000)), StateName(c.HasBlock(0x1000)))
	}
}

func TestProtocolStrings(t *testing.T) {
	if MOSI.String() != "MOSI" || MSI.String() != "MSI" || MESI.String() != "MESI" {
		t.Fatal("protocol names wrong")
	}
	if StateName(Exclusive) != "E" {
		t.Fatal("E state name wrong")
	}
}

func TestRandomizedInvariantsAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{MOSI, MSI, MESI} {
		r := simrand.New(101 + uint64(proto))
		b := NewBus()
		b.Protocol = proto
		var nodes []*Node
		for i := 0; i < 4; i++ {
			nodes = append(nodes, b.AddNode(cache.New(cfg()), nil))
		}
		var blocks []uint64
		for i := 0; i < 24; i++ {
			blocks = append(blocks, uint64(i)*64)
		}
		for step := 0; step < 12000; step++ {
			n := nodes[r.Intn(len(nodes))]
			ba := blocks[r.Intn(len(blocks))]
			if r.Bool(0.4) {
				n.Write(ba, uint64(step))
			} else {
				n.Read(ba, uint64(step))
			}
		}
		// Single-writer and sole-E invariants.
		for _, ba := range blocks {
			var m, o, e, s int
			for _, n := range b.Nodes() {
				switch n.HasBlock(ba) {
				case Modified:
					m++
				case Owned:
					o++
				case Exclusive:
					e++
				case Shared:
					s++
				}
			}
			if m > 1 || o > 1 || e > 1 {
				t.Fatalf("%v block %x: m=%d o=%d e=%d", proto, ba, m, o, e)
			}
			if (m == 1 || e == 1) && (o+s) > 0 {
				t.Fatalf("%v block %x: exclusive state coexists with copies", proto, ba)
			}
			if proto != MOSI && o > 0 {
				t.Fatalf("%v block %x: Owned state outside MOSI", proto, ba)
			}
			if proto != MESI && e > 0 {
				t.Fatalf("%v block %x: Exclusive state outside MESI", proto, ba)
			}
		}
	}
}
