package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs/attr"
	"repro/internal/simrand"
)

// driveAttr runs randomized mixed traffic over a bus with an exact-mode
// attribution collector attached and returns bus and collector.
func driveAttr(t *testing.T, proto Protocol, nodes, accesses int, seed uint64) (*Bus, *attr.Collector) {
	t.Helper()
	b := NewBus()
	b.Protocol = proto
	c := attr.NewCollector(attr.Options{Exact: true})
	b.Attr = c
	geo := cache.Config{Name: "L2", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 64}
	var ns []*Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, b.AddNode(cache.New(geo), nil))
	}
	rng := simrand.New(seed)
	blocks := uint64(geo.SizeBytes) / uint64(geo.BlockBytes) * 3
	for i := 0; i < accesses; i++ {
		n := rng.Intn(nodes)
		ba := uint64(rng.Int63n(int64(blocks))) * uint64(geo.BlockBytes)
		if rng.Bool(0.3) {
			ns[n].Write(mem.Addr(ba), uint64(i))
		} else {
			ns[n].Read(mem.Addr(ba), uint64(i))
		}
	}
	return b, c
}

// TestAttrConservation is the exact-mode conservation property: every event
// the bus counts globally must have been attributed to exactly one line, so
// the per-line sums equal the bus's Stats counters for every event class.
func TestAttrConservation(t *testing.T) {
	for _, proto := range []Protocol{MOSI, MSI, MESI} {
		for _, nodes := range []int{2, 4, 8} {
			b, c := driveAttr(t, proto, nodes, 40000, 0xA77+uint64(nodes))
			sum := c.SumCounts()
			st := b.Stats
			if sum.GetS != st.GetS {
				t.Errorf("%v/%d nodes: attributed GetS %d != bus GetS %d", proto, nodes, sum.GetS, st.GetS)
			}
			if sum.GetM != st.GetM {
				t.Errorf("%v/%d nodes: attributed GetM %d != bus GetM %d", proto, nodes, sum.GetM, st.GetM)
			}
			if sum.Upgrades != st.Upgrades {
				t.Errorf("%v/%d nodes: attributed upgrades %d != bus upgrades %d", proto, nodes, sum.Upgrades, st.Upgrades)
			}
			if sum.C2C != st.C2CTransfers {
				t.Errorf("%v/%d nodes: attributed C2C %d != bus C2C %d", proto, nodes, sum.C2C, st.C2CTransfers)
			}
			if sum.Writebacks != st.Writebacks {
				t.Errorf("%v/%d nodes: attributed writebacks %d != bus writebacks %d", proto, nodes, sum.Writebacks, st.Writebacks)
			}
			if sum.Invals != st.Invalidations {
				t.Errorf("%v/%d nodes: attributed invalidations %d != bus invalidations %d", proto, nodes, sum.Invals, st.Invalidations)
			}
			if got, want := c.Events(), st.GetS+st.GetM+st.Upgrades+st.Writebacks+st.Invalidations; got != want {
				t.Errorf("%v/%d nodes: recorded events %d != bus event total %d", proto, nodes, got, want)
			}
		}
	}
}

// TestAttrIdenticalAcrossSnoopModes drives a filtered and a brute-force bus
// with identical traffic: attribution, like Stats, must not depend on which
// snoop implementation answered.
func TestAttrIdenticalAcrossSnoopModes(t *testing.T) {
	if bruteSnoopEnv {
		t.Skip("COHERENCE_BRUTE_SNOOP=1: both buses would be brute-force, nothing to compare")
	}
	run := func(brute bool) *attr.Collector {
		b := NewBus()
		b.Protocol = MOSI
		if brute {
			b.DisableSnoopFilter()
		}
		c := attr.NewCollector(attr.Options{Exact: true})
		b.Attr = c
		geo := cache.Config{Name: "L2", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 64}
		var ns []*Node
		for i := 0; i < 4; i++ {
			ns = append(ns, b.AddNode(cache.New(geo), nil))
		}
		rng := simrand.New(0xC0117)
		blocks := uint64(geo.SizeBytes) / uint64(geo.BlockBytes) * 3
		for i := 0; i < 30000; i++ {
			n := rng.Intn(4)
			ba := uint64(rng.Int63n(int64(blocks))) * uint64(geo.BlockBytes)
			if rng.Bool(0.3) {
				ns[n].Write(mem.Addr(ba), uint64(i))
			} else {
				ns[n].Read(mem.Addr(ba), uint64(i))
			}
		}
		return c
	}
	fc, bc := run(false), run(true)
	if fc.SumCounts() != bc.SumCounts() {
		t.Errorf("attribution sums diverge between snoop modes:\nfiltered %+v\nbrute    %+v", fc.SumCounts(), bc.SumCounts())
	}
	if fc.Events() != bc.Events() {
		t.Errorf("event counts diverge: filtered %d, brute %d", fc.Events(), bc.Events())
	}
}

// TestFilterFallbackNoted checks the brute-force fallback observability:
// the counter-with-reason must fire when the filter is dropped explicitly
// and when the bus grows past the sharer-mask width, and must stay zero on
// a filtered bus.
func TestFilterFallbackNoted(t *testing.T) {
	if bruteSnoopEnv {
		t.Skip("COHERENCE_BRUTE_SNOOP=1 makes every bus fall back at construction")
	}
	geo := cache.Config{Name: "L2", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64}

	b := NewBus()
	b.AddNode(cache.New(geo), nil)
	b.AddNode(cache.New(geo), nil)
	if n, _ := b.FilterFallbacks(); n != 0 {
		t.Fatalf("fresh filtered bus reports %d fallbacks, want 0", n)
	}
	b.DisableSnoopFilter()
	if n, why := b.FilterFallbacks(); n != 1 || why == "" {
		t.Fatalf("after DisableSnoopFilter: count %d (want 1), reason %q (want non-empty)", n, why)
	}
	// Disabling an already-brute bus is not a second fallback.
	b.DisableSnoopFilter()
	if n, _ := b.FilterFallbacks(); n != 1 {
		t.Fatalf("second DisableSnoopFilter changed the count to %d, want 1", n)
	}

	wide := NewBus()
	for i := 0; i <= maxFilterNodes; i++ {
		wide.AddNode(cache.New(geo), nil)
	}
	if wide.SnoopFilterEnabled() {
		t.Fatalf("bus with %d nodes kept its snoop filter", maxFilterNodes+1)
	}
	if n, why := wide.FilterFallbacks(); n != 1 || why == "" {
		t.Fatalf("bus grown past %d nodes: count %d (want 1), reason %q (want non-empty)", maxFilterNodes, n, why)
	}
}
