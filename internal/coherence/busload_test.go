package coherence

import "testing"

func testLoadConfig() LoadConfig {
	return LoadConfig{
		WindowCycles: 1000, Buckets: 10,
		LineCycles: 10, WriteWeight: 2,
		InterventionStartUtil: 0.5, InterventionMaxFrac: 0.8,
	}
}

func TestLoadTrackerCounts(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	lt.Record(0, false)
	lt.Record(10, false)
	lt.Record(20, true)
	r, w := lt.Counts()
	if r != 2 || w != 1 {
		t.Fatalf("Counts = %d,%d, want 2,1", r, w)
	}
	if lt.WindowCycles() != 1000 {
		t.Fatalf("WindowCycles = %d", lt.WindowCycles())
	}
}

func TestLoadTrackerRetiresOldBuckets(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	// Fill bucket 0 (cycles 0-99), then walk the head forward one full
	// window: the early traffic must retire.
	lt.Record(0, false)
	lt.Record(50, true)
	for now := uint64(100); now < 1100; now += 100 {
		lt.Record(now, false)
	}
	r, w := lt.Counts()
	if w != 0 {
		t.Fatalf("write from retired bucket still counted (r=%d w=%d)", r, w)
	}
	// Head is at cycle 1000-1099; buckets 100..1099 are live = 10 reads.
	if r != 10 {
		t.Fatalf("reads = %d, want 10", r)
	}
}

func TestLoadTrackerSkipsWholeWindow(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	for now := uint64(0); now < 1000; now += 10 {
		lt.Record(now, true)
	}
	// A gap longer than the window clears everything.
	lt.Record(1_000_000, false)
	r, w := lt.Counts()
	if r != 1 || w != 0 {
		t.Fatalf("Counts after idle gap = %d,%d, want 1,0", r, w)
	}
}

func TestLoadTrackerClampsBackwardsTime(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	lt.Record(950, false)
	// A lagging CPU's earlier timestamp lands in the current bucket, never
	// un-advancing the window.
	lt.Record(100, true)
	r, w := lt.Counts()
	if r != 1 || w != 1 {
		t.Fatalf("Counts = %d,%d, want 1,1", r, w)
	}
	lt.Record(951, false)
	if r2, _ := lt.Counts(); r2 != 2 {
		t.Fatalf("tracker lost the window position after a backwards stamp")
	}
}

func TestLoadTrackerUtilization(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	if u := lt.Utilization(); u != 0 {
		t.Fatalf("empty utilization = %v", u)
	}
	// 30 reads × 10 cycles + 10 writes × 2 × 10 cycles = 500 of 1000.
	for i := 0; i < 30; i++ {
		lt.Record(uint64(i), false)
	}
	for i := 0; i < 10; i++ {
		lt.Record(uint64(i), true)
	}
	if u := lt.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Utilization may exceed 1 under overload.
	for i := 0; i < 100; i++ {
		lt.Record(0, true)
	}
	if u := lt.Utilization(); u <= 1 {
		t.Fatalf("overload utilization = %v, want > 1", u)
	}
}

func TestInterveneOffBelowStart(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	// Utilization 0.4 < start 0.5: no interventions, ever.
	for i := 0; i < 40; i++ {
		lt.Record(0, false)
	}
	for i := 0; i < 10_000; i++ {
		if lt.Intervene() {
			t.Fatal("intervened below the start utilization")
		}
	}
	if lt.Interventions() != 0 {
		t.Fatal("intervention counter moved below start")
	}
}

func TestInterveneFractionMatchesRamp(t *testing.T) {
	lt := NewLoadTracker(testLoadConfig())
	// Utilization 0.75: frac = (0.75-0.5)/(1-0.5) × 0.8 = 0.4.
	for i := 0; i < 75; i++ {
		lt.Record(0, false)
	}
	const n = 10_000
	var hits int
	for i := 0; i < n; i++ {
		if lt.Intervene() {
			hits++
		}
	}
	if hits < 3990 || hits > 4010 {
		t.Fatalf("intervened %d of %d eligible, want ~4000", hits, n)
	}
	if lt.Interventions() != uint64(hits) {
		t.Fatalf("counter %d != observed %d", lt.Interventions(), hits)
	}
	lt.ResetInterventions()
	if lt.Interventions() != 0 {
		t.Fatal("ResetInterventions did not zero the counter")
	}
}

func TestInterveneCapsAtMaxFrac(t *testing.T) {
	cfg := testLoadConfig()
	lt := NewLoadTracker(cfg)
	// Overload (utilization > 1): the ramp clamps at the max fraction.
	for i := 0; i < 300; i++ {
		lt.Record(0, true)
	}
	const n = 10_000
	var hits int
	for i := 0; i < n; i++ {
		if lt.Intervene() {
			hits++
		}
	}
	want := int(cfg.InterventionMaxFrac * n)
	if hits < want-10 || hits > want+10 {
		t.Fatalf("intervened %d of %d, want ~%d (max frac cap)", hits, n, want)
	}
}

func TestInterveneDisabled(t *testing.T) {
	cfg := testLoadConfig()
	cfg.InterventionStartUtil = 2 // start ≥ 1 disables
	lt := NewLoadTracker(cfg)
	for i := 0; i < 300; i++ {
		lt.Record(0, true)
	}
	for i := 0; i < 1000; i++ {
		if lt.Intervene() {
			t.Fatal("intervened with start ≥ 1")
		}
	}
	cfg = testLoadConfig()
	cfg.InterventionMaxFrac = 0
	lt = NewLoadTracker(cfg)
	for i := 0; i < 300; i++ {
		lt.Record(0, true)
	}
	for i := 0; i < 1000; i++ {
		if lt.Intervene() {
			t.Fatal("intervened with zero max fraction")
		}
	}
}

func TestLoadTrackerDeterministic(t *testing.T) {
	run := func() (uint64, uint64, uint64, float64) {
		lt := NewLoadTracker(testLoadConfig())
		var iv uint64
		for i := 0; i < 5000; i++ {
			now := uint64(i * 7 % 4096) // deliberately non-monotonic
			lt.Record(now, i%3 == 0)
			if i%2 == 0 && lt.Intervene() {
				iv++
			}
		}
		r, w := lt.Counts()
		return r, w, iv, lt.Utilization()
	}
	r1, w1, iv1, u1 := run()
	r2, w2, iv2, u2 := run()
	if r1 != r2 || w1 != w2 || iv1 != iv2 || u1 != u2 {
		t.Fatalf("tracker not deterministic: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			r1, w1, iv1, u1, r2, w2, iv2, u2)
	}
}

func TestNewLoadTrackerPanicsOnDegenerate(t *testing.T) {
	cases := []LoadConfig{
		{WindowCycles: 0, Buckets: 4, LineCycles: 1, WriteWeight: 1},
		{WindowCycles: 100, Buckets: 1, LineCycles: 1, WriteWeight: 1},
		{WindowCycles: 3, Buckets: 4, LineCycles: 1, WriteWeight: 1},
		{WindowCycles: 100, Buckets: 4, LineCycles: 0, WriteWeight: 1},
		{WindowCycles: 100, Buckets: 4, LineCycles: 1, WriteWeight: 0},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewLoadTracker(c)
		}()
	}
}

// BenchmarkLoadTrackerRecord pins the per-transaction cost of the sliding
// window: every bus transaction under -memmodel loaded pays one Record.
func BenchmarkLoadTrackerRecord(b *testing.B) {
	lt := NewLoadTracker(LoadConfig{
		WindowCycles: 131_072, Buckets: 16, LineCycles: 24, WriteWeight: 1.6,
		InterventionStartUtil: 0.35, InterventionMaxFrac: 0.85,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Record(uint64(i)*40, i&3 == 0)
	}
}
