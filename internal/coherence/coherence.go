// Package coherence implements a MOSI snooping-bus protocol over a set of
// L2 caches, the model of the Sun E6000's snooping interconnect that the
// paper measured.
//
// Each Node owns one L2 cache; a node may front several processors (the
// shared-cache CMP configurations of Figure 16 attach 2, 4, or 8 processors
// to one node). The bus serializes GetS/GetM/Upgrade transactions, counts
// "snoop copybacks" — requests satisfied by another cache holding the block
// Modified or Owned, the event the paper reads from cpustat — and can keep a
// per-line profile of communication for Figures 14 and 15 plus a time series
// of transfers for Figure 10.
//
// Snoops are resolved through a bus-side duplicate-tag filter — the model of
// the E6000's duplicate tag arrays, which answer snoops without touching the
// processors' caches — implemented as a block-address → (sharer bitmask,
// owner) index so an invalidation visits only the nodes that actually hold
// the block and a read miss probes at most the one M/O/E holder, instead of
// scanning all P nodes (see filter.go; COHERENCE_BRUTE_SNOOP=1 restores the
// O(P) scan, and the two are statistic-for-statistic equivalent).
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/stats"
)

// MOSI states stored in cache.Line.State. StateInvalid (0) is inherited
// from the cache package.
const (
	// Modified: sole dirty copy.
	Modified cache.State = 1 + iota
	// Owned: dirty, but other Shared copies may exist; this cache supplies
	// data on snoops and writes back on eviction (MOSI only).
	Owned
	// Shared: clean read-only copy.
	Shared
	// Exclusive: sole clean copy; writes upgrade silently (MESI only).
	Exclusive
)

// StateName returns a short human-readable name for a MOSI state.
func StateName(s cache.State) string {
	switch s {
	case cache.StateInvalid:
		return "I"
	case Modified:
		return "M"
	case Owned:
		return "O"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return fmt.Sprintf("?%d", s)
	}
}

// Source says who supplied the data for a request.
type Source uint8

const (
	// SrcLocal: the request hit in the node's own L2.
	SrcLocal Source = iota
	// SrcCache: another cache supplied the block (cache-to-cache transfer).
	SrcCache
	// SrcMemory: main memory supplied the block.
	SrcMemory
	// SrcUpgrade: no data movement, only an ownership upgrade (S/O -> M).
	SrcUpgrade
)

// String returns the source's short name.
func (s Source) String() string {
	switch s {
	case SrcLocal:
		return "local"
	case SrcCache:
		return "c2c"
	case SrcMemory:
		return "memory"
	case SrcUpgrade:
		return "upgrade"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Stats are the bus-wide transaction counters.
type Stats struct {
	GetS          uint64 // read-miss bus transactions
	GetM          uint64 // write-miss bus transactions
	Upgrades      uint64 // S/O->M ownership transactions (no data)
	C2CTransfers  uint64 // transactions served by another cache (snoop copyback)
	MemTransfers  uint64 // transactions served by memory
	Writebacks    uint64 // dirty evictions written back to memory
	Invalidations uint64 // remote copies invalidated by GetM/Upgrade
	L2Hits        uint64 // node-local hits (no bus transaction)
}

// DataRequests returns the number of bus transactions that needed data
// (excludes upgrades): the denominator of the cache-to-cache ratio.
func (s *Stats) DataRequests() uint64 { return s.GetS + s.GetM }

// C2CRatio returns the fraction of L2 data misses satisfied by another
// cache — the paper's Figure 8 metric.
func (s *Stats) C2CRatio() float64 {
	d := s.DataRequests()
	if d == 0 {
		return 0
	}
	return float64(s.C2CTransfers) / float64(d)
}

// Protocol selects the invalidation protocol the bus runs. The E6000 runs
// a MOSI-flavored protocol (dirty owners supply data and retain it); the
// MSI and MESI variants exist for the protocol ablation — the paper's §4.5
// reasons about "a simple MSI invalidation protocol" when analyzing GC
// behavior, and MESI shows what the Exclusive state buys.
type Protocol uint8

const (
	// MOSI: dirty read-sharing; the owner supplies and keeps the line.
	MOSI Protocol = iota
	// MSI: a dirty line read by another cache is written back to memory
	// and both copies become Shared.
	MSI
	// MESI: like MSI plus the Exclusive state (sole clean copy; silent
	// upgrade on write).
	MESI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case MOSI:
		return "MOSI"
	case MSI:
		return "MSI"
	case MESI:
		return "MESI"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Bus is the snooping interconnect. It is not safe for concurrent use; the
// simulator is single-threaded per run for determinism.
type Bus struct {
	nodes []*Node
	// Protocol defaults to MOSI (the E6000's flavor).
	Protocol Protocol
	Stats    Stats

	// profile, when non-nil, tracks touched lines and per-line C2C counts
	// for the communication-footprint figures.
	profile *stats.ShareDist
	// timeline, when non-nil, bins C2C transfers by simulated time.
	timeline *stats.TimeSeries

	// ClassifyAddr, when set, attributes memory-served misses to address
	// classes (a calibration diagnostic); MissClass counts per class.
	ClassifyAddr func(addr uint64) int
	MissClass    [8]uint64

	// Tracer, when non-nil and with obs.CompMem enabled, records bus
	// transactions as simulated-time instants (sampled — see
	// obs.DefaultMemSample — because bus transactions outnumber every
	// other traced event by orders of magnitude).
	Tracer *obs.Tracer

	// Attr, when non-nil, receives every bus-level event (miss, C2C
	// transfer, upgrade, writeback, invalidation) with its block address
	// for per-line and per-object attribution. Off (nil) costs one pointer
	// compare per transaction.
	Attr *attr.Collector

	// Load, when non-nil, records every data-moving transaction (GetS and
	// GetM) into a sliding utilization window for the loaded-latency memory
	// model (see busload.go). Off (nil) costs one pointer compare per
	// transaction, like Attr.
	Load *LoadTracker

	// Sanitize re-checks the protocol's cross-cache invariants after every
	// transaction and panics on the first violation (see sanitize.go). Off
	// by default; COHERENCE_SANITIZE=1 enables it process-wide for CI.
	Sanitize bool

	// filter is the duplicate-tag snoop filter: block address → packed
	// (sharer bitmask, owner) pair (see filter.go). nil means brute-force
	// snooping: COHERENCE_BRUTE_SNOOP=1, DisableSnoopFilter, more nodes than
	// the mask holds, or fewer than two nodes (nothing to snoop).
	filter   *filterTable
	noFilter bool

	// Brute-force fallback bookkeeping: a snoop filter silently reverting
	// to the O(P) scan is a performance cliff worth surfacing, so each
	// fallback is counted and its reason retained. Deliberately not part of
	// Stats — the filter-vs-brute equivalence suites assert identical Stats
	// across the two modes.
	filterFallbacks   uint64
	filterFallbackWhy string
}

// NewBus returns an empty bus; attach caches with AddNode.
func NewBus() *Bus {
	b := &Bus{Sanitize: sanitizeEnv, noFilter: bruteSnoopEnv}
	if bruteSnoopEnv {
		b.noteFilterFallback("COHERENCE_BRUTE_SNOOP=1 environment override")
	}
	return b
}

// noteFilterFallback records one reversion to brute-force snooping and
// emits a trace instant when a tracer is already attached (drivers that
// attach the tracer later re-emit from the recorded reason).
func (b *Bus) noteFilterFallback(reason string) {
	b.filterFallbacks++
	b.filterFallbackWhy = reason
	if b.Tracer.Enabled(obs.CompMem) {
		b.Tracer.Instant(obs.CompMem, "snoop.brute_fallback", 0, 0,
			obs.Arg{Key: "reason", Val: reason})
	}
}

// FilterFallbacks returns how many times this bus reverted to brute-force
// snooping and the most recent reason ("" when the filter never fell back).
func (b *Bus) FilterFallbacks() (uint64, string) {
	return b.filterFallbacks, b.filterFallbackWhy
}

// AddNode attaches an L2 cache to the bus and returns its node handle.
// onInvalidate, if non-nil, is called whenever the protocol removes or
// downgrades a block in this node's L2 so the owner can maintain L1
// inclusion (it is also called for local evictions caused by Allocate).
func (b *Bus) AddNode(l2 *cache.Cache, onInvalidate func(ba uint64)) *Node {
	n := &Node{id: len(b.nodes), l2: l2, bus: b, onInvalidate: onInvalidate}
	b.nodes = append(b.nodes, n)
	if len(b.nodes) > maxFilterNodes {
		// The sharer bitmask is 32 bits; wider buses snoop by brute force.
		if len(b.nodes) == maxFilterNodes+1 {
			b.noteFilterFallback(fmt.Sprintf(
				"bus grew past %d nodes (sharer mask width)", maxFilterNodes))
		}
		b.filter = nil
	} else if b.filter == nil {
		// The filter is built lazily on the second attach: one node has no
		// one to snoop, so single-node buses never pay for it.
		if len(b.nodes) == 2 && !b.noFilter {
			b.RebuildSnoopFilter()
		}
	} else {
		// Later attaches fold the new cache (normally empty) into the
		// existing index.
		b.filterScan(n)
	}
	return n
}

// Nodes returns the attached nodes in attachment order.
func (b *Bus) Nodes() []*Node { return b.nodes }

// EnableProfile starts per-line communication profiling (Figures 14/15).
func (b *Bus) EnableProfile() { b.profile = stats.NewShareDist() }

// Profile returns the per-line communication profile, or nil if profiling
// is off.
func (b *Bus) Profile() *stats.ShareDist { return b.profile }

// EnableTimeline starts binning C2C transfers by simulated time with the
// given bin width (Figure 10).
func (b *Bus) EnableTimeline(interval uint64) { b.timeline = stats.NewTimeSeries(interval) }

// Timeline returns the C2C time series, or nil if disabled.
func (b *Bus) Timeline() *stats.TimeSeries { return b.timeline }

// ResetStats zeroes the bus counters (cache contents stay warm). The
// profile and timeline, if enabled, are restarted too.
func (b *Bus) ResetStats() {
	b.Stats = Stats{}
	if b.profile != nil {
		b.profile = stats.NewShareDist()
	}
	if b.timeline != nil {
		b.timeline = stats.NewTimeSeries(b.timeline.Interval)
	}
}

func (b *Bus) recordC2C(ba uint64, now uint64) {
	b.Stats.C2CTransfers++
	if b.profile != nil {
		b.profile.Add(ba, 1)
	}
	if b.timeline != nil {
		b.timeline.Add(now, 1)
	}
}

func (b *Bus) touch(ba uint64) {
	if b.profile != nil {
		b.profile.Touch(ba)
	}
}

func (b *Bus) classifyMem(ba uint64) {
	if b.ClassifyAddr != nil {
		if c := b.ClassifyAddr(ba); c >= 0 && c < len(b.MissClass) {
			b.MissClass[c]++
		}
	}
}

// Node is one L2 cache's port onto the bus.
type Node struct {
	id           int
	l2           *cache.Cache
	bus          *Bus
	onInvalidate func(ba uint64)
}

// ID returns the node's index on the bus.
func (n *Node) ID() int { return n.id }

// L2 returns the node's cache.
func (n *Node) L2() *cache.Cache { return n.l2 }

func (n *Node) notifyInvalidate(ba uint64) {
	if n.onInvalidate != nil {
		n.onInvalidate(ba)
	}
}

// Read performs a coherent load of the block containing addr at simulated
// time now, returning who supplied the data.
func (n *Node) Read(addr mem.Addr, now uint64) Source {
	ba := n.l2.BlockAddr(addr)
	n.bus.touch(ba)
	if l := n.l2.ProbeTouch(ba); l != nil {
		n.bus.Stats.L2Hits++
		if n.bus.Sanitize {
			n.bus.sanitize(ba)
		}
		return SrcLocal
	}
	// Bus GetS.
	n.bus.Stats.GetS++
	src := SrcMemory
	anyCopy := false
	if n.bus.filter != nil {
		// Only the M/O/E holder reacts to a GetS; Shared copies are left
		// untouched, so the filter answers for them without a probe.
		if p := n.bus.filter.lookup(ba); p != nil {
			v := *p
			anyCopy = v&fMaskBits&^(1<<uint(n.id)) != 0
			if o := fOwner(v); o >= 0 {
				if l := n.bus.nodes[o].l2.Probe(ba); l != nil {
					if n.bus.snoopGetS(l) {
						src = SrcCache
					}
					if l.State == Shared {
						// The holder was downgraded all the way to Shared
						// (M under MSI/MESI, or E): the block has no owner
						// now.
						*p = fClearOwner(v)
					}
				}
			}
		}
	} else {
		for _, other := range n.bus.nodes {
			if other == n {
				continue
			}
			if l := other.l2.Probe(ba); l != nil {
				anyCopy = true
				if n.bus.snoopGetS(l) {
					src = SrcCache
				}
			}
		}
	}
	if src == SrcMemory && anyCopy && n.bus.Load != nil && n.bus.Load.Intervene() {
		// Loaded model only: a clean remote copy supplies the line instead
		// of the congested memory controller (cache intervention under load).
		src = SrcCache
	}
	if src == SrcCache {
		n.bus.recordC2C(ba, now)
	} else {
		n.bus.Stats.MemTransfers++
		n.bus.classifyMem(ba)
	}
	if n.bus.Load != nil {
		n.bus.Load.Record(now, false)
	}
	if n.bus.Attr != nil {
		n.bus.Attr.RecordGetS(ba, n.id, src == SrcCache)
	}
	if n.bus.Tracer.Enabled(obs.CompMem) {
		n.bus.Tracer.Instant(obs.CompMem, "bus.gets", n.id, now,
			obs.Arg{Key: "src", Val: src.String()}, obs.Arg{Key: "addr", Val: ba})
	}
	st := Shared
	if n.bus.Protocol == MESI && !anyCopy {
		st = Exclusive
	}
	n.insert(ba, st)
	if n.bus.Sanitize {
		n.bus.sanitize(ba)
	}
	return src
}

// snoopGetS applies a GetS snoop to one remote copy of the block, returning
// whether that cache supplies the data (a snoop copyback).
func (b *Bus) snoopGetS(l *cache.Line) bool {
	switch l.State {
	case Modified:
		if b.Protocol == MOSI {
			// Owner supplies data and retains a dirty shared copy.
			l.State = Owned
		} else {
			// MSI/MESI: supply, write back, both Shared and clean.
			l.State = Shared
			l.Dirty = false
			b.Stats.Writebacks++
			if b.Attr != nil {
				b.Attr.RecordWriteback(l.Tag, -1)
			}
		}
		return true
	case Owned:
		return true
	case Exclusive:
		// Clean sole copy downgrades; memory still supplies the data on
		// this bus (no clean cache-to-cache on the E6000).
		l.State = Shared
	}
	return false
}

// Write performs a coherent store of the block containing addr at simulated
// time now, returning who supplied the data (SrcLocal for an M hit,
// SrcUpgrade for an ownership upgrade, SrcCache/SrcMemory for a full GetM).
func (n *Node) Write(addr mem.Addr, now uint64) Source {
	ba := n.l2.BlockAddr(addr)
	n.bus.touch(ba)
	if l := n.l2.ProbeTouch(ba); l != nil {
		switch l.State {
		case Modified:
			n.bus.Stats.L2Hits++
			l.Dirty = true
			if n.bus.Sanitize {
				n.bus.sanitize(ba)
			}
			return SrcLocal
		case Exclusive:
			// MESI silent upgrade: no bus transaction at all.
			n.bus.Stats.L2Hits++
			l.State = Modified
			l.Dirty = true
			if n.bus.Sanitize {
				n.bus.sanitize(ba)
			}
			return SrcLocal
		case Shared, Owned:
			// Upgrade: invalidate remote copies, no data transfer.
			n.bus.Stats.Upgrades++
			n.invalidateRemotes(ba)
			l.State = Modified
			l.Dirty = true
			if n.bus.Attr != nil {
				n.bus.Attr.RecordUpgrade(ba, n.id)
			}
			if n.bus.Tracer.Enabled(obs.CompMem) {
				n.bus.Tracer.Instant(obs.CompMem, "bus.upgrade", n.id, now,
					obs.Arg{Key: "addr", Val: ba})
			}
			if n.bus.Sanitize {
				n.bus.sanitize(ba)
			}
			return SrcUpgrade
		}
	}
	// Bus GetM (read-for-ownership).
	n.bus.Stats.GetM++
	src := SrcMemory
	anyCopy := false
	if n.bus.filter != nil {
		if p := n.bus.filter.lookup(ba); p != nil {
			// Invalidate exactly the recorded sharers, in ascending node
			// order (the brute-force scan's order). A dirty victim means the
			// holder was Modified or Owned — the dirty bit and those states
			// coincide by protocol invariant — so it supplied the data.
			for m := *p & fMaskBits &^ (1 << uint(n.id)); m != 0; m &= m - 1 {
				other := n.bus.nodes[bits.TrailingZeros64(m)]
				if wasDirty, present := other.l2.Invalidate(ba); present {
					anyCopy = true
					if wasDirty {
						src = SrcCache
					}
					other.notifyInvalidate(ba)
					n.bus.Stats.Invalidations++
					if n.bus.Attr != nil {
						n.bus.Attr.RecordInval(ba, other.id)
					}
				}
			}
			// All remote copies are gone and this node is about to fill the
			// block Modified; write the entry's final value in place (the
			// insert below re-derives the same value) rather than deleting
			// and re-inserting it.
			*p = fSetOwner(1<<uint(n.id), n.id)
		}
	} else {
		for _, other := range n.bus.nodes {
			if other == n {
				continue
			}
			if l := other.l2.Probe(ba); l != nil {
				anyCopy = true
				if l.State == Modified || l.State == Owned {
					src = SrcCache
				}
				other.l2.Invalidate(ba)
				other.notifyInvalidate(ba)
				n.bus.Stats.Invalidations++
				if n.bus.Attr != nil {
					n.bus.Attr.RecordInval(ba, other.id)
				}
			}
		}
	}
	if src == SrcMemory && anyCopy && n.bus.Load != nil && n.bus.Load.Intervene() {
		// Loaded model only: the dying clean copy forwards the line on its
		// invalidation snoop instead of waiting on the congested controller.
		src = SrcCache
	}
	if src == SrcCache {
		n.bus.recordC2C(ba, now)
	} else {
		n.bus.Stats.MemTransfers++
		n.bus.classifyMem(ba)
	}
	if n.bus.Load != nil {
		n.bus.Load.Record(now, true)
	}
	if n.bus.Attr != nil {
		n.bus.Attr.RecordGetM(ba, n.id, src == SrcCache)
	}
	if n.bus.Tracer.Enabled(obs.CompMem) {
		n.bus.Tracer.Instant(obs.CompMem, "bus.getm", n.id, now,
			obs.Arg{Key: "src", Val: src.String()}, obs.Arg{Key: "addr", Val: ba})
	}
	n.insert(ba, Modified).Dirty = true
	if n.bus.Sanitize {
		n.bus.sanitize(ba)
	}
	return src
}

// invalidateRemotes removes every other node's copy of ba. It is the
// upgrade path's snoop: the caller promotes its own copy to Modified right
// after, so the filter entry is collapsed to "this node alone, as owner" in
// the same step.
func (n *Node) invalidateRemotes(ba uint64) {
	if n.bus.filter != nil {
		if p := n.bus.filter.lookup(ba); p != nil {
			for m := *p & fMaskBits &^ (1 << uint(n.id)); m != 0; m &= m - 1 {
				other := n.bus.nodes[bits.TrailingZeros64(m)]
				if _, present := other.l2.Invalidate(ba); present {
					other.notifyInvalidate(ba)
					n.bus.Stats.Invalidations++
					if n.bus.Attr != nil {
						n.bus.Attr.RecordInval(ba, other.id)
					}
				}
			}
			*p = fSetOwner(1<<uint(n.id), n.id)
		}
		return
	}
	for _, other := range n.bus.nodes {
		if other == n {
			continue
		}
		if _, present := other.l2.Invalidate(ba); present {
			other.notifyInvalidate(ba)
			n.bus.Stats.Invalidations++
			if n.bus.Attr != nil {
				n.bus.Attr.RecordInval(ba, other.id)
			}
		}
	}
}

// insert allocates ba in this node's L2, returning the fresh line, writing
// back a dirty victim, and notifying the node's L1s of the eviction.
func (n *Node) insert(ba uint64, st cache.State) *cache.Line {
	l, victim, had := n.l2.Allocate(ba, st)
	if n.bus.filter != nil {
		n.bus.filterAdd(n.id, ba, st != Shared)
		if had {
			n.bus.filterEvict(n.id, victim.Tag)
		}
	}
	if !had {
		return l
	}
	if victim.State == Modified || victim.State == Owned {
		n.bus.Stats.Writebacks++
		if n.bus.Attr != nil {
			n.bus.Attr.RecordWriteback(victim.Tag, n.id)
		}
	}
	n.notifyInvalidate(victim.Tag)
	return l
}

// HasBlock reports the node's state for the block containing addr
// (StateInvalid when absent). For tests and debugging.
func (n *Node) HasBlock(addr mem.Addr) cache.State {
	if l := n.l2.Probe(n.l2.BlockAddr(addr)); l != nil {
		return l.State
	}
	return cache.StateInvalid
}
