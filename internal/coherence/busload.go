package coherence

// LoadTracker measures offered load on the bus/memory-controller path over a
// sliding window of simulated time. It is the sensor half of the loaded-
// latency memory model (internal/memsys): every data-moving bus transaction
// (GetS or GetM; upgrades move no data and are not counted) is recorded into
// a ring of fixed-width cycle buckets, and the memory system reads back the
// window's read/write transaction counts to derive channel utilization.
//
// The simulator is single-threaded per run but per-CPU clocks skew, so the
// `now` passed to consecutive transactions is not monotonic. The tracker
// stays deterministic by clamping backwards timestamps into the current
// bucket: the same transaction order always produces the same bucket
// contents, and a lagging CPU's traffic is simply charged to the window's
// leading edge.
//
// Beyond sensing, the tracker owns the model's serve-point effect: under
// load, a memory-served miss whose block also sits clean in another cache is
// converted to a cache-to-cache supply (Intervene) — real memory systems
// prefer cache intervention over a congested DRAM path, and on a saturated
// channel the arbiter increasingly grants the snoop responder. The
// conversion ramps deterministically with utilization via a fractional
// accumulator, so no randomness enters the protocol.
//
// A nil *LoadTracker on the Bus (the default) keeps the fixed-latency
// model's zero-overhead path: one pointer compare per transaction, like the
// Attr and Tracer hooks.
type LoadTracker struct {
	bucketCycles uint64
	buckets      []loadBucket
	head         int    // index of the bucket containing the leading edge
	headStart    uint64 // start cycle of the head bucket
	// Window totals, maintained incrementally as buckets rotate out.
	reads, writes uint64

	// Occupancy weights (LoadConfig).
	lineCycles, writeWeight float64
	windowCycles            float64

	// Intervention ramp state.
	ivStart, ivMax float64
	ivAcc          float64
	interventions  uint64
}

type loadBucket struct {
	reads, writes uint64
}

// LoadConfig shapes a LoadTracker. The latency curves live on the memory-
// system side (internal/memsys); this is only the bus-side sensing and
// intervention half of the loaded model.
type LoadConfig struct {
	// WindowCycles is the sliding window's span, split into Buckets.
	WindowCycles uint64
	Buckets      int
	// LineCycles is the channel occupancy of one read transfer at peak
	// bandwidth; WriteWeight scales a write's occupancy relative to it.
	LineCycles  float64
	WriteWeight float64
	// InterventionStartUtil is the utilization above which clean-copy
	// intervention begins; the converted fraction ramps linearly from 0
	// there to InterventionMaxFrac at full utilization. A start ≥ 1 (or a
	// zero max fraction) disables intervention.
	InterventionStartUtil float64
	InterventionMaxFrac   float64
}

// NewLoadTracker returns a tracker for the given configuration. It panics
// on a degenerate shape (static experiment configuration).
func NewLoadTracker(c LoadConfig) *LoadTracker {
	if c.Buckets < 2 || c.WindowCycles == 0 || c.WindowCycles/uint64(c.Buckets) == 0 {
		panic("coherence: LoadTracker window must span at least one cycle per bucket, 2+ buckets")
	}
	if c.LineCycles <= 0 || c.WriteWeight <= 0 {
		panic("coherence: LoadTracker occupancy weights must be positive")
	}
	t := &LoadTracker{
		bucketCycles: c.WindowCycles / uint64(c.Buckets),
		buckets:      make([]loadBucket, c.Buckets),
		lineCycles:   c.LineCycles,
		writeWeight:  c.WriteWeight,
		ivStart:      c.InterventionStartUtil,
		ivMax:        c.InterventionMaxFrac,
	}
	t.windowCycles = float64(t.bucketCycles) * float64(c.Buckets)
	return t
}

// Record notes one data-moving bus transaction at simulated time now.
func (t *LoadTracker) Record(now uint64, write bool) {
	if now >= t.headStart+t.bucketCycles {
		t.advance(now)
	}
	if write {
		t.buckets[t.head].writes++
		t.writes++
	} else {
		t.buckets[t.head].reads++
		t.reads++
	}
}

// advance rotates the ring forward until the head bucket contains now,
// retiring (and subtracting) the buckets that fell out of the window.
func (t *LoadTracker) advance(now uint64) {
	steps := (now - t.headStart) / t.bucketCycles
	if steps >= uint64(len(t.buckets)) {
		// The whole window elapsed without traffic; start clean.
		for i := range t.buckets {
			t.buckets[i] = loadBucket{}
		}
		t.reads, t.writes = 0, 0
		t.head = 0
		t.headStart += steps * t.bucketCycles
		return
	}
	for ; steps > 0; steps-- {
		t.head++
		if t.head == len(t.buckets) {
			t.head = 0
		}
		b := &t.buckets[t.head]
		t.reads -= b.reads
		t.writes -= b.writes
		*b = loadBucket{}
		t.headStart += t.bucketCycles
	}
}

// Counts returns the window's read (GetS) and write (GetM) transaction
// totals.
func (t *LoadTracker) Counts() (reads, writes uint64) { return t.reads, t.writes }

// WindowCycles returns the window's span in cycles.
func (t *LoadTracker) WindowCycles() uint64 {
	return t.bucketCycles * uint64(len(t.buckets))
}

// Utilization converts the window's weighted transaction occupancy into
// channel utilization. It can exceed 1 when offered load outruns the
// channel; consumers clamp as needed.
func (t *LoadTracker) Utilization() float64 {
	occ := (float64(t.reads) + t.writeWeight*float64(t.writes)) * t.lineCycles
	return occ / t.windowCycles
}

// Intervene decides whether one intervention-eligible miss — memory-served,
// but with a clean copy resident in another cache — is instead supplied
// cache-to-cache. Call it only for eligible misses: the fractional
// accumulator converts exactly interveneFrac(util) of the eligible stream,
// deterministically, with no randomness.
func (t *LoadTracker) Intervene() bool {
	if t.ivMax <= 0 {
		return false
	}
	u := t.Utilization()
	if u <= t.ivStart || t.ivStart >= 1 {
		return false
	}
	f := (u - t.ivStart) / (1 - t.ivStart) * t.ivMax
	if f > t.ivMax {
		f = t.ivMax
	}
	t.ivAcc += f
	if t.ivAcc >= 1 {
		t.ivAcc--
		t.interventions++
		return true
	}
	return false
}

// Interventions returns the number of misses converted to cache-to-cache
// supply since construction or the last ResetInterventions.
func (t *LoadTracker) Interventions() uint64 { return t.interventions }

// ResetInterventions zeroes the intervention counter (a statistic) while
// leaving the window and ramp accumulator warm (machine state).
func (t *LoadTracker) ResetInterventions() { t.interventions = 0 }
