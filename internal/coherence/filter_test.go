package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// The snoop-filter equivalence suite: a filtered bus and a brute-force bus
// are driven with identical randomized traffic and must agree on every
// observable — transaction counters, per-line communication profile, C2C
// timeline, invalidation callbacks, and the final state/dirty bit of every
// block in every cache. The duplicate-tag filter is an optimization, never
// a behavior change.

type busPair struct {
	filtered, brute *Bus
	fNodes, bNodes  []*Node
	fInv, bInv      []int // invalidation-callback counts per node
}

func newBusPair(t *testing.T, proto Protocol, nodes int, geo cache.Config) *busPair {
	t.Helper()
	if bruteSnoopEnv {
		t.Skip("COHERENCE_BRUTE_SNOOP=1: both buses would be brute-force, nothing to compare")
	}
	p := &busPair{
		filtered: NewBus(), brute: NewBus(),
		fInv: make([]int, nodes), bInv: make([]int, nodes),
	}
	p.filtered.Protocol = proto
	p.brute.Protocol = proto
	p.brute.DisableSnoopFilter()
	p.filtered.EnableProfile()
	p.brute.EnableProfile()
	p.filtered.EnableTimeline(1000)
	p.brute.EnableTimeline(1000)
	for i := 0; i < nodes; i++ {
		i := i
		p.fNodes = append(p.fNodes, p.filtered.AddNode(cache.New(geo), func(ba uint64) { p.fInv[i]++ }))
		p.bNodes = append(p.bNodes, p.brute.AddNode(cache.New(geo), func(ba uint64) { p.bInv[i]++ }))
	}
	if !p.filtered.SnoopFilterEnabled() {
		t.Fatal("filtered bus did not enable its snoop filter")
	}
	if p.brute.SnoopFilterEnabled() {
		t.Fatal("DisableSnoopFilter left the filter on")
	}
	return p
}

// run drives both buses with the same seeded traffic: a mix of mostly-read
// and write-heavy blocks across a working set several times the cache size,
// so the stream exercises GetS, GetM, upgrades, evictions of all states,
// and wide read-sharing.
func (p *busPair) run(t *testing.T, seed uint64, accesses int) {
	t.Helper()
	rng := simrand.New(seed)
	nodes := len(p.fNodes)
	geo := p.fNodes[0].l2.Config()
	blocks := uint64(geo.SizeBytes) / uint64(geo.BlockBytes) * 3
	for i := 0; i < accesses; i++ {
		n := rng.Intn(nodes)
		ba := uint64(rng.Int63n(int64(blocks))) * uint64(geo.BlockBytes)
		write := rng.Bool(0.3)
		now := uint64(i)
		if write {
			fs := p.fNodes[n].Write(mem.Addr(ba), now)
			bs := p.bNodes[n].Write(mem.Addr(ba), now)
			if fs != bs {
				t.Fatalf("access %d: Write(%#x) by node %d: filtered src %v, brute src %v", i, ba, n, fs, bs)
			}
		} else {
			fs := p.fNodes[n].Read(mem.Addr(ba), now)
			bs := p.bNodes[n].Read(mem.Addr(ba), now)
			if fs != bs {
				t.Fatalf("access %d: Read(%#x) by node %d: filtered src %v, brute src %v", i, ba, n, fs, bs)
			}
		}
	}
}

func sameShareDist(a, b *stats.ShareDist) bool {
	if a.Keys() != b.Keys() || a.Total() != b.Total() {
		return false
	}
	ac, bc := a.SortedCounts(), b.SortedCounts()
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

func (p *busPair) verify(t *testing.T) {
	t.Helper()
	if p.filtered.Stats != p.brute.Stats {
		t.Errorf("stats diverge:\nfiltered %+v\nbrute    %+v", p.filtered.Stats, p.brute.Stats)
	}
	if !sameShareDist(p.filtered.Profile(), p.brute.Profile()) {
		t.Error("per-line communication profiles diverge")
	}
	fb, bb := p.filtered.Timeline().Bins(), p.brute.Timeline().Bins()
	if len(fb) != len(bb) {
		t.Fatalf("timeline bin counts diverge: %d vs %d", len(fb), len(bb))
	}
	for i := range fb {
		if fb[i] != bb[i] {
			t.Errorf("timeline bin %d diverges: %v vs %v", i, fb[i], bb[i])
		}
	}
	for i := range p.fInv {
		if p.fInv[i] != p.bInv[i] {
			t.Errorf("node %d invalidation callbacks diverge: %d vs %d", i, p.fInv[i], p.bInv[i])
		}
	}
	// Final contents: every block present in one bus's node must be present
	// in the other's with the same state and dirty bit.
	for i := range p.fNodes {
		fl := map[uint64]cache.Line{}
		p.fNodes[i].l2.VisitLines(func(l *cache.Line) { fl[l.Tag] = *l })
		n := 0
		p.bNodes[i].l2.VisitLines(func(l *cache.Line) {
			n++
			got, ok := fl[l.Tag]
			if !ok {
				t.Errorf("node %d: block %#x in brute cache only", i, l.Tag)
				return
			}
			if got.State != l.State || got.Dirty != l.Dirty {
				t.Errorf("node %d block %#x: filtered (%s dirty=%v) vs brute (%s dirty=%v)",
					i, l.Tag, StateName(got.State), got.Dirty, StateName(l.State), l.Dirty)
			}
		})
		if n != len(fl) {
			t.Errorf("node %d: filtered cache holds %d blocks, brute holds %d", i, len(fl), n)
		}
	}
}

func TestSnoopFilterEquivalence(t *testing.T) {
	geos := []cache.Config{
		{Name: "L2", SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 64},
		{Name: "L2", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 32},
	}
	for _, proto := range []Protocol{MOSI, MSI, MESI} {
		for _, nodes := range []int{2, 4, 8} {
			for gi, geo := range geos {
				t.Run(fmt.Sprintf("%v/%dnodes/geo%d", proto, nodes, gi), func(t *testing.T) {
					p := newBusPair(t, proto, nodes, geo)
					p.run(t, uint64(0xF117E4+nodes+gi), 60000)
					p.verify(t)
				})
			}
		}
	}
}

// TestSnoopFilterRebuild checks that a bus whose caches were mutated behind
// the filter's back can resynchronize with RebuildSnoopFilter.
func TestSnoopFilterRebuild(t *testing.T) {
	if bruteSnoopEnv {
		t.Skip("COHERENCE_BRUTE_SNOOP=1 disables the filter under test")
	}
	b := NewBus()
	geo := cache.Config{Name: "L2", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 64}
	a := b.AddNode(cache.New(geo), nil)
	c := b.AddNode(cache.New(geo), nil)
	a.Write(0x1000, 0)
	// Tamper: plant a copy directly, bypassing the protocol and filter.
	c.l2.Allocate(c.l2.BlockAddr(0x2000), Modified)
	if l := c.l2.Probe(c.l2.BlockAddr(0x2000)); l != nil {
		l.Dirty = true
	}
	b.RebuildSnoopFilter()
	b.EnableSanitizer() // cross-checks filter vs probes on every transaction
	if src := a.Read(0x2000, 1); src != SrcCache {
		t.Fatalf("after rebuild, read of planted dirty block: src %v, want %v", src, SrcCache)
	}
}
