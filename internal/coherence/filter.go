package coherence

import (
	"fmt"
	"os"

	"repro/internal/cache"
)

// Duplicate-tag snoop filter.
//
// The real E6000 keeps a duplicate copy of every L2's tag array next to the
// bus so a snoop can be answered without disturbing (or even reaching) the
// processors' caches. The simulator models the same idea as one bus-side
// index from block address to a packed (sharer bitmask, owner) pair:
//
//   - the bitmask records which nodes hold the block, so a GetM or Upgrade
//     invalidates only actual sharers instead of probing all P nodes;
//   - the owner field records the one node (if any) holding the block
//     Modified, Owned, or Exclusive. A GetS snoop only ever changes the
//     owner's copy — Shared copies are unaffected — so a read miss probes at
//     most one remote cache no matter how widely the block is shared. That
//     matters: instruction blocks are Shared by every node, and a GetS that
//     probed each of them would cost exactly the O(P) scan the filter is
//     meant to avoid.
//
// The index is maintained on the only events that change L2 residency or
// ownership (miss fill, the eviction that fill causes, invalidation, and
// the ownership up/downgrades of the protocol), so it is exact, not
// conservative. Statistics stay bit-identical to the brute-force scan
// because sharers are visited in ascending node order — the same order the
// scan used — and because a GetS leaves Shared copies untouched either way.
//
// The brute-force scan is kept behind a flag: COHERENCE_BRUTE_SNOOP=1
// disables the filter process-wide, and (*Bus).DisableSnoopFilter disables
// it per bus — the snoop-filter equivalence test drives both paths with
// identical traffic and asserts identical results. With COHERENCE_SANITIZE=1
// the sanitizer cross-checks mask and owner against a full probe of every
// node after every transaction.
//
// The packed value holds a 32-bit mask, so the filter serves buses of up to
// 32 nodes; wider buses (the paper's machine has 16 processors) fall back
// to the brute-force scan. Single-node buses never build the filter at all:
// with no remote caches there is nothing to snoop.

// bruteSnoopEnv caches the COHERENCE_BRUTE_SNOOP environment switch.
var bruteSnoopEnv = os.Getenv("COHERENCE_BRUTE_SNOOP") == "1"

// maxFilterNodes is the widest bus the packed sharer mask can describe.
const maxFilterNodes = 32

// Packed filter value: bits 0-31 sharer mask, bits 32-38 owner id plus one
// (zero = no owner). A zero value means "no node holds the block" and doubles
// as the table's empty-slot sentinel.
const (
	fMaskBits   = 0xFFFFFFFF
	fOwnerShift = 32
)

func fOwner(v uint64) int { return int(v>>fOwnerShift) - 1 } // -1 = none

func fSetOwner(v uint64, id int) uint64 {
	return v&fMaskBits | uint64(id+1)<<fOwnerShift
}

func fClearOwner(v uint64) uint64 { return v & fMaskBits }

// DisableSnoopFilter reverts this bus to the brute-force snoop scan that
// probes every node on every transaction. Safe to call at any time; the
// filter index is dropped, not merely bypassed.
func (b *Bus) DisableSnoopFilter() {
	b.noFilter = true
	if b.filter != nil {
		b.filter = nil
		b.noteFilterFallback("DisableSnoopFilter call")
	}
}

// SnoopFilterEnabled reports whether the duplicate-tag filter is active.
func (b *Bus) SnoopFilterEnabled() bool { return b.filter != nil }

// RebuildSnoopFilter reconstructs the filter index from the caches' current
// contents. AddNode uses it when the second node attaches (a one-node bus
// has nothing to snoop, so the filter is built lazily); tests that mutate a
// node's L2 directly can call it to resynchronize.
func (b *Bus) RebuildSnoopFilter() {
	if b.noFilter || len(b.nodes) < 2 || len(b.nodes) > maxFilterNodes {
		return
	}
	b.filter = newFilterTable()
	for _, n := range b.nodes {
		b.filterScan(n)
	}
}

// filterScan folds one node's current L2 contents into the filter index.
func (b *Bus) filterScan(n *Node) {
	id := n.id
	n.l2.VisitLines(func(l *cache.Line) {
		p := b.filter.ref(l.Tag)
		v := *p | 1<<uint(id)
		if l.State == Modified || l.State == Owned || l.State == Exclusive {
			v = fSetOwner(v, id)
		}
		*p = v
	})
}

// filterAdd records that node id filled block ba; owning marks it the
// block's M/E holder.
func (b *Bus) filterAdd(id int, ba uint64, owning bool) {
	p := b.filter.ref(ba)
	v := *p | 1<<uint(id)
	if owning {
		v = fSetOwner(v, id)
	}
	*p = v
}

// filterEvict records that node id lost its copy of block ba, clearing the
// owner field if that node was the owner.
func (b *Bus) filterEvict(id int, ba uint64) {
	p := b.filter.lookup(ba)
	if p == nil {
		return
	}
	v := *p &^ (1 << uint(id))
	if fOwner(v) == id {
		v = fClearOwner(v)
	}
	if v&fMaskBits == 0 {
		b.filter.del(ba)
		return
	}
	*p = v
}

// checkFilter compares the filter's view of ba against a fresh probe of
// every node (the sanitizer's brute-force scan) and panics on the first
// mismatch. probedMask and probedOwner are what the sanitizer just
// gathered; probedOwner is -1 when no node holds the block M/O/E.
func (b *Bus) checkFilter(ba uint64, probedMask uint64, probedOwner int, copies any) {
	if b.filter == nil {
		return
	}
	var got uint64
	if p := b.filter.lookup(ba); p != nil {
		got = *p
	}
	want := probedMask
	if probedOwner >= 0 {
		want = fSetOwner(want, probedOwner)
	}
	if got != want {
		b.sanitizeFail(ba, copies, fmt.Sprintf(
			"duplicate-tag snoop filter desynced: filter (mask %#x, owner %d) != probed (mask %#x, owner %d)",
			got&fMaskBits, fOwner(got), probedMask, probedOwner))
	}
}

// filterTable is a purpose-built open-addressing hash table from block
// address to packed filter value: linear probing, power-of-two capacity,
// backward-shift deletion. It exists because the filter sits on the bus's
// per-transaction path, where a general map's hashing and bucket machinery
// is measurable; block addresses hash well with one Fibonacci multiply.
// An empty slot is val == 0; block address zero is carried out-of-line.
type filterTable struct {
	slots   []fslot
	mask    uint64
	n       int
	zeroVal uint64 // value for block address 0 (0 = absent)
}

type fslot struct {
	key, val uint64
}

func newFilterTable() *filterTable {
	// Sized for a few L2s' worth of resident blocks up front; multi-node
	// runs reach hundreds of thousands of entries anyway, so starting tiny
	// only buys a cascade of rehashes.
	const initial = 1 << 16
	return &filterTable{slots: make([]fslot, initial), mask: initial - 1}
}

func (t *filterTable) hash(key uint64) uint64 {
	// Block addresses have at least 6 trailing zero bits; the Fibonacci
	// multiply spreads the informative bits into the table's index range.
	return (key >> 6 * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// lookup returns a pointer to key's value, or nil when absent. The pointer
// is valid only until the next ref/del call.
func (t *filterTable) lookup(key uint64) *uint64 {
	if key == 0 {
		if t.zeroVal == 0 {
			return nil
		}
		return &t.zeroVal
	}
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if s.val == 0 {
			return nil
		}
		if s.key == key {
			return &s.val
		}
		i = (i + 1) & t.mask
	}
}

// ref returns a pointer to key's value, claiming a slot with a zero value
// if absent; the caller must immediately store a nonzero value through it.
// The pointer is valid only until the next ref/del call.
func (t *filterTable) ref(key uint64) *uint64 {
	if key == 0 {
		return &t.zeroVal
	}
	if t.n >= len(t.slots)*3/4 {
		t.grow()
	}
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if s.val == 0 {
			s.key = key
			t.n++
			return &s.val
		}
		if s.key == key {
			return &s.val
		}
		i = (i + 1) & t.mask
	}
}

// del removes key, keeping the probe chains intact by re-inserting the
// cluster that follows the vacated slot.
func (t *filterTable) del(key uint64) {
	if key == 0 {
		t.zeroVal = 0
		return
	}
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if s.val == 0 {
			return
		}
		if s.key == key {
			break
		}
		i = (i + 1) & t.mask
	}
	t.slots[i] = fslot{}
	t.n--
	for j := (i + 1) & t.mask; t.slots[j].val != 0; j = (j + 1) & t.mask {
		e := t.slots[j]
		t.slots[j] = fslot{}
		t.n--
		t.reinsert(e)
	}
}

func (t *filterTable) reinsert(e fslot) {
	i := t.hash(e.key)
	for t.slots[i].val != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = e
	t.n++
}

func (t *filterTable) grow() {
	old := t.slots
	t.slots = make([]fslot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	t.n = 0
	for _, s := range old {
		if s.val != 0 {
			t.reinsert(s)
		}
	}
}
