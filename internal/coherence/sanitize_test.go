package coherence

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/simrand"
)

// TestSanitizerCleanUnderRandomTraffic hammers each protocol with random
// coherent traffic from several nodes with the sanitizer on: every
// transaction re-checks the cross-cache invariants, so a pass means the
// protocol held them for the whole run.
func TestSanitizerCleanUnderRandomTraffic(t *testing.T) {
	for _, proto := range []Protocol{MOSI, MSI, MESI} {
		t.Run(proto.String(), func(t *testing.T) {
			b := NewBus()
			b.Protocol = proto
			b.EnableSanitizer()
			var nodes []*Node
			for i := 0; i < 4; i++ {
				nodes = append(nodes, b.AddNode(cache.New(cfg()), nil))
			}
			rng := simrand.New(uint64(7 + proto))
			// A small hot set forces heavy sharing, upgrades, and evictions.
			for i := 0; i < 20_000; i++ {
				n := nodes[rng.Intn(len(nodes))]
				addr := uint64(rng.Intn(64)) * 64 * 7 // overlapping sets
				if rng.Bool(0.4) {
					n.Write(addr, uint64(i))
				} else {
					n.Read(addr, uint64(i))
				}
			}
			if b.Stats.C2CTransfers == 0 || b.Stats.Upgrades == 0 {
				t.Fatalf("traffic too tame to exercise the protocol: %+v", b.Stats)
			}
		})
	}
}

// TestSanitizerCatchesTampering corrupts the state directly — two Modified
// copies of one block — and checks the sanitizer panics with a diagnostic
// rather than letting the broken state propagate.
func TestSanitizerCatchesTampering(t *testing.T) {
	b, a, c := twoNodes()
	b.EnableSanitizer()
	a.Write(0x1000, 0)

	// Simulate a protocol bug: a second Modified copy appears without the
	// first being invalidated.
	c.l2.Allocate(c.l2.BlockAddr(0x1000), Modified)
	if l := c.l2.Probe(c.l2.BlockAddr(0x1000)); l != nil {
		l.Dirty = true
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sanitizer did not catch a double-Modified block")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	// Any transaction touching the block trips the check.
	a.Read(0x1000, 1)
}

// TestSanitizerOffByDefault checks the fast path stays fast: no Sanitize
// flag, no checks — the tampered state above goes unnoticed.
func TestSanitizerOffByDefault(t *testing.T) {
	if sanitizeEnv {
		t.Skip("COHERENCE_SANITIZE=1 set in the environment")
	}
	b, a, c := twoNodes()
	if b.Sanitize {
		t.Fatal("sanitizer on without the env switch")
	}
	a.Write(0x1000, 0)
	c.l2.Allocate(c.l2.BlockAddr(0x1000), Modified)
	a.Read(0x1000, 1) // must not panic
}
