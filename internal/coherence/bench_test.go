package coherence

import (
	"testing"

	"repro/internal/cache"
)

func benchBus(nodes int) (*Bus, []*Node) {
	b := NewBus()
	var out []*Node
	for i := 0; i < nodes; i++ {
		out = append(out, b.AddNode(cache.New(cache.Config{
			Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		}), nil))
	}
	return b, out
}

func BenchmarkReadLocalHit(b *testing.B) {
	_, nodes := benchBus(16)
	nodes[0].Read(0x1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].Read(0x1000, uint64(i))
	}
}

func BenchmarkMigratoryWrite16Nodes(b *testing.B) {
	_, nodes := benchBus(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%16].Write(0x40, uint64(i))
	}
}
