package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func benchBus(nodes int) (*Bus, []*Node) {
	b := NewBus()
	var out []*Node
	for i := 0; i < nodes; i++ {
		out = append(out, b.AddNode(cache.New(cache.Config{
			Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		}), nil))
	}
	return b, out
}

func BenchmarkReadLocalHit(b *testing.B) {
	_, nodes := benchBus(16)
	nodes[0].Read(0x1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].Read(0x1000, uint64(i))
	}
}

func BenchmarkMigratoryWrite16Nodes(b *testing.B) {
	_, nodes := benchBus(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%16].Write(0x40, uint64(i))
	}
}

// BenchmarkReadSharedGetS16Nodes is the read-sharing snoop stress: 16 nodes
// walk a working set twice each L2's capacity, so every read is a GetS onto
// a block up to 15 other caches hold Shared — the dense-sharer case where
// the duplicate-tag filter's owner tracking pays (a brute-force bus probes
// every sharer; the filter probes none, since Shared copies don't react).
func BenchmarkReadSharedGetS16Nodes(b *testing.B) {
	_, nodes := benchBus(16)
	const blocks = 1 << 15 // 2 MB of 64 B blocks vs 1 MB L2s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba := uint64(i/16%blocks) * 64
		nodes[i%16].Read(mem.Addr(ba), uint64(i))
	}
}
