package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/simrand"
)

func testRig(t *testing.T) (*Core, *memsys.Hierarchy) {
	t.Helper()
	mcfg := memsys.DefaultConfig(1)
	mcfg.L1I = cache.Config{Name: "L1I", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64}
	mcfg.L1D = cache.Config{Name: "L1D", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64}
	mcfg.L2 = cache.Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 4, BlockBytes: 64}
	h := memsys.New(mcfg)
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	layout.Add("app", 64<<10, false, ifetch.DefaultProfile())
	gen := ifetch.NewGen(layout, simrand.New(7))
	return NewCore(DefaultConfig(), 0, h, gen), h
}

func TestExecInstrChargesBaseCPI(t *testing.T) {
	core, _ := testRig(t)
	// Warm the I-cache so later segments have no fetch stalls.
	for i := 0; i < 50; i++ {
		core.ExecInstr(0, 10000, 0)
	}
	core.ResetCounters()
	cy := core.ExecInstr(0, 10000, 0)
	if core.Counters.Instructions != 10000 {
		t.Fatalf("instructions = %d", core.Counters.Instructions)
	}
	base := core.Counters.BaseCycles
	if base < 9990 || base > 10010 {
		t.Fatalf("base cycles = %d for BaseCPI=1", base)
	}
	if cy != base+core.Counters.IStallCycles {
		t.Fatalf("returned cycles %d != accounted %d", cy, base+core.Counters.IStallCycles)
	}
}

func TestFractionalBaseCPIAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BaseCPI = 1.25
	mcfg := memsys.DefaultConfig(1)
	h := memsys.New(mcfg)
	layout := ifetch.NewCodeLayout(mem.NewAddrSpace())
	layout.Add("app", 8<<10, false, ifetch.Profile{})
	core := NewCore(cfg, 0, h, ifetch.NewGen(layout, simrand.New(1)))
	for i := 0; i < 1000; i++ {
		core.ExecInstr(0, 1, 0)
	}
	// 1000 instructions at 1.25 CPI = 1250 base cycles (carry preserved).
	if core.Counters.BaseCycles != 1250 {
		t.Fatalf("base cycles = %d, want 1250", core.Counters.BaseCycles)
	}
}

func TestColdLoadChargesMemoryStall(t *testing.T) {
	core, _ := testRig(t)
	stall := core.Load(0x900000, 8, 0)
	if stall != memsys.DefaultLatencies().Memory {
		t.Fatalf("cold load stall = %d", stall)
	}
	if core.Counters.DStallMem != stall {
		t.Fatalf("not attributed to memory: %+v", core.Counters)
	}
	if core.Load(0x900000, 8, 100) != 0 {
		t.Fatal("warm load stalled")
	}
}

func TestMultiLineLoad(t *testing.T) {
	core, _ := testRig(t)
	stall := core.Load(0x900000, 256, 0) // 4 lines
	if stall != 4*memsys.DefaultLatencies().Memory {
		t.Fatalf("4-line cold load stall = %d", stall)
	}
}

func TestStoreBufferHidesLatencyUntilFull(t *testing.T) {
	core, _ := testRig(t)
	// A burst of isolated stores: the first 8 fill the buffer without
	// stalling; later ones must wait for drains.
	var stalls []uint64
	for i := 0; i < 16; i++ {
		stalls = append(stalls, core.Store(uint64(0x900000+i*4096), 8, 0))
	}
	for i := 0; i < 8; i++ {
		if stalls[i] != 0 {
			t.Fatalf("store %d stalled %d cycles with empty buffer", i, stalls[i])
		}
	}
	if core.Counters.DStallStoreBuf == 0 {
		t.Fatal("full store buffer never stalled")
	}
}

func TestStoreBufferDrainsOverTime(t *testing.T) {
	core, _ := testRig(t)
	for i := 0; i < 8; i++ {
		core.Store(uint64(0x900000+i*4096), 8, 0)
	}
	// Much later, the buffer has drained: no stall.
	if s := core.Store(0x980000, 8, 1_000_000); s != 0 {
		t.Fatalf("store after drain stalled %d", s)
	}
}

func TestRAWHazard(t *testing.T) {
	core, _ := testRig(t)
	// Warm the line first so the load stall isolates the RAW penalty.
	core.Load(0x900000, 8, 0)
	core.Store(0x900000, 8, 1000)
	stall := core.Load(0x900000, 8, 1002) // within RAW window
	if stall != DefaultConfig().RAWPenalty {
		t.Fatalf("RAW stall = %d, want %d", stall, DefaultConfig().RAWPenalty)
	}
	if core.Counters.DStallRAW == 0 {
		t.Fatal("RAW not attributed")
	}
	// Outside the window: no penalty.
	core.Store(0x900000, 8, 10000)
	if stall := core.Load(0x900000, 8, 10000+DefaultConfig().RAWWindow+10); stall != 0 {
		t.Fatalf("stale RAW penalty: %d", stall)
	}
}

func TestCountersAggregate(t *testing.T) {
	var a, b Counters
	a.Instructions, a.BaseCycles, a.DStallMem = 100, 110, 75
	b.Instructions, b.IStallCycles, b.DStallC2C = 50, 20, 105
	a.Add(&b)
	if a.Instructions != 150 || a.Total() != 110+20+75+105 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.CPI() != float64(310)/150 {
		t.Fatalf("CPI = %v", a.CPI())
	}
	var empty Counters
	if empty.CPI() != 0 {
		t.Fatal("empty CPI guard failed")
	}
}

func TestLoadZeroSize(t *testing.T) {
	core, _ := testRig(t)
	if core.Load(0x900000, 0, 0) != 0 || core.Store(0x900000, 0, 0) != 0 {
		t.Fatal("zero-size access consumed cycles")
	}
}

// TestCPIDecompositionShape runs a mixed workload and checks the high-level
// property the paper's Figures 6/7 rely on: total cycles decompose exactly
// into the named categories.
func TestCPIDecompositionShape(t *testing.T) {
	core, _ := testRig(t)
	rng := simrand.New(9)
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		now += core.ExecInstr(0, uint64(10+rng.Intn(50)), now)
		a := 0x900000 + uint64(rng.Intn(1<<18))&^7
		if rng.Bool(0.3) {
			now += core.Store(a, 8, now)
		} else {
			now += core.Load(a, 8, now)
		}
	}
	c := &core.Counters
	if c.Total() != c.BaseCycles+c.IStallCycles+c.DStall() {
		t.Fatal("cycle decomposition does not sum")
	}
	if c.CPI() <= 1.0 {
		t.Fatalf("CPI %v implausibly low for miss-heavy mix", c.CPI())
	}
	if c.DStallMem == 0 || c.DStallL2Hit == 0 {
		t.Fatalf("decomposition missing categories: %+v", c)
	}
}
