// Package cpu models the timing of an in-order, 4-wide UltraSPARC-II-class
// processor at the fidelity the paper's measurements need: a base
// (non-memory) CPI for issue, dependency and branch effects; full exposure
// of load stalls (in-order cores block on loads); an 8-entry store buffer
// that hides store latency until it fills; and a read-after-write hazard
// penalty for loads that consume a just-stored line.
//
// Every cycle a core spends is attributed to one of the paper's CPI
// categories (Figure 6: other / instruction stall / data stall) and the
// data stall is further decomposed (Figure 7: store buffer / RAW / L2 hit /
// cache-to-cache / memory).
package cpu

import (
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/obs"
)

// Config parameterizes one core's timing.
type Config struct {
	// BaseCPI is the non-memory cycles per instruction (issue limits,
	// dependencies, branches). The UltraSPARC II is 4-wide in-order;
	// commercial Java code sustains nowhere near 4 IPC even without cache
	// misses, so the realistic base is near 1.
	BaseCPI float64
	// StoreBufEntries is the store buffer depth (8 on UltraSPARC II).
	StoreBufEntries int
	// StoreDrainCycles is the minimum spacing between store completions
	// (L2 write port throughput).
	StoreDrainCycles uint64
	// RAWPenalty is charged when a load hits a line stored within
	// RAWWindow cycles (read-after-write hazard, §4.2).
	RAWPenalty uint64
	RAWWindow  uint64
}

// DefaultConfig returns UltraSPARC-II-flavored timing.
func DefaultConfig() Config {
	return Config{
		BaseCPI:          1.0,
		StoreBufEntries:  8,
		StoreDrainCycles: 4,
		RAWPenalty:       6,
		RAWWindow:        24,
	}
}

// Counters attributes a core's cycles to the paper's categories.
type Counters struct {
	Instructions uint64

	BaseCycles   uint64 // "other" in Figure 6
	IStallCycles uint64

	DStallL2Hit    uint64
	DStallC2C      uint64
	DStallMem      uint64
	DStallStoreBuf uint64
	DStallRAW      uint64
	// DStallTLB is software TLB-refill time (zero under ISM, §6).
	DStallTLB uint64
}

// DStall returns total data-stall cycles.
func (c *Counters) DStall() uint64 {
	return c.DStallL2Hit + c.DStallC2C + c.DStallMem + c.DStallStoreBuf + c.DStallRAW + c.DStallTLB
}

// Total returns total busy cycles.
func (c *Counters) Total() uint64 { return c.BaseCycles + c.IStallCycles + c.DStall() }

// CPI returns overall cycles per instruction, or 0 with no instructions.
func (c *Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Total()) / float64(c.Instructions)
}

// Add accumulates another counter set (for aggregating across cores).
func (c *Counters) Add(o *Counters) {
	c.Instructions += o.Instructions
	c.BaseCycles += o.BaseCycles
	c.IStallCycles += o.IStallCycles
	c.DStallL2Hit += o.DStallL2Hit
	c.DStallC2C += o.DStallC2C
	c.DStallMem += o.DStallMem
	c.DStallStoreBuf += o.DStallStoreBuf
	c.DStallRAW += o.DStallRAW
	c.DStallTLB += o.DStallTLB
}

// Core is one processor's timing state. It is bound to a CPU slot of a
// memsys.Hierarchy and owns that slot's instruction-fetch generator.
type Core struct {
	cfg  Config
	id   int
	hier *memsys.Hierarchy
	gen  *ifetch.Gen

	// Store buffer: completion times of in-flight stores, oldest first, as
	// a fixed ring of StoreBufEntries slots (allocated once per core; the
	// old slice-shift version reallocated the backing array millions of
	// times per run).
	sb        []uint64
	sbHead    int
	sbLen     int
	lastDrain uint64

	// RAW tracking.
	lastStoreLine uint64
	lastStoreTime uint64
	haveStore     bool

	baseCarry float64

	Counters Counters

	// Prof, when non-nil, receives every cycle this core charges,
	// attributed to (component × stall category) — the same charge sites
	// that feed Counters, so a profile and the Figure 6/7 CPI breakdown
	// always agree exactly. Data references are attributed to the component
	// of the most recent instruction segment (curComp), the way hardware
	// counters attribute memory stalls to the running code.
	Prof    *obs.Profiler
	curComp mem.ComponentID
}

// NewCore binds a core to hierarchy slot id with its own fetch generator.
func NewCore(cfg Config, id int, hier *memsys.Hierarchy, gen *ifetch.Gen) *Core {
	if cfg.StoreBufEntries <= 0 {
		panic("cpu: store buffer must have at least one entry")
	}
	return &Core{cfg: cfg, id: id, hier: hier, gen: gen, sb: make([]uint64, cfg.StoreBufEntries)}
}

// ID returns the core's CPU slot.
func (c *Core) ID() int { return c.id }

// ExecInstr executes an n-instruction segment of the given component at
// simulated time now, returning the cycles consumed (base + fetch stalls).
func (c *Core) ExecInstr(comp mem.ComponentID, n uint64, now uint64) uint64 {
	if n == 0 {
		return 0
	}
	var istall uint64
	blocks := ifetch.BlocksFor(n)
	for i := uint64(0); i < blocks; {
		// One generator call per sequential run (mean ~4 blocks) instead
		// of per block; the addresses and generator state are identical.
		addr, cnt := c.gen.NextRun(comp, blocks-i)
		for j := uint64(0); j < cnt; j++ {
			r := c.hier.Fetch(c.id, addr, now+istall)
			istall += r.Stall
			addr += ifetch.BlockBytes
		}
		i += cnt
	}
	base := float64(n)*c.cfg.BaseCPI + c.baseCarry
	baseCycles := uint64(base)
	c.baseCarry = base - float64(baseCycles)

	c.Counters.Instructions += n
	c.Counters.BaseCycles += baseCycles
	c.Counters.IStallCycles += istall
	c.curComp = comp
	if c.Prof != nil {
		c.Prof.AddCycles(int(comp), obs.CatBase, baseCycles)
		c.Prof.AddCycles(int(comp), obs.CatIStall, istall)
	}
	return baseCycles + istall
}

// Load performs a data read of [addr, addr+size), returning stall cycles.
// In-order cores expose the full load latency.
func (c *Core) Load(addr mem.Addr, size uint64, now uint64) uint64 {
	if size == 0 {
		return 0
	}
	var stall uint64
	first := mem.Line(addr)
	last := mem.Line(addr + size - 1)
	for la := first; la <= last; la += mem.LineBytes {
		r := c.hier.Read(c.id, la, now+stall)
		stall += r.Stall + r.TLBStall
		c.Counters.DStallTLB += r.TLBStall
		switch r.Class {
		case memsys.StallL2Hit:
			c.Counters.DStallL2Hit += r.Stall
		case memsys.StallC2C:
			c.Counters.DStallC2C += r.Stall
		case memsys.StallMem:
			c.Counters.DStallMem += r.Stall
		}
		if c.haveStore && la == c.lastStoreLine && now+stall-c.lastStoreTime < c.cfg.RAWWindow {
			stall += c.cfg.RAWPenalty
			c.Counters.DStallRAW += c.cfg.RAWPenalty
			if c.Prof != nil {
				c.Prof.AddCycles(int(c.curComp), obs.CatDRAW, c.cfg.RAWPenalty)
			}
		}
		if c.Prof != nil {
			c.Prof.AddCycles(int(c.curComp), obs.CatDTLB, r.TLBStall)
			c.Prof.AddCycles(int(c.curComp), stallCat(r.Class), r.Stall)
		}
	}
	return stall
}

// stallCat maps a memory-system stall class to its profiler category.
func stallCat(cl memsys.StallClass) obs.Cat {
	switch cl {
	case memsys.StallL2Hit:
		return obs.CatDL2Hit
	case memsys.StallC2C:
		return obs.CatDC2C
	case memsys.StallMem:
		return obs.CatDMem
	default:
		return obs.CatDL2Hit // unreachable: zero-stall classes carry no cycles
	}
}

// Store performs a data write of [addr, addr+size) through the store
// buffer, returning the cycles the processor actually stalls (only when the
// buffer is full).
func (c *Core) Store(addr mem.Addr, size uint64, now uint64) uint64 {
	if size == 0 {
		return 0
	}
	var stall uint64
	first := mem.Line(addr)
	last := mem.Line(addr + size - 1)
	for la := first; la <= last; la += mem.LineBytes {
		t := now + stall
		n := len(c.sb)
		// Retire completed stores.
		for c.sbLen > 0 && c.sb[c.sbHead] <= t {
			c.sbHead++
			if c.sbHead == n {
				c.sbHead = 0
			}
			c.sbLen--
		}
		// A full buffer stalls until the oldest store completes.
		if c.sbLen >= c.cfg.StoreBufEntries {
			wait := c.sb[c.sbHead] - t
			stall += wait
			t += wait
			c.sbHead++
			if c.sbHead == n {
				c.sbHead = 0
			}
			c.sbLen--
			c.Counters.DStallStoreBuf += wait
			if c.Prof != nil {
				c.Prof.AddCycles(int(c.curComp), obs.CatDStoreBuf, wait)
			}
		}
		r := c.hier.Write(c.id, la, t)
		// Translation stalls the pipeline before the store can buffer.
		if r.TLBStall > 0 {
			stall += r.TLBStall
			t += r.TLBStall
			c.Counters.DStallTLB += r.TLBStall
			if c.Prof != nil {
				c.Prof.AddCycles(int(c.curComp), obs.CatDTLB, r.TLBStall)
			}
		}
		// The store drains in the background; its completion respects both
		// its own latency and the drain port's throughput.
		done := t + r.Stall
		if min := c.lastDrain + c.cfg.StoreDrainCycles; done < min {
			done = min
		}
		c.lastDrain = done
		slot := c.sbHead + c.sbLen
		if slot >= n {
			slot -= n
		}
		c.sb[slot] = done
		c.sbLen++

		c.lastStoreLine = la
		c.lastStoreTime = t
		c.haveStore = true
	}
	return stall
}

// DrainStoreBuffer empties the store buffer (used at context switches).
func (c *Core) DrainStoreBuffer() { c.sbHead, c.sbLen = 0, 0 }

// ResetCounters zeroes the CPI accounting (for warm-up exclusion).
func (c *Core) ResetCounters() { c.Counters = Counters{} }
