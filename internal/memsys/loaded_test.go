package memsys

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestMemModelStringAndParse(t *testing.T) {
	for _, c := range []struct {
		m MemModel
		s string
	}{{MemFixed, "fixed"}, {MemLoaded, "loaded"}} {
		if c.m.String() != c.s {
			t.Fatalf("%d.String() = %q", c.m, c.m.String())
		}
		got, err := ParseMemModel(c.s)
		if err != nil || got != c.m {
			t.Fatalf("ParseMemModel(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseMemModel("bogus"); err == nil {
		t.Fatal("ParseMemModel accepted bogus")
	}
}

func TestCurveLookup(t *testing.T) {
	knots := []CurveKnot{{0, 1}, {0.5, 2}, {1, 6}}
	cases := []struct{ u, want float64 }{
		{-1, 1}, {0, 1}, {0.25, 1.5}, {0.5, 2}, {0.75, 4}, {1, 6}, {3, 6},
	}
	for _, c := range cases {
		if got := curveLookup(knots, c.u); got != c.want {
			t.Fatalf("curveLookup(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

// TestCurveLookupMonotone is the property test: for any valid (sorted,
// non-decreasing) curve, the lookup is monotone non-decreasing in
// utilization.
func TestCurveLookupMonotone(t *testing.T) {
	f := func(seed uint64, raw []uint16, a, b uint16) bool {
		if len(raw) == 0 {
			raw = []uint16{0}
		}
		// Build a valid curve from the fuzz input: cumulative utils,
		// cumulative mults.
		rng := simrand.New(seed)
		knots := make([]CurveKnot, 0, len(raw))
		u, m := 0.0, 1.0
		for _, r := range raw {
			knots = append(knots, CurveKnot{Util: u, Mult: m})
			u += 0.01 + float64(r%100)/100
			m += float64(r%7) / 10
		}
		cfg := LoadedConfig{MemCurve: knots, C2CCurve: knots}.withDefaults()
		if err := cfg.Validate(); err != nil {
			t.Logf("constructed curve invalid: %v", err)
			return false
		}
		ua := float64(a) / 65536 * (u + 1)
		ub := float64(b) / 65536 * (u + 1)
		if ua > ub {
			ua, ub = ub, ua
		}
		_ = rng
		return curveLookup(knots, ua) <= curveLookup(knots, ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCurveLookupDeterministic: identical inputs give identical outputs
// across repeated evaluation orders (pure arithmetic, no hidden state).
func TestCurveLookupDeterministic(t *testing.T) {
	knots := DefaultLoadedConfig().MemCurve
	rng := simrand.New(7)
	us := make([]float64, 200)
	for i := range us {
		us[i] = rng.Float64() * 1.5
	}
	first := make([]float64, len(us))
	for i, u := range us {
		first[i] = curveLookup(knots, u)
	}
	for i := len(us) - 1; i >= 0; i-- {
		if got := curveLookup(knots, us[i]); got != first[i] {
			t.Fatalf("lookup(%v) changed across calls: %v vs %v", us[i], got, first[i])
		}
	}
}

func TestDefaultLoadedConfigValid(t *testing.T) {
	if err := DefaultLoadedConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	// A bare loaded config picks up every default.
	if err := (LoadedConfig{}).withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadedConfigValidateRejects(t *testing.T) {
	base := DefaultLoadedConfig()
	cases := []struct {
		name string
		mut  func(*LoadedConfig)
	}{
		{"zero window", func(c *LoadedConfig) { c.WindowCycles = 0 }},
		{"one bucket", func(c *LoadedConfig) { c.Buckets = 1 }},
		{"window smaller than buckets", func(c *LoadedConfig) { c.WindowCycles = 3; c.Buckets = 8 }},
		{"zero line cycles", func(c *LoadedConfig) { c.LineCycles = 0 }},
		{"negative write weight", func(c *LoadedConfig) { c.WriteWeight = -1 }},
		{"empty mem curve", func(c *LoadedConfig) { c.MemCurve = []CurveKnot{} }},
		{"mult below 1", func(c *LoadedConfig) { c.MemCurve = []CurveKnot{{0, 0.5}} }},
		{"negative util", func(c *LoadedConfig) { c.C2CCurve = []CurveKnot{{-0.1, 1}} }},
		{"unsorted utils", func(c *LoadedConfig) { c.MemCurve = []CurveKnot{{0, 1}, {0.5, 2}, {0.4, 3}} }},
		{"decreasing mults", func(c *LoadedConfig) { c.MemCurve = []CurveKnot{{0, 2}, {0.5, 1.5}} }},
		{"zero intervention start", func(c *LoadedConfig) { c.InterventionStartUtil = -1 }},
		{"intervention frac above 1", func(c *LoadedConfig) { c.InterventionMaxFrac = 1.5 }},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWithDefaultsPreservesOverrides(t *testing.T) {
	c := LoadedConfig{
		WindowCycles:          4096,
		LineCycles:            7,
		InterventionStartUtil: 2, // disabled — must survive withDefaults
	}.withDefaults()
	if c.WindowCycles != 4096 || c.LineCycles != 7 || c.InterventionStartUtil != 2 {
		t.Fatalf("withDefaults clobbered overrides: %+v", c)
	}
	d := DefaultLoadedConfig()
	if c.Buckets != d.Buckets || c.WriteWeight != d.WriteWeight || c.InterventionMaxFrac != d.InterventionMaxFrac {
		t.Fatalf("withDefaults did not fill unset fields: %+v", c)
	}
}

// flatLoaded returns a loaded config whose curves are identically 1 and
// whose intervention is disabled: the loaded machinery runs (tracker,
// lookups) but must charge exactly the fixed latencies.
func flatLoaded() LoadedConfig {
	return LoadedConfig{
		MemCurve:              []CurveKnot{{Util: 0, Mult: 1}},
		C2CCurve:              []CurveKnot{{Util: 0, Mult: 1}},
		InterventionStartUtil: 2,
	}
}

// driveMix replays a deterministic sharing-heavy access mix and returns a
// result signature.
func driveMix(h *Hierarchy, seed uint64) string {
	rng := simrand.New(seed)
	var sig uint64
	now := uint64(0)
	for i := 0; i < 20_000; i++ {
		cpu := rng.Intn(4)
		addr := uint64(0x10000 + 64*rng.Intn(512))
		now += uint64(rng.Intn(40))
		var r Result
		if rng.Bool(0.3) {
			r = h.Write(cpu, addr, now)
		} else {
			r = h.Read(cpu, addr, now)
		}
		sig = sig*1099511628211 + uint64(r.Stall)*31 + uint64(r.Class)
	}
	bs := h.Bus().Stats
	return fmt.Sprintf("%x-%d-%d-%d-%d-%d", sig, bs.GetS, bs.GetM, bs.C2CTransfers, bs.MemTransfers, h.DataMisses)
}

func TestFlatCurveLoadedMatchesFixed(t *testing.T) {
	fixedCfg := smallCfg(4, 1)
	loadedCfg := smallCfg(4, 1)
	loadedCfg.Model = MemLoaded
	loadedCfg.Loaded = flatLoaded()

	fixed := driveMix(New(fixedCfg), 99)
	loaded := driveMix(New(loadedCfg), 99)
	if fixed != loaded {
		t.Fatalf("flat-curve loaded diverged from fixed:\nfixed  %s\nloaded %s", fixed, loaded)
	}
}

func TestLoadedDeterministic(t *testing.T) {
	mk := func() *Hierarchy {
		cfg := smallCfg(4, 1)
		cfg.Model = MemLoaded
		// Small window so the mix actually exercises the curve.
		cfg.Loaded = LoadedConfig{WindowCycles: 2048, Buckets: 4, LineCycles: 16}
		return New(cfg)
	}
	a := driveMix(mk(), 1234)
	b := driveMix(mk(), 1234)
	if a != b {
		t.Fatalf("loaded model not deterministic:\n%s\n%s", a, b)
	}
}

func TestLoadedRaisesLatencyUnderLoad(t *testing.T) {
	cfg := smallCfg(4, 1)
	cfg.Model = MemLoaded
	cfg.Loaded = LoadedConfig{WindowCycles: 2048, Buckets: 4, LineCycles: 32, InterventionStartUtil: 2}
	h := New(cfg)

	// Miss continuously at the same simulated time: the window fills, the
	// curve engages, and a memory-served miss must cost more than the
	// unloaded latency.
	var maxStall uint64
	for i := 0; i < 4096; i++ {
		addr := uint64(0x100000 + 64*uint64(i))
		if r := h.Read(i%4, addr, 0); r.Class == StallMem && r.Stall > maxStall {
			maxStall = r.Stall
		}
	}
	if maxStall <= h.cfg.Lat.Memory {
		t.Fatalf("loaded memory stall never exceeded the unloaded latency %d", h.cfg.Lat.Memory)
	}
	ls, ok := h.LoadSnapshot()
	if !ok {
		t.Fatal("LoadSnapshot not available under MemLoaded")
	}
	if ls.Util <= 0 || ls.MemMult <= 1 || ls.MemExtraCycles == 0 {
		t.Fatalf("snapshot did not record load: %+v", ls)
	}
	if _, ok := New(smallCfg(2, 1)).LoadSnapshot(); ok {
		t.Fatal("LoadSnapshot available under MemFixed")
	}
}

// TestLoadedInterventionConvertsCleanCopies: with the channel saturated, a
// memory-served miss whose block sits clean in another cache is supplied
// cache-to-cache instead. The E6000 fixed model never does this.
func TestLoadedInterventionConvertsCleanCopies(t *testing.T) {
	cfg := smallCfg(2, 1)
	cfg.Model = MemLoaded
	cfg.Loaded = LoadedConfig{
		WindowCycles: 1024, Buckets: 4, LineCycles: 64,
		InterventionStartUtil: 0.01, InterventionMaxFrac: 1,
	}
	h := New(cfg)

	// Saturate the window.
	for i := 0; i < 64; i++ {
		h.Read(0, uint64(0x400000+64*i), 0)
	}
	// CPU0 reads a fresh set of lines (clean, Shared); CPU1 then misses on
	// the same lines. Fixed mode would count every one memory-served; the
	// saturated loaded model must convert them to C2C.
	for i := 0; i < 32; i++ {
		h.Read(0, uint64(0x800000+64*i), 0)
	}
	before := h.Bus().Stats.C2CTransfers
	var converted int
	for i := 0; i < 32; i++ {
		if r := h.Read(1, uint64(0x800000+64*i), 0); r.Class == StallC2C {
			converted++
		}
	}
	if converted == 0 {
		t.Fatal("no clean-copy miss was converted to cache-to-cache under saturation")
	}
	if got := h.Bus().Stats.C2CTransfers - before; got != uint64(converted) {
		t.Fatalf("bus C2C count %d disagrees with observed conversions %d", got, converted)
	}
	ls, _ := h.LoadSnapshot()
	if ls.Interventions == 0 {
		t.Fatal("snapshot intervention counter did not move")
	}
}

func TestResetStatsClearsLoadedAccounting(t *testing.T) {
	cfg := smallCfg(2, 1)
	cfg.Model = MemLoaded
	cfg.Loaded = LoadedConfig{WindowCycles: 1024, Buckets: 4, LineCycles: 64, InterventionStartUtil: 0.01, InterventionMaxFrac: 1}
	h := New(cfg)
	for i := 0; i < 64; i++ {
		h.Read(0, uint64(0x400000+64*i), 0)
		h.Read(1, uint64(0x400000+64*i), 0)
	}
	ls, _ := h.LoadSnapshot()
	if ls.MemExtraCycles == 0 {
		t.Fatal("no extra stall accumulated before reset")
	}
	h.ResetStats()
	ls, _ = h.LoadSnapshot()
	if ls.MemExtraCycles != 0 || ls.C2CExtraCycles != 0 || ls.Interventions != 0 {
		t.Fatalf("ResetStats left loaded accounting: %+v", ls)
	}
	if ls.Util == 0 {
		t.Fatal("ResetStats drained the utilization window (machine state must stay warm)")
	}
}

// BenchmarkCurveLookup pins the piecewise-linear lookup on the miss path:
// every loaded-model memory or C2C stall evaluates it, so a regression here
// multiplies across the whole timing simulation.
func BenchmarkCurveLookup(b *testing.B) {
	knots := DefaultLoadedConfig().MemCurve
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += curveLookup(knots, float64(i%101)/100)
	}
	_ = sink
}
