package memsys

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/mem"
	"repro/internal/simrand"
)

// TestSnoopFilterEquivalenceMemsys runs the snoop-filter equivalence check
// through the full hierarchy (L1s, sibling invalidation, shared-L2
// grouping) rather than raw bus nodes, for private and shared-cache shapes:
// a filtered and a brute-force machine see identical randomized traffic and
// must return identical results and counters. The bus-level variant lives
// in internal/coherence.
func TestSnoopFilterEquivalenceMemsys(t *testing.T) {
	for _, perL2 := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("cpusPerL2=%d", perL2), func(t *testing.T) {
			cfg := DefaultConfig(4)
			cfg.CPUsPerL2 = perL2
			cfg.L2.SizeBytes = 64 << 10
			if os.Getenv("COHERENCE_BRUTE_SNOOP") == "1" {
				t.Skip("COHERENCE_BRUTE_SNOOP=1: both machines would be brute-force, nothing to compare")
			}
			filtered := New(cfg)
			brute := New(cfg)
			brute.Bus().DisableSnoopFilter()

			rng := simrand.New(0xCAFE + uint64(perL2))
			for i := 0; i < 80000; i++ {
				cpu := rng.Intn(cfg.CPUs)
				addr := mem.Addr(rng.Int63n(1 << 18))
				now := uint64(i)
				switch rng.Intn(3) {
				case 0:
					fr := filtered.Read(cpu, addr, now)
					br := brute.Read(cpu, addr, now)
					if fr != br {
						t.Fatalf("access %d: Read(%#x) cpu %d: %+v vs %+v", i, addr, cpu, fr, br)
					}
				case 1:
					fr := filtered.Write(cpu, addr, now)
					br := brute.Write(cpu, addr, now)
					if fr != br {
						t.Fatalf("access %d: Write(%#x) cpu %d: %+v vs %+v", i, addr, cpu, fr, br)
					}
				default:
					fr := filtered.Fetch(cpu, addr, now)
					br := brute.Fetch(cpu, addr, now)
					if fr != br {
						t.Fatalf("access %d: Fetch(%#x) cpu %d: %+v vs %+v", i, addr, cpu, fr, br)
					}
				}
			}
			if filtered.Bus().Stats != brute.Bus().Stats {
				t.Errorf("bus stats diverge:\nfiltered %+v\nbrute    %+v",
					filtered.Bus().Stats, brute.Bus().Stats)
			}
			if filtered.DataMisses != brute.DataMisses || filtered.FetchMisses != brute.FetchMisses {
				t.Errorf("hierarchy miss counts diverge: data %d/%d, fetch %d/%d",
					filtered.DataMisses, brute.DataMisses, filtered.FetchMisses, brute.FetchMisses)
			}
		})
	}
}
