// Package memsys assembles the machine's memory hierarchy: per-processor
// split L1 instruction and data caches in front of MOSI-coherent L2 caches
// on a snooping bus, with main memory behind it.
//
// The E6000 the paper measured had one private 1 MB L2 per processor; the
// CMP study of Figure 16 instead shares one L2 among 2, 4, or 8 processors.
// Both shapes are the same Hierarchy here, parameterized by CPUsPerL2.
//
// Every data access is classified into the stall categories of the paper's
// Figure 7 — L1 hit (no stall), L2 hit, cache-to-cache transfer, memory,
// plus the upgrade case — and charged the corresponding latency. The
// latencies default to E6000-like values where a cache-to-cache transfer is
// ~40% slower than a memory access (§4.3).
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/tlb"
)

// Latencies are stall cycles charged by data source. L1 hits are fully
// pipelined and charge nothing.
type Latencies struct {
	L2Hit   uint64
	Memory  uint64
	C2C     uint64 // cache-to-cache transfer (snoop copyback)
	Upgrade uint64 // ownership upgrade, no data movement
}

// DefaultLatencies returns E6000-flavored latencies at 248 MHz scale:
// memory ~75 cycles, cache-to-cache 40% longer (§4.3 of the paper).
func DefaultLatencies() Latencies {
	return Latencies{L2Hit: 10, Memory: 75, C2C: 105, Upgrade: 20}
}

// StallClass classifies where a data access was served, for the Figure 7
// breakdown.
type StallClass uint8

const (
	// StallNone: L1 hit.
	StallNone StallClass = iota
	// StallL2Hit: served by the local L2 (includes upgrades).
	StallL2Hit
	// StallC2C: served by another cache over the bus.
	StallC2C
	// StallMem: served by main memory.
	StallMem
)

// String names the stall class.
func (s StallClass) String() string {
	switch s {
	case StallNone:
		return "l1"
	case StallL2Hit:
		return "l2hit"
	case StallC2C:
		return "c2c"
	case StallMem:
		return "mem"
	default:
		return fmt.Sprintf("StallClass(%d)", uint8(s))
	}
}

// Result reports one access's timing. TLBStall is reported separately from
// the cache stall: it is a software-refill trap, not a memory access.
type Result struct {
	Stall    uint64
	TLBStall uint64
	Class    StallClass
}

// Config describes the hierarchy's shape.
type Config struct {
	CPUs      int
	CPUsPerL2 int // 1 = private L2s (E6000); 2/4/8 = shared-cache CMP (Fig 16)
	L1I, L1D  cache.Config
	L2        cache.Config
	Lat       Latencies
	// DTLB, when non-nil, puts a data TLB in front of each processor's
	// data accesses. The paper's runs used Solaris ISM (4 MB pages), which
	// makes the TLB effectively transparent; the ISM ablation sets base
	// 8 KB pages here and measures the damage (§6 of the paper).
	DTLB *tlb.Config
	// Model selects how Memory/C2C latencies respond to offered load:
	// MemFixed (default) charges Lat's unloaded scalars; MemLoaded charges
	// the bandwidth–latency curve of Loaded (see loaded.go).
	Model MemModel
	// Loaded parameterizes the loaded model; unset fields take
	// DefaultLoadedConfig values. Ignored under MemFixed.
	Loaded LoadedConfig
}

// DefaultConfig returns the E6000-like baseline: 16 KB split L1s and a
// private 1 MB 4-way L2 per processor, 64-byte blocks everywhere.
func DefaultConfig(cpus int) Config {
	return Config{
		CPUs:      cpus,
		CPUsPerL2: 1,
		L1I:       cache.Config{Name: "L1I", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 64},
		L1D:       cache.Config{Name: "L1D", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 64},
		L2:        cache.Config{Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64},
		Lat:       DefaultLatencies(),
	}
}

// Validate checks the shape.
func (c Config) Validate() error {
	if c.CPUs <= 0 {
		return fmt.Errorf("memsys: %d CPUs", c.CPUs)
	}
	if c.CPUsPerL2 <= 0 || c.CPUs%c.CPUsPerL2 != 0 {
		return fmt.Errorf("memsys: %d CPUs not divisible into groups of %d", c.CPUs, c.CPUsPerL2)
	}
	if c.L1I.BlockBytes != c.L2.BlockBytes || c.L1D.BlockBytes != c.L2.BlockBytes {
		return fmt.Errorf("memsys: L1/L2 block sizes differ")
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.Model == MemLoaded {
		if err := c.Loaded.withDefaults().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// L1 states: lines loaded by reads are held Shared; lines written are held
// Modified. A write to a Shared L1 line must consult the L2/bus.
const (
	l1Shared   cache.State = 1
	l1Modified cache.State = 2
)

type cpuPort struct {
	l1i, l1d *cache.Cache
	dtlb     *tlb.TLB // nil when translation is not modeled
	node     *coherence.Node
	group    []int // CPU IDs sharing this port's node (including self)
}

// Hierarchy is one machine's assembled memory system.
type Hierarchy struct {
	cfg Config
	bus *coherence.Bus
	// ports is indexed by CPU and stored by value: the per-access path loads
	// a port's fields with one indexed access instead of chasing a pointer.
	ports []cpuPort

	// DataMisses and FetchMisses count bus-level (L2) misses that moved
	// data, split by access kind — Figure 16 plots the data side.
	DataMisses  uint64
	FetchMisses uint64

	// lm is the loaded-latency model's state; nil under MemFixed, keeping
	// the fixed model's stall charging bit-identical to the pre-model code.
	lm *loadedModel
}

// New builds the hierarchy. It panics on an invalid config (static
// experiment configuration).
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg, bus: coherence.NewBus()}
	if cfg.Model == MemLoaded {
		lc := cfg.Loaded.withDefaults()
		h.lm = &loadedModel{
			cfg: lc,
			tracker: coherence.NewLoadTracker(coherence.LoadConfig{
				WindowCycles:          lc.WindowCycles,
				Buckets:               lc.Buckets,
				LineCycles:            lc.LineCycles,
				WriteWeight:           lc.WriteWeight,
				InterventionStartUtil: lc.InterventionStartUtil,
				InterventionMaxFrac:   lc.InterventionMaxFrac,
			}),
		}
		h.bus.Load = h.lm.tracker
	}
	groups := cfg.CPUs / cfg.CPUsPerL2
	ports := make([]cpuPort, cfg.CPUs)
	for g := 0; g < groups; g++ {
		members := make([]int, cfg.CPUsPerL2)
		for i := range members {
			members[i] = g*cfg.CPUsPerL2 + i
		}
		// The node's invalidation hook maintains L1 inclusion for every
		// processor behind this L2.
		node := h.bus.AddNode(cache.New(cfg.L2), func(ba uint64) {
			for _, cpu := range members {
				ports[cpu].l1i.Invalidate(ba)
				ports[cpu].l1d.Invalidate(ba)
			}
		})
		for _, cpu := range members {
			p := &ports[cpu]
			p.l1i = cache.New(cfg.L1I)
			p.l1d = cache.New(cfg.L1D)
			p.node = node
			p.group = members
			if cfg.DTLB != nil {
				p.dtlb = tlb.New(*cfg.DTLB)
			}
		}
	}
	h.ports = ports
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Bus returns the snooping bus (for its counters, profile, and timeline).
func (h *Hierarchy) Bus() *coherence.Bus { return h.bus }

// Fetch performs an instruction-block fetch for the CPU, returning the
// stall charged to the front end.
func (h *Hierarchy) Fetch(cpu int, addr mem.Addr, now uint64) Result {
	p := &h.ports[cpu]
	ba := p.l1i.BlockAddr(addr)
	p.l1i.Stats.Fetches++
	if p.l1i.ProbeTouch(ba) != nil {
		return Result{}
	}
	p.l1i.Stats.FetchMisses++
	src := p.node.Read(addr, now)
	if src == coherence.SrcCache || src == coherence.SrcMemory {
		h.FetchMisses++
	}
	p.l1i.Allocate(ba, l1Shared)
	return h.result(src)
}

// Read performs a data load.
func (h *Hierarchy) Read(cpu int, addr mem.Addr, now uint64) Result {
	p := &h.ports[cpu]
	var ts uint64
	if p.dtlb != nil {
		ts = p.dtlb.Access(addr)
	}
	ba := p.l1d.BlockAddr(addr)
	p.l1d.Stats.Reads++
	if p.l1d.ProbeTouch(ba) != nil {
		return Result{TLBStall: ts}
	}
	p.l1d.Stats.ReadMisses++
	src := p.node.Read(addr, now)
	if src == coherence.SrcCache || src == coherence.SrcMemory {
		h.DataMisses++
	}
	p.l1d.Allocate(ba, l1Shared)
	r := h.result(src)
	r.TLBStall = ts
	return r
}

// Write performs a data store. The returned stall is the store's completion
// latency; whether it stalls the processor is the store buffer's decision
// (internal/cpu).
func (h *Hierarchy) Write(cpu int, addr mem.Addr, now uint64) Result {
	p := &h.ports[cpu]
	var ts uint64
	if p.dtlb != nil {
		ts = p.dtlb.Access(addr)
	}
	ba := p.l1d.BlockAddr(addr)
	p.l1d.Stats.Writes++
	// Invalidate sibling L1 copies behind the same L2: within-group
	// coherence is maintained directly (and cheaply), which is exactly the
	// shared-cache benefit of Figure 16.
	h.invalidateSiblings(cpu, ba)
	if l := p.l1d.ProbeTouch(ba); l != nil {
		if l.State == l1Modified {
			// L1 write hit with permission: still ensure L2 ownership is
			// recorded (it is, by the earlier miss that set l1Modified).
			l.Dirty = true
			return Result{TLBStall: ts}
		}
		// Shared in L1: need ownership from the L2/bus.
		src := p.node.Write(addr, now)
		if src == coherence.SrcCache || src == coherence.SrcMemory {
			h.DataMisses++
		}
		l.State = l1Modified
		l.Dirty = true
		r := h.result(src)
		r.TLBStall = ts
		return r
	}
	p.l1d.Stats.WriteMisses++
	src := p.node.Write(addr, now)
	if src == coherence.SrcCache || src == coherence.SrcMemory {
		h.DataMisses++
	}
	l, _, _ := p.l1d.Allocate(ba, l1Modified)
	l.Dirty = true
	r := h.result(src)
	r.TLBStall = ts
	return r
}

func (h *Hierarchy) invalidateSiblings(cpu int, ba uint64) {
	p := &h.ports[cpu]
	if len(p.group) == 1 {
		return
	}
	for _, other := range p.group {
		if other == cpu {
			continue
		}
		h.ports[other].l1d.Invalidate(ba)
	}
}

func (h *Hierarchy) result(src coherence.Source) Result {
	switch src {
	case coherence.SrcLocal:
		return Result{Stall: h.cfg.Lat.L2Hit, Class: StallL2Hit}
	case coherence.SrcUpgrade:
		return Result{Stall: h.cfg.Lat.Upgrade, Class: StallL2Hit}
	case coherence.SrcCache:
		s := h.cfg.Lat.C2C
		if h.lm != nil {
			s = h.lm.c2cStall(s)
		}
		return Result{Stall: s, Class: StallC2C}
	default:
		s := h.cfg.Lat.Memory
		if h.lm != nil {
			s = h.lm.memStall(s)
		}
		return Result{Stall: s, Class: StallMem}
	}
}

// L1I returns a CPU's instruction cache (for stats).
func (h *Hierarchy) L1I(cpu int) *cache.Cache { return h.ports[cpu].l1i }

// L1D returns a CPU's data cache (for stats).
func (h *Hierarchy) L1D(cpu int) *cache.Cache { return h.ports[cpu].l1d }

// L2ForCPU returns the L2 node serving a CPU.
func (h *Hierarchy) L2ForCPU(cpu int) *coherence.Node { return h.ports[cpu].node }

// DTLB returns a CPU's data TLB, or nil when translation is not modeled.
func (h *Hierarchy) DTLB(cpu int) *tlb.TLB { return h.ports[cpu].dtlb }

// L2MissesPer1000 returns bus data requests (L2 misses) per 1000 of the
// given instruction count.
func (h *Hierarchy) L2MissesPer1000(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(h.bus.Stats.DataRequests()) / float64(instructions)
}

// DataMissesPer1000 returns bus-level data misses per 1000 instructions —
// the Figure 16 metric (data cache miss rate of the shared/private L2s).
func (h *Hierarchy) DataMissesPer1000(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(h.DataMisses) / float64(instructions)
}

// ResetStats zeroes all cache and bus counters, keeping contents warm, so
// measurement can exclude warm-up.
func (h *Hierarchy) ResetStats() {
	seen := map[*coherence.Node]bool{}
	for _, p := range h.ports {
		p.l1i.ResetStats()
		p.l1d.ResetStats()
		if p.dtlb != nil {
			p.dtlb.ResetStats()
		}
		if !seen[p.node] {
			p.node.L2().ResetStats()
			seen[p.node] = true
		}
	}
	h.bus.ResetStats()
	h.DataMisses = 0
	h.FetchMisses = 0
	if h.lm != nil {
		// The extra-stall and intervention accounting are stats; the
		// utilization window and intervention ramp are machine state and
		// stay warm across the boundary, like the caches.
		h.lm.MemExtraCycles = 0
		h.lm.C2CExtraCycles = 0
		h.lm.tracker.ResetInterventions()
	}
}
