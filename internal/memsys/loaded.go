package memsys

// The loaded-latency memory model. The fixed model charges every memory-
// served miss the unloaded DRAM latency (75 cycles) no matter how many
// processors hammer the bus, which is why the reproduction's CPI growth
// (Figure 6) and cache-to-cache ratio (Figure 8) both undershoot the paper
// at high processor counts. Following the Mess characterization — latency
// is a bandwidth–latency curve, a function of channel utilization and the
// read/write mix — this model:
//
//  1. tracks offered load with a sliding-window transaction counter on the
//     bus (coherence.LoadTracker), fed by every GetS/GetM;
//  2. converts the window's read/write counts into a channel-occupancy
//     utilization, with writes weighted heavier (a store occupies the
//     memory controller longer than a load: read-modify-write turnaround);
//  3. multiplies the base Memory and C2C latencies by a piecewise-linear
//     curve over that utilization.
//
// Everything is deterministic: the tracker's contents are a pure function
// of the (deterministic) transaction sequence, and the lookup is pure
// arithmetic. Fixed mode leaves the tracker detached and is bit-identical
// to the pre-model simulator.

import (
	"fmt"

	"repro/internal/coherence"
)

// MemModel selects how stall latencies respond to offered load.
type MemModel uint8

const (
	// MemFixed charges the unloaded scalar latencies (the original model).
	MemFixed MemModel = iota
	// MemLoaded charges latencies from the bandwidth–latency curve.
	MemLoaded
)

// String names the model.
func (m MemModel) String() string {
	switch m {
	case MemFixed:
		return "fixed"
	case MemLoaded:
		return "loaded"
	default:
		return fmt.Sprintf("MemModel(%d)", uint8(m))
	}
}

// ParseMemModel parses a -memmodel flag value.
func ParseMemModel(s string) (MemModel, error) {
	switch s {
	case "fixed":
		return MemFixed, nil
	case "loaded":
		return MemLoaded, nil
	default:
		return MemFixed, fmt.Errorf("memsys: unknown memory model %q (want fixed or loaded)", s)
	}
}

// CurveKnot is one point of the bandwidth–latency curve: at channel
// utilization Util, the base latency is multiplied by Mult.
type CurveKnot struct {
	Util float64 `json:"util"`
	Mult float64 `json:"mult"`
}

// LoadedConfig parameterizes the loaded-latency model.
type LoadedConfig struct {
	// WindowCycles is the sliding utilization window's span; Buckets is its
	// granularity (the window advances one bucket at a time).
	WindowCycles uint64 `json:"window_cycles"`
	Buckets      int    `json:"buckets"`
	// LineCycles is the channel occupancy one 64-byte read transfer costs at
	// peak bandwidth: the unit that converts window transaction counts into
	// utilization.
	LineCycles float64 `json:"line_cycles"`
	// WriteWeight scales a write's occupancy relative to a read's —
	// the read/write-ratio parameterization of the curve.
	WriteWeight float64 `json:"write_weight"`
	// MemCurve and C2CCurve map utilization to the latency multiplier for
	// memory-served and cache-to-cache transfers. Knots must be sorted by
	// Util with multipliers ≥ 1 and non-decreasing; lookups interpolate
	// linearly and clamp at the ends. The C2C curve is shallower: a snoop
	// copyback contends for the bus but not for the DRAM banks behind it.
	MemCurve []CurveKnot `json:"mem_curve"`
	C2CCurve []CurveKnot `json:"c2c_curve"`
	// InterventionStartUtil and InterventionMaxFrac shape the model's
	// serve-point effect: above the start utilization, a growing fraction of
	// memory-served misses whose block also sits clean in another cache are
	// supplied cache-to-cache instead (cache intervention under load),
	// ramping linearly to the max fraction at full utilization. Set the
	// start ≥ 1 to disable intervention while keeping the latency curves
	// (a zero start means "use the default", like every other field).
	InterventionStartUtil float64 `json:"intervention_start_util"`
	InterventionMaxFrac   float64 `json:"intervention_max_frac"`
}

// DefaultLoadedConfig returns the calibrated E6000-flavored curve: near-flat
// to ~40% utilization, then queueing growth to several times the unloaded
// latency at saturation (the shape the Mess curves show for every DDR-class
// channel, scaled to the Gigaplane's ~75-cycle unloaded latency).
func DefaultLoadedConfig() LoadedConfig {
	return LoadedConfig{
		WindowCycles: 131_072,
		Buckets:      16,
		LineCycles:   24,
		WriteWeight:  1.6,
		MemCurve: []CurveKnot{
			{Util: 0, Mult: 1},
			{Util: 0.30, Mult: 1.05},
			{Util: 0.50, Mult: 1.3},
			{Util: 0.65, Mult: 1.9},
			{Util: 0.80, Mult: 3.2},
			{Util: 0.90, Mult: 4.8},
			{Util: 1.00, Mult: 6.5},
		},
		C2CCurve: []CurveKnot{
			{Util: 0, Mult: 1},
			{Util: 0.30, Mult: 1.02},
			{Util: 0.50, Mult: 1.12},
			{Util: 0.65, Mult: 1.3},
			{Util: 0.80, Mult: 1.7},
			{Util: 0.90, Mult: 2.1},
			{Util: 1.00, Mult: 2.5},
		},
		InterventionStartUtil: 0.35,
		InterventionMaxFrac:   0.85,
	}
}

// withDefaults fills unset fields from DefaultLoadedConfig, so a bare
// Config{Model: MemLoaded} works out of the box and SystemParams overrides
// can set only the fields they care about.
func (c LoadedConfig) withDefaults() LoadedConfig {
	d := DefaultLoadedConfig()
	if c.WindowCycles == 0 {
		c.WindowCycles = d.WindowCycles
	}
	if c.Buckets == 0 {
		c.Buckets = d.Buckets
	}
	if c.LineCycles == 0 {
		c.LineCycles = d.LineCycles
	}
	if c.WriteWeight == 0 {
		c.WriteWeight = d.WriteWeight
	}
	if c.MemCurve == nil {
		c.MemCurve = d.MemCurve
	}
	if c.C2CCurve == nil {
		c.C2CCurve = d.C2CCurve
	}
	if c.InterventionStartUtil == 0 {
		c.InterventionStartUtil = d.InterventionStartUtil
	}
	if c.InterventionMaxFrac == 0 {
		c.InterventionMaxFrac = d.InterventionMaxFrac
	}
	return c
}

// Validate checks the configuration's invariants.
func (c LoadedConfig) Validate() error {
	if c.Buckets < 2 || c.WindowCycles == 0 || c.WindowCycles/uint64(c.Buckets) == 0 {
		return fmt.Errorf("memsys: loaded window %d cycles / %d buckets is degenerate", c.WindowCycles, c.Buckets)
	}
	if c.LineCycles <= 0 {
		return fmt.Errorf("memsys: loaded line occupancy %v cycles", c.LineCycles)
	}
	if c.WriteWeight <= 0 {
		return fmt.Errorf("memsys: loaded write weight %v", c.WriteWeight)
	}
	for name, knots := range map[string][]CurveKnot{"mem": c.MemCurve, "c2c": c.C2CCurve} {
		if len(knots) == 0 {
			return fmt.Errorf("memsys: loaded %s curve has no knots", name)
		}
		for i, k := range knots {
			if k.Util < 0 || k.Mult < 1 {
				return fmt.Errorf("memsys: loaded %s curve knot %d (util %v, mult %v) out of range", name, i, k.Util, k.Mult)
			}
			if i > 0 && (k.Util <= knots[i-1].Util || k.Mult < knots[i-1].Mult) {
				return fmt.Errorf("memsys: loaded %s curve not monotone at knot %d", name, i)
			}
		}
	}
	if c.InterventionStartUtil <= 0 {
		return fmt.Errorf("memsys: loaded intervention start %v (set ≥ 1 to disable)", c.InterventionStartUtil)
	}
	if c.InterventionMaxFrac < 0 || c.InterventionMaxFrac > 1 {
		return fmt.Errorf("memsys: loaded intervention max fraction %v outside [0, 1]", c.InterventionMaxFrac)
	}
	return nil
}

// curveLookup evaluates the piecewise-linear curve at utilization u,
// clamping below the first and above the last knot.
func curveLookup(knots []CurveKnot, u float64) float64 {
	if u <= knots[0].Util {
		return knots[0].Mult
	}
	for i := 1; i < len(knots); i++ {
		if u <= knots[i].Util {
			lo, hi := knots[i-1], knots[i]
			f := (u - lo.Util) / (hi.Util - lo.Util)
			return lo.Mult + f*(hi.Mult-lo.Mult)
		}
	}
	return knots[len(knots)-1].Mult
}

// loadedModel is the per-hierarchy state of the loaded-latency model: the
// bus-side tracker plus the cumulative extra-stall accounting the metrics
// registry exposes.
type loadedModel struct {
	cfg     LoadedConfig
	tracker *coherence.LoadTracker

	// Extra stall cycles charged beyond the fixed model, cumulative since
	// the last ResetStats — the per-interval "cost of contention" metric.
	MemExtraCycles uint64
	C2CExtraCycles uint64
}

// utilization reads the tracker's weighted channel utilization. It can
// exceed 1 when offered load outruns the channel; the curve lookup clamps.
func (m *loadedModel) utilization() float64 {
	return m.tracker.Utilization()
}

// memStall returns the loaded memory latency for one miss, charging the
// curve multiplier at the window's current utilization.
func (m *loadedModel) memStall(base uint64) uint64 {
	s := uint64(float64(base)*curveLookup(m.cfg.MemCurve, m.utilization()) + 0.5)
	m.MemExtraCycles += s - base
	return s
}

// c2cStall is memStall for cache-to-cache transfers.
func (m *loadedModel) c2cStall(base uint64) uint64 {
	s := uint64(float64(base)*curveLookup(m.cfg.C2CCurve, m.utilization()) + 0.5)
	m.C2CExtraCycles += s - base
	return s
}

// LoadSnapshot is the loaded model's live state for observability: the
// current window utilization, the multipliers it implies, and the
// cumulative extra stall charged since the last stats reset.
type LoadSnapshot struct {
	Util           float64
	MemMult        float64
	C2CMult        float64
	MemExtraCycles uint64
	C2CExtraCycles uint64
	// Interventions counts memory-served misses converted to cache-to-cache
	// supply by the load-dependent intervention ramp.
	Interventions uint64
}

// Model returns which latency model the hierarchy runs.
func (h *Hierarchy) Model() MemModel {
	if h.lm != nil {
		return MemLoaded
	}
	return MemFixed
}

// LoadSnapshot reports the loaded model's current state; ok is false under
// the fixed model.
func (h *Hierarchy) LoadSnapshot() (LoadSnapshot, bool) {
	if h.lm == nil {
		return LoadSnapshot{}, false
	}
	u := h.lm.utilization()
	return LoadSnapshot{
		Util:           u,
		MemMult:        curveLookup(h.lm.cfg.MemCurve, u),
		C2CMult:        curveLookup(h.lm.cfg.C2CCurve, u),
		MemExtraCycles: h.lm.MemExtraCycles,
		C2CExtraCycles: h.lm.C2CExtraCycles,
		Interventions:  h.lm.tracker.Interventions(),
	}, true
}
