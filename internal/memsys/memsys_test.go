package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/simrand"
	"repro/internal/tlb"
)

func smallCfg(cpus, perL2 int) Config {
	c := DefaultConfig(cpus)
	c.CPUsPerL2 = perL2
	c.L1I = cache.Config{Name: "L1I", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64}
	c.L1D = cache.Config{Name: "L1D", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64}
	c.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64}
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig(8)
	c.CPUsPerL2 = 3
	if err := c.Validate(); err == nil {
		t.Fatal("8 CPUs / 3 per L2 accepted")
	}
	c = DefaultConfig(0)
	if err := c.Validate(); err == nil {
		t.Fatal("0 CPUs accepted")
	}
	c = DefaultConfig(4)
	c.L1D.BlockBytes = 32
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched block sizes accepted")
	}
}

func TestL1HitNoStall(t *testing.T) {
	h := New(smallCfg(2, 1))
	if r := h.Read(0, 0x10000, 0); r.Class != StallMem {
		t.Fatalf("cold read class = %v", r.Class)
	}
	if r := h.Read(0, 0x10000, 0); r.Class != StallNone || r.Stall != 0 {
		t.Fatalf("warm read = %+v", r)
	}
}

func TestL2HitAfterL1Evict(t *testing.T) {
	h := New(smallCfg(1, 1))
	h.Read(0, 0x10000, 0)
	// Evict from tiny L1D by sweeping 8 KB of conflicting lines.
	for a := uint64(0x20000); a < 0x22000; a += 64 {
		h.Read(0, a, 0)
	}
	r := h.Read(0, 0x10000, 0)
	if r.Class != StallL2Hit {
		t.Fatalf("expected L2 hit, got %v", r.Class)
	}
	if r.Stall != DefaultLatencies().L2Hit {
		t.Fatalf("stall = %d", r.Stall)
	}
}

func TestCrossCPUDirtyReadIsC2CAndSlowerThanMemory(t *testing.T) {
	h := New(smallCfg(2, 1))
	h.Write(0, 0x10000, 0)
	r := h.Read(1, 0x10000, 0)
	if r.Class != StallC2C {
		t.Fatalf("class = %v", r.Class)
	}
	lat := DefaultLatencies()
	if r.Stall != lat.C2C || lat.C2C <= lat.Memory {
		t.Fatalf("c2c latency %d not > memory %d", r.Stall, lat.Memory)
	}
}

func TestSharedL2EliminatesC2C(t *testing.T) {
	// Same producer-consumer pattern; with a shared L2 the consumer hits in
	// the shared cache instead of paying a bus transfer. This is the
	// mechanism behind Figure 16.
	private := New(smallCfg(2, 1))
	shared := New(smallCfg(2, 2))
	for i := 0; i < 100; i++ {
		a := uint64(0x10000 + i*64)
		private.Write(0, a, 0)
		private.Read(1, a, 0)
		shared.Write(0, a, 0)
		shared.Read(1, a, 0)
	}
	if private.Bus().Stats.C2CTransfers == 0 {
		t.Fatal("private L2s produced no C2C")
	}
	if shared.Bus().Stats.C2CTransfers != 0 {
		t.Fatalf("shared L2 produced %d C2C", shared.Bus().Stats.C2CTransfers)
	}
}

func TestSiblingL1InvalidatedOnWrite(t *testing.T) {
	h := New(smallCfg(2, 2))
	h.Read(0, 0x10000, 0)
	h.Read(1, 0x10000, 0)
	h.Write(0, 0x10000, 0)
	// CPU 1's L1 copy must be gone: its next read refills (from shared L2).
	if hit := h.L1D(1).Probe(h.L1D(1).BlockAddr(0x10000)); hit != nil {
		t.Fatal("sibling L1 kept stale copy after write")
	}
	if r := h.Read(1, 0x10000, 0); r.Class != StallL2Hit {
		t.Fatalf("refill class = %v, want l2hit", r.Class)
	}
}

func TestWritePermissionUpgrade(t *testing.T) {
	h := New(smallCfg(2, 1))
	h.Read(0, 0x10000, 0)
	h.Read(1, 0x10000, 0)
	r := h.Write(0, 0x10000, 0) // S->M upgrade through the bus
	if r.Class != StallL2Hit || r.Stall != DefaultLatencies().Upgrade {
		t.Fatalf("upgrade result = %+v", r)
	}
	// Second write: full L1 hit with permission, no stall.
	if r := h.Write(0, 0x10000, 0); r.Class != StallNone {
		t.Fatalf("owned write = %+v", r)
	}
}

func TestL1InclusionOnRemoteWrite(t *testing.T) {
	h := New(smallCfg(2, 1))
	h.Read(0, 0x10000, 0) // CPU0 L1D + L2 have it
	h.Write(1, 0x10000, 0)
	// CPU0's L1 must have been invalidated through the node hook.
	if h.L1D(0).Probe(h.L1D(0).BlockAddr(0x10000)) != nil {
		t.Fatal("L1 inclusion violated: stale L1 line after remote write")
	}
	r := h.Read(0, 0x10000, 0)
	if r.Class != StallC2C {
		t.Fatalf("re-read class = %v, want c2c", r.Class)
	}
}

func TestFetchPath(t *testing.T) {
	h := New(smallCfg(1, 1))
	if r := h.Fetch(0, 0x40000, 0); r.Class != StallMem {
		t.Fatalf("cold fetch = %+v", r)
	}
	if r := h.Fetch(0, 0x40000, 0); r.Class != StallNone {
		t.Fatalf("warm fetch = %+v", r)
	}
	if h.L1I(0).Stats.Fetches != 2 || h.L1I(0).Stats.FetchMisses != 1 {
		t.Fatalf("L1I stats = %+v", h.L1I(0).Stats)
	}
}

func TestResetStatsKeepsWarmth(t *testing.T) {
	h := New(smallCfg(2, 1))
	h.Read(0, 0x10000, 0)
	h.ResetStats()
	if h.Bus().Stats.DataRequests() != 0 || h.L1D(0).Stats.Accesses() != 0 {
		t.Fatal("stats not reset")
	}
	if r := h.Read(0, 0x10000, 0); r.Class != StallNone {
		t.Fatal("reset lost cache contents")
	}
}

func TestL2MissesPer1000(t *testing.T) {
	h := New(smallCfg(1, 1))
	for i := 0; i < 10; i++ {
		h.Read(0, uint64(0x10000+i*4096), 0)
	}
	if got := h.L2MissesPer1000(1000); got != 10 {
		t.Fatalf("L2MissesPer1000 = %v", got)
	}
	if h.L2MissesPer1000(0) != 0 {
		t.Fatal("zero-instruction guard failed")
	}
}

// TestSharedVsPrivateTradeoff reproduces Figure 16's two regimes in
// miniature: a sharing-heavy workload misses less with one shared L2, while
// a capacity-bound workload misses less with private L2s.
func TestSharedVsPrivateTradeoff(t *testing.T) {
	run := func(perL2 int, sharedFrac float64, footprint uint64) float64 {
		h := New(smallCfg(4, perL2))
		rng := simrand.New(42)
		const refs = 120000
		for i := 0; i < refs; i++ {
			cpu := rng.Intn(4)
			var a uint64
			if rng.Float64() < sharedFrac {
				a = 0x100000 + uint64(rng.Intn(64))*64 // hot shared lines
			} else {
				// Private region per CPU.
				a = uint64(0x200000) + uint64(cpu)<<24 + uint64(rng.Int63n(int64(footprint)))&^63
			}
			if rng.Bool(0.3) {
				h.Write(cpu, a, uint64(i))
			} else {
				h.Read(cpu, a, uint64(i))
			}
		}
		return h.L2MissesPer1000(refs)
	}
	// Sharing-heavy, small footprint: shared cache wins.
	privA := run(1, 0.6, 16<<10)
	sharA := run(4, 0.6, 16<<10)
	if sharA >= privA {
		t.Fatalf("sharing-heavy: shared L2 (%v) not better than private (%v)", sharA, privA)
	}
	// Capacity-bound, little sharing: private caches win (4x total capacity).
	privB := run(1, 0.02, 56<<10)
	sharB := run(4, 0.02, 56<<10)
	if privB >= sharB {
		t.Fatalf("capacity-bound: private L2 (%v) not better than shared (%v)", privB, sharB)
	}
}

func TestDTLBWiring(t *testing.T) {
	cfg := smallCfg(1, 1)
	tcfg := tlb.Config{Entries: 2, PageBytes: 8 << 10, MissPenalty: 40}
	cfg.DTLB = &tcfg
	h := New(cfg)
	r := h.Read(0, 0x100000, 0)
	if r.TLBStall == 0 {
		t.Fatal("cold read did not pay a TLB refill")
	}
	// Same page: no TLB stall even though the line differs.
	r = h.Read(0, 0x100040, 0)
	if r.TLBStall != 0 {
		t.Fatalf("same-page access paid TLB stall %d", r.TLBStall)
	}
	if h.DTLB(0) == nil || h.DTLB(0).Misses == 0 {
		t.Fatal("TLB not exposed or not counting")
	}
	// Fetches are not translated by the dTLB.
	f := h.Fetch(0, 0x900000, 0)
	if f.TLBStall != 0 {
		t.Fatal("instruction fetch charged a dTLB stall")
	}
	// No TLB configured -> no stalls, nil accessor.
	h2 := New(smallCfg(1, 1))
	if h2.DTLB(0) != nil {
		t.Fatal("unconfigured TLB present")
	}
}
