package obsdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchDiffRanksRegressionFirst is the acceptance scenario: diffing two
// pinned BENCH_<n>.json reports with one injected regression must rank that
// regression first, above the noise-level drift in the other benchmarks.
func TestBenchDiffRanksRegressionFirst(t *testing.T) {
	rep, err := DiffFiles("testdata/bench_base.json", "testdata/bench_regressed.json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "bench" {
		t.Fatalf("kind %q, want bench", rep.Kind)
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("no deltas survived the noise floor")
	}
	top := rep.Deltas[0]
	if !strings.Contains(top.Key, "BenchmarkFig08C2CRatio") || !strings.Contains(top.Key, "ns_per_op") {
		t.Fatalf("top-ranked delta is %q, want the injected BenchmarkFig08C2CRatio ns_per_op regression (all: %+v)", top.Key, rep.Deltas)
	}
	if top.Rel < 1.0 {
		t.Fatalf("injected 2.1x regression reports rel %+.2f", top.Rel)
	}
	// The sub-noise drifts (0.5-2%) must have been dropped, not ranked.
	for _, d := range rep.Deltas {
		if strings.Contains(d.Key, "BenchmarkHDRRecord") || strings.Contains(d.Key, "BenchmarkReadLocalHit") {
			t.Fatalf("noise-level drift %q survived the floor: %+v", d.Key, d)
		}
	}

	md := string(rep.Markdown())
	if !strings.Contains(md, "BenchmarkFig08C2CRatio") || !strings.Contains(md, "| 1 |") {
		t.Fatalf("markdown does not lead with the regression:\n%s", md)
	}
	js := string(rep.JSON())
	if !strings.Contains(js, `"rel_change"`) || !strings.Contains(js, `"deltas"`) {
		t.Fatalf("JSON rendering missing fields:\n%s", js)
	}
}

func TestDiffOnlyInOneSide(t *testing.T) {
	rep := Diff(
		map[string]float64{"gone": 5, "same": 1},
		map[string]float64{"new": 7, "same": 1},
		Options{},
	)
	notes := map[string]string{}
	for _, d := range rep.Deltas {
		notes[d.Key] = d.Note
	}
	if notes["gone"] != "only in a" || notes["new"] != "only in b" {
		t.Fatalf("one-sided keys mislabeled: %+v", rep.Deltas)
	}
}

func TestDiffKindMismatch(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "a.folded")
	met := filepath.Join(dir, "b.metrics")
	if err := os.WriteFile(prof, []byte("eng;mem;stall 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(met, []byte("memsys.l2.miss 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DiffFiles(prof, met, Options{}); err == nil || !strings.Contains(err.Error(), "artifact kinds differ") {
		t.Fatalf("want kind-mismatch error, got %v", err)
	}
}

func TestParseArtifactKinds(t *testing.T) {
	cases := []struct {
		name, kind, data string
		wantKey          string
		wantVal          float64
	}{
		{"bench", "bench", `{"benchmarks": {"b": {"ns_per_op": 12.5}}}`, "b.ns_per_op", 12.5},
		{"json", "json", `{"stats": {"offered": 100, "nested": [{"x": 3}]}}`, "stats.nested[0].x", 3},
		{"metrics", "metrics", "memsys.l2.miss   1234\nworkload.ops  99\n", "memsys.l2.miss", 1234},
		{"histogram", "metrics", "lat.ms count=10 p50=4 p99=20\n", "lat.ms.p99", 20},
		{"profile", "profile", "eng;mem;l2_miss 4200\neng;cpu 100\n", "eng;mem;l2_miss", 4200},
	}
	for _, c := range cases {
		kind, vals, err := ParseArtifact([]byte(c.data))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if kind != c.kind {
			t.Fatalf("%s: kind %q, want %q", c.name, kind, c.kind)
		}
		if got := vals[c.wantKey]; got != c.wantVal {
			t.Fatalf("%s: vals[%q] = %v, want %v (all: %v)", c.name, c.wantKey, got, c.wantVal, vals)
		}
	}
	for _, bad := range []string{"", "not a metric line", `{"broken":`} {
		if _, _, err := ParseArtifact([]byte(bad)); err == nil {
			t.Fatalf("ParseArtifact(%q) accepted garbage", bad)
		}
	}
}

// TestDiffDeterministic checks the ranking is a total order: equal scores
// fall back to key order, so reports are reproducible artifacts.
func TestDiffDeterministic(t *testing.T) {
	a := map[string]float64{"k1": 10, "k2": 10, "k3": 10}
	b := map[string]float64{"k1": 20, "k2": 20, "k3": 20}
	r1, r2 := Diff(a, b, Options{}), Diff(a, b, Options{})
	for i := range r1.Deltas {
		if r1.Deltas[i].Key != r2.Deltas[i].Key {
			t.Fatalf("rankings differ at %d: %q vs %q", i, r1.Deltas[i].Key, r2.Deltas[i].Key)
		}
	}
	if r1.Deltas[0].Key != "k1" || r1.Deltas[2].Key != "k3" {
		t.Fatalf("tie-break is not key order: %+v", r1.Deltas)
	}
}

func TestTopCapCountsDropped(t *testing.T) {
	a := map[string]float64{"k1": 1, "k2": 1, "k3": 1, "k4": 1}
	b := map[string]float64{"k1": 10, "k2": 9, "k3": 8, "k4": 7}
	rep := Diff(a, b, Options{Top: 2})
	if len(rep.Deltas) != 2 || rep.Dropped != 2 {
		t.Fatalf("top cap: %d deltas, %d dropped, want 2 and 2", len(rep.Deltas), rep.Dropped)
	}
}
