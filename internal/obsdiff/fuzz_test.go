package obsdiff

import "testing"

// FuzzParseArtifact hardens the artifact auto-detector against corrupted
// run artifacts: whatever the bytes, it must not panic, and on success it
// must hand back a usable metric map. The seed corpus covers every
// supported format plus near-miss garbage.
func FuzzParseArtifact(f *testing.F) {
	seeds := []string{
		// perfcheck BENCH report
		`{"note":"x","count":3,"benchmarks":{"pkg:BenchmarkA":{"ns_per_op":42.5,"allocs_per_op":7},"e2e:FiguresQuick":{"ns_per_op":9.5e9}}}`,
		// generic simulator JSON report (nested objects, arrays, bools)
		`{"stats":{"offered":100,"shed":3},"nodes":[{"queue":5,"brown":true}],"label":"run"}`,
		// metrics-registry snapshot text
		"memsys.l2.miss      1234\nworkload.ops.total  99\ntrace.dropped       0\n",
		// histogram lines with k=v fields
		"latency.ms count=10 mean=4.5 p50=4 p99=20\nother 7\n",
		// folded profile
		"engine;mem;l2_miss 4200\nengine;cpu;base 100000\n",
		// comment/header lines around metrics
		"# comment\n== run 0 ==\na.b 1\n",
		// near-miss garbage
		"", "{", "{}", "[]", "[1,2,3]", "just words here", "name value-not-number",
		"a=b c=d\n", "x 1e309\n", "\xff\xfe binary", "{\"benchmarks\": 7}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, vals, err := ParseArtifact(data)
		if err != nil {
			return
		}
		if kind == "" {
			t.Fatalf("nil error but empty kind for %q", data)
		}
		if vals == nil {
			t.Fatalf("nil error but nil metric map for %q", data)
		}
		// The diff engine must accept whatever the parser produced.
		rep := Diff(vals, vals, Options{})
		if len(rep.Deltas) != 0 {
			t.Fatalf("self-diff produced deltas: %+v", rep.Deltas)
		}
	})
}
