// Package obsdiff compares two run artifacts — perfcheck BENCH_<n>.json
// reports, metrics-registry snapshots, folded simulated-cycle profiles, or
// any of the simulator's JSON reports (latency/SLO, attribution, figure
// reports) — and ranks the significant deltas, turning "the gate failed" or
// "this run looks different" into a short list of the counters, stacks, and
// quantiles that actually moved.
//
// Both inputs are flattened to {metric key -> numeric value} maps by a
// format auto-detector, diffed key-wise, filtered by a noise floor, and
// ranked by a score that weighs relative change by magnitude — a 2x swing
// on a million-cycle counter outranks a 2x swing on a count of three. The
// ranking is deterministic (score, then key), so triage reports are
// reproducible artifacts themselves.
package obsdiff

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Options tune the diff.
type Options struct {
	// MinRel is the noise floor: keys whose relative change is below it are
	// dropped (default 0.02 = 2%).
	MinRel float64
	// MinAbs drops keys whose larger side is below it (default 0: keep all).
	MinAbs float64
	// Top caps the ranked delta list (0 = keep all).
	Top int
}

func (o Options) withDefaults() Options {
	if o.MinRel == 0 {
		o.MinRel = 0.02
	}
	return o
}

// Delta is one ranked difference.
type Delta struct {
	Key string  `json:"key"`
	A   float64 `json:"a"`
	B   float64 `json:"b"`
	// Abs is B-A; Rel is (B-A)/|A| (±1 when the key exists on one side
	// only — see Note).
	Abs float64 `json:"abs_change"`
	Rel float64 `json:"rel_change"`
	// Score ranks: |Rel| weighted by the magnitude of the larger side.
	Score float64 `json:"score"`
	// Note marks keys present on one side only ("only in a"/"only in b").
	Note string `json:"note,omitempty"`
}

// Report is the triage document.
type Report struct {
	APath string `json:"a"`
	BPath string `json:"b"`
	// Kind is the detected artifact format: "bench", "json", "metrics", or
	// "profile".
	Kind string `json:"kind"`
	// KeysA/KeysB count the parsed metrics per side; Dropped is how many
	// differing keys the noise floor or Top cap removed.
	KeysA   int     `json:"keys_a"`
	KeysB   int     `json:"keys_b"`
	Dropped int     `json:"dropped"`
	Deltas  []Delta `json:"deltas"`
}

// DiffFiles parses and diffs two artifact files. Their detected formats
// must match — diffing a profile against a metrics snapshot is a usage
// error, not a very large regression.
func DiffFiles(aPath, bPath string, opt Options) (*Report, error) {
	aData, err := os.ReadFile(aPath)
	if err != nil {
		return nil, err
	}
	bData, err := os.ReadFile(bPath)
	if err != nil {
		return nil, err
	}
	aKind, aVals, err := ParseArtifact(aData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", aPath, err)
	}
	bKind, bVals, err := ParseArtifact(bData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bPath, err)
	}
	if aKind != bKind {
		return nil, fmt.Errorf("artifact kinds differ: %s is %s, %s is %s", aPath, aKind, bPath, bKind)
	}
	rep := Diff(aVals, bVals, opt)
	rep.APath, rep.BPath, rep.Kind = aPath, bPath, aKind
	return rep, nil
}

// Diff ranks the differences between two flattened metric maps.
func Diff(a, b map[string]float64, opt Options) *Report {
	o := opt.withDefaults()
	rep := &Report{KeysA: len(a), KeysB: len(b)}

	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var deltas []Delta
	for k := range keys {
		av, inA := a[k]
		bv, inB := b[k]
		d := Delta{Key: k, A: av, B: bv, Abs: bv - av}
		switch {
		case !inA:
			d.Rel, d.Note = 1, "only in b"
		case !inB:
			d.Rel, d.Note = -1, "only in a"
		case av == bv:
			continue
		case av == 0:
			d.Rel = math.Copysign(1, bv)
		default:
			d.Rel = (bv - av) / math.Abs(av)
		}
		mag := math.Max(math.Abs(av), math.Abs(bv))
		if math.Abs(d.Rel) < o.MinRel || mag < o.MinAbs {
			rep.Dropped++
			continue
		}
		d.Score = math.Abs(d.Rel) * math.Log10(1+mag)
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Score != deltas[j].Score {
			return deltas[i].Score > deltas[j].Score
		}
		return deltas[i].Key < deltas[j].Key
	})
	if o.Top > 0 && len(deltas) > o.Top {
		rep.Dropped += len(deltas) - o.Top
		deltas = deltas[:o.Top]
	}
	rep.Deltas = deltas
	return rep
}

// ParseArtifact detects an artifact's format and flattens it to numeric
// metrics. Supported: perfcheck BENCH_<n>.json ("bench"), any simulator
// JSON report ("json"), metrics-registry text snapshots ("metrics"), and
// folded-stack profiles ("profile").
func ParseArtifact(data []byte) (kind string, vals map[string]float64, err error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return "", nil, errors.New("empty artifact")
	}
	if trimmed[0] == '{' || trimmed[0] == '[' {
		var v any
		if err := json.Unmarshal(trimmed, &v); err != nil {
			return "", nil, fmt.Errorf("bad JSON: %w", err)
		}
		if m, ok := v.(map[string]any); ok {
			if b, ok := m["benchmarks"]; ok {
				vals = map[string]float64{}
				flatten("", b, vals)
				return "bench", vals, nil
			}
		}
		vals = map[string]float64{}
		flatten("", v, vals)
		return "json", vals, nil
	}
	return parseText(trimmed)
}

// flatten walks a decoded JSON value collecting numeric leaves under
// dotted/indexed paths.
func flatten(prefix string, v any, into map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, c, into)
		}
	case []any:
		for i, c := range t {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), c, into)
		}
	case float64:
		if prefix != "" {
			into[prefix] = t
		}
	case bool:
		if prefix != "" {
			if t {
				into[prefix] = 1
			} else {
				into[prefix] = 0
			}
		}
	}
}

// parseText handles the two line-oriented formats: folded profiles
// ("comp;phase;stall 12345") and metrics-registry snapshots
// ("memsys.l2.miss    123" or histogram lines with k=v fields).
func parseText(data []byte) (string, map[string]float64, error) {
	vals := map[string]float64{}
	folded := false
	parsed := 0
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "==") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		if strings.Contains(fields[1], "=") {
			// Histogram line: name count=N mean=X p50=N ...
			for _, kv := range fields[1:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					continue
				}
				if v, err := strconv.ParseFloat(kv[eq+1:], 64); err == nil {
					vals[name+"."+kv[:eq]] = v
					parsed++
				}
			}
			continue
		}
		if len(fields) == 2 {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				vals[name] = v
				parsed++
				if strings.Contains(name, ";") {
					folded = true
				}
			}
		}
	}
	if parsed == 0 {
		return "", nil, errors.New("unrecognized artifact: no metric lines parsed")
	}
	if folded {
		return "profile", vals, nil
	}
	return "metrics", vals, nil
}

// Markdown renders the report as a triage table.
func (r *Report) Markdown() []byte {
	var b strings.Builder
	b.WriteString("# Run triage\n\n")
	fmt.Fprintf(&b, "Comparing `%s` (A) vs `%s` (B), format %s: %d vs %d metrics, %d significant deltas",
		r.APath, r.BPath, r.Kind, r.KeysA, r.KeysB, len(r.Deltas))
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " (%d below the noise floor or past the cap)", r.Dropped)
	}
	b.WriteString(".\n\n")
	if len(r.Deltas) == 0 {
		b.WriteString("No significant differences.\n")
		return []byte(b.String())
	}
	b.WriteString("| rank | metric | A | B | change | note |\n|---|---|---|---|---|---|\n")
	for i, d := range r.Deltas {
		fmt.Fprintf(&b, "| %d | `%s` | %s | %s | %+.1f%% | %s |\n",
			i+1, d.Key, fmtVal(d.A), fmtVal(d.B), d.Rel*100, d.Note)
	}
	return []byte(b.String())
}

// JSON renders the report as machine-readable JSON.
func (r *Report) JSON() []byte {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}\n")
	}
	return append(buf, '\n')
}

// Top returns the first n deltas (fewer if the report is shorter).
func (r *Report) TopDeltas(n int) []Delta {
	if n > len(r.Deltas) {
		n = len(r.Deltas)
	}
	return r.Deltas[:n]
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
