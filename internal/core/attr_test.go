package core

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/attr"
)

// runAttr executes one small observed SPECjbb run with attribution attached
// and returns the marshalled report plus the system for counter checks.
func runAttr(t *testing.T, seed uint64, exact bool) ([]byte, *System, *attr.Collector) {
	t.Helper()
	sys := BuildSystem(SystemParams{Kind: SPECjbb, Processors: 4, Seed: seed})
	ob := &obs.Observer{Attr: attr.NewCollector(attr.Options{Exact: exact})}
	ObserveRun(sys, ob, nil, 2_000_000, 10_000_000)
	buf, err := json.Marshal(ob.Attr.BuildReport(25))
	if err != nil {
		t.Fatal(err)
	}
	return buf, sys, ob.Attr
}

// TestAttrDeterministic: the same seed must produce bit-identical
// attribution reports — sampling is hash-based and the simulator is
// single-threaded, so there is no tolerance here.
func TestAttrDeterministic(t *testing.T) {
	a, _, _ := runAttr(t, 20030208, false)
	b, _, _ := runAttr(t, 20030208, false)
	if string(a) != string(b) {
		t.Error("same seed produced different attribution reports")
	}
}

// TestAttrIsPassive: attribution must observe the run, never perturb it.
// The engine's results and the bus's counters must be bit-identical with
// the collector attached and absent.
func TestAttrIsPassive(t *testing.T) {
	_, with, _ := runAttr(t, 20030208, true)

	bare := BuildSystem(SystemParams{Kind: SPECjbb, Processors: 4, Seed: 20030208})
	ObserveRun(bare, nil, nil, 2_000_000, 10_000_000)

	if with.Hier.Bus().Stats != bare.Hier.Bus().Stats {
		t.Errorf("bus stats diverge with attribution attached:\nwith    %+v\nwithout %+v",
			with.Hier.Bus().Stats, bare.Hier.Bus().Stats)
	}
	wr, br := with.Engine.Results(), bare.Engine.Results()
	if wr.BusinessOps != br.BusinessOps || wr.CPU != br.CPU || wr.GCCount != br.GCCount {
		t.Errorf("engine results diverge with attribution attached:\nwith    ops=%d cpu=%+v gc=%d\nwithout ops=%d cpu=%+v gc=%d",
			wr.BusinessOps, wr.CPU, wr.GCCount, br.BusinessOps, br.CPU, br.GCCount)
	}
}

// TestAttrExactConservation: end-to-end conservation on a real workload —
// every bus event in the measurement window attributed exactly once.
func TestAttrExactConservation(t *testing.T) {
	_, sys, c := runAttr(t, 20030208, true)
	sum := c.SumCounts()
	st := sys.Hier.Bus().Stats
	if sum.GetS != st.GetS || sum.GetM != st.GetM || sum.Upgrades != st.Upgrades ||
		sum.C2C != st.C2CTransfers || sum.Writebacks != st.Writebacks || sum.Invals != st.Invalidations {
		t.Errorf("attributed sums != bus stats:\nattr %+v\nbus  GetS=%d GetM=%d Upg=%d C2C=%d WB=%d Inv=%d",
			sum, st.GetS, st.GetM, st.Upgrades, st.C2CTransfers, st.Writebacks, st.Invalidations)
	}
}

// TestAttrReportShape: a real multiprocessor run must produce labeled hot
// objects, closed epochs, and C2C attributed to the communication patterns
// (the paper's §4.3: migratory + producer-consumer data dominate transfers).
func TestAttrReportShape(t *testing.T) {
	buf, _, c := runAttr(t, 20030208, true)
	var r attr.Report
	if err := json.Unmarshal(buf, &r); err != nil {
		t.Fatal(err)
	}
	if r.Events == 0 || r.LinesTracked == 0 {
		t.Fatal("observed run attributed no events")
	}
	if r.Epochs == 0 {
		t.Error("no attribution epochs closed (GC epochs + final)")
	}
	if len(r.HotLines) == 0 || len(r.HotObjects) == 0 {
		t.Fatal("report has empty hot tables")
	}
	labeled := false
	for _, o := range r.HotObjects {
		if o.Label != "" && o.Label != "unattributed" {
			labeled = true
		}
	}
	if !labeled {
		t.Error("no hot object carries an allocation-site or region label")
	}
	var shared, total uint64
	for name, ps := range r.PatternMix {
		total += ps.C2C
		if name != "read-only" && name != "private" {
			shared += ps.C2C
		}
	}
	if total == 0 {
		t.Fatal("no C2C transfers attributed on a 4-processor run")
	}
	if shared*2 < total {
		t.Errorf("communication patterns own %d of %d C2C transfers; expected the majority", shared, total)
	}
	_ = c
}

// TestSweepAttr: the uniprocessor sweep path must also fill the collector
// (reference-level) and label heap objects.
func TestSweepAttr(t *testing.T) {
	var col *attr.Collector
	o := QuickSweepOpts()
	o.Observe = func(label string) *obs.Observer {
		ob := &obs.Observer{Attr: attr.NewCollector(attr.Options{})}
		col = ob.Attr
		return ob
	}
	r := runUniSweep(SPECjbb, 2, "SPECjbb-2", o)
	if r.Instructions == 0 {
		t.Fatal("sweep ran nothing")
	}
	if col.Events() == 0 || col.Len() == 0 {
		t.Fatal("sweep attributed no references")
	}
	if col.EpochCount() == 0 {
		t.Error("sweep closed no attribution epochs")
	}
	rep := col.BuildReport(10)
	if len(rep.HotObjects) == 0 {
		t.Error("sweep report has no hot objects")
	}
}
