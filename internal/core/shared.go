package core

import (
	"fmt"

	"repro/internal/stats"
)

// SharedCacheOpts size the Figure 16 CMP shared-cache study.
type SharedCacheOpts struct {
	// Grouping lists processors-per-shared-L2 values (the paper used
	// 1, 2, 4, 8 on an 8-processor machine with 1 MB L2 caches).
	Grouping      []int
	Seeds         []uint64
	WarmupCycles  uint64
	MeasureCycles uint64
}

// DefaultSharedCacheOpts is the full-fidelity configuration.
func DefaultSharedCacheOpts() SharedCacheOpts {
	return SharedCacheOpts{
		Grouping:      []int{1, 2, 4, 8},
		Seeds:         stats.Seeds(20030208, 3),
		WarmupCycles:  12_000_000,
		MeasureCycles: 40_000_000,
	}
}

// QuickSharedCacheOpts is the reduced test/bench configuration.
func QuickSharedCacheOpts() SharedCacheOpts {
	return SharedCacheOpts{
		Grouping:      []int{1, 8},
		Seeds:         stats.Seeds(20030208, 1),
		WarmupCycles:  4_000_000,
		MeasureCycles: 16_000_000,
	}
}

// SharedCachePoint is one (workload, grouping) measurement.
type SharedCachePoint struct {
	CPUsPerL2         int
	DataMissesPer1000 *stats.Summary
}

// sharedCacheCell measures one (workload, grouping, seed) run: L2 data
// misses per 1000 instructions on an 8-processor machine with the given
// L2 grouping. SPECjbb runs at 25 warehouses (the paper's
// capacity-stressing configuration); ECperf at its standard injection
// rate.
func sharedCacheCell(kind Kind, cpusPerL2 int, seed uint64, o SharedCacheOpts) float64 {
	scale := 0
	if kind == SPECjbb {
		scale = 25
	}
	sys := BuildSystem(SystemParams{
		Kind:       kind,
		Processors: 8,
		TotalCPUs:  8,
		CPUsPerL2:  cpusPerL2,
		Scale:      scale,
		Seed:       seed,
	})
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	res := eng.Results()
	return sys.Hier.DataMissesPer1000(res.CPU.Instructions)
}

// RunSharedCachePoint measures one (workload, grouping) configuration
// over all seeds on a private scheduler. The summary is accumulated in
// seed order, keeping the point deterministic.
func RunSharedCachePoint(kind Kind, cpusPerL2 int, o SharedCacheOpts) SharedCachePoint {
	sched := NewScheduler(DefaultWorkers())
	vals := scheduleSharedCacheSeeds(sched, kind, cpusPerL2, o)
	sched.Wait()
	pt := SharedCachePoint{CPUsPerL2: cpusPerL2, DataMissesPer1000: &stats.Summary{}}
	for _, v := range vals {
		pt.DataMissesPer1000.Add(v)
	}
	return pt
}

// scheduleSharedCacheSeeds submits one cell per seed; the returned slice
// is filled by sched.Wait.
func scheduleSharedCacheSeeds(sched *Scheduler, kind Kind, cpusPerL2 int, o SharedCacheOpts) []float64 {
	vals := make([]float64, len(o.Seeds))
	for si := range o.Seeds {
		si := si
		sched.Submit(func() {
			vals[si] = sharedCacheCell(kind, cpusPerL2, o.Seeds[si], o)
		})
	}
	return vals
}

// SharedCacheRuns is the Figure 16 grid scheduled on a global scheduler;
// render with Figure after the scheduler drains.
type SharedCacheRuns struct {
	opts  SharedCacheOpts
	kinds []Kind
	vals  [][][]float64 // [kind][grouping][seed]
}

// ScheduleSharedCache submits every (workload, grouping, seed) cell of
// Figure 16.
func ScheduleSharedCache(sched *Scheduler, o SharedCacheOpts) *SharedCacheRuns {
	r := &SharedCacheRuns{opts: o, kinds: []Kind{ECperf, SPECjbb}}
	for _, kind := range r.kinds {
		grid := make([][]float64, len(o.Grouping))
		for gi, g := range o.Grouping {
			grid[gi] = scheduleSharedCacheSeeds(sched, kind, g, o)
		}
		r.vals = append(r.vals, grid)
	}
	return r
}

// RunSharedCachePointDebug runs one grouping with the region-miss
// classifier enabled and returns a diagnostic string (calibration aid).
func RunSharedCachePointDebug(kind Kind, cpusPerL2 int, o SharedCacheOpts) string {
	scale := 0
	if kind == SPECjbb {
		scale = 25
	}
	sys := BuildSystem(SystemParams{
		Kind: kind, Processors: 8, TotalCPUs: 8, CPUsPerL2: cpusPerL2,
		Scale: scale, Seed: o.Seeds[0],
	})
	sys.Hier.Bus().ClassifyAddr = regionClassifier(sys)
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	res := eng.Results()
	instr := float64(res.CPU.Instructions)
	bs := sys.Hier.Bus().Stats
	mc := sys.Hier.Bus().MissClass
	return fmt.Sprintf("dmiss=%.2f c2c=%.2f mem=%.2f memclass[code=%.2f kern=%.2f eden=%.2f surv=%.2f old=%.2f perm=%.2f oth=%.2f] thr=%d",
		sys.Hier.DataMissesPer1000(res.CPU.Instructions),
		1000*float64(bs.C2CTransfers)/instr, 1000*float64(bs.MemTransfers)/instr,
		1000*float64(mc[0])/instr, 1000*float64(mc[1])/instr, 1000*float64(mc[2])/instr,
		1000*float64(mc[3])/instr, 1000*float64(mc[4])/instr, 1000*float64(mc[5])/instr,
		1000*float64(mc[6])/instr, res.BusinessOps)
}

// Figure renders Figure 16 from the completed grid. The scheduler the
// runs were submitted to must have drained.
func (r *SharedCacheRuns) Figure() Figure {
	f := Figure{
		ID:     "Fig 16",
		Title:  "Cache Miss Rate on Shared Caches (Processors Per Shared 1 MB Cache)",
		XLabel: "Processors per shared L2",
		YLabel: "Data misses / 1000 instructions",
	}
	for ki, kind := range r.kinds {
		label := kind.String()
		if kind == SPECjbb {
			label = "SPECjbb-25"
		}
		s := Series{Label: label}
		for gi, g := range r.opts.Grouping {
			var sum stats.Summary
			for _, v := range r.vals[ki][gi] {
				sum.Add(v)
			}
			s.X = append(s.X, float64(g))
			s.Y = append(s.Y, sum.Mean())
			s.Err = append(s.Err, sum.StdDev())
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig16SharedCaches reproduces Figure 16: data miss rate with 1/2/4/8
// processors per shared 1 MB L2 cache, for ECperf and SPECjbb-25. Sharing
// helps ECperf (coherence misses vanish, small footprint) and hurts
// SPECjbb-25 (the emulated database no longer fits).
func Fig16SharedCaches(o SharedCacheOpts) Figure {
	sched := NewScheduler(DefaultWorkers())
	r := ScheduleSharedCache(sched, o)
	sched.Wait()
	return r.Figure()
}
