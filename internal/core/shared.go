package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// SharedCacheOpts size the Figure 16 CMP shared-cache study.
type SharedCacheOpts struct {
	// Grouping lists processors-per-shared-L2 values (the paper used
	// 1, 2, 4, 8 on an 8-processor machine with 1 MB L2 caches).
	Grouping      []int
	Seeds         []uint64
	WarmupCycles  uint64
	MeasureCycles uint64
}

// DefaultSharedCacheOpts is the full-fidelity configuration.
func DefaultSharedCacheOpts() SharedCacheOpts {
	return SharedCacheOpts{
		Grouping:      []int{1, 2, 4, 8},
		Seeds:         stats.Seeds(20030208, 3),
		WarmupCycles:  12_000_000,
		MeasureCycles: 40_000_000,
	}
}

// QuickSharedCacheOpts is the reduced test/bench configuration.
func QuickSharedCacheOpts() SharedCacheOpts {
	return SharedCacheOpts{
		Grouping:      []int{1, 8},
		Seeds:         stats.Seeds(20030208, 1),
		WarmupCycles:  4_000_000,
		MeasureCycles: 16_000_000,
	}
}

// SharedCachePoint is one (workload, grouping) measurement.
type SharedCachePoint struct {
	CPUsPerL2         int
	DataMissesPer1000 *stats.Summary
}

// RunSharedCachePoint measures L2 data misses per 1000 instructions on an
// 8-processor machine with the given L2 grouping. SPECjbb runs at 25
// warehouses (the paper's capacity-stressing configuration); ECperf at its
// standard injection rate. Seeds run concurrently (each is an independent
// single-threaded simulation); the summary order is deterministic.
func RunSharedCachePoint(kind Kind, cpusPerL2 int, o SharedCacheOpts) SharedCachePoint {
	pt := SharedCachePoint{CPUsPerL2: cpusPerL2, DataMissesPer1000: &stats.Summary{}}
	scale := 0
	if kind == SPECjbb {
		scale = 25
	}
	vals := make([]float64, len(o.Seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(o.Seeds) {
		workers = len(o.Seeds)
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range ch {
				sys := BuildSystem(SystemParams{
					Kind:       kind,
					Processors: 8,
					TotalCPUs:  8,
					CPUsPerL2:  cpusPerL2,
					Scale:      scale,
					Seed:       o.Seeds[si],
				})
				eng := sys.Engine
				eng.Run(o.WarmupCycles)
				eng.ResetStats()
				eng.Run(o.WarmupCycles + o.MeasureCycles)
				res := eng.Results()
				vals[si] = sys.Hier.DataMissesPer1000(res.CPU.Instructions)
			}
		}()
	}
	for si := range o.Seeds {
		ch <- si
	}
	close(ch)
	wg.Wait()
	for _, v := range vals {
		pt.DataMissesPer1000.Add(v)
	}
	return pt
}

// RunSharedCachePointDebug runs one grouping with the region-miss
// classifier enabled and returns a diagnostic string (calibration aid).
func RunSharedCachePointDebug(kind Kind, cpusPerL2 int, o SharedCacheOpts) string {
	scale := 0
	if kind == SPECjbb {
		scale = 25
	}
	sys := BuildSystem(SystemParams{
		Kind: kind, Processors: 8, TotalCPUs: 8, CPUsPerL2: cpusPerL2,
		Scale: scale, Seed: o.Seeds[0],
	})
	sys.Hier.Bus().ClassifyAddr = regionClassifier(sys)
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	res := eng.Results()
	instr := float64(res.CPU.Instructions)
	bs := sys.Hier.Bus().Stats
	mc := sys.Hier.Bus().MissClass
	return fmt.Sprintf("dmiss=%.2f c2c=%.2f mem=%.2f memclass[code=%.2f kern=%.2f eden=%.2f surv=%.2f old=%.2f perm=%.2f oth=%.2f] thr=%d",
		sys.Hier.DataMissesPer1000(res.CPU.Instructions),
		1000*float64(bs.C2CTransfers)/instr, 1000*float64(bs.MemTransfers)/instr,
		1000*float64(mc[0])/instr, 1000*float64(mc[1])/instr, 1000*float64(mc[2])/instr,
		1000*float64(mc[3])/instr, 1000*float64(mc[4])/instr, 1000*float64(mc[5])/instr,
		1000*float64(mc[6])/instr, res.BusinessOps)
}

// Fig16SharedCaches reproduces Figure 16: data miss rate with 1/2/4/8
// processors per shared 1 MB L2 cache, for ECperf and SPECjbb-25. Sharing
// helps ECperf (coherence misses vanish, small footprint) and hurts
// SPECjbb-25 (the emulated database no longer fits).
func Fig16SharedCaches(o SharedCacheOpts) Figure {
	f := Figure{
		ID:     "Fig 16",
		Title:  "Cache Miss Rate on Shared Caches (Processors Per Shared 1 MB Cache)",
		XLabel: "Processors per shared L2",
		YLabel: "Data misses / 1000 instructions",
	}
	for _, kind := range []Kind{ECperf, SPECjbb} {
		label := kind.String()
		if kind == SPECjbb {
			label = "SPECjbb-25"
		}
		s := Series{Label: label}
		for _, g := range o.Grouping {
			pt := RunSharedCachePoint(kind, g, o)
			s.X = append(s.X, float64(g))
			s.Y = append(s.Y, pt.DataMissesPer1000.Mean())
			s.Err = append(s.Err, pt.DataMissesPer1000.StdDev())
		}
		f.Series = append(f.Series, s)
	}
	return f
}
