package core

import (
	"repro/internal/jvm"
	"repro/internal/osmodel"
)

// MemScaleOpts size the Figure 11 experiment.
type MemScaleOpts struct {
	// Scales are the scale-factor values to sweep (warehouses / OIR).
	Scales []int
	// OpsPerScaleUnit is the transaction budget per scale unit for
	// SPECjbb (per warehouse) and a fixed multiple for ECperf.
	OpsPerScaleUnit int
	Seed            uint64
}

// DefaultMemScaleOpts is the full-fidelity configuration.
func DefaultMemScaleOpts() MemScaleOpts {
	return MemScaleOpts{
		Scales:          []int{1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 35, 40},
		OpsPerScaleUnit: 1200,
		Seed:            20030208,
	}
}

// QuickMemScaleOpts is the reduced test/bench configuration.
func QuickMemScaleOpts() MemScaleOpts {
	return MemScaleOpts{
		Scales:          []int{1, 4, 8, 16, 32, 40},
		OpsPerScaleUnit: 500,
		Seed:            20030208,
	}
}

// fig11HeapConfig fixes the heap for the memory-scaling study. The old
// generation is sized so SPECjbb's linearly growing live set crosses the
// major-collection threshold around 30 warehouses — the point where the
// paper observed "the generational garbage collector begins compacting the
// older generations" and average live memory dips.
func fig11HeapConfig() jvm.Config {
	c := jvm.DefaultConfig()
	c.HeapBytes = 28 << 20
	c.NewGenBytes = 8 << 20
	// HotSpot 1.3-era full collections trigger on allocation failure, i.e.
	// a nearly full old generation — not on a conservative occupancy
	// fraction. Below the knee the old generation silently accumulates
	// promoted garbage (inflating "heap size after GC"); once the live set
	// approaches capacity, compaction starts and the reported live memory
	// DROPS — the paper's dip past ~30 warehouses.
	c.MajorOccupancy = 0.95
	// HotSpot 1.3.1 promoted aggressively (small survivor spaces); tenured
	// garbage accumulates between full collections.
	c.PromoteAge = 1
	return c
}

// memScalePoint runs one workload at one scale factor on a functional
// uniprocessor and reports the mean heap size immediately after garbage
// collection — the paper's live-memory metric (§4.6).
func memScalePoint(kind Kind, scale int, o MemScaleOpts) float64 {
	sys := buildMemScaleSystem(kind, scale, o.Seed)
	heap := sys.Heap

	var sources []osmodel.OpSource
	totalOps := 0
	switch kind {
	case SPECjbb:
		for i := 0; i < scale; i++ {
			sources = append(sources, sys.JBB.Source(i, -1))
		}
		totalOps = o.OpsPerScaleUnit * scale
	case ECperf:
		for i := 0; i < 6; i++ {
			sources = append(sources, sys.EC.Source(i, -1))
		}
		// ECperf's middle-tier op budget is independent of OIR — the
		// larger database lives on the other machine.
		totalOps = o.OpsPerScaleUnit * 12
	}

	now := uint64(0)
	var samples []float64
	lastGCs := heap.Stats.MinorGCs + heap.Stats.MajorGCs
	for k := 0; k < totalOps; k++ {
		src := sources[k%len(sources)]
		op := src.NextOp(k%len(sources), now)
		now += op.Instructions()
		if n := heap.Stats.MinorGCs + heap.Stats.MajorGCs; n != lastGCs {
			lastGCs = n
			samples = append(samples, float64(heap.Stats.LiveAfterLastGC))
		}
	}
	if len(samples) == 0 {
		// No natural collection in the budget: force one for the sample.
		gc := heap.MinorGC(nil)
		samples = append(samples, float64(gc.LiveBytes))
	}
	// Mean over the second half of the run (steady state).
	half := samples[len(samples)/2:]
	var sum float64
	for _, s := range half {
		sum += s
	}
	return sum / float64(len(half)) / (1 << 20) // MB
}

// buildMemScaleSystem assembles a functional-only system with the Figure 11
// heap. (BuildSystem's timing engine is unused here, but sharing the
// assembly keeps workload wiring identical.)
func buildMemScaleSystem(kind Kind, scale int, seed uint64) *System {
	return BuildSystem(SystemParams{
		Kind: kind, Processors: 1, Scale: scale, Seed: seed, TotalCPUs: 2,
		// The Figure 11 heap rides in as an explicit parameter so
		// memory-scaling cells can run concurrently with every other
		// figure's cells (a package-global hook would race).
		HeapConfig: fig11HeapConfig,
	})
}

// MemScaleRuns is the Figure 11 grid scheduled on a global scheduler;
// render with Figure after the scheduler drains.
type MemScaleRuns struct {
	opts  MemScaleOpts
	kinds []Kind
	vals  [][]float64 // [kind][scale]
}

// ScheduleMemScale submits every (workload, scale factor) cell of the
// memory-scaling study.
func ScheduleMemScale(sched *Scheduler, o MemScaleOpts) *MemScaleRuns {
	r := &MemScaleRuns{opts: o, kinds: []Kind{ECperf, SPECjbb}}
	for range r.kinds {
		r.vals = append(r.vals, make([]float64, len(o.Scales)))
	}
	for ki, kind := range r.kinds {
		for si, scale := range o.Scales {
			ki, si, kind, scale := ki, si, kind, scale
			sched.Submit(func() {
				r.vals[ki][si] = memScalePoint(kind, scale, o)
			})
		}
	}
	return r
}

// Figure renders Figure 11 from the completed grid. The scheduler the
// runs were submitted to must have drained.
func (r *MemScaleRuns) Figure() Figure {
	f := Figure{
		ID:     "Fig 11",
		Title:  "Memory Use vs. Scale Factor",
		XLabel: "Scale factor (warehouses / orders injection rate)",
		YLabel: "Live memory (MB)",
	}
	for ki, kind := range r.kinds {
		s := Series{Label: kind.String()}
		for si, scale := range r.opts.Scales {
			s.X = append(s.X, float64(scale))
			s.Y = append(s.Y, r.vals[ki][si])
			s.Err = append(s.Err, 0)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig11MemoryScaling reproduces Figure 11: live memory (MB, after GC)
// versus scale factor for both workloads.
func Fig11MemoryScaling(o MemScaleOpts) Figure {
	sched := NewScheduler(DefaultWorkers())
	r := ScheduleMemScale(sched, o)
	sched.Wait()
	return r.Figure()
}
