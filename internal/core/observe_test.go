package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
)

// TestObserveRunMatchesCounters is the profile-fidelity check: the folded
// profile's category totals must equal the engine's Figure 6/7 CPI counters
// exactly — same charge sites, same processor set, same measurement window.
func TestObserveRunMatchesCounters(t *testing.T) {
	sys := BuildSystem(SystemParams{Kind: SPECjbb, Processors: 4, Seed: 20030208})
	ob := obs.NewObserver()
	delta := ObserveRun(sys, ob, nil, 2_000_000, 8_000_000)

	c := sys.Engine.Results().CPU
	cats := ob.Profiler.CategoryTotals()
	want := map[obs.Cat]uint64{
		obs.CatBase:      c.BaseCycles,
		obs.CatIStall:    c.IStallCycles,
		obs.CatDStoreBuf: c.DStallStoreBuf,
		obs.CatDRAW:      c.DStallRAW,
		obs.CatDL2Hit:    c.DStallL2Hit,
		obs.CatDC2C:      c.DStallC2C,
		obs.CatDMem:      c.DStallMem,
		obs.CatDTLB:      c.DStallTLB,
	}
	for cat, w := range want {
		if cats[cat] != w {
			t.Errorf("profiler %v = %d, counters say %d", cat, cats[cat], w)
		}
	}
	if c.Total() == 0 {
		t.Fatal("no cycles measured")
	}

	res := sys.Engine.Results()
	if got := delta.Counter("workload.ops"); got != res.BusinessOps {
		t.Errorf("metrics delta ops = %d, results = %d", got, res.BusinessOps)
	}
	if got := delta.Counter("memsys.bus.c2c"); got != sys.Hier.Bus().Stats.C2CTransfers {
		t.Errorf("metrics delta c2c = %d, bus stats = %d", got, sys.Hier.Bus().Stats.C2CTransfers)
	}
	if got := delta.Counter("cpu.instructions"); got != c.Instructions {
		t.Errorf("metrics delta instructions = %d, counters = %d", got, c.Instructions)
	}

	// The trace must carry the paper's signature event classes on the
	// simulated clock: bus transactions, lock-contention stalls, and
	// business-operation spans (GC is covered separately — a short window
	// may legitimately have no collection).
	seen := map[string]bool{}
	var opSpans int
	for _, e := range ob.Tracer.Events() {
		seen[e.Name] = true
		if e.Comp == obs.CompWorkload && e.Phase == 'X' {
			opSpans++
		}
	}
	for _, want := range []string{"bus.gets", "lock.wait"} {
		if !seen[want] {
			t.Errorf("trace lacks %q events", want)
		}
	}
	if opSpans == 0 {
		t.Error("trace lacks business-operation spans")
	}

	// And it must export as valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, ob.Tracer); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(events) < ob.Tracer.Len() {
		t.Fatalf("export lost events: %d < %d", len(events), ob.Tracer.Len())
	}
}

// TestObserveRunGCSpans drives a window long enough to collect and checks
// the GC stop-the-world spans, pause histogram, and "gc" profile sub-phase
// all line up.
func TestObserveRunGCSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a multi-collection window")
	}
	sys := BuildSystem(SystemParams{Kind: ECperf, Processors: 15, Seed: 20030208})
	ob := obs.NewObserver()
	delta := ObserveRun(sys, ob, nil, 4_000_000, 24_000_000)

	res := sys.Engine.Results()
	if res.GCCount == 0 {
		t.Fatal("window produced no collections; lengthen it")
	}
	if got := sys.Engine.GCPauses().Count(); got != res.GCCount {
		t.Errorf("pause histogram count %d != GC count %d", got, res.GCCount)
	}
	h := delta.Histo("jvm.gc.pause_cycles")
	if got := h.Count(); got != res.GCCount {
		t.Errorf("metrics pause histogram count %d != GC count %d", got, res.GCCount)
	}

	// Spans cover warm-up too; at least the measured collections must show.
	var gcSpans uint64
	for _, e := range ob.Tracer.Events() {
		if e.Comp == obs.CompJVM && e.Phase == 'X' {
			gcSpans++
			if e.Dur == 0 {
				t.Error("GC span with zero duration")
			}
		}
	}
	if gcSpans < res.GCCount {
		t.Errorf("trace has %d GC spans, engine counted %d collections", gcSpans, res.GCCount)
	}

	// Collector cycles must be attributed to the gc sub-phase.
	var buf bytes.Buffer
	if err := ob.Profiler.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("measure/gc;")) {
		t.Errorf("folded profile lacks the measure/gc sub-phase:\n%s", buf.String())
	}
}

// TestRunObservedPointAgrees verifies the observed driver returns the same
// figure metrics as the plain driver — observation must not perturb the
// simulation.
func TestRunObservedPointAgrees(t *testing.T) {
	o := Opts{Procs: []int{2}, Seeds: []uint64{7}, WarmupCycles: 1_000_000, MeasureCycles: 4_000_000}
	plain := RunScalingPoint(SPECjbb, 2, 7, o)
	observed, snap := RunObservedPoint(SPECjbb, 2, 7, o, obs.NewObserver())
	if plain != observed {
		t.Errorf("observed point diverged:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if snap == nil || snap.Counter("workload.ops") == 0 {
		t.Error("observed point returned no metrics delta")
	}
	// A nil observer must also work and agree.
	unobserved, _ := RunObservedPoint(SPECjbb, 2, 7, o, nil)
	if plain != unobserved {
		t.Errorf("nil-observer point diverged: %+v vs %+v", plain, unobserved)
	}
}

// TestSweepObserve checks the cache-sweep observability hooks: per-config
// observers, instruction-count clocks, and the instruction metric.
func TestSweepObserve(t *testing.T) {
	var observers []*obs.Observer
	var labels []string
	o := QuickSweepOpts()
	o.Observe = func(label string) *obs.Observer {
		ob := obs.NewObserver()
		observers = append(observers, ob)
		labels = append(labels, label)
		return ob
	}
	r := runUniSweepConfigs(SPECjbb, 1, "SPECjbb-1", o,
		cache.SizeSweepConfigs("I"), cache.SizeSweepConfigs("D"))
	if len(observers) != 1 || labels[0] != "SPECjbb-1" {
		t.Fatalf("observer callback misfired: %v", labels)
	}
	ob := observers[0]
	if r.Instructions == 0 {
		t.Fatal("sweep measured no instructions")
	}
	snap := ob.Registry.Snapshot()
	if got := snap.Counter("sweep.instructions"); got != r.Instructions {
		t.Errorf("sweep.instructions = %d, result says %d", got, r.Instructions)
	}
	if ob.Profiler.Total() != r.Instructions {
		t.Errorf("profiler total %d != measured instructions %d", ob.Profiler.Total(), r.Instructions)
	}
	if ob.Tracer.Len() == 0 {
		t.Error("sweep trace is empty")
	}
}
