package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/workload/dbserver"
)

// CoSim is a co-simulated two-machine ECperf deployment: the application
// server (measured, as always) plus a real simulated database machine,
// coupled by a cluster coordinator — the paper's §3.3 methodology, where
// all tiers ran under simulation and only the middle tier was profiled.
type CoSim struct {
	App   *System
	DBEng *osmodel.Engine
	DBSrv *dbserver.Server
	Coord *cluster.Coordinator
}

// BuildCoSim assembles the deployment. The database machine is an
// 8-processor system of the same family running the dbserver workload with
// 16 worker threads.
func BuildCoSim(procs int, seed uint64) *CoSim {
	return buildCoSimInner(procs, seed, true)
}

func buildCoSimInner(procs int, seed uint64, withWorkers bool) *CoSim {
	app := BuildSystem(SystemParams{
		Kind:       ECperf,
		Processors: procs,
		Seed:       seed,
		CoSimDB:    true,
	})

	// The database machine.
	rng := simrand.New(seed ^ 0xdb)
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)
	comps := dbserver.Components{
		SQL: layout.Add("dbms", 384<<10, false, codeProfile()),
	}
	gcComp := layout.Add("jvm-gc", 96<<10, false, codeProfile())
	kern := layout.Add("kernel-net", 256<<10, true, codeProfile())

	hcfg := heapConfig()
	hcfg.GCComp = gcComp.ID
	heap := jvm.MustNewHeap(space, hcfg)

	net := netsim.NewNetwork(netsim.DefaultLink())
	ns := netsim.NewNetStack(space, kern, net, netstackConfig(), rng.Derive(1))

	mcfg := memsys.DefaultConfig(8)
	hier := memsys.New(mcfg)
	ecfg := osmodel.DefaultConfig(8)
	eng := osmodel.NewEngine(ecfg, hier, layout, net, rng.Derive(2))
	osmodel.AddOSDaemons(eng, space, kern, rng.Derive(3))

	srv := dbserver.New(dbserver.DefaultConfig(), heap, comps, ns, rng.Derive(4))
	if withWorkers {
		for i := 0; i < 16; i++ {
			eng.AddThread("db-worker", srv.WorkerSource(i))
		}
	}

	coord := cluster.New(app.Engine, eng, srv, netsim.DefaultLink().LatencyCycles)
	return &CoSim{App: app, DBEng: eng, DBSrv: srv, Coord: coord}
}

// BuildCoSimProbe is BuildCoSim without the database worker threads added,
// so diagnostics can wrap the worker sources before registering them.
func BuildCoSimProbe(procs int, seed uint64) *CoSim {
	return buildCoSimInner(procs, seed, false)
}

// CoSimResult compares the queueing-model database against the
// co-simulated one.
type CoSimResult struct {
	ModelThroughput float64 // BBops/s with the internal/db timing model
	CoSimThroughput float64 // BBops/s with the real database machine
	DBBusyFrac      float64 // database machine busy fraction (mpstat view)
	DBQueries       uint64
}

// RunCoSim measures both configurations at the same seed and window.
func RunCoSim(procs int, seed uint64, warmup, measure uint64) CoSimResult {
	var res CoSimResult
	seconds := float64(measure) / CyclesPerSecond

	// Queueing-model baseline.
	base := BuildSystem(SystemParams{Kind: ECperf, Processors: procs, Seed: seed})
	base.Engine.Run(warmup)
	base.Engine.ResetStats()
	base.Engine.Run(warmup + measure)
	res.ModelThroughput = float64(base.Engine.Results().BusinessOps) / seconds

	// Co-simulated deployment.
	cs := BuildCoSim(procs, seed)
	cs.Coord.Run(warmup)
	cs.App.Engine.ResetStats()
	cs.DBEng.ResetStats()
	cs.Coord.Run(warmup + measure)
	res.CoSimThroughput = float64(cs.App.Engine.Results().BusinessOps) / seconds
	dbm := cs.DBEng.Results().Modes
	if total := float64(dbm.Total()); total > 0 {
		res.DBBusyFrac = float64(dbm.Busy()) / total
	}
	res.DBQueries = cs.DBSrv.Served
	return res
}

// CoSimExperiment renders the comparison: the queueing abstraction the
// other experiments use should agree with the fully simulated database to
// within a modest margin, and the database machine itself should be far
// from saturated ("ECperf does not overly stress the database", §2.2).
func CoSimExperiment(o AblationOpts) Figure {
	r := RunCoSim(o.Processors, o.Seed, o.WarmupCycles, o.MeasureCycles)
	f := Figure{
		ID:     "Co-simulation",
		Title:  "Queueing-model database vs. co-simulated database machine",
		XLabel: "configuration (0=model, 1=co-simulated)",
		YLabel: "Throughput (BBops/s)",
	}
	f.Series = append(f.Series, Series{
		Label: "ECperf",
		X:     []float64{0, 1},
		Y:     []float64{r.ModelThroughput, r.CoSimThroughput},
		Err:   []float64{0, 0},
	})
	ratio := 0.0
	if r.ModelThroughput > 0 {
		ratio = r.CoSimThroughput / r.ModelThroughput
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("co-simulated throughput is %.0f%% of the queueing model's", 100*ratio),
		fmt.Sprintf("database machine busy %.0f%% of its cycles over %d queries — not a bottleneck (§2.2)",
			100*r.DBBusyFrac, r.DBQueries))
	return f
}
