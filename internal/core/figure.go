package core

// Series is one labeled curve of a figure: X positions, Y means, and the
// standard deviation of Y across seeds (the paper's error bars).
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Figure is the data behind one reproduced figure, ready for rendering by
// internal/report.
type Figure struct {
	ID     string // "Fig 4"
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY reflect the paper's axes (e.g. cache-size sweeps).
	LogX, LogY bool
	Series     []Series
	// Notes carry headline observations for EXPERIMENTS.md.
	Notes []string
}
