package core

import (
	"strings"
	"testing"
)

// fabricate builds a ScalingSweep from synthetic points so figure drivers
// can be tested without simulation.
func fabricate(kind Kind, procs []int, seeds int) *ScalingSweep {
	sw := &ScalingSweep{Kind: kind, Opts: Opts{Procs: procs}}
	for _, p := range procs {
		cell := SweepCell{Processors: p}
		for s := 0; s < seeds; s++ {
			pt := ScalingPoint{
				Processors:     p,
				Seed:           uint64(s),
				Throughput:     1000 * float64(p) * (1 - 0.02*float64(p)) * (1 + 0.001*float64(s)),
				ThroughputNoGC: 1050 * float64(p) * (1 - 0.02*float64(p)) * (1 + 0.001*float64(s)),
				UserFrac:       0.8,
				SystemFrac:     0.1,
				IdleFrac:       0.1,
				CPI:            1.5 + 0.01*float64(p),
				OtherCPI:       1.0,
				IStallCPI:      0.3,
				DStallCPI:      0.2 + 0.01*float64(p),
				DSL2Hit:        0.5,
				DSC2C:          0.3,
				DSMem:          0.2,
				C2CRatio:       0.1 + 0.01*float64(p),
				GCWallFrac:     0.05,
				InstrPerOp:     10000,
			}
			cell.Points = append(cell.Points, pt)
		}
		sw.Cells = append(sw.Cells, cell)
	}
	return sw
}

func TestFig4FigureStructure(t *testing.T) {
	procs := []int{1, 4, 8}
	jbb := fabricate(SPECjbb, procs, 3)
	ec := fabricate(ECperf, procs, 3)
	f := Fig4Throughput(jbb, ec)
	if len(f.Series) != 3 { // ECperf, SPECjbb, Linear
		t.Fatalf("series = %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != len(procs) || len(s.Y) != len(procs) || len(s.Err) != len(procs) {
			t.Fatalf("series %s has ragged data", s.Label)
		}
	}
	// Speedups are normalized: 1 at one processor.
	for _, s := range f.Series[:2] {
		if s.Y[0] < 0.99 || s.Y[0] > 1.01 {
			t.Fatalf("%s speedup at 1P = %v, want 1", s.Label, s.Y[0])
		}
	}
}

func TestFig5Through9Structure(t *testing.T) {
	procs := []int{1, 8}
	jbb := fabricate(SPECjbb, procs, 2)
	ec := fabricate(ECperf, procs, 2)

	if f := Fig5ExecutionModes(ec); len(f.Series) != 5 {
		t.Fatalf("Fig5 series = %d", len(f.Series))
	}
	if f := Fig6CPIBreakdown(jbb); len(f.Series) != 4 {
		t.Fatalf("Fig6 series = %d", len(f.Series))
	}
	if f := Fig7DataStall(jbb); len(f.Series) != 5 {
		t.Fatalf("Fig7 series = %d", len(f.Series))
	}
	if f := Fig8C2CRatio(jbb, ec); len(f.Series) != 2 {
		t.Fatalf("Fig8 series = %d", len(f.Series))
	}
	f := Fig9GCScaling(jbb, ec)
	if len(f.Series) != 5 { // 2 workloads x (with, without) + linear
		t.Fatalf("Fig9 series = %d", len(f.Series))
	}
	// Significance notes are attached for both workloads.
	notes := strings.Join(f.Notes, "\n")
	if !strings.Contains(notes, "SPECjbb") || !strings.Contains(notes, "ECperf") {
		t.Fatalf("Fig9 notes incomplete: %v", f.Notes)
	}
}

func TestBaseThroughputPanicsWithoutOneProc(t *testing.T) {
	sw := fabricate(SPECjbb, []int{2, 4}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sweep without 1-processor cell")
		}
	}()
	sw.BaseThroughput()
}

func TestSweepCellMetric(t *testing.T) {
	sw := fabricate(SPECjbb, []int{4}, 3)
	m := sw.Cells[0].Metric(func(p *ScalingPoint) float64 { return p.CPI })
	if m.N() != 3 {
		t.Fatalf("metric samples = %d", m.N())
	}
	if m.Mean() < 1.5 || m.Mean() > 1.6 {
		t.Fatalf("metric mean = %v", m.Mean())
	}
}
