package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

// NewLatencyCollector builds a request-latency collector from the
// observability flags, or nil when latency tracking was not requested —
// the nil collector keeps the engine's zero-overhead path. A malformed
// -slo spec is a user error and is returned as one.
func NewLatencyCollector(f *obs.Flags) (*reqtrace.Collector, error) {
	if f == nil || !f.LatencyEnabled() {
		return nil, nil
	}
	objs, err := reqtrace.ParseObjectives(f.SLO)
	if err != nil {
		return nil, fmt.Errorf("parsing -slo: %w", err)
	}
	return reqtrace.NewCollector(reqtrace.Options{
		IntervalCycles: f.LatencyInterval,
		Objectives:     objs,
	}), nil
}

// AttachLatency wires a latency collector into a built system's timing
// engine and binds its report renderer into the observer (so -inspect's
// /latency page and WriteArtifacts can see it without obs depending on
// reqtrace). A nil collector is a no-op; call before the first Run.
func AttachLatency(sys *System, ob *obs.Observer, rt *reqtrace.Collector) {
	if rt == nil {
		return
	}
	sys.Engine.SetReqTrace(rt)
	if ob != nil {
		ob.LatencyReport = rt.ReportJSON
	}
}
