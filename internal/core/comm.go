package core

import (
	"fmt"

	"repro/internal/stats"
)

// CommOpts size the communication-behavior experiments (Figures 10/14/15).
type CommOpts struct {
	Processors    int
	Seed          uint64
	WarmupCycles  uint64
	MeasureCycles uint64
	// TimelineBin is the Figure 10 sampling interval in cycles (the paper
	// used 100 ms of wall time; the simulated equivalent is scaled).
	TimelineBin uint64
}

// DefaultCommOpts is the full-fidelity configuration.
func DefaultCommOpts() CommOpts {
	return CommOpts{
		Processors:    8,
		Seed:          20030208,
		WarmupCycles:  12_000_000,
		MeasureCycles: 60_000_000,
		TimelineBin:   1_000_000,
	}
}

// QuickCommOpts is the reduced test/bench configuration.
func QuickCommOpts() CommOpts {
	return CommOpts{
		Processors:    8,
		Seed:          20030208,
		WarmupCycles:  4_000_000,
		MeasureCycles: 20_000_000,
		TimelineBin:   1_000_000,
	}
}

// CommProfile is one workload's measured communication behavior.
type CommProfile struct {
	Kind Kind
	// Dist is the per-line cache-to-cache transfer distribution.
	Dist *stats.ShareDist
	// TopLineShare is the hottest single line's share of all transfers
	// (§5.2: 20% for SPECjbb, 14% for ECperf).
	TopLineShare float64
	// Top01PctShare is the share of the hottest 0.1% of touched lines
	// (§5.2: >70% for SPECjbb, 56% for ECperf).
	Top01PctShare float64
	// LinesTouched and LinesTransferring size the footprints.
	LinesTouched      int
	LinesTransferring int
	// Timeline is the C2C-per-bin series (Figure 10), and GCCount the
	// collections inside the window.
	Timeline []float64
	GCCount  uint64
}

// RunCommProfile measures one workload's communication profile on an
// 8-processor run with per-line profiling and the transfer timeline
// enabled.
func RunCommProfile(kind Kind, o CommOpts) CommProfile {
	sys := BuildSystem(SystemParams{Kind: kind, Processors: o.Processors, Seed: o.Seed})
	bus := sys.Hier.Bus()
	bus.EnableProfile()
	bus.EnableTimeline(o.TimelineBin)
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats() // restarts profile and timeline too
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	res := eng.Results()

	dist := bus.Profile()
	transferring := 0
	for _, c := range dist.SortedCounts() {
		if c > 0 {
			transferring++
		}
	}
	// The timeline bins are indexed by absolute simulated time; drop the
	// warm-up prefix so the series starts at the measurement window.
	bins := bus.Timeline().Bins()
	if skip := int(o.WarmupCycles / o.TimelineBin); skip < len(bins) {
		bins = bins[skip:]
	}
	return CommProfile{
		Kind:              kind,
		Dist:              dist,
		TopLineShare:      dist.TopShare(1),
		Top01PctShare:     dist.TopFractionShare(0.001),
		LinesTouched:      dist.Keys(),
		LinesTransferring: transferring,
		Timeline:          bins,
		GCCount:           res.GCCount,
	}
}

// ScheduleCommProfiles submits both workloads' communication profiles as
// cells; the pointees are filled by sched.Wait.
func ScheduleCommProfiles(sched *Scheduler, o CommOpts) (jbb, ec *CommProfile) {
	jbb, ec = new(CommProfile), new(CommProfile)
	sched.Submit(func() { *jbb = RunCommProfile(SPECjbb, o) })
	sched.Submit(func() { *ec = RunCommProfile(ECperf, o) })
	return jbb, ec
}

// Fig14C2CDistribution reproduces Figure 14: the cumulative fraction of
// cache-to-cache transfers versus the fraction of touched cache lines
// (hottest lines first).
func Fig14C2CDistribution(jbb, ec CommProfile) Figure {
	f := Figure{
		ID:     "Fig 14",
		Title:  "Distribution of Cache-to-Cache Transfers (64-byte lines)",
		XLabel: "Cache lines touched (%)",
		YLabel: "Cache-to-cache transfers (%)",
	}
	for _, p := range []CommProfile{ec, jbb} {
		s := Series{Label: p.Kind.String()}
		for _, pt := range p.Dist.CDF(100) {
			s.X = append(s.X, 100*pt.KeyFrac)
			s.Y = append(s.Y, 100*pt.EventShare)
			s.Err = append(s.Err, 0)
		}
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: hottest line %.1f%% of transfers; hottest 0.1%% of lines %.1f%%",
			p.Kind, 100*p.TopLineShare, 100*p.Top01PctShare))
	}
	return f
}

// Fig15C2CFootprint reproduces Figure 15: the same cumulative distribution
// against the absolute number of lines (semi-log x), exposing that ECperf's
// communication footprint is larger in absolute terms.
func Fig15C2CFootprint(jbb, ec CommProfile) Figure {
	f := Figure{
		ID:     "Fig 15",
		Title:  "Distribution of Cache-to-Cache Transfers vs. Memory Touched",
		XLabel: "Lines (64-byte), hottest first",
		YLabel: "Cache-to-cache transfers (%)",
		LogX:   true,
	}
	for _, p := range []CommProfile{ec, jbb} {
		s := Series{Label: p.Kind.String()}
		for k := 1; k <= p.LinesTouched; k *= 2 {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, 100*p.Dist.TopShare(k))
			s.Err = append(s.Err, 0)
		}
		s.X = append(s.X, float64(p.LinesTouched))
		s.Y = append(s.Y, 100)
		s.Err = append(s.Err, 0)
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: %d lines touched, %d lines ever transferred",
			p.Kind, p.LinesTouched, p.LinesTransferring))
	}
	return f
}

// Fig10C2CTimeline reproduces Figure 10: cache-to-cache transfers per
// interval over time for SPECjbb, normalized to the peak bin — the rate
// collapses during each garbage collection.
func Fig10C2CTimeline(p CommProfile) Figure {
	f := Figure{
		ID:     "Fig 10",
		Title:  "Cache-to-Cache Transfers Per Interval Over Time (Normalized, SPECjbb)",
		XLabel: "Interval",
		YLabel: "Normalized transfer rate",
	}
	peak := 0.0
	for _, v := range p.Timeline {
		if v > peak {
			peak = v
		}
	}
	s := Series{Label: p.Kind.String()}
	for i, v := range p.Timeline {
		s.X = append(s.X, float64(i))
		y := 0.0
		if peak > 0 {
			y = v / peak
		}
		s.Y = append(s.Y, y)
		s.Err = append(s.Err, 0)
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, fmt.Sprintf("%d garbage collections in the window", p.GCCount))
	return f
}
