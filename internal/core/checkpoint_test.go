package core

import (
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// ckptParams is a small, fast faulted configuration: faults armed so the
// fingerprint covers the injector and resilience state too.
func ckptParams() SystemParams {
	return SystemParams{
		Kind: ECperf, Processors: 2, Seed: 42,
		FaultSchedule: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Partition, At: 6_000_000, Duration: 4_000_000, Peer: 1},
		}},
	}
}

// TestCheckpointResumeBitIdentical is the survivability contract: a run
// resumed from a checkpoint finishes in exactly the state of a run that
// never stopped.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const warmup, mid, end = 2_000_000, 10_000_000, 18_000_000

	// The uninterrupted reference run.
	ref := BuildSystem(ckptParams())
	ref.Engine.Run(warmup)
	ref.Engine.ResetStats()
	ref.Engine.Run(end)
	want := Fingerprint(ref)

	// The checkpointed run: stop at mid, save, load, resume, finish.
	orig := BuildSystem(ckptParams())
	orig.Engine.Run(warmup)
	orig.Engine.ResetStats()
	orig.Engine.Run(mid)
	cp := Capture(orig, warmup, mid, "test")
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest != cp.Digest || loaded.Cycle != cp.Cycle || loaded.Warmup != cp.Warmup {
		t.Fatalf("checkpoint round-trip changed it: %+v != %+v", loaded, cp)
	}
	if len(loaded.Params.FaultSchedule.Events) != 1 {
		t.Fatalf("fault schedule lost in round trip: %+v", loaded.Params.FaultSchedule)
	}
	resumed, err := Resume(loaded)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Engine.Run(end)
	if got := Fingerprint(resumed); got != want {
		t.Fatalf("resumed run diverged: fingerprint %#x, want %#x", got, want)
	}
	// And the original, had it kept going, matches too.
	orig.Engine.Run(end)
	if got := Fingerprint(orig); got != want {
		t.Fatalf("original continuation diverged: %#x, want %#x", got, want)
	}
}

// TestResumeDetectsDrift checks a stale digest (code or schedule changed
// since the save) fails loudly instead of resuming a wrong run.
func TestResumeDetectsDrift(t *testing.T) {
	sys := BuildSystem(ckptParams())
	sys.Engine.Run(4_000_000)
	cp := Capture(sys, 0, 4_000_000, "test")
	cp.Digest ^= 1
	if _, err := Resume(cp); err == nil {
		t.Fatal("Resume accepted a tampered digest")
	}
}

// TestLoadCheckpointRejectsBadFiles covers version and consistency checks.
func TestLoadCheckpointRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	sys := BuildSystem(ckptParams())
	sys.Engine.Run(1_000_000)

	cp := Capture(sys, 0, 1_000_000, "test")
	cp.Version = 99
	path := filepath.Join(dir, "badver.json")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("accepted unknown checkpoint version")
	}

	cp = Capture(sys, 5_000_000, 1_000_000, "test") // warmup beyond cycle
	path = filepath.Join(dir, "badwarm.json")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("accepted warmup > cycle")
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("accepted a missing file")
	}
}
