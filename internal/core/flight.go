package core

import (
	"repro/internal/obs/flightrec"
)

// AttachFlight binds a flight recorder to an assembled system: the fault
// schedule arms the window trigger, and the engine's latency collector (if
// one was attached with AttachLatency) feeds the SLO-burn trigger and the
// in-flight span table. The run loops then tick the recorder at slice
// boundaries. A nil recorder leaves the system untouched.
//
// Call after BuildSystem and AttachLatency, before the first Run.
func AttachFlight(sys *System, rec *flightrec.Recorder) {
	if rec == nil {
		return
	}
	sys.Flight = rec
	rec.SetSchedule(sys.Params.FaultSchedule)
	rec.SetCollector(sys.Engine.ReqTrace())
}

// flightTick advances the recorder and turns a tripped watchdog into a
// tagged dump. Called from the run loops after every engine slice; every
// call is nil-safe, so unobserved runs pay two nil checks.
func flightTick(sys *System, now uint64) {
	sys.Flight.Tick(now)
	if sys.Flight != nil {
		if wd := sys.Engine.WatchdogTripped(); wd != nil {
			sys.Flight.Watchdog(wd.Cycle, wd.String())
		}
	}
}
