// Run survivability: checkpoint/restore for long simulations.
//
// The simulator is deterministic — a run is a pure function of its
// SystemParams (seed included) — so a checkpoint does not serialize the
// machine state. It records the *recipe* (params, phase boundaries, the
// cycle reached) plus a fingerprint of the run's observable state at that
// cycle. Restore rebuilds the system and replays it to the checkpoint
// cycle, then verifies the fingerprint: a resumed run is bit-identical to
// one that never stopped, and any drift (changed code, changed schedule,
// corrupted file) is detected instead of silently producing wrong curves.
package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"repro/internal/obs"
)

// CheckpointVersion guards the format; bump on incompatible change.
const CheckpointVersion = 1

// Checkpoint is the saved run recipe + state fingerprint.
type Checkpoint struct {
	Version int    `json:"version"`
	Command string `json:"command,omitempty"` // which driver wrote it

	Params SystemParams `json:"params"`
	// Warmup is the cycle at which stats were reset (0 = never).
	Warmup uint64 `json:"warmup"`
	// Cycle is the simulated time the run had reached.
	Cycle uint64 `json:"cycle"`
	// Digest fingerprints the run's observable state at Cycle.
	Digest uint64 `json:"digest"`
}

// Fingerprint hashes the system's observable state: engine results
// (throughput, per-tag ops, cycle accounting, locks, GC), bus statistics,
// heap occupancy, and fault/resilience counters. Two runs with equal
// fingerprints at the same cycle have behaved identically in every way the
// experiments report.
func Fingerprint(sys *System) uint64 {
	h := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }

	eng := sys.Engine
	res := eng.Results()
	w("t=%d ops=%d", eng.Now(), res.BusinessOps)
	tags := make([]string, 0, len(res.OpsByTag))
	for tag := range res.OpsByTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		w(" %s=%d", tag, res.OpsByTag[tag])
	}
	w(" modes=%+v cpu=%+v", res.Modes, res.CPU)
	w(" gc=%d,%d locks=%d,%d,%d wait=%d,%d,%d",
		res.GCCount, res.GCWall, res.LockWaitCycles, res.LockBlocks, res.LockAcquires,
		res.WaitMonitor, res.WaitSpin, res.WaitSem)
	w(" bus=%+v", sys.Hier.Bus().Stats)
	w(" heap=%d,%d", sys.Heap.EdenUsed(), sys.Heap.OldUsed())
	if sys.Faults != nil {
		w(" inj=%+v", sys.Faults.Stats)
	}
	if sys.EC != nil {
		w(" failed=%d shed=%d", sys.EC.FailedOps, sys.EC.ShedOps)
		if c := sys.EC.Caller(); c != nil {
			w(" calls=%+v breaker=%+v", c.Stats, c.BreakerStats())
		}
	}
	return h.Sum64()
}

// Capture snapshots a running system into a checkpoint. warmup must be the
// cycle at which the caller reset stats (0 if it never did), and ranTo the
// horizon of the last Engine.Run call — not Engine.Now(), which can sit a
// little past the horizon and would make the replay process events the
// original run had not reached yet.
func Capture(sys *System, warmup, ranTo uint64, command string) Checkpoint {
	return Checkpoint{
		Version: CheckpointVersion,
		Command: command,
		Params:  sys.Params,
		Warmup:  warmup,
		Cycle:   ranTo,
		Digest:  Fingerprint(sys),
	}
}

// Save writes the checkpoint atomically (write-temp-then-rename): a crash
// mid-write leaves the previous checkpoint intact.
func (cp Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	return obs.AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	var cp Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return cp, err
	}
	if err := json.Unmarshal(data, &cp); err != nil {
		return cp, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return cp, fmt.Errorf("checkpoint %s: version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	if cp.Warmup > cp.Cycle {
		return cp, fmt.Errorf("checkpoint %s: warmup %d beyond cycle %d", path, cp.Warmup, cp.Cycle)
	}
	return cp, nil
}

// CheckpointPlan tells a run driver where and how often to save resumable
// checkpoints. A nil plan (or empty Path) disables saving.
type CheckpointPlan struct {
	Path string
	// Every is the save cadence in simulated cycles over the measurement
	// window; 0 saves only at the run's end.
	Every   uint64
	Command string
}

// save captures and writes a checkpoint at horizon ranTo.
func (p *CheckpointPlan) save(sys *System, warmup, ranTo uint64) error {
	if p == nil || p.Path == "" {
		return nil
	}
	return Capture(sys, warmup, ranTo, p.Command).Save(p.Path)
}

// Resume rebuilds the checkpointed system and replays it to the checkpoint
// cycle, reproducing the warmup/reset discipline, then verifies the state
// fingerprint. The returned system continues exactly where the original
// would have: determinism makes the replayed prefix bit-identical.
func Resume(cp Checkpoint) (*System, error) {
	sys := BuildSystem(cp.Params)
	if cp.Warmup > 0 {
		sys.Engine.Run(cp.Warmup)
		sys.Engine.ResetStats()
	}
	sys.Engine.Run(cp.Cycle)
	if got := Fingerprint(sys); got != cp.Digest {
		return nil, fmt.Errorf("checkpoint replay diverged at cycle %d: fingerprint %#x, want %#x (code or schedule changed since the checkpoint was written?)",
			cp.Cycle, got, cp.Digest)
	}
	return sys, nil
}

// ResumeRun resumes a checkpointed run and drives it to the end of its
// measurement window (cp.Warmup + measure), reporting progress on hb and
// saving further checkpoints per plan. It returns the finished system, ready
// for results reporting; a checkpoint already at or past the target resumes
// and returns immediately.
func ResumeRun(cp Checkpoint, hb *obs.Heartbeat, measure uint64, plan *CheckpointPlan) (*System, error) {
	sys, err := Resume(cp)
	if err != nil {
		return nil, err
	}
	const slice = 2_000_000
	target := cp.Warmup + measure
	nextSave := uint64(0)
	if plan != nil && plan.Every > 0 {
		nextSave = cp.Cycle + plan.Every
	}
	for t := cp.Cycle; t < target; {
		t += slice
		if t > target {
			t = target
		}
		sys.Engine.Run(t)
		hb.SetCycles(t)
		if nextSave > 0 && t >= nextSave {
			if err := plan.save(sys, cp.Warmup, t); err != nil {
				return nil, err
			}
			for nextSave <= t {
				nextSave += plan.Every
			}
		}
	}
	if cp.Cycle < target {
		if err := plan.save(sys, cp.Warmup, target); err != nil {
			return nil, err
		}
	}
	return sys, nil
}
