package core

import (
	"fmt"

	"repro/internal/appserver"
	"repro/internal/fault"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/reqtrace"
)

// FaultRunOpts size a throughput-under-fault experiment: the same (seed,
// workload) measured twice — once clean, once with the schedule armed — with
// throughput sampled in fixed bins so the degradation and the recovery are
// visible as a curve.
//
// Schedule timestamps are absolute simulated cycles, so windows meant to hit
// the measurement interval must be placed after WarmupCycles.
type FaultRunOpts struct {
	Processors int
	Seed       uint64
	// MemModel selects the memory timing model for both runs of the pair
	// (default memsys.MemFixed).
	MemModel      memsys.MemModel
	Schedule      *fault.Schedule
	Policy        *fault.Policy // nil = fault.DefaultPolicy
	WarmupCycles  uint64
	MeasureCycles uint64
	// BinCycles is the throughput sampling interval.
	BinCycles uint64

	// Observer, when non-nil, is attached to the *faulted* run: its trace
	// carries the scheduled fault windows and resilience instants, and its
	// registry the fault.* counters. Progress reports both runs' cycles.
	Observer *obs.Observer
	Progress *obs.Heartbeat
	// Latency, when non-nil, is attached to the *faulted* run too: the
	// experiment's question is how request latency degrades and recovers
	// around the windows, and the clean run at the same seed is already
	// characterized by a plain observed run.
	Latency *reqtrace.Collector
	// Flight, when non-nil, rides the *faulted* run: every scheduled window
	// entry triggers a post-mortem bundle, so the experiment's storms leave
	// black-box dumps behind.
	Flight *flightrec.Recorder
}

// DefaultFaultRunOpts returns the documented fault demo: the full standard
// measurement window with the demo schedule (every fault kind once) spread
// across it.
func DefaultFaultRunOpts() FaultRunOpts {
	const warmup, measure = 12_000_000, 120_000_000
	return FaultRunOpts{
		Processors:    4,
		Seed:          20030208,
		Schedule:      fault.Demo(warmup, measure),
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		BinCycles:     4_000_000,
	}
}

// QuickFaultRunOpts is the reduced test/CI configuration: one partition
// window inside a short run.
func QuickFaultRunOpts() FaultRunOpts {
	return FaultRunOpts{
		Processors:   2,
		Seed:         20030208,
		WarmupCycles: 4_000_000, MeasureCycles: 36_000_000,
		BinCycles: 2_000_000,
		Schedule: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Partition, At: 12_000_000, Duration: 8_000_000, Peer: 1},
		}},
	}
}

// FaultRecovery is the measured recovery from one scheduled fault window.
type FaultRecovery struct {
	Kind      string
	WindowEnd uint64 // absolute cycle the fault lifted
	// RecoveredAt is the start of the first post-window bin whose faulted
	// throughput reached 90% of the clean run's same bin; Recovered is
	// false when the run ended first.
	RecoveredAt    uint64
	RecoveryCycles uint64
	Recovered      bool
}

// FaultRunResult is the paired measurement.
type FaultRunResult struct {
	Opts FaultRunOpts
	// BinStart[i] is the absolute start cycle of bin i; Baseline/Faulted
	// are business ops completed in that bin by the clean and faulted runs.
	BinStart []uint64
	Baseline []uint64
	Faulted  []uint64

	Recovery []FaultRecovery

	// Resilience and injection activity of the faulted run.
	Calls    appserver.CallStats
	Breaker  fault.BreakerStats
	Shed     uint64
	Injected fault.InjectStats
	Failed   uint64 // operations that took their error path
}

// binnedRun drives one system through warmup then the measurement window,
// recording business ops per bin.
func binnedRun(sys *System, o FaultRunOpts) []uint64 {
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	var bins []uint64
	prev := uint64(0)
	for t := o.WarmupCycles; t < o.WarmupCycles+o.MeasureCycles; {
		t += o.BinCycles
		if t > o.WarmupCycles+o.MeasureCycles {
			t = o.WarmupCycles + o.MeasureCycles
		}
		eng.Run(t)
		o.Progress.SetCycles(t)
		flightTick(sys, t)
		if rt := eng.ReqTrace(); rt != nil {
			p50, p99 := rt.LiveQuantiles()
			o.Progress.SetLatency(p50, p99)
		}
		ops := eng.Results().BusinessOps
		bins = append(bins, ops-prev)
		prev = ops
	}
	o.Progress.Add(1)
	return bins
}

// RunFaultExperiment measures ECperf throughput with and without the fault
// schedule at the same seed, and derives per-window recovery times.
func RunFaultExperiment(o FaultRunOpts) FaultRunResult {
	if o.BinCycles == 0 {
		o.BinCycles = 4_000_000
	}
	res := FaultRunResult{Opts: o}
	for t := o.WarmupCycles; t < o.WarmupCycles+o.MeasureCycles; t += o.BinCycles {
		res.BinStart = append(res.BinStart, t)
	}

	clean := BuildSystem(SystemParams{Kind: ECperf, Processors: o.Processors, Seed: o.Seed, MemModel: o.MemModel})
	res.Baseline = binnedRun(clean, o)

	faulted := BuildSystem(SystemParams{
		Kind: ECperf, Processors: o.Processors, Seed: o.Seed, MemModel: o.MemModel,
		FaultSchedule: o.Schedule, FaultPolicy: o.Policy,
	})
	AttachObserver(faulted, o.Observer)
	AttachLatency(faulted, o.Observer, o.Latency)
	AttachFlight(faulted, o.Flight)
	res.Faulted = binnedRun(faulted, o)

	if c := faulted.EC.Caller(); c != nil {
		res.Calls = c.Stats
		res.Breaker = c.BreakerStats()
		res.Shed = c.ShedCount()
	}
	res.Injected = faulted.Faults.Stats
	res.Failed = faulted.EC.FailedOps

	for _, e := range o.Schedule.Events {
		rec := FaultRecovery{Kind: e.Kind.String(), WindowEnd: e.End()}
		for i, start := range res.BinStart {
			if start < e.End() || i >= len(res.Faulted) {
				continue
			}
			if base := res.Baseline[i]; res.Faulted[i]*10 >= base*9 {
				rec.Recovered = true
				rec.RecoveredAt = start
				rec.RecoveryCycles = start - e.End()
				break
			}
		}
		res.Recovery = append(res.Recovery, rec)
	}
	return res
}

// FaultExperiment renders the throughput-under-fault curve: clean and
// faulted BBops/s over the measurement window, with recovery times and
// resilience activity in the notes.
func FaultExperiment(o FaultRunOpts) Figure {
	return FaultFigure(RunFaultExperiment(o))
}

// FaultFigure renders an already-measured fault run.
func FaultFigure(r FaultRunResult) Figure {
	o := r.Opts
	f := Figure{
		ID:     "Fault injection",
		Title:  "ECperf throughput under injected faults (same seed, schedule armed vs clean)",
		XLabel: "Simulated time (s)",
		YLabel: "Throughput (BBops/s)",
	}
	binSec := float64(o.BinCycles) / CyclesPerSecond
	mk := func(label string, bins []uint64) Series {
		s := Series{Label: label}
		for i, b := range bins {
			s.X = append(s.X, float64(r.BinStart[i])/CyclesPerSecond)
			s.Y = append(s.Y, float64(b)/binSec)
			s.Err = append(s.Err, 0)
		}
		return s
	}
	f.Series = append(f.Series, mk("clean", r.Baseline), mk("faulted", r.Faulted))

	for _, rec := range r.Recovery {
		if rec.Recovered {
			f.Notes = append(f.Notes, fmt.Sprintf("%s: recovered to 90%% of clean throughput %.1f ms after the window lifted",
				rec.Kind, 1000*float64(rec.RecoveryCycles)/CyclesPerSecond))
		} else {
			f.Notes = append(f.Notes, fmt.Sprintf("%s: throughput had not recovered by the end of the run", rec.Kind))
		}
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("resilience: %d calls, %d retries, %d timeouts, %d fast-fails, %d breaker opens, %d shed, %d failed ops",
			r.Calls.Calls, r.Calls.Retries, r.Calls.Timeouts, r.Calls.FastFails, r.Breaker.Opens, r.Shed, r.Failed))
	return f
}
