package core

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Opts control a timing experiment's sweep shape and statistical effort.
type Opts struct {
	// Procs are the processor-set sizes to sweep (Figures 4–9).
	Procs []int
	// Seeds drive the variability methodology (one run per seed).
	Seeds []uint64
	// WarmupCycles are simulated then excluded from measurement.
	WarmupCycles uint64
	// MeasureCycles is the steady-state measurement window.
	MeasureCycles uint64
	// Progress, when non-nil, is ticked once per completed run and credited
	// with each run's simulated cycles — the sweep's liveness heartbeat.
	Progress *obs.Heartbeat
	// MemModel selects the memory timing model for every run in the sweep
	// (default memsys.MemFixed); MemCurve optionally overrides the loaded
	// model's parameters.
	MemModel memsys.MemModel
	MemCurve *memsys.LoadedConfig
}

// DefaultOpts is the full-fidelity configuration used by cmd/figures:
// the paper's processor counts, three seeds, and a window long enough for
// several garbage collections at every point.
func DefaultOpts() Opts {
	return Opts{
		Procs:         []int{1, 2, 4, 6, 8, 10, 12, 14, 15},
		Seeds:         stats.Seeds(20030208, 3), // HPCA 2003's opening day
		WarmupCycles:  12_000_000,
		MeasureCycles: 50_000_000,
	}
}

// QuickOpts is a reduced configuration for tests and benchmarks: fewer
// points, one seed, shorter windows. The shapes survive; the error bars do
// not.
func QuickOpts() Opts {
	return Opts{
		Procs:         []int{1, 4, 8, 15},
		Seeds:         stats.Seeds(20030208, 1),
		WarmupCycles:  4_000_000,
		MeasureCycles: 16_000_000,
	}
}

// ScalingPoint is everything Figures 4–9 need from one run.
type ScalingPoint struct {
	Processors int
	Seed       uint64

	// Throughput in business operations per simulated second.
	Throughput float64
	// ThroughputNoGC factors GC wall time out of the window (Figure 9).
	ThroughputNoGC float64

	// Execution-mode fractions over the processor set (Figure 5).
	UserFrac, SystemFrac, IOFrac, IdleFrac, GCIdleFrac float64

	// CPI decomposition (Figure 6).
	CPI, OtherCPI, IStallCPI, DStallCPI float64

	// Data-stall decomposition as fractions of data-stall cycles (Figure 7).
	DSStoreBuf, DSRAW, DSL2Hit, DSC2C, DSMem float64

	// C2CRatio is the fraction of L2 data misses served by another cache
	// (Figure 8).
	C2CRatio float64

	// GCWallFrac is GC stop-the-world time over the window; GCCount the
	// number of collections.
	GCWallFrac float64
	GCCount    uint64

	// InstrPerOp is the dynamic path length per business operation (§4.4).
	InstrPerOp float64

	// Debug carries bus-level diagnostics (populated by
	// RunScalingPointDebug only).
	Debug string
}

// RunScalingPoint builds the system, warms it, and measures one point.
func RunScalingPoint(kind Kind, procs int, seed uint64, o Opts) ScalingPoint {
	p, _ := runScalingPoint(kind, procs, seed, o)
	return p
}

// RunScalingPointDebug is RunScalingPoint plus a bus-level diagnostic
// string (miss mix per 1000 instructions) for calibration work.
func RunScalingPointDebug(kind Kind, procs int, seed uint64, o Opts) ScalingPoint {
	p, sys := runScalingPointDiag(kind, procs, seed, o)
	bs := sys.Hier.Bus().Stats
	instr := float64(sys.Engine.Results().CPU.Instructions)
	if instr > 0 {
		p.Debug = fmt.Sprintf("bus/1k[gets=%.2f getm=%.2f upg=%.2f c2c=%.2f mem=%.2f dmiss=%.2f fmiss=%.2f] lockwait=%.2f",
			1000*float64(bs.GetS)/instr, 1000*float64(bs.GetM)/instr,
			1000*float64(bs.Upgrades)/instr, 1000*float64(bs.C2CTransfers)/instr,
			1000*float64(bs.MemTransfers)/instr,
			1000*float64(sys.Hier.DataMisses)/instr, 1000*float64(sys.Hier.FetchMisses)/instr,
			float64(sys.Engine.Results().LockWaitCycles)/float64(o.MeasureCycles)/float64(procs))
		r := sys.Engine.Results()
		p.Debug += fmt.Sprintf(" blk=%d/%d wait[mon=%.1fM spin=%.1fM sem=%.1fM]",
			r.LockBlocks, r.LockAcquires,
			float64(r.WaitMonitor)/1e6, float64(r.WaitSpin)/1e6, float64(r.WaitSem)/1e6)
		if sys.DB != nil {
			p.Debug += fmt.Sprintf(" dbutil=%.2f suputil=%.2f hit=%.2f", sys.DB.Utilization(), sys.Supplier.Utilization(), sys.EC.Cache().HitRatio())
		}
		mc := sys.Hier.Bus().MissClass
		p.Debug += fmt.Sprintf(" memclass[code=%.2f kern=%.2f eden=%.2f surv=%.2f old=%.2f perm=%.2f oth=%.2f]",
			1000*float64(mc[0])/instr, 1000*float64(mc[1])/instr, 1000*float64(mc[2])/instr,
			1000*float64(mc[3])/instr, 1000*float64(mc[4])/instr, 1000*float64(mc[5])/instr,
			1000*float64(mc[6])/instr)
	}
	return p
}

// runScalingPointDiag enables the address-class miss diagnostic.
func runScalingPointDiag(kind Kind, procs int, seed uint64, o Opts) (ScalingPoint, *System) {
	sys := BuildSystem(o.systemParams(kind, procs, seed))
	sys.Hier.Bus().ClassifyAddr = regionClassifier(sys)
	return measureScalingPoint(sys, procs, seed, o)
}

// systemParams builds one sweep run's parameters from the sweep options.
func (o Opts) systemParams(kind Kind, procs int, seed uint64) SystemParams {
	return SystemParams{
		Kind: kind, Processors: procs, Seed: seed,
		MemModel: o.MemModel, MemCurve: o.MemCurve,
	}
}

// regionClassifier maps addresses to coarse region classes for the
// calibration diagnostics.
func regionClassifier(sys *System) func(a uint64) int {
	return func(a uint64) int {
		var reg string
		if r, ok := sys.Space.FindRegion(a); ok {
			reg = r.Name
		}
		switch {
		case len(reg) > 5 && reg[:5] == "code:":
			if reg == "code:kernel" || reg == "code:kernel-net" {
				return 1
			}
			return 0
		case reg == "heap:eden":
			return 2
		case reg == "heap:surv0" || reg == "heap:surv1":
			return 3
		case reg == "heap:old":
			return 4
		case reg == "heap:perm":
			return 5
		default:
			return 6
		}
	}
}

func runScalingPoint(kind Kind, procs int, seed uint64, o Opts) (ScalingPoint, *System) {
	sys := BuildSystem(o.systemParams(kind, procs, seed))
	return measureScalingPoint(sys, procs, seed, o)
}

func measureScalingPoint(sys *System, procs int, seed uint64, o Opts) (ScalingPoint, *System) {
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	return summarizePoint(sys, procs, seed, o), sys
}

// summarizePoint reduces a finished measurement window to the figure
// metrics. The engine must have been reset at the warm-up boundary and run
// through o.MeasureCycles.
func summarizePoint(sys *System, procs int, seed uint64, o Opts) ScalingPoint {
	res := sys.Engine.Results()

	window := float64(o.MeasureCycles)
	seconds := window / CyclesPerSecond
	p := ScalingPoint{
		Processors: procs,
		Seed:       seed,
		Throughput: float64(res.BusinessOps) / seconds,
		GCCount:    res.GCCount,
	}
	if res.GCWall < o.MeasureCycles {
		p.ThroughputNoGC = float64(res.BusinessOps) / ((window - float64(res.GCWall)) / CyclesPerSecond)
	} else {
		p.ThroughputNoGC = p.Throughput
	}
	p.GCWallFrac = float64(res.GCWall) / window

	if total := float64(res.Modes.Total()); total > 0 {
		p.UserFrac = float64(res.Modes.User) / total
		p.SystemFrac = float64(res.Modes.System) / total
		p.IOFrac = float64(res.Modes.IOWait) / total
		p.IdleFrac = float64(res.Modes.Idle) / total
		p.GCIdleFrac = float64(res.Modes.GCIdle) / total
	}

	c := res.CPU
	if c.Instructions > 0 {
		instr := float64(c.Instructions)
		p.CPI = float64(c.Total()) / instr
		p.OtherCPI = float64(c.BaseCycles) / instr
		p.IStallCPI = float64(c.IStallCycles) / instr
		p.DStallCPI = float64(c.DStall()) / instr
		if ds := float64(c.DStall()); ds > 0 {
			p.DSStoreBuf = float64(c.DStallStoreBuf) / ds
			p.DSRAW = float64(c.DStallRAW) / ds
			p.DSL2Hit = float64(c.DStallL2Hit) / ds
			p.DSC2C = float64(c.DStallC2C) / ds
			p.DSMem = float64(c.DStallMem) / ds
		}
	}
	if res.BusinessOps > 0 {
		p.InstrPerOp = float64(c.Instructions) / float64(res.BusinessOps)
	}
	p.C2CRatio = sys.Hier.Bus().Stats.C2CRatio()
	return p
}

// SweepCell aggregates the per-seed points of one (workload, processors)
// configuration.
type SweepCell struct {
	Processors int
	Points     []ScalingPoint
}

// Metric summarizes fn over the cell's seeds.
func (c *SweepCell) Metric(fn func(*ScalingPoint) float64) *stats.Summary {
	var s stats.Summary
	for i := range c.Points {
		s.Add(fn(&c.Points[i]))
	}
	return &s
}

// ScalingSweep holds the processor-count sweep for one workload — the
// shared substrate of Figures 4, 5, 6, 7, 8, and 9.
type ScalingSweep struct {
	Kind  Kind
	Opts  Opts
	Cells []SweepCell
}

// ScheduleScalingSweep submits every (processor count × seed) cell of the
// sweep to the scheduler and returns the sweep skeleton immediately; the
// points are filled in by the time sched.Wait returns. Each cell is an
// independent single-threaded simulation writing to its own slot, so the
// sweep is deterministic regardless of completion order.
func ScheduleScalingSweep(sched *Scheduler, kind Kind, o Opts) *ScalingSweep {
	sw := &ScalingSweep{Kind: kind, Opts: o}
	for pi := range o.Procs {
		sw.Cells = append(sw.Cells, SweepCell{
			Processors: o.Procs[pi],
			Points:     make([]ScalingPoint, len(o.Seeds)),
		})
	}
	for pi := range o.Procs {
		for si := range o.Seeds {
			pi, si := pi, si
			sched.Submit(func() {
				sw.Cells[pi].Points[si] = RunScalingPoint(kind, o.Procs[pi], o.Seeds[si], o)
				o.Progress.Add(1)
				o.Progress.AddCycles(o.WarmupCycles + o.MeasureCycles)
			})
		}
	}
	return sw
}

// RunScalingSweep measures every (processor count × seed) cell on a
// private scheduler sized to the host.
func RunScalingSweep(kind Kind, o Opts) *ScalingSweep {
	sched := NewScheduler(DefaultWorkers())
	sw := ScheduleScalingSweep(sched, kind, o)
	sched.Wait()
	return sw
}

// BaseThroughput returns mean single-processor throughput (speedup
// denominator). It requires the sweep to include processors=1.
func (sw *ScalingSweep) BaseThroughput() float64 {
	for i := range sw.Cells {
		if sw.Cells[i].Processors == 1 {
			return sw.Cells[i].Metric(func(p *ScalingPoint) float64 { return p.Throughput }).Mean()
		}
	}
	panic("core: scaling sweep lacks a 1-processor cell")
}
