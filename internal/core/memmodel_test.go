package core

import (
	"testing"

	"repro/internal/memsys"
)

// TestMemModelFixedPassivity pins the fixed-model fingerprint of a quick
// 4-processor run of each workload to the value measured before the loaded-
// latency model landed. `-memmodel fixed` (the default) must remain
// bit-identical to the pre-model simulator: if this test fails, the fixed
// path picked up a behavioral change, and perfcheck/checkpoint baselines are
// invalidated.
func TestMemModelFixedPassivity(t *testing.T) {
	if testing.Short() {
		t.Skip("two 20M-cycle runs")
	}
	want := map[Kind]uint64{
		SPECjbb: 0xf645a5de5ad80ebf,
		ECperf:  0x8028c5f66a2e8d7,
	}
	for kind, fp := range want {
		sys := BuildSystem(SystemParams{Kind: kind, Processors: 4, Seed: 20030208})
		sys.Engine.Run(4_000_000)
		sys.Engine.ResetStats()
		sys.Engine.Run(4_000_000 + 16_000_000)
		if got := Fingerprint(sys); got != fp {
			t.Errorf("%s fixed-model fingerprint = %#x, want %#x (fixed mode must stay bit-identical)", kind, got, fp)
		}
	}
}

// TestMemModelLoadedDeterministic: the loaded model is still a deterministic
// simulation — two identically-configured runs fingerprint identically.
func TestMemModelLoadedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two 20M-cycle runs")
	}
	o := QuickOpts()
	o.MemModel = memsys.MemLoaded
	run := func() uint64 {
		_, sys := runScalingPoint(ECperf, 8, o.Seeds[0], o)
		return Fingerprint(sys)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loaded-model fingerprints differ: %#x vs %#x", a, b)
	}
}

// TestMemModelLoadedMovesTowardPaper: at high processor counts the loaded
// model must raise ECperf's CPI (Figure 6's growth) and its cache-to-cache
// ratio (Figure 8) relative to the fixed model — the two documented gaps the
// model exists to close.
func TestMemModelLoadedMovesTowardPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("two 20M-cycle runs")
	}
	o := QuickOpts()
	fixed := RunScalingPoint(ECperf, 15, o.Seeds[0], o)
	o.MemModel = memsys.MemLoaded
	loaded := RunScalingPoint(ECperf, 15, o.Seeds[0], o)
	if loaded.CPI <= fixed.CPI {
		t.Errorf("loaded CPI %.3f not above fixed %.3f at 15 processors", loaded.CPI, fixed.CPI)
	}
	if loaded.C2CRatio <= fixed.C2CRatio {
		t.Errorf("loaded C2C ratio %.3f not above fixed %.3f at 15 processors", loaded.C2CRatio, fixed.C2CRatio)
	}
	if loaded.C2CRatio <= 0.45 {
		t.Errorf("loaded C2C ratio %.1f%% did not exceed 45%%", 100*loaded.C2CRatio)
	}
}

// TestMemModelCurveOverride: SystemParams.MemCurve reaches the hierarchy.
func TestMemModelCurveOverride(t *testing.T) {
	flat := &memsys.LoadedConfig{
		MemCurve:              []memsys.CurveKnot{{Util: 0, Mult: 1}},
		C2CCurve:              []memsys.CurveKnot{{Util: 0, Mult: 1}},
		InterventionStartUtil: 2,
	}
	sys := BuildSystem(SystemParams{Kind: ECperf, Processors: 2, Seed: 1, MemModel: memsys.MemLoaded, MemCurve: flat})
	if sys.Hier.Model() != memsys.MemLoaded {
		t.Fatal("MemModel did not reach the hierarchy")
	}
	ls, ok := sys.Hier.LoadSnapshot()
	if !ok {
		t.Fatal("no load snapshot under loaded model")
	}
	if ls.MemMult != 1 || ls.C2CMult != 1 {
		t.Fatalf("flat curve override ignored: %+v", ls)
	}
}
