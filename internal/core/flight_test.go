package core

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// flightFlags builds the default-on flag surface pointed at dir, the way a
// driver's -flight DIR invocation would.
func flightFlags(dir string) *obs.Flags {
	return &obs.Flags{Flight: dir, FlightEvents: 4096, FlightWindow: 30_000_000}
}

// TestFlightPassivity is the tentpole contract: a run with the always-on
// flight recorder attached produces bit-identical engine and bus results to
// a bare run at the same seed. The recorder only reads simulated state.
func TestFlightPassivity(t *testing.T) {
	params := SystemParams{Kind: ECperf, Processors: 2, Seed: 20030208}
	const warmup, measure = 2_000_000, 10_000_000

	bare := BuildSystem(params)
	ObserveRun(bare, nil, nil, warmup, measure)

	recorded := BuildSystem(params)
	ob, rec := flightrec.FromFlags(flightFlags(t.TempDir()), "passivity", nil)
	if ob == nil || rec == nil {
		t.Fatal("default flags must enable the recorder")
	}
	AttachFlight(recorded, rec)
	delta := ObserveRun(recorded, ob, nil, warmup, measure)

	a, b := bare.Engine.Results(), recorded.Engine.Results()
	if a.BusinessOps != b.BusinessOps {
		t.Fatalf("BusinessOps differ: %d vs %d", a.BusinessOps, b.BusinessOps)
	}
	if !reflect.DeepEqual(a.OpsByTag, b.OpsByTag) {
		t.Fatalf("OpsByTag differ: %v vs %v", a.OpsByTag, b.OpsByTag)
	}
	if a.Modes != b.Modes {
		t.Fatalf("mode accounting differs: %+v vs %+v", a.Modes, b.Modes)
	}
	if a.CPU != b.CPU {
		t.Fatalf("CPI accounting differs: %+v vs %+v", a.CPU, b.CPU)
	}
	if a.GCCount != b.GCCount || a.GCWall != b.GCWall {
		t.Fatalf("GC accounting differs: %d/%d vs %d/%d", a.GCCount, a.GCWall, b.GCCount, b.GCWall)
	}
	if ab, bb := bare.Hier.Bus().Stats, recorded.Hier.Bus().Stats; ab != bb {
		t.Fatalf("bus stats differ: %+v vs %+v", ab, bb)
	}

	// No trigger fired, so the black box stayed silent on disk.
	if len(rec.Dumps()) != 0 {
		t.Fatalf("unexpected dumps on a healthy run: %+v", rec.Dumps())
	}
	// The ring saw traffic, bounded, and its accounting is published as
	// metrics alongside the tracer's dropped counter.
	if rec.Ring().Total() == 0 {
		t.Fatal("flight ring recorded no events")
	}
	names := delta.CounterSet().Names()
	for _, want := range []string{"trace.dropped", "trace.ring_evicted"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %q not registered (have %v)", want, names)
		}
	}
}

// stormOpts is the db-lock-storm scenario from EXPERIMENTS.md / CI at test
// size: the storm window sits inside the measurement interval.
func stormOpts(dir string) (FaultRunOpts, *flightrec.Recorder, *obs.Observer) {
	ob, rec := flightrec.FromFlags(flightFlags(dir), "storm", nil)
	return FaultRunOpts{
		Processors:   2,
		Seed:         20030208,
		WarmupCycles: 4_000_000, MeasureCycles: 24_000_000,
		BinCycles: 2_000_000,
		Schedule: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.DBLockStorm, At: 12_000_000, Duration: 8_000_000, Magnitude: 30},
		}},
		Observer: ob,
		Flight:   rec,
	}, rec, ob
}

// TestDBLockStormDump is the acceptance scenario: a db-lock-storm run
// produces a triggered dump whose trace window contains the storm interval.
func TestDBLockStormDump(t *testing.T) {
	dir := t.TempDir()
	o, rec, _ := stormOpts(dir)
	RunFaultExperiment(o)

	dumps := rec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("want exactly 1 dump (window entry), got %+v", dumps)
	}
	d := dumps[0]
	if d.Trigger != "fault-db-lock-storm" {
		t.Fatalf("trigger %q, want fault-db-lock-storm", d.Trigger)
	}
	storm := o.Schedule.Events[0]
	if d.Cycle < storm.At {
		t.Fatalf("dump at cycle %d, before the storm window opens at %d", d.Cycle, storm.At)
	}

	buf, err := os.ReadFile(d.Path)
	if err != nil {
		t.Fatalf("reading bundle: %v", err)
	}
	var b struct {
		Trigger     string          `json:"trigger"`
		Cycle       uint64          `json:"cycle"`
		WindowStart uint64          `json:"window_start_cycle"`
		Trace       json.RawMessage `json:"trace"`
		Metrics     string          `json:"metrics"`
		Ring        struct {
			Events int `json:"events"`
			Cap    int `json:"cap"`
		} `json:"ring"`
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		t.Fatalf("bundle is not JSON: %v", err)
	}
	// The trace window must contain the storm's start.
	if b.WindowStart > storm.At || b.Cycle < storm.At {
		t.Fatalf("trace window [%d, %d] does not contain storm start %d", b.WindowStart, b.Cycle, storm.At)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Trace, &events); err != nil {
		t.Fatalf("bundle trace is not a Chrome event array: %v", err)
	}
	foundWindow := false
	for _, e := range events {
		if e["name"] == "fault.window" {
			if args, _ := e["args"].(map[string]any); args["kind"] == "db-lock-storm" {
				foundWindow = true
			}
		}
	}
	if !foundWindow {
		t.Fatal("dump trace has no db-lock-storm fault.window span")
	}
	if !strings.Contains(b.Metrics, "fault.") {
		t.Fatal("dump metrics snapshot carries no fault.* counters")
	}
	if b.Ring.Events > b.Ring.Cap {
		t.Fatalf("ring over its cap: %d > %d", b.Ring.Events, b.Ring.Cap)
	}
}

// TestFlightDumpDeterminism checks the same seed and schedule produce a
// byte-identical dump bundle across runs.
func TestFlightDumpDeterminism(t *testing.T) {
	read := func() []byte {
		dir := t.TempDir()
		o, rec, _ := stormOpts(dir)
		o.MeasureCycles = 16_000_000
		o.Schedule.Events[0].Duration = 4_000_000
		RunFaultExperiment(o)
		dumps := rec.Dumps()
		if len(dumps) != 1 {
			t.Fatalf("want 1 dump, got %+v", dumps)
		}
		buf, err := os.ReadFile(dumps[0].Path)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed + schedule produced different dump bytes")
	}
}
