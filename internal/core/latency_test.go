package core

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

// runLatency executes one observed run with a request-latency collector
// attached and returns the system and collector for checks.
func runLatency(t *testing.T, kind Kind, procs int, seed uint64, spec string) (*System, *reqtrace.Collector) {
	t.Helper()
	objs, err := reqtrace.ParseObjectives(spec)
	if err != nil {
		t.Fatal(err)
	}
	rt := reqtrace.NewCollector(reqtrace.Options{Objectives: objs})
	sys := BuildSystem(SystemParams{Kind: kind, Processors: procs, Seed: seed})
	ob := &obs.Observer{}
	AttachLatency(sys, ob, rt)
	ObserveRun(sys, ob, nil, 4_000_000, 24_000_000)
	return sys, rt
}

// TestLatencyReportDeterministic: the same seed must produce byte-identical
// latency/SLO report JSON — the histograms are fixed-precision and the
// report's slices are sorted, so there is no tolerance here.
func TestLatencyReportDeterministic(t *testing.T) {
	_, a := runLatency(t, ECperf, 4, 20030208, "p99<=40ms,err<=2%")
	_, b := runLatency(t, ECperf, 4, 20030208, "p99<=40ms,err<=2%")
	if !bytes.Equal(a.ReportJSON(), b.ReportJSON()) {
		t.Error("same seed produced different latency reports")
	}
}

// TestLatencyIsPassive: the span collector must observe the run, never
// perturb it. Engine results and bus counters must be bit-identical with
// the collector attached and absent — the collector only reads simulated
// time and never touches scheduling or RNG state.
func TestLatencyIsPassive(t *testing.T) {
	with, _ := runLatency(t, SPECjbb, 4, 20030208, "p99<=40ms")

	bare := BuildSystem(SystemParams{Kind: SPECjbb, Processors: 4, Seed: 20030208})
	ObserveRun(bare, nil, nil, 4_000_000, 24_000_000)

	if with.Hier.Bus().Stats != bare.Hier.Bus().Stats {
		t.Errorf("bus stats diverge with latency collector attached:\nwith    %+v\nwithout %+v",
			with.Hier.Bus().Stats, bare.Hier.Bus().Stats)
	}
	wr, br := with.Engine.Results(), bare.Engine.Results()
	if wr.BusinessOps != br.BusinessOps || wr.CPU != br.CPU || wr.GCCount != br.GCCount ||
		wr.GCWall != br.GCWall || wr.LockWaitCycles != br.LockWaitCycles ||
		wr.LockBlocks != br.LockBlocks || wr.Modes != br.Modes {
		t.Errorf("engine results diverge with latency collector attached:\nwith    %+v\nwithout %+v", wr, br)
	}
	for tag, n := range br.OpsByTag {
		if wr.OpsByTag[tag] != n {
			t.Errorf("ops[%s] = %d with collector, %d without", tag, wr.OpsByTag[tag], n)
		}
	}
}

// TestLatencyConservation: per-class histogram totals must equal the
// engine's completed-transaction counts exactly — every business operation
// that completes in the measurement window is recorded once, none invented.
func TestLatencyConservation(t *testing.T) {
	sys, rt := runLatency(t, ECperf, 4, 20030208, "")
	res := sys.Engine.Results()
	counts := rt.CountByClass()
	if len(counts) == 0 {
		t.Fatal("collector recorded no requests")
	}
	for class, n := range counts {
		if reqtrace.IsErrorClass(class) {
			continue // error classes are not business ops in OpsByTag
		}
		if res.OpsByTag[class] != n {
			t.Errorf("class %s: collector has %d requests, engine completed %d", class, n, res.OpsByTag[class])
		}
	}
	for tag, n := range res.OpsByTag {
		if counts[tag] != n {
			t.Errorf("tag %s: engine completed %d, collector has %d", tag, n, counts[tag])
		}
	}
}

// TestLatencyGCChargeback: every stop-the-world pause in the measurement
// window must land in the jvm.gc.pause histogram and be charged to the
// requests in flight when the machine froze.
func TestLatencyGCChargeback(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a multi-collection window")
	}
	// 15 processors allocate fast enough to force collections inside the
	// standard test window (same sizing as TestObserveRunGCSpans).
	sys, rt := runLatency(t, ECperf, 15, 20030208, "")
	res := sys.Engine.Results()
	if res.GCCount == 0 {
		t.Fatal("window produced no collections; lengthen it")
	}
	if got := rt.GCPause().Count(); got != res.GCCount {
		t.Errorf("gc pause histogram has %d pauses, engine counted %d collections", got, res.GCCount)
	}
	rep := rt.BuildReport()
	var charged uint64
	for _, c := range rep.Classes {
		charged += c.Phases.GCPause
	}
	if charged == 0 {
		t.Error("no GC pause cycles charged to any in-flight request class")
	}
}

// TestLatencySLOUnderDBLockStorm is the acceptance scenario: a db-lock-storm
// window in the middle of a seeded ECperf run must show p99 degradation and
// SLO burn in the affected intervals while clean intervals meet the
// objective.
func TestLatencySLOUnderDBLockStorm(t *testing.T) {
	objs, err := reqtrace.ParseObjectives("p99<=20ms")
	if err != nil {
		t.Fatal(err)
	}
	rt := reqtrace.NewCollector(reqtrace.Options{Objectives: objs})
	o := FaultRunOpts{
		Processors:   2,
		Seed:         20030208,
		WarmupCycles: 4_000_000, MeasureCycles: 36_000_000,
		BinCycles: 4_000_000,
		Schedule: &fault.Schedule{Events: []fault.Event{
			// Absolute cycles 16M-26M = intervals 2-4 of the collector's 5M
			// bins (origin re-anchors to the warm-up boundary at 4M).
			{Kind: fault.DBLockStorm, At: 16_000_000, Duration: 10_000_000, Magnitude: 40},
		}},
		Latency: rt,
	}
	RunFaultExperiment(o)

	rep := rt.BuildReport()
	if len(rep.SLO) != 1 {
		t.Fatalf("expected 1 SLO verdict, got %d", len(rep.SLO))
	}
	s := rep.SLO[0]
	if s.Violations == 0 || s.WorstBurn <= 1 {
		t.Fatalf("db-lock-storm did not burn the SLO: %+v", s)
	}
	if s.WorstInterval < 2 || s.WorstInterval > 5 {
		t.Errorf("worst burn in interval %d; expected it in or just after the storm (intervals 2-5)", s.WorstInterval)
	}
	for _, iv := range s.Intervals {
		if iv.Index < 2 && !iv.Met {
			t.Errorf("pre-storm interval %d violated the objective (burn %.2f)", iv.Index, iv.BurnRate)
		}
	}
	met := 0
	for _, iv := range s.Intervals {
		if iv.Met && iv.Requests > 0 {
			met++
		}
	}
	if met == 0 {
		t.Error("no clean interval met the objective; degradation is not localized")
	}

	// The degradation must be visible in the latency time series too: the
	// worst storm-interval p99 should clearly exceed the first interval's.
	p99 := func(idx int) uint64 {
		var worst uint64
		for _, iv := range rep.Intervals {
			if iv.Index != idx {
				continue
			}
			for _, c := range iv.Classes {
				if !reqtrace.IsErrorClass(c.Class) && c.P99 > worst {
					worst = c.P99
				}
			}
		}
		return worst
	}
	clean, stormed := p99(0), p99(s.WorstInterval)
	if stormed < 2*clean {
		t.Errorf("storm interval p99 %d cycles is not at least 2x the clean interval's %d", stormed, clean)
	}
}
