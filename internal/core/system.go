// Package core is the public face of the reproduction: it assembles full
// simulated machines (processors, caches, bus, OS, JVM, network, tiers),
// binds the SPECjbb and ECperf workload models to them, and provides one
// driver per figure of the paper's evaluation (Figures 4–16).
//
// Conventions:
//   - Time is in processor cycles at 250 MHz (the E6000's UltraSPARC IIs
//     ran at 248 MHz); CyclesPerSecond converts.
//   - The simulated machine always has 16 processors, like the measured
//     E6000; the workload is bound to a processor set of the requested
//     size, and OS daemons run on all 16 (psrset semantics).
//   - Every figure driver takes a seed list and reports mean ± stddev per
//     the Alameldeen-Wood variability methodology the paper follows.
package core

import (
	"fmt"

	"repro/internal/appserver"
	"repro/internal/coherence"
	"repro/internal/db"
	"repro/internal/fault"
	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/obs/flightrec"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/tlb"
	"repro/internal/workload/ecperf"
	"repro/internal/workload/specjbb"
	"repro/internal/workload/volano"
)

// CyclesPerSecond converts simulated cycles to seconds.
const CyclesPerSecond = 250_000_000

// MachineCPUs is the E6000's processor count.
const MachineCPUs = 16

// Kind selects a workload.
type Kind int

const (
	// SPECjbb is the single-process, all-tiers-in-one-JVM benchmark.
	SPECjbb Kind = iota
	// ECperf is the 3-tier benchmark; the middle tier is measured.
	ECperf
	// VolanoMark is the §6 related-work chat benchmark: one server thread
	// per client connection, kernel-dominated.
	VolanoMark
)

// String names the workload.
func (k Kind) String() string {
	switch k {
	case SPECjbb:
		return "SPECjbb"
	case ECperf:
		return "ECperf"
	case VolanoMark:
		return "VolanoMark"
	default:
		return "Kind(?)"
	}
}

// SystemParams configure one simulated machine + workload instance.
type SystemParams struct {
	Kind Kind
	// Processors is the processor-set size the workload is bound to.
	Processors int
	// Scale is the benchmark scale factor: warehouses for SPECjbb, Orders
	// Injection Rate for ECperf. Zero picks the tuned value for the
	// processor count (warehouses = processors, like an official run at
	// its best-throughput point).
	Scale int
	// CPUsPerL2 selects private (1) or shared (2/4/8) L2 caches.
	CPUsPerL2 int
	// TotalCPUs overrides the machine size (defaults to MachineCPUs; the
	// Figure 16 CMP study uses an 8-CPU machine).
	TotalCPUs int
	Seed      uint64

	// MemModel selects the memory timing model: memsys.MemFixed (the
	// default, the unloaded E6000 scalars — bit-identical to the pre-model
	// simulator) or memsys.MemLoaded (the bandwidth–latency curve).
	MemModel memsys.MemModel
	// MemCurve overrides the loaded model's curve parameters; nil uses
	// memsys.DefaultLoadedConfig(). Ignored under MemFixed.
	MemCurve *memsys.LoadedConfig

	// HeapConfig overrides the JVM heap configuration (nil = the standard
	// scaled heap). An explicit parameter rather than a package hook so
	// experiment cells with different heaps can build concurrently. Not
	// serializable, so runs using it cannot be checkpointed (none do: the
	// only override is Figure 11's functional-only study).
	HeapConfig func() jvm.Config `json:"-"`

	// Ablation knobs (zero values reproduce the paper's configuration).

	// BasePages disables Solaris ISM: the data TLB runs 8 KB pages instead
	// of 4 MB ones (§6: ISM bought ECperf >10%).
	BasePages bool
	// Protocol overrides the bus protocol (default MOSI, the E6000's).
	Protocol coherence.Protocol
	// GCThreads parallelizes the collector (default 1, like HotSpot 1.3.1).
	GCThreads int
	// C2CLatency overrides the cache-to-cache transfer latency in cycles
	// (default 105 ≈ 1.4× memory, the E6000's; NUMA directory systems run
	// 2-3× memory, §4.3).
	C2CLatency uint64
	// CoSimDB marks the ECperf database as a co-simulated machine rather
	// than a queueing model: the peer is registered external and a cluster
	// coordinator must deliver its traffic (BuildCoSim wires everything).
	CoSimDB bool

	// Robustness knobs (zero values: no faults, no watchdog).

	// FaultSchedule, when non-nil, arms deterministic fault injection: one
	// injector (seeded from Seed) is threaded through the network, the
	// remote tiers, and the engine, and the ECperf middle tier routes its
	// remote calls through a resilient caller (timeouts, retries, breaker,
	// load shedding) governed by FaultPolicy.
	FaultSchedule *fault.Schedule
	// FaultPolicy overrides the resilience policy (nil = DefaultPolicy).
	// It must validate; BuildSystem panics otherwise, like any other
	// malformed experiment configuration.
	FaultPolicy *fault.Policy
	// WatchdogCycles arms the engine's simulated-time watchdog: a run that
	// makes no forward progress for this many cycles (or is provably
	// deadlocked) aborts with a diagnostic dump instead of spinning.
	WatchdogCycles uint64
}

// System is an assembled machine ready to run.
type System struct {
	Params SystemParams
	Engine *osmodel.Engine
	Hier   *memsys.Hierarchy
	Heap   *jvm.Heap
	Layout *ifetch.CodeLayout
	Space  *mem.AddrSpace

	// Exactly one of these is set, by Params.Kind.
	JBB *specjbb.Workload
	EC  *ecperf.Workload
	Vol *volano.Workload

	// Remote tiers (ECperf only).
	DB       *db.Server
	Supplier *db.Server

	// Faults is the run's injector (nil without a FaultSchedule).
	Faults *fault.Injector

	// Flight is the run's flight recorder (nil when -flight off); the run
	// loops tick it at slice boundaries. Attach with AttachFlight.
	Flight *flightrec.Recorder
}

// codeProfile returns the standard hot/warm/cold tiering for a component.
func codeProfile() ifetch.Profile {
	return ifetch.Profile{
		Tiers: []ifetch.Tier{
			{CodeFrac: 0.015, FetchFrac: 0.55}, // inner loops: L1-resident
			{CodeFrac: 0.085, FetchFrac: 0.38},
			{CodeFrac: 0.30, FetchFrac: 0.06},
			{CodeFrac: 0.60, FetchFrac: 0.01},
		},
		RunBlocks: 6,
	}
}

// heapConfig returns the scaled JVM heap shared by all timing runs (the
// paper fixed 1424 MB heap / 400 MB new generation across every run; this
// is that shape at ~1/20 scale).
func heapConfig() jvm.Config {
	c := jvm.DefaultConfig()
	c.HeapBytes = 72 << 20
	c.NewGenBytes = 8 << 20
	// Age-3 promotion keeps short-lived transaction state (order rings) in
	// the survivor spaces, where the collector's copies stay cache-resident.
	c.PromoteAge = 3
	return c
}

func (p SystemParams) withDefaults() SystemParams {
	if p.HeapConfig == nil {
		p.HeapConfig = heapConfig
	}
	if p.TotalCPUs == 0 {
		p.TotalCPUs = MachineCPUs
	}
	if p.CPUsPerL2 == 0 {
		p.CPUsPerL2 = 1
	}
	if p.Processors <= 0 {
		p.Processors = 1
	}
	if p.Scale == 0 {
		if p.Kind == SPECjbb {
			p.Scale = p.Processors // threads = warehouses = processors
		} else {
			p.Scale = 10
		}
	}
	if p.Kind == VolanoMark {
		p.Scale = 1 // room shape is fixed by volano.DefaultConfig
	}
	return p
}

// BuildSystem assembles the machine for the given parameters.
func BuildSystem(p SystemParams) *System {
	p = p.withDefaults()
	rng := simrand.New(p.Seed)
	space := mem.NewAddrSpace()
	layout := ifetch.NewCodeLayout(space)

	mcfg := memsys.DefaultConfig(p.TotalCPUs)
	mcfg.CPUsPerL2 = p.CPUsPerL2
	if p.BasePages {
		// The heap is scaled ~20× down from the paper's testbed, so the
		// base-page TLB reach is scaled to match: reach/heap stays at the
		// real machine's ratio (64 × 8 KB = 512 KB against a ~1.4 GB heap
		// becomes 64 × 1 KB = 64 KB against the ~72 MB simulated heap).
		// The miss penalty is the software-refill trap cost.
		cfg := tlb.Config{Entries: 64, PageBytes: 1 << 10, MissPenalty: 110}
		mcfg.DTLB = &cfg
	}
	if p.C2CLatency != 0 {
		mcfg.Lat.C2C = p.C2CLatency
	}
	if p.MemModel != memsys.MemFixed {
		mcfg.Model = p.MemModel
		if p.MemCurve != nil {
			mcfg.Loaded = *p.MemCurve
		}
	}
	hier := memsys.New(mcfg)
	hier.Bus().Protocol = p.Protocol

	ecfg := osmodel.DefaultConfig(p.TotalCPUs)
	if p.GCThreads > 1 {
		ecfg.GCThreads = p.GCThreads
	}
	ecfg.PSet = make([]int, p.Processors)
	for i := range ecfg.PSet {
		ecfg.PSet[i] = i
	}

	sys := &System{Params: p, Hier: hier, Layout: layout, Space: space}
	if p.FaultSchedule != nil {
		if err := p.FaultSchedule.Validate(); err != nil {
			panic(fmt.Sprintf("core: fault schedule: %v", err))
		}
		// Stream 20 is reserved for the injector so arming faults never
		// perturbs the workload's or network's random sequences.
		sys.Faults = fault.NewInjector(p.FaultSchedule, rng.Derive(20))
	}

	switch p.Kind {
	case SPECjbb:
		comps := specjbb.Components{
			App: layout.Add("jbb-app", 192<<10, false, codeProfile()),
			JVM: layout.Add("jvm", 160<<10, false, codeProfile()),
		}
		gcComp := layout.Add("jvm-gc", 96<<10, false, codeProfile())
		kern := layout.Add("kernel", 256<<10, true, codeProfile())

		hcfg := p.HeapConfig()
		hcfg.GCComp = gcComp.ID
		heap := jvm.MustNewHeap(space, hcfg)

		eng := osmodel.NewEngine(ecfg, hier, layout, nil, rng.Derive(1))
		osmodel.AddOSDaemons(eng, space, kern, rng.Derive(2))

		w := specjbb.New(specjbb.DefaultConfig(p.Scale), heap, comps, rng.Derive(3))
		for i := 0; i < p.Scale; i++ {
			eng.AddThread("jbb-worker", w.Source(i, -1))
		}
		sys.Engine, sys.Heap, sys.JBB = eng, heap, w

	case ECperf:
		comps := ecperf.Components{
			Servlet: layout.Add("servlet", 192<<10, false, codeProfile()),
			EJB:     layout.Add("ejb", 256<<10, false, codeProfile()),
			Server:  layout.Add("appserver", 320<<10, false, codeProfile()),
			JVM:     layout.Add("jvm", 160<<10, false, codeProfile()),
		}
		gcComp := layout.Add("jvm-gc", 96<<10, false, codeProfile())
		kern := layout.Add("kernel-net", 320<<10, true, codeProfile())

		hcfg := p.HeapConfig()
		hcfg.GCComp = gcComp.ID
		heap := jvm.MustNewHeap(space, hcfg)

		net := netsim.NewNetwork(netsim.DefaultLink())
		if p.CoSimDB {
			net.AddExternalPeer(ecperf.PeerDatabase)
		} else {
			sys.DB = db.NewServer(databaseConfig(), rng.Derive(10))
			net.AddPeer(ecperf.PeerDatabase, sys.DB)
		}
		sys.Supplier = db.NewServer(supplierConfig(), rng.Derive(11))
		net.AddPeer(ecperf.PeerSupplier, sys.Supplier)
		ns := netsim.NewNetStack(space, kern, net, netstackConfig(), rng.Derive(12))

		eng := osmodel.NewEngine(ecfg, hier, layout, net, rng.Derive(1))
		osmodel.AddOSDaemons(eng, space, kern, rng.Derive(2))

		wcfg := ecperf.DefaultConfig(p.Scale, p.Processors)
		w := ecperf.New(wcfg, heap, comps, ns, rng.Derive(3))
		if sys.Faults != nil {
			// Thread the injector through every layer the schedule can
			// touch, and put the resilient caller in front of remote calls.
			net.SetFaults(sys.Faults)
			if sys.DB != nil {
				sys.DB.SetFaults(sys.Faults, ecperf.PeerDatabase)
			}
			sys.Supplier.SetFaults(sys.Faults, ecperf.PeerSupplier)
			pol := fault.DefaultPolicy()
			if p.FaultPolicy != nil {
				pol = *p.FaultPolicy
			}
			caller, err := appserver.NewCaller(pol, sys.Faults, rng.Derive(21))
			if err != nil {
				panic(fmt.Sprintf("core: fault policy: %v", err))
			}
			w.EnableResilience(caller)
		}
		for i := 0; i < wcfg.Workers; i++ {
			eng.AddThread("ec-worker", w.Source(i, -1))
		}
		sys.Engine, sys.Heap, sys.EC = eng, heap, w

	case VolanoMark:
		comps := volano.Components{
			App: layout.Add("volano", 128<<10, false, codeProfile()),
		}
		gcComp := layout.Add("jvm-gc", 96<<10, false, codeProfile())
		kern := layout.Add("kernel-net", 256<<10, true, codeProfile())

		hcfg := p.HeapConfig()
		hcfg.GCComp = gcComp.ID
		heap := jvm.MustNewHeap(space, hcfg)

		// Clients are loopback; no remote peers are needed, but the kernel
		// stack is the whole point.
		net := netsim.NewNetwork(netsim.DefaultLink())
		ns := netsim.NewNetStack(space, kern, net, netstackConfig(), rng.Derive(12))

		eng := osmodel.NewEngine(ecfg, hier, layout, net, rng.Derive(1))
		osmodel.AddOSDaemons(eng, space, kern, rng.Derive(2))

		w := volano.New(volano.DefaultConfig(), heap, comps, ns, rng.Derive(3))
		for i := 0; i < w.Connections(); i++ {
			eng.AddThread("volano-conn", w.Source(i, -1))
		}
		sys.Engine, sys.Heap, sys.Vol = eng, heap, w
	}
	if sys.Faults != nil {
		// GC-pause storms act at playback time inside the engine.
		sys.Engine.SetFaults(sys.Faults)
	}
	if p.WatchdogCycles > 0 {
		sys.Engine.SetWatchdog(p.WatchdogCycles)
	}
	return sys
}

// databaseConfig sizes the remote database so it keeps up with a saturated
// 16-processor middle tier — "ECperf does not overly stress the database".
func databaseConfig() db.Config {
	return db.Config{Workers: 24, BaseServiceCycles: 40_000, PerByteCycles: 2, Jitter: 0.3}
}

func supplierConfig() db.Config {
	return db.Config{Workers: 6, BaseServiceCycles: 120_000, PerByteCycles: 4, Jitter: 0.3}
}

func netstackConfig() netsim.StackConfig {
	return netsim.StackConfig{
		SendInstr:    350,
		RecvInstr:    400,
		PerByteInstr: 0.04,
		HotLines:     3,
		BufferBytes:  2048,
	}
}
