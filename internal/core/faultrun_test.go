package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestFaultRunCurveAndRecovery drives the quick fault experiment end to
// end: the partition window must dent throughput, resilience machinery must
// engage, and throughput must recover after the heal.
func TestFaultRunCurveAndRecovery(t *testing.T) {
	o := QuickFaultRunOpts()
	r := RunFaultExperiment(o)

	if len(r.Baseline) != len(r.BinStart) || len(r.Faulted) != len(r.BinStart) {
		t.Fatalf("bin shapes differ: %d starts, %d baseline, %d faulted",
			len(r.BinStart), len(r.Baseline), len(r.Faulted))
	}
	var base, faulted uint64
	for i := range r.Baseline {
		base += r.Baseline[i]
		faulted += r.Faulted[i]
	}
	if base == 0 || faulted == 0 {
		t.Fatalf("no throughput measured: clean=%d faulted=%d", base, faulted)
	}
	if faulted >= base {
		t.Fatalf("faults did not cost throughput: clean=%d faulted=%d", base, faulted)
	}

	// The window itself must show a dent: some in-window bin below 90% of
	// the clean run's same bin.
	ev := o.Schedule.Events[0]
	dented := false
	for i, start := range r.BinStart {
		if start >= ev.At && start < ev.End() && r.Faulted[i]*10 < r.Baseline[i]*9 {
			dented = true
			break
		}
	}
	if !dented {
		t.Fatal("no bin inside the partition window shows degraded throughput")
	}

	if r.Calls.Timeouts == 0 && r.Calls.FastFails == 0 {
		t.Fatalf("no fault outcomes recorded: %+v", r.Calls)
	}
	if r.Injected.DroppedPartition == 0 {
		t.Fatalf("injector saw no partition drops: %+v", r.Injected)
	}
	if len(r.Recovery) != 1 {
		t.Fatalf("want 1 recovery record, got %d", len(r.Recovery))
	}
	if rec := r.Recovery[0]; !rec.Recovered {
		t.Fatal("throughput never recovered after the partition healed")
	}
}

// TestFaultRunDeterministic is the acceptance bar: the same seed and
// schedule reproduce the identical faulted curve and counters.
func TestFaultRunDeterministic(t *testing.T) {
	o := QuickFaultRunOpts()
	o.MeasureCycles = 16_000_000
	o.Schedule.Events[0].At = 8_000_000
	o.Schedule.Events[0].Duration = 4_000_000
	a, b := RunFaultExperiment(o), RunFaultExperiment(o)
	if a.Calls != b.Calls || a.Shed != b.Shed || a.Injected != b.Injected || a.Failed != b.Failed {
		t.Fatalf("counters differ:\n%+v %d %+v %d\n%+v %d %+v %d",
			a.Calls, a.Shed, a.Injected, a.Failed, b.Calls, b.Shed, b.Injected, b.Failed)
	}
	for i := range a.Faulted {
		if a.Faulted[i] != b.Faulted[i] {
			t.Fatalf("faulted curves diverge at bin %d: %d != %d", i, a.Faulted[i], b.Faulted[i])
		}
	}
}

// TestFaultMetricsAndTraceEvents checks the observability contract: an
// observed faulted run exposes fault.* counters in the metrics snapshot and
// fault windows / resilience instants on the trace.
func TestFaultMetricsAndTraceEvents(t *testing.T) {
	sys := BuildSystem(SystemParams{
		Kind: ECperf, Processors: 2, Seed: 7,
		FaultSchedule: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Partition, At: 5_000_000, Duration: 8_000_000, Peer: 1},
		}},
	})
	ob := obs.NewObserver()
	ob.Tracer = obs.NewTracer([]obs.Component{obs.CompFault})
	ob.Registry = obs.NewRegistry()
	delta := ObserveRun(sys, ob, nil, 2_000_000, 16_000_000)

	names := delta.CounterSet().Names()
	registered := func(name string) bool {
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"fault.breaker.opens", "fault.breaker.rejects",
		"fault.shed", "workload.ops.failed", "workload.ops.shed"} {
		if !registered(name) {
			t.Fatalf("metric %q not registered", name)
		}
	}
	if delta.Counter("fault.call.timeouts") == 0 {
		t.Fatal("fault.call.timeouts is zero across a partition window")
	}
	if delta.Counter("fault.injected.dropped_partition") == 0 {
		t.Fatal("fault.injected.dropped_partition is zero")
	}

	var windows, instants int
	for _, e := range ob.Tracer.Events() {
		if strings.HasPrefix(e.Name, "fault.") {
			windows++
		}
		if strings.HasPrefix(e.Name, "resilience.") {
			instants++
		}
	}
	if windows == 0 {
		t.Fatal("no fault window spans on the trace")
	}
	if instants == 0 {
		t.Fatal("no resilience instants on the trace")
	}
}

// TestFaultFigureRenders checks the figure driver produces both series and
// the resilience note.
func TestFaultFigureRenders(t *testing.T) {
	o := QuickFaultRunOpts()
	o.MeasureCycles = 16_000_000
	o.Schedule.Events[0].At = 8_000_000
	o.Schedule.Events[0].Duration = 4_000_000
	f := FaultExperiment(o)
	if len(f.Series) != 2 || f.Series[0].Label != "clean" || f.Series[1].Label != "faulted" {
		t.Fatalf("unexpected series: %+v", f.Series)
	}
	if len(f.Series[0].X) == 0 || len(f.Series[0].X) != len(f.Series[1].X) {
		t.Fatalf("series shapes: %d vs %d", len(f.Series[0].X), len(f.Series[1].X))
	}
	found := false
	for _, n := range f.Notes {
		if strings.Contains(n, "resilience:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resilience note in %v", f.Notes)
	}
}
