package core

import (
	"fmt"

	"repro/internal/stats"
)

// seriesFromSweep builds one curve of metric fn over the sweep's processor
// counts.
func seriesFromSweep(sw *ScalingSweep, label string, fn func(*ScalingPoint) float64) Series {
	s := Series{Label: label}
	for i := range sw.Cells {
		cell := &sw.Cells[i]
		m := cell.Metric(fn)
		s.X = append(s.X, float64(cell.Processors))
		s.Y = append(s.Y, m.Mean())
		s.Err = append(s.Err, m.StdDev())
	}
	return s
}

// Fig4Throughput reproduces Figure 4: throughput speedup versus processor
// count for both workloads, normalized to each workload's single-processor
// throughput.
func Fig4Throughput(jbb, ec *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 4",
		Title:  "Throughput Scaling on a Sun E6000",
		XLabel: "Processors",
		YLabel: "Speedup",
	}
	for _, sw := range []*ScalingSweep{ec, jbb} {
		base := sw.BaseThroughput()
		f.Series = append(f.Series, seriesFromSweep(sw, sw.Kind.String(),
			func(p *ScalingPoint) float64 { return p.Throughput / base }))
	}
	f.Series = append(f.Series, linearSeries(jbb.Opts.Procs))
	return f
}

func linearSeries(procs []int) Series {
	s := Series{Label: "Linear"}
	for _, p := range procs {
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, float64(p))
		s.Err = append(s.Err, 0)
	}
	return s
}

// Fig5ExecutionModes reproduces Figure 5: the mpstat execution-mode
// breakdown (user/system/I-O/idle/GC-idle percentages) versus processors.
func Fig5ExecutionModes(sw *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 5",
		Title:  fmt.Sprintf("Execution Mode Breakdown vs. Processors (%s)", sw.Kind),
		XLabel: "Processors",
		YLabel: "Execution time (%)",
	}
	pct := func(fn func(*ScalingPoint) float64) func(*ScalingPoint) float64 {
		return func(p *ScalingPoint) float64 { return 100 * fn(p) }
	}
	f.Series = append(f.Series,
		seriesFromSweep(sw, "User", pct(func(p *ScalingPoint) float64 { return p.UserFrac })),
		seriesFromSweep(sw, "System", pct(func(p *ScalingPoint) float64 { return p.SystemFrac })),
		seriesFromSweep(sw, "I/O", pct(func(p *ScalingPoint) float64 { return p.IOFrac })),
		seriesFromSweep(sw, "Idle", pct(func(p *ScalingPoint) float64 { return p.IdleFrac })),
		seriesFromSweep(sw, "GC Idle", pct(func(p *ScalingPoint) float64 { return p.GCIdleFrac })),
	)
	return f
}

// Fig6CPIBreakdown reproduces Figure 6: CPI decomposed into instruction
// stall, data stall, and other.
func Fig6CPIBreakdown(sw *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 6",
		Title:  fmt.Sprintf("CPI Breakdown vs. Processors (%s)", sw.Kind),
		XLabel: "Processors",
		YLabel: "Cycles per instruction",
	}
	f.Series = append(f.Series,
		seriesFromSweep(sw, "Instruction Stall", func(p *ScalingPoint) float64 { return p.IStallCPI }),
		seriesFromSweep(sw, "Data Stall", func(p *ScalingPoint) float64 { return p.DStallCPI }),
		seriesFromSweep(sw, "Other", func(p *ScalingPoint) float64 { return p.OtherCPI }),
		seriesFromSweep(sw, "Total CPI", func(p *ScalingPoint) float64 { return p.CPI }),
	)
	return f
}

// Fig7DataStall reproduces Figure 7: the data-stall decomposition (store
// buffer, RAW, L2 hit, cache-to-cache, memory) as fractions of data-stall
// time.
func Fig7DataStall(sw *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 7",
		Title:  fmt.Sprintf("Data Stall Time Breakdown vs. Processors (%s)", sw.Kind),
		XLabel: "Processors",
		YLabel: "Fraction of data stall time",
	}
	f.Series = append(f.Series,
		seriesFromSweep(sw, "Store Buf", func(p *ScalingPoint) float64 { return p.DSStoreBuf }),
		seriesFromSweep(sw, "RAW", func(p *ScalingPoint) float64 { return p.DSRAW }),
		seriesFromSweep(sw, "L2 Hit", func(p *ScalingPoint) float64 { return p.DSL2Hit }),
		seriesFromSweep(sw, "C2C", func(p *ScalingPoint) float64 { return p.DSC2C }),
		seriesFromSweep(sw, "Mem", func(p *ScalingPoint) float64 { return p.DSMem }),
	)
	return f
}

// Fig8C2CRatio reproduces Figure 8: the fraction of L2 misses that hit in
// another processor's cache.
func Fig8C2CRatio(jbb, ec *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 8",
		Title:  "Cache-to-Cache Transfer Ratio",
		XLabel: "Processors",
		YLabel: "Cache-to-cache ratio (%)",
	}
	for _, sw := range []*ScalingSweep{ec, jbb} {
		f.Series = append(f.Series, seriesFromSweep(sw, sw.Kind.String(),
			func(p *ScalingPoint) float64 { return 100 * p.C2CRatio }))
	}
	return f
}

// gcSignificance lists the processor counts at which the with-GC and
// no-GC throughputs differ significantly (Welch's t-test at 5%) — the
// paper's §4.5 observation was "statistically significant for ECperf up to
// 6 processors".
func gcSignificance(sw *ScalingSweep) string {
	var sig []int
	for i := range sw.Cells {
		cell := &sw.Cells[i]
		with := cell.Metric(func(p *ScalingPoint) float64 { return p.Throughput })
		without := cell.Metric(func(p *ScalingPoint) float64 { return p.ThroughputNoGC })
		if stats.SignificantlyDifferent(with, without) {
			sig = append(sig, cell.Processors)
		}
	}
	if len(sig) == 0 {
		return fmt.Sprintf("%s: GC effect not statistically significant at any point", sw.Kind)
	}
	return fmt.Sprintf("%s: GC effect statistically significant (5%%) at processors %v", sw.Kind, sig)
}

// Fig9GCScaling reproduces Figure 9: speedup with and without garbage
// collection time.
func Fig9GCScaling(jbb, ec *ScalingSweep) Figure {
	f := Figure{
		ID:     "Fig 9",
		Title:  "Effect of Garbage Collection on Throughput Scaling",
		XLabel: "Processors",
		YLabel: "Speedup",
	}
	for _, sw := range []*ScalingSweep{ec, jbb} {
		base := sw.BaseThroughput()
		baseNoGC := func() float64 {
			for i := range sw.Cells {
				if sw.Cells[i].Processors == 1 {
					return sw.Cells[i].Metric(func(p *ScalingPoint) float64 { return p.ThroughputNoGC }).Mean()
				}
			}
			return base
		}()
		f.Series = append(f.Series,
			seriesFromSweep(sw, sw.Kind.String(),
				func(p *ScalingPoint) float64 { return p.Throughput / base }),
			seriesFromSweep(sw, sw.Kind.String()+" no GC",
				func(p *ScalingPoint) float64 { return p.ThroughputNoGC / baseNoGC }),
		)
		f.Notes = append(f.Notes, gcSignificance(sw))
	}
	f.Series = append(f.Series, linearSeries(jbb.Opts.Procs))
	return f
}
