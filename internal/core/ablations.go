package core

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsys"
)

// This file holds the ablation studies DESIGN.md calls out: experiments the
// paper motivates in prose but does not plot, each isolating one design
// choice of the modeled system.
//
//   - ISM (§3.2, §6): the paper tuned Solaris with Intimate Shared Memory
//     (4 MB pages) and reports ECperf gained >10% from it. AblationISM
//     re-runs with base 8 KB pages and a 64-entry TLB.
//   - Collector parallelism (§4.1): "the JVM we ran uses a single-threaded
//     garbage collector ... during collection only 1 processor is active".
//     AblationGCThreads gives the collector 1, 2, 4, and 8 threads.
//   - Cache-to-cache latency (§4.3): on the E6000 a dirty transfer costs
//     ~40% more than memory; on NUMA directory machines 200-300% more.
//     AblationC2CLatency sweeps that penalty.
//   - Protocol (§4.5): the paper reasons about GC behavior under "a simple
//     MSI invalidation protocol". AblationProtocol runs MSI, MESI, and the
//     E6000's MOSI.

// AblationOpts size the ablation runs.
type AblationOpts struct {
	Processors    int
	Seed          uint64
	WarmupCycles  uint64
	MeasureCycles uint64
	// MemModel selects the memory timing model for every study run
	// (default memsys.MemFixed).
	MemModel memsys.MemModel
}

// DefaultAblationOpts is the full-fidelity configuration.
func DefaultAblationOpts() AblationOpts {
	return AblationOpts{Processors: 8, Seed: 20030208, WarmupCycles: 10_000_000, MeasureCycles: 40_000_000}
}

// QuickAblationOpts is the reduced test/bench configuration.
func QuickAblationOpts() AblationOpts {
	return AblationOpts{Processors: 8, Seed: 20030208, WarmupCycles: 4_000_000, MeasureCycles: 16_000_000}
}

// ablationPoint runs one configured system and returns (throughput ops/s,
// CPI, the built system for extra metrics).
func ablationPoint(params SystemParams, o AblationOpts) (float64, ScalingPoint, *System) {
	params.MemModel = o.MemModel
	sys := BuildSystem(params)
	eng := sys.Engine
	eng.Run(o.WarmupCycles)
	eng.ResetStats()
	eng.Run(o.WarmupCycles + o.MeasureCycles)
	res := eng.Results()
	seconds := float64(o.MeasureCycles) / CyclesPerSecond
	thr := float64(res.BusinessOps) / seconds

	var p ScalingPoint
	p.Processors = params.Processors
	if res.CPU.Instructions > 0 {
		p.CPI = float64(res.CPU.Total()) / float64(res.CPU.Instructions)
		p.DStallCPI = float64(res.CPU.DStall()) / float64(res.CPU.Instructions)
	}
	p.GCWallFrac = float64(res.GCWall) / float64(o.MeasureCycles)
	if total := float64(res.Modes.Total()); total > 0 {
		p.GCIdleFrac = float64(res.Modes.GCIdle) / total
	}
	p.C2CRatio = sys.Hier.Bus().Stats.C2CRatio()
	return thr, p, sys
}

// AblationISM compares ECperf with ISM (4 MB pages, the paper's tuning)
// against base 8 KB pages. The paper reports ISM was worth >10%.
func AblationISM(o AblationOpts) Figure {
	f := Figure{
		ID:     "Ablation: ISM",
		Title:  "Intimate Shared Memory (4 MB pages) vs. base 8 KB pages (ECperf)",
		XLabel: "configuration (0=ISM, 1=base pages)",
		YLabel: "Throughput (BBops/s)",
	}
	ismThr, _, _ := ablationPoint(SystemParams{Kind: ECperf, Processors: o.Processors, Seed: o.Seed}, o)
	baseThr, basePt, baseSys := ablationPoint(SystemParams{Kind: ECperf, Processors: o.Processors, Seed: o.Seed, BasePages: true}, o)

	f.Series = append(f.Series, Series{
		Label: "ECperf",
		X:     []float64{0, 1},
		Y:     []float64{ismThr, baseThr},
		Err:   []float64{0, 0},
	})
	var tlbMiss float64
	if d := baseSys.Hier.DTLB(0); d != nil {
		tlbMiss = d.MissRatio()
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("ISM speedup over base pages: %.1f%% (paper: \"more than 10%%\")", 100*(ismThr/baseThr-1)),
		fmt.Sprintf("base-page dTLB miss ratio %.3f; CPI with base pages %.2f", tlbMiss, basePt.CPI))
	return f
}

// AblationGCThreads gives the collector 1..8 threads on an 8-processor
// SPECjbb run: the single-threaded collector's idle tax disappears.
func AblationGCThreads(o AblationOpts) Figure {
	f := Figure{
		ID:     "Ablation: GC threads",
		Title:  "Collector parallelism (SPECjbb, 8 processors)",
		XLabel: "GC threads",
		YLabel: "Throughput (transactions/s)",
	}
	// Collections are sparse; give this study a window long enough to
	// contain several.
	o.MeasureCycles *= 3
	thrS := Series{Label: "throughput"}
	idleS := Series{Label: "GC idle frac ×1e5"}
	for _, threads := range []int{1, 2, 4, 8} {
		thr, pt, _ := ablationPoint(SystemParams{
			Kind: SPECjbb, Processors: o.Processors, Seed: o.Seed, GCThreads: threads,
		}, o)
		thrS.X = append(thrS.X, float64(threads))
		thrS.Y = append(thrS.Y, thr)
		thrS.Err = append(thrS.Err, 0)
		idleS.X = append(idleS.X, float64(threads))
		idleS.Y = append(idleS.Y, 1e5*pt.GCIdleFrac)
		idleS.Err = append(idleS.Err, 0)
	}
	f.Series = append(f.Series, thrS, idleS)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"8-thread collector vs single-threaded: %+.1f%% throughput",
		100*(thrS.Y[len(thrS.Y)-1]/thrS.Y[0]-1)))
	return f
}

// AblationC2CLatency sweeps the dirty-transfer penalty from SMP-like to
// NUMA-like, on both workloads. The paper (§4.3): NUMA systems pay 2-3× the
// memory latency per cache-to-cache transfer, so sharing-heavy workloads
// suffer disproportionately there.
func AblationC2CLatency(o AblationOpts) Figure {
	f := Figure{
		ID:     "Ablation: C2C latency",
		Title:  "Sensitivity to cache-to-cache transfer latency (8 processors)",
		XLabel: "C2C latency (cycles; memory = 75)",
		YLabel: "Throughput relative to E6000 latency",
	}
	lats := []uint64{75, 105, 150, 225}
	for _, kind := range []Kind{ECperf, SPECjbb} {
		s := Series{Label: kind.String()}
		var base float64
		for _, lat := range lats {
			thr, _, _ := ablationPoint(SystemParams{
				Kind: kind, Processors: o.Processors, Seed: o.Seed, C2CLatency: lat,
			}, o)
			if lat == 105 {
				base = thr
			}
			s.X = append(s.X, float64(lat))
			s.Y = append(s.Y, thr)
			s.Err = append(s.Err, 0)
		}
		for i := range s.Y {
			s.Y[i] /= base
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// RelatedWorkKernelTime reproduces the §6 comparison with VolanoMark:
// thread-per-connection chat traffic is kernel-dominated, while the
// middleware benchmarks are not ("the middle tier of the ECperf benchmark
// spends much less time in the kernel than VolanoMark. SPECjbb also has a
// much lower kernel component").
func RelatedWorkKernelTime(o AblationOpts) Figure {
	f := Figure{
		ID:     "Related work: VolanoMark",
		Title:  "Kernel (system) time share by workload (8 processors)",
		XLabel: "workload (0=SPECjbb, 1=ECperf, 2=VolanoMark)",
		YLabel: "System time (% of busy time)",
	}
	s := Series{Label: "system %"}
	for i, kind := range []Kind{SPECjbb, ECperf, VolanoMark} {
		sys := BuildSystem(SystemParams{Kind: kind, Processors: o.Processors, Seed: o.Seed, MemModel: o.MemModel})
		eng := sys.Engine
		eng.Run(o.WarmupCycles)
		eng.ResetStats()
		eng.Run(o.WarmupCycles + o.MeasureCycles)
		res := eng.Results()
		pct := 0.0
		if busy := res.Modes.Busy(); busy > 0 {
			pct = 100 * float64(res.Modes.System) / float64(busy)
		}
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, pct)
		s.Err = append(s.Err, 0)
		f.Notes = append(f.Notes, fmt.Sprintf("%v: system %.1f%% of busy time", kind, pct))
	}
	f.Series = append(f.Series, s)
	return f
}

// AblationProtocol runs the bus under MSI, MESI, and MOSI and reports the
// cache-to-cache ratio and bus traffic for SPECjbb.
func AblationProtocol(o AblationOpts) Figure {
	f := Figure{
		ID:     "Ablation: protocol",
		Title:  "Invalidation protocol (SPECjbb, 8 processors)",
		XLabel: "protocol (0=MOSI, 1=MSI, 2=MESI)",
		YLabel: "value",
	}
	protos := []coherence.Protocol{coherence.MOSI, coherence.MSI, coherence.MESI}
	c2c := Series{Label: "C2C ratio (%)"}
	thr := Series{Label: "throughput (k tx/s)"}
	for i, proto := range protos {
		t, pt, sys := ablationPoint(SystemParams{
			Kind: SPECjbb, Processors: o.Processors, Seed: o.Seed, Protocol: proto,
		}, o)
		c2c.X = append(c2c.X, float64(i))
		c2c.Y = append(c2c.Y, 100*pt.C2CRatio)
		c2c.Err = append(c2c.Err, 0)
		thr.X = append(thr.X, float64(i))
		thr.Y = append(thr.Y, t/1000)
		thr.Err = append(thr.Err, 0)
		f.Notes = append(f.Notes, fmt.Sprintf("%v: c2c ratio %.1f%%, writebacks %d, upgrades %d",
			proto, 100*pt.C2CRatio, sys.Hier.Bus().Stats.Writebacks, sys.Hier.Bus().Stats.Upgrades))
	}
	f.Series = append(f.Series, c2c, thr)
	return f
}
