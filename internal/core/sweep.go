package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ifetch"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// feeder expands recorded operations into reference streams for the
// one-pass multi-configuration cache sweeper — the Simics+Sumo flow behind
// Figures 12 and 13. It is purely functional: no timing, one processor.
type feeder struct {
	sweepI *cache.Sweep
	sweepD *cache.Sweep
	gen    *ifetch.Gen
	instr  uint64

	// Optional observability. The sweeper has no timing model, so the
	// instruction count doubles as the clock (~1 CPI on the uniprocessor)
	// and the profiler receives instruction counts as CatBase "cycles".
	tracer *obs.Tracer
	prof   *obs.Profiler
	// attrc, when non-nil, attributes data references per cache line. The
	// sweeper has no coherence protocol, so reads and writes are recorded
	// directly (reference-level, not miss-level) — the sharing classifier
	// still applies, everything being single-node read-only or private.
	attrc *attr.Collector
}

func newFeeder(layout *ifetch.CodeLayout, rng *simrand.Rand, icfgs, dcfgs []cache.Config) *feeder {
	return &feeder{
		sweepI: cache.NewSweep(icfgs),
		sweepD: cache.NewSweep(dcfgs),
		gen:    ifetch.NewGen(layout, rng),
	}
}

func (f *feeder) feedItems(items []trace.Item) {
	for i := range items {
		it := &items[i]
		switch it.Kind {
		case trace.KindInstr:
			f.instr += uint64(it.N)
			f.prof.AddCycles(int(it.Comp), obs.CatBase, uint64(it.N))
			f.gen.Segment(it.Comp, uint64(it.N), func(a mem.Addr) {
				f.sweepI.Access(a, mem.IFetch)
			})
		case trace.KindRead:
			f.sweepD.AccessRange(it.Addr, uint64(it.N), mem.Read)
			f.attrRange(it.Addr, uint64(it.N), false)
		case trace.KindWrite:
			f.sweepD.AccessRange(it.Addr, uint64(it.N), mem.Write)
			f.attrRange(it.Addr, uint64(it.N), true)
		case trace.KindGCPause:
			if it.GC != nil {
				if f.tracer.Enabled(obs.CompJVM) {
					f.tracer.Instant(obs.CompJVM, "gc", 0, f.instr,
						obs.Arg{Key: "live_bytes", Val: it.GC.LiveBytes})
				}
				f.feedItems(it.GC.Items)
			}
		}
	}
}

// attrRange records every 64 B line an access touches with the collector.
func (f *feeder) attrRange(addr mem.Addr, n uint64, write bool) {
	if f.attrc == nil || n == 0 {
		return
	}
	const line = 64
	for ba := uint64(addr) &^ (line - 1); ba < uint64(addr)+n; ba += line {
		if write {
			f.attrc.RecordGetM(ba, 0, false)
		} else {
			f.attrc.RecordGetS(ba, 0, false)
		}
	}
}

func (f *feeder) reset() {
	f.sweepI.ResetStats()
	f.sweepD.ResetStats()
	f.instr = 0
}

func (f *feeder) curves() (icurve, dcurve []cache.Point) {
	f.sweepI.CountInstructions(f.instr)
	f.sweepD.CountInstructions(f.instr)
	return f.sweepI.MissCurve(), f.sweepD.MissCurve()
}

// SweepOpts size the uniprocessor cache-sweep experiment.
type SweepOpts struct {
	// WarmupOps and MeasureOps are per-thread operation counts.
	WarmupOps, MeasureOps int
	Seed                  uint64

	// Observe, when non-nil, supplies one observer per workload
	// configuration (configurations run concurrently, so each needs its
	// own). Trace timestamps are instruction counts — the sweeper has no
	// timing model.
	Observe func(label string) *obs.Observer
	// Progress is ticked once per completed configuration.
	Progress *obs.Heartbeat
}

// DefaultSweepOpts is the full-fidelity configuration.
func DefaultSweepOpts() SweepOpts {
	return SweepOpts{WarmupOps: 120, MeasureOps: 600, Seed: 20030208}
}

// QuickSweepOpts is the reduced test/bench configuration.
func QuickSweepOpts() SweepOpts {
	return SweepOpts{WarmupOps: 30, MeasureOps: 120, Seed: 20030208}
}

// SweepResult is one workload configuration's miss curves.
type SweepResult struct {
	Label  string
	ICurve []cache.Point
	DCurve []cache.Point
	// Instructions fed through the sweeper in the measured rounds.
	Instructions uint64
}

// runUniSweep builds the workload on a uniprocessor machine and streams
// its operations (round-robin over threads, like a time-shared CPU)
// through the sweeper.
func runUniSweep(kind Kind, scale int, label string, o SweepOpts) SweepResult {
	return runUniSweepConfigs(kind, scale, label, o,
		cache.SizeSweepConfigs("I"), cache.SizeSweepConfigs("D"))
}

// runUniSweepConfigs is runUniSweep over arbitrary cache geometries.
func runUniSweepConfigs(kind Kind, scale int, label string, o SweepOpts, icfgs, dcfgs []cache.Config) SweepResult {
	sys := BuildSystem(SystemParams{Kind: kind, Processors: 1, Scale: scale, Seed: o.Seed})
	f := newFeeder(sys.Layout, simrand.New(o.Seed).Derive(77), icfgs, dcfgs)

	var ob *obs.Observer
	if o.Observe != nil {
		ob = o.Observe(label)
	}
	if ob != nil {
		f.tracer, f.prof = ob.Tracer, ob.Profiler
		if ob.Attr != nil {
			f.attrc = ob.Attr
			sys.Heap.SetAttr(ob.Attr)
			space := sys.Space
			ob.Attr.Fallback = func(a uint64) (string, bool) {
				r, ok := space.FindRegion(mem.Addr(a))
				if !ok {
					return "", false
				}
				return r.Name, true
			}
		}
		if f.tracer != nil {
			f.tracer.NameProcess(f.tracer.Pid, label)
		}
		if f.prof != nil && f.prof.Scope == "" {
			f.prof.Scope = label
		}
		if ob.Registry != nil {
			ob.Registry.Counter("sweep.instructions", func() uint64 { return f.instr })
			if f.prof != nil {
				for _, comp := range sys.Layout.Components() {
					name := comp.Name
					ob.Registry.Counter("sweep.instr."+name, func() uint64 {
						return f.prof.ComponentTotals()[name]
					})
				}
			}
		}
	}

	var sources []osmodel.OpSource
	switch kind {
	case SPECjbb:
		for i := 0; i < scale; i++ {
			sources = append(sources, sys.JBB.Source(i, -1))
		}
	case ECperf:
		// A uniprocessor app server still runs a small thread pool.
		for i := 0; i < 6; i++ {
			sources = append(sources, sys.EC.Source(i, -1))
		}
	}

	now := uint64(0)
	feedRound := func(ops int) {
		for k := 0; k < ops; k++ {
			for tid, src := range sources {
				op := src.NextOp(tid, now)
				before := f.instr
				f.feedItems(op.Items)
				if op.Business && f.tracer.Enabled(obs.CompWorkload) {
					f.tracer.Span(obs.CompWorkload, op.Tag, tid, before, f.instr)
				}
				now += op.Instructions() // ~1 cycle/instr on the uniprocessor
			}
		}
	}
	f.prof.SetPhase("warmup")
	feedRound(o.WarmupOps)
	f.reset()
	f.prof.Reset()
	f.attrc.Reset()
	f.prof.SetPhase("measure")
	feedRound(o.MeasureOps)
	if f.attrc != nil {
		f.attrc.CloseEpoch(sys.Heap.SiteResolver(), "final")
	}
	ic, dc := f.curves()
	o.Progress.Add(1)
	o.Progress.AddCycles(f.instr)
	return SweepResult{Label: label, ICurve: ic, DCurve: dc, Instructions: f.instr}
}

// CacheSweeps holds the four workload configurations of Figures 12/13.
type CacheSweeps struct {
	Results []SweepResult // ECperf, SPECjbb-25, SPECjbb-10, SPECjbb-1
}

// sweepSpecs are the paper's four uniprocessor workload configurations.
type sweepSpec struct {
	kind  Kind
	scale int
	label string
}

func sweepSpecs() []sweepSpec {
	return []sweepSpec{
		{ECperf, 10, "ECperf"},
		{SPECjbb, 25, "SPECjbb-25"},
		{SPECjbb, 10, "SPECjbb-10"},
		{SPECjbb, 1, "SPECjbb-1"},
	}
}

// ScheduleCacheSweeps submits the four uniprocessor configurations as
// cells; the results are filled by sched.Wait. Result order is fixed at
// submission.
func ScheduleCacheSweeps(sched *Scheduler, o SweepOpts) *CacheSweeps {
	specs := sweepSpecs()
	cs := &CacheSweeps{Results: make([]SweepResult, len(specs))}
	for i, sp := range specs {
		i, sp := i, sp
		sched.Submit(func() {
			cs.Results[i] = runUniSweep(sp.kind, sp.scale, sp.label, o)
		})
	}
	return cs
}

// RunCacheSweeps runs the paper's four uniprocessor configurations on a
// private scheduler sized to the host.
func RunCacheSweeps(o SweepOpts) *CacheSweeps {
	sched := NewScheduler(DefaultWorkers())
	cs := ScheduleCacheSweeps(sched, o)
	sched.Wait()
	return cs
}

func curveFigure(id, title string, cs *CacheSweeps, pick func(SweepResult) []cache.Point) Figure {
	f := Figure{
		ID:     id,
		Title:  title,
		XLabel: "Cache Size (KB)",
		YLabel: "Misses / 1000 instructions",
		LogX:   true,
		LogY:   true,
	}
	for _, r := range cs.Results {
		s := Series{Label: r.Label}
		for _, p := range pick(r) {
			s.X = append(s.X, float64(p.SizeBytes)/1024)
			s.Y = append(s.Y, p.MissesPer1000)
			s.Err = append(s.Err, 0)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig12ICacheMissRate reproduces Figure 12: instruction-cache miss rate
// versus cache size (64 KB–16 MB, 4-way, 64 B blocks) on a uniprocessor.
func Fig12ICacheMissRate(cs *CacheSweeps) Figure {
	f := curveFigure("Fig 12", "Instruction Cache Miss Rate", cs,
		func(r SweepResult) []cache.Point { return r.ICurve })
	f.Notes = append(f.Notes, fmt.Sprintf(
		"ECperf I-miss at 256KB = %.3f/1000 vs SPECjbb-25 = %.3f/1000",
		missAt(cs, "ECperf", 256<<10, true), missAt(cs, "SPECjbb-25", 256<<10, true)))
	return f
}

// Fig13DCacheMissRate reproduces Figure 13: data-cache miss rate versus
// cache size, with SPECjbb at 1, 10, and 25 warehouses.
func Fig13DCacheMissRate(cs *CacheSweeps) Figure {
	f := curveFigure("Fig 13", "Data Cache Miss Rate", cs,
		func(r SweepResult) []cache.Point { return r.DCurve })
	f.Notes = append(f.Notes, fmt.Sprintf(
		"D-miss at 1MB: ECperf=%.3f, SPECjbb-1=%.3f, SPECjbb-10=%.3f, SPECjbb-25=%.3f (/1000 instr)",
		missAt(cs, "ECperf", 1<<20, false), missAt(cs, "SPECjbb-1", 1<<20, false),
		missAt(cs, "SPECjbb-10", 1<<20, false), missAt(cs, "SPECjbb-25", 1<<20, false)))
	return f
}

// GeometryMode selects the swept cache dimension.
type GeometryMode int

const (
	// SweepSize: 64 KB-16 MB at 4-way/64 B (the paper's Figures 12/13).
	SweepSize GeometryMode = iota
	// SweepAssoc: 1-16 ways at a fixed size (a dimension the paper's
	// simulator supported, §3.3 — supplemental here).
	SweepAssoc
	// SweepBlock: 16-256 B blocks at a fixed size (ditto).
	SweepBlock
)

// RunGeometrySweeps runs the uniprocessor sweeps along the chosen
// dimension; fixedBytes is the cache size for the non-size modes. Like
// RunCacheSweeps, the four workload configurations are independent and
// execute concurrently; result order is fixed.
func RunGeometrySweeps(o SweepOpts, mode GeometryMode, fixedBytes int) *CacheSweeps {
	mk := func(name string) []cache.Config {
		switch mode {
		case SweepAssoc:
			return cache.AssocSweepConfigs(name, fixedBytes)
		case SweepBlock:
			return cache.BlockSweepConfigs(name, fixedBytes)
		default:
			return cache.SizeSweepConfigs(name)
		}
	}
	specs := sweepSpecs()
	sched := NewScheduler(DefaultWorkers())
	cs := &CacheSweeps{Results: make([]SweepResult, len(specs))}
	for i, sp := range specs {
		i, sp := i, sp
		sched.Submit(func() {
			cs.Results[i] = runUniSweepConfigs(sp.kind, sp.scale, sp.label, o, mk("I"), mk("D"))
		})
	}
	sched.Wait()
	return cs
}

// missAt reads one point off a sweep curve (for notes and tests).
func missAt(cs *CacheSweeps, label string, size int, instruction bool) float64 {
	for _, r := range cs.Results {
		if r.Label != label {
			continue
		}
		curve := r.DCurve
		if instruction {
			curve = r.ICurve
		}
		for _, p := range curve {
			if p.SizeBytes == size {
				return p.MissesPer1000
			}
		}
	}
	return -1
}
