package core

import (
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/reqtrace"
	"repro/internal/stats"
)

// inspectTopN bounds the hot-line/object tables rendered for the live
// inspection endpoint; the final report honors the -attr-top flag instead.
const inspectTopN = 20

// AttachObserver wires an observer through an assembled system (tracer into
// the engine and bus, profiler into every core) and registers the standard
// metric namespace against its registry. Call it after BuildSystem and
// before the first Run.
//
// The simulator is single-threaded per run, so concurrent runs (sweep
// cells) must each get their own Observer; merge traces afterwards with
// obs.WriteChromeTrace and keep them apart by Tracer.Pid.
func AttachObserver(sys *System, ob *obs.Observer) {
	if ob == nil {
		return
	}
	sys.Engine.AttachObs(ob)
	if ob.Tracer != nil {
		ob.Tracer.NameProcess(ob.Tracer.Pid, sys.Params.Kind.String())
		// Scheduled fault windows become spans on the fault track; the
		// injector then also emits resilience instants (retries, sheds,
		// breaker transitions) as the run hits them.
		sys.Faults.AttachTracer(ob.Tracer, -1)
	}
	if ob.Profiler != nil && ob.Profiler.Scope == "" {
		ob.Profiler.Scope = sys.Params.Kind.String()
	}
	if ob.Attr != nil {
		sys.Hier.Bus().Attr = ob.Attr
		if sys.Heap != nil {
			sys.Heap.SetAttr(ob.Attr)
		}
		// Addresses the heap cannot name (code, stacks, DB buffers) fall
		// back to the machine's address-space region names.
		space := sys.Space
		ob.Attr.Fallback = func(a uint64) (string, bool) {
			r, ok := space.FindRegion(mem.Addr(a))
			if !ok {
				return "", false
			}
			return r.Name, true
		}
	}
	registerMetrics(sys, ob.Registry)
	if r := ob.Registry; r != nil {
		bus := sys.Hier.Bus()
		r.Counter("memsys.bus.snoop_fallback", func() uint64 { n, _ := bus.FilterFallbacks(); return n })
		if t := ob.Tracer; t != nil {
			// Events the linear trace buffer refused at its cap, and events
			// the flight-recorder ring overwrote with newer ones.
			r.Counter("trace.dropped", t.Dropped)
			r.Counter("trace.ring_evicted", func() uint64 { return t.Ring().Evicted() })
		}
		if a := ob.Attr; a != nil {
			r.Counter("attr.events", a.Events)
			r.Counter("attr.epochs", func() uint64 { return uint64(a.EpochCount()) })
			r.Counter("attr.resamples", func() uint64 { return uint64(a.Resamples()) })
			r.Gauge("attr.lines", func() float64 { return float64(a.Len()) })
		}
	}
	// A bus that has already abandoned its snoop filter (env override,
	// or growth past the sharer-mask width) surfaces that on the trace
	// timeline too; later fallbacks emit their own instants.
	if ob.Tracer != nil && ob.Tracer.Enabled(obs.CompMem) {
		if n, why := sys.Hier.Bus().FilterFallbacks(); n > 0 {
			ob.Tracer.Instant(obs.CompMem, "snoop.brute_fallback", 0, 0, obs.Arg{Key: "reason", Val: why})
		}
	}
}

// registerMetrics binds the machine's counters into the registry under the
// component namespaces. Bindings are pull-model closures over the live
// counters: registering costs nothing on the simulation hot path, and a
// Snapshot reads everything coherently between run slices.
func registerMetrics(sys *System, r *obs.Registry) {
	if r == nil {
		return
	}
	eng, hier := sys.Engine, sys.Hier
	bus := hier.Bus()

	r.Counter("memsys.l2.miss", func() uint64 { return hier.DataMisses + hier.FetchMisses })
	r.Counter("memsys.l2.data_miss", func() uint64 { return hier.DataMisses })
	r.Counter("memsys.l2.fetch_miss", func() uint64 { return hier.FetchMisses })
	r.Counter("memsys.l2.hit", func() uint64 { return bus.Stats.L2Hits })
	r.Counter("memsys.bus.gets", func() uint64 { return bus.Stats.GetS })
	r.Counter("memsys.bus.getm", func() uint64 { return bus.Stats.GetM })
	r.Counter("memsys.bus.upgrade", func() uint64 { return bus.Stats.Upgrades })
	r.Counter("memsys.bus.c2c", func() uint64 { return bus.Stats.C2CTransfers })
	r.Counter("memsys.bus.mem", func() uint64 { return bus.Stats.MemTransfers })
	r.Counter("memsys.bus.writeback", func() uint64 { return bus.Stats.Writebacks })
	r.Counter("memsys.bus.inval", func() uint64 { return bus.Stats.Invalidations })

	if hier.Model() == memsys.MemLoaded {
		// Loaded-latency model: the live channel utilization and the latency
		// multipliers it currently implies (gauges), plus the cumulative
		// stall charged beyond the fixed model (counters — snapshot deltas
		// give the per-interval cost of contention).
		snap := func() memsys.LoadSnapshot { ls, _ := hier.LoadSnapshot(); return ls }
		r.Gauge("memsys.loaded.util", func() float64 { return snap().Util })
		r.Gauge("memsys.loaded.mem_mult", func() float64 { return snap().MemMult })
		r.Gauge("memsys.loaded.c2c_mult", func() float64 { return snap().C2CMult })
		r.Counter("memsys.loaded.mem_extra_cycles", func() uint64 { return snap().MemExtraCycles })
		r.Counter("memsys.loaded.c2c_extra_cycles", func() uint64 { return snap().C2CExtraCycles })
		r.Counter("memsys.loaded.interventions", func() uint64 { return snap().Interventions })
	}

	r.Counter("cpu.instructions", func() uint64 { return eng.Results().CPU.Instructions })
	r.Counter("cpu.cycles.istall", func() uint64 { return eng.Results().CPU.IStallCycles })
	r.Counter("cpu.cycles.dstall", func() uint64 { c := eng.Results().CPU; return c.DStall() })

	r.Counter("jvm.gc.count", func() uint64 { return eng.Results().GCCount })
	r.Counter("jvm.gc.wall_cycles", func() uint64 { return eng.Results().GCWall })
	r.Histogram("jvm.gc.pause_cycles", func() stats.Histogram { return *eng.GCPauses() })
	r.Gauge("jvm.heap.eden_used_bytes", func() float64 { return float64(sys.Heap.EdenUsed()) })
	r.Gauge("jvm.heap.old_used_bytes", func() float64 { return float64(sys.Heap.OldUsed()) })

	r.Counter("osmodel.lock.wait_cycles", func() uint64 { return eng.Results().LockWaitCycles })
	r.Counter("osmodel.lock.blocks", func() uint64 { return eng.Results().LockBlocks })
	r.Counter("osmodel.lock.acquires", func() uint64 { return eng.Results().LockAcquires })

	r.Counter("workload.ops", func() uint64 { return eng.Results().BusinessOps })

	if sys.DB != nil {
		r.Gauge("net.db.utilization", func() float64 { return sys.DB.Utilization() })
	}
	if sys.Supplier != nil {
		r.Gauge("net.supplier.utilization", func() float64 { return sys.Supplier.Utilization() })
	}

	if inj := sys.Faults; inj != nil {
		r.Counter("fault.injected.refused", func() uint64 { return inj.Stats.Refused })
		r.Counter("fault.injected.dropped_partition", func() uint64 { return inj.Stats.DroppedPartition })
		r.Counter("fault.injected.dropped_loss", func() uint64 { return inj.Stats.DroppedLoss })
		r.Counter("fault.injected.latency_scaled", func() uint64 { return inj.Stats.LatencyScaled })
		r.Counter("fault.injected.service_scaled", func() uint64 { return inj.Stats.ServiceScaled })
		r.Counter("fault.injected.gc_scaled", func() uint64 { return inj.Stats.GCScaled })
	}
	if sys.EC != nil {
		if c := sys.EC.Caller(); c != nil {
			r.Counter("fault.call.calls", func() uint64 { return c.Stats.Calls })
			r.Counter("fault.call.attempts", func() uint64 { return c.Stats.Attempts })
			r.Counter("fault.call.retries", func() uint64 { return c.Stats.Retries })
			r.Counter("fault.call.timeouts", func() uint64 { return c.Stats.Timeouts })
			r.Counter("fault.call.fastfails", func() uint64 { return c.Stats.FastFails })
			r.Counter("fault.call.failures", func() uint64 { return c.Stats.Failures })
			r.Counter("fault.call.successes", func() uint64 { return c.Stats.Successes })
			r.Counter("fault.breaker.opens", func() uint64 { return c.BreakerStats().Opens })
			r.Counter("fault.breaker.rejects", func() uint64 { return c.BreakerStats().Rejects })
			r.Counter("fault.breaker.probes", func() uint64 { return c.BreakerStats().Probes })
			r.Counter("fault.shed", func() uint64 { return c.ShedCount() })
		}
		r.Counter("workload.ops.failed", func() uint64 { return sys.EC.FailedOps })
		r.Counter("workload.ops.shed", func() uint64 { return sys.EC.ShedOps })
	}
}

// ObserveRun drives a built system through the standard warm-up/measure
// discipline with an observer attached: warm-up runs in profiler phase
// "warmup"; at the boundary the engine's stats, the profiler, and the
// metrics base snapshot all reset together (so the folded profile and the
// returned metrics delta cover exactly the window the figure metrics do);
// measurement runs in phase "measure". The run advances in slices so hb
// can report simulated-vs-wall progress while it goes. ob and hb may be
// nil — the run is then identical to the plain warm-up/measure sequence.
func ObserveRun(sys *System, ob *obs.Observer, hb *obs.Heartbeat, warmup, measure uint64) *obs.Snapshot {
	snap, _ := ObserveRunCheckpointed(sys, ob, hb, warmup, measure, nil)
	return snap
}

// ObserveRunCheckpointed is ObserveRun with run survivability: when plan is
// non-nil, a resumable checkpoint is saved at the plan's cadence during the
// measurement window and at the end. Checkpoint save failures abort the run
// (a survivability run with no checkpoints is not what was asked for).
func ObserveRunCheckpointed(sys *System, ob *obs.Observer, hb *obs.Heartbeat, warmup, measure uint64, plan *CheckpointPlan) (*obs.Snapshot, error) {
	const slice = 2_000_000
	AttachObserver(sys, ob)
	eng := sys.Engine

	var prof *obs.Profiler
	var reg *obs.Registry
	var tracer *obs.Tracer
	if ob != nil {
		prof, reg, tracer = ob.Profiler, ob.Registry, ob.Tracer
	}

	nextSave := uint64(0)
	if plan != nil && plan.Every > 0 {
		nextSave = warmup + plan.Every
	}
	runTo := func(from, to uint64) error {
		for t := from; t < to; {
			t += slice
			if t > to {
				t = to
			}
			eng.Run(t)
			hb.SetCycles(t)
			flightTick(sys, t)
			if rt := eng.ReqTrace(); rt != nil {
				p50, p99 := rt.LiveQuantiles()
				hb.SetLatency(p50, p99)
			}
			if ls, ok := sys.Hier.LoadSnapshot(); ok {
				hb.SetMemLoad(ls.Util, ls.MemMult)
			}
			if ob != nil && ob.Inspect != nil {
				ob.Inspect.Publish(ob, inspectTopN, false)
			}
			if nextSave > 0 && t >= nextSave {
				if err := plan.save(sys, warmup, t); err != nil {
					return err
				}
				for nextSave <= t {
					nextSave += plan.Every
				}
			}
		}
		return nil
	}

	prof.SetPhase("warmup")
	if err := runTo(0, warmup); err != nil {
		return nil, err
	}
	eng.ResetStats()
	prof.Reset() // the folded profile covers exactly the measurement window
	if ob != nil {
		// Attribution, like the figure metrics, covers only the
		// measurement window; warm-up traffic is discarded.
		ob.Attr.Reset()
	}
	var base *obs.Snapshot
	if reg != nil {
		base = reg.Snapshot()
	}
	if tracer.Enabled(obs.CompWorkload) {
		tracer.Instant(obs.CompWorkload, "measure.start", 0, eng.Now())
	}
	prof.SetPhase("measure")
	if err := runTo(warmup, warmup+measure); err != nil {
		return nil, err
	}
	if err := plan.save(sys, warmup, warmup+measure); err != nil {
		return nil, err
	}
	hb.Add(1)
	if ob != nil && ob.Attr != nil {
		// Attribute the tail of the measurement window that no GC closed.
		var res attr.Resolver
		if sys.Heap != nil {
			res = sys.Heap.SiteResolver()
		}
		ob.Attr.CloseEpoch(res, "final")
	}
	if ob != nil && ob.Inspect != nil {
		ob.Inspect.Publish(ob, inspectTopN, true)
	}

	if reg != nil {
		return reg.Snapshot().Delta(base), nil
	}
	return nil, nil
}

// RunObservedPoint is RunScalingPoint with an observer attached (see
// ObserveRun for the phase discipline). It returns the figure metrics and
// the measurement-window metrics delta.
func RunObservedPoint(kind Kind, procs int, seed uint64, o Opts, ob *obs.Observer) (ScalingPoint, *obs.Snapshot) {
	return RunObservedPointLatency(kind, procs, seed, o, ob, nil)
}

// RunObservedPointLatency is RunObservedPoint with a request-latency
// collector attached before the first cycle (nil rt tracks nothing). The
// collector re-anchors at the warm-up boundary with the rest of the stats,
// so its report covers exactly the measurement window.
func RunObservedPointLatency(kind Kind, procs int, seed uint64, o Opts, ob *obs.Observer, rt *reqtrace.Collector) (ScalingPoint, *obs.Snapshot) {
	return RunObservedPointFlight(kind, procs, seed, o, ob, rt, nil)
}

// RunObservedPointFlight is RunObservedPointLatency with a flight recorder
// riding the run (nil rec records nothing): the run loop ticks it, so its
// triggers and /flight/dump work during the observed point.
func RunObservedPointFlight(kind Kind, procs int, seed uint64, o Opts, ob *obs.Observer, rt *reqtrace.Collector, rec *flightrec.Recorder) (ScalingPoint, *obs.Snapshot) {
	sys := BuildSystem(o.systemParams(kind, procs, seed))
	AttachLatency(sys, ob, rt)
	AttachFlight(sys, rec)
	delta := ObserveRun(sys, ob, o.Progress, o.WarmupCycles, o.MeasureCycles)
	return summarizePoint(sys, procs, seed, o), delta
}
