package core

import (
	"testing"
)

// Shape tests: each asserts the qualitative result the paper reports for a
// figure, on reduced (QuickOpts-sized) runs. Absolute values are not
// checked — the substrate is a simulator — only orderings, trends, knees,
// and crossovers.

func TestBuildSystemBothKinds(t *testing.T) {
	for _, kind := range []Kind{SPECjbb, ECperf} {
		sys := BuildSystem(SystemParams{Kind: kind, Processors: 4, Seed: 1})
		if sys.Engine == nil || sys.Heap == nil || sys.Hier == nil {
			t.Fatalf("%v: incomplete system", kind)
		}
		if kind == SPECjbb && sys.JBB == nil {
			t.Fatal("SPECjbb workload missing")
		}
		if kind == ECperf && (sys.EC == nil || sys.DB == nil || sys.Supplier == nil) {
			t.Fatal("ECperf tiers missing")
		}
		if sys.Hier.Config().CPUs != MachineCPUs {
			t.Fatalf("machine has %d CPUs", sys.Hier.Config().CPUs)
		}
	}
}

func TestSystemDefaults(t *testing.T) {
	p := SystemParams{Kind: SPECjbb, Processors: 6}.withDefaults()
	if p.Scale != 6 {
		t.Fatalf("SPECjbb default scale = %d, want processors", p.Scale)
	}
	p = SystemParams{Kind: ECperf, Processors: 6}.withDefaults()
	if p.Scale == 0 || p.CPUsPerL2 != 1 || p.TotalCPUs != MachineCPUs {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

func TestScalingPointDeterministic(t *testing.T) {
	o := QuickOpts()
	o.WarmupCycles = 2_000_000
	o.MeasureCycles = 6_000_000
	a := RunScalingPoint(SPECjbb, 2, 7, o)
	b := RunScalingPoint(SPECjbb, 2, 7, o)
	if a.Throughput != b.Throughput || a.CPI != b.CPI || a.C2CRatio != b.C2CRatio {
		t.Fatalf("scaling point not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestFig4Shapes: throughput grows with processors and flattens; neither
// workload keeps scaling linearly to 15.
func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickOpts()
	for _, kind := range []Kind{SPECjbb, ECperf} {
		sw := RunScalingSweep(kind, o)
		base := sw.BaseThroughput()
		var sp []float64
		for i := range sw.Cells {
			sp = append(sp, sw.Cells[i].Metric(func(p *ScalingPoint) float64 { return p.Throughput }).Mean()/base)
		}
		// Monotone-ish growth at small P.
		if sp[1] < 1.5 || sp[2] < 3.0 {
			t.Fatalf("%v: weak scaling at small P: %v", kind, sp)
		}
		// Far from linear at 15 (paper: ~7 for SPECjbb, ~9-10 for ECperf).
		last := sp[len(sp)-1]
		if last > 13 {
			t.Fatalf("%v: suspiciously linear speedup %v at 15P", kind, sp)
		}
		if last < 4 {
			t.Fatalf("%v: collapsed speedup %v at 15P", kind, sp)
		}
	}
}

// TestFig5ModeShapes: ECperf spends significant system time (SPECjbb none),
// and both lose significant busy share at 15 processors.
func TestFig5ModeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickOpts()
	jbb1 := RunScalingPoint(SPECjbb, 1, o.Seeds[0], o)
	jbb15 := RunScalingPoint(SPECjbb, 15, o.Seeds[0], o)
	ec1 := RunScalingPoint(ECperf, 1, o.Seeds[0], o)
	ec15 := RunScalingPoint(ECperf, 15, o.Seeds[0], o)

	if ec1.SystemFrac < 0.05 {
		t.Fatalf("ECperf system time at 1P = %v, want noticeable (networking)", ec1.SystemFrac)
	}
	if jbb15.SystemFrac > ec15.SystemFrac {
		t.Fatalf("SPECjbb system (%v) exceeds ECperf's (%v): jbb runs no kernel networking",
			jbb15.SystemFrac, ec15.SystemFrac)
	}
	nonBusy := func(p ScalingPoint) float64 { return p.IdleFrac + p.GCIdleFrac + p.IOFrac }
	if nonBusy(jbb15) < 0.10 || nonBusy(ec15) < 0.10 {
		t.Fatalf("no idle growth at 15P: jbb=%v ec=%v", nonBusy(jbb15), nonBusy(ec15))
	}
	if nonBusy(jbb1) > 0.10 {
		t.Fatalf("SPECjbb idle at 1P = %v, should be ~0", nonBusy(jbb1))
	}
}

// TestFig6CPIShapes: CPI decomposes exactly, and rises with processors
// (memory system stalls grow with sharing).
func TestFig6CPIShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickOpts()
	for _, kind := range []Kind{SPECjbb, ECperf} {
		p1 := RunScalingPoint(kind, 1, o.Seeds[0], o)
		p15 := RunScalingPoint(kind, 15, o.Seeds[0], o)
		sum := p1.OtherCPI + p1.IStallCPI + p1.DStallCPI
		if diff := sum - p1.CPI; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%v: CPI does not decompose: %v vs %v", kind, sum, p1.CPI)
		}
		if p15.CPI <= p1.CPI {
			t.Fatalf("%v: CPI did not rise with processors: %v -> %v", kind, p1.CPI, p15.CPI)
		}
		if p15.DStallCPI <= p1.DStallCPI {
			t.Fatalf("%v: data stall did not grow: %v -> %v", kind, p1.DStallCPI, p15.DStallCPI)
		}
	}
}

// TestFig7DataStallShapes: store-buffer and RAW stalls are minor; the big
// components are L2 hits and, at high P, cache-to-cache transfers (§4.2).
func TestFig7DataStallShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickOpts()
	p := RunScalingPoint(ECperf, 15, o.Seeds[0], o)
	if p.DSStoreBuf > 0.2 || p.DSRAW > 0.2 {
		t.Fatalf("store buffer (%v) or RAW (%v) dominate data stall", p.DSStoreBuf, p.DSRAW)
	}
	if p.DSC2C < 0.05 {
		t.Fatalf("C2C share of data stall at 15P = %v, want significant", p.DSC2C)
	}
	total := p.DSStoreBuf + p.DSRAW + p.DSL2Hit + p.DSC2C + p.DSMem
	if total < 0.99 || total > 1.01 {
		t.Fatalf("data stall fractions sum to %v", total)
	}
}

// TestFig8C2CShapes: the cache-to-cache ratio starts small and grows with
// processor count for both workloads.
func TestFig8C2CShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickOpts()
	for _, kind := range []Kind{SPECjbb, ECperf} {
		p1 := RunScalingPoint(kind, 1, o.Seeds[0], o)
		p8 := RunScalingPoint(kind, 8, o.Seeds[0], o)
		p15 := RunScalingPoint(kind, 15, o.Seeds[0], o)
		if p8.C2CRatio <= p1.C2CRatio {
			t.Fatalf("%v: C2C ratio not growing: 1P=%v 8P=%v", kind, p1.C2CRatio, p8.C2CRatio)
		}
		if p15.C2CRatio < 0.15 {
			t.Fatalf("%v: C2C ratio at 15P = %v, want substantial", kind, p15.C2CRatio)
		}
	}
}

// TestFig12And13Shapes: the headline cache observations —
//   - ECperf's instruction miss rate at intermediate caches (256 KB) is far
//     above SPECjbb's (larger instruction footprint),
//   - SPECjbb's data miss rate rises with warehouses; ECperf's stays at or
//     below the smallest SPECjbb configuration,
//   - all miss curves fall with cache size.
func TestFig12And13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cs := RunCacheSweeps(QuickSweepOpts())
	ecI := missAt(cs, "ECperf", 256<<10, true)
	jbbI := missAt(cs, "SPECjbb-25", 256<<10, true)
	if ecI < 2*jbbI {
		t.Fatalf("Fig 12: ECperf I-miss at 256KB (%v) not ≫ SPECjbb's (%v)", ecI, jbbI)
	}
	d1 := missAt(cs, "SPECjbb-1", 1<<20, false)
	d10 := missAt(cs, "SPECjbb-10", 1<<20, false)
	d25 := missAt(cs, "SPECjbb-25", 1<<20, false)
	ecD := missAt(cs, "ECperf", 1<<20, false)
	if !(d25 > d10 && d10 > d1) {
		t.Fatalf("Fig 13: warehouse ordering broken: 1wh=%v 10wh=%v 25wh=%v", d1, d10, d25)
	}
	if ecD > d10 {
		t.Fatalf("Fig 13: ECperf D-miss (%v) above SPECjbb-10 (%v)", ecD, d10)
	}
	for _, r := range cs.Results {
		first := r.DCurve[0].MissesPer1000
		last := r.DCurve[len(r.DCurve)-1].MissesPer1000
		if last > first {
			t.Fatalf("%s: D-miss curve rises with cache size", r.Label)
		}
	}
}

// TestFig11Shapes: SPECjbb's live memory grows ~linearly with warehouses;
// ECperf's flattens past a small knee.
func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickMemScaleOpts()
	jbb4 := memScalePoint(SPECjbb, 4, o)
	jbb16 := memScalePoint(SPECjbb, 16, o)
	if jbb16 < 2.5*jbb4 {
		t.Fatalf("SPECjbb live memory not ~linear: 4wh=%vMB 16wh=%vMB", jbb4, jbb16)
	}
	ec8 := memScalePoint(ECperf, 8, o)
	ec40 := memScalePoint(ECperf, 40, o)
	if ec40 > ec8*1.3 {
		t.Fatalf("ECperf live memory keeps growing: OIR8=%vMB OIR40=%vMB", ec8, ec40)
	}
}

// TestFig10And14And15Shapes: the communication profile — concentrated hot
// lines, and a transfer-rate collapse during garbage collection.
func TestFig10And14And15Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickCommOpts()
	o.MeasureCycles = 30_000_000 // long enough for a GC
	jbb := RunCommProfile(SPECjbb, o)

	// Fig 14: hot concentration — the top 0.1% of lines carries a large
	// share (paper: >70% for SPECjbb; one line alone 20%).
	if jbb.Top01PctShare < 0.3 {
		t.Fatalf("SPECjbb hottest 0.1%% share = %v, want concentrated", jbb.Top01PctShare)
	}
	if jbb.TopLineShare < 0.02 {
		t.Fatalf("SPECjbb hottest line share = %v, want a visible hot lock", jbb.TopLineShare)
	}
	// Fig 10: at least one GC, and the minimum bin during the window is
	// far below the peak (the collapse).
	if jbb.GCCount == 0 {
		t.Skip("no GC in reduced window; full runs cover this")
	}
	peak, min := 0.0, 1e18
	for _, v := range jbb.Timeline {
		if v > peak {
			peak = v
		}
		if v < min {
			min = v
		}
	}
	if peak == 0 || min > 0.5*peak {
		t.Fatalf("no C2C collapse: min=%v peak=%v", min, peak)
	}
}

// TestFig16Shapes: the paper's closing result — sharing one 1 MB L2 helps
// ECperf but hurts SPECjbb-25.
func TestFig16Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickSharedCacheOpts()
	ecPriv := RunSharedCachePoint(ECperf, 1, o).DataMissesPer1000.Mean()
	ecShared := RunSharedCachePoint(ECperf, 8, o).DataMissesPer1000.Mean()
	jbbPriv := RunSharedCachePoint(SPECjbb, 1, o).DataMissesPer1000.Mean()
	jbbShared := RunSharedCachePoint(SPECjbb, 8, o).DataMissesPer1000.Mean()

	if ecShared >= ecPriv {
		t.Fatalf("ECperf: shared L2 (%v) not better than private (%v)", ecShared, ecPriv)
	}
	if jbbShared <= jbbPriv {
		t.Fatalf("SPECjbb-25: shared L2 (%v) not worse than private (%v)", jbbShared, jbbPriv)
	}
}

// TestAblationISM: the §6 result — base 8 KB pages cost ECperf more than
// 10% against ISM's 4 MB pages.
func TestAblationISM(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := AblationISM(QuickAblationOpts())
	ism, base := f.Series[0].Y[0], f.Series[0].Y[1]
	if gain := ism/base - 1; gain < 0.05 {
		t.Fatalf("ISM gain %.1f%% too small (paper: >10%%)", 100*gain)
	}
}

// TestAblationGCThreads: a parallel collector removes the single-threaded
// collector's idle tax.
func TestAblationGCThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := AblationGCThreads(QuickAblationOpts())
	thr := f.Series[0]
	if thr.Y[len(thr.Y)-1] <= thr.Y[0] {
		t.Fatalf("parallel GC did not help: %v", thr.Y)
	}
	idle := f.Series[1]
	if idle.Y[len(idle.Y)-1] >= idle.Y[0] {
		t.Fatalf("parallel GC did not cut GC idle: %v", idle.Y)
	}
}

// TestAblationC2CLatency: NUMA-like transfer penalties cost throughput on
// both sharing-heavy workloads (§4.3's motivation).
func TestAblationC2CLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := AblationC2CLatency(QuickAblationOpts())
	for _, s := range f.Series {
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Fatalf("%s: throughput did not fall from fast (%v) to NUMA-like (%v) C2C",
				s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

// TestAblationProtocol: MSI loses dirty read-sharing (lower C2C ratio, more
// writebacks); MESI's Exclusive state removes upgrades.
func TestAblationProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := AblationProtocol(QuickAblationOpts())
	c2c := f.Series[0] // MOSI, MSI, MESI
	if c2c.Y[1] >= c2c.Y[0] {
		t.Fatalf("MSI C2C ratio (%v) not below MOSI's (%v)", c2c.Y[1], c2c.Y[0])
	}
}

// TestGeometrySweeps: associativity relieves conflict misses (ECperf's big
// instruction footprint most of all); larger blocks exploit the workloads'
// spatial locality.
func TestGeometrySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickSweepOpts()
	assoc := RunGeometrySweeps(o, SweepAssoc, 256<<10)
	for _, r := range assoc.Results {
		first := r.ICurve[0].MissesPer1000
		last := r.ICurve[len(r.ICurve)-1].MissesPer1000
		if last > first {
			t.Fatalf("%s: I-miss rose with associativity (%v -> %v)", r.Label, first, last)
		}
	}
	block := RunGeometrySweeps(o, SweepBlock, 256<<10)
	for _, r := range block.Results {
		first := r.ICurve[0].MissesPer1000
		last := r.ICurve[len(r.ICurve)-1].MissesPer1000
		if last > first {
			t.Fatalf("%s: sequential code should fetch fewer larger blocks (%v -> %v)", r.Label, first, last)
		}
	}
}

// TestResponseTimeHistograms: every BBop type gets a latency distribution,
// and p90 >= p50 (ECperf's spec constrains the 90th percentile, §2.2).
func TestResponseTimeHistograms(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sys := BuildSystem(SystemParams{Kind: ECperf, Processors: 4, Seed: 5})
	sys.Engine.Run(4_000_000)
	sys.Engine.ResetStats()
	sys.Engine.Run(16_000_000)
	res := sys.Engine.Results()
	if len(res.LatencyByTag) < 5 {
		t.Fatalf("latency histograms for only %d op types", len(res.LatencyByTag))
	}
	for tag, h := range res.LatencyByTag {
		if h.Count() == 0 {
			t.Fatalf("%s: empty histogram", tag)
		}
		if h.Quantile(0.9) < h.Quantile(0.5) {
			t.Fatalf("%s: p90 < p50", tag)
		}
		if h.Mean() <= 0 {
			t.Fatalf("%s: nonpositive mean latency", tag)
		}
	}
}

// TestRelatedWorkKernelOrdering: the §6 comparison — VolanoMark's
// thread-per-connection fan-out is kernel-dominated, ECperf's pooled
// middle tier much less so, SPECjbb's single process barely at all.
func TestRelatedWorkKernelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := RelatedWorkKernelTime(QuickAblationOpts())
	y := f.Series[0].Y // SPECjbb, ECperf, VolanoMark
	if !(y[2] > y[1] && y[1] > y[0]) {
		t.Fatalf("kernel-time ordering broken: jbb=%v ec=%v volano=%v", y[0], y[1], y[2])
	}
	if y[2] < 2*y[1] {
		t.Fatalf("VolanoMark (%v) not ≫ ECperf (%v)", y[2], y[1])
	}
}

func TestVolanoSystemBuilds(t *testing.T) {
	sys := BuildSystem(SystemParams{Kind: VolanoMark, Processors: 4, Seed: 1})
	if sys.Vol == nil {
		t.Fatal("volano workload missing")
	}
	sys.Engine.Run(2_000_000)
	if sys.Engine.Results().BusinessOps == 0 {
		t.Fatal("no messages processed")
	}
}

// TestCoSimAgreesWithModel: the queueing-model database (internal/db) and
// the fully co-simulated database machine must agree on middle-tier
// throughput within a modest margin — this validates the abstraction every
// other experiment rests on — and the database machine must be far from
// saturated (§2.2).
func TestCoSimAgreesWithModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := RunCoSim(4, 1, 4_000_000, 12_000_000)
	if r.CoSimThroughput <= 0 || r.ModelThroughput <= 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	ratio := r.CoSimThroughput / r.ModelThroughput
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("co-sim/model throughput ratio %.2f outside [0.75, 1.25]", ratio)
	}
	if r.DBBusyFrac > 0.6 {
		t.Fatalf("database machine %v busy: the paper says it is not a bottleneck", r.DBBusyFrac)
	}
	if r.DBQueries == 0 {
		t.Fatal("no queries reached the database machine")
	}
}
