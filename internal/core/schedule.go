package core

import (
	"runtime"
	"sync"
)

// Scheduler is the figure runner's global work queue. Every requested
// figure submits its independent simulation cells (one cell = one
// deterministic single-threaded run: a (workload, processor-count, seed)
// scaling point, one uniprocessor sweep configuration, one shared-cache
// seed, one memory-scaling scale factor, one communication profile) into
// a single pool, so host cores stay busy across figure boundaries instead
// of draining at each per-figure barrier.
//
// Determinism: a cell's result depends only on its own parameters — each
// cell builds its own System from its own seed-derived PCG streams — and
// every cell writes into a slot fixed at submission time. Rendering reads
// the slots only after Wait, in serial figure order, so stdout is
// byte-identical to a serial run no matter how cells interleave.
//
// A Scheduler built with NewScheduler(1) (the -serial escape hatch) runs
// each cell inline at Submit time, in submission order — exactly the old
// one-sweep-at-a-time behavior.
type Scheduler struct {
	serial bool

	mu      sync.Mutex
	queue   []func()
	workers int
	max     int
	wg      sync.WaitGroup
}

// NewScheduler returns a scheduler running at most workers cells
// concurrently. workers <= 1 yields the serial (inline) scheduler.
func NewScheduler(workers int) *Scheduler {
	if workers <= 1 {
		return &Scheduler{serial: true}
	}
	return &Scheduler{max: workers}
}

// DefaultWorkers is the scheduler width cmd/figures uses: one worker per
// host core.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Submit enqueues one cell. Serial schedulers run it before returning;
// concurrent ones start a worker if the pool is not yet at width.
func (s *Scheduler) Submit(fn func()) {
	if s.serial {
		fn()
		return
	}
	s.mu.Lock()
	s.queue = append(s.queue, fn)
	spawn := s.workers < s.max
	if spawn {
		s.workers++
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if spawn {
		go s.work()
	}
}

func (s *Scheduler) work() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.workers--
			s.mu.Unlock()
			return
		}
		fn := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		fn()
	}
}

// Wait blocks until every submitted cell has finished. More cells may be
// submitted afterwards; Wait can be called again.
func (s *Scheduler) Wait() {
	if s.serial {
		return
	}
	s.wg.Wait()
}
