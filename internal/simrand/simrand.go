// Package simrand provides a small, deterministic pseudo-random toolkit for
// the simulator. Every stochastic decision in the simulation draws from a
// *Rand seeded explicitly, so a whole experiment is reproducible from a
// single seed and independent of the Go runtime's math/rand evolution.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014): a 64-bit LCG state with
// an output permutation. It is fast, has a 2^63 choice of disjoint streams,
// and passes the statistical tests that matter at simulation scale.
package simrand

import "math"

const (
	pcgMultiplier = 6364136223846793005
	pcgIncrement  = 1442695040888963407
)

// Rand is a deterministic PCG-XSH-RR 64/32 generator. The zero value is not
// valid; construct with New or Derive.
type Rand struct {
	state uint64
	inc   uint64
}

// New returns a generator for the given seed on the default stream.
func New(seed uint64) *Rand {
	return NewStream(seed, 0)
}

// NewStream returns a generator for the given seed on stream `stream`.
// Different streams with the same seed produce statistically independent
// sequences; the simulator gives every thread/component its own stream so
// that adding a consumer never perturbs another consumer's draws.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{inc: (stream << 1) | 1}
	r.state = r.inc + seed
	r.Uint32()
	return r
}

// Derive returns a new independent generator whose stream is derived from
// this generator's next output and the given salt. It is the standard way to
// fan out per-entity RNGs (per thread, per warehouse, per component).
func (r *Rand) Derive(salt uint64) *Rand {
	return NewStream(uint64(r.Uint32())<<32|uint64(r.Uint32()), salt^0x9e3779b97f4a7c15)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is negligible at simulation scale
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// NormalPair returns two independent standard normal deviates (Box-Muller).
func (r *Rand) NormalPair() (float64, float64) {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	return rad * math.Cos(2*math.Pi*u2), rad * math.Sin(2*math.Pi*u2)
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	n, _ := r.NormalPair()
	return mean + stddev*n
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws from a bounded Zipf distribution over [0, n) with exponent s.
// Small ranks are the most popular. The sampler precomputes the inverse CDF
// in O(n) once, then samples in O(log n); it is the workhorse behind skewed
// object popularity (hot customers, hot cache lines, hot functions).
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i)
	r   *Rand
}

// NewZipf builds a Zipf sampler over n items with exponent s (s > 0; s≈1 is
// classic Zipf; larger s is more skewed). It panics if n <= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// N returns the number of items in the sampler's domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws a rank in [0, n), rank 0 being the most popular.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mix64 is SplitMix64's finalizer: a cheap stateless hash used to turn
// structured identifiers (thread ID, op ID) into well-mixed seeds.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
