package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := New(99).Derive(5)
	b := New(99).Derive(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("exponential mean %v too far from 10", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean %v too far from 5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev %v too far from 2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf not monotone-ish: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Rank 0 should hold roughly 1/H(1000) ~ 13% of the mass for s=1.
	frac := float64(counts[0]) / n
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("Zipf rank-0 mass %v outside [0.10,0.17]", frac)
	}
}

func TestZipfDomain(t *testing.T) {
	r := New(10)
	z := NewZipf(r, 5, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 5 {
			t.Fatalf("Zipf out of domain: %d", v)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(11)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickZipfInRange(t *testing.T) {
	r := New(12)
	f := func(n uint8, s uint8) bool {
		domain := int(n%100) + 1
		exp := 0.5 + float64(s%20)/10.0
		z := NewZipf(r, domain, exp)
		v := z.Next()
		return v >= 0 && v < domain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
