package appserver

import (
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Caller is the application server's resilient remote-call path: per-request
// timeouts, capped exponential backoff with jittered retries, a per-backend
// circuit breaker, and admission-control load shedding, all parameterized by
// a fault.Policy and driven by the run's fault injector.
//
// It operates at record time, like everything in the functional layer: the
// injector decides from its schedule whether a call at the current simulated
// time succeeds, times out (partition/loss), or fast-fails (crash), and the
// Caller records the consequence into the operation trace — the real network
// round trip on success, or a Think delay of the timeout/backoff on failure.
// The playback engine then charges those delays in simulated time. Breaker
// and shedder state advance on the same clock (the operation's dispatch
// time plus the delays recorded so far), keeping every decision a pure
// function of (seed, schedule), so faulted runs replay exactly.
//
// A nil *Caller is valid and transparent: calls go straight to the network
// stack and admission always succeeds.
type Caller struct {
	pol      fault.Policy
	inj      *fault.Injector
	rng      *simrand.Rand
	breakers map[uint8]*fault.Breaker
	shed     *fault.Shedder

	// Stats counts resilience activity since construction.
	Stats CallStats
}

// CallStats are the Caller's counters, exported as fault.* metrics.
type CallStats struct {
	Calls          uint64 // logical calls requested
	Attempts       uint64 // network attempts (≥ Calls - breaker rejects)
	Retries        uint64 // attempts after the first
	Timeouts       uint64 // attempts lost to a partition or packet loss
	FastFails      uint64 // attempts refused by a crashed peer
	BreakerRejects uint64 // calls rejected locally by an open breaker
	Failures       uint64 // logical calls that exhausted every attempt
	Successes      uint64 // logical calls that completed
}

// NewCaller builds the resilient call path. pol must validate; inj may be
// nil (no injected faults — the policy machinery still runs). rng must be
// a stream derived from the run seed.
func NewCaller(pol fault.Policy, inj *fault.Injector, rng *simrand.Rand) (*Caller, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Caller{
		pol:      pol,
		inj:      inj,
		rng:      rng,
		breakers: make(map[uint8]*fault.Breaker),
		shed:     fault.NewShedder(&pol),
	}, nil
}

// Policy returns the caller's policy.
func (c *Caller) Policy() fault.Policy { return c.pol }

func (c *Caller) breaker(peer uint8) *fault.Breaker {
	b, ok := c.breakers[peer]
	if !ok {
		b = fault.NewBreaker(&c.pol)
		c.breakers[peer] = b
	}
	return b
}

// BreakerStats sums breaker activity across backends.
func (c *Caller) BreakerStats() fault.BreakerStats {
	var s fault.BreakerStats
	if c == nil {
		return s
	}
	for _, b := range c.breakers {
		s.Opens += b.Stats.Opens
		s.Rejects += b.Stats.Rejects
		s.Probes += b.Stats.Probes
	}
	return s
}

// ShedCount returns how many requests admission control has shed.
func (c *Caller) ShedCount() uint64 {
	if c == nil {
		return 0
	}
	return c.shed.Shed
}

// Admit decides whether to accept a request arriving at simulated time now.
// A false return means the request should be answered with a cheap
// rejection instead of being processed.
func (c *Caller) Admit(now uint64) bool {
	if c == nil {
		return true
	}
	if c.shed.Admit(now, c.rng) {
		return true
	}
	c.inj.Instant("resilience.shed", now)
	return false
}

// Call records one resilient logical call to peer on ns: up to
// MaxAttempts tries separated by jittered exponential backoff, guarded by
// the peer's circuit breaker. It returns false when the call failed (the
// operation should take its error path) and the simulated cycles of delay
// it recorded, so the workload can keep its record-time clock aligned.
func (c *Caller) Call(rec *trace.Recorder, ns *netsim.NetStack, peer uint8, reqBytes, respBytes uint32, now uint64) (ok bool, delay uint64) {
	if c == nil {
		ns.Call(rec, peer, reqBytes, respBytes)
		return true, 0
	}
	c.Stats.Calls++
	br := c.breaker(peer)
	t := now
	for attempt := 1; ; attempt++ {
		if !br.Allow(t) {
			// Local rejection: the breaker answers without touching the
			// network. Nearly free — one think tick models the error path.
			c.Stats.BreakerRejects++
			rec.Think(c.pol.FastFailCycles)
			t += uint64(c.pol.FastFailCycles)
			c.shed.Observe(t, false)
			break
		}
		c.Stats.Attempts++
		if attempt > 1 {
			c.Stats.Retries++
		}
		opensBefore := br.Stats.Opens
		switch c.inj.CallOutcome(peer, t) {
		case fault.OK:
			ns.Call(rec, peer, reqBytes, respBytes)
			br.Record(t, true)
			c.shed.Observe(t, true)
			c.Stats.Successes++
			return true, t - now
		case fault.FastFail:
			// Connection refused by a crashed peer: fast, cheap failure.
			c.Stats.FastFails++
			rec.Think(c.pol.FastFailCycles)
			t += uint64(c.pol.FastFailCycles)
			c.inj.Instant("resilience.fastfail", t, obs.Arg{Key: "peer", Val: uint64(peer)})
		case fault.Lost:
			// The request (or its reply) vanished: the caller burns the
			// full timeout discovering that.
			c.Stats.Timeouts++
			rec.Think(c.pol.TimeoutCycles)
			t += uint64(c.pol.TimeoutCycles)
			c.inj.Instant("resilience.timeout", t, obs.Arg{Key: "peer", Val: uint64(peer)})
		}
		br.Record(t, false)
		c.shed.Observe(t, false)
		if br.Stats.Opens > opensBefore {
			c.inj.Instant("resilience.breaker_open", t, obs.Arg{Key: "peer", Val: uint64(peer)})
		}
		if attempt >= c.pol.MaxAttempts {
			break
		}
		d := c.pol.Backoff(attempt, c.rng)
		rec.Think(d)
		t += uint64(d)
	}
	c.Stats.Failures++
	return false, t - now
}
