package appserver

import (
	"testing"

	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/trace"
)

func setup(t *testing.T) (*jvm.Heap, *trace.Recorder) {
	t.Helper()
	cfg := jvm.DefaultConfig()
	cfg.HeapBytes = 8 << 20
	cfg.NewGenBytes = 2 << 20
	h, err := jvm.NewHeap(mem.NewAddrSpace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, trace.NewRecorder("setup", false)
}

func TestCacheMissThenHit(t *testing.T) {
	h, rec := setup(t)
	c := NewObjectCache(h, rec, CacheConfig{Entries: 8, TTLCycles: 1000})
	if _, ok := c.Get(rec, 5, 0); ok {
		t.Fatal("empty cache hit")
	}
	bean := h.Alloc(rec, 0, 128, 0)
	c.Put(rec, 5, bean, 0)
	got, ok := c.Get(rec, 5, 500)
	if !ok || got != bean {
		t.Fatal("fresh entry missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	h, rec := setup(t)
	c := NewObjectCache(h, rec, CacheConfig{Entries: 8, TTLCycles: 1000})
	bean := h.Alloc(rec, 0, 128, 0)
	c.Put(rec, 5, bean, 0)
	if _, ok := c.Get(rec, 5, 2000); ok {
		t.Fatal("stale entry hit")
	}
	if c.Expirations != 1 {
		t.Fatalf("expirations = %d", c.Expirations)
	}
	if c.Len() != 0 {
		t.Fatal("stale entry not dropped")
	}
}

// TestHitRateRisesWithRequestRate is the §4.4 mechanism: the same key
// stream, issued at a higher rate relative to the TTL, hits more. This is
// what makes instructions-per-BBop fall as ECperf scales up.
func TestHitRateRisesWithRequestRate(t *testing.T) {
	run := func(gapCycles uint64) float64 {
		h, rec := setup(t)
		c := NewObjectCache(h, rec, CacheConfig{Entries: 64, TTLCycles: 10_000})
		now := uint64(0)
		for i := 0; i < 500; i++ {
			key := uint64(i % 16)
			if _, ok := c.Get(rec, key, now); !ok {
				bean := h.Alloc(rec, 0, 128, 0)
				c.Put(rec, key, bean, now)
			}
			now += gapCycles
		}
		return c.HitRatio()
	}
	slow := run(5_000) // low throughput: mostly expired
	fast := run(200)   // high throughput: mostly fresh
	if fast <= slow+0.2 {
		t.Fatalf("hit rate did not rise with rate: slow=%v fast=%v", slow, fast)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	h, rec := setup(t)
	c := NewObjectCache(h, rec, CacheConfig{Entries: 2, TTLCycles: 1 << 40})
	b := func() jvm.ObjectID { return h.Alloc(rec, 0, 64, 0) }
	c.Put(rec, 1, b(), 0)
	c.Put(rec, 2, b(), 1)
	c.Get(rec, 1, 2)      // 1 is now MRU
	c.Put(rec, 3, b(), 3) // evicts 2
	if _, ok := c.Get(rec, 2, 4); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := c.Get(rec, 1, 4); !ok {
		t.Fatal("MRU entry evicted")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestCachedBeansSurviveGC(t *testing.T) {
	h, rec := setup(t)
	c := NewObjectCache(h, rec, CacheConfig{Entries: 8, TTLCycles: 1 << 40})
	bean := h.Alloc(rec, 0, 128, 0)
	c.Put(rec, 7, bean, 0)
	h.MinorGC(rec)
	if !h.IsLive(bean) {
		t.Fatal("cached bean collected: cache must root its entries")
	}
	got, ok := c.Get(rec, 7, 10)
	if !ok || got != bean {
		t.Fatal("bean lost after GC")
	}
	// Evicted beans become garbage.
	c2 := NewObjectCache(h, rec, CacheConfig{Entries: 1, TTLCycles: 1 << 40})
	a := h.Alloc(rec, 0, 128, 0)
	c2.Put(rec, 1, a, 0)
	c2.Put(rec, 2, h.Alloc(rec, 0, 128, 0), 1) // evicts a
	h.ClearStack(0)
	h.MinorGC(rec)
	if h.IsLive(a) {
		t.Fatal("evicted bean still rooted")
	}
}

func TestCacheRecordsLockTraffic(t *testing.T) {
	h, rec := setup(t)
	c := NewObjectCache(h, rec, CacheConfig{Entries: 8, TTLCycles: 1000})
	probe := trace.NewRecorder("op", true)
	c.Get(probe, 1, 0)
	op := probe.Finish()
	var acq, rel bool
	for _, it := range op.Items {
		if it.Kind == trace.KindLockAcq {
			acq = true
		}
		if it.Kind == trace.KindLockRel {
			rel = true
		}
	}
	if !acq || !rel {
		t.Fatal("cache lookup did not record its lock")
	}
}

func TestConnPoolRecordsSemaphore(t *testing.T) {
	h, rec := setup(t)
	p := NewConnPool(h, rec, 3)
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	r := trace.NewRecorder("op", false)
	idx := p.Acquire(r)
	p.Release(r, idx)
	op := r.Finish()
	var acq, rel bool
	for _, it := range op.Items {
		switch it.Kind {
		case trace.KindSemAcq:
			acq = true
			if it.Aux != 3 {
				t.Fatalf("semaphore capacity = %d", it.Aux)
			}
		case trace.KindSemRel:
			rel = true
		}
	}
	if !acq || !rel {
		t.Fatal("pool did not record semaphore operations")
	}
	if p.Acquires != 1 {
		t.Fatalf("acquires = %d", p.Acquires)
	}
	// Distinct pools use distinct semaphores.
	p2 := NewConnPool(h, rec, 2)
	if p2.semID == p.semID {
		t.Fatal("pools share a semaphore ID")
	}
}

func TestDispatcher(t *testing.T) {
	h, rec := setup(t)
	d := NewDispatcher(h, rec)
	r := trace.NewRecorder("op", false)
	d.Dispatch(r)
	op := r.Finish()
	if len(op.Items) < 4 { // acq, cas, read, write, cas, rel
		t.Fatalf("dispatch recorded %d items", len(op.Items))
	}
	if d.Dispatches != 1 {
		t.Fatalf("dispatches = %d", d.Dispatches)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	h, rec := setup(t)
	for name, fn := range map[string]func(){
		"cache": func() { NewObjectCache(h, rec, CacheConfig{Entries: 0}) },
		"pool":  func() { NewConnPool(h, rec, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
