// Package appserver models the commercial Java application server the
// paper ran ECperf on (unnamed there for licensing reasons). It provides
// the three performance features the paper calls out in §2.5 — thread
// pooling, database connection pooling, and object-level caching — as
// functional-layer constructs that record real memory behavior into
// operation traces:
//
//   - The object-level cache keeps entity beans (heap objects) alive and
//     shared between worker threads. A hit saves a database round trip and
//     its path length, which is the paper's explanation (§4.4) for ECperf's
//     super-linear scaling: "constructive interference in the object cache
//     allows one thread to re-use objects fetched by another thread."
//     Entries expire after a TTL (transaction-option caching), so the hit
//     rate genuinely rises with aggregate throughput.
//   - The connection pool is a fixed set of connection monitors; when all
//     are held, threads block — the shared-resource contention the paper
//     blames for idle time growth (§4.1).
//   - The dispatch queue is one hot monitor every request crosses.
package appserver

import (
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// CacheConfig sizes the object-level (entity bean) cache.
type CacheConfig struct {
	// Entries is the cache capacity in beans.
	Entries int
	// TTLCycles is how long a cached bean stays valid. Transaction-option
	// caching requires revalidation; the TTL is its time constant.
	TTLCycles uint64
}

// cacheEntry is the Go-side index of one cached bean.
type cacheEntry struct {
	key        uint64
	obj        jvm.ObjectID
	loadedAt   uint64
	prev, next *cacheEntry // LRU list
}

// ObjectCache is the shared entity-bean cache. All methods record the
// memory behavior of the lookup (lock, hash-slot probe, bean access) into
// the caller's recorder.
type ObjectCache struct {
	heap    *jvm.Heap
	cfg     CacheConfig
	mon     *jvm.Monitor
	table   jvm.ObjectID // permanent hash-table object (slot array)
	slots   int
	index   map[uint64]*cacheEntry
	lruHead *cacheEntry // most recent
	lruTail *cacheEntry // least recent

	Hits, Misses, Expirations, Evictions uint64
}

// NewObjectCache builds the cache, allocating its table and monitor in the
// heap's permanent region.
func NewObjectCache(heap *jvm.Heap, rec *trace.Recorder, cfg CacheConfig) *ObjectCache {
	if cfg.Entries <= 0 {
		panic("appserver: cache needs positive capacity")
	}
	slots := 1
	for slots < cfg.Entries*2 {
		slots <<= 1
	}
	return &ObjectCache{
		heap:  heap,
		cfg:   cfg,
		mon:   heap.NewSpinMonitor(rec), // briefly held, very hot
		table: heap.AllocPermanent(rec, uint32(8*slots+jvm.HeaderBytes), 0),
		slots: slots,
		index: make(map[uint64]*cacheEntry),
	}
}

func (c *ObjectCache) slotAddr(key uint64) mem.Addr {
	slot := simrand.Mix64(key) & uint64(c.slots-1)
	return c.heap.Addr(c.table) + jvm.HeaderBytes + mem.Addr(slot*8)
}

// lruUnlink removes e from the LRU list.
func (c *ObjectCache) lruUnlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruPush makes e most recently used.
func (c *ObjectCache) lruPush(e *cacheEntry) {
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

// Get looks up a bean under the cache lock. On a hit it records the bean
// read and returns (bean, true); on a miss or expiry it returns (_, false)
// and the caller is expected to load the bean and Put it.
func (c *ObjectCache) Get(rec *trace.Recorder, key uint64, now uint64) (jvm.ObjectID, bool) {
	c.mon.Lock(rec)
	rec.Read(c.slotAddr(key), 8)
	e, ok := c.index[key]
	if ok && now-e.loadedAt <= c.cfg.TTLCycles {
		c.lruUnlink(e)
		c.lruPush(e)
		c.Hits++
		obj := e.obj
		c.mon.Unlock(rec)
		c.heap.ReadObject(rec, obj)
		return obj, true
	}
	if ok {
		// Present but stale: drop it; the caller reloads.
		c.removeLocked(e)
		c.Expirations++
	}
	c.Misses++
	c.mon.Unlock(rec)
	return jvm.NilObject, false
}

// Put inserts a freshly loaded bean, evicting the LRU entry if full. The
// bean is rooted while cached (the container holds it).
func (c *ObjectCache) Put(rec *trace.Recorder, key uint64, obj jvm.ObjectID, now uint64) {
	c.mon.Lock(rec)
	if e, ok := c.index[key]; ok {
		c.removeLocked(e)
	}
	if len(c.index) >= c.cfg.Entries {
		c.removeLocked(c.lruTail)
		c.Evictions++
	}
	e := &cacheEntry{key: key, obj: obj, loadedAt: now}
	c.index[key] = e
	c.lruPush(e)
	c.heap.AddRoot(obj)
	rec.Write(c.slotAddr(key), 8)
	c.mon.Unlock(rec)
}

// removeLocked drops an entry and unroots its bean (it becomes garbage
// unless the workload still references it).
func (c *ObjectCache) removeLocked(e *cacheEntry) {
	delete(c.index, e.key)
	c.lruUnlink(e)
	c.heap.RemoveRoot(e.obj)
}

// Len returns the number of cached beans.
func (c *ObjectCache) Len() int { return len(c.index) }

// HitRatio returns hits/(hits+misses), or 0 when unused.
func (c *ObjectCache) HitRatio() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// ConnPool is the fixed database connection pool: a counting semaphore
// (the timing layer blocks threads while all connections are checked out)
// plus one shared bookkeeping line every checkout updates — the free-list
// head a real pool would CAS.
type ConnPool struct {
	semID    uint64
	capacity int
	book     mem.Addr
	Acquires uint64
}

// connPoolSemBase namespaces pool semaphore IDs.
const connPoolSemBase = 1 << 40

// NewConnPool builds a pool of n connections.
func NewConnPool(heap *jvm.Heap, rec *trace.Recorder, n int) *ConnPool {
	if n <= 0 {
		panic("appserver: connection pool needs at least one connection")
	}
	book := heap.AllocPermanent(rec, mem.LineBytes, 0)
	// The bookkeeping line's address doubles as the semaphore identity: it is
	// unique within the system and derived only from simulated state, so two
	// runs at the same seed name their semaphores identically. (A process-wide
	// counter here would leak run ordering into trace events.)
	return &ConnPool{
		semID:    connPoolSemBase + uint64(heap.Addr(book)),
		capacity: n,
		book:     heap.Addr(book),
	}
}

// Size returns the pool capacity.
func (p *ConnPool) Size() int { return p.capacity }

// Acquire records checking out a connection; the return value feeds the
// matching Release.
func (p *ConnPool) Acquire(rec *trace.Recorder) int {
	rec.SemAcquire(p.semID, uint32(p.capacity))
	rec.Write(p.book, 8)
	p.Acquires++
	return 0
}

// Release records returning a connection.
func (p *ConnPool) Release(rec *trace.Recorder, i int) {
	rec.Write(p.book, 8)
	rec.SemRelease(p.semID)
}

// Dispatcher is the request dispatch queue: one monitor every request
// crosses briefly, plus a queue-depth field the dispatcher updates.
type Dispatcher struct {
	mon        *jvm.Monitor
	state      jvm.ObjectID
	heap       *jvm.Heap
	Dispatches uint64
}

// NewDispatcher allocates the dispatch monitor and its state object.
func NewDispatcher(heap *jvm.Heap, rec *trace.Recorder) *Dispatcher {
	return &Dispatcher{
		mon:   heap.NewSpinMonitor(rec), // briefly held, very hot
		state: heap.AllocPermanent(rec, 64, 0),
		heap:  heap,
	}
}

// Dispatch records one pass through the queue lock.
func (d *Dispatcher) Dispatch(rec *trace.Recorder) {
	d.mon.Lock(rec)
	d.heap.ReadField(rec, d.state, 0)
	d.heap.WriteField(rec, d.state, 0)
	d.mon.Unlock(rec)
	d.Dispatches++
}
