package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Inspector serves a live, read-only view of an in-flight run over HTTP:
// the metrics-registry snapshot, the memory-attribution report, and a small
// status document. It exists for the long runs — a 90-warehouse jbbsim
// point can take minutes of wall time, and "is it making progress, and what
// is it doing to the memory system right now" should not require waiting
// for the final artifacts.
//
// The simulator is single-threaded per run and must stay deterministic, so
// HTTP handlers never touch live simulator state. Instead the sim thread
// calls Publish at slice boundaries, which renders the registry and
// attribution tables into byte snapshots under a mutex; handlers serve the
// last published bytes. Publishing is wall-time throttled so the sim thread
// pays the rendering cost at most a few times per second regardless of
// slice rate, and wall time never feeds back into simulation state.
//
// A nil *Inspector is valid and disabled.
type Inspector struct {
	label string
	hb    *Heartbeat
	start time.Time
	ln    net.Listener
	srv   *http.Server

	mu       sync.Mutex
	metrics  []byte
	attr     []byte
	latency  []byte
	overload []byte
	flight   []byte
	dumpReq  bool
	note     string
	pubs     uint64
	lastPub  time.Time
}

// publishInterval is the minimum wall time between non-forced Publish
// renders. Handlers are unaffected; they only ever read published bytes.
const publishInterval = 250 * time.Millisecond

// StartInspector listens on addr (":0" picks a free port) and serves until
// Close. label names the run in /status; hb, when non-nil, contributes
// run/cycle progress counters (its fields are atomics, so reading them from
// handler goroutines is race-free).
func StartInspector(addr, label string, hb *Heartbeat) (*Inspector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	in := &Inspector{label: label, hb: hb, start: time.Now(), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", in.handleIndex)
	mux.HandleFunc("/metrics", in.handleMetrics)
	mux.HandleFunc("/attr", in.handleAttr)
	mux.HandleFunc("/latency", in.handleLatency)
	mux.HandleFunc("/overload", in.handleOverload)
	mux.HandleFunc("/flight", in.handleFlight)
	mux.HandleFunc("/flight/dump", in.handleFlightDump)
	mux.HandleFunc("/status", in.handleStatus)
	in.srv = &http.Server{Handler: mux}
	go in.srv.Serve(ln)
	return in, nil
}

// Addr returns the bound listen address (useful with ":0").
func (in *Inspector) Addr() string {
	if in == nil || in.ln == nil {
		return ""
	}
	return in.ln.Addr().String()
}

// Close stops serving. Published snapshots are dropped with it.
func (in *Inspector) Close() error {
	if in == nil || in.srv == nil {
		return nil
	}
	return in.srv.Close()
}

// Publish renders ob's registry snapshot and attribution report and makes
// them the live view. Call it from the simulation thread at slice
// boundaries; unless force is set, calls within publishInterval of the last
// render return immediately so the hot loop is not billed for rendering.
// Use force for the final publish so the end-of-run state is visible.
func (in *Inspector) Publish(ob *Observer, topN int, force bool) {
	if in == nil || ob == nil {
		return
	}
	now := time.Now()
	in.mu.Lock()
	if !force && now.Sub(in.lastPub) < publishInterval {
		in.mu.Unlock()
		return
	}
	in.lastPub = now
	in.mu.Unlock()

	// Render outside the lock: handlers keep serving the previous snapshot
	// while the new one is built.
	var metrics []byte
	if ob.Registry != nil {
		var sb strings.Builder
		ob.Registry.Snapshot().WriteTo(&sb)
		metrics = []byte(sb.String())
	}
	var attrJSON []byte
	if ob.Attr != nil {
		if buf, err := json.MarshalIndent(ob.Attr.BuildReport(topN), "", "  "); err == nil {
			attrJSON = append(buf, '\n')
		}
	}
	var latJSON []byte
	if ob.LatencyReport != nil {
		latJSON = ob.LatencyReport()
	}

	in.mu.Lock()
	in.metrics = metrics
	in.attr = attrJSON
	in.latency = latJSON
	in.pubs++
	in.mu.Unlock()
}

// SetOverload publishes an open-system overload snapshot (JSON: per-node
// queue depth and brown-out level, per-shard AIMD limiter state) as the
// /overload page. The caller renders the bytes on its simulation thread at
// tick boundaries; nil clears the page.
func (in *Inspector) SetOverload(buf []byte) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.overload = buf
	in.mu.Unlock()
}

// SetFlight publishes the flight recorder's status document (JSON: ring
// occupancy, snapshot cadence, dumps written so far) as the /flight page.
// The recorder renders the bytes on the simulation thread; nil clears.
func (in *Inspector) SetFlight(buf []byte) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.flight = buf
	in.mu.Unlock()
}

// TakeDumpRequest consumes a pending /flight/dump request. The simulation
// thread polls it at slice boundaries, so the dump itself — like every
// other state read — happens on the deterministic thread, never in an HTTP
// handler.
func (in *Inspector) TakeDumpRequest() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	req := in.dumpReq
	in.dumpReq = false
	in.mu.Unlock()
	return req
}

// SetNote attaches a free-form line to /status — the drivers use it for
// watchdog reports and phase announcements.
func (in *Inspector) SetNote(note string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.note = note
	in.mu.Unlock()
}

func (in *Inspector) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s inspector\n\n/metrics  metrics-registry snapshot (text)\n/attr     memory-attribution report (JSON)\n/latency  request-latency/SLO report (JSON)\n/overload open-system overload state: queues, limiters, shed counters (JSON)\n/flight   flight-recorder status: ring occupancy, dumps written (JSON)\n/flight/dump  request a post-mortem dump at the next slice boundary\n/status   run status (JSON)\n", in.label)
}

func (in *Inspector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	body := in.metrics
	in.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if body == nil {
		fmt.Fprintln(w, "# no metrics snapshot published yet")
		return
	}
	w.Write(body)
}

func (in *Inspector) handleAttr(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	body := in.attr
	in.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	w.Write(body)
}

func (in *Inspector) handleLatency(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	body := in.latency
	in.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	w.Write(body)
}

func (in *Inspector) handleOverload(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	body := in.overload
	in.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	w.Write(body)
}

func (in *Inspector) handleFlight(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	body := in.flight
	in.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	w.Write(body)
}

func (in *Inspector) handleFlightDump(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	in.dumpReq = true
	in.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "flight dump requested; the bundle is written at the next slice boundary")
}

func (in *Inspector) handleStatus(w http.ResponseWriter, _ *http.Request) {
	in.mu.Lock()
	note := in.note
	pubs := in.pubs
	last := in.lastPub
	latencyLive := in.latency != nil
	overloadLive := in.overload != nil
	flightLive := in.flight != nil
	in.mu.Unlock()

	pages := []string{"/metrics", "/attr", "/status"}
	if latencyLive {
		pages = append(pages, "/latency")
	}
	if overloadLive {
		pages = append(pages, "/overload")
	}
	if flightLive {
		pages = append(pages, "/flight")
	}
	st := map[string]any{
		"label":        in.label,
		"wall_seconds": time.Since(in.start).Seconds(),
		"publishes":    pubs,
		"pages":        pages,
	}
	if !last.IsZero() {
		st["last_publish_age_seconds"] = time.Since(last).Seconds()
	}
	if note != "" {
		st["note"] = note
	}
	if in.hb != nil {
		st["runs"] = in.hb.Runs.Load()
		if in.hb.TotalRuns > 0 {
			st["total_runs"] = in.hb.TotalRuns
		}
		cy := in.hb.SimCycles.Load()
		st["sim_cycles"] = cy
		st["sim_millis"] = float64(cy) / (CyclesPerMicrosecond * 1e3)
	}
	w.Header().Set("Content-Type", "application/json")
	buf, _ := json.MarshalIndent(st, "", "  ")
	w.Write(append(buf, '\n'))
}
