package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs/attr"
)

// Flags bundles the standard observability command-line options so every
// driver command wires them uniformly:
//
//	-trace FILE      Chrome trace_event JSON (Perfetto / chrome://tracing)
//	-metrics FILE    metrics-registry snapshot ("-" = stdout)
//	-profile FILE    folded-stack simulated-cycle profile
//	-attr FILE       memory-event attribution report JSON ("-" = stdout)
//	-attr-exact      track every line instead of sampling (more memory)
//	-attr-top N      rows per hot-line / hot-object table
//	-inspect ADDR    serve live metrics/attribution/status over HTTP
//	-heartbeat DUR   periodic progress line on stderr
//	-latency FILE    request-latency/SLO report JSON ("-" = stdout)
//	-slo SPEC        latency/error objectives, e.g. "p99<=40ms,err<=2%"
//	-latency-interval N  latency time-series bin width in simulated cycles
//	-flight MODE     always-on flight recorder: "on", "off", or a dump dir
//	-flight-events N flight-recorder ring capacity (events)
//	-flight-window N flight-recorder dump window in simulated cycles
type Flags struct {
	Trace           string
	Metrics         string
	Profile         string
	Attr            string
	AttrExact       bool
	AttrTop         int
	Inspect         string
	Heartbeat       time.Duration
	Latency         string
	SLO             string
	LatencyInterval uint64
	Flight          string
	FlightEvents    int
	FlightWindow    uint64
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON file (load in Perfetto or chrome://tracing)")
	fs.StringVar(&f.Metrics, "metrics", "", `write the metrics-registry snapshot to this file ("-" = stdout)`)
	fs.StringVar(&f.Profile, "profile", "", "write a folded-stack simulated-cycle profile (flamegraph.pl / speedscope)")
	fs.StringVar(&f.Attr, "attr", "", `write the memory-event attribution report JSON to this file ("-" = stdout)`)
	fs.BoolVar(&f.AttrExact, "attr-exact", false, "attribute every cache line instead of a deterministic sample (unbounded memory)")
	fs.IntVar(&f.AttrTop, "attr-top", 20, "rows in the attribution hot-line and hot-object tables")
	fs.StringVar(&f.Inspect, "inspect", "", `serve live metrics, attribution, and status over HTTP on this address (e.g. ":8970")`)
	fs.DurationVar(&f.Heartbeat, "heartbeat", 0, "print a progress line every interval (0 = off)")
	fs.StringVar(&f.Latency, "latency", "", `write the request-latency/SLO report JSON to this file ("-" = stdout)`)
	fs.StringVar(&f.SLO, "slo", "", `latency/error objectives per interval, e.g. "p99<=40ms,neworder:p95<=20ms,err<=2%"`)
	fs.Uint64Var(&f.LatencyInterval, "latency-interval", 0, "latency time-series bin width in simulated cycles (0 = default 5M, 20 ms)")
	fs.StringVar(&f.Flight, "flight", "on", `always-on flight recorder: "on" (dump post-mortem bundles to the current directory on triggers), "off", or a dump directory`)
	fs.IntVar(&f.FlightEvents, "flight-events", 0, "flight-recorder ring capacity in events (0 = default 65536)")
	fs.Uint64Var(&f.FlightWindow, "flight-window", 0, "flight-recorder dump window in simulated cycles (0 = default 250M, 1 simulated second)")
}

// StandardFlagNames lists the flag names Register installs. Driver commands
// assert against it in their flag-parity tests, so a new observability flag
// added here fails every driver that forgets to wire it.
func StandardFlagNames() []string {
	return []string{
		"trace", "metrics", "profile", "attr", "attr-exact", "attr-top",
		"inspect", "heartbeat", "latency", "slo", "latency-interval",
		"flight", "flight-events", "flight-window",
	}
}

// FlightEnabled reports whether the flight recorder is armed. It is
// deliberately not part of Enabled(): the recorder is on by default, and
// Enabled() gates expensive extra work (observed figure runs, end-of-run
// artifacts) that an always-on black box must not trigger.
func (f *Flags) FlightEnabled() bool {
	return f.Flight != "off"
}

// FlightDir returns the directory flight-recorder dumps land in.
func (f *Flags) FlightDir() string {
	if f.Flight == "" || f.Flight == "on" || f.Flight == "off" {
		return "."
	}
	return f.Flight
}

// Enabled reports whether any artifact was requested (the heartbeat alone
// does not need an observer).
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics != "" || f.Profile != "" || f.Attr != "" || f.Inspect != "" ||
		f.LatencyEnabled()
}

// LatencyEnabled reports whether request-latency tracking was requested —
// by asking for the report artifact or by declaring objectives.
func (f *Flags) LatencyEnabled() bool {
	return f.Latency != "" || f.SLO != ""
}

// NewObserver builds an observer carrying only the requested parts — an
// artifact that was not asked for keeps its nil (zero-overhead) path. pid
// keeps multiple observers apart on a merged trace timeline.
func (f *Flags) NewObserver(pid int) *Observer {
	ob := &Observer{}
	if f.Trace != "" {
		ob.Tracer = NewTracer(AllComponents())
		ob.Tracer.Pid = pid
	}
	if f.Metrics != "" || f.Inspect != "" {
		ob.Registry = NewRegistry()
	}
	if f.Profile != "" {
		ob.Profiler = NewProfiler()
	}
	if f.Attr != "" || f.Inspect != "" {
		ob.Attr = attr.NewCollector(attr.Options{Exact: f.AttrExact})
	}
	return ob
}

// WriteArtifacts writes every requested artifact from the given observers
// (one per observed run, with labels naming them in metrics output), then a
// run manifest next to each produced file. snaps supplies the metrics
// snapshot per observer; a nil entry falls back to a live registry
// snapshot. The manifest's Outputs field is filled in here.
func (f *Flags) WriteArtifacts(labels []string, observers []*Observer, snaps []*Snapshot, m *Manifest) error {
	var outputs []string

	if f.Trace != "" {
		var trs []*Tracer
		for _, ob := range observers {
			if ob != nil {
				trs = append(trs, ob.Tracer)
			}
		}
		w, err := AtomicCreate(f.Trace, 0o644)
		if err != nil {
			return err
		}
		if err := WriteChromeTrace(w, trs...); err != nil {
			w.Abort()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		outputs = append(outputs, f.Trace)
		// A capped trace is silently truncated otherwise; say so, with the
		// knob that raises the cap.
		for i, tr := range trs {
			if n := tr.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "obs: trace %q run %d dropped %d events past the %d-event cap (SetMaxEvents raises it)\n",
					f.Trace, i, n, tr.MaxEvents())
			}
		}
	}

	if f.Metrics != "" {
		write := func(w io.Writer) error {
			for i, ob := range observers {
				if ob == nil || ob.Registry == nil {
					continue
				}
				snap := ob.Registry.Snapshot()
				if i < len(snaps) && snaps[i] != nil {
					snap = snaps[i]
				}
				if i < len(labels) {
					if _, err := fmt.Fprintf(w, "== %s ==\n", labels[i]); err != nil {
						return err
					}
				}
				if _, err := snap.WriteTo(w); err != nil {
					return err
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			return nil
		}
		if f.Metrics == "-" {
			if err := write(os.Stdout); err != nil {
				return err
			}
		} else {
			w, err := AtomicCreate(f.Metrics, 0o644)
			if err != nil {
				return err
			}
			if err := write(w); err != nil {
				w.Abort()
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			outputs = append(outputs, f.Metrics)
		}
	}

	if f.Profile != "" {
		w, err := AtomicCreate(f.Profile, 0o644)
		if err != nil {
			return err
		}
		for _, ob := range observers {
			if ob == nil {
				continue
			}
			if werr := ob.Profiler.WriteFolded(w); werr != nil {
				w.Abort()
				return werr
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		outputs = append(outputs, f.Profile)
	}

	if f.Attr != "" {
		// One JSON object keyed by run label, so a sweep's reports land in
		// a single machine-readable file.
		reports := make(map[string]*attr.Report)
		for i, ob := range observers {
			if ob == nil || ob.Attr == nil {
				continue
			}
			label := fmt.Sprintf("run%d", i)
			if i < len(labels) && labels[i] != "" {
				label = labels[i]
			}
			reports[label] = ob.Attr.BuildReport(f.AttrTop)
		}
		buf, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if f.Attr == "-" {
			if _, err := os.Stdout.Write(buf); err != nil {
				return err
			}
		} else {
			w, err := AtomicCreate(f.Attr, 0o644)
			if err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				w.Abort()
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			outputs = append(outputs, f.Attr)
		}
	}

	if f.Latency != "" {
		// One JSON object keyed by run label, mirroring the attribution
		// artifact, so sweeps land all latency reports in one file.
		reports := make(map[string]json.RawMessage)
		for i, ob := range observers {
			if ob == nil || ob.LatencyReport == nil {
				continue
			}
			label := fmt.Sprintf("run%d", i)
			if i < len(labels) && labels[i] != "" {
				label = labels[i]
			}
			reports[label] = json.RawMessage(ob.LatencyReport())
		}
		buf, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if f.Latency == "-" {
			if _, err := os.Stdout.Write(buf); err != nil {
				return err
			}
		} else {
			w, err := AtomicCreate(f.Latency, 0o644)
			if err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				w.Abort()
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			outputs = append(outputs, f.Latency)
		}
	}

	if m != nil {
		m.Outputs = outputs
		for _, p := range outputs {
			if err := WriteManifest(p+".manifest.json", *m); err != nil {
				return err
			}
		}
	}
	return nil
}
