package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags bundles the standard observability command-line options so every
// driver command wires them uniformly:
//
//	-trace FILE      Chrome trace_event JSON (Perfetto / chrome://tracing)
//	-metrics FILE    metrics-registry snapshot ("-" = stdout)
//	-profile FILE    folded-stack simulated-cycle profile
//	-heartbeat DUR   periodic progress line on stderr
type Flags struct {
	Trace     string
	Metrics   string
	Profile   string
	Heartbeat time.Duration
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON file (load in Perfetto or chrome://tracing)")
	fs.StringVar(&f.Metrics, "metrics", "", `write the metrics-registry snapshot to this file ("-" = stdout)`)
	fs.StringVar(&f.Profile, "profile", "", "write a folded-stack simulated-cycle profile (flamegraph.pl / speedscope)")
	fs.DurationVar(&f.Heartbeat, "heartbeat", 0, "print a progress line every interval (0 = off)")
}

// Enabled reports whether any artifact was requested (the heartbeat alone
// does not need an observer).
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics != "" || f.Profile != ""
}

// NewObserver builds an observer carrying only the requested parts — an
// artifact that was not asked for keeps its nil (zero-overhead) path. pid
// keeps multiple observers apart on a merged trace timeline.
func (f *Flags) NewObserver(pid int) *Observer {
	ob := &Observer{}
	if f.Trace != "" {
		ob.Tracer = NewTracer(AllComponents())
		ob.Tracer.Pid = pid
	}
	if f.Metrics != "" {
		ob.Registry = NewRegistry()
	}
	if f.Profile != "" {
		ob.Profiler = NewProfiler()
	}
	return ob
}

// WriteArtifacts writes every requested artifact from the given observers
// (one per observed run, with labels naming them in metrics output), then a
// run manifest next to each produced file. snaps supplies the metrics
// snapshot per observer; a nil entry falls back to a live registry
// snapshot. The manifest's Outputs field is filled in here.
func (f *Flags) WriteArtifacts(labels []string, observers []*Observer, snaps []*Snapshot, m *Manifest) error {
	var outputs []string

	if f.Trace != "" {
		var trs []*Tracer
		for _, ob := range observers {
			if ob != nil {
				trs = append(trs, ob.Tracer)
			}
		}
		w, err := AtomicCreate(f.Trace, 0o644)
		if err != nil {
			return err
		}
		if err := WriteChromeTrace(w, trs...); err != nil {
			w.Abort()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		outputs = append(outputs, f.Trace)
	}

	if f.Metrics != "" {
		write := func(w io.Writer) error {
			for i, ob := range observers {
				if ob == nil || ob.Registry == nil {
					continue
				}
				snap := ob.Registry.Snapshot()
				if i < len(snaps) && snaps[i] != nil {
					snap = snaps[i]
				}
				if i < len(labels) {
					if _, err := fmt.Fprintf(w, "== %s ==\n", labels[i]); err != nil {
						return err
					}
				}
				if _, err := snap.WriteTo(w); err != nil {
					return err
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			return nil
		}
		if f.Metrics == "-" {
			if err := write(os.Stdout); err != nil {
				return err
			}
		} else {
			w, err := AtomicCreate(f.Metrics, 0o644)
			if err != nil {
				return err
			}
			if err := write(w); err != nil {
				w.Abort()
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			outputs = append(outputs, f.Metrics)
		}
	}

	if f.Profile != "" {
		w, err := AtomicCreate(f.Profile, 0o644)
		if err != nil {
			return err
		}
		for _, ob := range observers {
			if ob == nil {
				continue
			}
			if werr := ob.Profiler.WriteFolded(w); werr != nil {
				w.Abort()
				return werr
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		outputs = append(outputs, f.Profile)
	}

	if m != nil {
		m.Outputs = outputs
		for _, p := range outputs {
			if err := WriteManifest(p+".manifest.json", *m); err != nil {
				return err
			}
		}
	}
	return nil
}
