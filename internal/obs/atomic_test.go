package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := AtomicWriteFile(path, []byte(`{"a":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1}` {
		t.Fatalf("content %q", got)
	}

	// Overwrite: the new content replaces the old in one step.
	if err := AtomicWriteFile(path, []byte(`{"a":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != `{"a":2}` {
		t.Fatalf("after overwrite: %q", got)
	}

	// No temporary droppings left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

func TestAtomicAbortLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := AtomicCreate(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("abort clobbered the original: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("abort left temp files: %d entries", len(ents))
	}

	// Abort after Close is a no-op and must not remove the published file.
	w2, err := AtomicCreate(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w2.Write([]byte("new"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if err := w2.Close(); err != nil { // double Close is a no-op too
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("post-Close Abort removed the file: %q", got)
	}
}

func TestHeartbeatStopIdempotent(t *testing.T) {
	var buf bytes.Buffer
	h := StartHeartbeat(&buf, "test", time.Hour)
	h.Add(3)
	h.Stop()
	h.Stop() // deferred duplicate on the clean-exit path must not panic
	out := buf.String()
	if !strings.Contains(out, "3 runs") {
		t.Fatalf("final flush missing run count: %q", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("want exactly one final line, got %d: %q", n, out)
	}

	var nilHB *Heartbeat
	nilHB.Stop()
	nilHB.Stop()
}
