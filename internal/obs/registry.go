package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Registry is the unified, hierarchical metrics registry. Components bind
// namespaced metrics ("memsys.l2.miss", "jvm.gc.pause_cycles") as *pull*
// closures over their existing counters: registration costs one closure,
// and the instrumented hot paths keep their plain uint64 increments — the
// registry reads them only when a snapshot is taken. Snapshots subtract
// (Snapshot.Delta) so figure drivers can attribute counts to measurement
// intervals instead of whole runs, the paper's warm-up/measure discipline.
//
// Names use dot-separated segments, coarsest first. Registration order is
// preserved; rendering groups by leading segment.
type Registry struct {
	names   []string
	kinds   map[string]metricKind
	counter map[string]func() uint64
	gauge   map[string]func() float64
	histo   map[string]func() stats.Histogram
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHisto
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:   map[string]metricKind{},
		counter: map[string]func() uint64{},
		gauge:   map[string]func() float64{},
		histo:   map[string]func() stats.Histogram{},
	}
}

func (r *Registry) register(name string, k metricKind) {
	if _, dup := r.kinds[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.kinds[name] = k
	r.names = append(r.names, name)
}

// Counter binds a monotonically non-decreasing count (within a measurement
// interval; ResetStats-style zeroing between intervals is fine because
// snapshots are deltaed against the interval base, not each other).
func (r *Registry) Counter(name string, read func() uint64) {
	if r == nil {
		return
	}
	r.register(name, kindCounter)
	r.counter[name] = read
}

// Gauge binds an instantaneous level (utilization, occupancy, ratio).
func (r *Registry) Gauge(name string, read func() float64) {
	if r == nil {
		return
	}
	r.register(name, kindGauge)
	r.gauge[name] = read
}

// Histogram binds a distribution; read returns a value copy so snapshots
// can subtract bucket-wise.
func (r *Registry) Histogram(name string, read func() stats.Histogram) {
	if r == nil {
		return
	}
	r.register(name, kindHisto)
	r.histo[name] = read
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	return r.names
}

// Snapshot captures every bound metric's current value.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		reg:      r,
		counters: make(map[string]uint64, len(r.counter)),
		gauges:   make(map[string]float64, len(r.gauge)),
		histos:   make(map[string]stats.Histogram, len(r.histo)),
	}
	for n, f := range r.counter {
		s.counters[n] = f()
	}
	for n, f := range r.gauge {
		s.gauges[n] = f()
	}
	for n, f := range r.histo {
		s.histos[n] = f()
	}
	return s
}

// Snapshot is the registry's state at one instant.
type Snapshot struct {
	reg      *Registry
	counters map[string]uint64
	gauges   map[string]float64
	histos   map[string]stats.Histogram
}

// Counter returns a captured counter value.
func (s *Snapshot) Counter(name string) uint64 { return s.counters[name] }

// Gauge returns a captured gauge value.
func (s *Snapshot) Gauge(name string) float64 { return s.gauges[name] }

// Histo returns a captured histogram.
func (s *Snapshot) Histo(name string) stats.Histogram { return s.histos[name] }

// Delta returns this snapshot with the base subtracted: counters and
// histogram buckets subtract (saturating at zero, so a ResetStats between
// base and s still yields usable numbers); gauges keep their later value
// (levels do not difference).
func (s *Snapshot) Delta(base *Snapshot) *Snapshot {
	if base == nil {
		return s
	}
	d := &Snapshot{
		reg:      s.reg,
		counters: make(map[string]uint64, len(s.counters)),
		gauges:   s.gauges,
		histos:   make(map[string]stats.Histogram, len(s.histos)),
	}
	for n, v := range s.counters {
		b := base.counters[n]
		if v >= b {
			d.counters[n] = v - b
		}
	}
	for n, h := range s.histos {
		b := base.histos[n]
		d.histos[n] = h.Sub(&b)
	}
	return d
}

// WriteTo renders the snapshot as aligned text, metrics in registration
// order with a blank line between top-level namespaces.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	prevTop := ""
	for _, n := range s.reg.names {
		if top := topSegment(n); top != prevTop {
			if prevTop != "" {
				b.WriteByte('\n')
			}
			prevTop = top
		}
		switch s.reg.kinds[n] {
		case kindCounter:
			fmt.Fprintf(&b, "%-36s %14d\n", n, s.counters[n])
		case kindGauge:
			fmt.Fprintf(&b, "%-36s %14.4f\n", n, s.gauges[n])
		case kindHisto:
			h := s.histos[n]
			fmt.Fprintf(&b, "%-36s count=%d mean=%.1f p50=%d p90=%d p99=%d\n",
				n, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
	}
	k, err := io.WriteString(w, b.String())
	return int64(k), err
}

// CounterSet flattens the snapshot's counters into a stats.CounterSet (in
// registration order), interoperating with the pre-registry reporting
// paths.
func (s *Snapshot) CounterSet() *stats.CounterSet {
	cs := stats.NewCounterSet()
	for _, n := range s.reg.names {
		if s.reg.kinds[n] == kindCounter {
			cs.Inc(n, s.counters[n])
		}
	}
	return cs
}

func topSegment(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// SortedNames returns the metric names sorted (for tests needing a stable
// view independent of registration order).
func (r *Registry) SortedNames() []string {
	out := append([]string(nil), r.Names()...)
	sort.Strings(out)
	return out
}
