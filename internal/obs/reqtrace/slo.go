package reqtrace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Objective is one service-level objective, evaluated per interval and over
// the whole measurement window.
//
// A latency objective ("p99<=40ms") demands that at most 1-q of the
// interval's requests exceed the threshold; the allowed fraction is the
// error budget, and an interval's burn rate is the ratio of its actual bad
// fraction to that budget (burn <= 1 means the objective held). An error
// objective ("err<=1%") bounds the fraction of requests landing in error
// classes (shed, *.fail) the same way.
type Objective struct {
	// Spec is the flag text the objective was parsed from, echoed in
	// reports.
	Spec string `json:"spec"`
	// Class scopes the objective to one request class; "*" aggregates all
	// non-error classes.
	Class string `json:"class"`
	// Quantile is the latency quantile (0.5, 0.9, 0.95, 0.99, 0.999); 0
	// marks an error-rate objective.
	Quantile float64 `json:"quantile,omitempty"`
	// ThresholdCycles is the latency bound in simulated cycles (latency
	// objectives only).
	ThresholdCycles uint64 `json:"threshold_cycles,omitempty"`
	// Budget is the allowed bad fraction: 1-Quantile for latency
	// objectives, the bound itself for error objectives.
	Budget float64 `json:"budget"`
}

// ParseObjectives parses a -slo flag value: comma-separated objectives of
// the form [class:]pQQ<=BOUND or [class:]err<=P%, e.g.
//
//	p99<=40ms,neworder:p95<=20ms,err<=2%
//
// Latency bounds take units us, ms, s, or cy (raw simulated cycles). The
// class defaults to "*" (all non-error classes together).
func ParseObjectives(spec string) ([]Objective, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		o, err := parseObjective(part)
		if err != nil {
			return nil, fmt.Errorf("slo %q: %w", part, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func parseObjective(s string) (Objective, error) {
	o := Objective{Spec: s, Class: "*"}
	body := s
	if i := strings.LastIndex(s, ":"); i >= 0 {
		o.Class = strings.TrimSpace(s[:i])
		body = s[i+1:]
		if o.Class == "" {
			o.Class = "*"
		}
	}
	var lhs, rhs string
	switch {
	case strings.Contains(body, "<="):
		parts := strings.SplitN(body, "<=", 2)
		lhs, rhs = parts[0], parts[1]
	case strings.Contains(body, "<"):
		parts := strings.SplitN(body, "<", 2)
		lhs, rhs = parts[0], parts[1]
	default:
		return o, fmt.Errorf("missing <= bound")
	}
	lhs = strings.TrimSpace(strings.ToLower(lhs))
	rhs = strings.TrimSpace(strings.ToLower(rhs))

	if lhs == "err" {
		if !strings.HasSuffix(rhs, "%") {
			return o, fmt.Errorf("error objective bound must be a percentage")
		}
		p, err := strconv.ParseFloat(strings.TrimSuffix(rhs, "%"), 64)
		if err != nil || p <= 0 || p >= 100 {
			return o, fmt.Errorf("bad error percentage %q", rhs)
		}
		o.Budget = p / 100
		return o, nil
	}

	q, ok := map[string]float64{
		"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99, "p999": 0.999, "p99.9": 0.999,
	}[lhs]
	if !ok {
		return o, fmt.Errorf("unknown quantile %q (want p50/p90/p95/p99/p999 or err)", lhs)
	}
	o.Quantile = q
	o.Budget = 1 - q

	unit := ""
	num := rhs
	for _, u := range []string{"us", "ms", "cy", "s"} {
		if strings.HasSuffix(rhs, u) {
			unit = u
			num = strings.TrimSuffix(rhs, u)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || v <= 0 {
		return o, fmt.Errorf("bad latency bound %q", rhs)
	}
	switch unit {
	case "us":
		o.ThresholdCycles = uint64(v * obs.CyclesPerMicrosecond)
	case "ms", "": // default milliseconds: the natural unit for request SLOs
		o.ThresholdCycles = uint64(v * obs.CyclesPerMicrosecond * 1e3)
	case "s":
		o.ThresholdCycles = uint64(v * obs.CyclesPerMicrosecond * 1e6)
	case "cy":
		o.ThresholdCycles = uint64(v)
	}
	if o.ThresholdCycles == 0 {
		return o, fmt.Errorf("latency bound rounds to zero cycles")
	}
	return o, nil
}

// IntervalBurn is one interval's SLO accounting.
type IntervalBurn struct {
	Index    int     `json:"index"`
	Requests uint64  `json:"requests"`
	Bad      uint64  `json:"bad"`
	BurnRate float64 `json:"burn_rate"`
	Met      bool    `json:"met"`
}

// SLOResult is one objective's verdict over the measurement window.
type SLOResult struct {
	Objective Objective `json:"objective"`
	// Requests/Bad aggregate the whole window; BudgetBurn is the fraction
	// of the window's total error budget consumed (1.0 = exactly spent).
	Requests   uint64  `json:"requests"`
	Bad        uint64  `json:"bad"`
	BudgetBurn float64 `json:"budget_burn"`
	Met        bool    `json:"met"`
	// WorstBurn/WorstInterval locate the hottest interval; Violations
	// counts intervals whose burn rate exceeded 1.
	WorstBurn     float64        `json:"worst_burn"`
	WorstInterval int            `json:"worst_interval"`
	Violations    int            `json:"violations"`
	Intervals     []IntervalBurn `json:"intervals"`
}

// matches reports whether the objective covers the class. Latency
// objectives on "*" skip error classes (their latency is not a promise);
// error objectives use class counts directly in evaluate.
func (o *Objective) matches(class string) bool {
	if o.Class == "*" {
		return !IsErrorClass(class)
	}
	return o.Class == class
}

// BinBurn returns the worst burn rate any configured objective suffered in
// time-series bin `bin` (0 when the bin is out of range, holds no requests,
// or no objectives are configured). The flight recorder polls it on
// completed bins to decide whether a budget-burn trigger fired.
func (c *Collector) BinBurn(bin int) float64 {
	if c == nil || bin < 0 || bin >= len(c.bins) {
		return 0
	}
	worst := 0.0
	b := c.bins[bin]
	for i := range c.opt.Objectives {
		o := &c.opt.Objectives[i]
		var n, bad uint64
		for class, h := range b.classes {
			if o.Quantile > 0 {
				if !o.matches(class) {
					continue
				}
				n += h.Count()
				bad += h.Count() - h.CountLE(o.ThresholdCycles)
			} else {
				if o.Class != "*" && !strings.HasPrefix(class, o.Class) {
					continue
				}
				n += h.Count()
				if IsErrorClass(class) {
					bad += h.Count()
				}
			}
		}
		if n == 0 {
			continue
		}
		if burn := float64(bad) / float64(n) / o.Budget; burn > worst {
			worst = burn
		}
	}
	return worst
}

// CompletedBins returns the number of time-series bins fully behind `now`
// (bins whose end the clock has passed).
func (c *Collector) CompletedBins(now uint64) int {
	if c == nil || now <= c.origin {
		return 0
	}
	return int((now - c.origin) / c.opt.IntervalCycles)
}

// evaluateSLOs judges every configured objective against the collected
// intervals. Ordering follows the configuration order, so reports are
// deterministic.
func (c *Collector) evaluateSLOs() []SLOResult {
	var out []SLOResult
	for i := range c.opt.Objectives {
		out = append(out, c.evaluate(&c.opt.Objectives[i]))
	}
	return out
}

func (c *Collector) evaluate(o *Objective) SLOResult {
	res := SLOResult{Objective: *o, Met: true, WorstInterval: -1}
	for i, b := range c.bins {
		var n, bad uint64
		// Deterministic accumulation order is irrelevant here — only sums —
		// but iterate sorted anyway to keep the code shape uniform.
		for class, h := range b.classes {
			if o.Quantile > 0 { // latency objective
				if !o.matches(class) {
					continue
				}
				n += h.Count()
				bad += h.Count() - h.CountLE(o.ThresholdCycles)
			} else { // error objective
				if o.Class != "*" && !strings.HasPrefix(class, o.Class) {
					continue
				}
				n += h.Count()
				if IsErrorClass(class) {
					bad += h.Count()
				}
			}
		}
		ib := IntervalBurn{Index: i, Requests: n, Bad: bad, Met: true}
		if n > 0 {
			ib.BurnRate = float64(bad) / float64(n) / o.Budget
			ib.Met = ib.BurnRate <= 1
		}
		if !ib.Met {
			res.Violations++
			res.Met = false
		}
		if ib.BurnRate > res.WorstBurn {
			res.WorstBurn = ib.BurnRate
			res.WorstInterval = i
		}
		res.Requests += n
		res.Bad += bad
		res.Intervals = append(res.Intervals, ib)
	}
	if res.Requests > 0 {
		res.BudgetBurn = float64(res.Bad) / float64(res.Requests) / o.Budget
	}
	return res
}
