package reqtrace

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

func mkOp(tag string, business bool) *trace.Op {
	return &trace.Op{Tag: tag, Business: business}
}

func TestTracks(t *testing.T) {
	c := NewCollector(Options{})
	cases := []struct {
		op   *trace.Op
		want bool
	}{
		{mkOp("neworder", true), true},
		{mkOp("neworder.fail", false), true}, // demoted, still a request
		{mkOp("shed", false), true},
		{mkOp("os-daemon", false), false},
		{mkOp("", true), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := c.Tracks(tc.op); got != tc.want {
			t.Errorf("Tracks(%+v) = %v, want %v", tc.op, got, tc.want)
		}
	}
	var nilC *Collector
	if nilC.Tracks(mkOp("x", true)) {
		t.Error("nil collector must track nothing")
	}
}

func TestSpanLifecycleAndPhases(t *testing.T) {
	c := NewCollector(Options{IntervalCycles: 1000})
	c.Reset(100)

	s := c.Begin(mkOp("payment", true), 150)
	s.AddSplit(40, 10) // cpu, mem
	s.Add(PhaseLockWait, 25)
	s.Add(PhaseNet, 30)
	s.Add(PhaseDBQueue, 5)
	s.Add(PhaseDBService, 15)
	s.Add(PhaseGC, 20)
	c.End(s, 350) // total 200, phases sum 145, sched remainder 55

	r := c.BuildReport()
	if len(r.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(r.Classes))
	}
	cs := r.Classes[0]
	if cs.Class != "payment" || cs.Latency.Count != 1 || cs.Latency.Max != 200 {
		t.Fatalf("bad class stats: %+v", cs)
	}
	ph := cs.Phases
	if ph.CPU != 40 || ph.MemStall != 10 || ph.LockWait != 25 || ph.Net != 30 ||
		ph.DBQueue != 5 || ph.DBService != 15 || ph.GCPause != 20 || ph.Sched != 55 {
		t.Fatalf("bad phase breakdown: %+v", ph)
	}

	// Completion at 350 with origin 100 and 1000-cycle bins lands in bin 0.
	if len(r.Intervals) != 1 || r.Intervals[0].Classes[0].Count != 1 {
		t.Fatalf("bad intervals: %+v", r.Intervals)
	}
	if r.Intervals[0].StartCycle != 100 {
		t.Fatalf("interval start = %d, want origin 100", r.Intervals[0].StartCycle)
	}

	// A nil span (untracked op) absorbs charges silently.
	var nilSpan *Span
	nilSpan.Add(PhaseCPU, 1)
	nilSpan.AddSplit(1, 1)
	c.End(nilSpan, 999)
	if got := c.BuildReport().Classes[0].Latency.Count; got != 1 {
		t.Fatalf("nil span leaked into the collector: count %d", got)
	}
}

func TestIntervalBinning(t *testing.T) {
	c := NewCollector(Options{IntervalCycles: 1000})
	c.Reset(0)
	for i, end := range []uint64{500, 999, 1000, 1500, 3500} {
		s := c.Begin(mkOp("m", true), uint64(i))
		c.End(s, end)
	}
	r := c.BuildReport()
	if len(r.Intervals) != 4 {
		t.Fatalf("intervals = %d, want 4", len(r.Intervals))
	}
	counts := []uint64{2, 2, 0, 1}
	for i, want := range counts {
		var got uint64
		for _, cl := range r.Intervals[i].Classes {
			got += cl.Count
		}
		if got != want {
			t.Errorf("interval %d count = %d, want %d", i, got, want)
		}
	}
}

func TestMergeAcrossNodes(t *testing.T) {
	mk := func(lat ...uint64) *Collector {
		c := NewCollector(Options{IntervalCycles: 1000})
		for i, l := range lat {
			s := c.Begin(mkOp("m", true), uint64(i))
			c.End(s, uint64(i)+l)
			c.RecordGCPause(l / 2)
		}
		return c
	}
	a, b, c3 := mk(100, 200, 300), mk(150, 250), mk(1000, 2000, 3000, 4000)

	// (a+b)+c vs (c+b)+a must agree on every digest.
	m1 := mk()
	m1.Merge(a)
	m1.Merge(b)
	m1.Merge(c3)
	m2 := mk()
	m2.Merge(c3)
	m2.Merge(b)
	m2.Merge(a)

	r1, r2 := m1.ReportJSON(), m2.ReportJSON()
	if !bytes.Equal(r1, r2) {
		t.Fatalf("merge order changed the report:\n%s\nvs\n%s", r1, r2)
	}
	if m1.classes["m"].hdr.Count() != 9 {
		t.Fatalf("merged count = %d, want 9", m1.classes["m"].hdr.Count())
	}
	if m1.GCPause().Count() != 9 {
		t.Fatalf("merged gc pauses = %d, want 9", m1.GCPause().Count())
	}
}

func TestReportDeterminism(t *testing.T) {
	build := func() []byte {
		objs, err := ParseObjectives("p99<=1ms,err<=5%")
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollector(Options{IntervalCycles: 1000, Objectives: objs})
		// Insert classes in different orders on each run; output must sort.
		tags := []string{"zeta", "alpha", "neworder.fail", "shed", "mid"}
		for rep := 0; rep < 3; rep++ {
			for i, tag := range tags {
				s := c.Begin(mkOp(tag, !IsErrorClass(tag)), uint64(100*i))
				c.End(s, uint64(100*i+50+rep*400))
			}
		}
		return c.ReportJSON()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("same inputs produced different report bytes")
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("p99<=40ms, neworder:p95<=20ms, err<=2%, p50<=500us, p999<=10000000cy")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 {
		t.Fatalf("parsed %d objectives, want 5", len(objs))
	}
	// 40 ms at 250 cycles/us = 10M cycles.
	if objs[0].Class != "*" || objs[0].Quantile != 0.99 || objs[0].ThresholdCycles != 10_000_000 {
		t.Fatalf("bad p99 objective: %+v", objs[0])
	}
	if objs[1].Class != "neworder" || objs[1].ThresholdCycles != 5_000_000 {
		t.Fatalf("bad scoped objective: %+v", objs[1])
	}
	if objs[2].Quantile != 0 || objs[2].Budget != 0.02 {
		t.Fatalf("bad error objective: %+v", objs[2])
	}
	if objs[3].ThresholdCycles != 125_000 {
		t.Fatalf("bad us objective: %+v", objs[3])
	}
	if objs[4].ThresholdCycles != 10_000_000 {
		t.Fatalf("bad cy objective: %+v", objs[4])
	}

	for _, bad := range []string{"p98<=40ms", "p99=40ms", "err<=0%", "err<=bogus", "p99<=0ms"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted invalid spec", bad)
		}
	}
	if objs, err := ParseObjectives(""); err != nil || objs != nil {
		t.Error("empty spec must parse to no objectives")
	}
}

func TestSLOBurnRates(t *testing.T) {
	objs, err := ParseObjectives("p99<=1000cy,err<=10%")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(Options{IntervalCycles: 10_000, Objectives: objs})
	c.Reset(0)

	// Interval 0: 100 requests all fast — SLO met.
	for i := 0; i < 100; i++ {
		s := c.Begin(mkOp("m", true), 0)
		c.End(s, 500)
	}
	// Interval 1: 100 requests, 10 slow — bad fraction 10% against a 1%
	// budget: burn rate 10.
	for i := 0; i < 90; i++ {
		s := c.Begin(mkOp("m", true), 10_000)
		c.End(s, 10_500)
	}
	for i := 0; i < 10; i++ {
		s := c.Begin(mkOp("m", true), 10_000)
		c.End(s, 30_000) // completes in a later bin? no: 30_000 is bin 3
	}

	// The 10 slow ones complete at 30_000 → bin 3 with latency 20_000.
	r := c.BuildReport()
	if len(r.SLO) != 2 {
		t.Fatalf("slo results = %d, want 2", len(r.SLO))
	}
	lat := r.SLO[0]
	if lat.Requests != 200 || lat.Bad != 10 {
		t.Fatalf("latency slo totals: %+v", lat)
	}
	// Interval 0 and 1 clean; interval 3 has 10/10 bad → burn 100.
	if lat.Intervals[0].BurnRate != 0 || !lat.Intervals[0].Met {
		t.Fatalf("interval 0 should be clean: %+v", lat.Intervals[0])
	}
	if lat.Intervals[3].Bad != 10 || lat.Intervals[3].Met {
		t.Fatalf("interval 3 should violate: %+v", lat.Intervals[3])
	}
	if lat.WorstInterval != 3 || lat.Violations != 1 || lat.Met {
		t.Fatalf("latency slo verdict: %+v", lat)
	}
	// Overall: 10 bad of 200 against 1% budget → burn 5.
	if lat.BudgetBurn < 4.99 || lat.BudgetBurn > 5.01 {
		t.Fatalf("budget burn = %v, want 5", lat.BudgetBurn)
	}

	// Error objective: no error-class requests at all — met, zero burn.
	errRes := r.SLO[1]
	if !errRes.Met || errRes.Bad != 0 {
		t.Fatalf("error slo verdict: %+v", errRes)
	}

	// Now shed 30 of the next interval's requests.
	for i := 0; i < 70; i++ {
		s := c.Begin(mkOp("m", true), 40_000)
		c.End(s, 40_100)
	}
	for i := 0; i < 30; i++ {
		s := c.Begin(mkOp("shed", false), 40_000)
		c.End(s, 40_001)
	}
	r = c.BuildReport()
	errRes = r.SLO[1]
	// Interval 4: 30 errors of 100 against a 10% budget → burn 3.
	iv := errRes.Intervals[4]
	if iv.Requests != 100 || iv.Bad != 30 || iv.Met {
		t.Fatalf("error interval: %+v", iv)
	}
	if iv.BurnRate < 2.99 || iv.BurnRate > 3.01 {
		t.Fatalf("error burn = %v, want 3", iv.BurnRate)
	}
	if errRes.Met {
		t.Fatal("error slo should be violated overall")
	}
	// The latency objective must ignore the shed class's latency.
	lat = r.SLO[0]
	if lat.Requests != 270 {
		t.Fatalf("latency slo saw %d requests, want 270 (errors excluded)", lat.Requests)
	}
}

func TestResetReanchors(t *testing.T) {
	c := NewCollector(Options{IntervalCycles: 1000})
	s := c.Begin(mkOp("m", true), 10)
	c.End(s, 20)
	c.RecordGCPause(99)
	c.Reset(5000)
	if len(c.CountByClass()) != 0 || c.GCPause().Count() != 0 {
		t.Fatal("reset did not clear accumulators")
	}
	s = c.Begin(mkOp("m", true), 5100)
	c.End(s, 5200)
	r := c.BuildReport()
	if r.OriginCycle != 5000 || len(r.Intervals) != 1 || r.Intervals[0].StartCycle != 5000 {
		t.Fatalf("reset did not re-anchor the series: %+v", r.Intervals)
	}
}
