// Package reqtrace is the request-centric latency layer of the simulator:
// per-request spans carried through the playback engine in simulated time,
// decomposed into phase segments, folded into HDR-style histograms per
// request class and per interval, and judged against service-level
// objectives with burn-rate accounting.
//
// The paper characterizes its middleware workloads by aggregate CPI, miss,
// and GC counters, but SPECjbb, ECperf, and Volano are transaction systems:
// their user-visible behavior is per-request latency. reqtrace closes that
// gap. The playback engine opens a span when it dispatches a recorded
// operation, charges every cycle the request spends — executing, stalled on
// the memory system, waiting for a monitor, on the wire, queued at the
// database, or frozen by a stop-the-world GC pause — to a phase of that
// span, and completes the span into the collector when the operation
// finishes.
//
// Like the rest of the observability layer, reqtrace is passive and
// deterministic: a nil *Collector is a valid, zero-cost default; an attached
// collector only reads simulated time and never perturbs scheduling or RNG
// draws, so a run with latency tracking on is cycle-identical to the same
// seed with it off.
package reqtrace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Phase indexes one segment class of a request span.
type Phase uint8

const (
	// PhaseCPU is retired instruction work (base cycles).
	PhaseCPU Phase = iota
	// PhaseMemStall is instruction- and data-stall cycles in the memory
	// hierarchy.
	PhaseMemStall
	// PhaseLockWait is time blocked on monitors, kernel spin locks, and
	// pool semaphores.
	PhaseLockWait
	// PhaseNet is wire time of synchronous calls (transfer + propagation),
	// plus the full round trip for co-simulated peers where the remote
	// breakdown lives on the other machine.
	PhaseNet
	// PhaseDBQueue is time queued at a remote tier waiting for a worker.
	PhaseDBQueue
	// PhaseDBService is remote-tier service time.
	PhaseDBService
	// PhaseGC is stop-the-world GC pause overlap: collections that froze
	// this request while it was in flight.
	PhaseGC
	// PhaseThink is recorded driver pacing/sleep time.
	PhaseThink
	// NumPhases bounds the phase enum.
	NumPhases
)

// phaseNames orders the JSON/report phase keys; keep in sync with the enum.
var phaseNames = [NumPhases]string{
	"cpu", "mem_stall", "lock_wait", "net", "db_queue", "db_service", "gc_pause", "think",
}

// String names the phase as used in reports.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Span is one in-flight request: its class, dispatch time, and the cycles
// charged to each phase so far. The engine owns a span from Begin to End.
type Span struct {
	class string
	start uint64
	seq   uint64
	phase [NumPhases]uint64
}

// Add charges cycles to one phase.
func (s *Span) Add(p Phase, cycles uint64) {
	if s == nil {
		return
	}
	s.phase[p] += cycles
}

// AddSplit charges an instruction segment: base cycles as CPU, the stall
// remainder as memory stall.
func (s *Span) AddSplit(base, stall uint64) {
	if s == nil {
		return
	}
	s.phase[PhaseCPU] += base
	s.phase[PhaseMemStall] += stall
}

// Options configures a collector.
type Options struct {
	// IntervalCycles is the width of the latency time-series bins (and the
	// SLO evaluation window). 0 selects DefaultIntervalCycles.
	IntervalCycles uint64
	// Objectives are evaluated per interval when the report is built.
	Objectives []Objective
}

// DefaultIntervalCycles is 20 ms of simulated time at the 250 MHz clock —
// long enough that a quiet interval still holds a quorum of requests, short
// enough that a single fault window spans several intervals.
const DefaultIntervalCycles = 5_000_000

// classAcc accumulates one request class over the whole measurement window.
type classAcc struct {
	hdr    obs.HDR
	total  uint64 // sum of span totals, for the unattributed remainder
	phases [NumPhases]uint64
}

// intervalAcc is one time-series bin: per-class latency histograms.
type intervalAcc struct {
	classes map[string]*obs.HDR
}

// Collector folds completed spans into per-class and per-interval
// histograms. One engine owns one collector; cluster co-simulations give
// each machine its own and Merge them for the machine-room view.
type Collector struct {
	opt     Options
	origin  uint64
	classes map[string]*classAcc
	bins    []*intervalAcc
	all     obs.HDR // every tracked completion, for live heartbeat quantiles
	gcPause obs.HDR // stop-the-world pause lengths (jvm.gc.pause)

	// seq numbers spans in Begin order; inflight indexes the spans opened
	// but not yet ended — the flight recorder's "what was running when it
	// went wrong" table. Size is bounded by the engine's actual request
	// concurrency (every span the engine opens, it ends).
	seq      uint64
	inflight map[uint64]*Span
}

// NewCollector returns an empty collector.
func NewCollector(opt Options) *Collector {
	if opt.IntervalCycles == 0 {
		opt.IntervalCycles = DefaultIntervalCycles
	}
	return &Collector{opt: opt, classes: make(map[string]*classAcc), inflight: make(map[uint64]*Span)}
}

// Interval returns the time-series bin width in cycles.
func (c *Collector) Interval() uint64 { return c.opt.IntervalCycles }

// Objectives returns the configured SLOs.
func (c *Collector) Objectives() []Objective { return c.opt.Objectives }

// Tracks reports whether an operation gets a span: business operations plus
// the error classes the resilience layer demotes (shed admissions and
// retry-exhausted ".fail" operations), whose latency is exactly what an
// error-rate SLO is about. Unnamed bookkeeping ops and OS daemon filler do
// not get spans.
func (c *Collector) Tracks(op *trace.Op) bool {
	if c == nil || op == nil || op.Tag == "" {
		return false
	}
	return op.Business || IsErrorClass(op.Tag)
}

// IsErrorClass reports whether a request class counts as an error for SLO
// purposes: operations shed at admission and operations that exhausted
// their retries.
func IsErrorClass(class string) bool {
	return class == "shed" || strings.HasSuffix(class, ".fail")
}

// Begin opens a span for a tracked operation dispatched at start. It
// returns nil (a valid, inert span) for untracked operations.
func (c *Collector) Begin(op *trace.Op, start uint64) *Span {
	if !c.Tracks(op) {
		return nil
	}
	return c.open(&Span{class: op.Tag, start: start})
}

// open assigns the span its sequence number and registers it in-flight.
func (c *Collector) open(s *Span) *Span {
	c.seq++
	s.seq = c.seq
	c.inflight[s.seq] = s
	return s
}

// BeginClass opens a span for an explicitly named request class dispatched
// at start — the entry point for open-system simulations, whose requests
// are not trace operations. Like Begin, it is nil-safe on the collector,
// and the returned span is only an accumulator: nothing is recorded until
// End.
func (c *Collector) BeginClass(class string, start uint64) *Span {
	if c == nil || class == "" {
		return nil
	}
	return c.open(&Span{class: class, start: start})
}

// End completes a span at time end, folding it into the class and interval
// accumulators.
func (c *Collector) End(s *Span, end uint64) {
	if c == nil || s == nil {
		return
	}
	delete(c.inflight, s.seq)
	total := uint64(0)
	if end > s.start {
		total = end - s.start
	}
	acc := c.classes[s.class]
	if acc == nil {
		acc = &classAcc{}
		c.classes[s.class] = acc
	}
	acc.hdr.Record(total)
	acc.total += total
	for p, v := range s.phase {
		acc.phases[p] += v
	}
	c.all.Record(total)

	// Time-series bin by completion time relative to the measurement origin.
	at := uint64(0)
	if end > c.origin {
		at = end - c.origin
	}
	bin := int(at / c.opt.IntervalCycles)
	for len(c.bins) <= bin {
		c.bins = append(c.bins, &intervalAcc{classes: make(map[string]*obs.HDR)})
	}
	h := c.bins[bin].classes[s.class]
	if h == nil {
		h = &obs.HDR{}
		c.bins[bin].classes[s.class] = h
	}
	h.Record(total)
}

// RecordGCPause records one stop-the-world pause length. Pause *overlap*
// with in-flight requests is charged to their spans by the engine; this
// histogram is the pause-length distribution itself (the jvm.gc.pause view).
func (c *Collector) RecordGCPause(cycles uint64) {
	if c == nil {
		return
	}
	c.gcPause.Record(cycles)
}

// GCPause returns the pause-length histogram.
func (c *Collector) GCPause() *obs.HDR { return &c.gcPause }

// Reset clears all accumulated spans and re-anchors the time series at
// origin — the warm-up/measurement boundary. Spans still in flight keep
// accumulating and complete into the fresh window, mirroring how the
// engine's own per-tag counters treat boundary-spanning operations.
func (c *Collector) Reset(origin uint64) {
	if c == nil {
		return
	}
	c.origin = origin
	c.classes = make(map[string]*classAcc)
	c.bins = nil
	c.all.Reset()
	c.gcPause.Reset()
}

// Origin returns the time-series anchor set by the last Reset.
func (c *Collector) Origin() uint64 { return c.origin }

// CountByClass returns completed-span counts per class — the conservation
// check against the engine's completed-transaction counters.
func (c *Collector) CountByClass() map[string]uint64 {
	out := make(map[string]uint64, len(c.classes))
	for k, a := range c.classes {
		out[k] = a.hdr.Count()
	}
	return out
}

// InFlightSpan is one open request in the flight recorder's span table.
type InFlightSpan struct {
	Seq        uint64 `json:"seq"`
	Class      string `json:"class"`
	StartCycle uint64 `json:"start_cycle"`
	AgeCycles  uint64 `json:"age_cycles"`
	// Phases are the cycles charged so far, keyed by phase name (only
	// non-zero phases appear).
	Phases map[string]uint64 `json:"phases,omitempty"`
}

// InFlightTable snapshots every open span at time now, oldest (lowest
// sequence number) first — the post-mortem "what was running" view. The
// copy is deterministic: map order is erased by the seq sort.
func (c *Collector) InFlightTable(now uint64) []InFlightSpan {
	if c == nil || len(c.inflight) == 0 {
		return nil
	}
	out := make([]InFlightSpan, 0, len(c.inflight))
	for _, s := range c.inflight {
		e := InFlightSpan{Seq: s.seq, Class: s.class, StartCycle: s.start}
		if now > s.start {
			e.AgeCycles = now - s.start
		}
		for p, v := range s.phase {
			if v > 0 {
				if e.Phases == nil {
					e.Phases = make(map[string]uint64)
				}
				e.Phases[Phase(p).String()] = v
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// InFlightCount returns the number of open spans.
func (c *Collector) InFlightCount() int {
	if c == nil {
		return 0
	}
	return len(c.inflight)
}

// LiveQuantiles returns the running p50/p99 across all tracked completions,
// for heartbeat lines.
func (c *Collector) LiveQuantiles() (p50, p99 uint64) {
	if c == nil || c.all.Count() == 0 {
		return 0, 0
	}
	return c.all.Quantile(0.50), c.all.Quantile(0.99)
}

// Merge folds another collector (a cluster peer measured over the same
// window) into c: class and interval histograms add bucket-wise, so the
// merged view is independent of node order.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	for k, oa := range o.classes {
		a := c.classes[k]
		if a == nil {
			a = &classAcc{}
			c.classes[k] = a
		}
		a.hdr.Merge(&oa.hdr)
		a.total += oa.total
		for p, v := range oa.phases {
			a.phases[p] += v
		}
	}
	for i, ob := range o.bins {
		for len(c.bins) <= i {
			c.bins = append(c.bins, &intervalAcc{classes: make(map[string]*obs.HDR)})
		}
		for k, oh := range ob.classes {
			h := c.bins[i].classes[k]
			if h == nil {
				h = &obs.HDR{}
				c.bins[i].classes[k] = h
			}
			h.Merge(oh)
		}
	}
	c.all.Merge(&o.all)
	c.gcPause.Merge(&o.gcPause)
}

// PhaseBreakdown is the per-phase cycle decomposition of a class, plus the
// scheduler/runnable remainder no phase claims (ready-queue time, engine
// slicing, clock skew).
type PhaseBreakdown struct {
	CPU       uint64 `json:"cpu"`
	MemStall  uint64 `json:"mem_stall"`
	LockWait  uint64 `json:"lock_wait"`
	Net       uint64 `json:"net"`
	DBQueue   uint64 `json:"db_queue"`
	DBService uint64 `json:"db_service"`
	GCPause   uint64 `json:"gc_pause"`
	Think     uint64 `json:"think"`
	Sched     uint64 `json:"sched_other"`
}

// ClassStats is the report entry for one request class.
type ClassStats struct {
	Class   string         `json:"class"`
	Error   bool           `json:"error_class,omitempty"`
	Latency obs.HDRSummary `json:"latency"`
	Phases  PhaseBreakdown `json:"phases"`
}

// IntervalClass is one class's digest inside a time-series bin.
type IntervalClass struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_cycles"`
	P99   uint64 `json:"p99_cycles"`
	P999  uint64 `json:"p999_cycles"`
	Max   uint64 `json:"max_cycles"`
}

// IntervalStats is one bin of the latency time series.
type IntervalStats struct {
	Index      int             `json:"index"`
	StartCycle uint64          `json:"start_cycle"`
	Classes    []IntervalClass `json:"classes"`
}

// Report is the JSON latency/SLO section of a run. All slices are sorted
// (classes by name, intervals by index), so the same seed marshals to the
// same bytes.
type Report struct {
	IntervalCycles uint64          `json:"interval_cycles"`
	OriginCycle    uint64          `json:"origin_cycle"`
	Classes        []ClassStats    `json:"classes"`
	Intervals      []IntervalStats `json:"intervals"`
	GCPause        obs.HDRSummary  `json:"jvm_gc_pause"`
	SLO            []SLOResult     `json:"slo,omitempty"`
}

// BuildReport digests the collector and evaluates its objectives.
func (c *Collector) BuildReport() *Report {
	r := &Report{IntervalCycles: c.opt.IntervalCycles, OriginCycle: c.origin, GCPause: c.gcPause.Summarize()}

	names := make([]string, 0, len(c.classes))
	for k := range c.classes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		a := c.classes[k]
		attributed := uint64(0)
		for _, v := range a.phases {
			attributed += v
		}
		sched := uint64(0)
		if a.total > attributed {
			sched = a.total - attributed
		}
		r.Classes = append(r.Classes, ClassStats{
			Class:   k,
			Error:   IsErrorClass(k),
			Latency: a.hdr.Summarize(),
			Phases: PhaseBreakdown{
				CPU:       a.phases[PhaseCPU],
				MemStall:  a.phases[PhaseMemStall],
				LockWait:  a.phases[PhaseLockWait],
				Net:       a.phases[PhaseNet],
				DBQueue:   a.phases[PhaseDBQueue],
				DBService: a.phases[PhaseDBService],
				GCPause:   a.phases[PhaseGC],
				Think:     a.phases[PhaseThink],
				Sched:     sched,
			},
		})
	}

	for i, b := range c.bins {
		iv := IntervalStats{Index: i, StartCycle: c.origin + uint64(i)*c.opt.IntervalCycles}
		ks := make([]string, 0, len(b.classes))
		for k := range b.classes {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			h := b.classes[k]
			iv.Classes = append(iv.Classes, IntervalClass{
				Class: k,
				Count: h.Count(),
				P50:   h.Quantile(0.50),
				P99:   h.Quantile(0.99),
				P999:  h.Quantile(0.999),
				Max:   h.Max(),
			})
		}
		r.Intervals = append(r.Intervals, iv)
	}

	r.SLO = c.evaluateSLOs()
	return r
}

// ReportJSON marshals the report with a trailing newline; errors cannot
// occur for this type and map to an empty object defensively.
func (c *Collector) ReportJSON() []byte {
	buf, err := json.MarshalIndent(c.BuildReport(), "", "  ")
	if err != nil {
		return []byte("{}\n")
	}
	return append(buf, '\n')
}
