package obs

import (
	"math/bits"
)

// HDR is a fixed-precision log-bucketed histogram for latency values in
// cycles, in the style of HdrHistogram: each power-of-two octave is split
// into 2^hdrSubBits linear sub-buckets, bounding the relative quantile error
// at 1/2^hdrSubBits (~3% at 5 bits) across the full uint64 range. Values
// below 2^hdrSubBits land in singleton buckets and report exactly.
//
// The type is built for the simulator's determinism contract:
//
//   - Recording is pure integer arithmetic on the sample value — no wall
//     time, no randomness — so the same run produces the same histogram.
//   - Merge is a bucket-wise add, hence associative and commutative: the
//     per-node histograms of a cluster co-simulation fold into one machine
//     view in any order with an identical result.
//   - Quantile returns the upper edge of the target rank's bucket, clamped
//     to the exact tracked maximum, so Quantile(1) is the true max and
//     every reported percentile is a deterministic upper bound within the
//     precision guarantee.
//
// The zero value is an empty, ready-to-use histogram.
type HDR struct {
	counts []uint64 // grown on demand to the highest occupied bucket
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// hdrSubBits sets the precision: 32 sub-buckets per octave.
const hdrSubBits = 5

// hdrBucket maps a value to its bucket index. Values below 2^hdrSubBits are
// their own bucket (exact); above, the octave is the bit length and the
// sub-bucket the next hdrSubBits bits.
func hdrBucket(v uint64) int {
	const m = 1 << hdrSubBits
	if v < m {
		return int(v)
	}
	e := bits.Len64(v) - 1 - hdrSubBits
	return int(uint64(e+1)<<hdrSubBits + (v>>uint(e) - m))
}

// hdrUpperEdge returns the largest value mapping to bucket b (inclusive).
func hdrUpperEdge(b int) uint64 {
	const m = 1 << hdrSubBits
	if b < m {
		return uint64(b)
	}
	e := b>>hdrSubBits - 1
	r := uint64(b & (m - 1))
	return (m+r+1)<<uint(e) - 1
}

// Record adds one sample.
func (h *HDR) Record(v uint64) {
	b := hdrBucket(v)
	if b >= len(h.counts) {
		h.counts = append(h.counts, make([]uint64, b+1-len(h.counts))...)
	}
	h.counts[b]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *HDR) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *HDR) Sum() uint64 { return h.sum }

// Mean returns the mean sample, or 0 when empty.
func (h *HDR) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample, or 0 when empty.
func (h *HDR) Min() uint64 { return h.min }

// Max returns the largest sample, exactly, or 0 when empty.
func (h *HDR) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the ceil(q*count)-th smallest sample,
// clamped to the exact maximum. Within the linear range (< 2^hdrSubBits)
// the answer is exact; above it the bound is within a factor 1+2^-hdrSubBits
// of the true order statistic.
func (h *HDR) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			edge := hdrUpperEdge(b)
			if edge > h.max {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// CountLE returns the number of samples at or below v, at bucket
// resolution: the bucket containing v counts in full. The overcount is
// bounded by the histogram precision, and the answer is deterministic —
// which is what the SLO engine's bad-request accounting needs.
func (h *HDR) CountLE(v uint64) uint64 {
	b := hdrBucket(v)
	var cum uint64
	for i, c := range h.counts {
		if i > b {
			break
		}
		cum += c
	}
	return cum
}

// Merge folds o into h bucket-wise. Merging per-node histograms is
// associative and commutative, so cluster-wide views do not depend on node
// order. o is unmodified; a nil o is a no-op.
func (h *HDR) Merge(o *HDR) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		h.counts = append(h.counts, make([]uint64, len(o.counts)-len(h.counts))...)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset empties the histogram in place, keeping its bucket storage.
func (h *HDR) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Clone returns a deep copy.
func (h *HDR) Clone() *HDR {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// HDRSummary is the JSON-friendly digest of an HDR histogram, in cycles.
type HDRSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_cycles"`
	Min   uint64  `json:"min_cycles"`
	P50   uint64  `json:"p50_cycles"`
	P95   uint64  `json:"p95_cycles"`
	P99   uint64  `json:"p99_cycles"`
	P999  uint64  `json:"p999_cycles"`
	Max   uint64  `json:"max_cycles"`
}

// Summarize digests the histogram into the standard percentile set.
func (h *HDR) Summarize() HDRSummary {
	return HDRSummary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}
