package obs

// EventRing is a fixed-capacity ring of trace events that overwrites its
// oldest entry when full — the storage behind the flight recorder's
// "last N events" window. Unlike the Tracer's linear buffer (which stops
// recording at its cap and counts drops), the ring always holds the most
// recent events, so a post-mortem dump sees the moments before the trigger
// no matter how long the run has been going.
//
// A nil *EventRing is valid and inert.
type EventRing struct {
	buf     []Event
	next    int
	full    bool
	evicted uint64
}

// NewEventRing returns a ring holding at most capacity events (minimum 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Push appends an event, evicting the oldest when the ring is full.
func (r *EventRing) Push(e Event) {
	if r == nil {
		return
	}
	if !r.full {
		r.buf = append(r.buf, e)
		if len(r.buf) == cap(r.buf) {
			r.full = true
			r.next = 0
		}
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.evicted++
}

// Len returns the number of events currently held.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Cap returns the ring's capacity.
func (r *EventRing) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Evicted returns how many events were overwritten by newer ones.
func (r *EventRing) Evicted() uint64 {
	if r == nil {
		return 0
	}
	return r.evicted
}

// Total returns how many events were ever pushed.
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	return uint64(len(r.buf)) + r.evicted
}

// Events returns the held events oldest-first (a copy; the ring keeps
// recording).
func (r *EventRing) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.nextOr(len(r.buf))]...)
	return out
}

// nextOr returns the write cursor, or n before the ring first fills (the
// cursor is only meaningful once wrapping starts).
func (r *EventRing) nextOr(n int) int {
	if r.full {
		return r.next
	}
	return n
}
