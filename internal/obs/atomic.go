package obs

import (
	"os"
	"path/filepath"
)

// Crash-safe file output. Every JSON artifact the simulator produces —
// manifests, metrics snapshots, traces, results, checkpoints — goes through
// write-temp-then-rename: the bytes land in a hidden temporary file in the
// destination directory and only an atomic rename publishes them. A run
// killed mid-write (or mid-fault-injection experiment) therefore leaves
// either the previous complete file or no file, never a truncated one that
// a later tool would half-parse.

// AtomicWriteFile writes data to path via a temporary file and rename.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	w, err := AtomicCreate(path, perm)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// AtomicFile is an io.WriteCloser whose contents become visible at path
// only when Close succeeds. Abort (or a failed Close) removes the
// temporary file and leaves any existing file at path untouched.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// AtomicCreate opens a temporary file next to path for writing. Close
// publishes it at path atomically; Abort discards it.
func AtomicCreate(path string, perm os.FileMode) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the pending file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Close flushes the pending file to stable storage and renames it into
// place. On any error the temporary file is removed and path is untouched.
func (a *AtomicFile) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return nil
}

// Abort discards the pending write. Safe after Close (no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}
