// Package attr is the memory-event attribution layer: it turns the bus's
// aggregate counters (misses, cache-to-cache transfers, invalidations,
// writebacks) into address- and object-centric tables that explain *which
// data* causes the traffic.
//
// The coherence bus reports every bus-level event with its block address
// into a per-line table. Each tracked line accumulates event counts plus a
// compact summary of its coherence transition string — who read, who wrote,
// and in what order — from which the classifier tags the line with one of
// the paper's §4.3 sharing patterns: read-only, producer-consumer,
// migratory, or ping-pong (plus private for lines a single node both reads
// and writes).
//
// Memory is bounded by deterministic power-of-two address sampling: a line
// is tracked iff the top `shift` bits of its hashed address are zero, so
// the tracked set is an unbiased 1/2^shift spatial sample. The shift starts
// at zero (track everything) and adapts upward when the table exceeds its
// cap; because the sampling masks are nested, every surviving line's
// history is complete, and scaling counts by 2^shift estimates the
// population. Exact mode pins the shift at zero and never resamples — the
// conservation property (per-line counts sum to the bus's global Stats) is
// tested in that mode.
//
// Object attribution works in GC epochs: the JVM heap closes an epoch at
// every collection boundary (addresses are about to be reassigned), handing
// the collector a resolver over the *pre-GC* layout. Each line's events
// accrued during the epoch roll up to the allocation site whose object
// covered that address during the epoch; a fallback resolver (wired by the
// driver to the machine's address-space regions) labels non-heap lines
// (code, stacks, network buffers).
//
// A nil *Collector is valid and disabled; the bus guards its hot path with
// one nil check.
package attr

import (
	"math/bits"
	"sort"
)

// Pattern is a line's sharing-pattern classification (the paper's §4.3
// taxonomy, plus Private and ReadOnly for unshared and unwritten lines).
type Pattern uint8

const (
	// ReadOnly: the line was never written over the bus (instruction blocks,
	// immutable data); all copies are Shared.
	ReadOnly Pattern = iota
	// Private: one node both reads and writes the line; no communication.
	Private
	// ProducerConsumer: exactly one node writes, other nodes read — each
	// write invalidates the consumers, each consumer read is a transfer.
	ProducerConsumer
	// Migratory: the line's ownership migrates — a node reads the current
	// value then writes it (read-modify-write under a lock is the classic
	// case), so each handoff is a C2C read plus an upgrade.
	Migratory
	// PingPong: multiple nodes write the line with few intervening reads —
	// ownership bounces on every access (contended locks, false sharing).
	PingPong
	numPatterns
)

// String names the pattern as used in reports.
func (p Pattern) String() string {
	switch p {
	case ReadOnly:
		return "read-only"
	case Private:
		return "private"
	case ProducerConsumer:
		return "producer-consumer"
	case Migratory:
		return "migratory"
	case PingPong:
		return "ping-pong"
	default:
		return "unknown"
	}
}

// PatternNames lists every pattern label in classification order (for
// reports that want a stable row order).
func PatternNames() []string {
	out := make([]string, numPatterns)
	for i := Pattern(0); i < numPatterns; i++ {
		out[i] = i.String()
	}
	return out
}

// Counts are one line's (or one aggregate's) attributed event counts.
// Misses that went to memory are GetS+GetM-C2C.
type Counts struct {
	GetS       uint64 `json:"gets"`
	GetM       uint64 `json:"getm"`
	Upgrades   uint64 `json:"upgrades"`
	C2C        uint64 `json:"c2c"`
	Writebacks uint64 `json:"writebacks"`
	Invals     uint64 `json:"invals"`
}

// Misses returns the data-moving bus transactions (the bus's DataRequests).
func (c *Counts) Misses() uint64 { return c.GetS + c.GetM }

// Total returns all attributed events.
func (c *Counts) Total() uint64 {
	return c.GetS + c.GetM + c.Upgrades + c.Writebacks + c.Invals
}

func (c *Counts) add(o Counts) {
	c.GetS += o.GetS
	c.GetM += o.GetM
	c.Upgrades += o.Upgrades
	c.C2C += o.C2C
	c.Writebacks += o.Writebacks
	c.Invals += o.Invals
}

// Resolver maps a block address to an attribution label (an allocation
// site, a heap generation, a code region). ok=false defers to the next
// resolver in the chain.
type Resolver func(addr uint64) (label string, ok bool)

const (
	opNone uint8 = iota
	opRead
	opWrite
)

// lineState is one tracked line's cumulative and per-epoch attribution
// state. The transition summary (masks, last accessor, transition counters)
// is what the classifier reads; it is cumulative across epochs because the
// sharing pattern is a property of the address, not of one GC epoch.
type lineState struct {
	total Counts
	epoch Counts

	readers, writers uint64 // node bitmask (nodes >= 64 are counted, not masked)
	lastWriter       int16  // -1 = none yet
	lastReader       int16
	lastOp           uint8

	// Transition counters, updated on each ownership handoff (a write by a
	// node that is not the previous writer): a handoff preceded by the new
	// owner's own read is migratory evidence; a handoff straight from the
	// previous owner's write is ping-pong evidence. Consumer reads (a read
	// by a node other than the last writer) are producer-consumer evidence.
	migrations    uint32
	pingpongs     uint32
	consumerReads uint32

	// label is the line's most recent epoch resolution (allocation site or
	// region), carried into the hot-line report.
	label string
}

// classify tags the line from its accumulated transition summary.
func (e *lineState) classify() Pattern {
	if e.total.GetM+e.total.Upgrades == 0 {
		return ReadOnly
	}
	if bits.OnesCount64(e.writers) <= 1 {
		if e.readers&^e.writers != 0 {
			return ProducerConsumer
		}
		return Private
	}
	if e.migrations >= e.pingpongs {
		return Migratory
	}
	return PingPong
}

// Options configure a Collector.
type Options struct {
	// Exact disables sampling: every line is tracked and the table is
	// unbounded. Conservation against the bus's global counters holds only
	// in this mode.
	Exact bool
	// MaxLines caps the sampled table; when exceeded the sample shift
	// increases (halving the tracked set) until the table fits. 0 means
	// DefaultMaxLines. Ignored in exact mode.
	MaxLines int
}

// DefaultMaxLines bounds the sampled per-line table (~64K lines ≈ a few
// MB of collector state).
const DefaultMaxLines = 1 << 16

// PatternStat aggregates the lines and events attributed to one pattern.
type PatternStat struct {
	Lines  uint64 `json:"lines"`
	Events uint64 `json:"events"`
	C2C    uint64 `json:"c2c"`
}

// EpochSummary is the pattern mix of one attribution window (the interval
// between two GC-epoch boundaries). Workload phases between collections are
// exactly these windows.
type EpochSummary struct {
	Index   int    `json:"index"`
	Trigger string `json:"trigger"` // "minor", "major", or "final"
	// Mix maps pattern label → lines/events active in this epoch. Lines are
	// classified from their cumulative transition state at epoch close.
	Mix map[string]PatternStat `json:"mix"`
}

// maxEpochSummaries caps the retained per-epoch detail; later epochs still
// roll objects up but stop appending summaries (TruncatedEpochs counts them).
const maxEpochSummaries = 512

// Collector is the attribution sink. It is not safe for concurrent use;
// like the rest of the simulator it is single-threaded per run. A nil
// *Collector is valid and disabled.
type Collector struct {
	opt      Options
	maxLines int
	shift    uint // sample shift: track iff hash(addr)>>(64-shift) == 0
	table    map[uint64]*lineState

	// Fallback resolves addresses the epoch resolver does not cover (code
	// regions, stacks, network buffers). Set once at wiring time.
	Fallback Resolver

	sites           map[string]Counts
	epochs          []EpochSummary
	epochIndex      int
	truncatedEpochs int
	resamples       int
	events          uint64 // total recorded events (post-sampling)
}

// NewCollector returns an empty collector.
func NewCollector(opt Options) *Collector {
	if opt.MaxLines <= 0 {
		opt.MaxLines = DefaultMaxLines
	}
	return &Collector{
		opt:      opt,
		maxLines: opt.MaxLines,
		table:    make(map[uint64]*lineState),
		sites:    make(map[string]Counts),
	}
}

// Exact reports whether the collector runs unsampled.
func (c *Collector) Exact() bool { return c != nil && c.opt.Exact }

// SampleShift returns the current sample shift (tracked fraction 1/2^shift).
func (c *Collector) SampleShift() uint {
	if c == nil {
		return 0
	}
	return c.shift
}

// Len returns the number of tracked lines.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.table)
}

// Events returns the total recorded (post-sampling) event count.
func (c *Collector) Events() uint64 {
	if c == nil {
		return 0
	}
	return c.events
}

// EpochCount returns the number of closed attribution epochs.
func (c *Collector) EpochCount() int {
	if c == nil {
		return 0
	}
	return c.epochIndex
}

// Resamples returns how many times the sampled table halved itself.
func (c *Collector) Resamples() int {
	if c == nil {
		return 0
	}
	return c.resamples
}

// Reset drops all attribution state (tables, site roll-ups, epochs) while
// keeping the sampling configuration. Drivers call it at the warm-up/measure
// boundary so reports cover exactly the measurement window.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.table = make(map[uint64]*lineState)
	c.sites = make(map[string]Counts)
	c.epochs = nil
	c.epochIndex = 0
	c.truncatedEpochs = 0
	c.events = 0
	// The adapted shift is kept: the measurement window sees the same
	// working set the warm-up did, so re-learning it would only churn.
}

// addrHash spreads a block address for sampling; block addresses have at
// least 6 trailing zeros, so they are shifted out first.
func addrHash(ba uint64) uint64 { return (ba >> 6) * 0x9E3779B97F4A7C15 }

// sampled reports whether the line is in the tracked sample. Nested masks:
// a line sampled at shift s is sampled at every shift < s, so adapting the
// shift upward preserves complete histories for the survivors.
func (c *Collector) sampled(ba uint64) bool {
	return addrHash(ba)>>(64-c.shift) == 0
}

// entry returns the line's state, creating it if tracked, or nil when the
// line is outside the sample.
func (c *Collector) entry(ba uint64) *lineState {
	if !c.opt.Exact && !c.sampled(ba) {
		return nil
	}
	e := c.table[ba]
	if e == nil {
		if !c.opt.Exact && len(c.table) >= c.maxLines {
			c.resample()
			if !c.sampled(ba) {
				return nil
			}
		}
		e = &lineState{lastWriter: -1, lastReader: -1}
		c.table[ba] = e
	}
	return e
}

// resample raises the sample shift until the table fits under its cap,
// dropping lines that fall outside the finer sample.
func (c *Collector) resample() {
	for len(c.table) >= c.maxLines {
		c.shift++
		c.resamples++
		for ba := range c.table {
			if !c.sampled(ba) {
				delete(c.table, ba)
			}
		}
	}
}

func nodeBit(node int) uint64 {
	if uint(node) < 64 {
		return 1 << uint(node)
	}
	return 0
}

// RecordGetS attributes a read-miss bus transaction by node; c2c marks it
// served by another cache.
func (c *Collector) RecordGetS(ba uint64, node int, c2c bool) {
	if c == nil {
		return
	}
	e := c.entry(ba)
	if e == nil {
		return
	}
	c.events++
	e.total.GetS++
	e.epoch.GetS++
	if c2c {
		e.total.C2C++
		e.epoch.C2C++
	}
	e.readers |= nodeBit(node)
	if e.lastWriter >= 0 && int(e.lastWriter) != node {
		e.consumerReads++
	}
	e.lastReader = int16(node)
	e.lastOp = opRead
}

// RecordGetM attributes a write-miss bus transaction by node.
func (c *Collector) RecordGetM(ba uint64, node int, c2c bool) {
	if c == nil {
		return
	}
	e := c.entry(ba)
	if e == nil {
		return
	}
	c.events++
	e.total.GetM++
	e.epoch.GetM++
	if c2c {
		e.total.C2C++
		e.epoch.C2C++
	}
	c.recordWrite(e, node)
}

// RecordUpgrade attributes an ownership-upgrade transaction by node.
func (c *Collector) RecordUpgrade(ba uint64, node int) {
	if c == nil {
		return
	}
	e := c.entry(ba)
	if e == nil {
		return
	}
	c.events++
	e.total.Upgrades++
	e.epoch.Upgrades++
	c.recordWrite(e, node)
}

func (c *Collector) recordWrite(e *lineState, node int) {
	e.writers |= nodeBit(node)
	if e.lastWriter >= 0 && int(e.lastWriter) != node {
		// Ownership handoff: migratory when the new owner read the line
		// since the previous write (read-modify-write), ping-pong when
		// ownership bounced write-to-write.
		if e.lastOp == opRead && int(e.lastReader) == node {
			e.migrations++
		} else {
			e.pingpongs++
		}
	}
	e.lastWriter = int16(node)
	e.lastOp = opWrite
}

// RecordWriteback attributes a dirty eviction's memory write. node may be
// -1 when the supplier is not identified (it does not enter the masks).
func (c *Collector) RecordWriteback(ba uint64, node int) {
	if c == nil {
		return
	}
	e := c.entry(ba)
	if e == nil {
		return
	}
	c.events++
	e.total.Writebacks++
	e.epoch.Writebacks++
	_ = node
}

// RecordInval attributes one remote copy's invalidation (node is the node
// that lost its copy).
func (c *Collector) RecordInval(ba uint64, node int) {
	if c == nil {
		return
	}
	e := c.entry(ba)
	if e == nil {
		return
	}
	c.events++
	e.total.Invals++
	e.epoch.Invals++
	_ = node
}

// resolve labels an address through the epoch resolver, then the fallback.
func (c *Collector) resolve(ba uint64, res Resolver) string {
	if res != nil {
		if label, ok := res(ba); ok {
			return label
		}
	}
	if c.Fallback != nil {
		if label, ok := c.Fallback(ba); ok {
			return label
		}
	}
	return "unattributed"
}

// CloseEpoch ends the current attribution window: every line active in the
// window is resolved to an object/site label through res (valid for the
// window's address layout — the heap calls this *before* a collection
// moves anything) and its window counts roll up to that label; the window's
// pattern mix is appended; per-epoch counts reset. trigger names the
// boundary ("minor", "major", "final").
func (c *Collector) CloseEpoch(res Resolver, trigger string) {
	if c == nil {
		return
	}
	mix := make(map[string]PatternStat)
	for ba, e := range c.table {
		if e.epoch.Total() == 0 {
			continue
		}
		label := c.resolve(ba, res)
		e.label = label
		s := c.sites[label]
		s.add(e.epoch)
		c.sites[label] = s

		p := e.classify().String()
		ps := mix[p]
		ps.Lines++
		ps.Events += e.epoch.Total()
		ps.C2C += e.epoch.C2C
		mix[p] = ps

		e.epoch = Counts{}
	}
	if len(c.epochs) < maxEpochSummaries {
		c.epochs = append(c.epochs, EpochSummary{Index: c.epochIndex, Trigger: trigger, Mix: mix})
	} else {
		c.truncatedEpochs++
	}
	c.epochIndex++
}

// HotLine is one line's report row.
type HotLine struct {
	Addr    uint64 `json:"addr"`
	Pattern string `json:"pattern"`
	Label   string `json:"label"`
	Readers int    `json:"readers"`
	Writers int    `json:"writers"`
	Counts
}

// HotObject is one allocation site's (or region's) report row.
type HotObject struct {
	Label string `json:"label"`
	Lines uint64 `json:"lines"`
	Counts
}

// Report is the collector's serializable summary: totals, the pattern mix,
// and the top-N hot lines and objects. All slices are deterministically
// ordered (events descending, then address/label ascending), so the same
// run always marshals to identical bytes.
type Report struct {
	Exact           bool                   `json:"exact"`
	SampleShift     uint                   `json:"sample_shift"`
	ScaleFactor     uint64                 `json:"scale_factor"` // multiply counts by this to estimate the population
	LinesTracked    int                    `json:"lines_tracked"`
	Resamples       int                    `json:"resamples"`
	Events          uint64                 `json:"events"`
	Epochs          int                    `json:"epochs"`
	TruncatedEpochs int                    `json:"truncated_epochs,omitempty"`
	Totals          Counts                 `json:"totals"`
	PatternMix      map[string]PatternStat `json:"pattern_mix"`
	HotLines        []HotLine              `json:"hot_lines"`
	HotObjects      []HotObject            `json:"hot_objects"`
	EpochMix        []EpochSummary         `json:"epoch_mix"`
}

// BuildReport assembles the report with the top-N hot lines and objects.
// Call it after the final CloseEpoch so every event has rolled up.
func (c *Collector) BuildReport(topN int) *Report {
	if c == nil {
		return nil
	}
	if topN <= 0 {
		topN = 20
	}
	r := &Report{
		Exact:           c.opt.Exact,
		SampleShift:     c.shift,
		ScaleFactor:     1 << c.shift,
		LinesTracked:    len(c.table),
		Resamples:       c.resamples,
		Events:          c.events,
		Epochs:          c.epochIndex,
		TruncatedEpochs: c.truncatedEpochs,
		PatternMix:      make(map[string]PatternStat),
		EpochMix:        c.epochs,
	}

	lines := make([]HotLine, 0, len(c.table))
	for ba, e := range c.table {
		r.Totals.add(e.total)
		p := e.classify()
		ps := r.PatternMix[p.String()]
		ps.Lines++
		ps.Events += e.total.Total()
		ps.C2C += e.total.C2C
		r.PatternMix[p.String()] = ps
		lines = append(lines, HotLine{
			Addr:    ba,
			Pattern: p.String(),
			Label:   e.label,
			Readers: bits.OnesCount64(e.readers),
			Writers: bits.OnesCount64(e.writers),
			Counts:  e.total,
		})
	}
	sort.Slice(lines, func(i, j int) bool {
		if ti, tj := lines[i].Total(), lines[j].Total(); ti != tj {
			return ti > tj
		}
		return lines[i].Addr < lines[j].Addr
	})
	if len(lines) > topN {
		lines = lines[:topN]
	}
	r.HotLines = lines

	// Site roll-ups include only epoch-closed counts; count per-site lines
	// from the lines' latest labels.
	siteLines := make(map[string]uint64)
	for _, e := range c.table {
		if e.label != "" {
			siteLines[e.label]++
		}
	}
	objs := make([]HotObject, 0, len(c.sites))
	for label, counts := range c.sites {
		objs = append(objs, HotObject{Label: label, Lines: siteLines[label], Counts: counts})
	}
	sort.Slice(objs, func(i, j int) bool {
		if ti, tj := objs[i].Total(), objs[j].Total(); ti != tj {
			return ti > tj
		}
		return objs[i].Label < objs[j].Label
	})
	if len(objs) > topN {
		objs = objs[:topN]
	}
	r.HotObjects = objs
	return r
}

// SumCounts returns the sum over all tracked lines' cumulative counts (for
// conservation tests in exact mode).
func (c *Collector) SumCounts() Counts {
	var out Counts
	if c == nil {
		return out
	}
	for _, e := range c.table {
		out.add(e.total)
	}
	return out
}
