package attr

import (
	"encoding/json"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.RecordGetS(0x1000, 0, true)
	c.RecordGetM(0x1000, 1, false)
	c.RecordUpgrade(0x1000, 0)
	c.RecordWriteback(0x1000, -1)
	c.RecordInval(0x1000, 2)
	c.CloseEpoch(nil, "final")
	c.Reset()
	if c.Len() != 0 || c.Events() != 0 || c.EpochCount() != 0 || c.Exact() {
		t.Error("nil collector reported non-zero state")
	}
	if r := c.BuildReport(5); r != nil {
		t.Error("nil collector built a report")
	}
}

// classify drives one line through a scripted access sequence and returns
// its pattern.
func classify(t *testing.T, script func(c *Collector)) Pattern {
	t.Helper()
	c := NewCollector(Options{Exact: true})
	script(c)
	r := c.BuildReport(1)
	if len(r.HotLines) != 1 {
		t.Fatalf("script touched %d lines, want 1", len(r.HotLines))
	}
	for _, name := range PatternNames() {
		if r.HotLines[0].Pattern == name {
			for p := Pattern(0); p < numPatterns; p++ {
				if p.String() == name {
					return p
				}
			}
		}
	}
	t.Fatalf("unknown pattern %q", r.HotLines[0].Pattern)
	return 0
}

func TestClassifier(t *testing.T) {
	const ba = 0x4040

	// Never written: read-only, however many nodes read it.
	if p := classify(t, func(c *Collector) {
		for n := 0; n < 4; n++ {
			c.RecordGetS(ba, n, false)
		}
	}); p != ReadOnly {
		t.Errorf("all-reader line classified %v, want %v", p, ReadOnly)
	}

	// One node reads and writes, nobody else: private.
	if p := classify(t, func(c *Collector) {
		c.RecordGetS(ba, 2, false)
		c.RecordGetM(ba, 2, false)
		c.RecordUpgrade(ba, 2)
	}); p != Private {
		t.Errorf("single-node line classified %v, want %v", p, Private)
	}

	// One writer, distinct readers: producer-consumer.
	if p := classify(t, func(c *Collector) {
		for i := 0; i < 3; i++ {
			c.RecordGetM(ba, 0, false)
			c.RecordGetS(ba, 1, true)
			c.RecordGetS(ba, 2, true)
		}
	}); p != ProducerConsumer {
		t.Errorf("one-writer line classified %v, want %v", p, ProducerConsumer)
	}

	// Each node reads the line then takes ownership: migratory.
	if p := classify(t, func(c *Collector) {
		for i := 0; i < 4; i++ {
			n := i % 2
			c.RecordGetS(ba, n, true)
			c.RecordUpgrade(ba, n)
		}
	}); p != Migratory {
		t.Errorf("read-modify-write handoffs classified %v, want %v", p, Migratory)
	}

	// Ownership bounces write-to-write: ping-pong.
	if p := classify(t, func(c *Collector) {
		for i := 0; i < 6; i++ {
			c.RecordGetM(ba, i%2, true)
		}
	}); p != PingPong {
		t.Errorf("write-write handoffs classified %v, want %v", p, PingPong)
	}
}

func TestSamplingBoundsTableAndKeepsSurvivorHistory(t *testing.T) {
	const maxLines = 256
	c := NewCollector(Options{MaxLines: maxLines})
	// Far more distinct lines than the cap; two rounds so survivors have
	// history from both.
	for round := 0; round < 2; round++ {
		for i := 0; i < 8*maxLines; i++ {
			c.RecordGetS(uint64(i)*64, 0, false)
		}
	}
	if c.Len() >= maxLines {
		t.Fatalf("sampled table holds %d lines, cap %d", c.Len(), maxLines)
	}
	if c.Resamples() == 0 || c.SampleShift() == 0 {
		t.Fatal("table exceeded its cap without resampling")
	}
	// Nested masks: every surviving line must have complete history — both
	// rounds' GetS — because a line sampled at the final shift was sampled
	// at every coarser shift too.
	r := c.BuildReport(c.Len())
	for _, h := range r.HotLines {
		if h.GetS != 2 {
			t.Errorf("survivor %#x has %d GetS, want 2 (incomplete history)", h.Addr, h.GetS)
		}
	}
	if r.ScaleFactor != 1<<c.SampleShift() {
		t.Errorf("scale factor %d != 2^shift %d", r.ScaleFactor, uint64(1)<<c.SampleShift())
	}
}

func TestExactModeNeverResamples(t *testing.T) {
	c := NewCollector(Options{Exact: true, MaxLines: 16})
	for i := 0; i < 4096; i++ {
		c.RecordGetS(uint64(i)*64, 0, false)
	}
	if c.Len() != 4096 {
		t.Fatalf("exact mode tracked %d of 4096 lines", c.Len())
	}
	if c.Resamples() != 0 || c.SampleShift() != 0 {
		t.Fatal("exact mode resampled")
	}
}

func TestEpochRollupAndResolverChain(t *testing.T) {
	c := NewCollector(Options{Exact: true})
	c.Fallback = func(addr uint64) (string, bool) {
		if addr >= 0x10000 {
			return "region.code", true
		}
		return "", false
	}
	heapRes := func(addr uint64) (string, bool) {
		if addr < 0x8000 {
			return "site.a", true
		}
		return "", false
	}

	c.RecordGetM(0x1000, 0, false)  // site.a
	c.RecordGetS(0x20000, 1, false) // region.code
	c.RecordGetS(0x9000, 1, false)  // neither → unattributed
	c.CloseEpoch(heapRes, "minor")

	// Second epoch: the same heap line now maps elsewhere (post-GC layout).
	c.RecordGetS(0x1000, 1, true)
	c.CloseEpoch(func(addr uint64) (string, bool) { return "site.b", true }, "final")

	r := c.BuildReport(10)
	want := map[string]Counts{
		"site.a":       {GetM: 1},
		"site.b":       {GetS: 1, C2C: 1},
		"region.code":  {GetS: 1},
		"unattributed": {GetS: 1},
	}
	got := map[string]Counts{}
	for _, o := range r.HotObjects {
		got[o.Label] = o.Counts
	}
	for label, w := range want {
		if got[label] != w {
			t.Errorf("site %q rolled up %+v, want %+v", label, got[label], w)
		}
	}
	if r.Epochs != 2 {
		t.Errorf("report has %d epochs, want 2", r.Epochs)
	}
	if len(r.EpochMix) != 2 || r.EpochMix[0].Trigger != "minor" || r.EpochMix[1].Trigger != "final" {
		t.Errorf("epoch summaries wrong: %+v", r.EpochMix)
	}
	// Only the line active in epoch 2 appears in its mix.
	if n := len(r.EpochMix[1].Mix); n != 1 {
		t.Errorf("final epoch mix has %d patterns, want 1", n)
	}
}

func TestReportDeterministic(t *testing.T) {
	build := func() []byte {
		c := NewCollector(Options{Exact: true})
		for i := 0; i < 500; i++ {
			ba := uint64(i%97) * 64
			c.RecordGetS(ba, i%4, i%3 == 0)
			if i%2 == 0 {
				c.RecordGetM(ba, (i+1)%4, false)
			}
		}
		c.CloseEpoch(nil, "final")
		buf, err := json.Marshal(c.BuildReport(25))
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Error("identical event streams marshalled to different report bytes")
	}
}

func TestResetKeepsShiftDropsState(t *testing.T) {
	c := NewCollector(Options{MaxLines: 64})
	for i := 0; i < 1024; i++ {
		c.RecordGetS(uint64(i)*64, 0, false)
	}
	shift := c.SampleShift()
	if shift == 0 {
		t.Fatal("test needs an adapted shift")
	}
	c.CloseEpoch(nil, "minor")
	c.Reset()
	if c.Len() != 0 || c.Events() != 0 || c.EpochCount() != 0 {
		t.Error("Reset left state behind")
	}
	if c.SampleShift() != shift {
		t.Errorf("Reset changed the sample shift: %d → %d", shift, c.SampleShift())
	}
}
