package obs

import (
	"encoding/json"
	"os/exec"
	"strings"
	"time"
)

// Manifest records everything needed to reproduce one driver invocation
// byte-for-byte: the command and flags, the experiment options, the seed
// list, and the code version. It is written as JSON next to the driver's
// output, so a table in results/ always names the configuration that made
// it.
type Manifest struct {
	Command     string    `json:"command"`
	Args        []string  `json:"args"`
	Git         string    `json:"git"`
	Started     time.Time `json:"started"`
	WallSeconds float64   `json:"wall_seconds"`
	Seeds       []uint64  `json:"seeds,omitempty"`
	// Opts holds the experiment option structs by name (e.g. "scaling",
	// "sweep") — marshaled as-is so every knob is on record.
	Opts    map[string]any `json:"opts,omitempty"`
	Outputs []string       `json:"outputs,omitempty"`
}

// GitDescribe returns `git describe --always --dirty` for the working
// tree, or "unknown" when git or the repository is unavailable.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// WriteManifest writes the manifest as indented JSON at path, atomically.
func WriteManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return AtomicWriteFile(path, append(b, '\n'), 0o644)
}
