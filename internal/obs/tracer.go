package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CyclesPerMicrosecond converts the simulated 250 MHz cycle clock to the
// microsecond timestamps the Chrome trace_event format expects.
const CyclesPerMicrosecond = 250.0

// DefaultMaxEvents caps a tracer's buffer; past it events are counted as
// dropped rather than recorded, so a runaway trace cannot exhaust memory.
const DefaultMaxEvents = 1 << 20

// DefaultMemSample records one in every N bus transactions when memory
// tracing is on. Bus transactions outnumber every other traced event by
// orders of magnitude; sampling keeps them visible without drowning the
// trace. Set SampleEvery(CompMem, 1) for an exhaustive record.
const DefaultMemSample = 16

// Event is one trace_event record on the simulated clock. Time and Dur are
// in cycles; they are converted to microseconds only at export.
type Event struct {
	Name string
	Comp Component
	// Phase is 'X' (complete span) or 'i' (instant).
	Phase byte
	// Pid/Tid place the event on a Perfetto track: Pid groups a machine or
	// workload, Tid is a thread ID or CPU within it.
	Pid, Tid int
	Time     uint64
	Dur      uint64
	// Args are optional key=value annotations (small, human-oriented).
	Args []Arg
}

// Arg is one event annotation.
type Arg struct {
	Key string
	Val any
}

// Tracer records simulated-time events. A nil *Tracer is valid and
// disabled: every method returns immediately, so instrumentation sites pay
// one nil check when tracing is off.
//
// The tracer is not safe for concurrent use; one run owns one tracer.
type Tracer struct {
	enabled [numComponents]bool
	sample  [numComponents]uint64 // record 1 in N (0/1 = all)
	seen    [numComponents]uint64

	events  []Event
	max     int
	dropped uint64

	// ring, when set, receives every admitted event in addition to (or, with
	// ringOnly, instead of) the linear buffer — the flight recorder's view of
	// the recent past. The ring overwrites oldest entries, so it keeps
	// recording after the linear buffer hits its cap.
	ring     *EventRing
	ringOnly bool

	// Pid is the default process track for events recorded through this
	// tracer; procNames label pid tracks in the exported trace.
	Pid       int
	procNames map[int]string
	tidNames  map[[2]int]string
}

// NewTracer returns a tracer with the given components enabled.
func NewTracer(comps []Component) *Tracer {
	t := &Tracer{max: DefaultMaxEvents, procNames: map[int]string{}, tidNames: map[[2]int]string{}}
	for _, c := range comps {
		if int(c) < int(numComponents) {
			t.enabled[c] = true
		}
	}
	t.sample[CompMem] = DefaultMemSample
	return t
}

// NewRingTracer returns a tracer that records only into a bounded event
// ring: the flight recorder's always-on mode, where memory stays capped by
// eviction rather than by refusing new events. Component enablement and
// sampling behave exactly like NewTracer's.
func NewRingTracer(comps []Component, capacity int) *Tracer {
	t := NewTracer(comps)
	t.ring = NewEventRing(capacity)
	t.ringOnly = true
	return t
}

// SetRing attaches a ring that mirrors every admitted event — used when a
// full -trace buffer and the flight recorder share one tracer.
func (t *Tracer) SetRing(r *EventRing) {
	if t != nil {
		t.ring = r
	}
}

// Ring returns the attached event ring (nil if none).
func (t *Tracer) Ring() *EventRing {
	if t == nil {
		return nil
	}
	return t.ring
}

// SetMaxEvents overrides the event cap.
func (t *Tracer) SetMaxEvents(n int) {
	if t != nil && n > 0 {
		t.max = n
	}
}

// SampleEvery records one in n events of the component (n <= 1 records
// all). Only the memory component defaults to sampling.
func (t *Tracer) SampleEvery(c Component, n uint64) {
	if t != nil && int(c) < int(numComponents) {
		t.sample[c] = n
	}
}

// Enabled reports whether the component is traced. Call it before building
// expensive arguments; Span and Instant re-check internally.
func (t *Tracer) Enabled(c Component) bool {
	return t != nil && t.enabled[c]
}

// NameProcess labels a pid track in the exported trace.
func (t *Tracer) NameProcess(pid int, name string) {
	if t != nil {
		t.procNames[pid] = name
	}
}

// NameThread labels a (pid, tid) track in the exported trace.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t != nil {
		t.tidNames[[2]int{pid, tid}] = name
	}
}

func (t *Tracer) admit(c Component) bool {
	if t == nil || !t.enabled[c] {
		return false
	}
	if n := t.sample[c]; n > 1 {
		t.seen[c]++
		if t.seen[c]%n != 0 {
			return false
		}
	}
	return true
}

// record stores an admitted event: always into the ring when one is
// attached, and into the linear buffer unless this is a ring-only tracer or
// the buffer is at its cap (counted as dropped).
func (t *Tracer) record(e Event) {
	t.ring.Push(e)
	if t.ringOnly {
		return
	}
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Span records a complete [start, end) interval on track (t.Pid, tid).
func (t *Tracer) Span(c Component, name string, tid int, start, end uint64, args ...Arg) {
	if !t.admit(c) {
		return
	}
	if end < start {
		end = start
	}
	t.record(Event{
		Name: name, Comp: c, Phase: 'X', Pid: t.Pid, Tid: tid,
		Time: start, Dur: end - start, Args: args,
	})
}

// Instant records a point event on track (t.Pid, tid).
func (t *Tracer) Instant(c Component, name string, tid int, at uint64, args ...Arg) {
	if !t.admit(c) {
		return
	}
	t.record(Event{
		Name: name, Comp: c, Phase: 'i', Pid: t.Pid, Tid: tid, Time: at, Args: args,
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// MaxEvents returns the linear buffer's event cap.
func (t *Tracer) MaxEvents() int {
	if t == nil {
		return 0
	}
	return t.max
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the recorded events (for tests and merging).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteChromeTrace writes the tracers' merged events as Chrome trace_event
// JSON (the "JSON array format"), loadable in Perfetto or chrome://tracing.
// Cycle timestamps become microseconds at the simulated 250 MHz clock.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		// Track-name metadata first, in deterministic order.
		pids := make([]int, 0, len(t.procNames))
		for pid := range t.procNames {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
				pid, quoteJSON(t.procNames[pid])))
		}
		keys := make([][2]int, 0, len(t.tidNames))
		for k := range t.tidNames {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
				k[0], k[1], quoteJSON(t.tidNames[k])))
		}
		for i := range t.events {
			emit(formatEvent(&t.events[i]))
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ChromeTraceEvents renders a plain event slice as Chrome trace_event JSON
// bytes — the flight recorder's dump path, where events come from a ring
// rather than live tracers. procNames (may be nil) labels pid tracks.
func ChromeTraceEvents(events []Event, procNames map[int]string) []byte {
	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	pids := make([]int, 0, len(procNames))
	for pid := range procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, quoteJSON(procNames[pid])))
	}
	for i := range events {
		emit(formatEvent(&events[i]))
	}
	b.WriteString("\n]\n")
	return []byte(b.String())
}

func formatEvent(e *Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"%c","pid":%d,"tid":%d,"ts":%.3f`,
		quoteJSON(e.Name), quoteJSON(e.Comp.String()), e.Phase, e.Pid, e.Tid,
		float64(e.Time)/CyclesPerMicrosecond)
	if e.Phase == 'X' {
		fmt.Fprintf(&b, `,"dur":%.3f`, float64(e.Dur)/CyclesPerMicrosecond)
	}
	if e.Phase == 'i' {
		b.WriteString(`,"s":"t"`)
	}
	if len(e.Args) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteJSON(a.Key))
			b.WriteByte(':')
			switch v := a.Val.(type) {
			case string:
				b.WriteString(quoteJSON(v))
			case float64:
				fmt.Fprintf(&b, "%g", v)
			case bool:
				fmt.Fprintf(&b, "%v", v)
			default:
				fmt.Fprintf(&b, "%d", v)
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// quoteJSON escapes a string for embedding in JSON output. Names here are
// short ASCII identifiers; the escape covers the general case anyway.
func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
