package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestNilReceiversAreDisabled(t *testing.T) {
	var tr *Tracer
	var pf *Profiler
	var hb *Heartbeat
	tr.Span(CompJVM, "gc", 0, 10, 20)
	tr.Instant(CompMem, "bus", 0, 5)
	if tr.Enabled(CompJVM) || tr.Len() != 0 {
		t.Fatal("nil tracer should be disabled")
	}
	pf.AddCycles(1, CatBase, 100)
	pf.SetPhase("measure")
	pf.Reset()
	if pf.Total() != 0 {
		t.Fatal("nil profiler should accumulate nothing")
	}
	hb.Add(1)
	hb.SetCycles(5)
	hb.Stop()
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(AllComponents())
	tr.SampleEvery(CompMem, 1)
	tr.NameProcess(0, "SPECjbb")
	tr.NameThread(0, 3, "jbb-worker")
	tr.Span(CompJVM, "gc.minor", 0, 1000, 3500, Arg{"live_bytes", uint64(42)})
	tr.Span(CompOS, "lock.wait", 3, 200, 450)
	tr.Instant(CompMem, "bus.getm", 1, 777, Arg{"src", "c2c"})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata + 3 events.
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	byName := map[string]map[string]any{}
	for _, e := range events {
		byName[e["name"].(string)] = e
	}
	gc := byName["gc.minor"]
	if gc["ph"] != "X" || gc["cat"] != "jvm" {
		t.Fatalf("gc event malformed: %v", gc)
	}
	// 1000 cycles at 250 MHz = 4 µs; duration 2500 cycles = 10 µs.
	if gc["ts"].(float64) != 4 || gc["dur"].(float64) != 10 {
		t.Fatalf("cycle->us conversion wrong: ts=%v dur=%v", gc["ts"], gc["dur"])
	}
	if byName["bus.getm"]["ph"] != "i" {
		t.Fatal("instant phase missing")
	}
	args := gc["args"].(map[string]any)
	if args["live_bytes"].(float64) != 42 {
		t.Fatalf("args lost: %v", args)
	}
}

func TestTracerSamplingAndCap(t *testing.T) {
	tr := NewTracer([]Component{CompMem})
	tr.SampleEvery(CompMem, 10)
	for i := 0; i < 100; i++ {
		tr.Instant(CompMem, "bus", 0, uint64(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("sampled %d of 100, want 10", tr.Len())
	}
	tr2 := NewTracer([]Component{CompOS})
	tr2.SetMaxEvents(5)
	for i := 0; i < 20; i++ {
		tr2.Instant(CompOS, "x", 0, uint64(i))
	}
	if tr2.Len() != 5 || tr2.Dropped() != 15 {
		t.Fatalf("cap: len=%d dropped=%d", tr2.Len(), tr2.Dropped())
	}
	// Disabled component records nothing.
	tr2.Instant(CompJVM, "y", 0, 1)
	if tr2.Len() != 5 {
		t.Fatal("disabled component leaked an event")
	}
}

func TestRegistrySnapshotDelta(t *testing.T) {
	var miss uint64
	var hist stats.Histogram
	util := 0.25

	r := NewRegistry()
	r.Counter("memsys.l2.miss", func() uint64 { return miss })
	r.Gauge("db.utilization", func() float64 { return util })
	r.Histogram("jvm.gc.pause_cycles", func() stats.Histogram { return hist })

	miss = 100
	hist.Add(5000)
	base := r.Snapshot()

	miss = 250
	util = 0.75
	hist.Add(9000)
	hist.Add(11000)
	cur := r.Snapshot()

	d := cur.Delta(base)
	if d.Counter("memsys.l2.miss") != 150 {
		t.Fatalf("delta counter = %d, want 150", d.Counter("memsys.l2.miss"))
	}
	if d.Gauge("db.utilization") != 0.75 {
		t.Fatalf("gauge should keep the later level, got %v", d.Gauge("db.utilization"))
	}
	if h := d.Histo("jvm.gc.pause_cycles"); h.Count() != 2 {
		t.Fatalf("delta histogram count = %d, want 2", h.Count())
	}

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"memsys.l2.miss", "150", "jvm.gc.pause_cycles", "count=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}

	cs := d.CounterSet()
	if cs.Get("memsys.l2.miss") != 150 {
		t.Fatal("CounterSet interop lost the delta")
	}
}

func TestProfilerFolded(t *testing.T) {
	p := NewProfiler()
	p.NameComponent(1, "servlet")
	p.NameComponent(2, "jvm-gc")
	p.SetPhase("measure")
	p.AddCycles(1, CatBase, 700)
	p.AddCycles(1, CatDC2C, 300)
	prev := p.PushSubPhase("gc")
	p.AddCycles(2, CatDMem, 500)
	p.SetPhase(prev)
	p.AddCycles(1, CatBase, 100)

	if p.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", p.Total())
	}
	cats := p.CategoryTotals()
	if cats[CatBase] != 800 || cats[CatDC2C] != 300 || cats[CatDMem] != 500 {
		t.Fatalf("category totals wrong: %v", cats)
	}
	comps := p.ComponentTotals()
	if comps["servlet"] != 1100 || comps["jvm-gc"] != 500 {
		t.Fatalf("component totals wrong: %v", comps)
	}

	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"measure;servlet;base 800",
		"measure;servlet;dstall.c2c 300",
		"measure/gc;jvm-gc;dstall.mem 500",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("folded output lacks %q:\n%s", want, out)
		}
	}

	p.Reset()
	if p.Total() != 0 {
		t.Fatal("reset left cycles behind")
	}
}

func TestProfilerScopePrefix(t *testing.T) {
	p := NewProfiler()
	p.Scope = "ECperf"
	p.AddCycles(0, CatIStall, 9)
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ECperf;run;comp0;istall 9") {
		t.Fatalf("scope prefix missing: %q", buf.String())
	}
}
