package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat prints periodic progress lines (runs completed, runs/sec,
// simulated-vs-wall time) to a writer from a background ticker. Producers
// update the atomic counters from any goroutine:
//
//   - sweep drivers Add(1) to Runs per completed simulation point;
//   - single-run drivers store the engine's cycle position in SimCycles as
//     they advance the run in slices.
//
// A nil *Heartbeat is valid and disabled.
type Heartbeat struct {
	// Runs counts completed simulation runs; TotalRuns, when non-zero, adds
	// an "of N" to the report.
	//
	// Runs and SimCycles are the two counters every scheduler worker hits
	// once per completed simulation point (already batched: one Add(1) and
	// one AddCycles per point, never per cycle). The padding keeps each on
	// its own 64-byte line so concurrent workers on different cores don't
	// false-share; the accounting itself stays exact.
	Runs atomic.Uint64
	_    [56]byte
	// SimCycles is the current simulated-cycle position of a single run, or
	// the accumulated simulated cycles of a sweep's completed points.
	SimCycles atomic.Uint64
	_         [56]byte
	TotalRuns uint64
	// latP50/latP99 carry live request-latency quantiles (in cycles) when a
	// latency collector is attached; zero means "not tracking".
	latP50 atomic.Uint64
	latP99 atomic.Uint64
	// memUtil/memMult carry the loaded-latency model's live channel
	// utilization and memory-latency multiplier (Float64bits); a zero
	// multiplier means "fixed model, nothing to report".
	memUtil atomic.Uint64
	memMult atomic.Uint64
	// trafOffered/trafAdmitted/trafShed carry an open-system driver's live
	// traffic rates in requests per simulated second (Float64bits); a zero
	// offered rate means "closed loop, nothing to report".
	trafOffered  atomic.Uint64
	trafAdmitted atomic.Uint64
	trafShed     atomic.Uint64

	w       io.Writer
	label   string
	start   time.Time
	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once
}

// StartHeartbeat begins printing one line every interval. Stop it with
// Stop; a nil return (interval <= 0) is safely stoppable too.
func StartHeartbeat(w io.Writer, label string, interval time.Duration) *Heartbeat {
	if interval <= 0 {
		return nil
	}
	h := &Heartbeat{
		w:     w,
		label: label,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				fmt.Fprintln(h.w, h.line())
			}
		}
	}()
	return h
}

// Add records n completed runs.
func (h *Heartbeat) Add(n uint64) {
	if h != nil {
		h.Runs.Add(n)
	}
}

// SetCycles records the current simulated-cycle position.
func (h *Heartbeat) SetCycles(c uint64) {
	if h != nil {
		h.SimCycles.Store(c)
	}
}

// AddCycles credits simulated cycles (for sweeps, where concurrent runs
// accumulate rather than share one clock).
func (h *Heartbeat) AddCycles(c uint64) {
	if h != nil {
		h.SimCycles.Add(c)
	}
}

// SetLatency records live request-latency quantiles (in cycles) for the
// progress line. Zero values clear the latency segment.
func (h *Heartbeat) SetLatency(p50, p99 uint64) {
	if h != nil {
		h.latP50.Store(p50)
		h.latP99.Store(p99)
	}
}

// SetMemLoad records the loaded-latency model's channel utilization and
// memory-latency multiplier for the progress line. A zero mult clears the
// segment.
func (h *Heartbeat) SetMemLoad(util, mult float64) {
	if h != nil {
		h.memUtil.Store(math.Float64bits(util))
		h.memMult.Store(math.Float64bits(mult))
	}
}

// SetTraffic records an open-system driver's live offered, admitted, and
// shed rates (requests per simulated second) for the progress line. A zero
// offered rate clears the segment.
func (h *Heartbeat) SetTraffic(offered, admitted, shed float64) {
	if h != nil {
		h.trafOffered.Store(math.Float64bits(offered))
		h.trafAdmitted.Store(math.Float64bits(admitted))
		h.trafShed.Store(math.Float64bits(shed))
	}
}

// Stop halts the ticker and prints a final line. It is idempotent, so it
// can be deferred as soon as the heartbeat starts AND called on the normal
// exit path: the abnormal-termination path (panic unwinding, early error
// return) still flushes a final progress line, and the duplicate call on a
// clean exit is a no-op.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	h.stopped.Do(func() {
		close(h.stop)
		<-h.done
		fmt.Fprintln(h.w, h.line())
	})
}

func (h *Heartbeat) line() string {
	wall := time.Since(h.start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	s := fmt.Sprintf("%s: %.1fs wall", h.label, wall)
	if runs := h.Runs.Load(); runs > 0 || h.TotalRuns > 0 {
		if h.TotalRuns > 0 {
			s += fmt.Sprintf(", %d/%d runs", runs, h.TotalRuns)
		} else {
			s += fmt.Sprintf(", %d runs", runs)
		}
		s += fmt.Sprintf(" (%.2f runs/s)", float64(runs)/wall)
	}
	if cy := h.SimCycles.Load(); cy > 0 {
		simSec := float64(cy) / (CyclesPerMicrosecond * 1e6)
		s += fmt.Sprintf(", sim %.1f Mcy (%.0f ms simulated, %.2f Mcy/s, %.1fx slower than hardware)",
			float64(cy)/1e6, 1000*simSec, float64(cy)/1e6/wall, wall/simSec)
	}
	if p99 := h.latP99.Load(); p99 > 0 {
		toMS := CyclesPerMicrosecond * 1e3
		s += fmt.Sprintf(", lat p50 %.1f ms p99 %.1f ms",
			float64(h.latP50.Load())/toMS, float64(p99)/toMS)
	}
	if mult := math.Float64frombits(h.memMult.Load()); mult > 0 {
		s += fmt.Sprintf(", mem util %.0f%% lat x%.1f",
			100*math.Float64frombits(h.memUtil.Load()), mult)
	}
	if off := math.Float64frombits(h.trafOffered.Load()); off > 0 {
		s += fmt.Sprintf(", offered %.0f/s admitted %.0f/s shed %.0f/s",
			off, math.Float64frombits(h.trafAdmitted.Load()),
			math.Float64frombits(h.trafShed.Load()))
	}
	return s
}
