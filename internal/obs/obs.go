// Package obs is the simulator's observability layer: a simulated-time
// event tracer (Chrome trace_event JSON, loadable in Perfetto), a unified
// pull-model metrics registry with interval snapshots, and a
// simulated-cycle profiler that attributes cycles to (code component ×
// workload phase × stall category) as folded stacks.
//
// The paper's contribution is measurement — CPI breakdowns, data-stall
// decompositions, cache-to-cache ratios, GC pause interactions — and this
// package turns those end-of-run aggregates into time-resolved, attributed
// views of a run. Every piece follows the same contract:
//
//   - Disabled is the default and costs (almost) nothing: a nil *Tracer or
//     *Profiler is a valid receiver whose methods return immediately, so
//     instrumented code guards hot paths with a single nil check.
//   - The clock is the simulated cycle clock, never wall time, so traces
//     and profiles replay deterministically from a seed.
//   - One run owns one Observer; runs in a concurrent sweep each get their
//     own (the simulator is single-threaded per run for determinism).
package obs

import "repro/internal/obs/attr"

// Component gates tracing per simulator layer, so a trace of GC pauses is
// not drowned by millions of bus transactions unless asked for.
type Component uint8

const (
	// CompMem traces bus-level memory-system transactions.
	CompMem Component = iota
	// CompOS traces scheduling and lock/semaphore contention stalls.
	CompOS
	// CompJVM traces GC stop-the-world pauses.
	CompJVM
	// CompNet traces synchronous network round trips.
	CompNet
	// CompWorkload traces business-operation (transaction) lifecycles.
	CompWorkload
	// CompFault traces injected fault windows and the resilience layer's
	// reactions (retries, circuit-breaker transitions, shed requests).
	CompFault
	numComponents
)

// String names the component as used in trace categories.
func (c Component) String() string {
	switch c {
	case CompMem:
		return "mem"
	case CompOS:
		return "os"
	case CompJVM:
		return "jvm"
	case CompNet:
		return "net"
	case CompWorkload:
		return "workload"
	case CompFault:
		return "fault"
	default:
		return "obs"
	}
}

// Observer bundles the facilities for one simulated run. Any field may be
// nil: a nil Tracer/Profiler/Attr disables that facility at effectively
// zero cost, and a nil Registry simply has nothing bound to it.
type Observer struct {
	Tracer   *Tracer
	Registry *Registry
	Profiler *Profiler
	Attr     *attr.Collector
	Inspect  *Inspector
	// LatencyReport, when set, renders the run's request-latency/SLO report
	// as JSON. It is a closure rather than a concrete type so this package
	// does not depend on internal/obs/reqtrace (which depends on the HDR
	// histogram here); drivers bind it when they attach a latency collector.
	LatencyReport func() []byte
}

// NewObserver returns an observer with every facility enabled: a tracer
// with all components on, an empty registry, and a profiler.
func NewObserver() *Observer {
	return &Observer{
		Tracer:   NewTracer(AllComponents()),
		Registry: NewRegistry(),
		Profiler: NewProfiler(),
	}
}

// AllComponents enables every trace component.
func AllComponents() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}
