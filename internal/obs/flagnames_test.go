package obs

import (
	"flag"
	"sort"
	"testing"
)

func registeredNames(t *testing.T, register func(*flag.FlagSet)) []string {
	t.Helper()
	fs := flag.NewFlagSet("scratch", flag.ContinueOnError)
	register(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	return got
}

// TestStandardFlagNamesMatchRegister pins StandardFlagNames to what
// Flags.Register actually installs, so the per-driver parity tests cannot
// silently go stale when a flag is added or renamed.
func TestStandardFlagNamesMatchRegister(t *testing.T) {
	var fl Flags
	got := registeredNames(t, fl.Register)
	want := append([]string(nil), StandardFlagNames()...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Flags.Register installs %v, StandardFlagNames says %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Flags.Register installs %v, StandardFlagNames says %v", got, want)
		}
	}
}

// TestHostProfileFlagNamesMatchRegister does the same for HostProfile.
func TestHostProfileFlagNamesMatchRegister(t *testing.T) {
	var hp HostProfile
	got := registeredNames(t, hp.Register)
	want := append([]string(nil), HostProfileFlagNames()...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("HostProfile.Register installs %v, HostProfileFlagNames says %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("HostProfile.Register installs %v, HostProfileFlagNames says %v", got, want)
		}
	}
}
