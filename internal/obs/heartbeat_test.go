package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHeartbeatTrafficSegment: the progress line carries offered/admitted/
// shed rates once a driver sets them, and a zero offered rate clears the
// segment. A nil heartbeat accepts the call.
func TestHeartbeatTrafficSegment(t *testing.T) {
	h := &Heartbeat{start: time.Now()}
	if s := h.line(); strings.Contains(s, "offered") {
		t.Errorf("fresh heartbeat already reports traffic: %q", s)
	}
	h.SetTraffic(23896, 17800, 6096)
	s := h.line()
	for _, want := range []string{"offered 23896/s", "admitted 17800/s", "shed 6096/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("line %q missing %q", s, want)
		}
	}
	h.SetTraffic(0, 0, 0)
	if s := h.line(); strings.Contains(s, "offered") {
		t.Errorf("cleared traffic still printed: %q", s)
	}
	var nilHB *Heartbeat
	nilHB.SetTraffic(1, 1, 0) // must not panic
}
