package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Cat is a cycle-attribution category, mirroring the paper's CPI
// decomposition: Figure 6's other/instruction-stall split plus Figure 7's
// data-stall classes.
type Cat uint8

const (
	// CatBase is non-memory execution ("other" in Figure 6).
	CatBase Cat = iota
	// CatIStall is instruction-fetch stall.
	CatIStall
	// CatDStoreBuf is store-buffer-full stall.
	CatDStoreBuf
	// CatDRAW is read-after-write hazard stall.
	CatDRAW
	// CatDL2Hit is data stall served by the local L2 (incl. upgrades).
	CatDL2Hit
	// CatDC2C is data stall served by another cache (dirty miss).
	CatDC2C
	// CatDMem is data stall served by memory.
	CatDMem
	// CatDTLB is software TLB-refill stall.
	CatDTLB
	// NumCats bounds the category space.
	NumCats
)

// String names the category as it appears in folded stacks.
func (c Cat) String() string {
	switch c {
	case CatBase:
		return "base"
	case CatIStall:
		return "istall"
	case CatDStoreBuf:
		return "dstall.storebuf"
	case CatDRAW:
		return "dstall.raw"
	case CatDL2Hit:
		return "dstall.l2hit"
	case CatDC2C:
		return "dstall.c2c"
	case CatDMem:
		return "dstall.mem"
	case CatDTLB:
		return "dstall.tlb"
	default:
		return fmt.Sprintf("cat%d", uint8(c))
	}
}

// maxComps bounds the component-ID space (mem.ComponentID is a uint8).
const maxComps = 256

// Profiler attributes simulated cycles to (workload phase × code component
// × stall category). A nil *Profiler is valid and disabled; the enabled
// hot path is two array indexes and an add.
//
// Output is the folded-stack format ("phase;component;category cycles"),
// which flamegraph tooling, speedscope, and pprof's folded importer all
// read — the paper's Figure 6/7 CPI decomposition as a first-class
// profile.
type Profiler struct {
	// Scope, when set, prefixes every folded stack as the root frame
	// (e.g. the workload name when profiles from several runs are merged
	// into one file).
	Scope string

	phase   string
	phaseID int
	phases  []string
	ids     map[string]int

	compName [maxComps]string

	// cycles[phase][comp][cat]
	cycles []*[maxComps][NumCats]uint64
}

// NewProfiler returns an enabled profiler in phase "run".
func NewProfiler() *Profiler {
	p := &Profiler{ids: map[string]int{}}
	p.phaseID = p.internPhase("run")
	p.phase = "run"
	return p
}

func (p *Profiler) internPhase(name string) int {
	if id, ok := p.ids[name]; ok {
		return id
	}
	id := len(p.phases)
	p.ids[name] = id
	p.phases = append(p.phases, name)
	p.cycles = append(p.cycles, &[maxComps][NumCats]uint64{})
	return id
}

// SetPhase switches the current workload phase, returning the previous one
// so instrumentation can nest (the engine pushes a "/gc" sub-phase around
// stop-the-world collections).
func (p *Profiler) SetPhase(name string) (prev string) {
	if p == nil {
		return ""
	}
	prev = p.phase
	p.phase = name
	p.phaseID = p.internPhase(name)
	return prev
}

// Phase returns the current phase name.
func (p *Profiler) Phase() string {
	if p == nil {
		return ""
	}
	return p.phase
}

// PushSubPhase enters "<current>/<name>" and returns the previous phase
// for restoring with SetPhase.
func (p *Profiler) PushSubPhase(name string) (prev string) {
	if p == nil {
		return ""
	}
	return p.SetPhase(p.phase + "/" + name)
}

// NameComponent labels a component ID for folded output. Unnamed
// components render as "comp<N>".
func (p *Profiler) NameComponent(id int, name string) {
	if p == nil || id < 0 || id >= maxComps {
		return
	}
	p.compName[id] = name
}

// AddCycles attributes cycles to (current phase, component, category).
// This is the hot path: kept minimal and branch-light.
func (p *Profiler) AddCycles(comp int, cat Cat, cycles uint64) {
	if p == nil || cycles == 0 {
		return
	}
	p.cycles[p.phaseID][comp&(maxComps-1)][cat] += cycles
}

// Reset discards all attributed cycles (phase names and component labels
// survive) — called at the warm-up/measurement boundary alongside the
// engine's ResetStats.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for _, m := range p.cycles {
		*m = [maxComps][NumCats]uint64{}
	}
}

// Total returns all attributed cycles.
func (p *Profiler) Total() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, m := range p.cycles {
		for c := range m {
			for k := range m[c] {
				n += m[c][k]
			}
		}
	}
	return n
}

// CategoryTotals sums cycles per category across phases and components —
// the aggregate the engine's CPI counters also compute, used to verify the
// profile against the Figure 6/7 breakdown.
func (p *Profiler) CategoryTotals() [NumCats]uint64 {
	var out [NumCats]uint64
	if p == nil {
		return out
	}
	for _, m := range p.cycles {
		for c := range m {
			for k := range m[c] {
				out[k] += m[c][k]
			}
		}
	}
	return out
}

// ComponentTotals sums cycles per component name across phases and
// categories.
func (p *Profiler) ComponentTotals() map[string]uint64 {
	out := map[string]uint64{}
	if p == nil {
		return out
	}
	for _, m := range p.cycles {
		for c := range m {
			var n uint64
			for k := range m[c] {
				n += m[c][k]
			}
			if n > 0 {
				out[p.componentLabel(c)] += n
			}
		}
	}
	return out
}

func (p *Profiler) componentLabel(id int) string {
	if n := p.compName[id]; n != "" {
		return n
	}
	return fmt.Sprintf("comp%d", id)
}

// WriteFolded writes the profile as folded stacks, one line per non-zero
// (phase, component, category) cell, deterministically ordered.
func (p *Profiler) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	type row struct {
		stack  string
		cycles uint64
	}
	var rows []row
	for pi, m := range p.cycles {
		for c := range m {
			for k := range m[c] {
				if m[c][k] == 0 {
					continue
				}
				stack := p.phases[pi] + ";" + p.componentLabel(c) + ";" + Cat(k).String()
				if p.Scope != "" {
					stack = p.Scope + ";" + stack
				}
				rows = append(rows, row{stack, m[c][k]})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].stack < rows[j].stack })
	for _, r := range rows {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.stack, r.cycles); err != nil {
			return err
		}
	}
	return bw.Flush()
}
