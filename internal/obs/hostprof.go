package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// HostProfile bundles the host-side (wall-clock) profiling options every
// driver command wires uniformly, next to the simulated-time artifacts of
// Flags:
//
//	-cpuprofile FILE   Go pprof CPU profile of the simulator process
//	-memprofile FILE   Go pprof heap profile written at exit
//
// The simulated-cycle profiler (-profile) answers "where does simulated
// time go"; these answer "where does the simulator's own time go", which is
// what the performance-regression harness (cmd/perfcheck) digs into when a
// benchmark moves.
type HostProfile struct {
	CPUFile string
	MemFile string

	cpuOut *os.File
}

// Register installs the flags on fs.
func (h *HostProfile) Register(fs *flag.FlagSet) {
	fs.StringVar(&h.CPUFile, "cpuprofile", "", "write a Go pprof CPU profile of the simulator process")
	fs.StringVar(&h.MemFile, "memprofile", "", "write a Go pprof heap profile at exit")
}

// HostProfileFlagNames lists the flag names HostProfile.Register installs
// (see StandardFlagNames).
func HostProfileFlagNames() []string {
	return []string{"cpuprofile", "memprofile"}
}

// Start begins CPU profiling if requested. Call Stop before exit; deferring
// it from main is the usual shape.
func (h *HostProfile) Start() error {
	if h.CPUFile == "" {
		return nil
	}
	f, err := os.Create(h.CPUFile)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	h.cpuOut = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if either was
// requested. Safe to call when nothing was started.
func (h *HostProfile) Stop() {
	if h.cpuOut != nil {
		pprof.StopCPUProfile()
		h.cpuOut.Close()
		h.cpuOut = nil
	}
	if h.MemFile != "" {
		f, err := os.Create(h.MemFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}
}
