package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs/attr"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestInspectorServesPublishedState(t *testing.T) {
	hb := &Heartbeat{}
	hb.Runs.Store(3)
	hb.SimCycles.Store(5_000_000)
	in, err := StartInspector("127.0.0.1:0", "testrun", hb)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	base := "http://" + in.Addr()

	// Before any publish: endpoints respond with placeholders, not errors.
	if body, _ := get(t, base+"/metrics"); !strings.Contains(body, "no metrics") {
		t.Errorf("unpublished /metrics = %q", body)
	}
	if body, ct := get(t, base+"/attr"); strings.TrimSpace(body) != "{}" || ct != "application/json" {
		t.Errorf("unpublished /attr = %q (%s)", body, ct)
	}

	ob := &Observer{Registry: NewRegistry(), Attr: attr.NewCollector(attr.Options{Exact: true})}
	var n uint64 = 42
	ob.Registry.Counter("test.counter", func() uint64 { return n })
	ob.Attr.RecordGetS(0x4040, 0, true)
	ob.Attr.RecordGetM(0x4040, 1, false)
	in.SetNote("mid-run")
	in.Publish(ob, 10, true)

	if body, _ := get(t, base+"/metrics"); !strings.Contains(body, "test.counter") || !strings.Contains(body, "42") {
		t.Errorf("/metrics missing published counter: %q", body)
	}
	body, _ := get(t, base+"/attr")
	var rep attr.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/attr is not a report: %v", err)
	}
	if rep.Events != 2 || rep.LinesTracked != 1 {
		t.Errorf("/attr report = %d events / %d lines, want 2/1", rep.Events, rep.LinesTracked)
	}

	body, ct := get(t, base+"/status")
	if ct != "application/json" {
		t.Errorf("/status content type %q", ct)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st["label"] != "testrun" || st["note"] != "mid-run" {
		t.Errorf("/status = %v", st)
	}
	if st["runs"].(float64) != 3 || st["sim_cycles"].(float64) != 5_000_000 {
		t.Errorf("/status heartbeat counters = %v", st)
	}

	if body, _ := get(t, base+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index = %q", body)
	}
}

// TestInspectorOverloadPage: /overload serves the last snapshot the driver
// set, appears in /status's page list only once live, and clears to the
// placeholder on nil.
func TestInspectorOverloadPage(t *testing.T) {
	in, err := StartInspector("127.0.0.1:0", "overload", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	base := "http://" + in.Addr()

	if body, ct := get(t, base+"/overload"); strings.TrimSpace(body) != "{}" || ct != "application/json" {
		t.Errorf("unpublished /overload = %q (%s)", body, ct)
	}
	body, _ := get(t, base+"/status")
	if strings.Contains(body, "/overload") {
		t.Error("/status lists /overload before anything was published")
	}

	in.SetOverload([]byte(`{"cycle":42,"nodes":[{"id":0,"queue":7}]}` + "\n"))
	if body, _ := get(t, base+"/overload"); !strings.Contains(body, `"queue":7`) {
		t.Errorf("/overload = %q", body)
	}
	if body, _ := get(t, base+"/status"); !strings.Contains(body, "/overload") {
		t.Error("/status does not list the live /overload page")
	}
	if body, _ := get(t, base+"/"); !strings.Contains(body, "/overload") {
		t.Error("index does not mention /overload")
	}

	in.SetOverload(nil)
	if body, _ := get(t, base+"/overload"); strings.TrimSpace(body) != "{}" {
		t.Errorf("cleared /overload = %q", body)
	}
	var nilIn *Inspector
	nilIn.SetOverload([]byte("x")) // must not panic
}

func TestInspectorThrottlesPublish(t *testing.T) {
	in, err := StartInspector("127.0.0.1:0", "throttle", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ob := &Observer{Attr: attr.NewCollector(attr.Options{Exact: true})}
	ob.Attr.RecordGetS(0x40, 0, false)
	in.Publish(ob, 5, true)
	ob.Attr.RecordGetS(0x80, 0, false)
	in.Publish(ob, 5, false) // inside the throttle window: dropped
	body, _ := get(t, "http://"+in.Addr()+"/attr")
	var rep attr.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Events != 1 {
		t.Errorf("throttled publish leaked through: %d events served, want 1", rep.Events)
	}
	in.Publish(ob, 5, true) // forced: must land
	body, _ = get(t, "http://"+in.Addr()+"/attr")
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Events != 2 {
		t.Errorf("forced publish dropped: %d events served, want 2", rep.Events)
	}
}

func TestNilInspectorIsSafe(t *testing.T) {
	var in *Inspector
	in.Publish(&Observer{}, 5, true)
	in.SetNote("x")
	if in.Addr() != "" {
		t.Error("nil inspector has an address")
	}
	if err := in.Close(); err != nil {
		t.Error(err)
	}
}
