package flightrec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// newTestRecorder builds a recorder writing into dir with a registry
// backed by a controllable counter.
func newTestRecorder(t *testing.T, dir string, opt Options) (*Recorder, *uint64) {
	t.Helper()
	opt.Dir = dir
	if opt.Label == "" {
		opt.Label = "test"
	}
	rec := New(opt)
	var counter uint64
	reg := obs.NewRegistry()
	reg.Counter("test.ops", func() uint64 { return counter })
	rec.reg = reg
	return rec, &counter
}

func readBundle(t *testing.T, path string) map[string]any {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading bundle: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("bundle %s is not JSON: %v", path, err)
	}
	return m
}

// TestFaultWindowTrigger checks that ticking past a scheduled window's start
// writes exactly one bundle tagged with the fault kind, and that the
// bundle's trace re-synthesizes the window span.
func TestFaultWindowTrigger(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, Options{WindowCycles: 1000})
	rec.SetSchedule(&fault.Schedule{Events: []fault.Event{
		{Kind: fault.DBLockStorm, At: 500, Duration: 300, Magnitude: 30},
	}})

	rec.Tick(100) // before the window: nothing
	if len(rec.Dumps()) != 0 {
		t.Fatalf("dump before window start: %+v", rec.Dumps())
	}
	rec.Tick(600) // inside the window: one dump
	rec.Tick(700) // still inside: no second dump
	dumps := rec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1: %+v", len(dumps), dumps)
	}
	if dumps[0].Trigger != "fault-db-lock-storm" {
		t.Fatalf("trigger %q, want fault-db-lock-storm", dumps[0].Trigger)
	}
	if base := filepath.Base(dumps[0].Path); base != "test-flight-000-fault-db-lock-storm.json" {
		t.Fatalf("bundle name %q", base)
	}

	b := readBundle(t, dumps[0].Path)
	trace, _ := b["trace"].([]any)
	found := false
	for _, raw := range trace {
		e, _ := raw.(map[string]any)
		// Chrome trace timestamps are microseconds at the 250 MHz clock:
		// window start cycle 500 -> ts 2; duration clamped to the dump cycle
		// (600), so 100 cycles -> 0.4 us.
		if e["name"] == "fault.window" && e["ts"] == float64(2) && e["dur"] == 0.4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no synthesized fault.window span covering the storm in %v", trace)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	if s := rec.Summary(); !strings.Contains(s, "1 dump(s)") || !strings.Contains(s, "fault-db-lock-storm@600") {
		t.Fatalf("summary %q", s)
	}
}

// TestManualDumpAndCap checks DumpNow, the MaxDumps cap, and the skipped
// accounting in Summary.
func TestManualDumpAndCap(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, Options{MaxDumps: 2, WindowCycles: 100})
	rec.DumpNow(10, "manual", "first")
	rec.DumpNow(20, "manual", "second")
	rec.DumpNow(30, "manual", "third — over the cap")
	if got := len(rec.Dumps()); got != 2 {
		t.Fatalf("%d dumps written, want cap of 2", got)
	}
	if !strings.Contains(rec.Summary(), "1 trigger(s) past the 2-dump cap") {
		t.Fatalf("summary does not report the skipped trigger: %q", rec.Summary())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d files on disk, want 2", len(ents))
	}
}

// TestSnapshotDequeBound checks the periodic metrics snapshots stay capped
// and that dumps carry the delta since the newest kept snapshot.
func TestSnapshotDequeBound(t *testing.T) {
	dir := t.TempDir()
	rec, counter := newTestRecorder(t, dir, Options{
		WindowCycles: 1000, SnapEvery: 100, SnapKeep: 3,
	})
	for now := uint64(100); now <= 2000; now += 100 {
		*counter += 7
		rec.Tick(now)
	}
	if len(rec.snaps) != 3 {
		t.Fatalf("kept %d snapshots, want cap of 3", len(rec.snaps))
	}
	if newest := rec.snaps[len(rec.snaps)-1].cycle; newest != 2000 {
		t.Fatalf("newest snapshot at %d, want 2000", newest)
	}

	*counter += 5
	rec.DumpNow(2040, "manual", "delta check")
	b := readBundle(t, rec.Dumps()[0].Path)
	if metrics, _ := b["metrics"].(string); !strings.Contains(metrics, "test.ops") {
		t.Fatalf("bundle metrics missing the registry counter: %q", metrics)
	}
	delta, _ := b["metrics_delta"].(string)
	if !strings.Contains(delta, "5") {
		t.Fatalf("metrics delta should show the +5 since the last snapshot: %q", delta)
	}
	if dc, _ := b["metrics_delta_cycles"].(float64); dc != 40 {
		t.Fatalf("delta cycles %v, want 40", dc)
	}
}

// TestDumpDeterminism checks the passivity contract's observable half: two
// recorders fed identical simulated state produce byte-identical bundles.
func TestDumpDeterminism(t *testing.T) {
	run := func(dir string) []byte {
		rec, counter := newTestRecorder(t, dir, Options{WindowCycles: 1000, SnapEvery: 200})
		rec.SetSchedule(&fault.Schedule{Events: []fault.Event{
			{Kind: fault.GCStorm, At: 300, Duration: 100, Magnitude: 4},
		}})
		for i := uint64(0); i < 50; i++ {
			rec.ring.Push(obs.Event{Name: "op", Comp: obs.CompWorkload, Phase: 'X', Time: i * 10, Dur: 5})
		}
		for now := uint64(100); now <= 400; now += 100 {
			*counter += 3
			rec.Tick(now)
		}
		if len(rec.Dumps()) != 1 {
			t.Fatalf("want 1 dump, got %+v", rec.Dumps())
		}
		buf, err := os.ReadFile(rec.Dumps()[0].Path)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Fatalf("same simulated state produced different bundles:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestNilRecorderInert checks the disabled path: every method on a nil
// recorder is a no-op.
func TestNilRecorderInert(t *testing.T) {
	var rec *Recorder
	rec.Tick(100)
	rec.Watchdog(1, "x")
	rec.Brownout(1, 3)
	rec.DumpNow(1, "manual", "x")
	rec.SetCollector(nil)
	rec.SetSchedule(nil)
	rec.SetInspector(nil)
	if rec.Dumps() != nil || rec.Err() != nil || rec.Summary() != "" || rec.Ring() != nil {
		t.Fatal("nil recorder must be fully inert")
	}
}

// TestBrownoutEscalation checks the brown-out trigger dumps only on
// escalation past the high-water mark.
func TestBrownoutEscalation(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, Options{WindowCycles: 100})
	rec.Brownout(10, 0) // level 0 = no shedding, no dump
	rec.Brownout(20, 2) // escalation: dump
	rec.Brownout(30, 2) // plateau: no dump
	rec.Brownout(40, 1) // de-escalation: no dump
	rec.Brownout(50, 3) // new high water: dump
	dumps := rec.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("%d dumps, want 2 (escalations to 2 and 3): %+v", len(dumps), dumps)
	}
	for _, d := range dumps {
		if d.Trigger != "brownout" {
			t.Fatalf("trigger %q, want brownout", d.Trigger)
		}
	}
}

// TestWatchdogOnce checks the watchdog trigger fires a single dump no
// matter how many ticks re-observe the tripped state.
func TestWatchdogOnce(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, Options{WindowCycles: 100})
	rec.Watchdog(100, "no progress for 1000 cycles")
	rec.Watchdog(200, "no progress for 1000 cycles")
	if len(rec.Dumps()) != 1 {
		t.Fatalf("%d dumps, want 1", len(rec.Dumps()))
	}
	if rec.Dumps()[0].Trigger != "watchdog" {
		t.Fatalf("trigger %q", rec.Dumps()[0].Trigger)
	}
}
