// Package flightrec is the simulator's always-on black box: a bounded
// flight recorder that keeps the recent past — a ring of trace events, a
// short deque of metrics-registry snapshots, and the in-flight request
// table — in simulated time, and writes an atomic post-mortem bundle when
// something goes wrong.
//
// The rest of the observability stack answers questions that were asked up
// front: -trace, -metrics, and -latency produce end-of-run artifacts for
// runs someone decided to watch. The flight recorder answers the other
// question — "what just happened?" — for runs nobody was watching. It is on
// by default, so it must be strictly passive (engine results bit-identical
// with it on or off: it only ever reads simulated state) and strictly
// bounded (the ring evicts, the snapshot deque is capped, dumps are
// capped).
//
// Triggers: entry into a scheduled fault window, an SLO budget-burn
// threshold crossing, the deadlock watchdog firing, an overload brown-out
// escalation, or an explicit /flight/dump request on the -inspect server.
// Each dump is tagged with its trigger and contains the last window of
// simulated time as a Chrome trace, the metrics interval delta, top
// attribution lines when attribution is live, and the in-flight span table.
//
// Everything in a bundle derives from simulated state, so the same seed
// and trigger produce byte-identical dumps.
package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/obs/reqtrace"
)

// Defaults for Options' zero values.
const (
	// DefaultRingEvents bounds the event ring (~64 B/event → a few MB).
	DefaultRingEvents = 65536
	// DefaultWindowCycles is one simulated second at the 250 MHz clock.
	DefaultWindowCycles = 250_000_000
	// DefaultSnapKeep bounds the metrics-snapshot deque.
	DefaultSnapKeep = 16
	// DefaultBurnThreshold is the per-interval SLO burn rate that triggers
	// a dump (2 = the interval spent its error budget twice over).
	DefaultBurnThreshold = 2.0
	// DefaultMaxDumps caps bundles per run so a pathological run cannot
	// fill the disk; later triggers are counted, not written.
	DefaultMaxDumps = 8
)

// Options configures a recorder. Zero values select the defaults above;
// Dir defaults to the current directory.
type Options struct {
	// Dir is the directory dump bundles are written to.
	Dir string
	// Label names the run in bundle contents and file names.
	Label string
	// RingEvents caps the trace-event ring.
	RingEvents int
	// WindowCycles is the simulated-time span a dump's trace covers.
	WindowCycles uint64
	// SnapEvery is the metrics-snapshot cadence (default WindowCycles/4).
	SnapEvery uint64
	// SnapKeep bounds the snapshot deque.
	SnapKeep int
	// BurnThreshold is the per-interval SLO burn rate that triggers a dump
	// (needs a collector with objectives; <0 disables the trigger).
	BurnThreshold float64
	// MaxDumps caps bundles written per run.
	MaxDumps int
}

func (o Options) withDefaults() Options {
	if o.Dir == "" {
		o.Dir = "."
	}
	if o.Label == "" {
		o.Label = "run"
	}
	if o.RingEvents <= 0 {
		o.RingEvents = DefaultRingEvents
	}
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultWindowCycles
	}
	if o.SnapEvery == 0 {
		o.SnapEvery = o.WindowCycles / 4
	}
	if o.SnapKeep <= 0 {
		o.SnapKeep = DefaultSnapKeep
	}
	if o.BurnThreshold == 0 {
		o.BurnThreshold = DefaultBurnThreshold
	}
	if o.MaxDumps <= 0 {
		o.MaxDumps = DefaultMaxDumps
	}
	return o
}

// DumpInfo describes one written bundle.
type DumpInfo struct {
	Seq     int    `json:"seq"`
	Trigger string `json:"trigger"`
	Cycle   uint64 `json:"cycle"`
	Path    string `json:"path"`
}

type regSnap struct {
	cycle uint64
	snap  *obs.Snapshot
}

// Recorder is the black box. A nil *Recorder is valid and disabled — every
// method returns immediately — so call sites pay one nil check when the
// recorder is off.
//
// Like the rest of the observability stack it is single-threaded: the
// simulation thread owns it and calls Tick at slice boundaries.
type Recorder struct {
	opt  Options
	ring *obs.EventRing
	reg  *obs.Registry
	attr *attr.Collector
	coll *reqtrace.Collector
	insp *obs.Inspector

	procNames map[int]string

	windows []fault.Event
	nextWin int

	snaps    []regSnap
	nextSnap uint64

	lastBin      int
	lastBurnDump uint64
	burnDumped   bool

	wdDumped   bool
	brownLevel int

	dumps   []DumpInfo
	skipped int
	err     error
}

// New returns a recorder with an empty event ring.
func New(opt Options) *Recorder {
	o := opt.withDefaults()
	return &Recorder{
		opt:      o,
		ring:     obs.NewEventRing(o.RingEvents),
		nextSnap: o.SnapEvery,
		procNames: map[int]string{
			0: o.Label,
		},
	}
}

// FromFlags builds the recorder the -flight flags ask for and binds it to
// the run's observer, growing the observer when the other flags alone did
// not create the surfaces the recorder needs: a tracer feeds the ring (a
// ring-only tracer is created when -trace was not given), and a registry
// backs the metrics snapshots. Returns the observer to use (never nil when
// the recorder is on) and the recorder (nil when -flight off).
func FromFlags(f *obs.Flags, label string, ob *obs.Observer) (*obs.Observer, *Recorder) {
	if !f.FlightEnabled() {
		return ob, nil
	}
	rec := New(Options{
		Dir:          f.FlightDir(),
		Label:        label,
		RingEvents:   f.FlightEvents,
		WindowCycles: f.FlightWindow,
	})
	if ob == nil {
		ob = &obs.Observer{}
	}
	if ob.Tracer != nil {
		ob.Tracer.SetRing(rec.ring)
	} else {
		tr := obs.NewRingTracer(obs.AllComponents(), 1)
		tr.SetRing(rec.ring) // share the recorder's ring, not the stub's
		ob.Tracer = tr
	}
	if ob.Registry == nil {
		ob.Registry = obs.NewRegistry()
	}
	rec.reg = ob.Registry
	rec.attr = ob.Attr
	return ob, rec
}

// Ring returns the recorder's event ring.
func (r *Recorder) Ring() *obs.EventRing {
	if r == nil {
		return nil
	}
	return r.ring
}

// SetCollector attaches the run's latency collector: its in-flight table
// joins dumps, and its interval burn rates feed the SLO trigger.
func (r *Recorder) SetCollector(c *reqtrace.Collector) {
	if r != nil {
		r.coll = c
	}
}

// SetSchedule arms the fault-window trigger: entering any scheduled window
// dumps once, tagged with the fault kind.
func (r *Recorder) SetSchedule(s *fault.Schedule) {
	if r == nil || s == nil {
		return
	}
	r.windows = append([]fault.Event(nil), s.Events...)
	sort.SliceStable(r.windows, func(i, j int) bool { return r.windows[i].At < r.windows[j].At })
	r.nextWin = 0
}

// SetInspector connects the -inspect server: the recorder publishes its
// status as the /flight page and honors /flight/dump requests at ticks.
func (r *Recorder) SetInspector(in *obs.Inspector) {
	if r != nil {
		r.insp = in
		r.publish(0)
	}
}

// Tick advances the recorder to simulated time now: takes due metrics
// snapshots, fires due triggers, and honors pending manual dump requests.
// The simulation thread calls it at slice boundaries.
func (r *Recorder) Tick(now uint64) {
	if r == nil {
		return
	}
	dirty := false
	if r.reg != nil && now >= r.nextSnap {
		r.pushSnap(now)
		for r.nextSnap <= now {
			r.nextSnap += r.opt.SnapEvery
		}
		dirty = true
	}
	for r.nextWin < len(r.windows) && now >= r.windows[r.nextWin].At {
		w := r.windows[r.nextWin]
		r.nextWin++
		r.dump(now, "fault-"+w.Kind.String(),
			fmt.Sprintf("entered scheduled %s window [%d, %d) magnitude %g", w.Kind, w.At, w.End(), w.Magnitude))
		dirty = true
	}
	if r.coll != nil && r.opt.BurnThreshold > 0 {
		done := r.coll.CompletedBins(now)
		for b := r.lastBin; b < done; b++ {
			burn := r.coll.BinBurn(b)
			if burn < r.opt.BurnThreshold {
				continue
			}
			// One burn dump per window, not one per hot interval: a storm
			// spanning many intervals is one incident.
			if r.burnDumped && now < r.lastBurnDump+r.opt.WindowCycles {
				continue
			}
			r.burnDumped, r.lastBurnDump = true, now
			r.dump(now, "slo-burn", fmt.Sprintf("interval %d burn rate %.1fx budget", b, burn))
			dirty = true
		}
		r.lastBin = done
	}
	if r.insp.TakeDumpRequest() {
		r.dump(now, "manual", "/flight/dump request")
		dirty = true
	}
	if dirty {
		r.publish(now)
	}
}

// Watchdog dumps once for a tripped deadlock/stall watchdog; report is the
// watchdog's rendered diagnostic.
func (r *Recorder) Watchdog(cycle uint64, report string) {
	if r == nil || r.wdDumped {
		return
	}
	r.wdDumped = true
	r.dump(cycle, "watchdog", report)
	r.publish(cycle)
}

// Brownout reports the current brown-out shed level; an escalation past
// every previously seen level dumps, tagged with the step.
func (r *Recorder) Brownout(now uint64, level int) {
	if r == nil || level <= r.brownLevel {
		return
	}
	prev := r.brownLevel
	r.brownLevel = level
	r.dump(now, "brownout", fmt.Sprintf("shed level escalated %d -> %d", prev, level))
	r.publish(now)
}

// DumpNow writes a bundle immediately with the given trigger tag.
func (r *Recorder) DumpNow(now uint64, trigger, reason string) {
	if r == nil {
		return
	}
	r.dump(now, trigger, reason)
	r.publish(now)
}

// Dumps lists the bundles written so far.
func (r *Recorder) Dumps() []DumpInfo {
	if r == nil {
		return nil
	}
	return r.dumps
}

// Err returns the first dump-write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

// Summary renders a one-line end-of-run summary, or "" when nothing
// happened (no dumps, no errors) — the silent common case.
func (r *Recorder) Summary() string {
	if r == nil || (len(r.dumps) == 0 && r.skipped == 0 && r.err == nil) {
		return ""
	}
	var parts []string
	for _, d := range r.dumps {
		parts = append(parts, fmt.Sprintf("%s@%d -> %s", d.Trigger, d.Cycle, d.Path))
	}
	s := fmt.Sprintf("flight recorder: %d dump(s)", len(r.dumps))
	if len(parts) > 0 {
		s += ": " + strings.Join(parts, ", ")
	}
	if r.skipped > 0 {
		s += fmt.Sprintf(" (%d trigger(s) past the %d-dump cap not written)", r.skipped, r.opt.MaxDumps)
	}
	if r.err != nil {
		s += fmt.Sprintf(" (write error: %v)", r.err)
	}
	return s
}

func (r *Recorder) pushSnap(cycle uint64) {
	r.snaps = append(r.snaps, regSnap{cycle: cycle, snap: r.reg.Snapshot()})
	if len(r.snaps) > r.opt.SnapKeep {
		r.snaps = r.snaps[len(r.snaps)-r.opt.SnapKeep:]
	}
}

// ringStats summarizes the ring's accounting in bundles and /flight.
type ringStats struct {
	Events  int    `json:"events"`
	Cap     int    `json:"cap"`
	Evicted uint64 `json:"evicted"`
	Total   uint64 `json:"total"`
}

// bundle is the dump's JSON shape. Every field derives from simulated
// state, so dumps are deterministic for a given seed and trigger.
type bundle struct {
	Label        string          `json:"label"`
	Seq          int             `json:"seq"`
	Trigger      string          `json:"trigger"`
	Reason       string          `json:"reason,omitempty"`
	Cycle        uint64          `json:"cycle"`
	WindowStart  uint64          `json:"window_start_cycle"`
	WindowCycles uint64          `json:"window_cycles"`
	Ring         ringStats       `json:"ring"`
	Trace        json.RawMessage `json:"trace,omitempty"`
	// Metrics is the full registry snapshot at the dump; MetricsDelta the
	// change since the newest kept periodic snapshot, DeltaCycles back.
	Metrics      string                  `json:"metrics,omitempty"`
	MetricsDelta string                  `json:"metrics_delta,omitempty"`
	DeltaCycles  uint64                  `json:"metrics_delta_cycles,omitempty"`
	InFlight     []reqtrace.InFlightSpan `json:"inflight,omitempty"`
	AttrTop      json.RawMessage         `json:"attr_top,omitempty"`
}

func (r *Recorder) dump(now uint64, trigger, reason string) {
	if len(r.dumps) >= r.opt.MaxDumps {
		r.skipped++
		return
	}
	winStart := uint64(0)
	if now > r.opt.WindowCycles {
		winStart = now - r.opt.WindowCycles
	}
	b := bundle{
		Label:        r.opt.Label,
		Seq:          len(r.dumps),
		Trigger:      trigger,
		Reason:       reason,
		Cycle:        now,
		WindowStart:  winStart,
		WindowCycles: r.opt.WindowCycles,
		Ring: ringStats{
			Events: r.ring.Len(), Cap: r.ring.Cap(),
			Evicted: r.ring.Evicted(), Total: r.ring.Total(),
		},
		Trace:    json.RawMessage(obs.ChromeTraceEvents(r.windowEvents(winStart, now), r.procNames)),
		InFlight: r.coll.InFlightTable(now),
	}
	if r.reg != nil {
		cur := r.reg.Snapshot()
		b.Metrics = snapText(cur)
		if n := len(r.snaps); n > 0 {
			prev := r.snaps[n-1]
			b.MetricsDelta = snapText(cur.Delta(prev.snap))
			b.DeltaCycles = now - prev.cycle
		}
	}
	if r.attr != nil {
		if buf, err := json.Marshal(r.attr.BuildReport(10).HotLines); err == nil {
			b.AttrTop = buf
		}
	}

	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		r.fail(err)
		return
	}
	buf = append(buf, '\n')
	path := filepath.Join(r.opt.Dir, fmt.Sprintf("%s-flight-%03d-%s.json", r.opt.Label, len(r.dumps), safeName(trigger)))
	if err := obs.AtomicWriteFile(path, buf, 0o644); err != nil {
		r.fail(err)
		return
	}
	r.dumps = append(r.dumps, DumpInfo{Seq: len(r.dumps), Trigger: trigger, Cycle: now, Path: path})
	fmt.Fprintf(os.Stderr, "flightrec: wrote %s (trigger %s, cycle %d)\n", path, trigger, now)
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// windowEvents returns the ring events overlapping [winStart, now], with
// every scheduled fault window that overlaps it re-synthesized as a span —
// the windows were emitted on the trace at attach time and may long since
// have been evicted from the ring, but a post-mortem must always show which
// faults were active.
func (r *Recorder) windowEvents(winStart, now uint64) []obs.Event {
	var out []obs.Event
	for _, w := range r.windows {
		if w.End() <= winStart || w.At > now {
			continue
		}
		end := w.End()
		if end > now {
			end = now
		}
		out = append(out, obs.Event{
			Name: "fault.window", Comp: obs.CompFault, Phase: 'X', Tid: -1,
			Time: w.At, Dur: end - w.At,
			Args: []obs.Arg{{Key: "kind", Val: w.Kind.String()}, {Key: "magnitude", Val: w.Magnitude}},
		})
	}
	for _, e := range r.ring.Events() {
		if e.Time+e.Dur < winStart || e.Time > now {
			continue
		}
		out = append(out, e)
	}
	return out
}

// statusDoc is the /flight page document.
type statusDoc struct {
	Label     string     `json:"label"`
	Cycle     uint64     `json:"cycle"`
	Ring      ringStats  `json:"ring"`
	Snapshots int        `json:"snapshots_kept"`
	Dumps     []DumpInfo `json:"dumps"`
	Skipped   int        `json:"dumps_skipped,omitempty"`
}

func (r *Recorder) publish(now uint64) {
	if r.insp == nil {
		return
	}
	doc := statusDoc{
		Label: r.opt.Label,
		Cycle: now,
		Ring: ringStats{
			Events: r.ring.Len(), Cap: r.ring.Cap(),
			Evicted: r.ring.Evicted(), Total: r.ring.Total(),
		},
		Snapshots: len(r.snaps),
		Dumps:     r.dumps,
		Skipped:   r.skipped,
	}
	if doc.Dumps == nil {
		doc.Dumps = []DumpInfo{}
	}
	if buf, err := json.MarshalIndent(doc, "", "  "); err == nil {
		r.insp.SetFlight(append(buf, '\n'))
	}
}

// snapText renders a snapshot in the registry's aligned text form.
func snapText(s *obs.Snapshot) string {
	var b strings.Builder
	s.WriteTo(&b)
	return b.String()
}

// safeName keeps trigger tags filesystem-friendly.
func safeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
