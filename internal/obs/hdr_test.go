package obs

import (
	"sort"
	"testing"

	"repro/internal/simrand"
)

// oracleQuantile returns the exact order statistic the histogram's Quantile
// bounds: the ceil(q*n)-th smallest sample.
func oracleQuantile(sorted []uint64, q float64) uint64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// checkAgainstOracle verifies the precision contract for one sample set:
// every quantile is an upper bound on the true order statistic, within a
// relative error of 2^-hdrSubBits, exact in the linear range, and max is
// exact.
func checkAgainstOracle(t *testing.T, name string, samples []uint64) {
	t.Helper()
	var h HDR
	for _, v := range samples {
		h.Record(v)
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != uint64(len(samples)) {
		t.Fatalf("%s: count = %d, want %d", name, h.Count(), len(samples))
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("%s: max = %d, want %d", name, h.Max(), sorted[len(sorted)-1])
	}
	if h.Min() != sorted[0] {
		t.Fatalf("%s: min = %d, want %d", name, h.Min(), sorted[0])
	}
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0} {
		got := h.Quantile(q)
		want := oracleQuantile(sorted, q)
		if got < want {
			t.Errorf("%s: Quantile(%v) = %d below oracle %d", name, q, got, want)
		}
		// Upper bound: within one sub-bucket of the oracle, and exact in the
		// linear range.
		slack := want >> hdrSubBits
		if got > want+slack {
			t.Errorf("%s: Quantile(%v) = %d exceeds oracle %d by more than %d", name, q, got, want, slack)
		}
		if want < 1<<hdrSubBits && got != want {
			t.Errorf("%s: Quantile(%v) = %d, want exact %d in linear range", name, q, got, want)
		}
	}
}

func TestHDRQuantileVsOracle(t *testing.T) {
	// Sample sets chosen to straddle bucket boundaries: exact powers of two,
	// the values just around them, linear-range values, and wide spreads.
	sets := map[string][]uint64{
		"linear":     {0, 1, 2, 3, 5, 8, 13, 21, 31},
		"boundaries": {31, 32, 33, 63, 64, 65, 127, 128, 129, 1023, 1024, 1025},
		"powers":     {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1 << 20, 1 << 40},
		"identical":  {40_000, 40_000, 40_000, 40_000},
		"single":     {123_456_789},
	}
	for name, s := range sets {
		checkAgainstOracle(t, name, s)
	}

	// Randomized sweep over several magnitudes, deterministic seed.
	rng := simrand.New(42)
	for _, scale := range []uint64{1 << 6, 1 << 12, 1 << 20, 1 << 32} {
		samples := make([]uint64, 0, 2000)
		for i := 0; i < 2000; i++ {
			samples = append(samples, uint64(rng.Int63n(int64(scale))))
		}
		checkAgainstOracle(t, "random", samples)
	}
}

func TestHDRBucketEdges(t *testing.T) {
	// Every value maps into a bucket whose upper edge covers it, and bucket
	// indices are monotone across boundaries.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 65, 1<<20 - 1, 1 << 20, 1<<20 + 1, 1<<63 - 1, 1 << 63}
	for _, v := range vals {
		b := hdrBucket(v)
		if edge := hdrUpperEdge(b); v > edge {
			t.Errorf("value %d maps to bucket %d with upper edge %d", v, b, edge)
		}
		if v > 0 {
			if pb := hdrBucket(v - 1); pb > b {
				t.Errorf("bucket index not monotone at %d: %d then %d", v, pb, b)
			}
		}
	}
	// Relative width bound: bucket width / lower edge <= 2^-hdrSubBits.
	for _, v := range []uint64{1 << 10, 1 << 30, 1 << 50} {
		b := hdrBucket(v)
		lo, hi := v, hdrUpperEdge(b)
		if width := hi - lo; width<<hdrSubBits >= lo+lo {
			t.Errorf("bucket at %d too wide: [%d,%d]", v, lo, hi)
		}
	}
}

func TestHDRMergeAssociativeCommutative(t *testing.T) {
	rng := simrand.New(7)
	mk := func(n int, scale uint64) *HDR {
		var h HDR
		for i := 0; i < n; i++ {
			h.Record(uint64(rng.Int63n(int64(scale))))
		}
		return &h
	}
	// Three "nodes" of a cluster with different latency profiles.
	a, b, c := mk(500, 1<<16), mk(300, 1<<24), mk(700, 1<<12)

	// (a+b)+c
	ab := a.Clone()
	ab.Merge(b)
	abc1 := ab.Clone()
	abc1.Merge(c)
	// a+(b+c)
	bc := b.Clone()
	bc.Merge(c)
	abc2 := a.Clone()
	abc2.Merge(bc)
	// c+b+a
	abc3 := c.Clone()
	abc3.Merge(b)
	abc3.Merge(a)

	for _, o := range []*HDR{abc2, abc3} {
		if o.Count() != abc1.Count() || o.Sum() != abc1.Sum() || o.Min() != abc1.Min() || o.Max() != abc1.Max() {
			t.Fatalf("merge moments differ: %+v vs %+v", o.Summarize(), abc1.Summarize())
		}
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999, 1} {
			if o.Quantile(q) != abc1.Quantile(q) {
				t.Fatalf("merge quantile %v differs: %d vs %d", q, o.Quantile(q), abc1.Quantile(q))
			}
		}
	}

	// Merging equals recording everything into one histogram.
	if abc1.Quantile(0.99) == 0 {
		t.Fatal("degenerate test: p99 is zero")
	}
	var empty HDR
	empty.Merge(a)
	if empty.Count() != a.Count() || empty.Quantile(0.5) != a.Quantile(0.5) {
		t.Fatal("merge into empty histogram does not reproduce the source")
	}
}

func TestHDRCountLE(t *testing.T) {
	var h HDR
	for v := uint64(0); v < 32; v++ {
		h.Record(v)
	}
	// Linear range is exact.
	if got := h.CountLE(10); got != 11 {
		t.Fatalf("CountLE(10) = %d, want 11", got)
	}
	h.Record(1_000_000)
	h.Record(2_000_000)
	if got := h.CountLE(31); got != 32 {
		t.Fatalf("CountLE(31) = %d, want 32", got)
	}
	if got := h.CountLE(3_000_000); got != 34 {
		t.Fatalf("CountLE(3_000_000) = %d, want 34", got)
	}
}

func TestHDRReset(t *testing.T) {
	var h HDR
	h.Record(100)
	h.Record(200_000)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset histogram not empty: %+v", h.Summarize())
	}
	h.Record(7)
	if h.Quantile(1) != 7 || h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func BenchmarkHDRRecord(b *testing.B) {
	rng := simrand.New(1)
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1 << 28))
	}
	var h HDR
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(vals[i&4095])
	}
}

func BenchmarkHDRMerge(b *testing.B) {
	rng := simrand.New(2)
	var src HDR
	for i := 0; i < 10_000; i++ {
		src.Record(uint64(rng.Int63n(1 << 30)))
	}
	var dst HDR
	dst.Record(1) // pre-size both sides
	dst.Merge(&src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(&src)
	}
}
