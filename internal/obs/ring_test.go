package obs

import "testing"

// TestEventRingEviction checks the bounded ring's accounting: pushes past
// capacity evict oldest-first, Events stays in time order, and the
// evicted/total counters reconcile with Len.
func TestEventRingEviction(t *testing.T) {
	r := NewEventRing(4)
	for i := uint64(0); i < 3; i++ {
		r.Push(Event{Name: "e", Comp: CompWorkload, Phase: 'i', Time: i})
	}
	if r.Len() != 3 || r.Evicted() != 0 || r.Total() != 3 {
		t.Fatalf("pre-wrap: len %d evicted %d total %d, want 3 0 3", r.Len(), r.Evicted(), r.Total())
	}
	for i := uint64(3); i < 10; i++ {
		r.Push(Event{Name: "e", Comp: CompWorkload, Phase: 'i', Time: i})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("post-wrap: len %d cap %d, want 4 4", r.Len(), r.Cap())
	}
	if r.Evicted() != 6 || r.Total() != 10 {
		t.Fatalf("post-wrap: evicted %d total %d, want 6 10", r.Evicted(), r.Total())
	}
	if r.Total() != r.Evicted()+uint64(r.Len()) {
		t.Fatalf("accounting broken: total %d != evicted %d + len %d", r.Total(), r.Evicted(), r.Len())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Time != want {
			t.Fatalf("Events[%d].Time = %d, want %d (oldest-first survivors)", i, e.Time, want)
		}
	}
}

func TestEventRingMinCapacityAndNil(t *testing.T) {
	r := NewEventRing(0)
	if r.Cap() != 1 {
		t.Fatalf("zero capacity clamps to 1, got %d", r.Cap())
	}
	r.Push(Event{Time: 1})
	r.Push(Event{Time: 2})
	if r.Len() != 1 || r.Events()[0].Time != 2 {
		t.Fatalf("1-slot ring keeps newest: len %d events %v", r.Len(), r.Events())
	}

	var nilRing *EventRing
	nilRing.Push(Event{})
	if nilRing.Len() != 0 || nilRing.Cap() != 0 || nilRing.Evicted() != 0 || nilRing.Total() != 0 || nilRing.Events() != nil {
		t.Fatal("nil ring must be inert")
	}
}

// TestRingTracerBypassesBuffer checks the ring-only tracer mode: events land
// in the ring without growing (or dropping from) the bounded event buffer.
func TestRingTracerBypassesBuffer(t *testing.T) {
	tr := NewRingTracer(AllComponents(), 8)
	for i := uint64(0); i < 20; i++ {
		tr.Instant(CompWorkload, "tick", 0, i)
	}
	if tr.Len() != 0 {
		t.Fatalf("ring-only tracer buffered %d events, want 0", tr.Len())
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring-only tracer counted %d drops, want 0 (the ring evicts instead)", tr.Dropped())
	}
	r := tr.Ring()
	if r.Len() != 8 || r.Evicted() != 12 {
		t.Fatalf("ring len %d evicted %d, want 8 12", r.Len(), r.Evicted())
	}
}

// TestTracerSharedRing checks a full tracer with an attached ring: the
// bounded artifact buffer and the flight ring both see the events, and
// buffer overflow increments dropped without touching the ring.
func TestTracerSharedRing(t *testing.T) {
	tr := NewTracer(AllComponents())
	tr.SetMaxEvents(4)
	ring := NewEventRing(64)
	tr.SetRing(ring)
	for i := uint64(0); i < 10; i++ {
		tr.Instant(CompWorkload, "tick", 0, i)
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("buffer len %d dropped %d, want 4 6", tr.Len(), tr.Dropped())
	}
	if ring.Total() != 10 {
		t.Fatalf("ring saw %d events, want all 10 (ring is upstream of the buffer cap)", ring.Total())
	}
}
