package cluster

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/simrand"
)

// partitioned returns a coordinator with a partition (or crash) window on
// the database peer, over the standard two-machine rig.
func partitioned(t *testing.T, calls int, kind fault.Kind, at, dur uint64) (*Coordinator, func() uint64) {
	t.Helper()
	coord, app, _, _ := rig(t, calls)
	s := &fault.Schedule{Events: []fault.Event{{Kind: kind, At: at, Duration: dur, Peer: 1}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	coord.SetFaults(fault.NewInjector(s, simrand.New(9)), 1, 0)
	return coord, func() uint64 { return app.Results().BusinessOps }
}

// TestPartitionHealConservation drives calls through a mid-run partition
// window and checks the books balance after the heal: every request is
// either replied, dropped, or still in flight — none vanish — and every
// caller eventually completes its operation (the dropped ones via their
// timeout wake).
func TestPartitionHealConservation(t *testing.T) {
	const calls = 60
	coord, ops := partitioned(t, calls, fault.Partition, 2_000_000, 5_000_000)
	coord.Run(80_000_000)

	if coord.Requests != calls {
		t.Fatalf("requests = %d, want %d", coord.Requests, calls)
	}
	if coord.Dropped == 0 {
		t.Fatal("partition window dropped nothing")
	}
	if coord.Replies == 0 {
		t.Fatal("no calls survived outside the partition")
	}
	if coord.Replies+coord.Dropped+coord.InFlight() != coord.Requests {
		t.Fatalf("accounting leak: %d replies + %d dropped + %d in flight != %d requests",
			coord.Replies, coord.Dropped, coord.InFlight(), coord.Requests)
	}
	if coord.InFlight() != 0 {
		t.Fatalf("%d requests still in flight at quiescence", coord.InFlight())
	}
	// Dropped callers resume on their timeout: every operation completes.
	if got := ops(); got != calls {
		t.Fatalf("caller completed %d ops, want %d", got, calls)
	}
}

// TestCrashFastFailsQuickly checks a crashed node answers with a fast
// connection-refused (one wire round trip), not a full timeout: the
// crash-window run finishes all calls well before the partition-window run
// would, and still conserves throughput accounting.
func TestCrashFastFailsQuickly(t *testing.T) {
	const calls = 40
	coord, ops := partitioned(t, calls, fault.NodeCrash, 1_000_000, 8_000_000)
	coord.Run(60_000_000)
	if coord.Dropped == 0 {
		t.Fatal("crash window dropped nothing")
	}
	if coord.Replies+coord.Dropped != coord.Requests {
		t.Fatalf("accounting leak: %d + %d != %d", coord.Replies, coord.Dropped, coord.Requests)
	}
	if got := ops(); got != calls {
		t.Fatalf("caller completed %d ops, want %d", got, calls)
	}
	// Fast-fail wakes after 2 wire latencies (~25k cycles); a timeout wake
	// would be 400k. With the crash covering ~20+ calls, the difference in
	// total simulated time is large: all calls must finish inside the
	// window + small change. Conservative bound: every drop cost < 100k.
	if coord.Dropped < 20 {
		t.Fatalf("crash window too short to observe fast-fail pacing (%d drops)", coord.Dropped)
	}
}

// TestPerWindowConservationGroundTruth checks the drop-path accounting at
// EVERY lockstep window boundary, not just at quiescence, against the
// database server's own state: the coordinator's in-flight count must equal
// exactly the requests the server holds (queued + claimed by workers).
// Partition, packet-loss, and crash windows all run mid-stream, so both
// drop legs are exercised — requests lost on the way out and replies lost
// on the way back after the database did the work.
func TestPerWindowConservationGroundTruth(t *testing.T) {
	const calls = 200
	coord, app, _, srv := rig(t, calls)
	s := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Partition, At: 2_000_000, Duration: 4_000_000, Peer: 1},
		{Kind: fault.PacketLoss, At: 7_000_000, Duration: 5_000_000, Peer: 1, Magnitude: 0.5},
		{Kind: fault.NodeCrash, At: 14_000_000, Duration: 3_000_000, Peer: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	coord.SetFaults(fault.NewInjector(s, simrand.New(9)), 1, 0)

	windows := 0
	coord.OnWindow = func(tw uint64) {
		windows++
		if coord.Replies+coord.Dropped+coord.InFlight() != coord.Requests {
			t.Fatalf("window %d: %d replies + %d dropped + %d in flight != %d requests",
				tw, coord.Replies, coord.Dropped, coord.InFlight(), coord.Requests)
		}
		if got, want := coord.InFlight(), uint64(srv.QueueDepth()+srv.InService()); got != want {
			t.Fatalf("window %d: coordinator counts %d in flight, server holds %d (%d queued + %d in service)",
				tw, got, want, srv.QueueDepth(), srv.InService())
		}
	}
	coord.Run(90_000_000)

	if windows == 0 {
		t.Fatal("OnWindow never fired")
	}
	if coord.Dropped == 0 || coord.Replies == 0 {
		t.Fatalf("schedule not exercised: %d dropped, %d replied", coord.Dropped, coord.Replies)
	}
	if coord.DroppedReplies == 0 {
		t.Fatal("no reply was lost in flight: the reply-drop path never ran")
	}
	if coord.DroppedReplies == coord.Dropped {
		t.Fatal("no request was lost on the way out: the send-drop path never ran")
	}
	if coord.InFlight() != 0 {
		t.Fatalf("%d requests leaked at quiescence", coord.InFlight())
	}
	// Every dropped caller resumed via its timeout wake and finished.
	if got := app.Results().BusinessOps; got != calls {
		t.Fatalf("caller completed %d ops, want %d", got, calls)
	}
}

// TestFaultedCoSimDeterministic checks the same seed and schedule
// reproduce identical fault accounting.
func TestFaultedCoSimDeterministic(t *testing.T) {
	run := func() [3]uint64 {
		coord, ops := partitioned(t, 30, fault.Partition, 1_500_000, 4_000_000)
		coord.Run(60_000_000)
		return [3]uint64{coord.Replies, coord.Dropped, ops()}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("faulted co-simulation not deterministic: %v != %v", a, b)
	}
}

// TestNoFaultsPathUnchanged checks a nil injector leaves the coordinator's
// behavior identical to an un-faulted one.
func TestNoFaultsPathUnchanged(t *testing.T) {
	plain, appPlain, _, _ := rig(t, 10)
	plain.Run(40_000_000)

	armed, appArmed, _, _ := rig(t, 10)
	armed.SetFaults(nil, 1, 0)
	armed.Run(40_000_000)

	if plain.Replies != armed.Replies || armed.Dropped != 0 {
		t.Fatalf("nil injector changed behavior: %d/%d vs %d/%d+%d",
			plain.Requests, plain.Replies, armed.Requests, armed.Replies, armed.Dropped)
	}
	if appPlain.Results().BusinessOps != appArmed.Results().BusinessOps {
		t.Fatal("nil injector changed completed ops")
	}
}
