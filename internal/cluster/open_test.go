package cluster

import (
	"bytes"
	"testing"

	"repro/internal/arrival"
	"repro/internal/fault"
	"repro/internal/obs/reqtrace"
	"repro/internal/simrand"
)

// openRun builds and runs a topology, returning the sim.
func openRun(t *testing.T, cfg OpenConfig, seed, horizon uint64, inj *fault.Injector, coll *reqtrace.Collector) *OpenSim {
	t.Helper()
	s, err := NewOpen(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(inj)
	s.SetCollector(coll)
	s.Run(horizon)
	return s
}

// withRate returns cfg offered at mult times its analytic capacity.
func withRate(cfg OpenConfig, mult float64) OpenConfig {
	cfg.Arrival.Rate = mult * cfg.Capacity()
	return cfg
}

func TestParseLBPolicyRoundTrip(t *testing.T) {
	for _, p := range []LBPolicy{RoundRobin, LeastInFlight, Weighted} {
		got, err := ParseLBPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseLBPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseLBPolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestOpenConfigValidate(t *testing.T) {
	if err := DefaultOpenConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultOpenConfig()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes validated")
	}
	bad = DefaultOpenConfig()
	bad.Mix = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty mix validated")
	}
	bad = DefaultOpenConfig()
	bad.ClosedClients = 5
	if err := bad.Validate(); err == nil {
		t.Error("closed mode without think time validated")
	}
}

func TestOpenCapacityIsSane(t *testing.T) {
	cfg := DefaultOpenConfig()
	cap := cfg.Capacity()
	if cap <= 0 {
		t.Fatalf("capacity %g", cap)
	}
	// Doubling the app tier must raise capacity while it is the bottleneck.
	big := cfg
	big.Nodes *= 2
	if big.Capacity() <= cap {
		t.Errorf("capacity did not grow with nodes: %g -> %g", cap, big.Capacity())
	}
}

// TestOpenDeterminism: same seed, byte-identical latency report and equal
// stats; different seed diverges.
func TestOpenDeterminism(t *testing.T) {
	const horizon = 100_000_000
	cfg := withRate(DefaultOpenConfig(), 0.8)
	run := func(seed uint64) (OpenStats, []byte) {
		coll := reqtrace.NewCollector(reqtrace.Options{})
		s := openRun(t, cfg, seed, horizon, nil, coll)
		return s.Stats, coll.ReportJSON()
	}
	st1, rep1 := run(42)
	st2, rep2 := run(42)
	if st1 != st2 {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", st1, st2)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("same seed, different latency report bytes")
	}
	st3, _ := run(43)
	if st1 == st3 {
		t.Fatal("different seeds produced identical stats")
	}
}

// TestOpenPassivity: attaching the collector must not change the engine's
// results (the observability contract).
func TestOpenPassivity(t *testing.T) {
	const horizon = 100_000_000
	cfg := withRate(DefaultOpenConfig(), 1.5)
	bare := openRun(t, cfg, 7, horizon, nil, nil)
	observed := openRun(t, cfg, 7, horizon, nil, reqtrace.NewCollector(reqtrace.Options{}))
	if bare.Stats != observed.Stats {
		t.Fatalf("collector perturbed the run:\n%+v\n%+v", bare.Stats, observed.Stats)
	}
	if bare.Now() != observed.Now() {
		t.Fatalf("collector perturbed the clock: %d vs %d", bare.Now(), observed.Now())
	}
}

// TestOpenConservation: at every tick and at the end,
// Offered == Shed + Completed + Failed + InFlight, and the drain leaves
// nothing in flight. Runs under a fault schedule to cover the drop paths.
func TestOpenConservation(t *testing.T) {
	const horizon = 200_000_000
	cfg := withRate(DefaultOpenConfig(), 2)
	sched := fault.Demo(20_000_000, 120_000_000)
	// Re-aim the demo's events at this topology's peers.
	for i := range sched.Events {
		if sched.Events[i].Peer != 0 {
			sched.Events[i].Peer = ShardPeer(0)
		}
	}
	checks := 0
	s, err := NewOpen(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(fault.NewInjector(sched, simrand.New(99)))
	s.SetTick(1_000_000, func(at uint64, sim *OpenSim) {
		checks++
		st := sim.Stats
		if st.Offered != st.Shed+st.Completed+st.Failed+sim.InFlight() {
			t.Fatalf("conservation broken at %d: %+v inflight=%d", at, st, sim.InFlight())
		}
	})
	s.Run(horizon)
	if checks < 100 {
		t.Fatalf("only %d tick checks ran", checks)
	}
	if s.InFlight() != 0 {
		t.Fatalf("drain left %d requests in flight: %+v", s.InFlight(), s.Stats)
	}
	if s.Stats.Offered == 0 || s.Stats.Completed == 0 {
		t.Fatalf("degenerate run: %+v", s.Stats)
	}
}

// TestOpenLowLoadHealthy: far below capacity nothing is shed, nothing is
// late, and goodput equals offered.
func TestOpenLowLoadHealthy(t *testing.T) {
	const horizon = 200_000_000
	cfg := withRate(DefaultOpenConfig(), 0.3)
	s := openRun(t, cfg, 3, horizon, nil, nil)
	st := s.Stats
	if st.Offered < 100 {
		t.Fatalf("too few requests to judge: %+v", st)
	}
	if st.Shed != 0 {
		t.Errorf("shed %d requests at 0.3x load", st.Shed)
	}
	if st.Failed != 0 {
		t.Errorf("failed %d requests at 0.3x load", st.Failed)
	}
	if st.Late > st.Completed/100 {
		t.Errorf("late %d of %d at 0.3x load", st.Late, st.Completed)
	}
}

// TestOpenOverloadControlsPreventCollapse is the headline acceptance: over
// a sweep of offered load, goodput with controls on stays within 10% of
// its peak even at 3x — no congestion collapse — while the naive baseline
// collapses at 3x (its completions are almost all past the client's
// deadline).
func TestOpenOverloadControlsPreventCollapse(t *testing.T) {
	const horizon = 250_000_000 // 1 simulated second of arrivals
	base := DefaultOpenConfig()

	mults := []float64{0.5, 1, 3}
	good := make([]float64, len(mults))
	peak := 0.0
	for i, m := range mults {
		s := openRun(t, withRate(base, m), 21, horizon, nil, nil)
		good[i] = float64(s.Stats.Good()) / horizon
		if good[i] > peak {
			peak = good[i]
		}
		if s.Stats.Late > s.Stats.Completed/20 {
			t.Errorf("controls on at %.1fx: %d of %d completions late",
				m, s.Stats.Late, s.Stats.Completed)
		}
	}
	at3x := good[len(good)-1]

	off := withRate(base, 3)
	off.Controls.Enabled = false
	sOff := openRun(t, off, 21, horizon, nil, nil)
	goodOff := float64(sOff.Stats.Good()) / horizon

	t.Logf("controls-on goodput %.3g / %.3g / %.3g (peak %.3g); controls-off at 3x: %.3g",
		good[0], good[1], good[2], peak, goodOff)
	if at3x < 0.9*peak {
		t.Errorf("congestion collapse with controls on: goodput %.3g at 3x vs peak %.3g", at3x, peak)
	}
	if goodOff > 0.5*at3x {
		t.Errorf("controls off did not collapse: %.3g vs %.3g with controls", goodOff, at3x)
	}
	if sOff.Stats.Late < sOff.Stats.Completed/2 {
		t.Errorf("naive baseline: expected most completions late, got %d of %d",
			sOff.Stats.Late, sOff.Stats.Completed)
	}
}

// TestOpenLBPoliciesSpreadLoad: least-in-flight balances admissions about
// evenly; weighted follows the configured weights.
func TestOpenLBPoliciesSpreadLoad(t *testing.T) {
	const horizon = 100_000_000
	cfg := withRate(DefaultOpenConfig(), 0.8)
	cfg.LB = LeastInFlight
	s := openRun(t, cfg, 5, horizon, nil, nil)
	snap := s.Snapshot(s.Now())
	var min, max uint64 = ^uint64(0), 0
	for _, n := range snap.Nodes {
		if n.Admitted < min {
			min = n.Admitted
		}
		if n.Admitted > max {
			max = n.Admitted
		}
	}
	if min == 0 || float64(max) > 1.3*float64(min) {
		t.Errorf("least-in-flight imbalance: min %d max %d", min, max)
	}

	// Low enough aggregate load that even the weight-4 node (which gets
	// half the traffic) stays below its own capacity.
	w := withRate(DefaultOpenConfig(), 0.3)
	w.LB = Weighted
	w.Weights = []float64{4, 2, 1, 1}
	sw := openRun(t, w, 5, horizon, nil, nil)
	ws := sw.Snapshot(sw.Now())
	if ws.Nodes[0].Admitted < 2*ws.Nodes[2].Admitted {
		t.Errorf("weighted lb ignored weights: %d vs %d admissions",
			ws.Nodes[0].Admitted, ws.Nodes[2].Admitted)
	}
}

// TestOpenNodeCrashRoutesAround: with one node crashed mid-run, the
// balancer routes around it and the run stays healthy at moderate load.
func TestOpenNodeCrashRoutesAround(t *testing.T) {
	const horizon = 200_000_000
	cfg := withRate(DefaultOpenConfig(), 0.5)
	sched := &fault.Schedule{Events: []fault.Event{{
		Kind: fault.NodeCrash, At: 50_000_000, Duration: 50_000_000, Peer: NodePeer(0),
	}}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	s := openRun(t, cfg, 9, horizon, fault.NewInjector(sched, nil), nil)
	st := s.Stats
	if st.ShedByCause[shedNoNode] != 0 {
		t.Errorf("requests saw no healthy node despite 3 survivors: %d", st.ShedByCause[shedNoNode])
	}
	if float64(st.Good()) < 0.9*float64(st.Offered) {
		t.Errorf("crash at 0.5x load hurt goodput too much: %d good of %d offered", st.Good(), st.Offered)
	}
}

// TestOpenShardCrashBreakerAndRetries: a crashed shard trips breakers and
// denies retries through the budget rather than amplifying.
func TestOpenShardCrashBreakerAndRetries(t *testing.T) {
	const horizon = 200_000_000
	cfg := withRate(DefaultOpenConfig(), 0.8)
	sched := &fault.Schedule{Events: []fault.Event{{
		Kind: fault.NodeCrash, At: 40_000_000, Duration: 100_000_000, Peer: ShardPeer(0),
	}}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	s := openRun(t, cfg, 13, horizon, fault.NewInjector(sched, nil), nil)
	st := s.Stats
	if st.FastFails == 0 {
		t.Error("no fast-fails despite a crashed shard")
	}
	if st.BreakerHits == 0 {
		t.Error("breakers never opened against a shard down for 100M cycles")
	}
	if st.Failed == 0 {
		t.Error("no failed requests despite half the keyspace being down")
	}
	// The surviving shard's keyspace keeps completing.
	if st.Completed == 0 || st.Completed < st.Failed {
		t.Errorf("survivable crash killed everything: %+v", st)
	}
}

// TestOpenClosedLoopMode: the closed-loop population self-throttles — no
// shedding, goodput equals offered, and the run drains clean.
func TestOpenClosedLoopMode(t *testing.T) {
	const horizon = 200_000_000
	cfg := DefaultOpenConfig()
	cfg.ClosedClients = 16
	cfg.ThinkCycles = 4_000_000
	s := openRun(t, cfg, 19, horizon, nil, nil)
	st := s.Stats
	if st.Offered < 100 {
		t.Fatalf("closed loop barely ran: %+v", st)
	}
	if st.Shed != 0 || st.Failed != 0 {
		t.Errorf("healthy closed loop shed/failed requests: %+v", st)
	}
	if s.InFlight() != 0 {
		t.Errorf("closed loop left %d in flight", s.InFlight())
	}
}

// TestOpenClosedEquivalenceAtLowLoad is the low-utilization equivalence
// check: at matched throughput far below capacity, open-arrival and
// closed-loop runs must report the same per-request phase decomposition
// (within tolerance) — the queueing discipline only matters under load.
func TestOpenClosedEquivalenceAtLowLoad(t *testing.T) {
	const horizon = 400_000_000
	closed := DefaultOpenConfig()
	closed.ClosedClients = 8
	closed.ThinkCycles = 8_000_000
	collC := reqtrace.NewCollector(reqtrace.Options{})
	sc := openRun(t, closed, 23, horizon, nil, collC)

	// Match the open arrival rate to the closed loop's realized throughput.
	rate := float64(sc.Stats.Offered) / float64(sc.Now())
	open := DefaultOpenConfig()
	open.Arrival = arrival.Config{Pattern: arrival.Poisson, Rate: rate}.Defaults()
	collO := reqtrace.NewCollector(reqtrace.Options{})
	so := openRun(t, open, 29, horizon, nil, collO)

	if so.Stats.Shed != 0 || sc.Stats.Shed != 0 {
		t.Fatalf("low-load runs shed work: open %+v closed %+v", so.Stats, sc.Stats)
	}
	repO, repC := collO.BuildReport(), collC.BuildReport()
	perReq := func(r *reqtrace.Report) map[string][3]float64 {
		out := make(map[string][3]float64)
		for _, c := range r.Classes {
			n := float64(c.Latency.Count)
			if n == 0 || c.Error {
				continue
			}
			out[c.Class] = [3]float64{
				float64(c.Phases.CPU) / n,
				float64(c.Phases.Net) / n,
				float64(c.Phases.DBService) / n,
			}
		}
		return out
	}
	po, pc := perReq(repO), perReq(repC)
	names := [3]string{"cpu", "net", "db_service"}
	for class, o := range po {
		c, ok := pc[class]
		if !ok {
			t.Errorf("class %q missing from closed-loop run", class)
			continue
		}
		for i := range o {
			lo, hi := o[i], c[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo == 0 || hi/lo > 1.15 {
				t.Errorf("class %q phase %s diverges: open %.0f vs closed %.0f cycles/req",
					class, names[i], o[i], c[i])
			}
		}
	}
}

// TestOpenSnapshotShape: snapshots expose every node and shard with
// coherent limiter state.
func TestOpenSnapshotShape(t *testing.T) {
	const horizon = 50_000_000
	cfg := withRate(DefaultOpenConfig(), 1)
	s := openRun(t, cfg, 31, horizon, nil, nil)
	snap := s.Snapshot(s.Now())
	if len(snap.Nodes) != cfg.Nodes || len(snap.Shards) != cfg.Shards {
		t.Fatalf("snapshot shape: %d nodes, %d shards", len(snap.Nodes), len(snap.Shards))
	}
	for _, sh := range snap.Shards {
		if sh.Limit <= 0 {
			t.Errorf("shard %d reports limit %.1f with controls on", sh.ID, sh.Limit)
		}
		if sh.Served == 0 {
			t.Errorf("shard %d served nothing", sh.ID)
		}
	}
}
