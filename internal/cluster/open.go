// open.go is the open-system face of the cluster package: N app-server
// nodes behind a load balancer over sharded database backends, fed by an
// open arrival process instead of a fixed population of closed-loop
// drivers.
//
// Where Coordinator co-simulates two full memory-system engines in
// lockstep, OpenSim is a discrete-event queueing model of the whole
// machine room — the level of detail at which overload behavior lives:
// bounded queues, load-balancer routing, per-backend concurrency limits,
// timeouts, retries, and client patience. Requests carry reqtrace spans,
// so goodput-vs-offered-load and p99-vs-load curves fall out of the same
// HDR/SLO pipeline as the closed-loop workloads.
//
// Determinism: every stochastic decision draws from streams derived from
// one seed, events are ordered by (time, insertion sequence), and the
// optional collector is passive — the same seed produces byte-identical
// results with observability on or off.
package cluster

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/db"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/obs/reqtrace"
	"repro/internal/simrand"
)

// Peer-id conventions for fault schedules aimed at the open topology:
// shard k is peer ShardPeerBase+k, node i is peer NodePeerBase+i.
const (
	ShardPeerBase uint8 = 1
	NodePeerBase  uint8 = 100
)

// ShardPeer returns the fault-schedule peer id of shard k.
func ShardPeer(k int) uint8 { return ShardPeerBase + uint8(k) }

// NodePeer returns the fault-schedule peer id of node i.
func NodePeer(i int) uint8 { return NodePeerBase + uint8(i) }

// LBPolicy selects the load balancer's routing discipline.
type LBPolicy uint8

const (
	// RoundRobin rotates across healthy nodes.
	RoundRobin LBPolicy = iota
	// LeastInFlight routes to the healthy node with the fewest queued plus
	// in-service requests.
	LeastInFlight
	// Weighted is smooth weighted round-robin over Config.Weights.
	Weighted
)

// String names the policy as accepted by ParseLBPolicy.
func (p LBPolicy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case LeastInFlight:
		return "least"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("LBPolicy(%d)", uint8(p))
	}
}

// ParseLBPolicy parses rr|least|weighted.
func ParseLBPolicy(s string) (LBPolicy, error) {
	switch s {
	case "rr":
		return RoundRobin, nil
	case "least":
		return LeastInFlight, nil
	case "weighted":
		return Weighted, nil
	}
	return 0, fmt.Errorf("cluster: unknown lb policy %q (want rr|least|weighted)", s)
}

// WorkClass is one entry of the request mix.
type WorkClass struct {
	Name   string
	Weight float64 // mix fraction (normalized over the mix)
	// Priority orders brown-out shedding: 0 is revenue-critical and never
	// shed by degradation; higher numbers shed earlier.
	Priority int
	// CPUCycles is the mean app-server compute per request.
	CPUCycles uint64
	// DBCalls is the number of synchronous shard round trips.
	DBCalls int
	// Request/response sizes on the client and shard wires.
	ReqBytes, RespBytes     uint32
	DBReqBytes, DBRespBytes uint32
}

// DefaultMix is a three-class e-commerce mix: critical orders, bulk
// browsing, and optional recommendations (the first brown-out victim).
func DefaultMix() []WorkClass {
	return []WorkClass{
		{Name: "order", Weight: 0.3, Priority: 0, CPUCycles: 150_000, DBCalls: 3,
			ReqBytes: 512, RespBytes: 2048, DBReqBytes: 256, DBRespBytes: 1024},
		{Name: "browse", Weight: 0.5, Priority: 1, CPUCycles: 75_000, DBCalls: 1,
			ReqBytes: 256, RespBytes: 4096, DBReqBytes: 128, DBRespBytes: 1024},
		{Name: "recommend", Weight: 0.2, Priority: 2, CPUCycles: 250_000, DBCalls: 2,
			ReqBytes: 256, RespBytes: 2048, DBReqBytes: 256, DBRespBytes: 1024},
	}
}

// Controls bundles the adaptive overload controllers. Enabled=false is the
// naive baseline: unbounded-ish queues, no queue-delay admission, no
// concurrency limit, no retry budget, no degradation — timeouts and
// retries only, the configuration that collapses under overload.
type Controls struct {
	Enabled bool
	CoDel   fault.CoDelConfig
	AIMD    fault.AIMDConfig
	Retry   fault.RetryBudgetConfig
	Brown   fault.BrownoutConfig
}

// DefaultControls returns the controllers at their package defaults,
// enabled.
func DefaultControls() Controls {
	return Controls{
		Enabled: true,
		CoDel:   fault.DefaultCoDelConfig(),
		AIMD:    fault.DefaultAIMDConfig(),
		Retry:   fault.DefaultRetryBudgetConfig(),
		Brown:   fault.DefaultBrownoutConfig(),
	}
}

// OpenConfig parameterizes the open-system topology.
type OpenConfig struct {
	Nodes          int // app-server nodes
	WorkersPerNode int // service parallelism per node
	QueueCap       int // bounded per-node queue (ignored when controls off)
	Shards         int // database shards
	Shard          db.Config
	LB             LBPolicy
	Weights        []float64 // per-node weights for Weighted (nil = equal)
	Link           netsim.Link
	Mix            []WorkClass
	Policy         fault.Policy // timeout / retry / breaker parameters
	// DeadlineCycles is client patience: completions later than this after
	// the client sent the request are wasted work, excluded from goodput.
	DeadlineCycles uint64
	Controls       Controls

	// Arrival drives open-system traffic. It is ignored in closed-loop
	// mode (ClosedClients > 0), where each client sends, waits for its
	// response, thinks ~Exp(ThinkCycles), and sends again.
	Arrival       arrival.Config
	ClosedClients int
	ThinkCycles   float64
}

// uncappedQueue stands in for "unbounded" when controls are off; the naive
// baseline still cannot queue infinitely (memory), it just queues far past
// any useful deadline.
const uncappedQueue = 1 << 20

// DefaultOpenConfig is a 4-node / 2-shard machine room on the default
// Ethernet, with a 25 ms client deadline and controls on. The deadline
// clears the worst-case bounded-queue delay (~11 ms at QueueCap 64) plus
// service with room to spare, so with controls on a request the system
// chose to serve is a request the client still wants.
func DefaultOpenConfig() OpenConfig {
	return OpenConfig{
		Nodes:          4,
		WorkersPerNode: 8,
		QueueCap:       64,
		Shards:         2,
		Shard:          db.DefaultDatabaseConfig(),
		LB:             LeastInFlight,
		Link:           netsim.DefaultLink(),
		Mix:            DefaultMix(),
		Policy:         fault.DefaultPolicy(),
		DeadlineCycles: 6_250_000,
		Controls:       DefaultControls(),
		Arrival:        arrival.Config{Pattern: arrival.Poisson, Rate: 5e-5}.Defaults(),
	}
}

// Validate rejects topologies that cannot run.
func (c OpenConfig) Validate() error {
	if c.Nodes <= 0 || c.Nodes > 64 {
		return fmt.Errorf("cluster: nodes %d outside 1..64", c.Nodes)
	}
	if c.WorkersPerNode <= 0 {
		return fmt.Errorf("cluster: need at least one worker per node")
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("cluster: queue capacity must be positive")
	}
	if c.Shards <= 0 || c.Shards > 64 {
		return fmt.Errorf("cluster: shards %d outside 1..64", c.Shards)
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("cluster: empty work mix")
	}
	totalW := 0.0
	for _, m := range c.Mix {
		if m.Weight <= 0 || m.Name == "" {
			return fmt.Errorf("cluster: work class %q needs a name and positive weight", m.Name)
		}
		totalW += m.Weight
	}
	if totalW <= 0 {
		return fmt.Errorf("cluster: work mix has no weight")
	}
	if c.LB == Weighted && c.Weights != nil && len(c.Weights) != c.Nodes {
		return fmt.Errorf("cluster: %d weights for %d nodes", len(c.Weights), c.Nodes)
	}
	if c.DeadlineCycles == 0 {
		return fmt.Errorf("cluster: client deadline must be positive")
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.Controls.Enabled {
		if err := c.Controls.CoDel.Validate(); err != nil {
			return err
		}
		if err := c.Controls.AIMD.Validate(); err != nil {
			return err
		}
		if err := c.Controls.Retry.Validate(); err != nil {
			return err
		}
		if err := c.Controls.Brown.Validate(); err != nil {
			return err
		}
	}
	if c.ClosedClients > 0 {
		if c.ThinkCycles <= 0 {
			return fmt.Errorf("cluster: closed-loop mode needs positive think time")
		}
		return nil
	}
	if c.ClosedClients < 0 {
		return fmt.Errorf("cluster: negative client population")
	}
	return c.Arrival.Validate()
}

// meanShardService returns the mean per-call shard service time (no
// jitter; jitter is mean-preserving around 1).
func (c OpenConfig) meanShardService(m WorkClass) float64 {
	return float64(c.Shard.BaseServiceCycles) +
		c.Shard.PerByteCycles*float64(m.DBReqBytes+m.DBRespBytes)
}

// Capacity estimates the topology's saturation throughput in requests per
// cycle: the tighter of worker-occupancy capacity (app tier) and shard
// service capacity (database tier), over the mean of the mix.
func (c OpenConfig) Capacity() float64 {
	totalW, occ, dbWork := 0.0, 0.0, 0.0
	for _, m := range c.Mix {
		svc := c.meanShardService(m)
		perCall := float64(c.Link.TransferCycles(m.DBReqBytes)) + svc +
			float64(c.Link.TransferCycles(m.DBRespBytes))
		occ += m.Weight * (float64(m.CPUCycles) + float64(m.DBCalls)*perCall)
		dbWork += m.Weight * float64(m.DBCalls) * svc
		totalW += m.Weight
	}
	occ /= totalW
	dbWork /= totalW
	nodeCap := float64(c.Nodes*c.WorkersPerNode) / occ
	shardCap := float64(c.Shards*c.Shard.Workers) / dbWork
	if shardCap < nodeCap {
		return shardCap
	}
	return nodeCap
}

// shed cause indexes.
const (
	shedNoNode = iota
	shedQueue
	shedBrownout
	shedCoDel
	numShedCauses
)

// OpenStats is the run's accounting. Conservation invariant at every
// event boundary: Offered == Shed + Completed + Failed + InFlight().
type OpenStats struct {
	Offered   uint64 // requests that arrived at the load balancer
	Shed      uint64 // rejected without service (all causes)
	Completed uint64 // served to completion (includes Late)
	Failed    uint64 // exhausted retries against the shards (".fail")
	Late      uint64 // completed after the client's deadline (wasted work)

	ShedByCause [numShedCauses]uint64 // no-node, queue-full, brownout, codel

	Attempts    uint64 // shard call attempts issued
	Timeouts    uint64 // attempts abandoned at the caller's timeout
	FastFails   uint64 // attempts refused by a crashed shard
	LostCalls   uint64 // attempts lost to partitions / packet loss
	LimiterHits uint64 // attempts refused by the AIMD limit
	BreakerHits uint64 // attempts refused by an open breaker
	Retries     uint64 // attempts beyond each call's first

	WastedDBCycles uint64 // shard service burned on attempts the caller abandoned
}

// Good returns completions the client was still waiting for.
func (s OpenStats) Good() uint64 { return s.Completed - s.Late }

// openReq is one request in flight through the topology.
type openReq struct {
	class  int
	shard  int
	client int    // closed-loop client index, -1 in open mode
	sendAt uint64 // client send time (span start)
	nodeAt uint64 // enqueue time at the chosen node
	node   int    // serving node, set at dispatch

	callIdx int // shard calls completed so far
	attempt int // attempts made for the current call
	ok      bool

	cpu, net, dbq, dbs, think uint64 // phase accumulators
}

const (
	evArrival = iota
	evCall    // the request's worker issues its next shard call attempt
	evDone
	evTick
)

// event is one scheduled occurrence; ties break by insertion order.
type event struct {
	at   uint64
	seq  uint64
	kind uint8
	node int
	req  *openReq
}

func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventQueue is a binary min-heap on (at, seq).
type eventQueue []*event

func (q *eventQueue) push(e *event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) pop() *event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && evLess(h[l], h[m]) {
			m = l
		}
		if r < n && evLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	*q = h
	return top
}

// openNode is one app server: a bounded FIFO, a worker pool, and its
// overload controllers.
type openNode struct {
	id    int
	peer  uint8
	queue []*openReq
	head  int // pop index into queue (compacted periodically)
	busy  int

	codel *fault.CoDel
	brown *fault.Brownout

	admitted uint64 // requests enqueued at this node
}

func (n *openNode) depth() int { return len(n.queue) - n.head }

func (n *openNode) popFront() *openReq {
	r := n.queue[n.head]
	n.queue[n.head] = nil
	n.head++
	if n.head > 4096 && n.head*2 > len(n.queue) {
		n.queue = append(n.queue[:0], n.queue[n.head:]...)
		n.head = 0
	}
	return r
}

// shardLimiter pairs the AIMD control law with time-aware in-flight
// tracking: held slots are released when their call's wire time expires.
type shardLimiter struct {
	aimd *fault.AIMD
	rel  []uint64 // min-heap of slot release times
}

func (l *shardLimiter) expire(t uint64) {
	for len(l.rel) > 0 && l.rel[0] <= t {
		h := l.rel
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		i := 0
		for {
			a, b := 2*i+1, 2*i+2
			m := i
			if a < n && h[a] < h[m] {
				m = a
			}
			if b < n && h[b] < h[m] {
				m = b
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		l.rel = h
	}
}

func (l *shardLimiter) tryAcquire(t uint64) bool {
	l.expire(t)
	return len(l.rel) < int(l.aimd.Limit())
}

func (l *shardLimiter) hold(release uint64) {
	l.rel = append(l.rel, release)
	h := l.rel
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[i] >= h[p] {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (l *shardLimiter) inFlight(t uint64) int {
	l.expire(t)
	return len(l.rel)
}

// OpenSim is the open-system cluster simulation.
type OpenSim struct {
	cfg    OpenConfig
	cum    []float64 // cumulative mix weights
	rng    *simrand.Rand
	arr    *arrival.Source
	faults *fault.Injector
	coll   *reqtrace.Collector

	now    uint64
	seq    uint64
	events eventQueue

	nodes    []*openNode
	shards   []*db.Server
	limiters []*shardLimiter      // per shard, nil when controls off
	budgets  []*fault.RetryBudget // per node, nil when controls off
	breakers [][]*fault.Breaker   // [node][shard]

	lbNext int       // round-robin cursor
	wrrCur []float64 // smooth-WRR current weights
	wrrSum float64

	tickEvery uint64
	onTick    func(t uint64, s *OpenSim)

	// errRespBytes sizes the response wire transfer of failed requests.
	errRespBytes uint32

	Stats OpenStats
}

// NewOpen builds the topology; every RNG stream derives from seed.
func NewOpen(cfg OpenConfig, seed uint64) (*OpenSim, error) {
	if !cfg.Controls.Enabled {
		cfg.QueueCap = uncappedQueue
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := simrand.New(seed)
	s := &OpenSim{cfg: cfg, rng: root.Derive(1), errRespBytes: 64}

	total := 0.0
	for _, m := range cfg.Mix {
		total += m.Weight
	}
	acc := 0.0
	for _, m := range cfg.Mix {
		acc += m.Weight / total
		s.cum = append(s.cum, acc)
	}

	if cfg.ClosedClients == 0 {
		src, err := arrival.New(cfg.Arrival, root.Derive(2))
		if err != nil {
			return nil, err
		}
		s.arr = src
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := &openNode{id: i, peer: NodePeer(i)}
		if cfg.Controls.Enabled {
			n.codel = fault.NewCoDel(cfg.Controls.CoDel)
			n.brown = fault.NewBrownout(cfg.Controls.Brown)
		}
		s.nodes = append(s.nodes, n)
	}
	for k := 0; k < cfg.Shards; k++ {
		s.shards = append(s.shards, db.NewServer(cfg.Shard, root.Derive(uint64(10+k))))
	}
	if cfg.Controls.Enabled {
		for range s.shards {
			s.limiters = append(s.limiters, &shardLimiter{aimd: fault.NewAIMD(cfg.Controls.AIMD)})
		}
		for range s.nodes {
			s.budgets = append(s.budgets, fault.NewRetryBudget(cfg.Controls.Retry))
		}
	}
	s.breakers = make([][]*fault.Breaker, cfg.Nodes)
	for i := range s.breakers {
		s.breakers[i] = make([]*fault.Breaker, cfg.Shards)
		for k := range s.breakers[i] {
			s.breakers[i][k] = fault.NewBreaker(&s.cfg.Policy)
		}
	}
	if cfg.LB == Weighted {
		s.wrrCur = make([]float64, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			w := 1.0
			if cfg.Weights != nil {
				w = cfg.Weights[i]
			}
			s.wrrSum += w
		}
	}
	return s, nil
}

// SetFaults arms a fault injector over the topology's peer-id space
// (ShardPeer/NodePeer). nil disarms.
func (s *OpenSim) SetFaults(inj *fault.Injector) { s.faults = inj }

// SetCollector attaches a passive latency collector (nil detaches). The
// collector never perturbs the simulation: same seed, same results, with
// or without it.
func (s *OpenSim) SetCollector(c *reqtrace.Collector) { s.coll = c }

// SetTick arranges fn to run every interval cycles while the simulation
// has work, for heartbeat and inspection snapshots.
func (s *OpenSim) SetTick(interval uint64, fn func(t uint64, s *OpenSim)) {
	s.tickEvery = interval
	s.onTick = fn
}

// Config returns the (validated, possibly adjusted) configuration.
func (s *OpenSim) Config() OpenConfig { return s.cfg }

// Now returns the simulation clock.
func (s *OpenSim) Now() uint64 { return s.now }

// InFlight returns requests admitted but not yet resolved.
func (s *OpenSim) InFlight() uint64 {
	return s.Stats.Offered - s.Stats.Shed - s.Stats.Completed - s.Stats.Failed
}

// schedule pushes an event at time at.
func (s *OpenSim) schedule(at uint64, kind uint8, node int, r *openReq) {
	s.seq++
	s.events.push(&event{at: at, seq: s.seq, kind: kind, node: node, req: r})
}

// newReq draws a request's class and shard (one Float64 + one Intn, in
// arrival order, independent of topology configuration).
func (s *OpenSim) newReq(sendAt uint64, client int) *openReq {
	u := s.rng.Float64()
	class := len(s.cum) - 1
	for i, c := range s.cum {
		if u < c {
			class = i
			break
		}
	}
	return &openReq{class: class, shard: s.rng.Intn(s.cfg.Shards), client: client, sendAt: sendAt}
}

// pushArrival schedules req's arrival at the load balancer: send time plus
// the client-side request transfer.
func (s *OpenSim) pushArrival(r *openReq) {
	wire := s.cfg.Link.TransferCycles(s.cfg.Mix[r.class].ReqBytes)
	r.net += wire
	s.schedule(r.sendAt+wire, evArrival, -1, r)
}

// Run feeds arrivals until the horizon, then drains every request still in
// the system (no new work; queues and workers run dry). It returns the
// final clock.
func (s *OpenSim) Run(horizon uint64) uint64 {
	if s.cfg.ClosedClients > 0 {
		for i := 0; i < s.cfg.ClosedClients; i++ {
			at := uint64(s.rng.Exp(s.cfg.ThinkCycles))
			if at < horizon {
				s.pushArrival(s.newReq(at, i))
			}
		}
	} else {
		if at := s.arr.Next(); at < horizon {
			s.pushArrival(s.newReq(at, -1))
		}
	}
	if s.tickEvery > 0 && s.onTick != nil {
		s.schedule(s.tickEvery, evTick, -1, nil)
	}
	for len(s.events) > 0 {
		e := s.events.pop()
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.Stats.Offered++
			// Keep the open arrival process primed.
			if s.arr != nil {
				if at := s.arr.Next(); at < horizon {
					s.pushArrival(s.newReq(at, -1))
				}
			}
			s.admit(e.req, e.at)
		case evCall:
			s.stepCall(e.req, e.at)
		case evDone:
			n := s.nodes[e.node]
			n.busy--
			s.finalize(e.req, e.at, horizon)
			s.dispatch(n, e.at)
		case evTick:
			s.onTick(e.at, s)
			if len(s.events) > 0 {
				s.schedule(e.at+s.tickEvery, evTick, -1, nil)
			}
		}
	}
	return s.now
}

// route picks a healthy node for an arrival at t, or nil when every node
// is down.
func (s *OpenSim) route(t uint64) *openNode {
	alive := make([]*openNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		if down, _ := s.faults.PeerDown(n.peer, t); !down {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	switch s.cfg.LB {
	case LeastInFlight:
		best := alive[0]
		for _, n := range alive[1:] {
			if n.depth()+n.busy < best.depth()+best.busy {
				best = n
			}
		}
		return best
	case Weighted:
		// Smooth weighted round-robin (nginx): add each weight, pick the
		// largest accumulated, subtract the total.
		var best *openNode
		for _, n := range alive {
			w := 1.0
			if s.cfg.Weights != nil {
				w = s.cfg.Weights[n.id]
			}
			s.wrrCur[n.id] += w
			if best == nil || s.wrrCur[n.id] > s.wrrCur[best.id] {
				best = n
			}
		}
		s.wrrCur[best.id] -= s.wrrSum
		return best
	default: // RoundRobin
		n := alive[s.lbNext%len(alive)]
		s.lbNext++
		return n
	}
}

// shed resolves a request without service.
func (s *OpenSim) shed(r *openReq, t uint64, cause int) {
	s.Stats.Shed++
	s.Stats.ShedByCause[cause]++
	if s.coll != nil {
		sp := s.coll.BeginClass("shed", r.sendAt)
		sp.Add(reqtrace.PhaseNet, r.net)
		s.coll.End(sp, t)
	}
	s.closedNext(r, t)
}

// admit runs a request through the load balancer and node admission.
func (s *OpenSim) admit(r *openReq, t uint64) {
	n := s.route(t)
	if n == nil {
		s.shed(r, t, shedNoNode)
		return
	}
	if n.brown != nil && n.brown.DropClass(s.cfg.Mix[r.class].Priority) {
		n.brown.Stats.Shed++
		s.shed(r, t, shedBrownout)
		return
	}
	if n.busy >= s.cfg.WorkersPerNode && n.depth() >= s.cfg.QueueCap {
		s.shed(r, t, shedQueue)
		return
	}
	r.nodeAt = t
	n.queue = append(n.queue, r)
	n.admitted++
	s.dispatch(n, t)
}

// dispatch starts queued work on free workers, applying the CoDel
// admission check and feeding the brown-out controller at each dequeue.
func (s *OpenSim) dispatch(n *openNode, t uint64) {
	for n.busy < s.cfg.WorkersPerNode && n.depth() > 0 {
		r := n.popFront()
		qdelay := t - r.nodeAt
		if n.brown != nil {
			n.brown.Observe(t, qdelay)
		}
		if n.codel != nil && n.codel.OnDequeue(t, qdelay) {
			s.shed(r, t, shedCoDel)
			continue
		}
		s.startService(n, r, t)
	}
}

// startService occupies a worker with the request's visit. The visit is a
// chain of events — app CPU, then each shard call attempt issued at its
// own simulated time — so shard arrivals happen in time order and the
// backends see honest queueing rather than batched future bookings.
func (s *OpenSim) startService(n *openNode, r *openReq, t uint64) {
	n.busy++
	r.node = n.id
	m := s.cfg.Mix[r.class]
	cpu := m.CPUCycles
	if s.cfg.Shard.Jitter > 0 {
		cpu = uint64(float64(cpu) * (1 - s.cfg.Shard.Jitter + s.rng.Exp(s.cfg.Shard.Jitter)))
	}
	// A recently crashed node serves its drain-down with cold caches.
	if f := s.faults.ServiceFactor(n.peer, t); f > 1 {
		cpu = uint64(float64(cpu) * f)
	}
	r.cpu += cpu
	r.callIdx, r.attempt = 0, 0
	r.ok = true
	if m.DBCalls == 0 {
		s.schedule(t+cpu, evDone, n.id, r)
		return
	}
	s.schedule(t+cpu, evCall, n.id, r)
}

// stepCall runs one shard call attempt at its issue time t and schedules
// the request's next step: the next attempt after backoff, the next call,
// or completion.
func (s *OpenSim) stepCall(r *openReq, t uint64) {
	n := s.nodes[r.node]
	m := s.cfg.Mix[r.class]
	br := s.breakers[n.id][r.shard]
	var lim *shardLimiter
	if s.limiters != nil {
		lim = s.limiters[r.shard]
	}
	var budget *fault.RetryBudget
	if s.budgets != nil {
		budget = s.budgets[n.id]
	}
	if r.attempt == 0 && budget != nil {
		budget.Earn()
	}
	r.attempt++
	s.Stats.Attempts++
	if r.attempt > 1 {
		s.Stats.Retries++
	}
	res := s.attempt(n, r, br, lim, ShardPeer(r.shard), m, t)
	if res.success {
		r.callIdx++
		r.attempt = 0
		if r.callIdx >= m.DBCalls {
			s.schedule(res.doneAt, evDone, n.id, r)
			return
		}
		s.schedule(res.doneAt, evCall, n.id, r)
		return
	}
	if r.attempt >= s.cfg.Policy.MaxAttempts || (budget != nil && !budget.Allow()) {
		r.ok = false
		s.schedule(res.doneAt, evDone, n.id, r)
		return
	}
	back := uint64(s.cfg.Policy.Backoff(r.attempt, s.rng))
	r.think += back
	s.schedule(res.doneAt+back, evCall, n.id, r)
}

// attemptResult is one shard attempt's outcome.
type attemptResult struct {
	success bool
	doneAt  uint64
}

// attempt issues a single shard call attempt at time t.
func (s *OpenSim) attempt(n *openNode, r *openReq, br *fault.Breaker, lim *shardLimiter, peer uint8, m WorkClass, t uint64) attemptResult {
	const localRejectCycles = 2_000
	pol := &s.cfg.Policy
	timeout := uint64(pol.TimeoutCycles)

	// Client-side concurrency limit: refused attempts never leave the node.
	if lim != nil && !lim.tryAcquire(t) {
		lim.aimd.Reject()
		s.Stats.LimiterHits++
		r.think += localRejectCycles
		return attemptResult{doneAt: t + localRejectCycles}
	}
	// Circuit breaker: while open, fail locally without touching the wire.
	if !br.Allow(t) {
		s.Stats.BreakerHits++
		r.think += localRejectCycles
		return attemptResult{doneAt: t + localRejectCycles}
	}
	lf := s.faults.LinkFactor(peer, t)
	scale := func(c uint64) uint64 {
		if lf > 1 {
			return uint64(float64(c) * lf)
		}
		return c
	}
	switch s.faults.CallOutcome(peer, t) {
	case fault.FastFail:
		// Connection refused by a crashed shard: one bare round trip.
		rtt := scale(2 * s.cfg.Link.LatencyCycles)
		r.net += rtt
		br.Record(t+rtt, false)
		if lim != nil {
			lim.hold(t + rtt)
			lim.aimd.Outcome(t+rtt, rtt, false)
		}
		s.Stats.FastFails++
		return attemptResult{doneAt: t + rtt}
	case fault.Lost:
		// Partition or packet loss: the caller burns its full timeout.
		r.think += timeout
		br.Record(t+timeout, false)
		if lim != nil {
			lim.hold(t + timeout)
			lim.aimd.Outcome(t+timeout, timeout, false)
		}
		s.Stats.LostCalls++
		return attemptResult{doneAt: t + timeout}
	}
	reqX := scale(s.cfg.Link.TransferCycles(m.DBReqBytes))
	respX := scale(s.cfg.Link.TransferCycles(m.DBRespBytes))
	done, q, svc := s.shards[r.shard].RespondDetail(t+reqX, m.DBReqBytes, m.DBRespBytes)
	rtt := done + respX - t
	if rtt > timeout {
		// The caller abandons the attempt; the shard still does the work.
		// That divergence — servers burning cycles on answers nobody will
		// read — is the raw material of congestion collapse.
		r.think += timeout
		s.Stats.Timeouts++
		s.Stats.WastedDBCycles += svc
		br.Record(t+timeout, false)
		if lim != nil {
			lim.hold(t + timeout)
			lim.aimd.Outcome(t+timeout, rtt, false)
		}
		return attemptResult{doneAt: t + timeout}
	}
	r.net += reqX + respX
	r.dbq += q
	r.dbs += svc
	br.Record(done+respX, true)
	if lim != nil {
		lim.hold(done)
		lim.aimd.Outcome(done+respX, rtt, true)
	}
	return attemptResult{success: true, doneAt: done + respX}
}

// finalize resolves a served request at worker-free time done: the
// response crosses the wire, the client judges it against its deadline,
// and the span (if collected) is completed.
func (s *OpenSim) finalize(r *openReq, done uint64, horizon uint64) {
	m := s.cfg.Mix[r.class]
	class := m.Name
	respBytes := m.RespBytes
	if !r.ok {
		class = m.Name + ".fail"
		respBytes = s.errRespBytes
	}
	respX := s.cfg.Link.TransferCycles(respBytes)
	r.net += respX
	end := done + respX

	if r.ok {
		s.Stats.Completed++
		if end-r.sendAt > s.cfg.DeadlineCycles {
			s.Stats.Late++
		}
	} else {
		s.Stats.Failed++
	}
	if s.coll != nil {
		sp := s.coll.BeginClass(class, r.sendAt)
		sp.Add(reqtrace.PhaseCPU, r.cpu)
		sp.Add(reqtrace.PhaseNet, r.net)
		sp.Add(reqtrace.PhaseDBQueue, r.dbq)
		sp.Add(reqtrace.PhaseDBService, r.dbs)
		sp.Add(reqtrace.PhaseThink, r.think)
		s.coll.End(sp, end)
	}
	s.closedNextAt(r, end, horizon)
}

// closedNext reschedules a closed-loop client after a request resolved
// without a horizon bound (sheds resolve inside Run's arrival window).
func (s *OpenSim) closedNext(r *openReq, t uint64) {
	s.closedNextAt(r, t, ^uint64(0))
}

// closedNextAt schedules the client's next request after thinking.
func (s *OpenSim) closedNextAt(r *openReq, t uint64, horizon uint64) {
	if r.client < 0 {
		return
	}
	at := t + uint64(s.rng.Exp(s.cfg.ThinkCycles))
	if at < horizon {
		s.pushArrival(s.newReq(at, r.client))
	}
}

// NodeSnap is one node's live state.
type NodeSnap struct {
	ID            int    `json:"id"`
	Queue         int    `json:"queue"`
	Busy          int    `json:"busy"`
	Admitted      uint64 `json:"admitted"`
	BrownLevel    int    `json:"brownout_level"`
	CoDelDropping bool   `json:"codel_dropping"`
	CoDelDrops    uint64 `json:"codel_drops"`
	Down          bool   `json:"down,omitempty"`
}

// ShardSnap is one shard's live state.
type ShardSnap struct {
	ID       int     `json:"id"`
	Limit    float64 `json:"aimd_limit"`
	InFlight int     `json:"in_flight"`
	Util     float64 `json:"utilization"`
	Served   uint64  `json:"served"`
	Down     bool    `json:"down,omitempty"`
}

// OpenSnapshot is the topology's live state at one instant, for heartbeat
// lines and the /overload inspection page.
type OpenSnapshot struct {
	Now    uint64      `json:"cycle"`
	Stats  OpenStats   `json:"stats"`
	Nodes  []NodeSnap  `json:"nodes"`
	Shards []ShardSnap `json:"shards"`
}

// Snapshot captures the live state at time t.
func (s *OpenSim) Snapshot(t uint64) OpenSnapshot {
	snap := OpenSnapshot{Now: t, Stats: s.Stats}
	for _, n := range s.nodes {
		ns := NodeSnap{ID: n.id, Queue: n.depth(), Busy: n.busy, Admitted: n.admitted}
		if n.brown != nil {
			ns.BrownLevel = n.brown.Level()
		}
		if n.codel != nil {
			ns.CoDelDropping = n.codel.Dropping()
			ns.CoDelDrops = n.codel.Stats.Drops
		}
		ns.Down, _ = s.faults.PeerDown(n.peer, t)
		snap.Nodes = append(snap.Nodes, ns)
	}
	for k, sh := range s.shards {
		ss := ShardSnap{ID: k, Util: sh.Utilization(), Served: sh.Served()}
		if s.limiters != nil {
			ss.Limit = s.limiters[k].aimd.Limit()
			ss.InFlight = len(s.limiters[k].rel)
		}
		ss.Down, _ = s.faults.PeerDown(ShardPeer(k), t)
		snap.Shards = append(snap.Shards, ss)
	}
	return snap
}
