// Package cluster co-simulates multiple machines, reproducing the paper's
// Simics methodology: "we simulated four such machines connected by a
// simulated 100-Mbit Ethernet link" with only the application server's
// references fed to the memory-system simulator (§3.3).
//
// The coordinator advances the member engines in lockstep windows no wider
// than the network's one-way latency. That latency is the classic
// conservative-parallel-simulation lookahead: a message issued inside the
// current window can only ever be delivered in a later one, so each engine
// can safely simulate a whole window without hearing from its peers.
//
// Requests travel application server → database as engine callbacks
// (osmodel.Engine.OnExternalCall) into the database workload's delivery
// queue (internal/workload/dbserver); replies travel back on the database
// engine's op-completion callback, waking the blocked application-server
// thread at reply time + wire latency.
package cluster

import (
	"repro/internal/fault"
	"repro/internal/osmodel"
	"repro/internal/trace"
	"repro/internal/workload/dbserver"
)

// Coordinator couples an application-server engine with a database-machine
// engine over a link.
type Coordinator struct {
	app *osmodel.Engine
	db  *osmodel.Engine
	srv *dbserver.Server

	// window is the lockstep step; it must not exceed the one-way wire
	// latency (the lookahead).
	window  uint64
	latency uint64

	// Fault injection (nil = none): during a node-crash or partition window
	// aimed at dbPeer, requests are not delivered — the caller is woken
	// empty-handed after dropTimeout instead of when a reply arrives.
	faults      *fault.Injector
	dbPeer      uint8
	dropTimeout uint64

	// Requests counts app→db calls; Replies counts completed round trips;
	// Dropped counts requests lost to fault windows — on either leg:
	// DroppedReplies of them were answered by the database but lost on the
	// way back. At every lockstep window boundary
	// Requests == Replies + Dropped + InFlight(), and InFlight() equals the
	// database server's QueueDepth() + InService() (the conservation test
	// checks both).
	Requests       uint64
	Replies        uint64
	Dropped        uint64
	DroppedReplies uint64

	// OnWindow, when set, runs after each lockstep window with the window's
	// end cycle — both engines have reached t and all deliveries, replies,
	// and drops up to t are accounted. Hook for heartbeats and invariant
	// checks.
	OnWindow func(t uint64)
}

// New wires the two machines together. The application server's network
// must have the database registered with AddExternalPeer; latency is the
// one-way wire latency in cycles.
func New(app, db *osmodel.Engine, srv *dbserver.Server, latency uint64) *Coordinator {
	c := &Coordinator{
		app:     app,
		db:      db,
		srv:     srv,
		latency: latency,
		window:  latency / 2,
	}
	if c.window == 0 {
		c.window = 1
	}
	app.OnExternalCall = func(tid int, peer uint8, req, resp uint32, t uint64) {
		c.Requests++
		// A crashed or partitioned database machine never sees the request:
		// the caller blocks until its timeout and resumes empty-handed. The
		// request (and any reply already in flight the other way) is lost —
		// exactly the asymmetry a real partition produces.
		if out := c.faults.CallOutcome(c.dbPeer, t); out != fault.OK {
			c.Dropped++
			wake := t + c.dropTimeout
			if out == fault.FastFail {
				// Connection refused: the crashed machine's peer OS answers
				// with a reset after one wire round trip, not a timeout.
				wake = t + 2*c.latency
			}
			app.WakeExternal(tid, wake)
			return
		}
		srv.Enqueue(dbserver.Request{
			SourceThread: tid,
			ReqBytes:     req,
			RespBytes:    resp,
			DeliverAt:    t + c.latency,
		})
	}
	db.OnOpComplete = func(op *trace.Op, tid int, t uint64) {
		req, ok := srv.TakeRequest(op)
		if !ok {
			return
		}
		// The reply crosses the same faulty wire: a partition, crash, or
		// packet-loss window active when the database answers loses the
		// reply even though the work was done — the asymmetry that makes
		// distributed failures expensive. The caller cannot tell a lost
		// request from a lost reply; either way it resumes empty-handed
		// when its timer fires, dropTimeout after it issued the request.
		if c.faults.CallOutcome(c.dbPeer, t) != fault.OK {
			c.Dropped++
			c.DroppedReplies++
			wake := req.DeliverAt - c.latency + c.dropTimeout
			// A reply that took longer than the timeout to produce would
			// put the timer in an already-simulated window; the lockstep
			// cannot wake into the past, so the caller resumes at the
			// earliest future-safe point instead.
			if wake < t+c.latency {
				wake = t + c.latency
			}
			app.WakeExternal(req.SourceThread, wake)
			return
		}
		c.Replies++
		app.WakeExternal(req.SourceThread, t+c.latency)
	}
	return c
}

// Run advances both machines to the horizon in lookahead-bounded windows.
// The application server runs each window first: requests it issues are
// delivered at +latency — beyond the window's end — so the database can
// then safely simulate the same window; its replies likewise wake
// application threads only in later windows.
func (c *Coordinator) Run(horizon uint64) {
	for t := c.window; ; t += c.window {
		if t > horizon {
			t = horizon
		}
		c.app.Run(t)
		c.db.Run(t)
		if c.OnWindow != nil {
			c.OnWindow(t)
		}
		if t == horizon {
			return
		}
	}
}

// SetFaults arms fault injection on the app→db path: node-crash and
// partition windows in inj's schedule aimed at dbPeer (the peer id the app
// server dials) drop requests. A dropped caller is woken after
// timeoutCycles (0 picks the default policy's timeout); a fast-failed one
// (crash) after a bare wire round trip. nil disarms.
func (c *Coordinator) SetFaults(inj *fault.Injector, dbPeer uint8, timeoutCycles uint64) {
	if timeoutCycles == 0 {
		timeoutCycles = uint64(fault.DefaultPolicy().TimeoutCycles)
	}
	c.faults = inj
	c.dbPeer = dbPeer
	c.dropTimeout = timeoutCycles
}

// InFlight returns the requests accepted but not yet replied or dropped.
func (c *Coordinator) InFlight() uint64 { return c.Requests - c.Replies - c.Dropped }

// Window returns the lockstep window (for tests).
func (c *Coordinator) Window() uint64 { return c.window }
