package cluster

import (
	"testing"

	"repro/internal/ifetch"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/osmodel"
	"repro/internal/simrand"
	"repro/internal/trace"
	"repro/internal/workload/dbserver"
)

// rig assembles a tiny two-machine cluster: one client thread calling an
// external peer, and a database machine answering.
func rig(t *testing.T, calls int) (*Coordinator, *osmodel.Engine, *osmodel.Engine, *dbserver.Server) {
	t.Helper()
	const peerDB = 1

	// Client machine.
	cSpace := mem.NewAddrSpace()
	cLayout := ifetch.NewCodeLayout(cSpace)
	user := cLayout.Add("client", 64<<10, false, ifetch.DefaultProfile())
	cNet := netsim.NewNetwork(netsim.DefaultLink())
	cNet.AddExternalPeer(peerDB)
	app := osmodel.NewEngine(osmodel.DefaultConfig(2), memsys.New(memsys.DefaultConfig(2)), cLayout, cNet, simrand.New(1))
	n := 0
	app.AddThread("caller", osmodel.FuncSource(func(tid int, now uint64) *trace.Op {
		if n >= calls {
			return nil
		}
		n++
		rec := trace.NewRecorder("call", true)
		rec.Instr(user.ID, 2_000)
		rec.NetCall(peerDB, 300, 1400)
		rec.Instr(user.ID, 1_000)
		return rec.Finish()
	}))

	// Database machine.
	dSpace := mem.NewAddrSpace()
	dLayout := ifetch.NewCodeLayout(dSpace)
	comps := dbserver.Components{SQL: dLayout.Add("dbms", 128<<10, false, ifetch.DefaultProfile())}
	kern := dLayout.Add("kernel-net", 128<<10, true, ifetch.DefaultProfile())
	dNet := netsim.NewNetwork(netsim.DefaultLink())
	ns := netsim.NewNetStack(dSpace, kern, dNet, netsim.DefaultStackConfig(), simrand.New(2))
	hcfg := jvm.DefaultConfig()
	hcfg.HeapBytes = 32 << 20
	hcfg.NewGenBytes = 6 << 20
	heap := jvm.MustNewHeap(dSpace, hcfg)
	srv := dbserver.New(dbserver.DefaultConfig(), heap, comps, ns, simrand.New(3))
	db := osmodel.NewEngine(osmodel.DefaultConfig(2), memsys.New(memsys.DefaultConfig(2)), dLayout, dNet, simrand.New(4))
	for i := 0; i < 4; i++ {
		db.AddThread("db-worker", srv.WorkerSource(i))
	}

	return New(app, db, srv, netsim.DefaultLink().LatencyCycles), app, db, srv
}

func TestRoundTripCompletes(t *testing.T) {
	coord, app, _, _ := rig(t, 5)
	coord.Run(20_000_000)
	res := app.Results()
	if res.BusinessOps != 5 {
		t.Fatalf("completed calls = %d, want 5", res.BusinessOps)
	}
	if coord.Requests != 5 || coord.Replies != 5 {
		t.Fatalf("requests/replies = %d/%d", coord.Requests, coord.Replies)
	}
}

func TestCallerWaitsAtLeastTwoWireLatencies(t *testing.T) {
	coord, app, _, _ := rig(t, 1)
	coord.Run(20_000_000)
	h := app.Results().LatencyByTag["call"]
	if h == nil || h.Count() != 1 {
		t.Fatal("no call latency recorded")
	}
	if h.Mean() < float64(2*netsim.DefaultLink().LatencyCycles) {
		t.Fatalf("round trip %v cycles beat the wire (impossible)", h.Mean())
	}
}

func TestWindowRespectsLookahead(t *testing.T) {
	coord, _, _, _ := rig(t, 1)
	if coord.Window() > netsim.DefaultLink().LatencyCycles {
		t.Fatalf("window %d exceeds the lookahead %d", coord.Window(), netsim.DefaultLink().LatencyCycles)
	}
}

func TestDeterministicCoSim(t *testing.T) {
	run := func() uint64 {
		coord, app, _, _ := rig(t, 10)
		coord.Run(40_000_000)
		h := app.Results().LatencyByTag["call"]
		if h == nil {
			return 0
		}
		return uint64(h.Mean())
	}
	if run() != run() {
		t.Fatal("co-simulation not deterministic")
	}
}

func TestDBMachineMeasurable(t *testing.T) {
	coord, _, db, _ := rig(t, 8)
	coord.Run(30_000_000)
	res := db.Results()
	if res.OpsByTag["query"] != 8 {
		t.Fatalf("db processed %d queries, want 8", res.OpsByTag["query"])
	}
	if res.CPU.Instructions == 0 {
		t.Fatal("db machine executed nothing")
	}
	if res.Modes.Idle == 0 {
		t.Fatal("a nearly idle db machine reported no idle time")
	}
}
