package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, Assoc: 2, BlockBytes: 64} // 8 sets
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		small(),
		{Name: "direct", SizeBytes: 4096, Assoc: 1, BlockBytes: 32},
		{Name: "full-ish", SizeBytes: 512, Assoc: 8, BlockBytes: 64},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 1000, Assoc: 2, BlockBytes: 64},    // size not pow2
		{SizeBytes: 1024, Assoc: 0, BlockBytes: 64},    // assoc 0
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 48},    // block not pow2
		{SizeBytes: 64, Assoc: 2, BlockBytes: 64},      // smaller than a set
		{SizeBytes: 0, Assoc: 1, BlockBytes: 64},       // zero
		{SizeBytes: 1 << 20, Assoc: 3, BlockBytes: 64}, // sets not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: expected error", c)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(small())
	if c.Access(0x1000, mem.Read) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, mem.Read) {
		t.Fatal("warm access missed")
	}
	if !c.Access(0x1030, mem.Read) {
		t.Fatal("same-block access missed")
	}
	if c.Stats.Reads != 3 || c.Stats.ReadMisses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 2-way, 8 sets, 64B blocks: set stride = 512B
	a0 := mem.Addr(0x0000)
	a1 := mem.Addr(0x0200) // same set (8 sets * 64B = 512)
	a2 := mem.Addr(0x0400) // same set
	c.Access(a0, mem.Read)
	c.Access(a1, mem.Read)
	c.Access(a0, mem.Read) // a0 now MRU; a1 is LRU
	c.Access(a2, mem.Read) // evicts a1
	if !c.Access(a0, mem.Read) {
		t.Fatal("a0 should have survived")
	}
	if c.Access(a1, mem.Read) {
		t.Fatal("a1 should have been evicted")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(small())
	c.Access(0x0000, mem.Write)
	c.Access(0x0200, mem.Read)
	c.Access(0x0400, mem.Read) // evicts dirty 0x0000
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestWriteMarksDirtyOnMissAndHit(t *testing.T) {
	c := New(small())
	c.Access(0x1000, mem.Write) // miss-allocate-dirty
	if l := c.Probe(c.BlockAddr(0x1000)); l == nil || !l.Dirty {
		t.Fatal("write miss did not leave dirty line")
	}
	c2 := New(small())
	c2.Access(0x1000, mem.Read)
	c2.Access(0x1000, mem.Write)
	if l := c2.Probe(c2.BlockAddr(0x1000)); l == nil || !l.Dirty {
		t.Fatal("write hit did not mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(small())
	c.Access(0x1000, mem.Write)
	dirty, present := c.Invalidate(c.BlockAddr(0x1000))
	if !present || !dirty {
		t.Fatal("invalidate of dirty line misreported")
	}
	if c.Access(0x1000, mem.Read) {
		t.Fatal("line survived invalidation")
	}
	if _, present := c.Invalidate(0xdead000); present {
		t.Fatal("invalidate of absent line misreported")
	}
}

func TestProbeDoesNotTouchLRU(t *testing.T) {
	c := New(small())
	a0, a1, a2 := mem.Addr(0), mem.Addr(0x200), mem.Addr(0x400)
	c.Access(a0, mem.Read)
	c.Access(a1, mem.Read)
	c.Probe(c.BlockAddr(a0)) // must NOT refresh a0
	c.Access(a2, mem.Read)   // evicts a0 (LRU by access order)
	if c.Access(a0, mem.Read) {
		t.Fatal("Probe refreshed LRU")
	}
}

func TestAccessRange(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Assoc: 4, BlockBytes: 64})
	misses := c.AccessRange(0x100, 256, mem.Read) // 4 blocks
	if misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
	if c.AccessRange(0x100, 256, mem.Read) != 0 {
		t.Fatal("warm range missed")
	}
	if c.AccessRange(0x100, 0, mem.Read) != 0 {
		t.Fatal("zero-size range accessed something")
	}
	// Range crossing one block boundary with size < block.
	c2 := New(small())
	if got := c2.AccessRange(0x3f, 2, mem.Read); got != 2 {
		t.Fatalf("boundary-crossing range misses = %d, want 2", got)
	}
}

func TestWorkingSetFitsMeansNoMisses(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 << 16, Assoc: 4, BlockBytes: 64})
	// 32 KB working set in a 64 KB cache: after warmup, zero misses.
	for pass := 0; pass < 3; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for a := mem.Addr(0); a < 32<<10; a += 64 {
			c.Access(a, mem.Read)
		}
	}
	if c.Stats.Misses() != 0 {
		t.Fatalf("steady-state misses = %d, want 0", c.Stats.Misses())
	}
}

func TestWorkingSetExceedsDirectCapacity(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 << 12, Assoc: 1, BlockBytes: 64})
	// 8 KB cyclic working set in a 4 KB direct-mapped cache: every access
	// misses in steady state (classic LRU pathological).
	for pass := 0; pass < 4; pass++ {
		if pass == 2 {
			c.ResetStats()
		}
		for a := mem.Addr(0); a < 8<<10; a += 64 {
			c.Access(a, mem.Read)
		}
	}
	if ratio := c.Stats.MissRatio(); ratio != 1.0 {
		t.Fatalf("cyclic overflow miss ratio = %v, want 1.0", ratio)
	}
}

func TestMissRatioMonotoneInSize(t *testing.T) {
	// Bigger caches can't miss more on the same stream (same assoc & block,
	// LRU is a stack algorithm per set; with pow2 sets this holds for
	// nested set mappings on this access pattern).
	sw := NewSweep(SizeSweepConfigs("L"))
	r := uint64(12345)
	for i := 0; i < 200000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		addr := (r >> 33) % (8 << 20)
		sw.Access(addr, mem.Read)
	}
	sw.CountInstructions(200000)
	curve := sw.MissCurve()
	for i := 1; i < len(curve); i++ {
		if curve[i].MissesPer1000 > curve[i-1].MissesPer1000+1e-9 {
			t.Fatalf("miss curve not monotone: %+v", curve)
		}
	}
	if curve[0].SizeBytes != 64<<10 || curve[len(curve)-1].SizeBytes != 16<<20 {
		t.Fatalf("sweep sizes wrong: %d..%d", curve[0].SizeBytes, curve[len(curve)-1].SizeBytes)
	}
}

func TestSweepResetStats(t *testing.T) {
	sw := NewSweep([]Config{small()})
	sw.Access(0x1000, mem.Read)
	sw.CountInstructions(10)
	sw.ResetStats()
	if sw.Instructions != 0 || sw.Caches()[0].Stats.Accesses() != 0 {
		t.Fatal("ResetStats incomplete")
	}
	// Contents stay warm.
	if !sw.Caches()[0].Access(0x1000, mem.Read) {
		t.Fatal("ResetStats cleared contents")
	}
}

func TestAllocatePanicsOnInvalidState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(small()).Allocate(0, StateInvalid)
}

func TestQuickProbeAfterAllocate(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 1 << 14, Assoc: 4, BlockBytes: 64})
	f := func(raw uint32) bool {
		ba := c.BlockAddr(mem.Addr(raw))
		nl, _, _ := c.Allocate(ba, 2)
		l := c.Probe(ba)
		return l != nil && l == nl && l.Tag == ba && l.State == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimReported(t *testing.T) {
	c := New(Config{Name: "v", SizeBytes: 128, Assoc: 1, BlockBytes: 64}) // 2 sets
	c.Allocate(0, 2)
	l, v, had := c.Allocate(128, 3) // same set (2 sets * 64 = 128 stride)
	if !had || v.Tag != 0 || v.State != 2 {
		t.Fatalf("victim = %+v had=%v", v, had)
	}
	if l == nil || l.Tag != 128 || l.State != 3 {
		t.Fatalf("inserted line = %+v", l)
	}
	_, _, had = c.Allocate(64, 2) // other set, empty
	if had {
		t.Fatal("unexpected victim from empty set")
	}
}

func TestAssocSweepConfigs(t *testing.T) {
	cfgs := AssocSweepConfigs("A", 256<<10)
	if len(cfgs) != 5 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if c.SizeBytes != 256<<10 || c.BlockBytes != 64 {
			t.Fatalf("fixed dims drifted: %v", c)
		}
	}
	if cfgs[0].Assoc != 1 || cfgs[4].Assoc != 16 {
		t.Fatalf("assoc ladder wrong: %v..%v", cfgs[0].Assoc, cfgs[4].Assoc)
	}
}

func TestBlockSweepConfigs(t *testing.T) {
	cfgs := BlockSweepConfigs("B", 256<<10)
	if len(cfgs) != 5 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
	if cfgs[0].BlockBytes != 16 || cfgs[4].BlockBytes != 256 {
		t.Fatalf("block ladder wrong: %v..%v", cfgs[0].BlockBytes, cfgs[4].BlockBytes)
	}
}

// TestAssociativityReducesConflicts: a conflict-heavy stream (set-stride)
// misses hard direct-mapped and not at all at high associativity.
func TestAssociativityReducesConflicts(t *testing.T) {
	sw := NewSweep(AssocSweepConfigs("A", 8<<10))
	// Four lines mapping to the same direct-mapped set (stride = size).
	for pass := 0; pass < 200; pass++ {
		for i := 0; i < 4; i++ {
			sw.Access(mem.Addr(i*(8<<10)), mem.Read)
		}
	}
	caches := sw.Caches()
	dm := caches[0].Stats.MissRatio()   // 1-way
	high := caches[3].Stats.MissRatio() // 8-way
	if dm < 0.9 {
		t.Fatalf("direct-mapped conflict stream miss ratio %v, want ~1", dm)
	}
	if high > 0.05 {
		t.Fatalf("8-way miss ratio %v, want ~0 after warmup", high)
	}
}

// TestLargerBlocksExploitSpatialLocality: a sequential byte stream misses
// once per block, so larger blocks mean fewer misses.
func TestLargerBlocksExploitSpatialLocality(t *testing.T) {
	sw := NewSweep(BlockSweepConfigs("B", 64<<10))
	for a := mem.Addr(0); a < 32<<10; a += 16 {
		sw.Access(a, mem.Read)
	}
	caches := sw.Caches()
	for i := 1; i < len(caches); i++ {
		if caches[i].Stats.Misses() >= caches[i-1].Stats.Misses() {
			t.Fatalf("block %dB misses (%d) not below block %dB (%d)",
				caches[i].Config().BlockBytes, caches[i].Stats.Misses(),
				caches[i-1].Config().BlockBytes, caches[i-1].Stats.Misses())
		}
	}
}
