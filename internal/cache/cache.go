// Package cache implements the set-associative cache core used throughout
// the memory-system simulator, plus a one-pass multi-configuration sweeper
// (the stand-in for the Sumo cache simulator the paper used with Simics).
//
// A Cache is a purely structural model: tags, ways, LRU, and an opaque
// per-line state byte. The coherence protocol (internal/coherence) and the
// hierarchy assembly (internal/memsys) decide what states mean and when to
// allocate or invalidate; the uniprocessor sweep mode drives caches directly
// through Access.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// State is an opaque per-line coherence state. The cache package only
// distinguishes StateInvalid (line absent); all other values belong to the
// protocol layer.
type State uint8

// StateInvalid marks an absent line. Protocols must use non-zero values for
// valid states.
const StateInvalid State = 0

// Config describes one cache geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

// Validate checks that the geometry is internally consistent: positive
// power-of-two size and block, associativity that divides into whole sets.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache %q: size %d not a positive power of two", c.Name, c.SizeBytes)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache %q: block %d not a positive power of two", c.Name, c.BlockBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache %q: associativity %d not positive", c.Name, c.Assoc)
	case c.SizeBytes < c.Assoc*c.BlockBytes:
		return fmt.Errorf("cache %q: size %d smaller than one set (%d ways × %d B)", c.Name, c.SizeBytes, c.Assoc, c.BlockBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("cache %q: %d sets not a power of two", c.Name, c.Sets())
	}
	return nil
}

// String renders the geometry compactly, e.g. "L2 1MB/4way/64B".
func (c Config) String() string {
	return fmt.Sprintf("%s %dKB/%dway/%dB", c.Name, c.SizeBytes/1024, c.Assoc, c.BlockBytes)
}

// Line is one cache line's bookkeeping. Recency lives in the cache's
// parallel lru array rather than here, so a probe hit touches only the
// compact tag/lru arrays and never dirties the Line itself.
type Line struct {
	Tag uint64 // block address (already shifted)
	// State may be rewritten by callers (the coherence protocol does), but
	// only between valid states: invalidation must go through Invalidate so
	// the cache's internal tag mirror stays exact.
	State State
	Dirty bool
}

// Stats counts cache events. Hits/misses are split by access type.
type Stats struct {
	Reads, ReadMisses    uint64
	Writes, WriteMisses  uint64
	Fetches, FetchMisses uint64
	Evictions            uint64
	DirtyEvictions       uint64
}

// Accesses returns the total access count.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes + s.Fetches }

// Misses returns the total miss count.
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses + s.FetchMisses }

// MissRatio returns misses/accesses, or 0 with no accesses.
func (s *Stats) MissRatio() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

// counters returns the access and miss counters for t, so batch drivers can
// resolve the access-type dispatch once per stream instead of once per
// reference. Unknown access types return nils (counted nowhere), matching
// Access's historical ignore-unknown behavior.
func (s *Stats) counters(t mem.AccessType) (acc, miss *uint64) {
	switch t {
	case mem.Read:
		return &s.Reads, &s.ReadMisses
	case mem.Write:
		return &s.Writes, &s.WriteMisses
	case mem.IFetch:
		return &s.Fetches, &s.FetchMisses
	}
	return nil, nil
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg  Config
	sets []Line // flat: sets[set*assoc : (set+1)*assoc]
	// tags mirrors sets for the probe scan: tags[i] is sets[i].Tag|1 while
	// the way is valid, 0 while invalid. A probe touches 8 bytes per way
	// instead of a full Line, so even a 4-way set's tags share one machine
	// cache line. Validity only ever changes inside this package (Allocate
	// and Invalidate), which is what keeps the mirror exact: callers adjust
	// Line.State freely but only between valid states.
	tags []uint64
	// lru holds each way's last-use clock, parallel to sets/tags. Keeping
	// recency out of Line means the replacement scan in Allocate reads two
	// dense uint64 arrays (tags for validity, lru for age) instead of
	// walking Line structs.
	lru        []uint64
	assoc      int
	setMask    uint64
	blockShift uint
	clock      uint64
	Stats      Stats
}

// New builds a cache; it panics on an invalid geometry (geometries are
// static experiment configuration, so an invalid one is a programming bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:        cfg,
		sets:       make([]Line, sets*cfg.Assoc),
		tags:       make([]uint64, sets*cfg.Assoc),
		lru:        make([]uint64, sets*cfg.Assoc),
		assoc:      cfg.Assoc,
		setMask:    uint64(sets - 1),
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
	}
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr returns the block-aligned address containing a, in this cache's
// block size.
func (c *Cache) BlockAddr(a mem.Addr) uint64 { return a >> c.blockShift << c.blockShift }

// Probe returns the line holding block ba, or nil. It does not update LRU.
// ba must be block-aligned (a BlockAddr result), which leaves bit 0 free for
// the tag array's valid marker. The common associativities are unrolled:
// the probe is the single hottest operation in the simulator.
func (c *Cache) Probe(ba uint64) *Line {
	base := (ba >> c.blockShift & c.setMask) * uint64(c.assoc)
	want := ba | 1
	switch c.assoc {
	case 2:
		t := c.tags[base : base+2 : base+2]
		if t[0] == want {
			return &c.sets[base]
		}
		if t[1] == want {
			return &c.sets[base+1]
		}
		return nil
	case 4:
		t := c.tags[base : base+4 : base+4]
		if t[0] == want {
			return &c.sets[base]
		}
		if t[1] == want {
			return &c.sets[base+1]
		}
		if t[2] == want {
			return &c.sets[base+2]
		}
		if t[3] == want {
			return &c.sets[base+3]
		}
		return nil
	}
	tags := c.tags[base : base+uint64(c.assoc)]
	for i := range tags {
		if tags[i] == want {
			return &c.sets[base+uint64(i)]
		}
	}
	return nil
}

// ProbeTouch is Probe plus a most-recently-used update in one associative
// scan — the hit path of every L1/L2 access. On a hit only the tag and lru
// arrays are touched; the Line itself stays untouched unless the caller
// dereferences the returned pointer.
func (c *Cache) ProbeTouch(ba uint64) *Line {
	base := (ba >> c.blockShift & c.setMask) * uint64(c.assoc)
	want := ba | 1
	// Full-slice expressions give the compiler the way count, so the
	// per-way tag compares below carry no bounds checks.
	switch c.assoc {
	case 2:
		t := c.tags[base : base+2 : base+2]
		if t[0] == want {
			c.clock++
			c.lru[base] = c.clock
			return &c.sets[base]
		}
		if t[1] == want {
			c.clock++
			c.lru[base+1] = c.clock
			return &c.sets[base+1]
		}
		return nil
	case 4:
		t := c.tags[base : base+4 : base+4]
		if t[0] == want {
			c.clock++
			c.lru[base] = c.clock
			return &c.sets[base]
		}
		if t[1] == want {
			c.clock++
			c.lru[base+1] = c.clock
			return &c.sets[base+1]
		}
		if t[2] == want {
			c.clock++
			c.lru[base+2] = c.clock
			return &c.sets[base+2]
		}
		if t[3] == want {
			c.clock++
			c.lru[base+3] = c.clock
			return &c.sets[base+3]
		}
		return nil
	}
	tags := c.tags[base : base+uint64(c.assoc)]
	for i := range tags {
		if tags[i] == want {
			j := base + uint64(i)
			c.clock++
			c.lru[j] = c.clock
			return &c.sets[j]
		}
	}
	return nil
}

// Victim describes a line evicted by Allocate.
type Victim struct {
	Tag   uint64
	State State
	Dirty bool
}

// Allocate inserts block ba with the given state, evicting the LRU way if
// the set is full. It returns the inserted line and the victim, if any, so
// callers that need to mark the fresh line (Dirty, a state tweak) can do so
// without paying a second associative Probe. The new line is marked most
// recently used and clean.
func (c *Cache) Allocate(ba uint64, st State) (*Line, Victim, bool) {
	if st == StateInvalid {
		panic("cache: Allocate with StateInvalid")
	}
	base := (ba >> c.blockShift & c.setMask) * uint64(c.assoc)
	// The victim scan runs over the dense tag mirror (0 = invalid way) and
	// the lru array, so a full set costs 2×assoc adjacent uint64 reads
	// instead of walking Line structs.
	tags := c.tags[base : base+uint64(c.assoc)]
	lru := c.lru[base : base+uint64(c.assoc)]
	victimIdx := 0
	var victim Victim
	hadVictim := false
	found := false
	for i := range tags {
		if tags[i] == 0 {
			victimIdx = i
			found = true
			break
		}
		if lru[i] < lru[victimIdx] {
			victimIdx = i
		}
	}
	ways := c.sets[base : base+uint64(c.assoc)]
	if !found {
		v := &ways[victimIdx]
		victim = Victim{Tag: v.Tag, State: v.State, Dirty: v.Dirty}
		hadVictim = true
		c.Stats.Evictions++
		if v.Dirty {
			c.Stats.DirtyEvictions++
		}
	}
	c.clock++
	ways[victimIdx] = Line{Tag: ba, State: st}
	lru[victimIdx] = c.clock
	c.tags[base+uint64(victimIdx)] = ba | 1
	return &ways[victimIdx], victim, hadVictim
}

// VisitLines calls fn for every valid line, in set/way order. Bus-side
// indexes (the coherence snoop filter) use it to rebuild from contents.
func (c *Cache) VisitLines(fn func(l *Line)) {
	for i := range c.sets {
		if c.sets[i].State != StateInvalid {
			fn(&c.sets[i])
		}
	}
}

// Invalidate removes block ba if present, returning whether it was dirty.
func (c *Cache) Invalidate(ba uint64) (wasDirty, wasPresent bool) {
	base := (ba >> c.blockShift & c.setMask) * uint64(c.assoc)
	want := ba | 1
	for i := base; i < base+uint64(c.assoc); i++ {
		if c.tags[i] == want {
			wasDirty = c.sets[i].Dirty
			c.sets[i] = Line{}
			c.tags[i] = 0
			c.lru[i] = 0
			return wasDirty, true
		}
	}
	return false, false
}

// simpleValid is the single valid state used by uniprocessor Access mode.
const simpleValid State = 1

// Access performs a whole load/store/fetch in uniprocessor writeback-
// allocate mode, updating stats and LRU. It returns true on a hit. It is the
// entry point for the sweep simulator; coherent hierarchies use
// Probe/Allocate/Invalidate instead.
func (c *Cache) Access(a mem.Addr, t mem.AccessType) bool {
	acc, miss := c.Stats.counters(t)
	return c.access(c.BlockAddr(a), t == mem.Write, acc, miss)
}

// access is Access with the block address precomputed and the stat counters
// already resolved, so range and sweep drivers pay the access-type dispatch
// once per reference stream rather than once per block.
func (c *Cache) access(ba uint64, write bool, acc, miss *uint64) bool {
	if acc != nil {
		*acc++
	}
	if l := c.ProbeTouch(ba); l != nil {
		if write {
			l.Dirty = true
		}
		return true
	}
	if miss != nil {
		*miss++
	}
	l, _, _ := c.Allocate(ba, simpleValid)
	if write {
		l.Dirty = true
	}
	return false
}

// AccessRange performs an access for every block the byte range [a, a+size)
// touches, in this cache's block size. Returns the number of misses.
func (c *Cache) AccessRange(a mem.Addr, size uint64, t mem.AccessType) int {
	if size == 0 {
		return 0
	}
	acc, miss := c.Stats.counters(t)
	write := t == mem.Write
	misses := 0
	bs := uint64(c.cfg.BlockBytes)
	last := c.BlockAddr(a + size - 1)
	for ba := c.BlockAddr(a); ba <= last; ba += bs {
		if !c.access(ba, write, acc, miss) {
			misses++
		}
	}
	return misses
}

// ResetStats zeroes the counters without disturbing cache contents, so a
// warm-up phase can be excluded from measurement — the paper reports
// steady-state intervals only.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
