package cache

import (
	"testing"

	"repro/internal/mem"
)

// FuzzAccessConsistency drives one cache with arbitrary access bytes and
// checks structural invariants: a just-accessed block always probes
// present, and stats monotonically account every access.
func FuzzAccessConsistency(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(Config{Name: "f", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64})
		var accesses uint64
		for i := 0; i+2 < len(data); i += 3 {
			addr := mem.Addr(data[i])<<8 | mem.Addr(data[i+1])
			kind := mem.AccessType(data[i+2] % 3)
			c.Access(addr, kind)
			accesses++
			if c.Probe(c.BlockAddr(addr)) == nil {
				t.Fatalf("block %x absent immediately after access", addr)
			}
		}
		if c.Stats.Accesses() != accesses {
			t.Fatalf("accounted %d of %d accesses", c.Stats.Accesses(), accesses)
		}
		if c.Stats.Misses() > c.Stats.Accesses() {
			t.Fatal("more misses than accesses")
		}
	})
}
