package cache

import (
	"testing"

	"repro/internal/mem"
)

// Substrate micro-benchmarks: the simulator's throughput is dominated by
// cache accesses, so regressions here slow every experiment.

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64})
	c.Access(0x1000, mem.Read)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, mem.Read)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.Addr(i)*64, mem.Read)
	}
}

func BenchmarkSweepNineConfigs(b *testing.B) {
	sw := NewSweep(SizeSweepConfigs("b"))
	r := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		sw.Access((r>>30)%(4<<20), mem.Read)
	}
}
