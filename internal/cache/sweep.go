package cache

import "repro/internal/mem"

// Sweep drives many cache geometries with the same reference stream in one
// pass, reproducing the paper's Simics+Sumo flow for Figures 12 and 13:
// miss rate versus cache size for a fixed associativity and block size.
type Sweep struct {
	caches []*Cache
	// groups batch the caches by block size so AccessRange splits a byte
	// range into blocks once per distinct block size, not once per cache —
	// the size sweeps run 9 geometries that all share one block size.
	groups []sweepGroup
	// Instructions counts retired instructions reported by the driver, the
	// denominator for misses-per-1000-instructions.
	Instructions uint64
}

type sweepGroup struct {
	blockBytes uint64
	caches     []*Cache
}

// NewSweep builds a sweep over the given geometries.
func NewSweep(cfgs []Config) *Sweep {
	s := &Sweep{}
	for _, cfg := range cfgs {
		c := New(cfg)
		s.caches = append(s.caches, c)
		bs := uint64(cfg.BlockBytes)
		gi := -1
		for i := range s.groups {
			if s.groups[i].blockBytes == bs {
				gi = i
				break
			}
		}
		if gi < 0 {
			s.groups = append(s.groups, sweepGroup{blockBytes: bs})
			gi = len(s.groups) - 1
		}
		s.groups[gi].caches = append(s.groups[gi].caches, c)
	}
	return s
}

// SizeSweepConfigs returns the standard ladder of geometries used in the
// paper's Figures 12/13: sizes from 64 KB to 16 MB, 4-way set associative,
// 64-byte blocks.
func SizeSweepConfigs(name string) []Config {
	var out []Config
	for size := 64 << 10; size <= 16<<20; size <<= 1 {
		out = append(out, Config{Name: name, SizeBytes: size, Assoc: 4, BlockBytes: 64})
	}
	return out
}

// AssocSweepConfigs varies associativity (direct-mapped through 16-way) at
// a fixed size and 64-byte blocks. The paper's memory-system simulator
// "allowed us to measure several cache performance statistics on a variety
// of caches with different sizes, associativities and block sizes" (§3.3);
// it reported 4-way numbers, this exposes the other dimension.
func AssocSweepConfigs(name string, sizeBytes int) []Config {
	var out []Config
	for assoc := 1; assoc <= 16; assoc <<= 1 {
		out = append(out, Config{Name: name, SizeBytes: sizeBytes, Assoc: assoc, BlockBytes: 64})
	}
	return out
}

// BlockSweepConfigs varies the block size (16-256 bytes) at a fixed size
// and 4-way associativity.
func BlockSweepConfigs(name string, sizeBytes int) []Config {
	var out []Config
	for block := 16; block <= 256; block <<= 1 {
		out = append(out, Config{Name: name, SizeBytes: sizeBytes, Assoc: 4, BlockBytes: block})
	}
	return out
}

// Access feeds one reference to every cache in the sweep.
func (s *Sweep) Access(a mem.Addr, t mem.AccessType) {
	for _, c := range s.caches {
		c.Access(a, t)
	}
}

// AccessRange feeds a byte-range reference to every cache in the sweep; the
// range is split into blocks once per distinct block size and every cache of
// that block size replays the same block stream.
func (s *Sweep) AccessRange(a mem.Addr, size uint64, t mem.AccessType) {
	if size == 0 {
		return
	}
	write := t == mem.Write
	for gi := range s.groups {
		g := &s.groups[gi]
		bs := g.blockBytes
		first := a &^ (bs - 1)
		last := (a + size - 1) &^ (bs - 1)
		for _, c := range g.caches {
			acc, miss := c.Stats.counters(t)
			for ba := first; ba <= last; ba += bs {
				c.access(ba, write, acc, miss)
			}
		}
	}
}

// CountInstructions adds to the retired-instruction denominator.
func (s *Sweep) CountInstructions(n uint64) { s.Instructions += n }

// Caches exposes the underlying caches for inspection.
func (s *Sweep) Caches() []*Cache { return s.caches }

// ResetStats zeroes every cache's counters and the instruction count,
// keeping contents warm.
func (s *Sweep) ResetStats() {
	for _, c := range s.caches {
		c.ResetStats()
	}
	s.Instructions = 0
}

// Point is one (size, miss-rate) sample of a sweep result.
type Point struct {
	SizeBytes     int
	MissesPer1000 float64 // misses per 1000 instructions
	MissRatio     float64 // misses per access
}

// MissCurve returns misses-per-1000-instructions (and per-access ratios) for
// each geometry in the sweep, in configuration order.
func (s *Sweep) MissCurve() []Point {
	out := make([]Point, 0, len(s.caches))
	for _, c := range s.caches {
		p := Point{SizeBytes: c.Config().SizeBytes, MissRatio: c.Stats.MissRatio()}
		if s.Instructions > 0 {
			p.MissesPer1000 = 1000 * float64(c.Stats.Misses()) / float64(s.Instructions)
		}
		out = append(out, p)
	}
	return out
}
