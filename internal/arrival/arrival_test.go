package arrival

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

// drain emits arrivals until the horizon and returns their times.
func drain(t *testing.T, cfg Config, seed uint64, horizon uint64) []uint64 {
	t.Helper()
	src, err := New(cfg, simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for {
		at := src.Next()
		if at >= horizon {
			return out
		}
		out = append(out, at)
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal, Flash} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("waves"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Config{
		{Pattern: Poisson, Rate: 0},
		{Pattern: Poisson, Rate: math.Inf(1)},
		{Pattern: Bursty, Rate: 1e-5, BurstFactor: 0.5, BurstFrac: 0.1, BurstDwellCycles: 1},
		{Pattern: Bursty, Rate: 1e-5, BurstFactor: 4, BurstFrac: 1.5, BurstDwellCycles: 1},
		{Pattern: Diurnal, Rate: 1e-5, PeriodCycles: 1, DiurnalAmplitude: -0.1},
		{Pattern: Flash, Rate: 1e-5, FlashFactor: 0.5, FlashRamp: 1, FlashDecay: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not have", i)
		}
	}
}

// TestDeterminism: same seed, byte-identical sequence; different seeds
// diverge.
func TestDeterminism(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal, Flash} {
		cfg := Config{Pattern: p, Rate: 2e-4, FlashAt: 10_000_000}
		a := drain(t, cfg, 7, 50_000_000)
		b := drain(t, cfg, 7, 50_000_000)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ: %d vs %d", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: sequence diverges at %d: %d vs %d", p, i, a[i], b[i])
			}
		}
		c := drain(t, cfg, 8, 50_000_000)
		if len(c) == len(a) {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%v: different seeds produced identical sequences", p)
			}
		}
	}
}

func TestMonotone(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal, Flash} {
		cfg := Config{Pattern: p, Rate: 5e-4, FlashAt: 5_000_000}
		seq := drain(t, cfg, 3, 30_000_000)
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("%v: time went backwards at %d: %d < %d", p, i, seq[i], seq[i-1])
			}
		}
	}
}

// TestMeanRate: the empirical rate of each stationary pattern lands within
// 10% of the configured mean over a long horizon.
func TestMeanRate(t *testing.T) {
	const horizon = 400_000_000
	const rate = 2e-4
	for _, p := range []Pattern{Poisson, Bursty, Diurnal} {
		cfg := Config{Pattern: p, Rate: rate}
		n := float64(len(drain(t, cfg, 11, horizon)))
		got := n / horizon
		if got < 0.9*rate || got > 1.1*rate {
			t.Errorf("%v: empirical rate %.3g, want within 10%% of %.3g", p, got, rate)
		}
	}
}

// TestBurstyIsBurstier: the variance of per-window arrival counts must be
// clearly super-Poisson (index of dispersion > 1.5 at window ~ dwell time).
func TestBurstyIsBurstier(t *testing.T) {
	const horizon = 400_000_000
	const window = 2_000_000
	disp := func(p Pattern) float64 {
		seq := drain(t, Config{Pattern: p, Rate: 2e-4}, 5, horizon)
		counts := make([]float64, horizon/window)
		for _, at := range seq {
			counts[at/window]++
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(counts))
		return v / mean
	}
	poisson, bursty := disp(Poisson), disp(Bursty)
	if poisson > 1.3 {
		t.Errorf("poisson dispersion %.2f, want ~1", poisson)
	}
	if bursty < 1.5 {
		t.Errorf("bursty dispersion %.2f, want > 1.5", bursty)
	}
	if bursty < 1.5*poisson {
		t.Errorf("bursty (%.2f) not clearly burstier than poisson (%.2f)", bursty, poisson)
	}
}

// TestFlashSpike: the arrival rate inside the spike plateau is close to
// FlashFactor times the base rate, and returns to base after the decay.
func TestFlashSpike(t *testing.T) {
	cfg := Config{
		Pattern: Flash, Rate: 2e-4,
		FlashAt: 100_000_000, FlashRamp: 5_000_000, FlashHold: 50_000_000, FlashDecay: 5_000_000,
		FlashFactor: 6,
	}
	seq := drain(t, cfg, 13, 300_000_000)
	countIn := func(lo, hi uint64) float64 {
		n := 0
		for _, at := range seq {
			if at >= lo && at < hi {
				n++
			}
		}
		return float64(n) / float64(hi-lo)
	}
	base := countIn(0, 100_000_000)
	plateau := countIn(105_000_000, 155_000_000)
	after := countIn(200_000_000, 300_000_000)
	if plateau < 4*base {
		t.Errorf("plateau rate %.3g not clearly above base %.3g (want ~6x)", plateau, base)
	}
	if after > 1.5*base {
		t.Errorf("post-spike rate %.3g did not return to base %.3g", after, base)
	}
}

// TestDiurnalSwing: the rate near the sinusoid's peak exceeds the rate near
// its trough by roughly the configured amplitude ratio.
func TestDiurnalSwing(t *testing.T) {
	cfg := Config{Pattern: Diurnal, Rate: 2e-4, PeriodCycles: 100_000_000, DiurnalAmplitude: 0.8}
	seq := drain(t, cfg, 17, 400_000_000)
	// Peak is at period/4, trough at 3*period/4 (sin phase).
	var peakN, troughN int
	for _, at := range seq {
		ph := at % 100_000_000
		if ph >= 15_000_000 && ph < 35_000_000 {
			peakN++
		}
		if ph >= 65_000_000 && ph < 85_000_000 {
			troughN++
		}
	}
	if troughN == 0 || float64(peakN)/float64(troughN) < 3 {
		t.Errorf("peak/trough arrivals %d/%d, want ratio >= 3 at amplitude 0.8", peakN, troughN)
	}
}

// TestRateEnvelope: the reported instantaneous rate never exceeds PeakRate.
func TestRateEnvelope(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal, Flash} {
		cfg := Config{Pattern: p, Rate: 2e-4, FlashAt: 1_000_000}
		src, err := New(cfg, simrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		peak := src.PeakRate()
		for t0 := uint64(0); t0 < 500_000_000; t0 += 1_000_000 {
			if r := src.Rate(t0); r > peak*1.0000001 {
				t.Fatalf("%v: rate(%d) = %g exceeds peak %g", p, t0, r, peak)
			}
		}
	}
}
