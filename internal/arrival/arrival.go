// Package arrival generates open-system request arrivals on the simulated
// clock. The reproduced workloads are closed-loop — a fixed population of
// warehouses or drivers issues the next request only after the previous one
// completes — so offered load self-throttles and the system can never be
// pushed past saturation. Production middleware lives under *open* traffic:
// users arrive independently of the system's state, keep arriving when it
// slows down, and occasionally all arrive at once. This package models that
// regime.
//
// Four deterministic processes are provided:
//
//   - Poisson: memoryless arrivals at a constant rate — the M/G/k baseline.
//   - Bursty: a two-state Markov-modulated Poisson process (MMPP) that
//     alternates between a quiet state and a burst state; over window sizes
//     longer than the dwell time it produces the bursty, high-variance
//     traffic self-similar models are invoked for, while staying cheap and
//     exactly reproducible.
//   - Diurnal: a sinusoidal rate ramp, the day/night cycle compressed onto
//     the simulated timeline.
//   - Flash: a constant base rate plus one flash-crowd spike — linear ramp
//     up, hold, linear decay — the "everyone saw the same tweet" scenario.
//
// Every draw comes from a dedicated simrand stream, so the same seed yields
// a byte-identical arrival sequence, and attaching an arrival source to a
// run never perturbs any other consumer's stream. Time-varying processes
// (diurnal, flash) are sampled by Lewis-Shedler thinning against the
// pattern's peak rate; the bursty process tracks its modulating state
// explicitly and exploits the exponential distribution's memorylessness at
// state boundaries.
package arrival

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// Pattern selects the arrival process shape.
type Pattern uint8

const (
	// Poisson is a homogeneous Poisson process at Config.Rate.
	Poisson Pattern = iota
	// Bursty is a two-state MMPP whose long-run mean rate is Config.Rate.
	Bursty
	// Diurnal modulates the rate sinusoidally around Config.Rate.
	Diurnal
	// Flash is Poisson at Config.Rate plus one flash-crowd spike window.
	Flash
	numPatterns
)

var patternNames = [numPatterns]string{
	Poisson: "poisson",
	Bursty:  "bursty",
	Diurnal: "diurnal",
	Flash:   "flash",
}

// String names the pattern as used on the -arrival flag.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// ParsePattern resolves a -arrival flag value.
func ParsePattern(s string) (Pattern, error) {
	for p, n := range patternNames {
		if n == s {
			return Pattern(p), nil
		}
	}
	return 0, fmt.Errorf("arrival: unknown pattern %q (want poisson, bursty, diurnal, or flash)", s)
}

// Config parameterizes an arrival source. Rate is the only mandatory field;
// the pattern-specific knobs all have workable defaults applied by New.
type Config struct {
	Pattern Pattern
	// Rate is the mean arrival rate in requests per cycle (e.g. 4e-5 is
	// 10k req/s at the 250 MHz clock). For Poisson, Bursty, and Diurnal it
	// is the long-run mean; for Flash it is the pre-spike base rate.
	Rate float64

	// BurstFactor multiplies the rate inside the burst state (> 1).
	BurstFactor float64
	// BurstFrac is the long-run fraction of time spent bursting (0, 1).
	BurstFrac float64
	// BurstDwellCycles is the mean dwell time of the burst state; the quiet
	// state's dwell follows from BurstFrac.
	BurstDwellCycles uint64

	// PeriodCycles is the diurnal period on the simulated clock.
	PeriodCycles uint64
	// DiurnalAmplitude in [0, 1) swings the rate between Rate*(1-A) and
	// Rate*(1+A) over each period.
	DiurnalAmplitude float64

	// FlashAt is the spike's start cycle; FlashRamp/FlashHold/FlashDecay
	// shape it (linear up, plateau, linear down).
	FlashAt, FlashRamp, FlashHold, FlashDecay uint64
	// FlashFactor is the plateau rate multiplier (> 1).
	FlashFactor float64
}

// Defaults fills zero-valued pattern knobs. The burst defaults give 4x
// bursts about 12% of the time with 8 ms dwells; the diurnal default is one
// "day" per 200 Mcy (800 ms) swinging ±80%; the flash default is a 6x spike
// ramping over 4 Mcy, holding 20 Mcy.
func (c Config) Defaults() Config {
	if c.BurstFactor == 0 {
		c.BurstFactor = 4
	}
	if c.BurstFrac == 0 {
		c.BurstFrac = 0.125
	}
	if c.BurstDwellCycles == 0 {
		c.BurstDwellCycles = 2_000_000
	}
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 200_000_000
	}
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.8
	}
	if c.FlashFactor == 0 {
		c.FlashFactor = 6
	}
	if c.FlashRamp == 0 {
		c.FlashRamp = 4_000_000
	}
	if c.FlashHold == 0 {
		c.FlashHold = 20_000_000
	}
	if c.FlashDecay == 0 {
		c.FlashDecay = 8_000_000
	}
	return c
}

// Validate rejects configurations that cannot generate a process.
func (c Config) Validate() error {
	if int(c.Pattern) >= int(numPatterns) {
		return fmt.Errorf("arrival: unknown pattern %d", c.Pattern)
	}
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("arrival: rate %g must be positive and finite", c.Rate)
	}
	switch c.Pattern {
	case Bursty:
		if c.BurstFactor <= 1 {
			return fmt.Errorf("arrival: burst factor %g must exceed 1", c.BurstFactor)
		}
		if c.BurstFrac <= 0 || c.BurstFrac >= 1 {
			return fmt.Errorf("arrival: burst fraction %g outside (0, 1)", c.BurstFrac)
		}
		if c.BurstDwellCycles == 0 {
			return fmt.Errorf("arrival: burst dwell must be positive")
		}
	case Diurnal:
		if c.PeriodCycles == 0 {
			return fmt.Errorf("arrival: diurnal period must be positive")
		}
		if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
			return fmt.Errorf("arrival: diurnal amplitude %g outside [0, 1)", c.DiurnalAmplitude)
		}
	case Flash:
		if c.FlashFactor <= 1 {
			return fmt.Errorf("arrival: flash factor %g must exceed 1", c.FlashFactor)
		}
		if c.FlashRamp == 0 || c.FlashDecay == 0 {
			return fmt.Errorf("arrival: flash ramp and decay must be positive")
		}
	}
	return nil
}

// Source generates one arrival sequence. It is single-consumer and not safe
// for concurrent use, like every per-run component of the simulator.
type Source struct {
	cfg Config
	rng *simrand.Rand
	now uint64 // last emitted arrival (or 0)

	// Bursty state: which modulating state is active and until when.
	inBurst  bool
	stateEnd uint64
	// quietRate/burstRate derive from Rate so the long-run mean is Rate.
	quietRate, burstRate float64

	// Generated counts emitted arrivals.
	Generated uint64
}

// New builds a source from cfg (defaults applied) drawing from rng, which
// must be a dedicated stream derived from the run seed.
func New(cfg Config, rng *simrand.Rand) (*Source, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Source{cfg: cfg, rng: rng}
	if cfg.Pattern == Bursty {
		// Solve quiet/burst rates so frac*burst + (1-frac)*quiet = Rate with
		// burst = factor*quiet.
		s.quietRate = cfg.Rate / (1 - cfg.BurstFrac + cfg.BurstFrac*cfg.BurstFactor)
		s.burstRate = s.quietRate * cfg.BurstFactor
		s.scheduleState(0)
	}
	return s, nil
}

// Config returns the source's effective (defaulted) configuration.
func (s *Source) Config() Config { return s.cfg }

// Rate returns the instantaneous expected arrival rate at cycle t, in
// requests per cycle. For the bursty process this is the long-run mean (the
// modulating state is hidden); for diurnal and flash it is the deterministic
// rate function the process is thinned against.
func (s *Source) Rate(t uint64) float64 {
	switch s.cfg.Pattern {
	case Diurnal:
		return s.diurnalRate(t)
	case Flash:
		return s.flashRate(t)
	default:
		return s.cfg.Rate
	}
}

// PeakRate returns the pattern's maximum instantaneous rate — the thinning
// envelope, and the capacity planners' worst case.
func (s *Source) PeakRate() float64 {
	switch s.cfg.Pattern {
	case Bursty:
		return s.burstRate
	case Diurnal:
		return s.cfg.Rate * (1 + s.cfg.DiurnalAmplitude)
	case Flash:
		return s.cfg.Rate * s.cfg.FlashFactor
	default:
		return s.cfg.Rate
	}
}

func (s *Source) diurnalRate(t uint64) float64 {
	phase := 2 * math.Pi * float64(t%s.cfg.PeriodCycles) / float64(s.cfg.PeriodCycles)
	return s.cfg.Rate * (1 + s.cfg.DiurnalAmplitude*math.Sin(phase))
}

func (s *Source) flashRate(t uint64) float64 {
	c := s.cfg
	base := c.Rate
	if t < c.FlashAt {
		return base
	}
	dt := t - c.FlashAt
	peak := base * c.FlashFactor
	switch {
	case dt < c.FlashRamp:
		return base + (peak-base)*float64(dt)/float64(c.FlashRamp)
	case dt < c.FlashRamp+c.FlashHold:
		return peak
	case dt < c.FlashRamp+c.FlashHold+c.FlashDecay:
		d := dt - c.FlashRamp - c.FlashHold
		return peak - (peak-base)*float64(d)/float64(c.FlashDecay)
	default:
		return base
	}
}

// scheduleState enters the next modulating state at cycle t (bursty only).
// Dwell times are exponential: the chain spends BurstDwellCycles mean in the
// burst state and the complementary time in the quiet state, giving the
// configured long-run burst fraction.
func (s *Source) scheduleState(t uint64) {
	var mean float64
	if s.inBurst {
		mean = float64(s.cfg.BurstDwellCycles)
	} else {
		mean = float64(s.cfg.BurstDwellCycles) * (1 - s.cfg.BurstFrac) / s.cfg.BurstFrac
	}
	dwell := s.rng.Exp(mean)
	if dwell < 1 {
		dwell = 1
	}
	s.stateEnd = t + uint64(dwell)
	if s.stateEnd <= t { // overflow guard near the end of the clock
		s.stateEnd = math.MaxUint64
	}
}

// Next returns the next arrival cycle. The sequence is strictly
// non-decreasing; consecutive arrivals may share a cycle at extreme rates.
func (s *Source) Next() uint64 {
	switch s.cfg.Pattern {
	case Bursty:
		s.now = s.nextBursty()
	case Diurnal, Flash:
		s.now = s.nextThinned()
	default:
		s.now += s.gap(s.cfg.Rate)
	}
	s.Generated++
	return s.now
}

// gap draws one exponential inter-arrival gap at the given rate, rounded to
// at least zero cycles.
func (s *Source) gap(rate float64) uint64 {
	return uint64(s.rng.Exp(1 / rate))
}

// nextBursty advances the two-state MMPP. A gap that crosses the current
// state's end is discarded beyond the boundary: by memorylessness the
// arrival process restarts at the boundary under the new state's rate.
func (s *Source) nextBursty() uint64 {
	t := s.now
	for {
		rate := s.quietRate
		if s.inBurst {
			rate = s.burstRate
		}
		cand := t + s.gap(rate)
		if cand < s.stateEnd {
			return cand
		}
		t = s.stateEnd
		s.inBurst = !s.inBurst
		s.scheduleState(t)
	}
}

// nextThinned samples the non-homogeneous process by Lewis-Shedler
// thinning: candidate arrivals at the peak rate are accepted with
// probability rate(t)/peak. Both the candidate gap and the acceptance draw
// come from the source's own stream, preserving determinism.
func (s *Source) nextThinned() uint64 {
	peak := s.PeakRate()
	t := s.now
	for {
		t += s.gap(peak)
		if s.rng.Float64() < s.Rate(t)/peak {
			return t
		}
	}
}
