package mem

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestLine(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {127, 64}, {128, 128},
	}
	for _, c := range cases {
		if got := Line(c.in); got != c.want {
			t.Errorf("Line(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		a    Addr
		size uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{63, 1, 1},
		{64, 128, 2},
		{100, 200, 4}, // 100..299 spans lines 64,128,192,256
	}
	for _, c := range cases {
		if got := LinesSpanned(c.a, c.size); got != c.want {
			t.Errorf("LinesSpanned(%d,%d) = %d, want %d", c.a, c.size, got, c.want)
		}
	}
}

func TestQuickLinesSpannedConsistent(t *testing.T) {
	f := func(a uint32, size uint16) bool {
		if size == 0 {
			return LinesSpanned(Addr(a), 0) == 0
		}
		n := LinesSpanned(Addr(a), uint64(size))
		// Count lines the slow way.
		var slow uint64
		seen := Addr(0xffffffffffffffff)
		for off := uint64(0); off < uint64(size); off++ {
			l := Line(Addr(a) + off)
			if l != seen {
				slow++
				seen = l
			}
		}
		return n == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceNonOverlapping(t *testing.T) {
	s := NewAddrSpace()
	a := s.Reserve("a", 1000)
	b := s.Reserve("b", 5<<20)
	c := s.Reserve("c", 1)
	regions := []Region{a, b, c}
	for i := range regions {
		if regions[i].Base == 0 {
			t.Fatal("region at address 0")
		}
		if regions[i].Base%regionAlign != 0 {
			t.Fatalf("region %s not aligned", regions[i].Name)
		}
		for j := i + 1; j < len(regions); j++ {
			ri, rj := regions[i], regions[j]
			if ri.Base < rj.End() && rj.Base < ri.End() {
				t.Fatalf("regions %s and %s overlap", ri.Name, rj.Name)
			}
		}
	}
}

func TestAddrSpaceFindRegion(t *testing.T) {
	s := NewAddrSpace()
	a := s.Reserve("a", 100)
	if got, ok := s.FindRegion(a.Base + 50); !ok || got.Name != "a" {
		t.Fatal("FindRegion missed interior address")
	}
	if _, ok := s.FindRegion(a.Base + 100); ok {
		t.Fatal("FindRegion matched end address")
	}
	if _, ok := s.FindRegion(0); ok {
		t.Fatal("FindRegion matched address 0")
	}
}

// TestFindRegionGaps exercises addresses in the alignment gaps between
// regions: Reserve rounds each base up to the 4 MB boundary, so a region
// whose size is not a multiple of regionAlign leaves a hole before the next
// base. The binary search must reject hole addresses (the candidate region's
// Contains check) rather than blaming the nearest region.
func TestFindRegionGaps(t *testing.T) {
	s := NewAddrSpace()
	// Sizes chosen to leave gaps: none is a multiple of 4 MB.
	regs := []Region{
		s.Reserve("r0", 100),
		s.Reserve("r1", 3<<20),
		s.Reserve("r2", (4<<20)+1),
		s.Reserve("r3", 64),
	}
	for i, r := range regs {
		// Interior, first, and last byte all resolve to the region.
		for _, a := range []Addr{r.Base, r.Base + r.Size/2, r.End() - 1} {
			got, ok := s.FindRegion(a)
			if !ok || got.Name != r.Name {
				t.Fatalf("FindRegion(%#x) = %v,%v, want %s", a, got.Name, ok, r.Name)
			}
		}
		// The gap between this region's end and the next 4 MB boundary
		// belongs to nobody.
		for _, a := range []Addr{r.End(), r.Base + (r.Size+regionAlign-1)&^(regionAlign-1) - 1} {
			if a < r.End() {
				continue // size was exactly aligned; no gap byte here
			}
			if got, ok := s.FindRegion(a); ok {
				t.Fatalf("FindRegion(%#x) in gap after %s matched %s", a, r.Name, got.Name)
			}
		}
		_ = i
	}
	// Below the first region and far past the last.
	if _, ok := s.FindRegion(regionAlign - 1); ok {
		t.Fatal("FindRegion matched below the first region")
	}
	if _, ok := s.FindRegion(regs[3].End() + 100*regionAlign); ok {
		t.Fatal("FindRegion matched past the last region")
	}
}

// TestFindRegionMatchesLinearScan cross-checks the binary search against the
// obvious linear scan over a larger reservation set.
func TestFindRegionMatchesLinearScan(t *testing.T) {
	s := NewAddrSpace()
	sizes := []uint64{100, 1 << 20, 3 << 20, (4 << 20) + 7, 64, 12<<20 + 1, 9, 2 << 20}
	for i, sz := range sizes {
		s.Reserve(fmt.Sprintf("r%d", i), sz)
	}
	linear := func(a Addr) (Region, bool) {
		for _, r := range s.Regions() {
			if r.Contains(a) {
				return r, true
			}
		}
		return Region{}, false
	}
	var probes []Addr
	for _, r := range s.Regions() {
		probes = append(probes, r.Base-1, r.Base, r.Base+1, r.Base+r.Size/2, r.End()-1, r.End(), r.End()+regionAlign/2)
	}
	probes = append(probes, 0, 1, regionAlign/2, s.Regions()[len(sizes)-1].End()+42*regionAlign)
	for _, a := range probes {
		wantR, wantOK := linear(a)
		gotR, gotOK := s.FindRegion(a)
		if gotOK != wantOK || gotR != wantR {
			t.Fatalf("FindRegion(%#x) = %v,%v; linear scan says %v,%v", a, gotR, gotOK, wantR, wantOK)
		}
	}
}

func TestReservePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAddrSpace().Reserve("zero", 0)
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "x", Base: 128, Size: 64}
	if !r.Contains(128) || !r.Contains(191) || r.Contains(192) || r.Contains(127) {
		t.Fatal("Contains boundaries wrong")
	}
}

func TestAccessTypeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || IFetch.String() != "ifetch" {
		t.Fatal("access type names wrong")
	}
}
