// Package mem defines the simulator's physical address vocabulary: 64-bit
// addresses, access types, cache-line arithmetic, and a per-machine address
// space carved into named regions (kernel code/data, per-component code
// segments, the JVM heap, thread stacks).
//
// Every simulated machine owns one AddrSpace. Addresses never alias between
// machines; only the measured machine's references reach the memory-system
// simulator, mirroring how the paper filtered the application server's
// processors out of a 16-CPU Simics trace.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a simulated physical byte address.
type Addr = uint64

// LineBytes is the coherence-unit size. The paper's experiments use 64-byte
// blocks throughout (L2 and the sweep simulator), so it is a constant here;
// the sweep simulator in internal/cache additionally supports other block
// sizes for its own configurations.
const LineBytes = 64

// LineShift is log2(LineBytes).
const LineShift = 6

// Line returns the cache-line-aligned address containing a.
func Line(a Addr) Addr { return a &^ (LineBytes - 1) }

// LinesSpanned returns how many coherence lines the byte range [a, a+size)
// touches. A zero-size range spans zero lines.
func LinesSpanned(a Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := Line(a)
	last := Line(a + size - 1)
	return (last-first)/LineBytes + 1
}

// AccessType classifies a memory reference.
type AccessType uint8

const (
	// Read is a data load.
	Read AccessType = iota
	// Write is a data store.
	Write
	// IFetch is an instruction fetch.
	IFetch
)

// String returns a short name for the access type.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "read"
	case Write:
		return "write"
	case IFetch:
		return "ifetch"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// ComponentID identifies a code component (a synthetic "binary": kernel
// networking code, the JVM, the application server, servlet code, ...).
// Components are registered per machine in an ifetch.CodeLayout; the ID is
// the registration index.
type ComponentID uint8

// Region is a named, contiguous carve-out of a machine's address space.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + r.Size }

// Contains reports whether a lies inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// regionAlign keeps regions apart on large boundaries so that a stray
// off-by-one can never silently alias two regions' cache lines.
const regionAlign = 1 << 22 // 4 MB

// AddrSpace hands out non-overlapping regions of one machine's physical
// address space. The zero value is not valid; use NewAddrSpace.
type AddrSpace struct {
	next    Addr
	regions []Region
}

// NewAddrSpace returns an address space whose first region starts at a
// non-zero base (so that address 0 can serve as a sentinel).
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{next: regionAlign}
}

// Reserve carves out a new region of at least size bytes, aligned to a 4 MB
// boundary, and returns it. It panics on a zero size: a zero-sized region is
// always a configuration bug.
func (s *AddrSpace) Reserve(name string, size uint64) Region {
	if size == 0 {
		panic("mem: Reserve with zero size: " + name)
	}
	r := Region{Name: name, Base: s.next, Size: size}
	s.regions = append(s.regions, r)
	s.next += (size + regionAlign - 1) &^ (regionAlign - 1)
	return r
}

// Regions returns all reserved regions in reservation order.
func (s *AddrSpace) Regions() []Region { return s.regions }

// FindRegion returns the region containing a, if any. Reserve hands out
// regions at strictly ascending bases, so the candidate is the last region
// whose base is ≤ a — found by binary search. This sits on the per-miss
// classification path (bus ClassifyAddr, attribution), where the old linear
// scan was O(regions) per lookup.
func (s *AddrSpace) FindRegion(a Addr) (Region, bool) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > a })
	if i > 0 && s.regions[i-1].Contains(a) {
		return s.regions[i-1], true
	}
	return Region{}, false
}
