package trace

import "testing"

// FuzzRecorderTotals drives the recorder with arbitrary item mixes and
// checks that instruction totals and item balance survive coalescing.
func FuzzRecorderTotals(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 0, 20, 2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRecorder("fuzz", true)
		var wantInstr uint64
		var wantRefs int
		for i := 0; i+1 < len(data); i += 2 {
			switch data[i] % 4 {
			case 0:
				n := uint32(data[i+1])
				r.Instr(1, n)
				wantInstr += uint64(n)
			case 1:
				r.Read(uint64(data[i+1])*64, 8)
				wantRefs++
			case 2:
				r.Write(uint64(data[i+1])*64, 8)
				wantRefs++
			case 3:
				r.Think(uint32(data[i+1]))
			}
		}
		op := r.Finish()
		if op.Instructions() != wantInstr {
			t.Fatalf("instructions %d, want %d", op.Instructions(), wantInstr)
		}
		if op.DataRefs() != wantRefs {
			t.Fatalf("refs %d, want %d", op.DataRefs(), wantRefs)
		}
	})
}
