// Package trace defines the annotated operation traces that connect the
// simulator's two layers.
//
// The functional layer (workload code running against the simulated JVM
// heap) *records* each operation — a SPECjbb transaction or an ECperf BBop —
// as a sequence of items: instruction segments tagged with their code
// component, data references at real heap addresses, lock acquire/release
// points, network round trips, and stop-the-world GC pauses. The timing
// layer (internal/osmodel) then *plays back* the items over simulated time
// on a processor, charging cycles through the cache hierarchy and blocking
// the thread at lock, I/O, and GC points.
//
// This mirrors the paper's methodology: behavior is captured once
// (natively / functionally) and analyzed through a configurable memory
// system simulator.
package trace

import "repro/internal/mem"

// Kind discriminates trace items.
type Kind uint8

const (
	// KindInstr is a segment of N instructions from code component Comp,
	// executed in user or kernel mode depending on the component.
	KindInstr Kind = iota
	// KindRead is a data load of Size bytes at Addr.
	KindRead
	// KindWrite is a data store of Size bytes at Addr.
	KindWrite
	// KindLockAcq acquires the monitor identified by ID whose lock word
	// lives at Addr. The playback engine may block the thread here.
	KindLockAcq
	// KindLockRel releases the monitor identified by ID at Addr.
	KindLockRel
	// KindNetCall is a synchronous network round trip to machine Peer
	// (request Size bytes, response Aux bytes). The thread blocks until
	// the simulated peer responds; the surrounding kernel-mode instruction
	// segments are recorded separately by the netsim layer.
	KindNetCall
	// KindThink is a pure delay of N cycles (driver pacing / think time).
	KindThink
	// KindGCPause is a stop-the-world garbage collection triggered at this
	// point of the operation. GC carries the collector's own recorded
	// work, which the engine plays on a single processor while all other
	// processors in the set sit idle.
	KindGCPause
	// KindSemAcq acquires one unit of the counting semaphore ID with
	// capacity Aux (resource pools: database connections). The thread
	// blocks while the pool is exhausted.
	KindSemAcq
	// KindSemRel returns one unit of semaphore ID.
	KindSemRel
)

// Item is one step of a recorded operation. Fields are overloaded by Kind to
// keep the struct small; use the Recorder to construct items and the
// accessors' documentation above for meaning.
type Item struct {
	Kind Kind
	Comp mem.ComponentID // KindInstr: code component
	Peer uint8           // KindNetCall: destination machine index
	N    uint32          // KindInstr: count; KindThink: cycles; KindRead/Write: size
	Aux  uint32          // KindNetCall: response bytes
	Addr mem.Addr        // KindRead/Write: address; KindLockAcq/Rel: lock word
	ID   uint64          // KindLockAcq/Rel: lock ID; KindNetCall: request size
	GC   *GC             // KindGCPause only
}

// GC is a recorded stop-the-world collection: the collector's own memory
// behavior plus summary figures used by the memory-scaling experiments.
type GC struct {
	Items      []Item // collector's trace (instruction segments + copy refs)
	Major      bool   // true for old-generation mark-compact collections
	LiveBytes  uint64 // live heap bytes immediately after this collection
	CopiedObjs uint64 // objects copied (minor) or relocated (major)
	FreedBytes uint64 // bytes reclaimed
}

// Op is one recorded operation of one thread.
type Op struct {
	Items []Item
	// Business marks operations counted toward throughput (SPECjbb
	// transactions, ECperf BBops); bookkeeping operations are not counted.
	Business bool
	// Tag names the operation type for per-type statistics.
	Tag string
}

// Instructions returns the total instruction count in the op, including
// instructions inside any embedded GC pauses.
func (o *Op) Instructions() uint64 {
	var n uint64
	for i := range o.Items {
		it := &o.Items[i]
		switch it.Kind {
		case KindInstr:
			n += uint64(it.N)
		case KindGCPause:
			if it.GC != nil {
				for j := range it.GC.Items {
					if it.GC.Items[j].Kind == KindInstr {
						n += uint64(it.GC.Items[j].N)
					}
				}
			}
		}
	}
	return n
}

// DataRefs returns the number of data reference items (not bytes) in the op
// itself, excluding GC pauses.
func (o *Op) DataRefs() int {
	n := 0
	for i := range o.Items {
		switch o.Items[i].Kind {
		case KindRead, KindWrite:
			n++
		}
	}
	return n
}

// Recorder builds an Op. Workload code drives it during functional
// execution; it coalesces adjacent instruction segments of the same
// component so that hot paths do not bloat the trace.
type Recorder struct {
	op Op
}

// NewRecorder returns a recorder for one operation.
func NewRecorder(tag string, business bool) *Recorder {
	return &Recorder{op: Op{Tag: tag, Business: business}}
}

// Instr records n instructions of component comp. Zero counts are dropped.
func (r *Recorder) Instr(comp mem.ComponentID, n uint32) {
	if n == 0 {
		return
	}
	items := r.op.Items
	if len(items) > 0 {
		last := &items[len(items)-1]
		if last.Kind == KindInstr && last.Comp == comp {
			// Coalesce, saturating well below uint32 overflow.
			if uint64(last.N)+uint64(n) < 1<<31 {
				last.N += n
				return
			}
		}
	}
	r.op.Items = append(r.op.Items, Item{Kind: KindInstr, Comp: comp, N: n})
}

// Read records a data load of size bytes at addr.
func (r *Recorder) Read(addr mem.Addr, size uint32) {
	r.op.Items = append(r.op.Items, Item{Kind: KindRead, Addr: addr, N: size})
}

// Write records a data store of size bytes at addr.
func (r *Recorder) Write(addr mem.Addr, size uint32) {
	r.op.Items = append(r.op.Items, Item{Kind: KindWrite, Addr: addr, N: size})
}

// LockAcquire records a monitor acquisition (lock word at addr).
func (r *Recorder) LockAcquire(id uint64, addr mem.Addr) {
	r.op.Items = append(r.op.Items, Item{Kind: KindLockAcq, ID: id, Addr: addr})
}

// LockAcquireSpin records acquisition of an adaptive (spin-then-block)
// lock, the kind kernels use in the network stack. Contention on a spin
// lock burns busy cycles in the owner's mode instead of blocking
// immediately — the mechanism behind ECperf's growing system time
// (Figure 5). Aux=1 marks the spin variant for the playback engine.
func (r *Recorder) LockAcquireSpin(id uint64, addr mem.Addr) {
	r.op.Items = append(r.op.Items, Item{Kind: KindLockAcq, ID: id, Addr: addr, Aux: 1})
}

// LockRelease records a monitor release.
func (r *Recorder) LockRelease(id uint64, addr mem.Addr) {
	r.op.Items = append(r.op.Items, Item{Kind: KindLockRel, ID: id, Addr: addr})
}

// NetCall records a synchronous round trip to machine peer.
func (r *Recorder) NetCall(peer uint8, reqBytes, respBytes uint32) {
	r.op.Items = append(r.op.Items, Item{Kind: KindNetCall, Peer: peer, ID: uint64(reqBytes), Aux: respBytes})
}

// Think records a pure delay of the given cycles.
func (r *Recorder) Think(cycles uint32) {
	if cycles == 0 {
		return
	}
	r.op.Items = append(r.op.Items, Item{Kind: KindThink, N: cycles})
}

// GCPause records a stop-the-world collection at this point.
func (r *Recorder) GCPause(gc *GC) {
	r.op.Items = append(r.op.Items, Item{Kind: KindGCPause, GC: gc})
}

// SemAcquire records taking one unit of a counting semaphore (a resource
// pool of the given capacity).
func (r *Recorder) SemAcquire(id uint64, capacity uint32) {
	r.op.Items = append(r.op.Items, Item{Kind: KindSemAcq, ID: id, Aux: capacity})
}

// SemRelease records returning one unit of the semaphore.
func (r *Recorder) SemRelease(id uint64) {
	r.op.Items = append(r.op.Items, Item{Kind: KindSemRel, ID: id})
}

// SetBusiness overrides whether the operation counts toward throughput —
// the resilience layer demotes an operation that exhausted its retries or
// was shed at admission, after recording has already begun.
func (r *Recorder) SetBusiness(b bool) { r.op.Business = b }

// SetTag renames the operation mid-recording (e.g. appending ".fail" so
// failed operations report their own latency distribution).
func (r *Recorder) SetTag(tag string) { r.op.Tag = tag }

// Len returns the number of items recorded so far.
func (r *Recorder) Len() int { return len(r.op.Items) }

// Finish returns the completed operation. The recorder must not be used
// afterwards.
func (r *Recorder) Finish() *Op {
	op := r.op
	r.op = Op{}
	return &op
}

// Reset re-arms the recorder for the next operation, reusing the Items
// backing array of the previous one. Pair it with Handoff on a long-lived
// per-thread recorder: together they record millions of operations without
// regrowing a fresh Items array for each.
func (r *Recorder) Reset(tag string, business bool) {
	r.op.Items = r.op.Items[:0]
	r.op.Tag = tag
	r.op.Business = business
}

// Handoff returns the recorded operation without detaching it from the
// recorder: the next Reset reuses the same Op and its Items storage.
// The caller must not touch the op again after Reset — the playback
// engine's OpSource contract (at most one op in flight per thread, NextOp
// called only after the previous op completes) guarantees exactly that
// window.
func (r *Recorder) Handoff() *Op {
	return &r.op
}
