package trace

import (
	"testing"
	"testing/quick"
)

func TestRecorderCoalescesInstr(t *testing.T) {
	r := NewRecorder("x", true)
	r.Instr(1, 10)
	r.Instr(1, 20)
	r.Instr(2, 5)
	r.Instr(2, 0) // dropped
	op := r.Finish()
	if len(op.Items) != 2 {
		t.Fatalf("items = %d, want 2 (coalesced)", len(op.Items))
	}
	if op.Items[0].N != 30 || op.Items[1].N != 5 {
		t.Fatalf("counts = %d,%d", op.Items[0].N, op.Items[1].N)
	}
	if op.Instructions() != 35 {
		t.Fatalf("Instructions = %d", op.Instructions())
	}
}

func TestRecorderNoCoalesceAcrossKinds(t *testing.T) {
	r := NewRecorder("x", false)
	r.Instr(1, 10)
	r.Read(0x1000, 8)
	r.Instr(1, 10)
	op := r.Finish()
	if len(op.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(op.Items))
	}
}

func TestOpMetadata(t *testing.T) {
	r := NewRecorder("neworder", true)
	op := r.Finish()
	if op.Tag != "neworder" || !op.Business {
		t.Fatal("metadata lost")
	}
}

func TestDataRefs(t *testing.T) {
	r := NewRecorder("x", true)
	r.Read(0x1000, 8)
	r.Write(0x2000, 16)
	r.Instr(0, 100)
	r.LockAcquire(1, 0x3000)
	r.LockRelease(1, 0x3000)
	op := r.Finish()
	if op.DataRefs() != 2 {
		t.Fatalf("DataRefs = %d", op.DataRefs())
	}
}

func TestGCInstructionsCounted(t *testing.T) {
	gcRec := NewRecorder("gc", false)
	gcRec.Instr(3, 500)
	gcRec.Read(0x5000, 64)
	gcOp := gcRec.Finish()
	gc := &GC{Items: gcOp.Items, LiveBytes: 1 << 20}

	r := NewRecorder("alloc-heavy", true)
	r.Instr(1, 100)
	r.GCPause(gc)
	op := r.Finish()
	if op.Instructions() != 600 {
		t.Fatalf("Instructions = %d, want 600 (incl. GC)", op.Instructions())
	}
}

func TestNetCallFields(t *testing.T) {
	r := NewRecorder("x", true)
	r.NetCall(2, 512, 4096)
	op := r.Finish()
	it := op.Items[0]
	if it.Kind != KindNetCall || it.Peer != 2 || it.ID != 512 || it.Aux != 4096 {
		t.Fatalf("netcall item wrong: %+v", it)
	}
}

func TestThinkZeroDropped(t *testing.T) {
	r := NewRecorder("x", true)
	r.Think(0)
	r.Think(100)
	op := r.Finish()
	if len(op.Items) != 1 || op.Items[0].N != 100 {
		t.Fatalf("think items wrong: %+v", op.Items)
	}
}

func TestFinishResets(t *testing.T) {
	r := NewRecorder("a", true)
	r.Instr(1, 5)
	op1 := r.Finish()
	if len(op1.Items) != 1 {
		t.Fatal("first op wrong")
	}
}

func TestQuickInstructionTotals(t *testing.T) {
	f := func(counts []uint16) bool {
		r := NewRecorder("q", true)
		var want uint64
		for i, c := range counts {
			r.Instr(2, uint32(c))
			want += uint64(c)
			if i%3 == 0 {
				r.Read(uint64(i)*64, 8) // break coalescing sometimes
			}
		}
		return r.Finish().Instructions() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
