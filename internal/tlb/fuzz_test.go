package tlb

import "testing"

// FuzzTLBConsistency checks that any access sequence keeps the counters
// coherent and a repeated address always hits on its second consecutive
// access.
func FuzzTLBConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		tl := New(Config{Entries: 4, PageBytes: 8 << 10, MissPenalty: 40})
		for i := 0; i+1 < len(data); i += 2 {
			addr := uint64(data[i])<<16 | uint64(data[i+1])<<8
			tl.Access(addr)
			if tl.Access(addr) != 0 {
				t.Fatalf("back-to-back access to %x missed", addr)
			}
		}
		if tl.Misses > tl.Lookups {
			t.Fatal("more misses than lookups")
		}
	})
}
