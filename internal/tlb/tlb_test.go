package tlb

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	tl := New(DefaultConfig())
	if tl.Access(0x12345) == 0 {
		t.Fatal("cold access hit")
	}
	if tl.Access(0x12346) != 0 {
		t.Fatal("same-page access missed")
	}
	if tl.Misses != 1 || tl.Lookups != 2 {
		t.Fatalf("counters: %d/%d", tl.Misses, tl.Lookups)
	}
}

func TestPageBoundary(t *testing.T) {
	tl := New(Config{Entries: 4, PageBytes: 8 << 10, MissPenalty: 40})
	tl.Access(0)
	if tl.Access(8<<10-1) != 0 {
		t.Fatal("last byte of page missed")
	}
	if tl.Access(8<<10) == 0 {
		t.Fatal("next page hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(Config{Entries: 2, PageBytes: 8 << 10, MissPenalty: 40})
	p := func(i uint64) uint64 { return i * (8 << 10) }
	tl.Access(p(0))
	tl.Access(p(1))
	tl.Access(p(0)) // refresh 0; 1 becomes LRU
	tl.Access(p(2)) // evicts 1
	if tl.Access(p(0)) != 0 {
		t.Fatal("page 0 evicted despite being MRU")
	}
	if tl.Access(p(1)) == 0 {
		t.Fatal("page 1 survived eviction")
	}
}

func TestReach(t *testing.T) {
	base := New(DefaultConfig())
	ism := New(ISMConfig())
	if base.Reach() != 64*(8<<10) {
		t.Fatalf("base reach = %d", base.Reach())
	}
	if ism.Reach() != 64*(4<<20) {
		t.Fatalf("ISM reach = %d", ism.Reach())
	}
	if ism.Reach() <= base.Reach() {
		t.Fatal("ISM did not increase reach")
	}
}

// TestISMEliminatesThrashing is the §6 observation in miniature: a working
// set beyond the base TLB's 512 KB reach thrashes 8 KB pages but fits
// easily in 4 MB pages.
func TestISMEliminatesThrashing(t *testing.T) {
	run := func(cfg Config) float64 {
		tl := New(cfg)
		r := uint64(99)
		// 8 MB working set, random pointer chasing.
		for i := 0; i < 200000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			tl.Access((r >> 30) % (8 << 20))
		}
		tl.ResetStats()
		for i := 0; i < 200000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			tl.Access((r >> 30) % (8 << 20))
		}
		return tl.MissRatio()
	}
	base := run(DefaultConfig())
	ism := run(ISMConfig())
	if base < 0.5 {
		t.Fatalf("base pages should thrash on an 8MB set: miss ratio %v", base)
	}
	if ism > 0.001 {
		t.Fatalf("ISM pages should map 8MB entirely: miss ratio %v", ism)
	}
}

func TestResetStatsKeepsWarmth(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Access(0x4000)
	tl.ResetStats()
	if tl.Lookups != 0 || tl.Misses != 0 {
		t.Fatal("stats not reset")
	}
	if tl.Access(0x4001) != 0 {
		t.Fatal("reset cleared translations")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero-entries": {Entries: 0, PageBytes: 8 << 10},
		"odd-page":     {Entries: 4, PageBytes: 3000},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestQuickSamePageAlwaysHitsAfterFill(t *testing.T) {
	tl := New(DefaultConfig())
	f := func(a uint32, off uint16) bool {
		base := uint64(a) << 13 // page-aligned-ish
		tl.Access(base)
		return tl.Access(base+uint64(off)%(8<<10)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
