// Package tlb models the UltraSPARC II's data TLB and the Solaris Intimate
// Shared Memory (ISM) optimization the paper highlights (§3.2, §6):
//
//	"using the intimate shared memory (ISM) feature of Solaris, which
//	 increases the page size from 8 KB to 4 MB, increased performance of
//	 ECperf by more than 10%."
//
// With 8 KB pages a 64-entry TLB reaches 512 KB — far less than the
// application server's heap — so heap-wide access patterns thrash it. With
// 4 MB ISM pages the same TLB reaches 256 MB and TLB misses all but vanish.
// The reproduction's ISM experiment (cmd/ablations, BenchmarkAblationISM)
// measures exactly that effect.
//
// The model is a fully-associative LRU TLB with a software-refill penalty,
// matching the SPARC V9 software-managed TLB (a miss traps to the kernel's
// TSB handler).
package tlb

import "repro/internal/mem"

// Config parameterizes one TLB.
type Config struct {
	// Entries is the TLB size (the UltraSPARC II dTLB held 64 entries).
	Entries int
	// PageBytes is the page size: 8 KB base pages, or 4 MB with ISM.
	// Must be a power of two.
	PageBytes uint64
	// MissPenalty is the software-refill cost in cycles (a trap into the
	// kernel TSB handler; tens of cycles on the UltraSPARC II).
	MissPenalty uint64
}

// DefaultConfig returns the base-page configuration (no ISM). The miss
// penalty reflects the full software cost on a loaded machine: the trap,
// the TSB probe (which itself misses the caches for a heap-sized page
// table), and the hash-table walk on a TSB miss.
func DefaultConfig() Config {
	return Config{Entries: 64, PageBytes: 8 << 10, MissPenalty: 260}
}

// ISMConfig returns the Intimate-Shared-Memory configuration: same TLB,
// 4 MB pages.
func ISMConfig() Config {
	c := DefaultConfig()
	c.PageBytes = 4 << 20
	return c
}

// TLB is one processor's translation lookaside buffer: fully associative,
// true-LRU.
type TLB struct {
	cfg     Config
	shift   uint
	entries []entry
	clock   uint64

	Lookups uint64
	Misses  uint64
}

type entry struct {
	page    uint64
	valid   bool
	lastUse uint64
}

// New builds a TLB. It panics on a non-power-of-two page size or a
// non-positive entry count (static configuration).
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: need at least one entry")
	}
	if cfg.PageBytes == 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic("tlb: page size must be a power of two")
	}
	shift := uint(0)
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		shift++
	}
	return &TLB{cfg: cfg, shift: shift, entries: make([]entry, cfg.Entries)}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Reach returns the address range the TLB can map at once.
func (t *TLB) Reach() uint64 { return uint64(t.cfg.Entries) * t.cfg.PageBytes }

// Access translates addr, returning the stall cycles (0 on a hit,
// MissPenalty on a software refill).
func (t *TLB) Access(addr mem.Addr) uint64 {
	t.Lookups++
	page := addr >> t.shift
	t.clock++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lastUse = t.clock
			return 0
		}
		if !t.entries[victim].valid {
			continue
		}
		if !e.valid || e.lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = entry{page: page, valid: true, lastUse: t.clock}
	return t.cfg.MissPenalty
}

// MissRatio returns misses/lookups, or 0 when unused.
func (t *TLB) MissRatio() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Lookups)
}

// ResetStats zeroes the counters, keeping contents warm.
func (t *TLB) ResetStats() {
	t.Lookups = 0
	t.Misses = 0
}
