// Command jbbsim runs the SPECjbb2000-like workload model on the simulated
// E6000 and prints the measurement views the paper collected: throughput,
// the mpstat-style execution-mode breakdown, the CPI decomposition, and the
// bus-level memory-system counters.
//
// Usage:
//
//	jbbsim [-p processors] [-w warehouses] [-seed N] [-measure cycles]
//	       [-memmodel fixed|loaded]
//	       [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	       [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//	       [-latency FILE] [-slo SPEC] [-latency-interval cycles]
//	       [-watchdog cycles]
//	       [-checkpoint FILE] [-checkpoint-every cycles] [-resume FILE]
//
// With -latency and/or -slo, every transaction is traced end to end through
// the simulated tiers and decomposed into phases (CPU, memory stall, lock
// wait, network, DB queue/service, GC pause); the per-class HDR histograms,
// latency time series, and SLO verdicts print after the standard report and
// land in the -latency JSON artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/report"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	procs, whs            *int
	seed, warmup, measure *uint64
	watchdog              *uint64
	ckptPath, resume      *string
	ckptEvery             *uint64
	memmodel              *string
	ofl                   obs.Flags
	hp                    obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		procs:     fs.Int("p", 8, "processor-set size (1-16)"),
		whs:       fs.Int("w", 0, "warehouses (0 = processors, the tuned value)"),
		seed:      fs.Uint64("seed", 20030208, "simulation seed"),
		warmup:    fs.Uint64("warmup", 12_000_000, "warm-up cycles (excluded)"),
		measure:   fs.Uint64("measure", 50_000_000, "measurement window in cycles"),
		watchdog:  fs.Uint64("watchdog", 0, "abort when the run makes no progress for N simulated cycles (0 = off)"),
		ckptPath:  fs.String("checkpoint", "", "write a resumable checkpoint to FILE"),
		ckptEvery: fs.Uint64("checkpoint-every", 0, "checkpoint cadence in cycles (0 = only at the end)"),
		resume:    fs.String("resume", "", "resume from checkpoint FILE (run parameters come from the checkpoint)"),
		memmodel:  fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	procs, whs, seed, warmup, measure := af.procs, af.whs, af.seed, af.warmup, af.measure
	watchdog, ckptPath, ckptEvery, resume := af.watchdog, af.ckptPath, af.ckptEvery, af.resume
	ofl, hp := &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fatal(err)
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	var ob *obs.Observer
	if ofl.Enabled() {
		ob = ofl.NewObserver(0)
	}
	ob, rec := flightrec.FromFlags(ofl, "jbbsim", ob)
	rt, err := core.NewLatencyCollector(ofl)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "jbbsim", ofl.Heartbeat)
	// Stop is idempotent: the deferred call flushes a final progress line
	// even when an error path exits early.
	defer hb.Stop()
	if ofl.Inspect != "" {
		in, err := obs.StartInspector(ofl.Inspect, "jbbsim", hb)
		if err != nil {
			fatal(fmt.Errorf("starting inspector: %w", err))
		}
		defer in.Close()
		ob.Inspect = in
		rec.SetInspector(in)
		fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", in.Addr())
	}

	var plan *core.CheckpointPlan
	if *ckptPath != "" {
		plan = &core.CheckpointPlan{Path: *ckptPath, Every: *ckptEvery, Command: "jbbsim"}
	}

	var sys *core.System
	var delta *obs.Snapshot
	if *resume != "" {
		if rt != nil {
			fmt.Fprintln(os.Stderr, "jbbsim: -latency/-slo ignored with -resume (spans cannot be reconstructed mid-run)")
			rt = nil
		}
		cp, err := core.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "resuming %s run at cycle %d (verifying replay)\n", cp.Params.Kind, cp.Cycle)
		sys, err = core.ResumeRun(cp, hb, *measure, plan)
		if err != nil {
			fatal(err)
		}
		*warmup = cp.Warmup
	} else {
		sys = core.BuildSystem(core.SystemParams{
			Kind:           core.SPECjbb,
			Processors:     *procs,
			Scale:          *whs,
			Seed:           *seed,
			WatchdogCycles: *watchdog,
			MemModel:       memModel,
		})
		core.AttachLatency(sys, ob, rt)
		core.AttachFlight(sys, rec)
		var err error
		delta, err = core.ObserveRunCheckpointed(sys, ob, hb, *warmup, *measure, plan)
		if err != nil {
			fatal(err)
		}
	}
	hb.Stop()
	if wd := sys.Engine.WatchdogTripped(); wd != nil {
		fmt.Fprintf(os.Stderr, "watchdog tripped:\n%s\n", wd)
		os.Exit(2)
	}
	eng := sys.Engine
	res := eng.Results()

	seconds := float64(*measure) / core.CyclesPerSecond
	fmt.Printf("SPECjbb: %d processors, %d warehouses, %.0f ms measured\n",
		sys.Params.Processors, sys.Params.Scale, seconds*1000)
	fmt.Printf("throughput        %10.0f transactions/s\n", float64(res.BusinessOps)/seconds)
	fmt.Printf("transactions      %10d\n", res.BusinessOps)
	tags := make([]string, 0, len(res.OpsByTag))
	for tag := range res.OpsByTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		fmt.Printf("  %-15s %10d\n", tag, res.OpsByTag[tag])
	}
	total := float64(res.Modes.Total())
	fmt.Printf("modes: user %.1f%%  system %.1f%%  i/o %.1f%%  idle %.1f%%  gc-idle %.1f%%\n",
		100*float64(res.Modes.User)/total, 100*float64(res.Modes.System)/total,
		100*float64(res.Modes.IOWait)/total, 100*float64(res.Modes.Idle)/total,
		100*float64(res.Modes.GCIdle)/total)
	c := res.CPU
	if c.Instructions > 0 {
		in := float64(c.Instructions)
		fmt.Printf("CPI %.3f (other %.3f, i-stall %.3f, d-stall %.3f)\n",
			float64(c.Total())/in, float64(c.BaseCycles)/in,
			float64(c.IStallCycles)/in, float64(c.DStall())/in)
	}
	bs := sys.Hier.Bus().Stats
	fmt.Printf("bus: GetS %d  GetM %d  upgrades %d  c2c %d (ratio %.1f%%)  memory %d  writebacks %d\n",
		bs.GetS, bs.GetM, bs.Upgrades, bs.C2CTransfers, 100*bs.C2CRatio(), bs.MemTransfers, bs.Writebacks)
	if ls, ok := sys.Hier.LoadSnapshot(); ok {
		// Only under -memmodel loaded, keeping fixed-mode stdout byte-stable.
		fmt.Printf("memmodel loaded: util %.2f  mem x%.2f  c2c x%.2f  extra stall %d cycles  interventions %d\n",
			ls.Util, ls.MemMult, ls.C2CMult, ls.MemExtraCycles+ls.C2CExtraCycles, ls.Interventions)
	}
	fmt.Printf("gc: %d collections, %.1f%% of wall time; heap live %0.1f MB\n",
		res.GCCount, 100*float64(res.GCWall)/float64(*measure),
		float64(sys.Heap.Stats.LiveAfterLastGC)/(1<<20))
	if ckpt := *ckptPath; ckpt != "" {
		fmt.Printf("checkpoint: saved to %s (resume with -resume %s)\n", ckpt, ckpt)
	}
	if ob != nil && ob.Attr != nil {
		fmt.Println()
		report.AttrSummary(os.Stdout, ob.Attr.BuildReport(ofl.AttrTop))
	}
	if rt != nil {
		fmt.Println()
		report.LatencySummary(os.Stdout, rt.BuildReport())
	}

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "jbbsim",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"processors": sys.Params.Processors, "warehouses": sys.Params.Scale,
				"warmup_cycles": *warmup, "measure_cycles": *measure,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts([]string{"SPECjbb"}, []*obs.Observer{ob}, []*obs.Snapshot{delta}, m); err != nil {
			fatal(fmt.Errorf("writing observability artifacts: %w", err))
		}
	}
	if s := rec.Summary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jbbsim:", err)
	os.Exit(1)
}
