// Command jbbsim runs the SPECjbb2000-like workload model on the simulated
// E6000 and prints the measurement views the paper collected: throughput,
// the mpstat-style execution-mode breakdown, the CPI decomposition, and the
// bus-level memory-system counters.
//
// Usage:
//
//	jbbsim [-p processors] [-w warehouses] [-seed N] [-measure cycles]
//	       [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	procs := flag.Int("p", 8, "processor-set size (1-16)")
	whs := flag.Int("w", 0, "warehouses (0 = processors, the tuned value)")
	seed := flag.Uint64("seed", 20030208, "simulation seed")
	warmup := flag.Uint64("warmup", 12_000_000, "warm-up cycles (excluded)")
	measure := flag.Uint64("measure", 50_000_000, "measurement window in cycles")
	var ofl obs.Flags
	ofl.Register(flag.CommandLine)
	flag.Parse()

	sys := core.BuildSystem(core.SystemParams{
		Kind:       core.SPECjbb,
		Processors: *procs,
		Scale:      *whs,
		Seed:       *seed,
	})
	var ob *obs.Observer
	if ofl.Enabled() {
		ob = ofl.NewObserver(0)
	}
	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "jbbsim", ofl.Heartbeat)
	eng := sys.Engine
	delta := core.ObserveRun(sys, ob, hb, *warmup, *measure)
	hb.Stop()
	res := eng.Results()

	seconds := float64(*measure) / core.CyclesPerSecond
	fmt.Printf("SPECjbb: %d processors, %d warehouses, %.0f ms measured\n",
		*procs, sys.Params.Scale, seconds*1000)
	fmt.Printf("throughput        %10.0f transactions/s\n", float64(res.BusinessOps)/seconds)
	fmt.Printf("transactions      %10d\n", res.BusinessOps)
	for tag, n := range res.OpsByTag {
		fmt.Printf("  %-15s %10d\n", tag, n)
	}
	total := float64(res.Modes.Total())
	fmt.Printf("modes: user %.1f%%  system %.1f%%  i/o %.1f%%  idle %.1f%%  gc-idle %.1f%%\n",
		100*float64(res.Modes.User)/total, 100*float64(res.Modes.System)/total,
		100*float64(res.Modes.IOWait)/total, 100*float64(res.Modes.Idle)/total,
		100*float64(res.Modes.GCIdle)/total)
	c := res.CPU
	if c.Instructions > 0 {
		in := float64(c.Instructions)
		fmt.Printf("CPI %.3f (other %.3f, i-stall %.3f, d-stall %.3f)\n",
			float64(c.Total())/in, float64(c.BaseCycles)/in,
			float64(c.IStallCycles)/in, float64(c.DStall())/in)
	}
	bs := sys.Hier.Bus().Stats
	fmt.Printf("bus: GetS %d  GetM %d  upgrades %d  c2c %d (ratio %.1f%%)  memory %d  writebacks %d\n",
		bs.GetS, bs.GetM, bs.Upgrades, bs.C2CTransfers, 100*bs.C2CRatio(), bs.MemTransfers, bs.Writebacks)
	fmt.Printf("gc: %d collections, %.1f%% of wall time; heap live %0.1f MB\n",
		res.GCCount, 100*float64(res.GCWall)/float64(*measure),
		float64(sys.Heap.Stats.LiveAfterLastGC)/(1<<20))

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "jbbsim",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"processors": *procs, "warehouses": sys.Params.Scale,
				"warmup_cycles": *warmup, "measure_cycles": *measure,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts([]string{"SPECjbb"}, []*obs.Observer{ob}, []*obs.Snapshot{delta}, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}
}
